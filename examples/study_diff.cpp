// study_diff — differential regression observability front end.
//
//   study_diff snapshot <out.json>          run the matrix, write a snapshot
//   study_diff diff <baseline> <candidate>  compare two snapshot files
//   study_diff check <baseline>             run the matrix, diff vs baseline
//   study_diff heatmap <out.html>           run the matrix, write the heatmap
//
// A snapshot (`faultstudy-baseline/1`) is the committed contract of a full
// study run: classification distribution, recovery matrix, the coverage
// atlas's full probe universe, and the deterministic telemetry counters.
// Every value is an integer in the simulated domain, so snapshots are
// byte-identical for any --threads value and `check` is a sound CI gate.
//
// Exit codes: 0 ok / no drift, 1 I/O error, 2 usage error, 3 snapshot
// parse error, 4 fatal drift (lost coverage, distribution or survival-rate
// shifts beyond tolerance).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "corpus/seeds.hpp"
#include "harness/experiment.hpp"
#include "obs/baseline.hpp"
#include "obs/export.hpp"
#include "telemetry/trial.hpp"
#include "util/logging.hpp"
#include "util/thread_pool.hpp"

using namespace faultstudy;

namespace {

std::size_t g_threads = 0;  // 0 = auto (FAULTSTUDY_THREADS, else hardware)
long long g_seed = -1;      // < 0 keeps the TrialConfig default
int g_repeats = 3;
obs::Tolerance g_tolerance;

int usage() {
  std::fputs(
      "usage:\n"
      "  study_diff snapshot <out.json>          write a study snapshot\n"
      "  study_diff diff <baseline> <candidate>  compare two snapshots\n"
      "  study_diff check <baseline>             run study, diff vs baseline\n"
      "  study_diff heatmap <out.html>           write the coverage heatmap\n"
      "options:\n"
      "  --threads N          execution lanes (results identical for any N)\n"
      "  --seed N             base trial seed (default 99)\n"
      "  --repeats N          matrix repeats per cell (default 3)\n"
      "  --class-tol=F        fault-class fraction drift band (default "
      "0.02)\n"
      "  --survival-tol=F     survival-rate drift band (default 0.05)\n"
      "  --log-level=LEVEL    debug|info|warn|error|off (default warn)\n"
      "exit codes: 0 ok, 1 io, 2 usage, 3 parse, 4 drift\n",
      stderr);
  return 2;
}

bool write_file(const std::string& path, const std::string& payload) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  out << payload;
  return true;
}

bool read_file(const std::string& path, std::string& text) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  text = buf.str();
  return true;
}

/// One full (deterministic) study run: the recovery matrix with coverage
/// and telemetry attached.
struct StudyRun {
  std::vector<corpus::SeedFault> seeds;
  harness::MatrixResult matrix;
  obs::CoverageAtlas atlas;
  telemetry::MetricsSnapshot metrics;
  std::uint64_t seed = 0;
};

StudyRun run_study() {
  StudyRun run;
  run.seeds = corpus::all_seeds();
  harness::TrialConfig config;
  config.threads = g_threads;
  if (g_seed >= 0) config.seed = static_cast<std::uint64_t>(g_seed);
  run.seed = config.seed;
  std::printf("study: seed=%llu repeats=%d threads=%zu\n",
              static_cast<unsigned long long>(config.seed), g_repeats,
              util::resolve_threads(g_threads));
  telemetry::StudyTelemetry study;
  run.matrix =
      harness::run_matrix(run.seeds, harness::standard_mechanisms(), config,
                          g_repeats, &study, nullptr, &run.atlas);
  obs::export_gauges(run.atlas, study.metrics);
  run.metrics = study.metrics.snapshot();
  return run;
}

obs::StudySnapshot snapshot_of(const StudyRun& run) {
  return obs::build_snapshot(run.seeds, run.matrix, run.atlas, run.metrics,
                             run.seed, g_repeats);
}

/// Renders the drift report and maps it to the process exit code.
int report_drift(const obs::DriftReport& report) {
  std::fputs(obs::render_text(report).c_str(), stdout);
  return report.regressed() ? 4 : 0;
}

int cmd_snapshot(const std::string& path) {
  const StudyRun run = run_study();
  const std::string payload = obs::to_json(snapshot_of(run));
  if (!write_file(path, payload)) return 1;
  std::printf("snapshot: wrote %s (%zu bytes)\n", path.c_str(),
              payload.size());
  return 0;
}

int cmd_diff(const std::string& baseline_path,
             const std::string& candidate_path) {
  std::string baseline_text, candidate_text;
  if (!read_file(baseline_path, baseline_text)) return 1;
  if (!read_file(candidate_path, candidate_text)) return 1;
  const auto baseline = obs::parse_snapshot(baseline_text);
  if (!baseline.ok()) {
    std::fprintf(stderr, "%s: %s\n", baseline_path.c_str(),
                 baseline.error().c_str());
    return 3;
  }
  const auto candidate = obs::parse_snapshot(candidate_text);
  if (!candidate.ok()) {
    std::fprintf(stderr, "%s: %s\n", candidate_path.c_str(),
                 candidate.error().c_str());
    return 3;
  }
  return report_drift(
      obs::diff(baseline.value(), candidate.value(), g_tolerance));
}

int cmd_check(const std::string& baseline_path) {
  std::string baseline_text;
  if (!read_file(baseline_path, baseline_text)) return 1;
  const auto baseline = obs::parse_snapshot(baseline_text);
  if (!baseline.ok()) {
    std::fprintf(stderr, "%s: %s\n", baseline_path.c_str(),
                 baseline.error().c_str());
    return 3;
  }
  const StudyRun run = run_study();
  return report_drift(
      obs::diff(baseline.value(), snapshot_of(run), g_tolerance));
}

int cmd_heatmap(const std::string& path) {
  const StudyRun run = run_study();
  const std::string payload = obs::render_heatmap_html(run.atlas);
  if (!write_file(path, payload)) return 1;
  std::printf("heatmap: wrote %s (%zu bytes)\n", path.c_str(),
              payload.size());
  std::fputs(obs::render_text(run.atlas).c_str(), stdout);
  return 0;
}

bool parse_fraction(const std::string& arg, std::string_view prefix,
                    double& out) {
  const std::string text = arg.substr(prefix.size());
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0' || v < 0.0 || v > 1.0) return false;
  out = v;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threads" || arg == "--repeats" || arg == "--seed") {
      char* end = nullptr;
      const long long n =
          i + 1 < argc ? std::strtoll(argv[++i], &end, 10) : -1;
      if (end == nullptr || end == argv[i] || *end != '\0' || n < 0) {
        std::fprintf(stderr, "%s needs a non-negative integer\n",
                     arg.c_str());
        return 2;
      }
      if (arg == "--threads") {
        g_threads = static_cast<std::size_t>(n);
      } else if (arg == "--repeats") {
        if (n < 1) return usage();
        g_repeats = static_cast<int>(n);
      } else {
        g_seed = n;
      }
      continue;
    }
    if (arg.starts_with("--class-tol=")) {
      if (!parse_fraction(arg, "--class-tol=", g_tolerance.class_fraction)) {
        return usage();
      }
      continue;
    }
    if (arg.starts_with("--survival-tol=")) {
      if (!parse_fraction(arg, "--survival-tol=",
                          g_tolerance.survival_rate)) {
        return usage();
      }
      continue;
    }
    if (arg.starts_with("--log-level=")) {
      const auto level =
          util::parse_log_level(arg.substr(std::strlen("--log-level=")));
      if (!level.has_value()) return usage();
      util::set_log_level(*level);
      continue;
    }
    if (arg.starts_with("--")) {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      return usage();
    }
    args.push_back(arg);
  }
  if (args.empty()) return usage();
  const std::string& cmd = args[0];
  if (cmd == "snapshot" && args.size() == 2) return cmd_snapshot(args[1]);
  if (cmd == "diff" && args.size() == 3) return cmd_diff(args[1], args[2]);
  if (cmd == "check" && args.size() == 2) return cmd_check(args[1]);
  if (cmd == "heatmap" && args.size() == 2) return cmd_heatmap(args[1]);
  return usage();
}
