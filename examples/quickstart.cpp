// Quickstart: classify a bug report and interpret the result.
//
// Build and run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
// The library's core question: given a bug report, does surviving this
// fault require application-specific recovery, or would a generic
// mechanism (process pairs, rollback-retry) survive it?
#include <cstdio>

#include "core/rule_classifier.hpp"
#include "core/rules.hpp"

int main() {
  using namespace faultstudy;

  // A report as it might arrive in a tracker: title, free-form body, the
  // how-to-repeat field, and whatever the developers said about it.
  core::ReportText report;
  report.title = "server stops accepting uploads";
  report.body =
      "After a few weeks of uptime the server starts rejecting uploads. "
      "Everything else still works. Restarting does not help.";
  report.how_to_repeat =
      "Fill the file system holding the spool directory; all uploads fail "
      "with no space left on device until an admin frees disk space.";
  report.developer_comments =
      "Confirmed: the spool write path does not handle a full file system.";

  const core::RuleClassifier classifier;
  const core::Classification result = classifier.classify(report);

  std::printf("trigger      : %s\n",
              std::string(core::to_string(result.trigger)).c_str());
  std::printf("mechanism    : %s\n",
              std::string(core::describe(result.trigger)).c_str());
  std::printf("fault class  : %s\n",
              std::string(core::to_string(result.fault_class)).c_str());
  std::printf("confidence   : %.2f\n", result.confidence);

  const core::Ruling& ruling = core::default_ruling(result.trigger);
  std::printf("on retry     : condition %s\n",
              ruling.condition_changes_on_retry
                  ? "is likely to have changed -> generic recovery can work"
                  : "persists -> generic recovery will NOT survive this");
  std::printf("rationale    : %s\n", std::string(ruling.rationale).c_str());

  std::puts("\nevidence (matched cues):");
  for (const auto& cue : result.evidence) {
    std::printf("  '%s' in %s (weight %.2f) -> %s\n", cue.phrase.c_str(),
                cue.field.c_str(), cue.weight,
                std::string(core::to_string(cue.trigger)).c_str());
  }
  return 0;
}
