// make_report: the library's "reproduce the paper" button. Runs the full
// methodology and writes STUDY_REPORT.md (plus Figures 1-3 as SVG) into the
// current directory.
//
//   ./build/examples/make_report [output.md]
#include <cstdio>
#include <fstream>

#include "corpus/synth.hpp"
#include "report/study_report.hpp"
#include "report/svg.hpp"
#include "stats/series.hpp"

using namespace faultstudy;

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "STUDY_REPORT.md";

  std::puts("running the full study (mining + recovery matrix)...");
  const auto results = report::run_full_study();
  const auto markdown = report::render_markdown(results);

  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  out << markdown;
  std::printf("wrote %s (%zu bytes)\n", path.c_str(), markdown.size());

  const struct {
    const char* file;
    const char* title;
    core::AppId app;
    const std::vector<std::string>* labels;
  } figures[] = {
      {"figure1_apache.svg", "Figure 1: Apache faults per release",
       core::AppId::kApache, &corpus::apache_releases()},
      {"figure2_gnome.svg", "Figure 2: GNOME faults over time",
       core::AppId::kGnome, &corpus::gnome_periods()},
      {"figure3_mysql.svg", "Figure 3: MySQL faults per release",
       core::AppId::kMysql, &corpus::mysql_releases()},
  };
  for (const auto& fig : figures) {
    const auto series =
        stats::build_series(results.all_faults, fig.app, *fig.labels);
    std::ofstream svg(fig.file, std::ios::binary);
    if (svg) {
      svg << report::render_svg(series, fig.title);
      std::printf("wrote %s\n", fig.file);
    }
  }

  std::printf("\nheadline: generic recovery survived %zu/%zu faults; "
              "app-specific %zu/%zu\n",
              results.matrix.reports.front().survived_all(),
              results.matrix.reports.front().total_all(),
              results.matrix.reports.back().survived_all(),
              results.matrix.reports.back().total_all());
  return 0;
}
