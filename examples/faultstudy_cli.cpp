// faultstudy — command-line front end for the library.
//
//   faultstudy_cli classify             # read a report from stdin, classify
//   faultstudy_cli corpus <app> <file>  # write the synthetic corpus to disk
//   faultstudy_cli mine <app|file>      # run the mining pipeline, print table
//   faultstudy_cli simulate <fault> <mechanism>   # one recovery trial
//   faultstudy_cli matrix               # the full recovery matrix
//
// `mine` accepts either an application name (generates the calibrated
// synthetic corpus) or a path to a tracker dump / mbox file written by
// `corpus` (or by you).
//
// A global `--threads N` flag (anywhere on the command line) sets the
// execution lanes for `matrix` and `mine`; results are bit-identical for
// every value. Default: the FAULTSTUDY_THREADS environment variable, else
// one lane per hardware thread. `--seed N` overrides the base trial seed.
//
// Telemetry (compiled in by default, see FAULTSTUDY_TELEMETRY):
//   --telemetry=<path>   metrics snapshot; `.json` extension selects the
//                        JSON exporter, anything else Prometheus text.
//   --trace=<path>       Chrome trace_event timeline (chrome://tracing,
//                        Perfetto). matrix/simulate traces use simulated
//                        ticks and are byte-identical for any --threads;
//                        mine traces are wall-clock self-profiles.
//
// Coverage (compiled in by default, see FAULTSTUDY_COVERAGE):
//   --coverage=<path>    matrix/simulate coverage atlas; `.json` selects
//                        the atlas JSON, `.html` the heatmap, anything
//                        else the text summary. Byte-identical for any
//                        --threads.
//   --baseline=<path>    matrix only: diff the run against a committed
//                        study snapshot (study_diff writes one) and exit 4
//                        on fatal drift.
//
// Unknown `--` options are rejected with a usage error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "corpus/serialize.hpp"
#include "corpus/synth.hpp"
#include "harness/experiment.hpp"
#include "core/rules.hpp"
#include "mining/pipeline.hpp"
#include "obs/baseline.hpp"
#include "obs/export.hpp"
#include "report/study_report.hpp"
#include "report/table.hpp"
#include "telemetry/export.hpp"
#include "telemetry/trial.hpp"
#include "util/logging.hpp"
#include "util/strings.hpp"
#include "util/thread_pool.hpp"

using namespace faultstudy;

namespace {

/// Lanes for matrix/mine sweeps; 0 = auto (env var, else hardware).
std::size_t g_threads = 0;
/// Base trial seed; < 0 keeps each command's default.
long long g_seed = -1;
std::string g_telemetry_path;
std::string g_trace_path;
std::string g_coverage_path;
std::string g_baseline_path;

bool telemetry_wanted() {
  return !g_telemetry_path.empty() || !g_trace_path.empty();
}

bool coverage_wanted() {
  return !g_coverage_path.empty() || !g_baseline_path.empty();
}

int usage() {
  std::fputs(
      "usage:\n"
      "  faultstudy_cli classify                       (report on stdin)\n"
      "  faultstudy_cli taxonomy                       (trigger ontology)\n"
      "  faultstudy_cli corpus <apache|gnome|mysql> <out-file>\n"
      "  faultstudy_cli mine <apache|gnome|mysql|dump-file>\n"
      "  faultstudy_cli simulate <fault-id> <mechanism>\n"
      "  faultstudy_cli matrix\n"
      "  faultstudy_cli report <out.md>                (full study report)\n"
      "options:\n"
      "  --threads N        execution lanes for matrix/mine (default: "
      "FAULTSTUDY_THREADS, else hardware; results identical for any N)\n"
      "  --seed N           base trial seed for simulate/matrix\n"
      "  --telemetry=PATH   write a metrics snapshot (.json = JSON, else "
      "Prometheus text)\n"
      "  --trace=PATH       write a Chrome trace_event timeline\n"
      "  --coverage=PATH    matrix/simulate: write the coverage atlas "
      "(.json = JSON, .html = heatmap, else text)\n"
      "  --baseline=PATH    matrix: diff against a study snapshot, exit 4 "
      "on fatal drift\n"
      "  --log-level=LEVEL  diagnostic verbosity: debug|info|warn|error|off "
      "(default warn)\n",
      stderr);
  return 2;
}

bool write_file(const std::string& path, const std::string& payload) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  out << payload;
  return true;
}

/// Writes --telemetry / --trace outputs that were requested; returns 0 or 1.
int export_telemetry(const telemetry::MetricsSnapshot& snapshot,
                     const std::vector<telemetry::TraceThread>& threads) {
  if (!g_telemetry_path.empty()) {
    const std::string payload = g_telemetry_path.ends_with(".json")
                                    ? telemetry::to_json(snapshot)
                                    : telemetry::to_prometheus(snapshot);
    if (!write_file(g_telemetry_path, payload)) return 1;
    std::printf("telemetry : wrote %s (%zu bytes)\n", g_telemetry_path.c_str(),
                payload.size());
  }
  if (!g_trace_path.empty()) {
    const std::string payload = telemetry::to_chrome_trace(threads);
    if (!write_file(g_trace_path, payload)) return 1;
    std::printf("trace     : wrote %s (%zu bytes)\n", g_trace_path.c_str(),
                payload.size());
  }
  return 0;
}

/// Writes the --coverage atlas export; the extension picks the serializer
/// (.json = atlas JSON, .html = heatmap, anything else the text summary).
int export_coverage(const obs::CoverageAtlas& atlas) {
  if (g_coverage_path.empty()) return 0;
  const std::string payload =
      g_coverage_path.ends_with(".json")   ? obs::to_json(atlas)
      : g_coverage_path.ends_with(".html") ? obs::render_heatmap_html(atlas)
                                           : obs::render_text(atlas);
  if (!write_file(g_coverage_path, payload)) return 1;
  std::printf("coverage  : wrote %s (%zu bytes)\n", g_coverage_path.c_str(),
              payload.size());
  return 0;
}

int cmd_taxonomy() {
  report::AsciiTable t({"trigger", "class", "changes on retry", "mechanism"});
  for (const core::Trigger trigger : core::all_triggers()) {
    const auto& ruling = core::default_ruling(trigger);
    t.add_row({std::string(core::to_string(trigger)),
               std::string(core::to_code(ruling.fault_class)),
               ruling.condition_changes_on_retry ? "yes" : "no",
               std::string(core::describe(trigger))});
  }
  std::fputs(t.to_string().c_str(), stdout);
  return 0;
}

int cmd_report(const std::string& path) {
  std::printf("running the full study...\n");
  const auto markdown = report::generate_study_report();
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  out << markdown;
  std::printf("wrote %s (%zu bytes)\n", path.c_str(), markdown.size());
  return 0;
}

int cmd_classify() {
  // Accept either the structured field format or free text (all of it
  // becomes the body).
  std::ostringstream all;
  all << std::cin.rdbuf();
  const std::string input = all.str();

  core::ReportText report;
  bool structured = false;
  for (const auto line : util::split(input, '\n')) {
    const auto set = [&](std::string_view tag, std::string& field) {
      if (util::starts_with(line, tag)) {
        field = std::string(util::trim(line.substr(tag.size())));
        structured = true;
        return true;
      }
      return false;
    };
    if (set("Title:", report.title)) continue;
    if (set("How-To-Repeat:", report.how_to_repeat)) continue;
    if (set("Comments:", report.developer_comments)) continue;
    report.body += std::string(line) + "\n";
  }
  if (!structured) report.body = input;

  const auto result = core::RuleClassifier().classify(report);
  std::printf("class      : %s\n",
              std::string(core::to_string(result.fault_class)).c_str());
  std::printf("trigger    : %s — %s\n",
              std::string(core::to_string(result.trigger)).c_str(),
              std::string(core::describe(result.trigger)).c_str());
  std::printf("confidence : %.2f\n", result.confidence);
  const auto& ruling = core::default_ruling(result.trigger);
  std::printf("retry      : condition %s\n",
              ruling.condition_changes_on_retry ? "likely changes (generic "
                                                  "recovery can work)"
                                                : "persists (needs "
                                                  "application-specific "
                                                  "recovery)");
  for (const auto& cue : result.evidence) {
    std::printf("  evidence : '%s' in %s\n", cue.phrase.c_str(),
                cue.field.c_str());
  }
  return 0;
}

int cmd_corpus(const std::string& app, const std::string& path) {
  std::string payload;
  if (app == "apache") {
    payload = corpus::tracker_to_text(corpus::make_apache_tracker());
  } else if (app == "gnome") {
    payload = corpus::tracker_to_text(corpus::make_gnome_tracker());
  } else if (app == "mysql") {
    payload = corpus::mailinglist_to_mbox(corpus::make_mysql_list());
  } else {
    return usage();
  }
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  out << payload;
  std::printf("wrote %zu bytes to %s\n", payload.size(), path.c_str());
  return 0;
}

void print_study(const mining::PipelineResult& result) {
  const auto faults = mining::to_faults(result);
  const auto counts = core::tally(faults);
  std::printf("unique bugs: %zu\n\n", result.bugs.size());
  std::fputs(report::render_class_table(counts, "").c_str(), stdout);
}

int cmd_mine(const std::string& target) {
  telemetry::PipelineTelemetry profile;
  mining::PipelineOptions options;
  options.threads = g_threads;
  if (telemetry_wanted()) options.telemetry = &profile;
  std::printf("mine: target=%s threads=%zu\n", target.c_str(),
              util::resolve_threads(g_threads));

  std::optional<mining::PipelineResult> result;
  if (target == "apache" || target == "gnome") {
    const auto tracker = target == "apache" ? corpus::make_apache_tracker()
                                            : corpus::make_gnome_tracker();
    result = mining::run_tracker_pipeline(tracker, options);
  } else if (target == "mysql") {
    result =
        mining::run_mailinglist_pipeline(corpus::make_mysql_list(), options);
  } else {
    // A file: sniff the format.
    std::ifstream in(target, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot read %s\n", target.c_str());
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();
    if (text.starts_with("From ")) {
      const auto list = corpus::mailinglist_from_mbox(text);
      if (!list.ok()) {
        std::fprintf(stderr, "mbox parse error: %s\n", list.error().c_str());
        return 1;
      }
      result = mining::run_mailinglist_pipeline(list.value(), options);
    } else {
      const auto tracker = corpus::tracker_from_text(text);
      if (!tracker.ok()) {
        std::fprintf(stderr, "tracker parse error: %s\n",
                     tracker.error().c_str());
        return 1;
      }
      result = mining::run_tracker_pipeline(tracker.value(), options);
    }
  }
  print_study(*result);
  if (options.telemetry != nullptr) {
    return export_telemetry(profile.metrics.snapshot(),
                            {{"mine (wall)", &profile.spans}});
  }
  return 0;
}

int cmd_simulate(const std::string& fault_id, const std::string& mechanism) {
  const auto seeds = corpus::all_seeds();
  const corpus::SeedFault* seed = nullptr;
  for (const auto& s : seeds) {
    if (s.fault_id == fault_id) seed = &s;
  }
  if (seed == nullptr) {
    std::fprintf(stderr, "unknown fault id %s\n", fault_id.c_str());
    return 1;
  }
  harness::MechanismFactory factory;
  for (const auto& nm : harness::standard_mechanisms()) {
    if (nm.name == mechanism) factory = nm.make;
  }
  if (!factory) {
    std::fprintf(stderr, "unknown mechanism %s (try process-pairs, "
                         "rollback-retry, progressive-retry, cold-restart, "
                         "rejuvenation, app-specific)\n",
                 mechanism.c_str());
    return 1;
  }
  // Defaults match the pre-flag behavior exactly: plan seed 42, trial
  // config seed 99; --seed N sets both.
  harness::TrialConfig config;
  if (g_seed >= 0) config.seed = static_cast<std::uint64_t>(g_seed);
  telemetry::TrialTelemetry telem;
  telemetry::TrialTelemetry* tp = telemetry_wanted() ? &telem : nullptr;
  obs::CoverageMap cover;
  obs::CoverageMap* cp = !g_coverage_path.empty() ? &cover : nullptr;
  const auto plan = inject::plan_for(
      *seed, g_seed >= 0 ? static_cast<std::uint64_t>(g_seed) : 42);
  auto mech = factory();
  const auto outcome =
      harness::run_trial(plan, *mech, config, nullptr, tp, nullptr, cp);
  std::printf("simulate  : seed=%llu threads=1\n",
              static_cast<unsigned long long>(config.seed));
  std::printf("fault     : %s (%s, %s)\n", seed->fault_id.c_str(),
              std::string(core::to_string(seed->trigger)).c_str(),
              std::string(core::to_string(corpus::seed_class(*seed))).c_str());
  std::printf("mechanism : %s\n", mechanism.c_str());
  std::printf("observed  : %zu failures, %zu recoveries\n", outcome.failures,
              outcome.recoveries);
  std::printf("verdict   : %s\n",
              outcome.survived ? "SURVIVED" : "NOT SURVIVED");
  if (!outcome.first_failure.empty()) {
    std::printf("first failure: %s\n", outcome.first_failure.c_str());
  }
  if (tp != nullptr) {
    telemetry::MetricsRegistry registry;
    telemetry::fold_into(telem, mechanism, registry);
    if (export_telemetry(registry.snapshot(),
                         {{fault_id + "/" + mechanism, &telem.spans}}) != 0) {
      return 1;
    }
  }
  if (cp != nullptr) {
    obs::CoverageAtlas atlas;
    atlas.begin_study({*seed}, {mechanism});
    atlas.fold_trial(*seed, cover);
    if (export_coverage(atlas) != 0) return 1;
  }
  return outcome.survived ? 0 : 3;
}

int cmd_matrix() {
  constexpr int kRepeats = 3;
  harness::TrialConfig config;
  config.threads = g_threads;
  if (g_seed >= 0) config.seed = static_cast<std::uint64_t>(g_seed);
  std::printf("matrix: seed=%llu threads=%zu\n",
              static_cast<unsigned long long>(config.seed),
              util::resolve_threads(g_threads));
  telemetry::StudyTelemetry study;
  // A --baseline run is always instrumented: the snapshot's counters
  // section comes from the telemetry fold.
  telemetry::StudyTelemetry* tp =
      telemetry_wanted() || !g_baseline_path.empty() ? &study : nullptr;
  obs::CoverageAtlas atlas;
  obs::CoverageAtlas* ap = coverage_wanted() ? &atlas : nullptr;
  const auto seeds = corpus::all_seeds();
  const auto matrix =
      harness::run_matrix(seeds, harness::standard_mechanisms(), config,
                          kRepeats, tp, nullptr, ap);
  report::AsciiTable t({"mechanism", "EI", "EDN", "EDT", "overall"});
  for (const auto& r : matrix.reports) {
    const auto cell = [&](core::FaultClass c) {
      const auto i = static_cast<std::size_t>(c);
      return std::to_string(r.survived[i]) + "/" + std::to_string(r.total[i]);
    };
    t.add_row({r.mechanism, cell(core::FaultClass::kEnvironmentIndependent),
               cell(core::FaultClass::kEnvDependentNonTransient),
               cell(core::FaultClass::kEnvDependentTransient),
               util::percent(static_cast<double>(r.survived_all()) /
                             static_cast<double>(r.total_all()))});
  }
  std::fputs(t.to_string().c_str(), stdout);
  // Publish atlas gauges before any snapshot is taken, so both the
  // telemetry export and the baseline diff see coverage.
  if (ap != nullptr && tp != nullptr) obs::export_gauges(atlas, study.metrics);
  if (export_coverage(atlas) != 0) return 1;
  int rc = 0;
  if (!g_baseline_path.empty()) {
    std::ifstream in(g_baseline_path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot read %s\n", g_baseline_path.c_str());
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const auto baseline = obs::parse_snapshot(buf.str());
    if (!baseline.ok()) {
      std::fprintf(stderr, "%s: %s\n", g_baseline_path.c_str(),
                   baseline.error().c_str());
      return 1;
    }
    const auto candidate = obs::build_snapshot(
        seeds, matrix, atlas, study.metrics.snapshot(), config.seed, kRepeats);
    const auto drift = obs::diff(baseline.value(), candidate);
    std::fputs(obs::render_text(drift).c_str(), stdout);
    if (drift.regressed()) rc = 4;
  }
  if (tp != nullptr && telemetry_wanted()) {
    std::vector<telemetry::TraceThread> threads;
    threads.reserve(study.traces.size());
    for (const auto& [label, tracer] : study.traces) {
      threads.push_back({label, &tracer});
    }
    if (export_telemetry(study.metrics.snapshot(), threads) != 0) return 1;
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  // Pull the global flags out, keep the rest positional.
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threads") {
      if (i + 1 >= argc) return usage();
      const long n = std::strtol(argv[++i], nullptr, 10);
      if (n < 1) return usage();
      g_threads = static_cast<std::size_t>(n);
      continue;
    }
    if (arg == "--seed") {
      if (i + 1 >= argc) return usage();
      char* end = nullptr;
      const long long n = std::strtoll(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || n < 0) return usage();
      g_seed = n;
      continue;
    }
    if (arg.starts_with("--telemetry=")) {
      g_telemetry_path = arg.substr(std::strlen("--telemetry="));
      if (g_telemetry_path.empty()) return usage();
      continue;
    }
    if (arg.starts_with("--trace=")) {
      g_trace_path = arg.substr(std::strlen("--trace="));
      if (g_trace_path.empty()) return usage();
      continue;
    }
    if (arg.starts_with("--coverage=")) {
      g_coverage_path = arg.substr(std::strlen("--coverage="));
      if (g_coverage_path.empty()) return usage();
      continue;
    }
    if (arg.starts_with("--baseline=")) {
      g_baseline_path = arg.substr(std::strlen("--baseline="));
      if (g_baseline_path.empty()) return usage();
      continue;
    }
    if (arg.starts_with("--log-level=")) {
      const auto level =
          util::parse_log_level(arg.substr(std::strlen("--log-level=")));
      if (!level.has_value()) return usage();
      util::set_log_level(*level);
      continue;
    }
    if (arg.starts_with("--")) {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      return usage();
    }
    args.push_back(arg);
  }
  if (args.empty()) return usage();
  const std::string& cmd = args[0];
  if (cmd == "classify") return cmd_classify();
  if (cmd == "taxonomy") return cmd_taxonomy();
  if (cmd == "corpus" && args.size() == 3) return cmd_corpus(args[1], args[2]);
  if (cmd == "mine" && args.size() == 2) return cmd_mine(args[1]);
  if (cmd == "simulate" && args.size() == 3)
    return cmd_simulate(args[1], args[2]);
  if (cmd == "matrix") return cmd_matrix();
  if (cmd == "report" && args.size() == 2) return cmd_report(args[1]);
  return usage();
}
