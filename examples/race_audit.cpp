// Race audit: run the correctness-analysis layer against the study's fault
// specimens.
//
//   ./build/examples/race_audit --oracle          # full taxonomy cross-check
//   ./build/examples/race_audit [fault-id]        # audit one specimen
//   e.g. ./build/examples/race_audit mysql-edt-01
//
// Auditing one specimen runs a traced trial, replays the synchronization
// trace through the happens-before detector, and prints every racy access
// pair with both threads' event stacks, plus any transcript invariant
// violations. --oracle runs one traced trial per seed fault and prints the
// detector-vs-taxonomy confusion table.
#include <cstdio>
#include <cstring>
#include <span>

#include "analysis/invariant_checker.hpp"
#include "analysis/race_detector.hpp"
#include "corpus/seeds.hpp"
#include "harness/experiment.hpp"
#include "recovery/rollback.hpp"
#include "report/oracle.hpp"

using namespace faultstudy;

namespace {

int run_oracle() {
  const auto seeds = corpus::all_seeds();
  std::printf("running traced trials for %zu specimens...\n\n", seeds.size());
  const auto report = harness::run_oracle_crosscheck(seeds);

  std::fputs(report::render_oracle_confusion(report).c_str(), stdout);
  std::printf("\nagreement: %.1f%% over %zu specimens\n",
              report.agreement() * 100.0, report.total());

  bool disagreed = false;
  for (const auto& row : report.rows) {
    if (row.race_labeled == row.detector_fired) continue;
    disagreed = true;
    std::printf("  DISAGREE %s (%s): %s\n", row.fault_id.c_str(),
                std::string(core::to_string(row.trigger)).c_str(),
                row.detector_fired ? "fired on a non-race label"
                                   : "race label but detector silent");
  }
  if (!disagreed) std::printf("no disagreements.\n");
  return report.agreement() >= 0.9 && report.ei_fired == 0 ? 0 : 2;
}

int audit(const corpus::SeedFault& seed) {
  std::printf("fault   : %s — %s\n", seed.fault_id.c_str(),
              seed.title.c_str());
  std::printf("trigger : %s\n",
              std::string(core::to_string(seed.trigger)).c_str());
  std::printf("class   : %s\n\n",
              std::string(core::to_string(corpus::seed_class(seed))).c_str());

  const auto plan = inject::plan_for(seed, 42);
  recovery::RollbackRetry mechanism;
  harness::TrialObservation observation;
  const auto outcome = harness::run_trial(plan, mechanism, {}, &observation);

  std::printf("trial   : %s (%zu failures, %zu recoveries, %zu trace "
              "events)\n\n",
              outcome.survived ? "survived" : "not survived",
              outcome.failures, outcome.recoveries, observation.trace.size());

  analysis::RaceDetector detector;
  const auto races = detector.analyze(
      std::span<const env::TraceEvent>(observation.trace));
  if (races.empty()) {
    std::printf("happens-before detector: no races\n");
  } else {
    std::printf("happens-before detector: %zu racy access pair(s)\n\n",
                races.size());
    for (const auto& race : races) {
      std::fputs(analysis::to_string(
                     race, std::span<const env::TraceEvent>(observation.trace))
                     .c_str(),
                 stdout);
      std::fputs("\n", stdout);
    }
  }

  const auto violations = analysis::check_transcript(observation.transcript);
  if (violations.empty()) {
    std::printf("invariant checker: transcript clean\n");
  } else {
    std::printf("invariant checker: %zu violation(s)\n%s", violations.size(),
                analysis::to_string(std::span<const analysis::InvariantViolation>(
                                        violations))
                    .c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string arg = argc > 1 ? argv[1] : "--oracle";
  if (arg == "--oracle") return run_oracle();

  for (const auto& seed : corpus::all_seeds()) {
    if (seed.fault_id == arg) return audit(seed);
  }
  std::fprintf(stderr,
               "unknown fault id '%s'; known ids look like mysql-edt-01, "
               "gnome-edt-03 (or pass --oracle)\n",
               arg.c_str());
  return 1;
}
