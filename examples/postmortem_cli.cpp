// postmortem — the fault-forensics study explorer.
//
//   postmortem_cli explore <out.html>        # self-contained HTML explorer
//   postmortem_cli json <out.json>           # machine-readable forensic dump
//   postmortem_cli triage                    # triage clusters on stdout
//   postmortem_cli specimen <fault> <mech>   # one deep-dive post-mortem
//
// explore/json/triage run the full fault x mechanism matrix with a flight
// recorder attached to every trial and collect a post-mortem from every
// failed one; specimen re-runs a single trial traced, so the causal chain
// also carries detector verdicts (race reports, invariant violations).
//
// Everything is deterministic: `--threads N` changes wall-clock time only,
// never a byte of the output artifacts.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "forensics/export.hpp"
#include "forensics/postmortem.hpp"
#include "forensics/triage.hpp"
#include "harness/experiment.hpp"
#include "report/table.hpp"
#include "util/logging.hpp"
#include "util/thread_pool.hpp"

using namespace faultstudy;

namespace {

std::size_t g_threads = 0;
long long g_seed = -1;

int usage() {
  std::fputs(
      "usage:\n"
      "  postmortem_cli explore <out.html>   (HTML study explorer)\n"
      "  postmortem_cli json <out.json>      (forensic dump)\n"
      "  postmortem_cli triage               (failure clusters on stdout)\n"
      "  postmortem_cli specimen <fault-id> <mechanism>\n"
      "options:\n"
      "  --threads N          execution lanes for the matrix (output is\n"
      "                       byte-identical for every N)\n"
      "  --seed N             base trial seed (default 99)\n"
      "  --log-level=LEVEL    debug|info|warn|error|off\n",
      stderr);
  return 2;
}

bool write_file(const std::string& path, const std::string& payload) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  out << payload;
  return true;
}

struct MatrixForensics {
  harness::MatrixResult matrix;
  forensics::StudyForensics study;
  std::vector<forensics::TriageCluster> clusters;
};

MatrixForensics run_matrix_with_forensics() {
  harness::TrialConfig config;
  config.threads = g_threads;
  if (g_seed >= 0) config.seed = static_cast<std::uint64_t>(g_seed);
  std::fprintf(stderr, "matrix: seed=%llu threads=%zu\n",
               static_cast<unsigned long long>(config.seed),
               util::resolve_threads(g_threads));
  MatrixForensics out;
  out.matrix =
      harness::run_matrix(corpus::all_seeds(), harness::standard_mechanisms(),
                          config, 3, nullptr, &out.study);
  out.clusters = forensics::triage(out.study.postmortems);
  return out;
}

std::vector<forensics::MechanismSuccessRow> success_rows(
    const harness::MatrixResult& matrix) {
  std::vector<forensics::MechanismSuccessRow> rows;
  rows.reserve(matrix.reports.size());
  for (const auto& report : matrix.reports) {
    rows.push_back({report.mechanism, report.generic, report.survived_all(),
                    report.total_all(), report.state_losses});
  }
  return rows;
}

int cmd_explore(const std::string& path) {
  const MatrixForensics mf = run_matrix_with_forensics();
  const std::string html = forensics::render_explorer_html(
      mf.study, mf.clusters, success_rows(mf.matrix),
      "Fault-forensics study explorer");
  if (!write_file(path, html)) return 1;
  std::printf("explorer : wrote %s (%zu bytes, %zu post-mortems, "
              "%zu clusters)\n",
              path.c_str(), html.size(), mf.study.failures(),
              mf.clusters.size());
  return 0;
}

int cmd_json(const std::string& path) {
  const MatrixForensics mf = run_matrix_with_forensics();
  const std::string json = forensics::to_json(mf.study, mf.clusters);
  if (!write_file(path, json)) return 1;
  std::printf("forensics: wrote %s (%zu bytes, %zu post-mortems)\n",
              path.c_str(), json.size(), mf.study.failures());
  return 0;
}

int cmd_triage() {
  const MatrixForensics mf = run_matrix_with_forensics();
  std::printf("%zu/%zu trials failed, %zu failure signatures\n\n",
              mf.study.failures(), mf.study.trials, mf.clusters.size());
  report::AsciiTable t({"signature", "count", "failures", "recoveries",
                        "specimens"});
  for (const auto& c : mf.clusters) {
    t.add_row({c.signature, std::to_string(c.count),
               std::to_string(c.total_failures),
               std::to_string(c.total_recoveries),
               std::to_string(c.fault_ids.size())});
  }
  std::fputs(t.to_string().c_str(), stdout);
  return 0;
}

int cmd_specimen(const std::string& fault_id, const std::string& mechanism) {
  const auto seeds = corpus::all_seeds();
  const corpus::SeedFault* seed = nullptr;
  for (const auto& s : seeds) {
    if (s.fault_id == fault_id) seed = &s;
  }
  if (seed == nullptr) {
    std::fprintf(stderr, "unknown fault id %s\n", fault_id.c_str());
    return 1;
  }
  harness::MechanismFactory factory;
  for (const auto& nm : harness::standard_mechanisms()) {
    if (nm.name == mechanism) factory = nm.make;
  }
  if (!factory) {
    std::fprintf(stderr, "unknown mechanism %s (try process-pairs, "
                         "rollback-retry, progressive-retry, cold-restart, "
                         "rejuvenation, app-specific)\n",
                 mechanism.c_str());
    return 1;
  }

  harness::TrialConfig config;
  if (g_seed >= 0) config.seed = static_cast<std::uint64_t>(g_seed);
  const auto plan = inject::plan_for(
      *seed, g_seed >= 0 ? static_cast<std::uint64_t>(g_seed) : 42);
  auto mech = factory();
  // Traced deep-dive: the post-mortem's detection stage gets race-detector
  // and invariant-checker verdicts on top of the harness observations.
  harness::TrialObservation observation;
  forensics::TrialForensics forens;
  const auto outcome =
      harness::run_trial(plan, *mech, config, &observation, nullptr, &forens);

  std::printf("specimen  : %s under %s (seed=%llu)\n", fault_id.c_str(),
              mechanism.c_str(),
              static_cast<unsigned long long>(config.seed));
  std::printf("verdict   : %s (%zu failures, %zu recoveries)\n",
              outcome.survived ? "SURVIVED" : "NOT SURVIVED",
              outcome.failures, outcome.recoveries);
  if (!forens.postmortem.has_value()) {
    std::printf("no post-mortem: the trial survived (ring held %zu events)\n",
                forens.ring.size());
    return 0;
  }
  const forensics::PostMortemRecord& pm = *forens.postmortem;
  std::printf("signature : %s\n",
              forensics::failure_signature(pm).c_str());
  std::printf("\ncausal chain:\n");
  for (const auto& link : pm.chain) {
    std::printf("  [%-11s] t=%-8llu %s\n",
                std::string(to_string(link.stage)).c_str(),
                static_cast<unsigned long long>(link.at),
                link.description.c_str());
  }
  const auto& s = pm.env_state;
  std::printf("\nenv at failure: procs %zu/%zu, fds %zu/%zu, disk %llu/%llu "
              "bytes, entropy %llu bits\n",
              s.procs_used, s.procs_capacity, s.fds_used, s.fds_capacity,
              static_cast<unsigned long long>(s.disk_used),
              static_cast<unsigned long long>(s.disk_capacity),
              static_cast<unsigned long long>(s.entropy_bits));
  std::printf("flight ring: %zu events held, %llu overwritten\n",
              pm.events.size(),
              static_cast<unsigned long long>(pm.events_dropped));
  if (pm.analyzed) {
    std::printf("detectors : %zu race report(s), %zu invariant "
                "violation(s)\n",
                pm.race_reports, pm.invariant_violations);
  }
  return 3;  // mirrors faultstudy_cli simulate: non-survival exits 3
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threads") {
      if (i + 1 >= argc) return usage();
      const long n = std::strtol(argv[++i], nullptr, 10);
      if (n < 1) return usage();
      g_threads = static_cast<std::size_t>(n);
      continue;
    }
    if (arg == "--seed") {
      if (i + 1 >= argc) return usage();
      char* end = nullptr;
      const long long n = std::strtoll(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || n < 0) return usage();
      g_seed = n;
      continue;
    }
    if (arg.starts_with("--log-level=")) {
      const auto level =
          util::parse_log_level(arg.substr(std::strlen("--log-level=")));
      if (!level.has_value()) return usage();
      util::set_log_level(*level);
      continue;
    }
    args.push_back(arg);
  }
  if (args.empty()) return usage();
  const std::string& cmd = args[0];
  if (cmd == "explore" && args.size() == 2) return cmd_explore(args[1]);
  if (cmd == "json" && args.size() == 2) return cmd_json(args[1]);
  if (cmd == "triage" && args.size() == 1) return cmd_triage();
  if (cmd == "specimen" && args.size() == 3)
    return cmd_specimen(args[1], args[2]);
  return usage();
}
