// Bug triage: run the full mining methodology over a tracker corpus and
// print a triage report — the funnel, the unique bugs with their classes
// and evidence, and a CSV export.
//
//   ./build/examples/bug_triage [apache|gnome]
#include <cstdio>
#include <cstring>

#include "corpus/synth.hpp"
#include "mining/pipeline.hpp"
#include "report/export.hpp"
#include "report/table.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace faultstudy;

  const bool gnome = argc > 1 && std::strcmp(argv[1], "gnome") == 0;
  const corpus::BugTracker tracker =
      gnome ? corpus::make_gnome_tracker() : corpus::make_apache_tracker();

  std::printf("=== Bug triage for %s ===\n\n",
              std::string(core::to_string(tracker.app())).c_str());

  const auto result = mining::run_tracker_pipeline(tracker);
  std::printf("%zu reports -> %zu candidates -> %zu unique bugs\n\n",
              tracker.size(), result.filter_funnel.severe,
              result.bugs.size());

  report::AsciiTable t({"unique bug", "reports", "class", "trigger", "conf"});
  for (const auto& bug : result.bugs) {
    std::string title = bug.title;
    if (title.size() > 48) title = title.substr(0, 45) + "...";
    t.add_row({title, std::to_string(bug.report_ids.size()),
               std::string(core::to_code(bug.classification.fault_class)),
               std::string(core::to_string(bug.classification.trigger)),
               util::fixed(bug.classification.confidence, 2)});
  }
  std::fputs(t.to_string().c_str(), stdout);

  // Summary + CSV for downstream tools.
  const auto faults = mining::to_faults(result);
  const auto counts = core::tally(faults);
  std::puts("");
  std::fputs(report::counts_to_markdown(counts, "Classification summary")
                 .c_str(),
             stdout);
  std::puts("\nCSV (first 5 rows):");
  const std::string csv = report::faults_to_csv(faults);
  std::size_t lines = 0, pos = 0;
  while (lines < 6 && pos < csv.size()) {
    const auto nl = csv.find('\n', pos);
    std::printf("  %s\n", csv.substr(pos, nl - pos).c_str());
    pos = nl + 1;
    ++lines;
  }
  return 0;
}
