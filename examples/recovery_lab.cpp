// Recovery lab: arm one fault from the study into its simulated application
// and watch a recovery mechanism fight it, step by step. After the narrated
// trial, a stability sweep re-runs the same (fault, mechanism) cell across
// differently-seeded trials on the parallel executor and reports the
// survival fraction (races are probabilistic; one trial can mislead).
//
//   ./build/examples/recovery_lab [fault-id] [mechanism]
//       [--repeats R] [--threads N] [--telemetry=PATH] [--trace=PATH]
//       [--coverage=PATH] [--baseline=PATH] [--log-level=LEVEL]
//   e.g. ./build/examples/recovery_lab apache-edt-02 process-pairs
//        ./build/examples/recovery_lab apache-edn-02 cold-restart --threads 4
//
// --telemetry writes the narrated trial's metrics (.json = JSON, else
// Prometheus text); --trace writes its sim-tick span timeline as Chrome
// trace_event JSON. --coverage writes the narrated trial's coverage atlas
// (.json = atlas JSON, .html = heatmap, else text); --baseline reads a
// committed study snapshot (study_diff writes one) and prints what it
// recorded for this specimen next to the trial's own coverage. Unknown
// `--` options are a usage error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

#include "corpus/seeds.hpp"
#include "harness/experiment.hpp"
#include "harness/parallel.hpp"
#include "harness/transcript.hpp"
#include "obs/baseline.hpp"
#include "obs/export.hpp"
#include "telemetry/export.hpp"
#include "telemetry/trial.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

using namespace faultstudy;

namespace {

bool write_file(const std::string& path, const std::string& payload) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  out << payload;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args;
  std::size_t threads = 0;  // 0 = auto (FAULTSTUDY_THREADS, else hardware)
  std::size_t repeats = 16;
  std::string telemetry_path;
  std::string trace_path;
  std::string coverage_path;
  std::string baseline_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threads" || arg == "--repeats") {
      const long n = i + 1 < argc ? std::strtol(argv[++i], nullptr, 10) : -1;
      if (n < 0) {
        std::fprintf(stderr, "%s needs a non-negative integer\n", arg.c_str());
        return 1;
      }
      (arg == "--threads" ? threads : repeats) = static_cast<std::size_t>(n);
      continue;
    }
    if (arg.starts_with("--telemetry=")) {
      telemetry_path = arg.substr(std::strlen("--telemetry="));
      continue;
    }
    if (arg.starts_with("--trace=")) {
      trace_path = arg.substr(std::strlen("--trace="));
      continue;
    }
    if (arg.starts_with("--coverage=")) {
      coverage_path = arg.substr(std::strlen("--coverage="));
      continue;
    }
    if (arg.starts_with("--baseline=")) {
      baseline_path = arg.substr(std::strlen("--baseline="));
      continue;
    }
    if (arg.starts_with("--log-level=")) {
      const auto level =
          util::parse_log_level(arg.substr(std::strlen("--log-level=")));
      if (!level.has_value()) {
        std::fprintf(stderr,
                     "--log-level wants debug|info|warn|error|off\n");
        return 1;
      }
      util::set_log_level(*level);
      continue;
    }
    if (arg.starts_with("--")) {
      std::fprintf(stderr,
                   "unknown option %s\nusage: recovery_lab [fault-id] "
                   "[mechanism] [--repeats R] [--threads N] "
                   "[--telemetry=PATH] [--trace=PATH] [--coverage=PATH] "
                   "[--baseline=PATH] [--log-level=LEVEL]\n",
                   arg.c_str());
      return 1;
    }
    args.push_back(arg);
  }
  const std::string fault_id = !args.empty() ? args[0] : "apache-edt-02";
  const std::string mechanism_name =
      args.size() > 1 ? args[1] : "process-pairs";

  const corpus::SeedFault* seed = nullptr;
  const auto seeds = corpus::all_seeds();
  for (const auto& s : seeds) {
    if (s.fault_id == fault_id) {
      seed = &s;
      break;
    }
  }
  if (seed == nullptr) {
    std::fprintf(stderr, "unknown fault id '%s'; known ids look like "
                         "apache-edt-02, gnome-ei-04, mysql-edn-01\n",
                 fault_id.c_str());
    return 1;
  }

  harness::MechanismFactory factory;
  for (const auto& nm : harness::standard_mechanisms()) {
    if (nm.name == mechanism_name) factory = nm.make;
  }
  if (!factory) {
    std::fprintf(stderr, "unknown mechanism '%s'\n", mechanism_name.c_str());
    return 1;
  }

  std::printf("fault     : %s — %s\n", seed->fault_id.c_str(),
              seed->title.c_str());
  std::printf("trigger   : %s (%s)\n",
              std::string(core::to_string(seed->trigger)).c_str(),
              std::string(core::describe(seed->trigger)).c_str());
  std::printf("class     : %s\n",
              std::string(core::to_string(corpus::seed_class(*seed))).c_str());
  std::printf("mechanism : %s\n\n", mechanism_name.c_str());

  // Run the trial manually so we can narrate it.
  const bool want_telemetry = !telemetry_path.empty() || !trace_path.empty();
  const bool want_coverage = !coverage_path.empty() || !baseline_path.empty();
  telemetry::TrialTelemetry telem;
  obs::CoverageMap cover;
  const auto plan = inject::plan_for(*seed, 42);
  env::Environment environment(plan.env_config);
  telemetry::SpanTracer* tracer = nullptr;
  if (want_telemetry) {
    environment.set_counters(&telem.counters);
    telem.spans.bind_sim(&environment.clock());
    tracer = &telem.spans;
  }
  if (want_coverage) environment.set_coverage(&cover);
  // Opened/closed by hand: the scope must end before the export below, not
  // at the end of main.
  std::size_t trial_span = 0;
  if (tracer != nullptr) trial_span = tracer->open("trial");
  auto app = inject::make_app(seed->app);
  app->arm_fault(plan.fault);
  app->start(environment);
  plan.arm_environment(environment, *app);
  auto mechanism = factory();
  mechanism->attach(*app, environment);

  harness::Transcript transcript;
  transcript.record(harness::EventKind::kStart, environment.now(), 0,
                    std::string(app->name()) + " started");

  const auto workload = apps::make_workload(seed->app, plan.workload);
  std::size_t recoveries = 0;
  bool survived = true;
  std::size_t i = 0;
  std::size_t consecutive = 0;
  while (i < workload.size() * 2) {
    apps::WorkItem item = workload.items[i % workload.size()];
    if (consecutive > 0) mechanism->prepare_retry(item);
    const auto result = app->handle(item, environment);
    if (!apps::is_failure(result)) {
      consecutive = 0;
      ++i;
      continue;
    }
    transcript.record(harness::EventKind::kFailure, environment.now(), i,
                      result.detail + " [" + item.op + "]");
    if (++consecutive > 6 || recoveries >= 20) {
      survived = false;
      break;
    }
    transcript.record(harness::EventKind::kRecoveryBegin, environment.now(), i,
                      std::string(mechanism->name()));
    const auto recovery_start = environment.now();
    recovery::RecoveryAction action;
    {
      TELEM_SPAN(tracer, "recovery/" + mechanism_name);
      action = mechanism->recover(*app, environment);
    }
    if (want_telemetry) {
      ++telem.counters.recovery.attempts;
      if (action.recovered) {
        ++telem.counters.recovery.successes;
        telem.counters.recovery.items_rewound += action.rewind_items;
      } else {
        ++telem.counters.recovery.failures;
      }
      telem.recovery_latency_ticks.observe(
          static_cast<std::int64_t>(environment.now() - recovery_start));
    }
    ++recoveries;
    transcript.record(action.recovered ? harness::EventKind::kRecoveryOk
                                       : harness::EventKind::kRecoveryFailed,
                      environment.now(), i);
    if (!action.recovered) {
      survived = false;
      break;
    }
    i -= std::min(action.rewind_items, i);
  }
  transcript.record(harness::EventKind::kVerdict, environment.now(), i,
                    survived ? "workload completed: fault SURVIVED"
                             : "gave up: fault NOT survived");

  if (tracer != nullptr) tracer->close(trial_span);

  std::fputs(transcript.to_string().c_str(), stdout);
  std::printf("\nfailures observed: %zu, recoveries: %zu\n",
              transcript.count(harness::EventKind::kFailure), recoveries);

  if (want_telemetry) {
    telemetry::MetricsRegistry registry;
    telemetry::fold_into(telem, mechanism_name, registry);
    if (!telemetry_path.empty()) {
      const auto snapshot = registry.snapshot();
      const std::string payload = telemetry_path.ends_with(".json")
                                      ? telemetry::to_json(snapshot)
                                      : telemetry::to_prometheus(snapshot);
      if (!write_file(telemetry_path, payload)) return 1;
      std::printf("telemetry: wrote %s\n", telemetry_path.c_str());
    }
    if (!trace_path.empty()) {
      const std::string payload = telemetry::to_chrome_trace(
          {{fault_id + "/" + mechanism_name, &telem.spans}});
      if (!write_file(trace_path, payload)) return 1;
      std::printf("trace: wrote %s\n", trace_path.c_str());
    }
  }

  if (want_coverage) {
    obs::CoverageAtlas atlas;
    atlas.begin_study({*seed}, {mechanism_name});
    atlas.fold_trial(*seed, cover);
    std::printf("\ncoverage : %zu/%zu probes hit in the narrated trial\n",
                atlas.probes_hit(), obs::CoverageAtlas::probe_universe());
    if (!coverage_path.empty()) {
      const std::string payload =
          coverage_path.ends_with(".json")   ? obs::to_json(atlas)
          : coverage_path.ends_with(".html") ? obs::render_heatmap_html(atlas)
                                             : obs::render_text(atlas);
      if (!write_file(coverage_path, payload)) return 1;
      std::printf("coverage : wrote %s\n", coverage_path.c_str());
    }
    if (!baseline_path.empty()) {
      std::ifstream in(baseline_path, std::ios::binary);
      if (!in) {
        std::fprintf(stderr, "cannot read %s\n", baseline_path.c_str());
        return 1;
      }
      std::ostringstream buf;
      buf << in.rdbuf();
      const auto snapshot = obs::parse_snapshot(buf.str());
      if (!snapshot.ok()) {
        std::fprintf(stderr, "%s: %s\n", baseline_path.c_str(),
                     snapshot.error().c_str());
        return 1;
      }
      bool found = false;
      for (const auto& row : snapshot.value().specimens) {
        if (row.fault_id != fault_id) continue;
        found = true;
        std::printf("baseline : study recorded %llu probes hit over %llu "
                    "trials for this specimen\n",
                    static_cast<unsigned long long>(row.probes_hit),
                    static_cast<unsigned long long>(row.trials));
      }
      if (!found) {
        std::printf("baseline : %s has no record of %s\n",
                    baseline_path.c_str(), fault_id.c_str());
      }
    }
  }

  if (repeats > 0) {
    // Stability sweep: the narrated trial is one draw; races and timing
    // phases are probabilistic, so re-run the cell across `repeats`
    // differently-seeded trials on the parallel executor.
    const auto outcomes = harness::parallel_map<harness::TrialOutcome>(
        repeats, threads, [&](std::size_t r) {
          harness::TrialConfig config;
          config.seed = 1000 + static_cast<std::uint64_t>(r) * 131 +
                        util::fnv1a(seed->fault_id);
          const auto repeat_plan = inject::plan_for(*seed, config.seed);
          auto repeat_mechanism = factory();
          return harness::run_trial(repeat_plan, *repeat_mechanism, config);
        });
    std::size_t observed = 0, wins = 0;
    for (const auto& o : outcomes) {
      if (!o.failure_observed) continue;
      ++observed;
      if (o.survived) ++wins;
    }
    std::printf("stability: survived %zu/%zu fault-observing trials "
                "(%zu of %zu repeats, %zu lanes)\n",
                wins, observed, observed, repeats,
                harness::effective_threads(threads));
  }
  return survived ? 0 : 2;
}
