// Recovery lab: arm one fault from the study into its simulated application
// and watch a recovery mechanism fight it, step by step.
//
//   ./build/examples/recovery_lab [fault-id] [mechanism]
//   e.g. ./build/examples/recovery_lab apache-edt-02 process-pairs
//        ./build/examples/recovery_lab apache-edn-02 cold-restart
#include <cstdio>
#include <cstring>

#include "corpus/seeds.hpp"
#include "harness/experiment.hpp"
#include "harness/transcript.hpp"

using namespace faultstudy;

int main(int argc, char** argv) {
  const std::string fault_id = argc > 1 ? argv[1] : "apache-edt-02";
  const std::string mechanism_name = argc > 2 ? argv[2] : "process-pairs";

  const corpus::SeedFault* seed = nullptr;
  const auto seeds = corpus::all_seeds();
  for (const auto& s : seeds) {
    if (s.fault_id == fault_id) {
      seed = &s;
      break;
    }
  }
  if (seed == nullptr) {
    std::fprintf(stderr, "unknown fault id '%s'; known ids look like "
                         "apache-edt-02, gnome-ei-04, mysql-edn-01\n",
                 fault_id.c_str());
    return 1;
  }

  harness::MechanismFactory factory;
  for (const auto& nm : harness::standard_mechanisms()) {
    if (nm.name == mechanism_name) factory = nm.make;
  }
  if (!factory) {
    std::fprintf(stderr, "unknown mechanism '%s'\n", mechanism_name.c_str());
    return 1;
  }

  std::printf("fault     : %s — %s\n", seed->fault_id.c_str(),
              seed->title.c_str());
  std::printf("trigger   : %s (%s)\n",
              std::string(core::to_string(seed->trigger)).c_str(),
              std::string(core::describe(seed->trigger)).c_str());
  std::printf("class     : %s\n",
              std::string(core::to_string(corpus::seed_class(*seed))).c_str());
  std::printf("mechanism : %s\n\n", mechanism_name.c_str());

  // Run the trial manually so we can narrate it.
  const auto plan = inject::plan_for(*seed, 42);
  env::Environment environment(plan.env_config);
  auto app = inject::make_app(seed->app);
  app->arm_fault(plan.fault);
  app->start(environment);
  plan.arm_environment(environment, *app);
  auto mechanism = factory();
  mechanism->attach(*app, environment);

  harness::Transcript transcript;
  transcript.record(harness::EventKind::kStart, environment.now(), 0,
                    std::string(app->name()) + " started");

  const auto workload = apps::make_workload(seed->app, plan.workload);
  std::size_t recoveries = 0;
  bool survived = true;
  std::size_t i = 0;
  std::size_t consecutive = 0;
  while (i < workload.size() * 2) {
    apps::WorkItem item = workload.items[i % workload.size()];
    if (consecutive > 0) mechanism->prepare_retry(item);
    const auto result = app->handle(item, environment);
    if (!apps::is_failure(result)) {
      consecutive = 0;
      ++i;
      continue;
    }
    transcript.record(harness::EventKind::kFailure, environment.now(), i,
                      result.detail + " [" + item.op + "]");
    if (++consecutive > 6 || recoveries >= 20) {
      survived = false;
      break;
    }
    transcript.record(harness::EventKind::kRecoveryBegin, environment.now(), i,
                      std::string(mechanism->name()));
    const auto action = mechanism->recover(*app, environment);
    ++recoveries;
    transcript.record(action.recovered ? harness::EventKind::kRecoveryOk
                                       : harness::EventKind::kRecoveryFailed,
                      environment.now(), i);
    if (!action.recovered) {
      survived = false;
      break;
    }
    i -= std::min(action.rewind_items, i);
  }
  transcript.record(harness::EventKind::kVerdict, environment.now(), i,
                    survived ? "workload completed: fault SURVIVED"
                             : "gave up: fault NOT survived");

  std::fputs(transcript.to_string().c_str(), stdout);
  std::printf("\nfailures observed: %zu, recoveries: %zu\n",
              transcript.count(harness::EventKind::kFailure), recoveries);
  return survived ? 0 : 2;
}
