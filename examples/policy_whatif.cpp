// Policy what-if: the paper concedes the EDN/EDT split "is subjective and
// depends upon the recovery system in place" (Section 5.4). This example
// re-runs the classification under alternative rule policies — e.g. an
// environment that auto-grows full file systems, or one where DNS never
// heals — and shows how the headline numbers move (and how little the
// dominant EI share cares).
#include <cstdio>

#include "core/rules.hpp"
#include "corpus/seeds.hpp"
#include "report/table.hpp"
#include "util/strings.hpp"

using namespace faultstudy;

namespace {

core::ClassCounts classify_under(const core::RulePolicy& policy) {
  core::ClassCounts counts;
  for (const auto& seed : corpus::all_seeds()) {
    ++counts[policy.classify(seed.trigger)];
  }
  return counts;
}

void add_row(report::AsciiTable& t, const char* name,
             const core::RulePolicy& policy) {
  const auto c = classify_under(policy);
  t.add_row({name,
             std::to_string(c[core::FaultClass::kEnvironmentIndependent]),
             std::to_string(c[core::FaultClass::kEnvDependentNonTransient]),
             std::to_string(c[core::FaultClass::kEnvDependentTransient]),
             util::percent(c.fraction(core::FaultClass::kEnvDependentTransient)),
             std::to_string(policy.override_count())});
}

}  // namespace

int main() {
  std::puts("=== What-if: reclassification under alternative recovery-"
            "system assumptions (139 faults) ===\n");

  report::AsciiTable t({"policy", "EI", "EDN", "EDT", "EDT share",
                        "overrides"});

  add_row(t, "paper default", core::RulePolicy{});

  // A storage layer that automatically grows full volumes and rotates
  // oversized files — the paper: "if this becomes common, we would
  // re-classify this as an environment-dependent-transient fault".
  core::RulePolicy elastic_storage;
  elastic_storage.reclassify(core::Trigger::kFullFileSystem,
                             core::FaultClass::kEnvDependentTransient);
  elastic_storage.reclassify(core::Trigger::kFileSizeLimit,
                             core::FaultClass::kEnvDependentTransient);
  elastic_storage.reclassify(core::Trigger::kDiskCacheFull,
                             core::FaultClass::kEnvDependentTransient);
  add_row(t, "elastic storage", elastic_storage);

  // An OS that dynamically raises per-process descriptor limits.
  core::RulePolicy elastic_fds;
  elastic_fds.reclassify(core::Trigger::kFdExhaustion,
                         core::FaultClass::kEnvDependentTransient);
  elastic_fds.reclassify(core::Trigger::kExternalSocketLeak,
                         core::FaultClass::kEnvDependentTransient);
  add_row(t, "elastic descriptors", elastic_fds);

  // A pessimistic reading: infrastructure never heals on its own — slow
  // DNS and slow networks stay slow through recovery.
  core::RulePolicy frozen_infra;
  frozen_infra.reclassify(core::Trigger::kDnsSlow,
                          core::FaultClass::kEnvDependentNonTransient);
  frozen_infra.reclassify(core::Trigger::kNetworkSlow,
                          core::FaultClass::kEnvDependentNonTransient);
  frozen_infra.reclassify(core::Trigger::kDnsError,
                          core::FaultClass::kEnvDependentNonTransient);
  add_row(t, "frozen infrastructure", frozen_infra);

  // Everything optimistic at once.
  core::RulePolicy best_case = elastic_storage;
  best_case.reclassify(core::Trigger::kFdExhaustion,
                       core::FaultClass::kEnvDependentTransient);
  best_case.reclassify(core::Trigger::kExternalSocketLeak,
                       core::FaultClass::kEnvDependentTransient);
  best_case.reclassify(core::Trigger::kResourceLeakUnderLoad,
                       core::FaultClass::kEnvDependentTransient);
  add_row(t, "all-elastic best case", best_case);

  std::fputs(t.to_string().c_str(), stdout);

  std::puts("\nreading: even the friendliest recovery environment moves "
            "only the EDN/EDT boundary. The environment-independent "
            "majority — the faults that defeat generic recovery outright — "
            "does not move, which is the paper's core point.");
  return 0;
}
