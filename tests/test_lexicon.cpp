// Data-quality tests for the cue lexicon and the curated seed texts: the
// lexicon must reach every environment-dependent trigger, and every seed's
// text must carry evidence consistent with its planted class — the
// invariants that make the Tables 1-3 reproduction an honest exercise of
// the classifier rather than a coincidence.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/rule_classifier.hpp"
#include "corpus/seeds.hpp"

namespace faultstudy::core {
namespace {

/// Classifies a synthetic one-line report containing only the trigger's
/// canonical phrase, per trigger that has an unambiguous cue.
TEST(Lexicon, CanonicalPhrasesReachTheirTriggers) {
  const RuleClassifier classifier;
  const std::map<Trigger, std::string> canonical = {
      {Trigger::kFdExhaustion, "out of file descriptors"},
      {Trigger::kFullFileSystem, "no space left on device"},
      {Trigger::kFileSizeLimit, "maximum allowed file size"},
      {Trigger::kDiskCacheFull, "cannot store any more temporary files"},
      {Trigger::kHardwareRemoval, "pcmcia card is removed"},
      {Trigger::kHostnameChanged, "hostname of the machine was changed"},
      {Trigger::kExternalSocketLeak, "open sockets left around"},
      {Trigger::kCorruptFileMetadata, "illegal value in the owner field"},
      {Trigger::kReverseDnsMissing, "reverse dns is not configured"},
      {Trigger::kDnsError, "call to domain name service returns an error"},
      {Trigger::kProcessTableFull, "slots in the process table"},
      {Trigger::kWorkloadTiming, "presses stop on the browser"},
      {Trigger::kPortsHeldByChildren, "address already in use"},
      {Trigger::kDnsSlow, "slow domain name service"},
      {Trigger::kNetworkSlow, "slow network connection"},
      {Trigger::kEntropyShortage, "/dev/random"},
      {Trigger::kRaceCondition, "race condition"},
      {Trigger::kUnknownTransient, "works on a retry"},
      {Trigger::kBoundaryInput, "buffer overflow"},
      {Trigger::kMissingInitialization, "missing initialization"},
      {Trigger::kApiMisuse, "va_list"},
      {Trigger::kDeterministicLeak, "memory leak"},
  };
  for (const auto& [trigger, phrase] : canonical) {
    ReportText text;
    text.how_to_repeat = phrase;
    const auto result = classifier.classify(text);
    EXPECT_EQ(result.trigger, trigger) << phrase;
  }
}

TEST(Lexicon, EveryEnvDependentTriggerReachable) {
  // Over the full seed set, every environment-dependent trigger must be
  // produced at least once by the classifier (EI triggers may fall back to
  // the default when a seed has no mechanism cue — that is by design).
  const RuleClassifier classifier;
  std::set<Trigger> produced;
  for (const auto& seed : corpus::all_seeds()) {
    ReportText text;
    text.title = seed.title;
    text.how_to_repeat = seed.how_to_repeat;
    text.developer_comments = seed.developer_comment;
    produced.insert(classifier.classify(text).trigger);
  }
  // Triggers sharing report vocabulary are checked as groups: a report
  // about "sockets left open exhausting descriptors" legitimately lands on
  // either member, and the class is identical within each group.
  const std::set<Trigger> grouped = {
      Trigger::kNetworkResourceExhausted, Trigger::kResourceLeakUnderLoad,
      Trigger::kFdExhaustion, Trigger::kExternalSocketLeak};
  for (Trigger t : all_triggers()) {
    if (fault_class_of(t) == FaultClass::kEnvironmentIndependent) continue;
    if (grouped.contains(t)) continue;
    EXPECT_TRUE(produced.contains(t)) << to_string(t);
  }
  EXPECT_TRUE(produced.contains(Trigger::kNetworkResourceExhausted) ||
              produced.contains(Trigger::kResourceLeakUnderLoad));
  EXPECT_TRUE(produced.contains(Trigger::kFdExhaustion) ||
              produced.contains(Trigger::kExternalSocketLeak));
}

TEST(SeedTexts, EnvDependentSeedsCarryStrongEvidence) {
  // Every environment-dependent seed must classify with positive
  // confidence (cue evidence present), not by the EI default.
  const RuleClassifier classifier;
  for (const auto& seed : corpus::all_seeds()) {
    if (corpus::seed_class(seed) == FaultClass::kEnvironmentIndependent) {
      continue;
    }
    ReportText text;
    text.title = seed.title;
    text.how_to_repeat = seed.how_to_repeat;
    text.developer_comments = seed.developer_comment;
    const auto result = classifier.classify(text);
    EXPECT_GT(result.confidence, 0.0) << seed.fault_id;
    EXPECT_FALSE(result.evidence.empty()) << seed.fault_id;
  }
}

TEST(SeedTexts, EiSeedsNeverDominatedByEnvDependentCues) {
  // An EI seed's text may brush against environment vocabulary, but the
  // winning trigger must stay environment-independent.
  const RuleClassifier classifier;
  for (const auto& seed : corpus::all_seeds()) {
    if (corpus::seed_class(seed) != FaultClass::kEnvironmentIndependent) {
      continue;
    }
    ReportText text;
    text.title = seed.title;
    text.how_to_repeat = seed.how_to_repeat;
    text.developer_comments = seed.developer_comment;
    const auto result = classifier.classify(text);
    EXPECT_EQ(result.fault_class, FaultClass::kEnvironmentIndependent)
        << seed.fault_id << " won by "
        << to_string(result.trigger);
  }
}

TEST(SeedTexts, DescribedBugsKeepTheirPaperTriggers) {
  // The paper names the mechanism for its described bugs; the classifier
  // must agree at trigger granularity for the distinctive ones.
  const RuleClassifier classifier;
  // apache-ei-03 (va_list misuse, triggered by a nonexistent URL) carries
  // cues for both kApiMisuse and kBoundaryInput — both EI — so it is not
  // listed at trigger granularity.
  const std::map<std::string, Trigger> expectations = {
      {"apache-ei-01", Trigger::kBoundaryInput},
      {"apache-ei-05", Trigger::kDeterministicLeak},
      {"apache-edn-05", Trigger::kFullFileSystem},
      {"apache-edt-07", Trigger::kEntropyShortage},
      {"gnome-edn-03", Trigger::kCorruptFileMetadata},
      {"mysql-edn-02", Trigger::kReverseDnsMissing},
      {"mysql-edt-01", Trigger::kRaceCondition},
  };
  for (const auto& seed : corpus::all_seeds()) {
    const auto it = expectations.find(seed.fault_id);
    if (it == expectations.end()) continue;
    ReportText text;
    text.title = seed.title;
    text.how_to_repeat = seed.how_to_repeat;
    text.developer_comments = seed.developer_comment;
    EXPECT_EQ(classifier.classify(text).trigger, it->second) << seed.fault_id;
  }
}

}  // namespace
}  // namespace faultstudy::core
