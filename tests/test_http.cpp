// Tests for the HTTP request parser and its two study bugs, including the
// end-to-end path through the WebServer application.
#include <gtest/gtest.h>

#include "apps/http/request.hpp"
#include "apps/webserver.hpp"
#include "corpus/seeds.hpp"
#include "harness/experiment.hpp"
#include "recovery/process_pairs.hpp"
#include "util/rng.hpp"

namespace faultstudy::apps::http {
namespace {

// ----------------------------------------------------------------- parser

TEST(HttpParser, BasicRequestLine) {
  const auto out = parse_request("GET /index.html", {});
  EXPECT_EQ(out.status, ParseStatus::kOk);
  EXPECT_EQ(out.request.method, "GET");
  EXPECT_EQ(out.request.uri, "/index.html");
  EXPECT_EQ(out.request.path, "/index.html");
  EXPECT_TRUE(out.request.query.empty());
}

TEST(HttpParser, QuerySplit) {
  const auto out = parse_request("GET /cgi-bin/search?q=hello HTTP/1.0", {});
  EXPECT_EQ(out.status, ParseStatus::kOk);
  EXPECT_EQ(out.request.path, "/cgi-bin/search");
  EXPECT_EQ(out.request.query, "q=hello");
}

TEST(HttpParser, MalformedRequests) {
  EXPECT_EQ(parse_request("GARBAGE", {}).status, ParseStatus::kBadRequest);
  EXPECT_EQ(parse_request("GET relative/path", {}).status,
            ParseStatus::kBadRequest);
  EXPECT_EQ(parse_request("GET ", {}).status, ParseStatus::kBadRequest);
}

TEST(HttpParser, HashStableAndFixedPathUnbounded) {
  std::uint32_t h1 = 0, h2 = 0;
  EXPECT_TRUE(hash_uri("/abc", false, &h1));
  EXPECT_TRUE(hash_uri("/abc", false, &h2));
  EXPECT_EQ(h1, h2);
  // The fixed path handles arbitrarily long URIs.
  EXPECT_TRUE(hash_uri(std::string(10000, 'x'), false, &h1));
}

TEST(HttpBugs, LongUrlOverflowCrashesOnlyWhenArmed) {
  HttpFaultFlags buggy;
  buggy.long_url_hash_overflow = true;

  const std::string long_url = "GET /" + std::string(2000, 'a');
  EXPECT_EQ(parse_request(long_url, {}).status, ParseStatus::kOk);
  EXPECT_EQ(parse_request(long_url, buggy).status, ParseStatus::kCrash);

  // Short URLs are fine even with the bug present (boundary condition).
  EXPECT_EQ(parse_request("GET /short", buggy).status, ParseStatus::kOk);
}

TEST(HttpBugs, BoundaryIsExactlyTheBufferSize) {
  HttpFaultFlags buggy;
  buggy.long_url_hash_overflow = true;
  const std::string at_limit = "GET /" + std::string(kUriBufferSize - 1, 'b');
  const std::string over = "GET /" + std::string(kUriBufferSize, 'b');
  EXPECT_EQ(parse_request(at_limit, buggy).status, ParseStatus::kOk);
  EXPECT_EQ(parse_request(over, buggy).status, ParseStatus::kCrash);
}

TEST(HttpBugs, EmptyDirListingCrashesOnlyWhenArmed) {
  HttpFaultFlags buggy;
  buggy.empty_dir_palloc_bug = true;
  EXPECT_TRUE(index_directory({}, buggy).crashed);
  EXPECT_FALSE(index_directory({}, {}).crashed);
  const auto ok = index_directory({"a.html", "b.html"}, buggy);
  EXPECT_FALSE(ok.crashed);
  EXPECT_NE(ok.body.find("a.html"), std::string::npos);
}

// --------------------------------------------- through the application

apps::WorkItem http_item(std::string op, bool poison = false) {
  apps::WorkItem w;
  w.op = std::move(op);
  w.poison = poison;
  return w;
}

TEST(WebServerHttp, RealLongUrlBugCrashesServer) {
  env::Environment e;
  apps::WebServer server;
  apps::ActiveFault fault;
  fault.trigger = core::Trigger::kBoundaryInput;
  fault.symptom = core::Symptom::kCrash;
  fault.fault_id = "apache-ei-01";
  server.arm_fault(fault);
  ASSERT_TRUE(server.start(e));

  // Ordinary requests are served by the (buggy) parser without incident.
  EXPECT_FALSE(apps::is_failure(server.handle(http_item("GET /index.html"), e)));

  const auto r = server.handle(
      http_item("GET /search?q=" + std::string(2048, 'a'), true), e);
  EXPECT_EQ(r.status, apps::StepStatus::kCrash);
  EXPECT_NE(r.detail.find("hash calculation"), std::string::npos);
  EXPECT_FALSE(server.running());
}

TEST(WebServerHttp, RealEmptyDirBugCrashesServer) {
  env::Environment e;
  apps::WebServer server;
  apps::ActiveFault fault;
  fault.trigger = core::Trigger::kBoundaryInput;
  fault.symptom = core::Symptom::kCrash;
  fault.fault_id = "apache-ei-04";
  server.arm_fault(fault);
  ASSERT_TRUE(server.start(e));

  // A directory WITH entries lists fine.
  e.disk().append("/htdocs/docs/full/readme.html", 64);
  EXPECT_FALSE(apps::is_failure(server.handle(http_item("GET /docs/full/"), e)));
  const auto r = server.handle(http_item("GET /docs/empty/", true), e);
  EXPECT_EQ(r.status, apps::StepStatus::kCrash);
  EXPECT_NE(r.detail.find("palloc(0)"), std::string::npos);
}

TEST(WebServerHttp, RealizedFaultStillDefeatsGenericRecovery) {
  // End-to-end: the REAL long-URL bug through the harness behaves exactly
  // like the taxonomy predicts — process pairs cannot survive it.
  const auto seeds = corpus::all_seeds();
  for (const auto& seed : seeds) {
    if (seed.fault_id != "apache-ei-01") continue;
    harness::TrialConfig tc;
    tc.seed = 5 + util::fnv1a(seed.fault_id);
    const auto plan = inject::plan_for(seed, tc.seed);
    EXPECT_FALSE(plan.workload.poison_op.empty());
    recovery::ProcessPairs pp;
    const auto outcome = harness::run_trial(plan, pp, tc);
    EXPECT_TRUE(outcome.failure_observed);
    EXPECT_FALSE(outcome.survived);
    EXPECT_NE(outcome.first_failure.find("hash calculation"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace faultstudy::apps::http
