// Tests for the simulated applications: lifecycle, resource footprints,
// checkpoint/restore semantics, rejuvenation, and per-trigger fault
// activation mechanics.
#include <gtest/gtest.h>

#include "apps/database.hpp"
#include "apps/desktop.hpp"
#include "apps/webserver.hpp"

namespace faultstudy::apps {
namespace {

WorkItem item(std::string op, int id = 0) {
  WorkItem w;
  w.id = id;
  w.op = std::move(op);
  return w;
}

// ----------------------------------------------------------- lifecycle

TEST(WebServer, StartAcquiresFootprint) {
  env::Environment e;
  WebServer server;
  ASSERT_TRUE(server.start(e));
  EXPECT_TRUE(server.running());
  EXPECT_EQ(e.fds().held_by("apache"), WebServerConfig{}.base_fds);
  EXPECT_EQ(e.processes().count_owned_by("apache"),
            WebServerConfig{}.worker_pool);
  EXPECT_TRUE(e.network().port_bound(80));
  EXPECT_EQ(e.network().port_owner(80), "apache");
}

TEST(WebServer, StopReleasesEverything) {
  env::Environment e;
  WebServer server;
  ASSERT_TRUE(server.start(e));
  server.stop(e);
  EXPECT_FALSE(server.running());
  EXPECT_EQ(e.fds().used(), 0u);
  EXPECT_EQ(e.processes().used(), 0u);
  EXPECT_FALSE(e.network().port_bound(80));
}

TEST(WebServer, StartFailsWithoutFds) {
  env::EnvironmentConfig config;
  config.fd_slots = 2;  // fewer than the server needs
  env::Environment e(config);
  WebServer server;
  EXPECT_FALSE(server.start(e));
  EXPECT_EQ(e.fds().used(), 0u);  // nothing half-acquired
}

TEST(WebServer, StartFailsWhenPortTaken) {
  env::Environment e;
  e.network().bind_port(80, "squatter");
  WebServer server;
  EXPECT_FALSE(server.start(e));
  EXPECT_EQ(e.fds().used(), 0u);
}

TEST(WebServer, HandlesWorkload) {
  env::Environment e;
  WebServer server;
  ASSERT_TRUE(server.start(e));
  const auto w = make_workload(core::AppId::kApache, {});
  for (const auto& i : w.items) {
    const auto r = server.handle(i, e);
    EXPECT_FALSE(is_failure(r)) << r.detail;
  }
  EXPECT_EQ(server.requests_served(), w.size());
}

TEST(Database, LifecycleAndCatalog) {
  env::Environment e;
  Database db;
  ASSERT_TRUE(db.start(e));
  EXPECT_TRUE(e.network().port_bound(3306));
  const auto before = db.rows("orders");
  EXPECT_FALSE(is_failure(
      db.handle(item("INSERT INTO orders VALUES (9001, 'new')"), e)));
  EXPECT_EQ(db.rows("orders"), before + 1);
  EXPECT_FALSE(
      is_failure(db.handle(item("DELETE FROM sessions WHERE id = 1"), e)));
  EXPECT_EQ(db.rows("sessions"), 19u);
  db.stop(e);
  EXPECT_EQ(e.fds().used(), 0u);
}

TEST(Desktop, LifecycleAndWindows) {
  env::Environment e;
  Desktop desktop;
  ASSERT_TRUE(desktop.start(e));
  EXPECT_EQ(desktop.open_windows(), 1u);
  EXPECT_FALSE(is_failure(desktop.handle(item("open:file-manager"), e)));
  EXPECT_EQ(desktop.open_windows(), 2u);
  EXPECT_FALSE(is_failure(desktop.handle(item("play:notification-sound"), e)));
  desktop.stop(e);
}

TEST(Apps, HandleWhenStoppedIsError) {
  env::Environment e;
  WebServer server;
  const auto r = server.handle(item("GET /"), e);
  EXPECT_EQ(r.status, StepStatus::kError);
}

// ------------------------------------------------- snapshot / restore

TEST(Snapshot, RestoresCountersAndFootprint) {
  env::Environment e;
  WebServer server;
  ASSERT_TRUE(server.start(e));
  for (int i = 0; i < 5; ++i) server.handle(item("GET /", i), e);
  const auto snap = server.snapshot();
  for (int i = 5; i < 9; ++i) server.handle(item("GET /", i), e);
  EXPECT_EQ(server.requests_served(), 9u);

  ASSERT_TRUE(server.restore(snap, e));
  EXPECT_EQ(server.requests_served(), 5u);
  EXPECT_EQ(e.fds().held_by("apache"), WebServerConfig{}.base_fds);
  EXPECT_TRUE(e.network().port_bound(80));
  EXPECT_TRUE(server.running());
}

TEST(Snapshot, DatabaseTablesRestored) {
  env::Environment e;
  Database db;
  ASSERT_TRUE(db.start(e));
  const auto snap = db.snapshot();
  db.handle(item("INSERT INTO orders VALUES (9001, 'a')"), e);
  db.handle(item("INSERT INTO orders VALUES (9002, 'b')"), e);
  const auto grown = db.rows("orders");
  EXPECT_EQ(grown, 202u);
  ASSERT_TRUE(db.restore(snap, e));
  EXPECT_EQ(db.rows("orders"), grown - 2);
}

TEST(Snapshot, WrongSnapshotTypeRejected) {
  env::Environment e;
  WebServer server;
  Database db;
  ASSERT_TRUE(server.start(e));
  ASSERT_TRUE(db.start(e));
  EXPECT_FALSE(server.restore(db.snapshot(), e));
}

TEST(Snapshot, RestorePreservesLeakedFootprint) {
  // The EDN crux: a truly generic restore brings leaked descriptors back.
  env::Environment e;
  WebServer server;
  ActiveFault fault;
  fault.trigger = core::Trigger::kFdExhaustion;
  fault.symptom = core::Symptom::kErrorReturn;
  fault.fds_per_leak = 4;
  server.arm_fault(fault);
  ASSERT_TRUE(server.start(e));

  for (int i = 0; i < 3; ++i) {
    ASSERT_FALSE(is_failure(server.handle(item("GET /", i), e)));
  }
  const auto leaked_footprint = server.fd_footprint();
  EXPECT_EQ(leaked_footprint, WebServerConfig{}.base_fds + 12);

  const auto snap = server.snapshot();
  ASSERT_TRUE(server.restore(snap, e));
  EXPECT_EQ(server.fd_footprint(), leaked_footprint);
  EXPECT_EQ(e.fds().held_by("apache"), leaked_footprint);
}

TEST(Rejuvenate, DropsLeaksToBaseline) {
  env::Environment e;
  WebServer server;
  ActiveFault fault;
  fault.trigger = core::Trigger::kFdExhaustion;
  fault.symptom = core::Symptom::kErrorReturn;
  server.arm_fault(fault);
  ASSERT_TRUE(server.start(e));
  for (int i = 0; i < 3; ++i) server.handle(item("GET /", i), e);
  EXPECT_GT(server.fd_footprint(), WebServerConfig{}.base_fds);

  server.rejuvenate(e);
  EXPECT_EQ(server.fd_footprint(), WebServerConfig{}.base_fds);
  EXPECT_EQ(server.leaked_units(), 0u);
  EXPECT_TRUE(server.running());
}

TEST(Rejuvenate, WebServerPrunesCacheAndLog) {
  env::Environment e;
  WebServer server;
  ASSERT_TRUE(server.start(e));
  WorkItem w = item("GET /big");
  w.write_bytes = 512;
  server.handle(w, e);
  EXPECT_GT(e.disk().used(), 0u);
  server.rejuvenate(e);
  EXPECT_EQ(e.disk().used_under("/var/cache/apache"), 0u);
  EXPECT_EQ(e.disk().stat("/var/log/apache/access_log")->size, 0u);
}

// ------------------------------------------------- fault mechanics

TEST(Fault, PoisonItemCrashesDeterministically) {
  env::Environment e;
  WebServer server;
  ActiveFault fault;
  fault.trigger = core::Trigger::kBoundaryInput;
  fault.symptom = core::Symptom::kCrash;
  server.arm_fault(fault);
  ASSERT_TRUE(server.start(e));

  WorkItem poison = item("GET /very-long-url");
  poison.poison = true;
  const auto r = server.handle(poison, e);
  EXPECT_EQ(r.status, StepStatus::kCrash);
  EXPECT_FALSE(server.running());
}

TEST(Fault, NonPoisonItemsUnaffected) {
  env::Environment e;
  WebServer server;
  ActiveFault fault;
  fault.trigger = core::Trigger::kBoundaryInput;
  server.arm_fault(fault);
  ASSERT_TRUE(server.start(e));
  EXPECT_FALSE(is_failure(server.handle(item("GET /normal"), e)));
}

TEST(Fault, SymptomControlsFailureKind) {
  env::Environment e;
  Desktop desktop;
  ActiveFault fault;
  fault.trigger = core::Trigger::kUiEventSequence;
  fault.symptom = core::Symptom::kHang;
  desktop.arm_fault(fault);
  ASSERT_TRUE(desktop.start(e));
  WorkItem poison = item("click:panel-menu");
  poison.poison = true;
  EXPECT_EQ(desktop.handle(poison, e).status, StepStatus::kHang);
}

TEST(Fault, DeterministicLeakFailsAtLimit) {
  env::Environment e;
  WebServer server;
  ActiveFault fault;
  fault.trigger = core::Trigger::kDeterministicLeak;
  fault.symptom = core::Symptom::kCrash;
  fault.leak_limit = 5;
  server.arm_fault(fault);
  ASSERT_TRUE(server.start(e));
  int failures = 0;
  for (int i = 0; i < 5; ++i) {
    if (is_failure(server.handle(item("GET /", i), e))) ++failures;
  }
  EXPECT_EQ(failures, 1);
  EXPECT_EQ(server.leaked_units(), 5u);
}

TEST(Fault, HostnameChangeBites) {
  env::Environment e;
  Desktop desktop;
  ActiveFault fault;
  fault.trigger = core::Trigger::kHostnameChanged;
  fault.symptom = core::Symptom::kErrorReturn;
  desktop.arm_fault(fault);
  ASSERT_TRUE(desktop.start(e));
  EXPECT_FALSE(is_failure(desktop.handle(item("open:calendar-view"), e)));
  e.set_hostname("renamed");
  EXPECT_TRUE(is_failure(desktop.handle(item("open:calendar-view"), e)));
  // Rejuvenation re-reads the hostname.
  desktop.rejuvenate(e);
  EXPECT_FALSE(is_failure(desktop.handle(item("open:calendar-view"), e)));
}

TEST(Fault, DnsErrorOnlyOnLookupItems) {
  env::Environment e;
  WebServer server;
  ActiveFault fault;
  fault.trigger = core::Trigger::kDnsError;
  fault.symptom = core::Symptom::kErrorReturn;
  server.arm_fault(fault);
  ASSERT_TRUE(server.start(e));
  e.dns().break_until(env::DnsHealth::kErroring, 1000);

  EXPECT_FALSE(is_failure(server.handle(item("GET /static"), e)));
  WorkItem lookup = item("GET /cgi");
  lookup.lookup_host = "peer.example.net";
  EXPECT_TRUE(is_failure(server.handle(lookup, e)));
  // After the DNS heals, the same item succeeds.
  e.advance(2000);
  EXPECT_FALSE(is_failure(server.handle(lookup, e)));
}

TEST(Fault, RaceTriggersOnlyInHazardWindow) {
  env::Environment e;
  Database db;
  ActiveFault fault;
  fault.trigger = core::Trigger::kRaceCondition;
  fault.symptom = core::Symptom::kCrash;
  fault.hazard_start = 0.0;
  fault.hazard_width = 1.0;  // every interleaving is hazardous
  db.arm_fault(fault);
  ASSERT_TRUE(db.start(e));
  WorkItem racy = item("SELECT 1");
  racy.racy = true;
  EXPECT_TRUE(is_failure(db.handle(racy, e)));

  ActiveFault never = fault;
  never.hazard_width = 0.0;  // empty window: never triggers
  env::Environment e2;       // fresh environment (port 3306 is free here)
  Database db2;
  db2.arm_fault(never);
  ASSERT_TRUE(db2.start(e2));
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(is_failure(db2.handle(racy, e2)));
  }
}

TEST(Fault, UnknownTransientFiresExactlyOnce) {
  env::Environment e;
  Desktop desktop;
  ActiveFault fault;
  fault.trigger = core::Trigger::kUnknownTransient;
  fault.symptom = core::Symptom::kCrash;
  desktop.arm_fault(fault);
  ASSERT_TRUE(desktop.start(e));
  EXPECT_TRUE(is_failure(desktop.handle(item("click:panel-menu"), e)));
  // The app crashed; bring it back without touching the hidden condition.
  const auto snap = desktop.snapshot();
  ASSERT_TRUE(desktop.restore(snap, e));
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(is_failure(desktop.handle(item("click:panel-menu", i), e)));
  }
}

TEST(Fault, ProcessTableChildrenAccumulate) {
  env::EnvironmentConfig config;
  config.process_slots = WebServerConfig{}.worker_pool + 3;
  env::Environment e(config);
  WebServer server;
  ActiveFault fault;
  fault.trigger = core::Trigger::kProcessTableFull;
  fault.symptom = core::Symptom::kHang;
  server.arm_fault(fault);
  ASSERT_TRUE(server.start(e));

  WorkItem heavy = item("POST /cgi-bin/form");
  heavy.heavy = true;
  EXPECT_FALSE(is_failure(server.handle(heavy, e)));
  EXPECT_FALSE(is_failure(server.handle(heavy, e)));
  EXPECT_FALSE(is_failure(server.handle(heavy, e)));
  // Table now full of hung children: next heavy item fails.
  EXPECT_TRUE(is_failure(server.handle(heavy, e)));
  EXPECT_EQ(e.processes().count_hung_owned_by("apache"), 3u);
}

TEST(Fault, EntropyShortageOnSslItems) {
  env::EnvironmentConfig config;
  config.entropy_bits = 0;
  config.entropy_refill_per_tick = 0;
  env::Environment e(config);
  WebServer server;
  ActiveFault fault;
  fault.trigger = core::Trigger::kEntropyShortage;
  fault.symptom = core::Symptom::kErrorReturn;  // keep the server running
  server.arm_fault(fault);
  ASSERT_TRUE(server.start(e));
  WorkItem ssl = item("GET https://secure/checkout");
  ssl.entropy_bits = 256;
  EXPECT_TRUE(is_failure(server.handle(ssl, e)));
  EXPECT_FALSE(is_failure(server.handle(item("GET /plain"), e)));
}

}  // namespace
}  // namespace faultstudy::apps
