// Tests for the one-call study report: the full methodology must come out
// the other end with the paper's numbers embedded in the markdown.
#include <gtest/gtest.h>

#include "report/study_report.hpp"

namespace faultstudy::report {
namespace {

class StudyReportTest : public ::testing::Test {
 protected:
  // Run the (deterministic) study once for all tests in the suite.
  static void SetUpTestSuite() {
    StudyReportOptions options;
    options.matrix_repeats = 1;  // keep the suite fast; still deterministic
    results_ = new StudyResults(run_full_study(options));
    options_ = options;
  }
  static void TearDownTestSuite() {
    delete results_;
    results_ = nullptr;
  }

  static StudyResults* results_;
  static StudyReportOptions options_;
};

StudyResults* StudyReportTest::results_ = nullptr;
StudyReportOptions StudyReportTest::options_;

TEST_F(StudyReportTest, MinesAll139Faults) {
  EXPECT_EQ(results_->apache.bugs.size(), 50u);
  EXPECT_EQ(results_->gnome.bugs.size(), 45u);
  EXPECT_EQ(results_->mysql.bugs.size(), 44u);
  EXPECT_EQ(results_->all_faults.size(), 139u);
  EXPECT_EQ(results_->summary.total_faults, 139u);
}

TEST_F(StudyReportTest, MatrixIncluded) {
  ASSERT_EQ(results_->matrix.reports.size(), 6u);
  EXPECT_EQ(results_->matrix.reports.front().mechanism, "process-pairs");
  EXPECT_EQ(results_->matrix.reports.front().survived_all(), 12u);
}

TEST_F(StudyReportTest, MarkdownContainsPaperNumbers) {
  const auto md = render_markdown(*results_, options_);
  EXPECT_NE(md.find("| environment-independent | 36 |"), std::string::npos);
  EXPECT_NE(md.find("| environment-independent | 39 |"), std::string::npos);
  EXPECT_NE(md.find("| environment-independent | 38 |"), std::string::npos);
  EXPECT_NE(md.find("Total unique faults: 139"), std::string::npos);
  EXPECT_NE(md.find("72.0%"), std::string::npos);
  EXPECT_NE(md.find("Figure 1"), std::string::npos);
  EXPECT_NE(md.find("process-pairs"), std::string::npos);
  EXPECT_NE(md.find("12/12"), std::string::npos);
}

TEST_F(StudyReportTest, OptionsPruneSections) {
  StudyReportOptions bare;
  bare.include_figures = false;
  bare.include_recovery_matrix = false;
  bare.include_funnels = false;
  StudyResults no_matrix = *results_;
  no_matrix.matrix = {};
  const auto md = render_markdown(no_matrix, bare);
  EXPECT_EQ(md.find("Figure 1"), std::string::npos);
  EXPECT_EQ(md.find("Recovery experiment"), std::string::npos);
  EXPECT_EQ(md.find("Funnel:"), std::string::npos);
  EXPECT_NE(md.find("Table 1"), std::string::npos);
}

}  // namespace
}  // namespace faultstudy::report
