// Tests for the telemetry layer: histogram/registry mechanics, span
// tracing against the simulated clock, the exporters, and the determinism
// contract — an instrumented run_matrix over the full specimen corpus must
// produce identical metric snapshots, identical span traces, and a
// byte-identical Chrome trace for threads=1 and threads=4.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "corpus/seeds.hpp"
#include "corpus/synth.hpp"
#include "env/clock.hpp"
#include "harness/experiment.hpp"
#include "mining/pipeline.hpp"
#include "telemetry/counters.hpp"
#include "telemetry/export.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/span.hpp"
#include "telemetry/trial.hpp"
#include "util/thread_pool.hpp"

namespace faultstudy {
namespace {

// --- histogram ------------------------------------------------------------

TEST(Histogram, PlacesValuesByInclusiveUpperBound) {
  telemetry::Histogram h({10, 20, 30});
  h.observe(10);   // first bucket (<= 10)
  h.observe(11);   // second
  h.observe(30);   // third
  h.observe(500);  // overflow
  EXPECT_EQ(h.buckets(), (std::vector<std::uint64_t>{1, 1, 1, 1}));
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 551);
}

TEST(Histogram, MergeSumsMatchingLayouts) {
  telemetry::Histogram a({1, 2});
  telemetry::Histogram b({1, 2});
  a.observe(1);
  b.observe(2);
  b.observe(99);
  a.merge(b);
  EXPECT_EQ(a.buckets(), (std::vector<std::uint64_t>{1, 1, 1}));
  EXPECT_EQ(a.count(), 3u);
}

TEST(Histogram, MergeMismatchedBoundsFoldsIntoOverflow) {
  telemetry::Histogram a({1, 2});
  telemetry::Histogram b({5});
  b.observe(3);
  b.observe(4);
  a.merge(b);
  EXPECT_EQ(a.buckets(), (std::vector<std::uint64_t>{0, 0, 2}));
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.sum(), 7);
}

TEST(Histogram, FromBucketsReconstructsCounts) {
  const auto h = telemetry::Histogram::from_buckets(
      {1, 3}, std::vector<std::uint64_t>{2, 0, 5}, 40);
  EXPECT_EQ(h.count(), 7u);
  EXPECT_EQ(h.sum(), 40);
  EXPECT_EQ(h.buckets(), (std::vector<std::uint64_t>{2, 0, 5}));
}

// --- registry -------------------------------------------------------------

TEST(MetricsRegistry, RegistrationInternsNames) {
  telemetry::MetricsRegistry reg;
  const auto a = reg.counter("x");
  const auto b = reg.counter("x");
  EXPECT_EQ(a.index, b.index);
  EXPECT_NE(reg.counter("y").index, a.index);
}

TEST(MetricsRegistry, ShardsFoldIntoOneSnapshotValue) {
  telemetry::MetricsRegistry reg(4);
  const auto c = reg.counter("hits");
  const auto g = reg.gauge("depth");
  for (std::size_t shard = 0; shard < 4; ++shard) {
    reg.add(c, shard + 1, shard);
    reg.peak(g, static_cast<std::int64_t>(shard * 10), shard);
  }
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].value, 1u + 2u + 3u + 4u);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].value, 30);
}

TEST(MetricsRegistry, SnapshotSortsByName) {
  telemetry::MetricsRegistry reg;
  reg.add(reg.counter("zebra"));
  reg.add(reg.counter("alpha"));
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].name, "alpha");
  EXPECT_EQ(snap.counters[1].name, "zebra");
}

TEST(MetricsRegistry, MergeFromUnionsByName) {
  telemetry::MetricsRegistry a;
  telemetry::MetricsRegistry b;
  a.add(a.counter("shared"), 2);
  b.add(b.counter("shared"), 3);
  b.add(b.counter("only_b"), 1);
  b.peak(b.gauge("high"), 7);
  a.merge_from(b);
  const auto snap = a.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].name, "only_b");
  EXPECT_EQ(snap.counters[1].value, 5u);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].value, 7);
}

TEST(Counters, MergeSumsCountersAndMaxesPeaks) {
  telemetry::TrialCounters a;
  telemetry::TrialCounters b;
  a.resources.proc_spawns = 2;
  a.resources.peak_procs = 5;
  b.resources.proc_spawns = 3;
  b.resources.peak_procs = 4;
  b.recovery.attempts = 1;
  merge(a, b);
  EXPECT_EQ(a.resources.proc_spawns, 5u);
  EXPECT_EQ(a.resources.peak_procs, 5u);
  EXPECT_EQ(a.recovery.attempts, 1u);
}

// --- spans ----------------------------------------------------------------

TEST(SpanTracer, SimSpansUseVirtualClock) {
  env::VirtualClock clock;
  telemetry::SpanTracer tracer;
  tracer.bind_sim(&clock);
  clock.advance(5);
  {
    telemetry::SpanScope outer(&tracer, "outer");
    clock.advance(10);
    {
      telemetry::SpanScope inner(&tracer, "inner");
      clock.advance(2);
    }
  }
  ASSERT_EQ(tracer.spans().size(), 2u);
  EXPECT_EQ(tracer.spans()[0].name, "outer");
  EXPECT_EQ(tracer.spans()[0].start, 5);
  EXPECT_EQ(tracer.spans()[0].duration, 12);
  EXPECT_EQ(tracer.spans()[0].depth, 0u);
  EXPECT_EQ(tracer.spans()[1].name, "inner");
  EXPECT_EQ(tracer.spans()[1].start, 15);
  EXPECT_EQ(tracer.spans()[1].duration, 2);
  EXPECT_EQ(tracer.spans()[1].depth, 1u);
}

TEST(SpanTracer, UnboundTracerRecordsNothing) {
  telemetry::SpanTracer tracer;
  { telemetry::SpanScope scope(&tracer, "ignored"); }
  EXPECT_TRUE(tracer.empty());
  { telemetry::SpanScope null_scope(nullptr, "also ignored"); }
}

#if FAULTSTUDY_TELEMETRY
TEST(TelemetryMacros, NullSinkIsANoOp) {
  telemetry::TrialCounters counters;
  telemetry::TrialCounters* sink = nullptr;
  FS_TELEM(sink, resources.proc_spawns++);
  EXPECT_EQ(counters.resources.proc_spawns, 0u);
  sink = &counters;
  FS_TELEM(sink, resources.proc_spawns++);
  EXPECT_EQ(counters.resources.proc_spawns, 1u);
  FS_TELEM_PEAK(&counters.resources, peak_procs, 9);
  FS_TELEM_PEAK(&counters.resources, peak_procs, 3);
  EXPECT_EQ(counters.resources.peak_procs, 9u);
}
#endif

// --- exporters ------------------------------------------------------------

TEST(Exporters, ChromeTraceEmitsCompleteEvents) {
  env::VirtualClock clock;
  telemetry::SpanTracer tracer;
  tracer.bind_sim(&clock);
  {
    telemetry::SpanScope scope(&tracer, "trial");
    clock.advance(7);
  }
  const auto json = telemetry::to_chrome_trace({{"cell \"a\"", &tracer}});
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":7"), std::string::npos);
  EXPECT_NE(json.find("cell \\\"a\\\""), std::string::npos);  // escaped label
}

TEST(Exporters, PrometheusSanitizesNamesAndExpandsHistograms) {
  telemetry::MetricsRegistry reg;
  reg.add(reg.counter("env/proc/spawns"), 4);
  const auto id = reg.histogram("lat", {1, 2});
  reg.observe(id, 1);
  reg.observe(id, 99);
  const auto text = telemetry::to_prometheus(reg.snapshot());
  // Counters get the conventional _total suffix plus HELP/TYPE headers.
  EXPECT_NE(text.find("env_proc_spawns_total 4"), std::string::npos);
  EXPECT_NE(text.find("# TYPE env_proc_spawns_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("# HELP env_proc_spawns_total"), std::string::npos);
  EXPECT_NE(text.find("lat_bucket{le=\"1\"} 1"), std::string::npos);
  EXPECT_NE(text.find("lat_bucket{le=\"+Inf\"} 2"), std::string::npos);
  EXPECT_NE(text.find("lat_count 2"), std::string::npos);
}

TEST(Exporters, PrometheusOutputPassesLintRules) {
  telemetry::MetricsRegistry reg;
  reg.add(reg.counter("9starts/with-digit"), 1);
  reg.add(reg.counter("already_total"), 2);
  reg.peak(reg.gauge("peak.procs"), 7);
  const auto snapid = reg.histogram("recovery/latency", {10, 100});
  reg.observe(snapid, 5);
  const auto text = telemetry::to_prometheus(reg.snapshot());

  // Promtool-style lint: every line is a comment or `name{labels} value`
  // with a legal metric name; HELP precedes TYPE for each metric.
  std::istringstream lines(text);
  std::string line;
  std::string last_help_name;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    if (line.starts_with("# HELP ")) {
      last_help_name = line.substr(7, line.find(' ', 7) - 7);
      continue;
    }
    if (line.starts_with("# TYPE ")) {
      // TYPE always follows the HELP line of the same metric.
      EXPECT_EQ(line.substr(7, line.find(' ', 7) - 7), last_help_name);
      continue;
    }
    const std::size_t name_end = line.find_first_of("{ ");
    ASSERT_NE(name_end, std::string::npos) << line;
    const std::string name = line.substr(0, name_end);
    ASSERT_FALSE(name.empty());
    EXPECT_TRUE(std::isalpha(static_cast<unsigned char>(name[0])) ||
                name[0] == '_' || name[0] == ':')
        << name;
    for (const char c : name) {
      EXPECT_TRUE(std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
                  c == ':')
          << name;
    }
  }
  // Leading digits are prefixed, counters end in _total exactly once.
  EXPECT_NE(text.find("_9starts_with_digit_total 1"), std::string::npos);
  EXPECT_NE(text.find("already_total 2"), std::string::npos);
  EXPECT_EQ(text.find("already_total_total"), std::string::npos);
  // The gauge keeps its bare name; the histogram ends with +Inf == _count.
  EXPECT_NE(text.find("peak_procs 7"), std::string::npos);
  EXPECT_NE(text.find("recovery_latency_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("recovery_latency_count 1"), std::string::npos);
}

TEST(Exporters, JsonRoundsTripKeyValues) {
  telemetry::MetricsRegistry reg;
  reg.add(reg.counter("c"), 2);
  reg.peak(reg.gauge("g"), -3);
  const auto json = telemetry::to_json(reg.snapshot());
  EXPECT_NE(json.find("\"c\":2"), std::string::npos);
  EXPECT_NE(json.find("\"g\":-3"), std::string::npos);
}

// --- pool stats -----------------------------------------------------------

TEST(PoolStats, AmbientSinkProfilesTransientPools) {
  util::PoolStats stats;
  stats.reset(4);
  util::set_ambient_pool_stats(&stats);
  std::vector<int> out(512, 0);
  util::parallel_for_index(out.size(), 4,
                           [&](std::size_t i) { out[i] = 1; });
  util::set_ambient_pool_stats(nullptr);

  std::uint64_t indices = 0;
  for (const auto& lane : stats.lanes) indices += lane.indices;
  EXPECT_EQ(stats.sweeps, 1u);
  EXPECT_EQ(indices, out.size());

  telemetry::MetricsRegistry reg;
  telemetry::fold_pool_stats(stats, "pool", reg);
  const auto snap = reg.snapshot();
  bool saw_indices = false;
  for (const auto& c : snap.counters) {
    if (c.name == "pool/indices") {
      saw_indices = true;
      EXPECT_EQ(c.value, out.size());
    }
  }
  EXPECT_TRUE(saw_indices);
}

// --- determinism ----------------------------------------------------------

#if FAULTSTUDY_TELEMETRY
TEST(TelemetryDeterminism, InstrumentedTrialMatchesItselfAndCounts) {
  const auto seeds = corpus::all_seeds();
  ASSERT_FALSE(seeds.empty());
  const auto plan = inject::plan_for(seeds.front(), 7);
  const auto factory = harness::standard_mechanisms().front().make;

  telemetry::TrialTelemetry a;
  telemetry::TrialTelemetry b;
  {
    auto mech = factory();
    harness::run_trial(plan, *mech, {}, nullptr, &a);
  }
  {
    auto mech = factory();
    harness::run_trial(plan, *mech, {}, nullptr, &b);
  }
  EXPECT_EQ(a.spans.spans(), b.spans.spans());
  EXPECT_EQ(a.recovery_latency_ticks, b.recovery_latency_ticks);
  EXPECT_EQ(a.item_latency_ticks, b.item_latency_ticks);
  // The workload ran, so per-item latencies were recorded.
  EXPECT_GT(a.item_latency_ticks.count(), 0u);
}

TEST(TelemetryDeterminism, MatrixSnapshotsAndTracesMatchAcrossThreadCounts) {
  // The full specimen corpus: the strongest form of the determinism
  // contract — study-level metrics, kept traces, and the serialized Chrome
  // timeline must be byte-identical for threads=1 and threads=4.
  const auto seeds = corpus::all_seeds();
  const auto mechanisms = harness::standard_mechanisms();

  const auto run = [&](std::size_t threads) {
    harness::TrialConfig config;
    config.threads = threads;
    auto telem = std::make_unique<telemetry::StudyTelemetry>();
    harness::run_matrix(seeds, mechanisms, config, 3, telem.get());
    return telem;
  };
  const auto serial = run(1);
  const auto wide = run(4);

  EXPECT_EQ(serial->metrics.snapshot(), wide->metrics.snapshot());

  ASSERT_EQ(serial->traces.size(), wide->traces.size());
  for (std::size_t i = 0; i < serial->traces.size(); ++i) {
    EXPECT_EQ(serial->traces[i].first, wide->traces[i].first);
    EXPECT_EQ(serial->traces[i].second.spans(),
              wide->traces[i].second.spans())
        << serial->traces[i].first;
  }

  const auto to_threads = [](const telemetry::StudyTelemetry& t) {
    std::vector<telemetry::TraceThread> threads;
    threads.reserve(t.traces.size());
    for (const auto& [label, tracer] : t.traces) {
      threads.push_back({label, &tracer});
    }
    return threads;
  };
  EXPECT_EQ(telemetry::to_chrome_trace(to_threads(*serial)),
            telemetry::to_chrome_trace(to_threads(*wide)));
  EXPECT_EQ(telemetry::to_prometheus(serial->metrics.snapshot()),
            telemetry::to_prometheus(wide->metrics.snapshot()));
}

TEST(TelemetryDeterminism, InstrumentationDoesNotChangeResults) {
  // Telemetry observes; it must never steer. The matrix with and without a
  // sink attached reports the same survival table.
  auto seeds = corpus::all_seeds();
  seeds.resize(12);
  const auto mechanisms = harness::standard_mechanisms();
  harness::TrialConfig config;
  config.threads = 2;

  const auto bare = harness::run_matrix(seeds, mechanisms, config);
  telemetry::StudyTelemetry telem;
  const auto instrumented =
      harness::run_matrix(seeds, mechanisms, config, 3, &telem);

  ASSERT_EQ(bare.reports.size(), instrumented.reports.size());
  for (std::size_t i = 0; i < bare.reports.size(); ++i) {
    EXPECT_EQ(bare.reports[i].survived, instrumented.reports[i].survived);
    EXPECT_EQ(bare.reports[i].total, instrumented.reports[i].total);
  }
  EXPECT_FALSE(telem.metrics.snapshot().empty());
  EXPECT_FALSE(telem.traces.empty());
}

TEST(TelemetryDeterminism, PipelineProfileDoesNotChangeMinedBugs) {
  const auto tracker = corpus::make_apache_tracker();
  mining::PipelineOptions bare;
  bare.threads = 2;
  mining::PipelineOptions profiled = bare;
  telemetry::PipelineTelemetry profile;
  profiled.telemetry = &profile;

  const auto a = mining::run_tracker_pipeline(tracker, bare);
  const auto b = mining::run_tracker_pipeline(tracker, profiled);
  ASSERT_EQ(a.bugs.size(), b.bugs.size());
  for (std::size_t i = 0; i < a.bugs.size(); ++i) {
    EXPECT_EQ(a.bugs[i].report_ids, b.bugs[i].report_ids);
  }
  // Wall-domain spans exist but their durations are real time — assert
  // structure only, never values.
  EXPECT_FALSE(profile.spans.empty());
  EXPECT_TRUE(profile.spans.wall_domain());
  EXPECT_FALSE(profile.metrics.snapshot().empty());
}
#endif  // FAULTSTUDY_TELEMETRY

}  // namespace
}  // namespace faultstudy
