// Unit tests for the text substrate: tokenizer, stopwords, stemmer, TF-IDF,
// MinHash (including the Jaccard-estimation property), inverted index.
#include <gtest/gtest.h>

#include <cmath>

#include "text/index.hpp"
#include "text/minhash.hpp"
#include "text/stemmer.hpp"
#include "text/stopwords.hpp"
#include "text/tfidf.hpp"
#include "text/tokenizer.hpp"
#include "util/rng.hpp"

namespace faultstudy::text {
namespace {

// ------------------------------------------------------------- tokenizer

TEST(Tokenizer, BasicWords) {
  const auto t = tokenize("The server crashed hard");
  EXPECT_EQ(t, (std::vector<std::string>{"the", "server", "crashed", "hard"}));
}

TEST(Tokenizer, KeepsVersionsAndIdentifiers) {
  const auto t = tokenize("Apache 2.0.36 uses va_list in ap_log_rerror");
  EXPECT_NE(std::find(t.begin(), t.end(), "2.0.36"), t.end());
  EXPECT_NE(std::find(t.begin(), t.end(), "va_list"), t.end());
  EXPECT_NE(std::find(t.begin(), t.end(), "ap_log_rerror"), t.end());
}

TEST(Tokenizer, KeepsCompoundFilenames) {
  const auto t = tokenize("double-clicking a tar.gz file");
  EXPECT_NE(std::find(t.begin(), t.end(), "tar.gz"), t.end());
  EXPECT_NE(std::find(t.begin(), t.end(), "double-clicking"), t.end());
}

TEST(Tokenizer, TrailingJoinerNotAbsorbed) {
  const auto t = tokenize("end of sentence.");
  EXPECT_NE(std::find(t.begin(), t.end(), "sentence"), t.end());
  EXPECT_EQ(std::find(t.begin(), t.end(), "sentence."), t.end());
}

TEST(Tokenizer, MinLengthDropsShortTokens) {
  TokenizerOptions opt;
  opt.min_length = 3;
  const auto t = tokenize("an ox is big", opt);
  EXPECT_EQ(t, (std::vector<std::string>{"big"}));
}

TEST(Tokenizer, NoLowercaseOption) {
  TokenizerOptions opt;
  opt.lowercase = false;
  const auto t = tokenize("SIGHUP", opt);
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t[0], "SIGHUP");
}

TEST(Tokenizer, DropNumbersOption) {
  TokenizerOptions opt;
  opt.keep_numbers = false;
  const auto t = tokenize("error 404 found 1.2.3", opt);
  EXPECT_EQ(t, (std::vector<std::string>{"error", "found"}));
}

TEST(Tokenizer, EmptyInput) {
  EXPECT_TRUE(tokenize("").empty());
  EXPECT_TRUE(tokenize("!!! ??? ...").empty());
}

TEST(Ngrams, Bigrams) {
  const auto grams = ngrams({"race", "condition", "hit"}, 2);
  EXPECT_EQ(grams,
            (std::vector<std::string>{"race_condition", "condition_hit"}));
}

TEST(Ngrams, DegenerateCases) {
  EXPECT_TRUE(ngrams({"one"}, 2).empty());
  EXPECT_TRUE(ngrams({}, 1).empty());
  EXPECT_TRUE(ngrams({"a", "b"}, 0).empty());
  EXPECT_EQ(ngrams({"a", "b"}, 1), (std::vector<std::string>{"a", "b"}));
}

// ------------------------------------------------------------- stopwords

TEST(Stopwords, CommonWordsStopped) {
  EXPECT_TRUE(is_stopword("the"));
  EXPECT_TRUE(is_stopword("and"));
  EXPECT_TRUE(is_stopword("would"));
}

TEST(Stopwords, DomainWordsKept) {
  // These carry signal in this corpus and must NOT be stopped.
  EXPECT_FALSE(is_stopword("out"));
  EXPECT_FALSE(is_stopword("full"));
  EXPECT_FALSE(is_stopword("long"));
  EXPECT_FALSE(is_stopword("crash"));
}

TEST(Stopwords, RemovePreservesOrder) {
  const auto t = remove_stopwords({"the", "server", "is", "down"});
  EXPECT_EQ(t, (std::vector<std::string>{"server", "down"}));
}

// --------------------------------------------------------------- stemmer

TEST(Stemmer, CollapsesMorphologicalVariants) {
  EXPECT_EQ(stem("crashes"), stem("crashed"));
  EXPECT_EQ(stem("crashes"), stem("crashing"));
  EXPECT_EQ(stem("hangs"), stem("hanging"));
}

TEST(Stemmer, DiedMatchesDies) {
  EXPECT_EQ(stem("died"), stem("dies"));
}

TEST(Stemmer, LeavesIdentifiersAlone) {
  EXPECT_EQ(stem("va_list"), "va_list");
  EXPECT_EQ(stem("1.3.0"), "1.3.0");
  EXPECT_EQ(stem("tar.gz"), "tar.gz");
}

TEST(Stemmer, LeavesShortTokensAlone) {
  EXPECT_EQ(stem("is"), "is");
  EXPECT_EQ(stem("bug"), "bug");
}

TEST(Stemmer, UndoublesConsonants) {
  EXPECT_EQ(stem("stopped"), "stop");
  EXPECT_EQ(stem("stopping"), "stop");
}

TEST(Stemmer, DerivationalSuffixes) {
  EXPECT_EQ(stem("initialization"), stem("initialize"));
}

TEST(Stemmer, StemAllMapsEveryToken) {
  const auto t = stem_all({"crashes", "running"});
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t[0], stem("crashes"));
}

// ---------------------------------------------------------------- tf-idf

TEST(Vocabulary, AddAndLookup) {
  Vocabulary v;
  const auto id = v.add("crash");
  EXPECT_EQ(v.add("crash"), id);
  EXPECT_EQ(v.lookup("crash"), id);
  EXPECT_EQ(v.lookup("unseen"), Vocabulary::kUnknown);
  EXPECT_EQ(v.term(id), "crash");
}

TEST(TfIdf, VectorsAreUnitNorm) {
  TfIdfModel model;
  model.fit({{"a", "b", "c"}, {"a", "d"}});
  const auto vec = model.transform({"a", "b", "b"});
  double norm2 = 0.0;
  for (const auto& e : vec.entries) norm2 += double(e.weight) * e.weight;
  EXPECT_NEAR(norm2, 1.0, 1e-6);
}

TEST(TfIdf, SortedByTermId) {
  TfIdfModel model;
  model.fit({{"z", "y", "x", "w"}});
  const auto vec = model.transform({"w", "z", "x"});
  for (std::size_t i = 1; i < vec.entries.size(); ++i) {
    EXPECT_LT(vec.entries[i - 1].term, vec.entries[i].term);
  }
}

TEST(TfIdf, UnknownTermsDropped) {
  TfIdfModel model;
  model.fit({{"a"}});
  const auto vec = model.transform({"never", "seen"});
  EXPECT_TRUE(vec.entries.empty());
}

TEST(TfIdf, CosineIdenticalIsOne) {
  TfIdfModel model;
  model.fit({{"a", "b"}, {"c", "d"}});
  const auto v1 = model.transform({"a", "b"});
  const auto v2 = model.transform({"a", "b"});
  EXPECT_NEAR(cosine(v1, v2), 1.0, 1e-6);
}

TEST(TfIdf, CosineDisjointIsZero) {
  TfIdfModel model;
  model.fit({{"a", "b"}, {"c", "d"}});
  EXPECT_DOUBLE_EQ(cosine(model.transform({"a"}), model.transform({"c"})), 0.0);
}

TEST(TfIdf, RareTermsWeighMore) {
  TfIdfModel model;
  // "common" appears in every document, "rare" in one.
  model.fit({{"common", "rare"}, {"common"}, {"common"}, {"common"}});
  const auto vec = model.transform({"common", "rare"});
  ASSERT_EQ(vec.entries.size(), 2u);
  float common_w = 0, rare_w = 0;
  const auto& vocab = model.vocabulary();
  for (const auto& e : vec.entries) {
    if (e.term == vocab.lookup("common")) common_w = e.weight;
    if (e.term == vocab.lookup("rare")) rare_w = e.weight;
  }
  EXPECT_GT(rare_w, common_w);
}

// ---------------------------------------------------------------- minhash

TEST(MinHash, IdenticalDocsIdenticalSignatures) {
  const MinHasher h({});
  const std::vector<std::string> doc = {"a", "b", "c", "d", "e"};
  EXPECT_EQ(h.signature(doc), h.signature(doc));
}

TEST(MinHash, EstimateNearExactJaccard) {
  // Property test: over random document pairs, the MinHash estimate must
  // track exact Jaccard within the standard error ~1/sqrt(num_hashes).
  MinHashParams params;
  params.num_hashes = 128;
  params.band_size = 2;
  params.shingle_size = 1;  // token-level so exact_jaccard is comparable
  const MinHasher h(params);
  util::Rng rng(42);

  double total_err = 0.0;
  constexpr int kPairs = 30;
  for (int p = 0; p < kPairs; ++p) {
    std::vector<std::string> a, b;
    for (int i = 0; i < 60; ++i) {
      const auto tok = "tok" + std::to_string(rng.below(80));
      if (rng.chance(0.7)) a.push_back(tok);
      if (rng.chance(0.7)) b.push_back(tok);
    }
    if (a.empty() || b.empty()) continue;
    const double exact = exact_jaccard(a, b);
    const double est = MinHasher::estimate_jaccard(h.signature(a), h.signature(b));
    total_err += std::fabs(exact - est);
  }
  EXPECT_LT(total_err / kPairs, 0.12);
}

TEST(MinHash, LshFindsSimilarPair) {
  MinHashParams params;
  params.band_size = 2;
  const MinHasher h(params);
  std::vector<std::string> base;
  for (int i = 0; i < 30; ++i) base.push_back("w" + std::to_string(i));
  auto near_dup = base;
  near_dup[0] = "changed";
  std::vector<std::string> other;
  for (int i = 0; i < 30; ++i) other.push_back("x" + std::to_string(i));

  const std::vector<Signature> sigs = {h.signature(base), h.signature(near_dup),
                                       h.signature(other)};
  const auto pairs = lsh_candidates(sigs, params);
  bool found01 = false, found02 = false;
  for (const auto& [i, j] : pairs) {
    if (i == 0 && j == 1) found01 = true;
    if (i == 0 && j == 2) found02 = true;
  }
  EXPECT_TRUE(found01) << "near-duplicate pair missed";
  EXPECT_FALSE(found02) << "disjoint pair proposed";
}

TEST(MinHash, ShortDocumentsStillSign) {
  const MinHasher h({});
  const auto sig = h.signature({"one"});
  EXPECT_EQ(sig.size(), MinHashParams{}.num_hashes);
  // And identical short docs collide fully.
  EXPECT_EQ(MinHasher::estimate_jaccard(sig, h.signature({"one"})), 1.0);
}

TEST(ExactJaccard, KnownValues) {
  EXPECT_DOUBLE_EQ(exact_jaccard({"a", "b"}, {"a", "b"}), 1.0);
  EXPECT_DOUBLE_EQ(exact_jaccard({"a"}, {"b"}), 0.0);
  EXPECT_NEAR(exact_jaccard({"a", "b", "c"}, {"b", "c", "d"}), 0.5, 1e-9);
  EXPECT_DOUBLE_EQ(exact_jaccard({}, {}), 0.0);
}

// ----------------------------------------------------------------- index

TEST(InvertedIndex, MatchAnyFindsStemVariants) {
  InvertedIndex idx;
  idx.add_document(1, "the server crashed during peak load");
  idx.add_document(2, "feature request: new theme");
  idx.add_document(3, "my disk died again");

  const auto hits = idx.match_any({"crash", "died"});
  EXPECT_EQ(hits, (std::vector<std::uint64_t>{1, 3}));
}

TEST(InvertedIndex, MatchAllIntersects) {
  InvertedIndex idx;
  idx.add_document(1, "server crash under load");
  idx.add_document(2, "crash on startup");
  idx.add_document(3, "load balancing question");

  EXPECT_EQ(idx.match_all({"crash", "load"}), (std::vector<std::uint64_t>{1}));
  EXPECT_TRUE(idx.match_all({"crash", "nonexistent"}).empty());
  EXPECT_TRUE(idx.match_all({}).empty());
}

TEST(InvertedIndex, DocumentFrequency) {
  InvertedIndex idx;
  idx.add_document(1, "crash crash crash");
  idx.add_document(2, "another crash");
  EXPECT_EQ(idx.document_frequency("crash"), 2u);  // per-doc, not per-token
  EXPECT_EQ(idx.document_frequency("absent"), 0u);
  EXPECT_EQ(idx.size(), 2u);
}

TEST(InvertedIndex, PaperKeywordsMatchTypicalMessages) {
  InvertedIndex idx;
  idx.add_document(1, "mysqld died with a segmentation fault");
  idx.add_document(2, "race between login and admin");
  idx.add_document(3, "how do I configure replication?");
  const auto hits = idx.match_any({"crash", "segmentation", "race", "died"});
  EXPECT_EQ(hits, (std::vector<std::uint64_t>{1, 2}));
}

}  // namespace
}  // namespace faultstudy::text
