// Tests for the UI toolkit and its three study bugs, including the
// end-to-end path through the Desktop application and the harness.
#include <gtest/gtest.h>

#include "apps/desktop.hpp"
#include "apps/ui/toolkit.hpp"
#include "corpus/seeds.hpp"
#include "harness/experiment.hpp"
#include "recovery/process_pairs.hpp"
#include "util/rng.hpp"

namespace faultstudy::apps::ui {
namespace {

// ----------------------------------------------------------------- widget

TEST(WidgetTree, ChildAndPathLookup) {
  Widget root("root");
  auto& a = root.add_child("a");
  a.add_child("b");
  EXPECT_NE(root.child("a"), nullptr);
  EXPECT_EQ(root.child("zz"), nullptr);
  ASSERT_NE(root.find("a/b"), nullptr);
  EXPECT_EQ(root.find("a/b")->name(), "b");
  EXPECT_EQ(root.find("a/zz"), nullptr);
  EXPECT_EQ(root.find(""), &root);
}

// ------------------------------------------------------------------ pager

TEST(Pager, EmbeddedHasTasklistPage) {
  PagerSettings settings(/*embedded=*/true, {});
  EXPECT_NE(settings.root().find("pages/tasklist-page"), nullptr);
  EXPECT_EQ(settings.click_tab("tasklist").status, UiStatus::kOk);
}

TEST(Pager, StandaloneFixedHandlerDegradesGracefully) {
  PagerSettings settings(/*embedded=*/false, {});
  const auto r = settings.click_tab("tasklist");
  EXPECT_EQ(r.status, UiStatus::kIgnored);
}

TEST(Pager, StandaloneBuggyHandlerCrashes) {
  UiFaultFlags flags;
  flags.pager_tab_null_deref = true;
  PagerSettings settings(/*embedded=*/false, flags);
  EXPECT_EQ(settings.click_tab("layout").status, UiStatus::kOk);  // page exists
  const auto r = settings.click_tab("tasklist");
  EXPECT_EQ(r.status, UiStatus::kCrash);
  EXPECT_NE(r.detail.find("missing"), std::string::npos);
}

TEST(Pager, BuggyHandlerHarmlessWhenEmbedded) {
  UiFaultFlags flags;
  flags.pager_tab_null_deref = true;
  PagerSettings settings(/*embedded=*/true, flags);
  EXPECT_EQ(settings.click_tab("tasklist").status, UiStatus::kOk);
}

TEST(Pager, UnknownTabIgnored) {
  PagerSettings settings(true, {});
  EXPECT_EQ(settings.click_tab("nonsense").status, UiStatus::kIgnored);
}

// --------------------------------------------------------------- calendar

TEST(Cal, FixedPrevAndNextWork) {
  Calendar calendar(1999, {});
  EXPECT_EQ(calendar.click_prev_year().status, UiStatus::kOk);
  EXPECT_EQ(calendar.year(), 1998);
  EXPECT_EQ(calendar.click_next_year().status, UiStatus::kOk);
  EXPECT_EQ(calendar.year(), 1999);
}

TEST(Cal, BuggyPrevCrashesFirstClick) {
  UiFaultFlags flags;
  flags.calendar_prev_local_copy = true;
  Calendar calendar(1999, flags);
  const auto r = calendar.click_prev_year();
  EXPECT_EQ(r.status, UiStatus::kCrash);
  EXPECT_NE(r.detail.find("diverged"), std::string::npos);
}

TEST(Cal, BuggyNextStillFine) {
  UiFaultFlags flags;
  flags.calendar_prev_local_copy = true;
  Calendar calendar(1999, flags);
  EXPECT_EQ(calendar.click_next_year().status, UiStatus::kOk);
}

// ---------------------------------------------------------------- archive

TEST(Archive, SmallArchivesFineEitherWay) {
  UiFaultFlags flags;
  flags.archive_long_overflow = true;
  EXPECT_EQ(ArchiveOpener({}).open(1u << 20).status, UiStatus::kOk);
  EXPECT_EQ(ArchiveOpener(flags).open(1u << 20).status, UiStatus::kOk);
}

TEST(Archive, SignedOverflowAtTwoGigabytes) {
  UiFaultFlags flags;
  flags.archive_long_overflow = true;
  // Just below 2 GiB: the signed 32-bit variable still holds it.
  EXPECT_EQ(ArchiveOpener(flags).open((1ull << 31) - 1).status, UiStatus::kOk);
  // At and past 2 GiB: negative size, crash.
  EXPECT_EQ(ArchiveOpener(flags).open(1ull << 31).status, UiStatus::kCrash);
  EXPECT_EQ(ArchiveOpener(flags).open(3ull << 30).status, UiStatus::kCrash);
  // The fixed path keeps the unsigned width.
  EXPECT_EQ(ArchiveOpener({}).open(3ull << 30).status, UiStatus::kOk);
}

// ----------------------------------------------- through the application

apps::WorkItem ui_item(std::string op, bool poison = false) {
  apps::WorkItem w;
  w.op = std::move(op);
  w.poison = poison;
  return w;
}

TEST(DesktopUi, RealPagerBugCrashesSession) {
  env::Environment e;
  apps::Desktop desktop;
  apps::ActiveFault fault;
  fault.trigger = core::Trigger::kUiEventSequence;
  fault.symptom = core::Symptom::kCrash;
  fault.fault_id = "gnome-ei-01";
  desktop.arm_fault(fault);
  ASSERT_TRUE(desktop.start(e));

  EXPECT_FALSE(apps::is_failure(desktop.handle(ui_item("click:panel-menu"), e)));
  const auto r =
      desktop.handle(ui_item("click:pager-settings-tasklist", true), e);
  EXPECT_EQ(r.status, apps::StepStatus::kCrash);
  EXPECT_FALSE(desktop.running());
}

TEST(DesktopUi, RealCalendarBugCrashes) {
  env::Environment e;
  apps::Desktop desktop;
  apps::ActiveFault fault;
  fault.trigger = core::Trigger::kWrongVariableUsage;
  fault.symptom = core::Symptom::kCrash;
  fault.fault_id = "gnome-ei-02";
  desktop.arm_fault(fault);
  ASSERT_TRUE(desktop.start(e));
  const auto r = desktop.handle(ui_item("click:calendar-prev-year", true), e);
  EXPECT_EQ(r.status, apps::StepStatus::kCrash);
}

TEST(DesktopUi, CalendarWorksWhenFixed) {
  env::Environment e;
  apps::Desktop desktop;
  ASSERT_TRUE(desktop.start(e));
  EXPECT_FALSE(apps::is_failure(
      desktop.handle(ui_item("click:calendar-prev-year"), e)));
}

TEST(DesktopUi, RealizedGnomeFaultDefeatsGenericRecovery) {
  const auto seeds = corpus::all_seeds();
  for (const char* id : {"gnome-ei-01", "gnome-ei-02", "gnome-ei-04"}) {
    const corpus::SeedFault* seed = nullptr;
    for (const auto& s : seeds) {
      if (s.fault_id == id) seed = &s;
    }
    ASSERT_NE(seed, nullptr) << id;
    harness::TrialConfig tc;
    tc.seed = 17 + util::fnv1a(id);
    const auto plan = inject::plan_for(*seed, tc.seed);
    EXPECT_FALSE(plan.workload.poison_op.empty()) << id;
    recovery::ProcessPairs pp;
    const auto outcome = harness::run_trial(plan, pp, tc);
    EXPECT_TRUE(outcome.failure_observed) << id;
    EXPECT_FALSE(outcome.survived) << id;
  }
}

}  // namespace
}  // namespace faultstudy::apps::ui
