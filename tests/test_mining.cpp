// Tests for the mining stages in isolation: filters, keyword search,
// union-find, duplicate clustering.
#include <gtest/gtest.h>

#include "corpus/synth.hpp"
#include "mining/dedup.hpp"
#include "mining/filters.hpp"
#include "mining/keyword_search.hpp"

namespace faultstudy::mining {
namespace {

using corpus::BugReport;
using corpus::MailMessage;

BugReport report(corpus::Severity severity, corpus::VersionTrack track,
                 corpus::ReportKind kind) {
  BugReport r;
  r.severity = severity;
  r.track = track;
  r.kind = kind;
  return r;
}

// ---------------------------------------------------------------- filters

TEST(Filters, StudyCriteria) {
  EXPECT_TRUE(passes_study_criteria(report(corpus::Severity::kSevere,
                                           corpus::VersionTrack::kProduction,
                                           corpus::ReportKind::kRuntimeFailure)));
  EXPECT_TRUE(passes_study_criteria(report(corpus::Severity::kCritical,
                                           corpus::VersionTrack::kProduction,
                                           corpus::ReportKind::kRuntimeFailure)));
  EXPECT_FALSE(passes_study_criteria(report(corpus::Severity::kNormal,
                                            corpus::VersionTrack::kProduction,
                                            corpus::ReportKind::kRuntimeFailure)));
  EXPECT_FALSE(passes_study_criteria(report(corpus::Severity::kSevere,
                                            corpus::VersionTrack::kBeta,
                                            corpus::ReportKind::kRuntimeFailure)));
  EXPECT_FALSE(passes_study_criteria(report(corpus::Severity::kSevere,
                                            corpus::VersionTrack::kProduction,
                                            corpus::ReportKind::kBuildProblem)));
}

TEST(Filters, FunnelCountsMonotone) {
  const auto tracker = corpus::make_apache_tracker();
  FilterFunnel funnel;
  const auto out = study_candidates(tracker, &funnel);
  EXPECT_EQ(funnel.total, tracker.size());
  EXPECT_LE(funnel.runtime, funnel.total);
  EXPECT_LE(funnel.production, funnel.runtime);
  EXPECT_LE(funnel.severe, funnel.production);
  EXPECT_EQ(out.size(), funnel.severe);
  EXPECT_GT(out.size(), 0u);
}

// --------------------------------------------------------- keyword search

MailMessage message(std::string subject, std::string body) {
  MailMessage m;
  m.subject = std::move(subject);
  m.body = std::move(body);
  return m;
}

TEST(KeywordSearch, StudyKeywordsArePapers) {
  EXPECT_EQ(study_keywords(),
            (std::vector<std::string>{"crash", "segmentation", "race",
                                      "died"}));
}

TEST(KeywordSearch, MatchesStemVariants) {
  EXPECT_TRUE(matches_keywords(message("server crashed", ""),
                               study_keywords()));
  EXPECT_TRUE(matches_keywords(message("", "mysqld dies nightly"),
                               study_keywords()));
  EXPECT_FALSE(matches_keywords(message("performance tuning", "question"),
                                study_keywords()));
}

TEST(KeywordSearch, BugReportShape) {
  EXPECT_TRUE(is_bug_report_shaped(message(
      "s", "Description: x\nHow-To-Repeat: do y\nVersion: 3.22.20\n")));
  EXPECT_FALSE(is_bug_report_shaped(message("s", "my disk died last week")));
  EXPECT_FALSE(is_bug_report_shaped(
      message("s", "How-To-Repeat: but no version line")));
}

TEST(KeywordSearch, MineThreadsGroupsReplies) {
  corpus::MailingList list;
  MailMessage root = message(
      "server crash",
      "Description: crash\nHow-To-Repeat: run query\nVersion: 3.22.20\n");
  const auto root_id = list.add(root);
  MailMessage reply = message("Re: server crash", "diagnosis here");
  reply.thread_id = root_id;
  list.add(reply);
  list.add(message("unrelated chatter", "nothing to see"));

  KeywordFunnel funnel;
  const auto threads = mine_threads(list, study_keywords(), &funnel);
  ASSERT_EQ(threads.size(), 1u);
  EXPECT_EQ(threads[0].root.id, root_id);
  ASSERT_EQ(threads[0].replies.size(), 1u);
  EXPECT_EQ(funnel.total_messages, 3u);
  EXPECT_EQ(funnel.threads, 1u);
}

TEST(KeywordSearch, ChatterWithKeywordButNoShapeExcluded) {
  corpus::MailingList list;
  list.add(message("not a bug", "this will not crash your server"));
  KeywordFunnel funnel;
  const auto threads = mine_threads(list, study_keywords(), &funnel);
  EXPECT_TRUE(threads.empty());
  EXPECT_EQ(funnel.keyword_hits, 1u);
  EXPECT_EQ(funnel.report_shaped, 0u);
}

// -------------------------------------------------------------- unionfind

TEST(UnionFind, SingletonsInitially) {
  UnionFind uf(3);
  EXPECT_EQ(uf.groups().size(), 3u);
}

TEST(UnionFind, UniteAndFind) {
  UnionFind uf(5);
  uf.unite(0, 2);
  uf.unite(2, 4);
  EXPECT_EQ(uf.find(0), uf.find(4));
  EXPECT_NE(uf.find(0), uf.find(1));
  const auto groups = uf.groups();
  EXPECT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups[0], (std::vector<std::size_t>{0, 2, 4}));
}

TEST(UnionFind, UniteIdempotent) {
  UnionFind uf(2);
  uf.unite(0, 1);
  uf.unite(1, 0);
  uf.unite(0, 0);
  EXPECT_EQ(uf.groups().size(), 1u);
}

TEST(UnionFind, GroupsOrderedBySmallestMember) {
  UnionFind uf(6);
  uf.unite(5, 3);
  uf.unite(4, 0);
  const auto groups = uf.groups();
  ASSERT_EQ(groups.size(), 4u);
  EXPECT_EQ(groups[0].front(), 0u);
  EXPECT_LE(groups[0].front(), groups[1].front());
}

// ----------------------------------------------------------------- dedup

TEST(Dedup, EmptyAndSingleton) {
  EXPECT_TRUE(cluster_documents({}).empty());
  const auto one = cluster_documents({{1, "hello world"}});
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], (std::vector<std::size_t>{0}));
}

TEST(Dedup, ClustersDuplicatesQuotingTheOriginal) {
  // Duplicate reporters quote the original's reproduction steps verbatim
  // (the synthetic generator models this), so the word shingles overlap —
  // and within a realistically varied corpus, the quoted phrase's terms are
  // rare enough that TF-IDF cosine confirms the pair.
  std::vector<DedupDoc> docs = {
      {1, "the server dies with a segfault when the submitted URL is very "
          "long. Submit a URL longer than the internal buffer from any "
          "browser; the hash calculation overflows and the serving child "
          "crashes, every time we try"},
      {2, "I am seeing the same problem. Submit a URL longer than the "
          "internal buffer from any browser; the hash calculation overflows "
          "and the serving child crashes. Happy to test a patch."},
      {3, "feature request: please add colors to the directory listing "
          "index pages"},
      {4, "configure script fails on AIX with an undefined reference while "
          "linking the shared modules"},
      {5, "documentation for the proxy module options is unclear about the "
          "cache directory layout"},
      {6, "server stops accepting connections after the process table fills "
          "with hung children during peak load"},
      {7, "authentication against the password file stops working after "
          "upgrading to the new release"},
      {8, "the manual page and the online docs disagree about the default "
          "value of the timeout directive"},
  };
  const auto clusters = cluster_documents(docs);
  ASSERT_EQ(clusters.size(), 7u);
  EXPECT_EQ(clusters[0], (std::vector<std::size_t>{0, 1}));
}

TEST(Dedup, DistinctTopicsStaySeparate) {
  std::vector<DedupDoc> docs = {
      {1, "race condition between the image viewer and the property editor "
          "crashes the file manager occasionally"},
      {2, "full file system prevents all operations on the database until "
          "an administrator frees disk space"},
      {3, "clicking the tasklist tab in the pager settings kills the pager "
          "immediately and reproducibly"},
  };
  EXPECT_EQ(cluster_documents(docs).size(), 3u);
}

TEST(Dedup, TransitiveChainsMerge) {
  // A-B similar, B-C similar: one cluster even if A-C are farther apart.
  std::vector<DedupDoc> docs = {
      {1, "server crashes when the access log file exceeds the maximum "
          "allowed file size on disk"},
      {2, "crash when the access log file exceeds the maximum allowed file "
          "size; log rotation was off"},
      {3, "crash when log exceeds maximum allowed file size; rotation was "
          "disabled on our production box"},
  };
  EXPECT_EQ(cluster_documents(docs).size(), 1u);
}

TEST(Dedup, ThresholdRespected) {
  DedupParams strict;
  strict.confirm_threshold = 0.999;  // only near-identical text merges
  std::vector<DedupDoc> docs = {
      {1, "the quick brown fox jumps over the lazy dog"},
      {2, "the quick brown fox jumped over a lazy dog today"},
  };
  EXPECT_EQ(cluster_documents(docs, strict).size(), 2u);
  DedupParams lenient;
  lenient.confirm_threshold = 0.3;
  EXPECT_EQ(cluster_documents(docs, lenient).size(), 1u);
}

TEST(Dedup, EveryDocInExactlyOneCluster) {
  const auto tracker = corpus::make_apache_tracker();
  const auto candidates = study_candidates(tracker);
  std::vector<DedupDoc> docs;
  for (const auto& r : candidates) {
    docs.push_back({r.id, r.text.title + ' ' + r.text.how_to_repeat});
  }
  const auto clusters = cluster_documents(docs);
  std::vector<bool> seen(docs.size(), false);
  for (const auto& cluster : clusters) {
    for (std::size_t idx : cluster) {
      ASSERT_LT(idx, docs.size());
      EXPECT_FALSE(seen[idx]);
      seen[idx] = true;
    }
  }
  for (bool s : seen) EXPECT_TRUE(s);
}

}  // namespace
}  // namespace faultstudy::mining
