// Tests for the Section 6 countermeasures: resource guards, robustness
// wrappers, design diversity, scheduled rejuvenation, and the availability
// model.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/webserver.hpp"
#include "corpus/seeds.hpp"
#include "harness/experiment.hpp"
#include "recovery/nversion.hpp"
#include "recovery/process_pairs.hpp"
#include "recovery/rejuvenation.hpp"
#include "recovery/resource_guard.hpp"
#include "recovery/wrappers.hpp"
#include "stats/availability.hpp"
#include "util/rng.hpp"

namespace faultstudy {
namespace {

using recovery::Mechanism;

const corpus::SeedFault& find_seed(const std::vector<corpus::SeedFault>& seeds,
                                   const std::string& id) {
  for (const auto& s : seeds) {
    if (s.fault_id == id) return s;
  }
  ADD_FAILURE() << "missing seed " << id;
  static corpus::SeedFault dummy;
  return dummy;
}

harness::TrialOutcome run_seed(const corpus::SeedFault& seed, Mechanism& m,
                               std::uint64_t salt = 99) {
  harness::TrialConfig config;
  config.seed = salt + util::fnv1a(seed.fault_id);
  const auto plan = inject::plan_for(seed, config.seed);
  return harness::run_trial(plan, m, config);
}

// -------------------------------------------------------- resource guards

TEST(Guards, FdGrowthGrowsOnlyWhenTight) {
  env::Environment e;
  apps::WebServer app;
  app.start(e);
  recovery::DynamicFdGrowth guard(32, 512);
  const auto before = e.fds().capacity();
  guard.on_failure(app, e);  // plenty of room: no growth
  EXPECT_EQ(e.fds().capacity(), before);
  e.fds().acquire("hog", e.fds().available());
  guard.on_failure(app, e);
  EXPECT_EQ(e.fds().capacity(), before + 32);
}

TEST(Guards, FdGrowthRespectsCap) {
  env::EnvironmentConfig config;
  config.fd_slots = 100;
  env::Environment e(config);
  apps::WebServer app;
  recovery::DynamicFdGrowth guard(64, 128);
  e.fds().acquire("hog", 100);
  guard.on_failure(app, e);
  EXPECT_EQ(e.fds().capacity(), 128u);  // clamped to max_total
  guard.on_failure(app, e);
  EXPECT_EQ(e.fds().capacity(), 128u);
}

TEST(Guards, DiskGrowthRaisesCapacityAndLimit) {
  env::EnvironmentConfig config;
  config.disk_capacity = 1000;
  config.max_file_size = 500;
  env::Environment e(config);
  apps::WebServer app;
  e.disk().consume_external(1000);
  recovery::DynamicDiskGrowth guard(2000, 1u << 20);
  guard.on_failure(app, e);
  EXPECT_GT(e.disk().free_space(), 0u);
  EXPECT_GE(e.disk().max_file_size(), 1000u);
}

TEST(Guards, GcReclaimsIdleDescriptorsAfterRecovery) {
  env::Environment e;
  apps::WebServer app;
  apps::ActiveFault fault;
  fault.trigger = core::Trigger::kFdExhaustion;
  fault.symptom = core::Symptom::kErrorReturn;
  app.arm_fault(fault);
  app.start(e);
  apps::WorkItem w;
  w.op = "GET /";
  for (int i = 0; i < 4; ++i) app.handle(w, e);
  const auto before = app.fd_footprint();
  ASSERT_GT(app.idle_descriptors(), 0u);

  recovery::FdGarbageCollector gc(1.0);
  gc.on_recovered(app, e);
  EXPECT_EQ(app.idle_descriptors(), 0u);
  EXPECT_LT(app.fd_footprint(), before);
  EXPECT_EQ(e.fds().held_by("apache"), app.fd_footprint());
}

TEST(Guards, ReclaimFractionPartial) {
  env::Environment e;
  apps::WebServer app;
  apps::ActiveFault fault;
  fault.trigger = core::Trigger::kFdExhaustion;
  app.arm_fault(fault);
  app.start(e);
  apps::WorkItem w;
  w.op = "GET /";
  for (int i = 0; i < 5; ++i) app.handle(w, e);  // 20 idle
  const auto freed = app.reclaim_idle_descriptors(e, 0.5);
  EXPECT_EQ(freed, 10u);
  EXPECT_EQ(app.idle_descriptors(), 10u);
}

TEST(Guards, GuardedMechanismKeepsInnerProperties) {
  auto guarded = recovery::with_standard_guards(
      std::make_unique<recovery::ProcessPairs>());
  EXPECT_TRUE(guarded->is_generic());
  EXPECT_TRUE(guarded->preserves_state());
  EXPECT_EQ(guarded->name(), "process-pairs+guards");
}

TEST(Guards, ConvertFdExhaustionToSurvivable) {
  const auto seeds = corpus::all_seeds();
  const auto& seed = find_seed(seeds, "apache-edn-02");

  recovery::ProcessPairs bare;
  EXPECT_FALSE(run_seed(seed, bare).survived);

  auto guarded = recovery::with_standard_guards(
      std::make_unique<recovery::ProcessPairs>());
  const auto outcome = run_seed(seed, *guarded);
  EXPECT_TRUE(outcome.failure_observed);
  EXPECT_TRUE(outcome.survived);
}

TEST(Guards, ConvertFullFileSystemToSurvivable) {
  const auto seeds = corpus::all_seeds();
  auto guarded = recovery::with_standard_guards(
      std::make_unique<recovery::ProcessPairs>());
  EXPECT_TRUE(run_seed(find_seed(seeds, "mysql-edn-04"), *guarded).survived);
}

TEST(Guards, DoNotTouchNonResourceEdn) {
  const auto seeds = corpus::all_seeds();
  auto guarded = recovery::with_standard_guards(
      std::make_unique<recovery::ProcessPairs>());
  // Hostname change is not a resource; guards must not mask it.
  EXPECT_FALSE(run_seed(find_seed(seeds, "gnome-edn-01"), *guarded).survived);
}

TEST(Guards, DoNotHelpEnvironmentIndependentFaults) {
  const auto seeds = corpus::all_seeds();
  auto guarded = recovery::with_standard_guards(
      std::make_unique<recovery::ProcessPairs>());
  EXPECT_FALSE(run_seed(find_seed(seeds, "apache-ei-01"), *guarded).survived);
}

// ---------------------------------------------------------------- wrapper

TEST(Wrapper, CoverageExtremes) {
  const recovery::WrappedMechanism never(
      std::make_unique<recovery::ProcessPairs>(), 0.0, 123);
  EXPECT_FALSE(never.covers_this_fault());
  const recovery::WrappedMechanism always(
      std::make_unique<recovery::ProcessPairs>(), 1.0, 123);
  EXPECT_TRUE(always.covers_this_fault());
}

TEST(Wrapper, CoverageFractionOverPopulation) {
  int covered = 0;
  for (std::uint64_t salt = 0; salt < 1000; ++salt) {
    recovery::WrappedMechanism w(std::make_unique<recovery::ProcessPairs>(),
                                 0.6, salt);
    if (w.covers_this_fault()) ++covered;
  }
  EXPECT_NEAR(covered / 1000.0, 0.6, 0.05);
}

TEST(Wrapper, CoveredWrapperSurvivesEiFault) {
  const auto seeds = corpus::all_seeds();
  const auto& seed = find_seed(seeds, "apache-ei-01");
  recovery::WrappedMechanism wrapped(
      std::make_unique<recovery::ProcessPairs>(), 1.0,
      util::fnv1a(seed.fault_id));
  const auto outcome = run_seed(seed, wrapped);
  EXPECT_TRUE(outcome.failure_observed);
  EXPECT_TRUE(outcome.survived);
}

TEST(Wrapper, UncoveredWrapperDoesNot) {
  const auto seeds = corpus::all_seeds();
  const auto& seed = find_seed(seeds, "apache-ei-01");
  recovery::WrappedMechanism wrapped(
      std::make_unique<recovery::ProcessPairs>(), 0.0,
      util::fnv1a(seed.fault_id));
  EXPECT_FALSE(run_seed(seed, wrapped).survived);
}

TEST(Wrapper, IsApplicationSpecific) {
  recovery::WrappedMechanism w(std::make_unique<recovery::ProcessPairs>(),
                               1.0, 1);
  EXPECT_FALSE(w.is_generic());
}

// -------------------------------------------------------------- diversity

TEST(NVersion, BuggyCountDeterministic) {
  recovery::NVersionProgramming a(5, 0.3, 42);
  recovery::NVersionProgramming b(5, 0.3, 42);
  EXPECT_EQ(a.buggy_versions(), b.buggy_versions());
  EXPECT_GE(a.buggy_versions(), 1);  // version 0 always buggy
  EXPECT_LE(a.buggy_versions(), 5);
}

TEST(NVersion, IndependentVersionsHaveOnlyOneBug) {
  recovery::NVersionProgramming nv(5, 0.0, 7);
  EXPECT_EQ(nv.buggy_versions(), 1);
  EXPECT_TRUE(nv.majority_healthy());
}

TEST(NVersion, FullCorrelationNeverHealthy) {
  recovery::NVersionProgramming nv(5, 1.0, 7);
  EXPECT_EQ(nv.buggy_versions(), 5);
  EXPECT_FALSE(nv.majority_healthy());
}

TEST(NVersion, HealthyMajorityMasksEiFault) {
  const auto seeds = corpus::all_seeds();
  const auto& seed = find_seed(seeds, "mysql-ei-04");
  recovery::NVersionProgramming nv(3, 0.0, util::fnv1a(seed.fault_id));
  ASSERT_TRUE(nv.majority_healthy());
  EXPECT_TRUE(run_seed(seed, nv).survived);
}

TEST(NVersion, CannotConjureDiskSpace) {
  const auto seeds = corpus::all_seeds();
  const auto& seed = find_seed(seeds, "apache-edn-05");  // full file system
  recovery::NVersionProgramming nv(5, 0.0, util::fnv1a(seed.fault_id));
  EXPECT_FALSE(run_seed(seed, nv).survived);
}

TEST(RecoveryBlocks, FirstHealthyAlternateFound) {
  recovery::RecoveryBlocks rb(3, 0.0, 11);
  EXPECT_EQ(rb.first_healthy_alternate(), 1);
  recovery::RecoveryBlocks none(2, 1.0, 11);
  EXPECT_EQ(none.first_healthy_alternate(), 0);
}

TEST(RecoveryBlocks, HealthyAlternateSurvivesEiFault) {
  const auto seeds = corpus::all_seeds();
  const auto& seed = find_seed(seeds, "gnome-ei-02");
  recovery::RecoveryBlocks rb(2, 0.0, util::fnv1a(seed.fault_id));
  EXPECT_TRUE(run_seed(seed, rb).survived);
}

TEST(RecoveryBlocks, NoHealthyAlternateFails) {
  const auto seeds = corpus::all_seeds();
  const auto& seed = find_seed(seeds, "gnome-ei-02");
  recovery::RecoveryBlocks rb(2, 1.0, util::fnv1a(seed.fault_id));
  EXPECT_FALSE(run_seed(seed, rb).survived);
}

// -------------------------------------------- scheduled rejuvenation

TEST(Scheduled, ShortIntervalPreventsLeakFailure) {
  const auto seeds = corpus::all_seeds();
  const auto& seed = find_seed(seeds, "apache-ei-05");  // leak, limit 12
  recovery::ScheduledRejuvenation mech(4);
  const auto outcome = run_seed(seed, mech);
  EXPECT_TRUE(outcome.survived);
  EXPECT_FALSE(outcome.failure_observed);  // prevented, not recovered
  EXPECT_GT(mech.proactive_passes(), 0u);
}

TEST(Scheduled, LongIntervalFallsBackToReactive) {
  const auto seeds = corpus::all_seeds();
  const auto& seed = find_seed(seeds, "apache-ei-05");
  recovery::ScheduledRejuvenation mech(1000);
  const auto outcome = run_seed(seed, mech);
  EXPECT_TRUE(outcome.failure_observed);
  EXPECT_TRUE(outcome.survived);  // reactive rejuvenation still works
  EXPECT_GT(outcome.recoveries, 0u);
}

TEST(Scheduled, IntervalZeroClamped) {
  recovery::ScheduledRejuvenation mech(0);
  EXPECT_EQ(mech.interval(), 1u);
}

// ------------------------------------------------------------ availability

TEST(Availability, NoRecoveryBaseline) {
  const auto r = stats::estimate_availability(stats::SurvivalProfile{});
  EXPECT_LT(r.availability, 1.0);
  EXPECT_GT(r.availability, 0.9);
  EXPECT_EQ(r.masked_failures_per_day, 0.0);
  EXPECT_GT(r.outages_per_day, 0.0);
}

TEST(Availability, PerfectRecoveryNearlyPerfectUptime) {
  stats::SurvivalProfile perfect;
  perfect.survival = {1.0, 1.0, 1.0};
  const auto r = stats::estimate_availability(perfect);
  EXPECT_GT(r.availability, 0.9999);
  EXPECT_EQ(r.outages_per_day, 0.0);
  EXPECT_TRUE(std::isinf(r.mtbf_hours));
}

TEST(Availability, MoreSurvivalMoreUptime) {
  stats::SurvivalProfile generic;
  generic.survival = {0.0, 0.0, 1.0};
  stats::SurvivalProfile specific;
  specific.survival = {1.0, 0.6, 1.0};
  EXPECT_GT(stats::estimate_availability(specific).availability,
            stats::estimate_availability(generic).availability);
}

TEST(Availability, DowntimeClampedToDay) {
  stats::AvailabilityParams absurd;
  absurd.faults_per_million_ops = {1e6, 0, 0};
  const auto r =
      stats::estimate_availability(stats::SurvivalProfile{}, absurd);
  EXPECT_GE(r.availability, 0.0);
}

TEST(Availability, Nines) {
  EXPECT_NEAR(stats::nines(0.999), 3.0, 1e-9);
  EXPECT_NEAR(stats::nines(0.99), 2.0, 1e-9);
  EXPECT_EQ(stats::nines(0.0), 0.0);
  EXPECT_TRUE(std::isinf(stats::nines(1.0)));
}

}  // namespace
}  // namespace faultstudy
