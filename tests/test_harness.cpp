// End-to-end recovery-experiment tests: for every (fault, mechanism) pair
// the trial outcome must match the semantics the paper's taxonomy predicts.
// Parameterized over the mechanism roster; each instance sweeps all 139
// study faults.
#include <gtest/gtest.h>

#include "corpus/seeds.hpp"
#include "harness/experiment.hpp"
#include "harness/transcript.hpp"
#include "recovery/app_specific.hpp"
#include "util/rng.hpp"

namespace faultstudy::harness {
namespace {

using core::FaultClass;
using core::Trigger;

/// Ground-truth survival prediction per (mechanism, seed), derived from the
/// taxonomy semantics (documented in DESIGN.md and recovery/*.hpp):
///   * generic state-preserving mechanisms survive exactly the EDT class;
///   * a lossy cold restart additionally sheds application-held leaks and
///     re-reads cached environment facts;
///   * rejuvenation additionally reclaims the app's own disk artifacts;
///   * app-specific recovery survives everything except conditions outside
///     the application's reach.
bool expected_survival(const std::string& mechanism,
                       const corpus::SeedFault& seed) {
  const FaultClass cls = corpus::seed_class(seed);
  if (cls == FaultClass::kEnvDependentTransient) return true;

  const Trigger t = seed.trigger;
  if (mechanism == "process-pairs" || mechanism == "rollback-retry" ||
      mechanism == "progressive-retry") {
    return false;  // EI and EDN both defeat truly generic recovery
  }
  if (mechanism == "cold-restart") {
    return t == Trigger::kDeterministicLeak ||
           t == Trigger::kResourceLeakUnderLoad ||
           t == Trigger::kFdExhaustion || t == Trigger::kHostnameChanged;
  }
  if (mechanism == "rejuvenation") {
    return t == Trigger::kDeterministicLeak ||
           t == Trigger::kResourceLeakUnderLoad ||
           t == Trigger::kFdExhaustion || t == Trigger::kHostnameChanged ||
           t == Trigger::kDiskCacheFull || t == Trigger::kFileSizeLimit;
  }
  if (mechanism == "app-specific") {
    return recovery::app_recoverable(t);
  }
  ADD_FAILURE() << "unknown mechanism " << mechanism;
  return false;
}

class MechanismSweep : public ::testing::TestWithParam<std::string> {
 protected:
  MechanismFactory factory() const {
    for (const auto& nm : standard_mechanisms()) {
      if (nm.name == GetParam()) return nm.make;
    }
    return nullptr;
  }
};

TEST_P(MechanismSweep, SurvivalMatchesTaxonomyPrediction) {
  const auto make = factory();
  ASSERT_TRUE(make != nullptr);

  for (const auto& seed : corpus::all_seeds()) {
    // Majority over three differently-seeded trials (race triggers are
    // probabilistic).
    int survived = 0, observed = 0;
    for (int r = 0; r < 3; ++r) {
      TrialConfig config;
      config.seed = 1000 + static_cast<std::uint64_t>(r) * 131 +
                    util::fnv1a(seed.fault_id);
      const auto plan = inject::plan_for(seed, config.seed);
      auto mechanism = make();
      const auto outcome = run_trial(plan, *mechanism, config);
      if (outcome.failure_observed) {
        ++observed;
        if (outcome.survived) ++survived;
      }
    }
    ASSERT_GT(observed, 0) << seed.fault_id << ": fault never triggered";
    EXPECT_EQ(survived * 2 > observed, expected_survival(GetParam(), seed))
        << GetParam() << " on " << seed.fault_id << " ("
        << core::to_string(seed.trigger) << "): survived " << survived
        << "/" << observed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllMechanisms, MechanismSweep,
    ::testing::Values("process-pairs", "rollback-retry", "progressive-retry",
                      "cold-restart", "rejuvenation", "app-specific"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// ------------------------------------------------------- trial mechanics

TEST(Trial, EiFaultDefeatsProcessPairsQuickly) {
  const auto seeds = corpus::apache_seeds();
  const corpus::SeedFault* ei = nullptr;
  for (const auto& s : seeds) {
    if (s.fault_id == "apache-ei-01") ei = &s;
  }
  ASSERT_NE(ei, nullptr);

  const auto plan = inject::plan_for(*ei, 3);
  auto mechanism = standard_mechanisms()[0].make();
  const auto outcome = run_trial(plan, *mechanism);
  EXPECT_TRUE(outcome.failure_observed);
  EXPECT_FALSE(outcome.survived);
  // The poison item fails per-item-retries+1 times, then the trial stops.
  EXPECT_EQ(outcome.failures, TrialConfig{}.per_item_retries + 1);
  EXPECT_FALSE(outcome.first_failure.empty());
}

TEST(Trial, TransientFaultSurvivesWithFewRecoveries) {
  const auto seeds = corpus::apache_seeds();
  const corpus::SeedFault* edt = nullptr;
  for (const auto& s : seeds) {
    if (s.trigger == Trigger::kUnknownTransient) edt = &s;
  }
  if (edt == nullptr) {
    for (const auto& s : corpus::gnome_seeds()) {
      if (s.trigger == Trigger::kUnknownTransient) {
        static corpus::SeedFault copy;
        copy = s;
        edt = &copy;
      }
    }
  }
  ASSERT_NE(edt, nullptr);
  const auto plan = inject::plan_for(*edt, 3);
  auto mechanism = standard_mechanisms()[0].make();
  const auto outcome = run_trial(plan, *mechanism);
  EXPECT_TRUE(outcome.failure_observed);
  EXPECT_TRUE(outcome.survived);
  EXPECT_EQ(outcome.recoveries, 1u);
}

TEST(Trial, StatePreservedFlagTracksMechanism) {
  const auto seed = corpus::apache_seeds().front();  // an EDN leak fault
  const auto plan = inject::plan_for(seed, 5);

  auto pairs = standard_mechanisms()[0].make();
  const auto with_pairs = run_trial(plan, *pairs);
  EXPECT_TRUE(with_pairs.state_preserved);

  auto restart = standard_mechanisms()[3].make();
  ASSERT_EQ(standard_mechanisms()[3].name, "cold-restart");
  const auto with_restart = run_trial(plan, *restart);
  EXPECT_TRUE(with_restart.failure_observed);
  EXPECT_FALSE(with_restart.state_preserved);
}

TEST(Trial, DeterministicInSeed) {
  const auto seed = corpus::mysql_seeds().front();
  const auto plan = inject::plan_for(seed, 9);
  TrialConfig config;
  config.seed = 1234;
  auto m1 = standard_mechanisms()[1].make();
  auto m2 = standard_mechanisms()[1].make();
  const auto a = run_trial(plan, *m1, config);
  const auto b = run_trial(plan, *m2, config);
  EXPECT_EQ(a.survived, b.survived);
  EXPECT_EQ(a.failures, b.failures);
  EXPECT_EQ(a.recoveries, b.recoveries);
  EXPECT_EQ(a.first_failure, b.first_failure);
}

// ---------------------------------------------------------------- matrix

TEST(Matrix, HeadlineShapeHolds) {
  const auto matrix =
      run_matrix(corpus::all_seeds(), standard_mechanisms());
  ASSERT_EQ(matrix.reports.size(), 6u);
  EXPECT_EQ(matrix.fault_count, 139u);

  const auto& pairs = matrix.reports[0];
  EXPECT_EQ(pairs.mechanism, "process-pairs");
  EXPECT_TRUE(pairs.generic);
  // Generic state-preserving recovery survives exactly the EDT class.
  EXPECT_EQ(pairs.survived[0], 0u);
  EXPECT_EQ(pairs.survived[1], 0u);
  EXPECT_EQ(pairs.survived[2], 12u);
  EXPECT_EQ(pairs.total[2], 12u);
  EXPECT_EQ(pairs.vacuous, 0u);

  // 12/139 = 8.6%, inside the paper's 5-14% band.
  const double rate = static_cast<double>(pairs.survived_all()) /
                      static_cast<double>(pairs.total_all());
  EXPECT_GT(rate, 0.05);
  EXPECT_LT(rate, 0.14);

  const auto& specific = matrix.reports[5];
  EXPECT_EQ(specific.mechanism, "app-specific");
  EXPECT_EQ(specific.survived[0], 113u);  // all EI survived
  EXPECT_EQ(specific.survived[1], 8u);    // all app-reachable EDN
}

TEST(Matrix, PerAppProcessPairRatesMatchPaperBand) {
  const auto mechanisms = standard_mechanisms();
  const std::vector<std::pair<core::AppId, double>> expected = {
      {core::AppId::kApache, 7.0 / 50},
      {core::AppId::kGnome, 3.0 / 45},
      {core::AppId::kMysql, 2.0 / 44},
  };
  for (const auto& [app, rate] : expected) {
    std::vector<corpus::SeedFault> subset;
    for (const auto& s : corpus::all_seeds()) {
      if (s.app == app) subset.push_back(s);
    }
    const auto matrix =
        run_matrix(subset, {{"process-pairs", mechanisms[0].make}});
    const auto& r = matrix.reports.front();
    EXPECT_DOUBLE_EQ(static_cast<double>(r.survived_all()) /
                         static_cast<double>(r.total_all()),
                     rate)
        << core::to_string(app);
  }
}

TEST(Matrix, SurvivalRateAccessor) {
  MechanismReport r;
  r.survived = {1, 0, 3};
  r.total = {2, 0, 4};
  EXPECT_DOUBLE_EQ(r.survival_rate(FaultClass::kEnvironmentIndependent), 0.5);
  EXPECT_DOUBLE_EQ(r.survival_rate(FaultClass::kEnvDependentNonTransient),
                   0.0);
  EXPECT_EQ(r.survived_all(), 4u);
  EXPECT_EQ(r.total_all(), 6u);
}

TEST(Matrix, VacuousTrialsCountedSeparately) {
  // A fault whose trigger never fires (poison removed from the workload)
  // must land in `vacuous`, not in the survival denominators.
  corpus::SeedFault seed;
  seed.fault_id = "never-fires";
  seed.app = core::AppId::kApache;
  seed.trigger = core::Trigger::kBoundaryInput;
  seed.symptom = core::Symptom::kCrash;

  auto plan_seed = seed;
  const auto mechanisms = standard_mechanisms();
  // Run through run_matrix with a plan whose workload carries no poison:
  // plan_for keeps poison for EI triggers, so instead drive run_trial
  // directly with a modified plan and check the outcome feeding the matrix.
  auto plan = inject::plan_for(plan_seed, 1);
  plan.workload.poison_at = -1;
  auto mechanism = mechanisms[0].make();
  const auto outcome = run_trial(plan, *mechanism);
  EXPECT_FALSE(outcome.failure_observed);
  EXPECT_TRUE(outcome.survived);  // nothing went wrong
  EXPECT_EQ(outcome.recoveries, 0u);
}

TEST(Trial, RecoveryBudgetEnforced) {
  // An EDN fault under a mechanism that keeps "recovering" into the same
  // condition must stop at the budget, not loop forever.
  const corpus::SeedFault* seed = nullptr;
  const auto seeds = corpus::all_seeds();
  for (const auto& s : seeds) {
    if (s.fault_id == "apache-edn-02") seed = &s;  // fd exhaustion
  }
  ASSERT_NE(seed, nullptr);
  TrialConfig config;
  config.per_item_retries = 1000;  // disable the per-item cap
  config.recovery_budget = 5;
  const auto plan = inject::plan_for(*seed, 3);
  auto mechanism = standard_mechanisms()[0].make();
  const auto outcome = run_trial(plan, *mechanism, config);
  EXPECT_FALSE(outcome.survived);
  EXPECT_LE(outcome.recoveries, 5u);
}

// ------------------------------------------------------------ transcript

TEST(TranscriptLog, RecordsAndRenders) {
  Transcript t;
  t.record(EventKind::kStart, 0, 0, "begin");
  t.record(EventKind::kFailure, 5, 2, "crash");
  t.record(EventKind::kRecoveryOk, 10, 2);
  EXPECT_EQ(t.count(EventKind::kFailure), 1u);
  EXPECT_EQ(t.events().size(), 3u);
  const auto s = t.to_string();
  EXPECT_NE(s.find("FAILURE"), std::string::npos);
  EXPECT_NE(s.find("crash"), std::string::npos);
  EXPECT_NE(s.find("t=10"), std::string::npos);
}

}  // namespace
}  // namespace faultstudy::harness
