// Unit tests for util: deterministic RNG, Result, string helpers.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "util/result.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace faultstudy::util {
namespace {

// ---------------------------------------------------------------- RNG

TEST(SplitMix64, KnownSequenceIsStable) {
  SplitMix64 a(12345);
  SplitMix64 b(12345);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(SplitMix64, DifferentSeedsDiffer) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Xoshiro256, Deterministic) {
  Xoshiro256 a(99);
  Xoshiro256 b(99);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next(), b.next());
  }
}

TEST(Xoshiro256, JumpDecorrelates) {
  Xoshiro256 a(7);
  Xoshiro256 b(7);
  b.jump();
  std::size_t same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0u);
}

TEST(Rng, BelowRespectsBound) {
  Rng rng(1);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.below(bound), bound);
    }
  }
}

TEST(Rng, BelowZeroOrOneIsZero) {
  Rng rng(2);
  EXPECT_EQ(rng.below(0), 0u);
  EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(3);
  constexpr int kBuckets = 8;
  constexpr int kDraws = 80000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) {
    ++counts[rng.below(kBuckets)];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, kDraws / kBuckets * 0.1);
  }
}

TEST(Rng, BetweenInclusiveBounds) {
  Rng rng(4);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.between(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    if (v == -3) saw_lo = true;
    if (v == 3) saw_hi = true;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(5);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(6);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
    EXPECT_FALSE(rng.chance(-0.5));
    EXPECT_TRUE(rng.chance(1.5));
  }
}

TEST(Rng, ChanceMatchesProbability) {
  Rng rng(7);
  int hits = 0;
  for (int i = 0; i < 50000; ++i) {
    if (rng.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 50000.0, 0.3, 0.02);
}

TEST(Rng, PoissonMeanMatches) {
  Rng rng(8);
  for (double mean : {0.5, 2.0, 10.0}) {
    double sum = 0.0;
    for (int i = 0; i < 20000; ++i) sum += rng.poisson(mean);
    EXPECT_NEAR(sum / 20000.0, mean, mean * 0.1 + 0.05) << "mean=" << mean;
  }
}

TEST(Rng, PoissonLargeMeanUsesApproximation) {
  Rng rng(9);
  double sum = 0.0;
  for (int i = 0; i < 5000; ++i) sum += rng.poisson(100.0);
  EXPECT_NEAR(sum / 5000.0, 100.0, 2.0);
}

TEST(Rng, PoissonZeroMean) {
  Rng rng(10);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.poisson(0.0), 0);
}

TEST(Rng, WeightedPickHonorsWeights) {
  Rng rng(11);
  const double weights[] = {1.0, 0.0, 3.0};
  int counts[3] = {};
  for (int i = 0; i < 40000; ++i) {
    ++counts[rng.weighted_pick(weights)];
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.25);
}

TEST(Rng, WeightedPickAllZeroReturnsSize) {
  Rng rng(12);
  const double weights[] = {0.0, 0.0};
  EXPECT_EQ(rng.weighted_pick(weights), 2u);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(13);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(14);
  Rng child = parent.fork();
  std::set<std::uint64_t> a, b;
  for (int i = 0; i < 100; ++i) {
    a.insert(parent.next_u64());
    b.insert(child.next_u64());
  }
  std::vector<std::uint64_t> inter;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(inter));
  EXPECT_TRUE(inter.empty());
}

TEST(Fnv1a, StableAndDistinct) {
  EXPECT_EQ(fnv1a("abc"), fnv1a("abc"));
  EXPECT_NE(fnv1a("abc"), fnv1a("abd"));
  EXPECT_NE(fnv1a(""), fnv1a("a"));
}

// ---------------------------------------------------------------- Result

TEST(Result, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(-1), 42);
}

TEST(Result, HoldsError) {
  Result<int> r(Err<std::string>{"boom"});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error(), "boom");
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(Result, MapTransformsValue) {
  Result<int> r(10);
  auto doubled = r.map([](int v) { return v * 2; });
  ASSERT_TRUE(doubled.ok());
  EXPECT_EQ(doubled.value(), 20);
}

TEST(Result, MapPropagatesError) {
  Result<int> r(Err<std::string>{"nope"});
  auto mapped = r.map([](int v) { return v * 2; });
  ASSERT_FALSE(mapped.ok());
  EXPECT_EQ(mapped.error(), "nope");
}

TEST(Result, SameTypeForValueAndError) {
  Result<std::string, std::string> ok(std::string("value"));
  Result<std::string, std::string> err(Err<std::string>{"error"});
  EXPECT_TRUE(ok.ok());
  EXPECT_FALSE(err.ok());
}

// ---------------------------------------------------------------- strings

TEST(Strings, SplitBasic) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(Strings, SplitNoSeparator) {
  const auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(Strings, SplitWs) {
  const auto parts = split_ws("  hello   world\t\nfoo ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "hello");
  EXPECT_EQ(parts[2], "foo");
}

TEST(Strings, SplitWsEmpty) {
  EXPECT_TRUE(split_ws("").empty());
  EXPECT_TRUE(split_ws("   ").empty());
}

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"x"}, ","), "x");
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("  "), "");
  EXPECT_EQ(trim("a b"), "a b");
}

TEST(Strings, ToLower) {
  EXPECT_EQ(to_lower("MiXeD 123"), "mixed 123");
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(starts_with("apache-edn-01", "apache"));
  EXPECT_FALSE(starts_with("ap", "apache"));
  EXPECT_TRUE(ends_with("access_log", "_log"));
  EXPECT_FALSE(ends_with("log", "_log"));
}

TEST(Strings, IContains) {
  EXPECT_TRUE(icontains("Race Condition in scheduler", "race condition"));
  EXPECT_TRUE(icontains("abc", ""));
  EXPECT_FALSE(icontains("short", "longer needle"));
  EXPECT_FALSE(icontains("abcdef", "xyz"));
}

TEST(Strings, ReplaceAll) {
  EXPECT_EQ(replace_all("a-b-c", "-", "+"), "a+b+c");
  EXPECT_EQ(replace_all("aaa", "aa", "b"), "ba");
  EXPECT_EQ(replace_all("x", "", "y"), "x");
}

TEST(Strings, Padding) {
  EXPECT_EQ(pad_left("7", 3), "  7");
  EXPECT_EQ(pad_right("ab", 4), "ab  ");
  EXPECT_EQ(pad_left("long", 2), "long");
}

TEST(Strings, FixedAndPercent) {
  EXPECT_EQ(fixed(3.14159, 2), "3.14");
  EXPECT_EQ(percent(0.123), "12.3%");
  EXPECT_EQ(percent(1.0, 0), "100%");
}

}  // namespace
}  // namespace faultstudy::util
