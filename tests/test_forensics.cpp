// Tests for the fault-forensics layer: flight-recorder ring semantics,
// causal-chain reconstruction on known specimens, triage clustering, and
// the determinism contract — a forensic run over the full specimen corpus
// must serialize byte-identically for threads=1 and threads=4.
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "corpus/seeds.hpp"
#include "forensics/export.hpp"
#include "forensics/postmortem.hpp"
#include "forensics/recorder.hpp"
#include "forensics/triage.hpp"
#include "harness/experiment.hpp"

namespace faultstudy {
namespace {

using forensics::ChainStage;
using forensics::FlightCode;
using forensics::FlightRecorder;
using forensics::TrialVerdict;

const corpus::SeedFault& seed_by_id(const std::string& fault_id) {
  static const auto seeds = corpus::all_seeds();
  for (const auto& s : seeds) {
    if (s.fault_id == fault_id) return s;
  }
  ADD_FAILURE() << "unknown fault id " << fault_id;
  return seeds.front();
}

harness::MechanismFactory mechanism_by_name(const std::string& name) {
  for (const auto& nm : harness::standard_mechanisms()) {
    if (nm.name == name) return nm.make;
  }
  ADD_FAILURE() << "unknown mechanism " << name;
  return {};
}

// --- ring buffer ----------------------------------------------------------

TEST(FlightRecorder, OverwritesOldestWhenFull) {
  FlightRecorder ring(4);
  for (std::uint64_t i = 0; i < 6; ++i) {
    ring.record(FlightCode::kCheckpoint, i);
  }
  EXPECT_EQ(ring.capacity(), 4u);
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.total_recorded(), 6u);
  EXPECT_EQ(ring.dropped(), 2u);

  const auto events = ring.chronological();
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    // Events 0 and 1 were overwritten; 2..5 survive, oldest first.
    EXPECT_EQ(events[i].a, i + 2);
  }
}

TEST(FlightRecorder, StampsSimClockWhenBound) {
  env::VirtualClock clock;
  FlightRecorder ring;
  ring.record(FlightCode::kTrialStart);  // unbound: stamps tick 0
  ring.bind_clock(&clock);
  clock.advance(42);
  ring.record(FlightCode::kVerdict);
  const auto events = ring.chronological();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].at, 0u);
  EXPECT_EQ(events[1].at, 42u);
}

TEST(FlightRecorder, ClearResetsWithoutReallocating) {
  FlightRecorder ring(8);
  for (int i = 0; i < 20; ++i) ring.record(FlightCode::kCheckpoint);
  ring.clear();
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.dropped(), 0u);
  EXPECT_EQ(ring.capacity(), 8u);
}

#if FAULTSTUDY_FORENSICS
TEST(ForensicMacro, NullSinkIsANoOp) {
  FlightRecorder ring;
  FlightRecorder* sink = nullptr;
  FS_FORENSIC(sink, record(FlightCode::kCheckpoint));
  EXPECT_TRUE(ring.empty());
  sink = &ring;
  FS_FORENSIC(sink, record(FlightCode::kCheckpoint));
  EXPECT_EQ(ring.size(), 1u);
}
#else
TEST(ForensicMacro, CompilesOutEntirely) {
  FlightRecorder ring;
  FlightRecorder* sink = &ring;
  FS_FORENSIC(sink, record(FlightCode::kCheckpoint));
  EXPECT_TRUE(ring.empty());
}
#endif

// --- causal-chain reconstruction ------------------------------------------

TEST(PostMortem, SyntheticRingYieldsPropagationLink) {
  env::Environment environment;
  FlightRecorder ring;
  ring.bind_clock(&environment.clock());
  ring.record(FlightCode::kFaultArmed,
              static_cast<std::uint64_t>(core::Trigger::kDiskCacheFull));
  ring.record(FlightCode::kDiskFull, 4096, 1024);
  ring.record(FlightCode::kItemFailed, 7, 3);
  ring.record(FlightCode::kVerdict,
              static_cast<std::uint64_t>(TrialVerdict::kRecoveryFailed));

  forensics::PostMortemInputs inputs;
  inputs.fault_id = "synthetic-edn-01";
  inputs.mechanism = "cold-restart";
  inputs.verdict = TrialVerdict::kRecoveryFailed;
  inputs.failures = 1;
  const auto pm = forensics::build_postmortem(ring, environment, inputs);

  EXPECT_EQ(pm.propagation, FlightCode::kDiskFull);
  ASSERT_FALSE(pm.chain.empty());
  EXPECT_EQ(pm.chain.front().stage, ChainStage::kInjection);
  EXPECT_EQ(pm.chain.back().stage, ChainStage::kOutcome);
  bool saw_propagation = false;
  for (const auto& link : pm.chain) {
    if (link.stage == ChainStage::kPropagation) saw_propagation = true;
  }
  EXPECT_TRUE(saw_propagation);
}

TEST(PostMortem, DirectFailureHasNoResourcePrelude) {
  env::Environment environment;
  FlightRecorder ring;
  ring.record(FlightCode::kFaultArmed);
  ring.record(FlightCode::kItemFailed, 0, 2);
  forensics::PostMortemInputs inputs;
  inputs.fault_id = "synthetic-ei-01";
  inputs.mechanism = "rollback-retry";
  inputs.verdict = TrialVerdict::kRetryCapExceeded;
  const auto pm = forensics::build_postmortem(ring, environment, inputs);
  EXPECT_EQ(pm.propagation, FlightCode::kCount);
}

// Trial-runner integration only exists when the layer is compiled in; the
// pure reconstruction and triage tests above run either way.
#if FAULTSTUDY_FORENSICS
TEST(PostMortem, KnownSpecimenReconstructsFullChain) {
  // apache-ei-01 is environment-independent: cold-restart retries the same
  // poisoned input until the per-item cap, deterministically failing.
  const auto& seed = seed_by_id("apache-ei-01");
  const auto plan = inject::plan_for(seed, 42);
  auto mechanism = mechanism_by_name("cold-restart")();
  forensics::TrialForensics forens;
  const auto outcome =
      harness::run_trial(plan, *mechanism, {}, nullptr, nullptr, &forens);

  ASSERT_FALSE(outcome.survived);
  ASSERT_TRUE(forens.postmortem.has_value());
  const auto& pm = *forens.postmortem;
  EXPECT_EQ(pm.fault_id, "apache-ei-01");
  EXPECT_EQ(pm.mechanism, "cold-restart");
  EXPECT_EQ(pm.verdict, TrialVerdict::kRetryCapExceeded);

  // The chain links the injected fault id to the recovery outcome, with
  // stages in causal order.
  ASSERT_GE(pm.chain.size(), 2u);
  EXPECT_EQ(pm.chain.front().stage, ChainStage::kInjection);
  EXPECT_NE(pm.chain.front().description.find("apache-ei-01"),
            std::string::npos);
  EXPECT_EQ(pm.chain.back().stage, ChainStage::kOutcome);
  for (std::size_t i = 1; i < pm.chain.size(); ++i) {
    EXPECT_LE(pm.chain[i - 1].stage, pm.chain[i].stage);
  }
  EXPECT_FALSE(pm.events.empty());
  EXPECT_FALSE(pm.first_failure.empty());
}

TEST(PostMortem, TracedSpecimenCarriesDetectorVerdicts) {
  const auto& seed = seed_by_id("apache-ei-01");
  const auto plan = inject::plan_for(seed, 42);
  auto mechanism = mechanism_by_name("cold-restart")();
  harness::TrialObservation observation;
  forensics::TrialForensics forens;
  const auto outcome = harness::run_trial(plan, *mechanism, {}, &observation,
                                          nullptr, &forens);
  ASSERT_FALSE(outcome.survived);
  ASSERT_TRUE(forens.postmortem.has_value());
  EXPECT_TRUE(forens.postmortem->analyzed);
}

TEST(PostMortem, SurvivorProducesNoPostMortem) {
  // apache-edn-02's precondition is repaired by cold restart, so the trial
  // survives — the ring still recorded, but no post-mortem is built.
  const auto& seed = seed_by_id("apache-edn-02");
  const auto plan = inject::plan_for(seed, 42);
  auto mechanism = mechanism_by_name("cold-restart")();
  forensics::TrialForensics forens;
  const auto outcome =
      harness::run_trial(plan, *mechanism, {}, nullptr, nullptr, &forens);
  EXPECT_TRUE(outcome.survived);
  EXPECT_FALSE(forens.postmortem.has_value());
  EXPECT_FALSE(forens.ring.empty());
}
#endif  // FAULTSTUDY_FORENSICS

TEST(StudyForensics, FoldCountsSurvivorsWithoutRecords) {
  forensics::StudyForensics study;
  study.fold_trial(true, std::nullopt);
  study.fold_trial(true, std::nullopt);
  EXPECT_EQ(study.trials, 2u);
  EXPECT_EQ(study.survived, 2u);
  EXPECT_EQ(study.failures(), 0u);

  forensics::PostMortemRecord pm;
  pm.fault_id = "x";
  study.fold_trial(false, std::move(pm));
  EXPECT_EQ(study.trials, 3u);
  EXPECT_EQ(study.failures(), 1u);
}

// --- full-corpus determinism ----------------------------------------------

#if FAULTSTUDY_FORENSICS
struct MatrixRun {
  harness::MatrixResult matrix;
  forensics::StudyForensics study;
};

MatrixRun run_forensic_matrix(std::size_t threads) {
  harness::TrialConfig config;
  config.threads = threads;
  MatrixRun run;
  run.matrix =
      harness::run_matrix(corpus::all_seeds(), harness::standard_mechanisms(),
                          config, 3, nullptr, &run.study);
  return run;
}

TEST(StudyForensics, FullCorpusPostMortemsAreLaneIdentical) {
  const auto serial = run_forensic_matrix(1);
  const auto wide = run_forensic_matrix(4);

  // Every failed trial yields a post-mortem; every post-mortem's chain
  // links injection to outcome.
  EXPECT_EQ(serial.study.trials,
            serial.study.survived + serial.study.failures());
  EXPECT_GT(serial.study.failures(), 0u);
  for (const auto& pm : serial.study.postmortems) {
    ASSERT_FALSE(pm.chain.empty());
    EXPECT_EQ(pm.chain.front().stage, ChainStage::kInjection);
    EXPECT_EQ(pm.chain.back().stage, ChainStage::kOutcome);
    EXPECT_NE(pm.verdict, TrialVerdict::kSurvived);
  }

  // Serialized artifacts are byte-identical across lane counts.
  const auto clusters_serial = forensics::triage(serial.study.postmortems);
  const auto clusters_wide = forensics::triage(wide.study.postmortems);
  EXPECT_EQ(forensics::to_json(serial.study, clusters_serial),
            forensics::to_json(wide.study, clusters_wide));

  std::vector<forensics::MechanismSuccessRow> rows;
  for (const auto& report : serial.matrix.reports) {
    rows.push_back({report.mechanism, report.generic, report.survived_all(),
                    report.total_all(), report.state_losses});
  }
  EXPECT_EQ(forensics::render_explorer_html(serial.study, clusters_serial,
                                            rows, "t"),
            forensics::render_explorer_html(wide.study, clusters_wide, rows,
                                            "t"));
}
#endif  // FAULTSTUDY_FORENSICS

// --- triage ---------------------------------------------------------------

TEST(Triage, ClustersBySignatureDeterministically) {
  forensics::PostMortemRecord a;
  a.fault_id = "apache-x-01";
  a.mechanism = "cold-restart";
  a.verdict = TrialVerdict::kRetryCapExceeded;
  a.failures = 3;
  a.recoveries = 2;
  forensics::PostMortemRecord b = a;
  b.fault_id = "apache-x-02";
  forensics::PostMortemRecord c = a;
  c.mechanism = "process-pairs";

  const auto clusters = forensics::triage({a, b, c});
  ASSERT_EQ(clusters.size(), 2u);
  // Bigger cluster first; ties broken by signature.
  EXPECT_EQ(clusters[0].count, 2u);
  EXPECT_EQ(clusters[0].mechanism, "cold-restart");
  EXPECT_EQ(clusters[0].total_failures, 6u);
  ASSERT_EQ(clusters[0].fault_ids.size(), 2u);
  EXPECT_EQ(clusters[0].fault_ids[0], "apache-x-01");
  EXPECT_EQ(clusters[1].count, 1u);

  const auto sig = forensics::failure_signature(a);
  EXPECT_NE(sig.find("cold-restart"), std::string::npos);
  EXPECT_NE(sig.find("retry-cap-exceeded"), std::string::npos);
}

TEST(Export, JsonCarriesSchemaAndOmitsLanes) {
  forensics::StudyForensics study;
  forensics::PostMortemRecord pm;
  pm.fault_id = "apache-x-01";
  pm.mechanism = "cold-restart";
  pm.verdict = TrialVerdict::kRecoveryFailed;
  forensics::FlightEvent ev;
  ev.code = FlightCode::kItemFailed;
  ev.lane = 3;  // live diagnostic only: must not appear in the JSON
  pm.events.push_back(ev);
  study.fold_trial(false, std::move(pm));
  const auto json = forensics::to_json(study, forensics::triage(study.postmortems));
  EXPECT_NE(json.find("faultstudy-forensics/1"), std::string::npos);
  EXPECT_EQ(json.find("lane"), std::string::npos);
}

}  // namespace
}  // namespace faultstudy
