// Tests for the correctness-analysis layer: the vector-clock happens-before
// race detector, the transcript invariant checker, and the detector-vs-
// taxonomy oracle cross-check.
#include <gtest/gtest.h>

#include <span>

#include "analysis/invariant_checker.hpp"
#include "analysis/race_detector.hpp"
#include "analysis/vector_clock.hpp"
#include "corpus/seeds.hpp"
#include "env/interleave.hpp"
#include "harness/experiment.hpp"
#include "recovery/rollback.hpp"
#include "report/oracle.hpp"

using namespace faultstudy;
using analysis::InvariantRule;
using analysis::RaceDetector;
using analysis::VectorClock;
using env::TraceEvent;
using env::TraceLog;
using env::TraceOp;
using harness::EventKind;

namespace {

const corpus::SeedFault& find_seed(const std::string& fault_id) {
  static const auto seeds = corpus::all_seeds();
  for (const auto& s : seeds) {
    if (s.fault_id == fault_id) return s;
  }
  ADD_FAILURE() << "unknown seed " << fault_id;
  return seeds.front();
}

std::vector<analysis::RaceReport> analyze_trial(const std::string& fault_id,
                                                std::uint64_t seed,
                                                std::size_t* trace_events =
                                                    nullptr) {
  const auto plan = inject::plan_for(find_seed(fault_id), seed);
  recovery::RollbackRetry mechanism;
  harness::TrialConfig config;
  config.seed = seed;
  harness::TrialObservation observation;
  harness::run_trial(plan, mechanism, config, &observation);
  if (trace_events != nullptr) *trace_events = observation.trace.size();
  RaceDetector detector;
  return detector.analyze(std::span<const TraceEvent>(observation.trace));
}

}  // namespace

// ---------------------------------------------------------------- clocks --

TEST(VectorClockTest, JoinTakesPointwiseMax) {
  VectorClock a;
  a.set(0, 3);
  a.set(2, 1);
  VectorClock b;
  b.set(0, 1);
  b.set(1, 5);
  a.join(b);
  EXPECT_EQ(a.get(0), 3u);
  EXPECT_EQ(a.get(1), 5u);
  EXPECT_EQ(a.get(2), 1u);
}

TEST(VectorClockTest, OrderedBeforeMe) {
  VectorClock vc;
  vc.set(1, 4);
  EXPECT_TRUE(vc.ordered_before_me(1, 4));
  EXPECT_TRUE(vc.ordered_before_me(1, 3));
  EXPECT_FALSE(vc.ordered_before_me(1, 5));
  EXPECT_FALSE(vc.ordered_before_me(7, 1));  // unknown thread: clock 0
}

TEST(VectorClockTest, BumpAdvancesOwnComponent) {
  VectorClock vc;
  EXPECT_EQ(vc.bump(3), 1u);
  EXPECT_EQ(vc.bump(3), 2u);
  EXPECT_EQ(vc.get(3), 2u);
}

// -------------------------------------------------------- race detection --

TEST(RaceDetectorTest, UnsynchronizedWritesRace) {
  TraceLog log;
  log.enable();
  log.record(1, TraceOp::kWrite, 7, 0, "thread 1 writes");
  log.record(2, TraceOp::kWrite, 7, 0, "thread 2 writes");
  RaceDetector detector;
  const auto reports = detector.analyze(log);
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].object, 7u);
  EXPECT_EQ(reports[0].first.thread, 1u);
  EXPECT_EQ(reports[0].second.thread, 2u);
}

TEST(RaceDetectorTest, ReadWriteRace) {
  TraceLog log;
  log.enable();
  log.record(1, TraceOp::kRead, 7, 0);
  log.record(2, TraceOp::kWrite, 7, 0);
  RaceDetector detector;
  EXPECT_EQ(detector.analyze(log).size(), 1u);
}

TEST(RaceDetectorTest, ReadReadDoesNotConflict) {
  TraceLog log;
  log.enable();
  log.record(1, TraceOp::kRead, 7, 0);
  log.record(2, TraceOp::kRead, 7, 0);
  RaceDetector detector;
  EXPECT_TRUE(detector.analyze(log).empty());
}

TEST(RaceDetectorTest, SameThreadIsProgramOrdered) {
  TraceLog log;
  log.enable();
  log.record(1, TraceOp::kWrite, 7, 0);
  log.record(1, TraceOp::kWrite, 7, 0);
  log.record(1, TraceOp::kRead, 7, 0);
  RaceDetector detector;
  EXPECT_TRUE(detector.analyze(log).empty());
}

TEST(RaceDetectorTest, CommonLockOrdersAccesses) {
  TraceLog log;
  log.enable();
  for (env::ThreadId t : {1u, 2u}) {
    log.record(t, TraceOp::kLock, 100, 0);
    log.record(t, TraceOp::kWrite, 7, 0);
    log.record(t, TraceOp::kUnlock, 100, 0);
  }
  RaceDetector detector;
  EXPECT_TRUE(detector.analyze(log).empty());
}

TEST(RaceDetectorTest, DistinctLocksDoNotOrder) {
  TraceLog log;
  log.enable();
  log.record(1, TraceOp::kLock, 100, 0);
  log.record(1, TraceOp::kWrite, 7, 0);
  log.record(1, TraceOp::kUnlock, 100, 0);
  log.record(2, TraceOp::kLock, 101, 0);
  log.record(2, TraceOp::kWrite, 7, 0);
  log.record(2, TraceOp::kUnlock, 101, 0);
  RaceDetector detector;
  const auto reports = detector.analyze(log);
  ASSERT_EQ(reports.size(), 1u);
  ASSERT_EQ(reports[0].first.locks_held.size(), 1u);
  ASSERT_EQ(reports[0].second.locks_held.size(), 1u);
  EXPECT_EQ(reports[0].first.locks_held[0], 100u);
  EXPECT_EQ(reports[0].second.locks_held[0], 101u);
}

TEST(RaceDetectorTest, ForkJoinOrder) {
  TraceLog log;
  log.enable();
  log.record(0, TraceOp::kWrite, 7, 0);  // parent writes...
  log.record(0, TraceOp::kFork, 1, 0);   // ...then starts the child
  log.record(1, TraceOp::kWrite, 7, 0);  // ordered after the parent's write
  log.record(0, TraceOp::kJoin, 1, 0);
  log.record(0, TraceOp::kRead, 7, 0);  // ordered after the child's write
  RaceDetector detector;
  EXPECT_TRUE(detector.analyze(log).empty());
}

TEST(RaceDetectorTest, SiblingsAfterForkStillRace) {
  TraceLog log;
  log.enable();
  log.record(0, TraceOp::kFork, 1, 0);
  log.record(0, TraceOp::kFork, 2, 0);
  log.record(1, TraceOp::kWrite, 7, 0);
  log.record(2, TraceOp::kWrite, 7, 0);
  RaceDetector detector;
  EXPECT_EQ(detector.analyze(log).size(), 1u);
}

TEST(RaceDetectorTest, DedupesRepeatedPairs) {
  TraceLog log;
  log.enable();
  for (int i = 0; i < 10; ++i) {
    log.record(1, TraceOp::kWrite, 7, 0);
    log.record(2, TraceOp::kWrite, 7, 0);
  }
  RaceDetector detector;
  EXPECT_EQ(detector.analyze(log).size(), 1u);
}

TEST(RaceDetectorTest, ReportCarriesHistoryAndRenders) {
  TraceLog log;
  log.enable();
  log.record(1, TraceOp::kLock, 100, 0);
  log.record(1, TraceOp::kUnlock, 100, 0);
  log.record(1, TraceOp::kWrite, 7, 0, "the racy store");
  log.record(2, TraceOp::kWrite, 7, 0, "the racy rival");
  RaceDetector detector;
  const auto reports = detector.analyze(log);
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].first.history.size(), 2u);  // lock + unlock
  const std::string text = analysis::to_string(
      reports[0], std::span<const TraceEvent>(log.events()));
  EXPECT_NE(text.find("the racy store"), std::string::npos);
  EXPECT_NE(text.find("the racy rival"), std::string::npos);
  EXPECT_NE(text.find("events leading here"), std::string::npos);
}

// ------------------------------------- structural interleaving coverage --

TEST(StructuralTraceTest, BuggyShapeRacesAtEveryPosition) {
  env::TwoThreadShape shape;
  shape.a_steps = 10;
  shape.unguarded_at = 5;
  shape.async_locked = false;
  for (int position = 0; position <= shape.a_steps; ++position) {
    TraceLog log;
    log.enable();
    env::emit_two_thread_trace(log, 0, shape, position);
    RaceDetector detector;
    EXPECT_FALSE(detector.analyze(log).empty())
        << "buggy shape must race with B at position " << position;
  }
}

TEST(StructuralTraceTest, FixedShapeRaceFreeAtEveryPosition) {
  env::TwoThreadShape shape;
  shape.a_steps = 10;
  shape.unguarded_at = -1;  // no unguarded gap
  shape.async_locked = true;
  for (int position = 0; position <= shape.a_steps; ++position) {
    TraceLog log;
    log.enable();
    env::emit_two_thread_trace(log, 0, shape, position);
    RaceDetector detector;
    EXPECT_TRUE(detector.analyze(log).empty())
        << "fixed shape must be race-free with B at position " << position;
  }
}

TEST(StructuralTraceTest, TracedOverloadDrawsExactlyLikeUntraced) {
  env::Scheduler a(123);
  env::Scheduler b(123);
  TraceLog log;  // disabled: emission is a no-op but draws must still match
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(env::signal_mask_race(a, 12, 5),
              env::signal_mask_race(b, log, 0, 12, 5));
  }
}

TEST(StructuralTraceTest, DetectorDeterministicUnderFixedSeed) {
  std::size_t events_a = 0;
  std::size_t events_b = 0;
  const auto first = analyze_trial("mysql-edt-01", 7, &events_a);
  const auto second = analyze_trial("mysql-edt-01", 7, &events_b);
  EXPECT_EQ(events_a, events_b);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].object, second[i].object);
    EXPECT_EQ(first[i].first.event_index, second[i].first.event_index);
    EXPECT_EQ(first[i].second.event_index, second[i].second.event_index);
  }
}

// ------------------------------------------------- app-emitted specimens --

TEST(SpecimenRaceTest, RealizedRacesFireDetector) {
  for (const char* fault_id : {"mysql-edt-01", "gnome-edt-03"}) {
    EXPECT_FALSE(analyze_trial(fault_id, 11).empty())
        << fault_id << " must light up the happens-before detector";
  }
}

TEST(SpecimenRaceTest, GenericRacesFireDetector) {
  for (const char* fault_id : {"mysql-edt-02", "gnome-edt-02"}) {
    EXPECT_FALSE(analyze_trial(fault_id, 11).empty())
        << fault_id << " must light up the happens-before detector";
  }
}

TEST(SpecimenRaceTest, DeterministicFaultsStaySilent) {
  for (const char* fault_id :
       {"apache-ei-01", "mysql-ei-02", "gnome-ei-01", "apache-edn-02"}) {
    std::size_t events = 0;
    EXPECT_TRUE(analyze_trial(fault_id, 11, &events).empty())
        << fault_id << " must not fire the detector";
    // The silence is meaningful: the fixed program's synchronized traces
    // were actually analyzed, not skipped.
    EXPECT_GT(events, 0u) << fault_id;
  }
}

TEST(SpecimenRaceTest, UntracedTrialUnperturbed) {
  // Enabling tracing must not change trial outcomes: same draws, same
  // verdicts.
  for (const char* fault_id : {"mysql-edt-01", "gnome-edt-02", "apache-ei-01"}) {
    const auto plan = inject::plan_for(find_seed(fault_id), 99);
    harness::TrialConfig config;
    config.seed = 99;
    recovery::RollbackRetry untraced;
    const auto plain = harness::run_trial(plan, untraced, config);
    recovery::RollbackRetry traced;
    harness::TrialObservation observation;
    const auto observed =
        harness::run_trial(plan, traced, config, &observation);
    EXPECT_EQ(plain.survived, observed.survived) << fault_id;
    EXPECT_EQ(plain.failures, observed.failures) << fault_id;
    EXPECT_EQ(plain.recoveries, observed.recoveries) << fault_id;
  }
}

// ---------------------------------------------------- invariant checking --

TEST(InvariantCheckerTest, FlagsFdLeak) {
  harness::Transcript t;
  t.record(EventKind::kStart, 0, 0);
  t.record(EventKind::kFdOpen, 1, 4);
  t.record(EventKind::kFdClose, 2, 1);
  t.record(EventKind::kVerdict, 3, 0);
  const auto violations = analysis::check_transcript(t);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].rule, InvariantRule::kFdLeak);
  EXPECT_NE(violations[0].detail.find("3 descriptors"), std::string::npos);
}

TEST(InvariantCheckerTest, BalancedFdsClean) {
  harness::Transcript t;
  t.record(EventKind::kFdOpen, 1, 4);
  t.record(EventKind::kFdClose, 2, 4);
  EXPECT_TRUE(analysis::check_transcript(t).empty());
}

TEST(InvariantCheckerTest, FlagsProcessSlotLeakAcrossRestart) {
  harness::Transcript t;
  t.record(EventKind::kProcSpawn, 0, 501);  // hung child
  t.record(EventKind::kFailure, 1, 3);
  t.record(EventKind::kRecoveryBegin, 1, 3);
  t.record(EventKind::kRecoveryOk, 2, 3);  // 501 survived the restart
  const auto violations = analysis::check_transcript(t);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].rule, InvariantRule::kProcessSlotLeak);
  EXPECT_NE(violations[0].detail.find("501"), std::string::npos);
}

TEST(InvariantCheckerTest, SweptChildrenClean) {
  harness::Transcript t;
  t.record(EventKind::kProcSpawn, 0, 501);
  t.record(EventKind::kRecoveryBegin, 1, 3);
  t.record(EventKind::kProcKill, 1, 501);   // recovery swept the child
  t.record(EventKind::kProcSpawn, 2, 502);  // fresh worker pool
  t.record(EventKind::kRecoveryOk, 2, 3);
  t.record(EventKind::kProcKill, 3, 502);
  EXPECT_TRUE(analysis::check_transcript(t).empty());
}

TEST(InvariantCheckerTest, FlagsWriteDuringRecovery) {
  harness::Transcript t;
  t.record(EventKind::kRecoveryBegin, 1, 3);
  t.record(EventKind::kRollback, 1, 2);
  t.record(EventKind::kDiskWrite, 1, 4096);  // rollback must not write
  t.record(EventKind::kRecoveryOk, 2, 3);
  const auto violations = analysis::check_transcript(t);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].rule, InvariantRule::kWriteDuringRecovery);
}

TEST(InvariantCheckerTest, WritesOutsideRecoveryClean) {
  harness::Transcript t;
  t.record(EventKind::kDiskWrite, 0, 4096);
  t.record(EventKind::kRecoveryBegin, 1, 3);
  t.record(EventKind::kRecoveryOk, 2, 3);
  t.record(EventKind::kDiskWrite, 3, 4096);
  EXPECT_TRUE(analysis::check_transcript(t).empty());
}

TEST(InvariantCheckerTest, FlagsSignalToDeadPid) {
  harness::Transcript t;
  t.record(EventKind::kProcSpawn, 0, 501);
  t.record(EventKind::kProcKill, 1, 501);
  t.record(EventKind::kSignalRaise, 2, 501);
  const auto violations = analysis::check_transcript(t);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].rule, InvariantRule::kSignalToDeadPid);
}

TEST(InvariantCheckerTest, SignalToRespawnedPidClean) {
  harness::Transcript t;
  t.record(EventKind::kProcSpawn, 0, 501);
  t.record(EventKind::kProcKill, 1, 501);
  t.record(EventKind::kProcSpawn, 2, 501);  // pid reused
  t.record(EventKind::kSignalRaise, 3, 501);
  t.record(EventKind::kProcKill, 4, 501);
  EXPECT_TRUE(analysis::check_transcript(t).empty());
}

TEST(InvariantCheckerTest, TracedLeakTrialFlagsFdLeak) {
  // An armed descriptor-leak fault must show up as an fd-leak violation in
  // its own transcript: the checker is an independent oracle for the
  // resource-leak fault class.
  const auto plan = inject::plan_for(find_seed("apache-edn-02"), 13);
  recovery::RollbackRetry mechanism;
  harness::TrialObservation observation;
  harness::run_trial(plan, mechanism, {}, &observation);
  const auto violations = analysis::check_transcript(observation.transcript);
  bool fd_leak = false;
  for (const auto& v : violations) {
    if (v.rule == InvariantRule::kFdLeak) fd_leak = true;
  }
  EXPECT_TRUE(fd_leak) << analysis::to_string(
      std::span<const analysis::InvariantViolation>(violations));
}

// ------------------------------------------------------------ the oracle --

TEST(OracleCrosscheckTest, DetectorAgreesWithTaxonomyLabels) {
  const auto report = harness::run_oracle_crosscheck(corpus::all_seeds());
  EXPECT_EQ(report.total(), 139u);
  // Acceptance criteria: >=90% agreement, all race-labeled specimens fire,
  // zero firings on environment-independent specimens.
  EXPECT_GE(report.agreement(), 0.9);
  EXPECT_EQ(report.race_silent, 0u);
  EXPECT_EQ(report.race_fired, 4u);  // the study's four race-labeled faults
  EXPECT_EQ(report.ei_fired, 0u);
  EXPECT_EQ(report.edn_fired, 0u);
}

TEST(OracleCrosscheckTest, DeterministicUnderFixedSeed) {
  const auto seeds = corpus::mysql_seeds();
  const auto a = harness::run_oracle_crosscheck(seeds);
  const auto b = harness::run_oracle_crosscheck(seeds);
  ASSERT_EQ(a.rows.size(), b.rows.size());
  for (std::size_t i = 0; i < a.rows.size(); ++i) {
    EXPECT_EQ(a.rows[i].detector_fired, b.rows[i].detector_fired);
    EXPECT_EQ(a.rows[i].race_reports, b.rows[i].race_reports);
    EXPECT_EQ(a.rows[i].invariant_violations, b.rows[i].invariant_violations);
  }
}

TEST(OracleReportTest, RendersConfusionTableAndCsv) {
  const auto report = harness::run_oracle_crosscheck(corpus::gnome_seeds());
  const std::string table = report::render_oracle_confusion(report);
  EXPECT_NE(table.find("race (EDT)"), std::string::npos);
  EXPECT_NE(table.find("env-independent (EI)"), std::string::npos);
  const std::string csv = report::oracle_rows_to_csv(report);
  EXPECT_NE(csv.find("fault_id,app,class,trigger"), std::string::npos);
  EXPECT_NE(csv.find("gnome-edt-03"), std::string::npos);
  const std::string md = report::render_oracle_markdown(report);
  EXPECT_NE(md.find("Agreement:"), std::string::npos);
}
