// Tests for the report renderers: paper-style tables, ASCII figures, CSV
// and markdown export.
#include <gtest/gtest.h>

#include "report/export.hpp"
#include "report/figure.hpp"
#include "report/svg.hpp"
#include "report/table.hpp"

namespace faultstudy::report {
namespace {

core::ClassCounts table1_counts() {
  core::ClassCounts c;
  c[core::FaultClass::kEnvironmentIndependent] = 36;
  c[core::FaultClass::kEnvDependentNonTransient] = 7;
  c[core::FaultClass::kEnvDependentTransient] = 7;
  return c;
}

TEST(ClassTable, MatchesPaperLayout) {
  const auto s = render_class_table(table1_counts(), "Table 1 caption");
  EXPECT_NE(s.find("| Class"), std::string::npos);
  EXPECT_NE(s.find("| # Faults |"), std::string::npos);
  EXPECT_NE(s.find("environment-independent"), std::string::npos);
  EXPECT_NE(s.find("      36 |"), std::string::npos);
  EXPECT_NE(s.find("Table 1 caption"), std::string::npos);
}

TEST(ClassTable, NoCaption) {
  const auto s = render_class_table(table1_counts(), "");
  EXPECT_EQ(s.find("caption"), std::string::npos);
  // Header + separator + 3 class rows.
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 5);
}

TEST(AsciiTable, AlignsNumbersRight) {
  AsciiTable t({"name", "count"});
  t.add_row({"alpha", "5"});
  t.add_row({"b", "12345"});
  const auto s = t.to_string();
  EXPECT_NE(s.find("| alpha |     5 |"), std::string::npos);
  EXPECT_NE(s.find("| b     | 12345 |"), std::string::npos);
}

TEST(AsciiTable, ShortRowsPadded) {
  AsciiTable t({"a", "b", "c"});
  t.add_row({"only-one"});
  EXPECT_EQ(t.rows(), 1u);
  const auto s = t.to_string();
  EXPECT_NE(s.find("only-one"), std::string::npos);
}

TEST(AsciiTable, PercentAndRatioCountAsNumeric) {
  AsciiTable t({"x", "rate"});
  t.add_row({"r", "8.6%"});
  t.add_row({"s", "12/139"});
  const auto s = t.to_string();
  EXPECT_NE(s.find("  8.6%"), std::string::npos);  // right-aligned
}

TEST(Figure, StackedBarsRenderCountsAndLegend) {
  std::vector<stats::SeriesPoint> series(2);
  series[0].label = "1.3.0";
  series[0].counts[core::FaultClass::kEnvironmentIndependent] = 3;
  series[0].counts[core::FaultClass::kEnvDependentTransient] = 1;
  series[1].label = "1.3.1";
  series[1].counts[core::FaultClass::kEnvDependentNonTransient] = 2;

  const auto s = render_stacked_bars(series, "Figure X");
  EXPECT_NE(s.find("Figure X"), std::string::npos);
  EXPECT_NE(s.find("1.3.0 |######**  (4)"), std::string::npos);
  EXPECT_NE(s.find("1.3.1 |oooo  (2)"), std::string::npos);
  EXPECT_NE(s.find("environment-independent"), std::string::npos);
}

TEST(Figure, NoLegendOption) {
  FigureOptions opt;
  opt.show_legend = false;
  const auto s = render_stacked_bars({}, "T", opt);
  EXPECT_EQ(s.find("env-dependent"), std::string::npos);
}

TEST(Csv, EscapingRfc4180) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, FaultsExport) {
  core::Fault f;
  f.id = "apache-ei-01";
  f.app = core::AppId::kApache;
  f.title = "dies, with a comma";
  f.fault_class = core::FaultClass::kEnvironmentIndependent;
  f.trigger = core::Trigger::kBoundaryInput;
  f.bucket = 2;
  const auto csv = faults_to_csv({&f, 1});
  EXPECT_NE(csv.find("id,app,class,trigger,bucket,title"), std::string::npos);
  EXPECT_NE(csv.find("apache-ei-01,Apache,EI,boundary-input,2,\"dies, with "
                     "a comma\""),
            std::string::npos);
}

TEST(Csv, SeriesExport) {
  std::vector<stats::SeriesPoint> series(1);
  series[0].label = "1998-09";
  series[0].counts[core::FaultClass::kEnvironmentIndependent] = 4;
  const auto csv = series_to_csv(series);
  EXPECT_NE(csv.find("bucket,ei,edn,edt,total"), std::string::npos);
  EXPECT_NE(csv.find("1998-09,4,0,0,4"), std::string::npos);
}

TEST(Svg, XmlEscaping) {
  EXPECT_EQ(xml_escape("a<b>&\"c\""), "a&lt;b&gt;&amp;&quot;c&quot;");
  EXPECT_EQ(xml_escape("plain"), "plain");
}

TEST(Svg, RendersBarsAndLegend) {
  std::vector<stats::SeriesPoint> series(2);
  series[0].label = "1.3.0";
  series[0].counts[core::FaultClass::kEnvironmentIndependent] = 3;
  series[1].label = "1.3.1";
  series[1].counts[core::FaultClass::kEnvDependentTransient] = 2;

  const auto svg = render_svg(series, "Figure <1>");
  EXPECT_NE(svg.find("<svg xmlns"), std::string::npos);
  EXPECT_NE(svg.find("Figure &lt;1&gt;"), std::string::npos);
  EXPECT_NE(svg.find("1.3.0"), std::string::npos);
  // One rect per non-empty class segment plus the background.
  std::size_t rects = 0, pos = 0;
  while ((pos = svg.find("<rect", pos)) != std::string::npos) {
    ++rects;
    pos += 5;
  }
  EXPECT_EQ(rects, 1u /*background*/ + 2u /*segments*/ + 3u /*legend*/);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
}

TEST(Svg, EmptySeriesStillValid) {
  const auto svg = render_svg({}, "empty");
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
}

TEST(Markdown, CountsTable) {
  const auto md = counts_to_markdown(table1_counts(), "Table 1");
  EXPECT_NE(md.find("**Table 1**"), std::string::npos);
  EXPECT_NE(md.find("| environment-independent | 36 | 72.0% |"),
            std::string::npos);
}

}  // namespace
}  // namespace faultstudy::report
