// End-to-end tests: the mining pipeline over the synthetic corpora must
// reproduce the paper's Tables 1-3 exactly — 50/45/44 unique bugs with class
// splits 36/7/7, 39/3/3, 38/4/2 — because the corpora plant exactly those
// faults and the pipeline must neither lose, split, nor misclassify them.
#include <gtest/gtest.h>

#include "core/aggregate.hpp"
#include "corpus/seeds.hpp"
#include "corpus/synth.hpp"
#include "mining/pipeline.hpp"

namespace faultstudy {
namespace {

using core::FaultClass;

core::ClassCounts mined_counts(const mining::PipelineResult& result) {
  const auto faults = mining::to_faults(result);
  return core::tally(faults);
}

TEST(PipelineApache, ReproducesTable1) {
  const auto tracker = corpus::make_apache_tracker();
  EXPECT_EQ(tracker.size(), 5220u);
  EXPECT_EQ(tracker.distinct_faults(), 50u);

  const auto result = mining::run_tracker_pipeline(tracker);
  EXPECT_EQ(result.bugs.size(), 50u) << "dedup produced wrong unique count";

  const auto counts = mined_counts(result);
  EXPECT_EQ(counts[FaultClass::kEnvironmentIndependent], 36u);
  EXPECT_EQ(counts[FaultClass::kEnvDependentNonTransient], 7u);
  EXPECT_EQ(counts[FaultClass::kEnvDependentTransient], 7u);
}

TEST(PipelineGnome, ReproducesTable2) {
  const auto tracker = corpus::make_gnome_tracker();
  EXPECT_EQ(tracker.size(), 500u);
  EXPECT_EQ(tracker.distinct_faults(), 45u);

  const auto result = mining::run_tracker_pipeline(tracker);
  EXPECT_EQ(result.bugs.size(), 45u);

  const auto counts = mined_counts(result);
  EXPECT_EQ(counts[FaultClass::kEnvironmentIndependent], 39u);
  EXPECT_EQ(counts[FaultClass::kEnvDependentNonTransient], 3u);
  EXPECT_EQ(counts[FaultClass::kEnvDependentTransient], 3u);
}

TEST(PipelineMysql, ReproducesTable3) {
  const auto list = corpus::make_mysql_list();
  EXPECT_EQ(list.size(), 44000u);
  EXPECT_EQ(list.distinct_faults(), 44u);

  const auto result = mining::run_mailinglist_pipeline(list);
  EXPECT_EQ(result.bugs.size(), 44u);

  const auto counts = mined_counts(result);
  EXPECT_EQ(counts[FaultClass::kEnvironmentIndependent], 38u);
  EXPECT_EQ(counts[FaultClass::kEnvDependentNonTransient], 4u);
  EXPECT_EQ(counts[FaultClass::kEnvDependentTransient], 2u);
}

TEST(PipelineApache, EveryBugMatchesItsPlantedClass) {
  const auto result = mining::run_tracker_pipeline(corpus::make_apache_tracker());
  for (const auto& bug : result.bugs) {
    ASSERT_TRUE(bug.truth_class.has_value()) << bug.title;
    EXPECT_EQ(bug.classification.fault_class, *bug.truth_class)
        << bug.title << " trigger=" << core::to_string(bug.classification.trigger);
  }
}

}  // namespace
}  // namespace faultstudy
