// Unit tests for the simulated operating environment.
#include <gtest/gtest.h>

#include "env/environment.hpp"

namespace faultstudy::env {
namespace {

// ---------------------------------------------------------- process table

TEST(ProcessTable, SpawnUntilFull) {
  ProcessTable pt(3);
  EXPECT_TRUE(pt.spawn("a").has_value());
  EXPECT_TRUE(pt.spawn("a").has_value());
  EXPECT_TRUE(pt.spawn("b").has_value());
  EXPECT_TRUE(pt.full());
  EXPECT_FALSE(pt.spawn("a").has_value());
  EXPECT_EQ(pt.available(), 0u);
}

TEST(ProcessTable, KillFreesSlot) {
  ProcessTable pt(1);
  const auto pid = pt.spawn("a");
  ASSERT_TRUE(pid.has_value());
  EXPECT_TRUE(pt.kill(*pid));
  EXPECT_FALSE(pt.kill(*pid));  // already dead
  EXPECT_TRUE(pt.spawn("b").has_value());
}

TEST(ProcessTable, KillOwnedBySweepsAllOfOwner) {
  ProcessTable pt(10);
  pt.spawn("apache");
  pt.spawn("apache");
  pt.spawn("mysqld");
  EXPECT_EQ(pt.kill_owned_by("apache"), 2u);
  EXPECT_EQ(pt.count_owned_by("apache"), 0u);
  EXPECT_EQ(pt.count_owned_by("mysqld"), 1u);
}

TEST(ProcessTable, HungTracking) {
  ProcessTable pt(4);
  const auto p1 = pt.spawn("a");
  pt.spawn("a");
  EXPECT_TRUE(pt.mark_hung(*p1));
  EXPECT_EQ(pt.count_hung_owned_by("a"), 1u);
  EXPECT_FALSE(pt.mark_hung(9999));
}

TEST(ProcessTable, OwnedByLists) {
  ProcessTable pt(4);
  const auto p1 = pt.spawn("x");
  pt.spawn("y");
  const auto owned = pt.owned_by("x");
  ASSERT_EQ(owned.size(), 1u);
  EXPECT_EQ(owned[0], *p1);
  EXPECT_NE(pt.find(*p1), nullptr);
}

// -------------------------------------------------------------- fd table

TEST(FdTable, AcquireRelease) {
  FdTable fds(10);
  EXPECT_TRUE(fds.acquire("a", 6));
  EXPECT_EQ(fds.held_by("a"), 6u);
  EXPECT_EQ(fds.available(), 4u);
  EXPECT_FALSE(fds.acquire("b", 5));  // only 4 left, all-or-nothing
  EXPECT_EQ(fds.used(), 6u);
  fds.release("a", 2);
  EXPECT_EQ(fds.held_by("a"), 4u);
  EXPECT_TRUE(fds.acquire("b", 5));
}

TEST(FdTable, ReleaseMoreThanHeldClamps) {
  FdTable fds(10);
  fds.acquire("a", 3);
  fds.release("a", 100);
  EXPECT_EQ(fds.held_by("a"), 0u);
  EXPECT_EQ(fds.used(), 0u);
}

TEST(FdTable, ReleaseAll) {
  FdTable fds(10);
  fds.acquire("a", 3);
  fds.acquire("b", 2);
  EXPECT_EQ(fds.release_all("a"), 3u);
  EXPECT_EQ(fds.release_all("a"), 0u);
  EXPECT_EQ(fds.used(), 2u);
}

// ------------------------------------------------------------------ disk

TEST(Disk, AppendAndStat) {
  Disk disk(1000, 500);
  EXPECT_EQ(disk.append("/f", 100), Disk::WriteResult::kOk);
  EXPECT_EQ(disk.append("/f", 100), Disk::WriteResult::kOk);
  const auto info = disk.stat("/f");
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->size, 200u);
  EXPECT_EQ(disk.used(), 200u);
  EXPECT_FALSE(disk.stat("/missing").has_value());
}

TEST(Disk, FileSizeLimitEnforced) {
  Disk disk(10000, 300);
  EXPECT_EQ(disk.append("/log", 250), Disk::WriteResult::kOk);
  EXPECT_EQ(disk.append("/log", 100), Disk::WriteResult::kFileTooBig);
  EXPECT_EQ(disk.stat("/log")->size, 250u);  // failed write not applied
}

TEST(Disk, FullFileSystem) {
  Disk disk(100, 1000);
  EXPECT_EQ(disk.append("/a", 100), Disk::WriteResult::kOk);
  EXPECT_TRUE(disk.full());
  EXPECT_EQ(disk.append("/b", 1), Disk::WriteResult::kNoSpace);
}

TEST(Disk, TruncateReclaims) {
  Disk disk(100, 100);
  disk.append("/a", 80);
  disk.truncate("/a");
  EXPECT_EQ(disk.used(), 0u);
  EXPECT_EQ(disk.stat("/a")->size, 0u);
  disk.truncate("/missing");  // no-op
}

TEST(Disk, RemoveReclaims) {
  Disk disk(100, 100);
  disk.append("/a", 50);
  disk.remove("/a");
  EXPECT_FALSE(disk.stat("/a").has_value());
  EXPECT_EQ(disk.free_space(), 100u);
}

TEST(Disk, ConsumeExternal) {
  Disk disk(1000, 1000);
  disk.append("/mine", 100);
  disk.consume_external(900);
  EXPECT_EQ(disk.used(), 900u);
  disk.consume_external(500);  // already beyond; no shrink
  EXPECT_EQ(disk.used(), 900u);
}

TEST(Disk, PrefixQueries) {
  Disk disk(1000, 1000);
  disk.append("/cache/a", 10);
  disk.append("/cache/b", 20);
  disk.append("/log", 5);
  EXPECT_EQ(disk.used_under("/cache"), 30u);
  EXPECT_EQ(disk.list_prefix("/cache").size(), 2u);
  EXPECT_EQ(disk.used_under("/none"), 0u);
}

TEST(Disk, OwnerMetadata) {
  Disk disk(100, 100);
  disk.append("/f", 1);
  disk.set_owner("/f", -1);
  EXPECT_EQ(disk.stat("/f")->owner_uid, -1);
}

// ------------------------------------------------------------------- dns

TEST(Dns, HealthyByDefault) {
  DnsServer dns;
  const auto reply = dns.resolve("host", 0);
  EXPECT_TRUE(reply.ok);
  EXPECT_EQ(reply.latency, DnsServer::kNormalLatency);
}

TEST(Dns, ErrorStateHealsAtDeadline) {
  DnsServer dns;
  dns.break_until(DnsHealth::kErroring, 100);
  EXPECT_FALSE(dns.resolve("host", 50).ok);
  EXPECT_TRUE(dns.resolve("host", 100).ok);  // deadline reached -> healed
  EXPECT_TRUE(dns.resolve("host", 500).ok);
}

TEST(Dns, SlowStateHasHighLatency) {
  DnsServer dns;
  dns.break_until(DnsHealth::kSlow, 100);
  const auto reply = dns.resolve("host", 10);
  EXPECT_TRUE(reply.ok);
  EXPECT_EQ(reply.latency, DnsServer::kSlowLatency);
  EXPECT_EQ(dns.resolve("host", 200).latency, DnsServer::kNormalLatency);
}

TEST(Dns, ReverseNeedsConfiguredRecord) {
  DnsServer dns;
  EXPECT_FALSE(dns.reverse("10.0.0.9", 0).ok);
  dns.configure_reverse("10.0.0.9");
  EXPECT_TRUE(dns.reverse("10.0.0.9", 0).ok);
  dns.remove_reverse("10.0.0.9");
  EXPECT_FALSE(dns.reverse("10.0.0.9", 0).ok);
}

// --------------------------------------------------------------- network

TEST(Network, LinkDegradationExpires) {
  Network net;
  EXPECT_EQ(net.link(0), LinkState::kNormal);
  net.degrade_until(LinkState::kSlow, 50);
  EXPECT_EQ(net.link(10), LinkState::kSlow);
  EXPECT_EQ(net.link(50), LinkState::kNormal);
}

TEST(Network, CardRemoval) {
  Network net;
  EXPECT_TRUE(net.card_present());
  net.remove_card();
  EXPECT_FALSE(net.card_present());
  net.insert_card();
  EXPECT_TRUE(net.card_present());
}

TEST(Network, PortOwnership) {
  Network net;
  EXPECT_TRUE(net.bind_port(80, "apache"));
  EXPECT_FALSE(net.bind_port(80, "other"));
  EXPECT_EQ(net.port_owner(80), "apache");
  net.release_port(80, "other");  // wrong owner: no-op
  EXPECT_TRUE(net.port_bound(80));
  net.release_port(80, "apache");
  EXPECT_FALSE(net.port_bound(80));
}

TEST(Network, ReleasePortsOfOwner) {
  Network net;
  net.bind_port(80, "apache");
  net.bind_port(8080, "apache-child");
  net.bind_port(3306, "mysqld");
  EXPECT_EQ(net.release_ports_of("apache-child"), 1u);
  EXPECT_FALSE(net.port_bound(8080));
  EXPECT_TRUE(net.port_bound(3306));
}

TEST(Network, KernelResourceExhaustion) {
  Network net;
  net.set_kernel_resource(3);
  EXPECT_TRUE(net.consume_kernel_resource(2));
  EXPECT_FALSE(net.consume_kernel_resource(2));
  EXPECT_TRUE(net.consume_kernel_resource(1));
  EXPECT_EQ(net.kernel_resource_available(), 0u);
}

// --------------------------------------------------------------- entropy

TEST(Entropy, TakeAndRefill) {
  EntropyPool pool(100, 10);
  EXPECT_TRUE(pool.take(100, 0));
  EXPECT_FALSE(pool.take(1, 0));
  // 20 ticks later: 200 bits refilled.
  EXPECT_TRUE(pool.take(200, 20));
}

TEST(Entropy, DrainArmsShortage) {
  EntropyPool pool(4096, 4);
  pool.drain_to(0, 0);
  EXPECT_FALSE(pool.take(256, 10));  // only 40 bits refilled
  EXPECT_TRUE(pool.take(256, 100));  // 400 bits by now
}

TEST(Entropy, PoolCapped) {
  EntropyPool pool(0, 1000);
  EXPECT_EQ(pool.bits(1000000), 4096u);
}

// --------------------------------------------------------------- signals

TEST(Signals, DeliverDueConsumes) {
  SignalBus bus;
  bus.raise(Signal::kHup, 10);
  bus.raise(Signal::kTerm, 20);
  EXPECT_TRUE(bus.deliver_due(5).empty());
  const auto due = bus.deliver_due(15);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0], Signal::kHup);
  EXPECT_EQ(bus.pending(), 1u);
  EXPECT_EQ(bus.deliver_due(100).size(), 1u);
  EXPECT_EQ(bus.pending(), 0u);
}

// ------------------------------------------------------------- scheduler

TEST(Scheduler, DrawDeterministicPerSeed) {
  Scheduler a(5), b(5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(a.draw().raw, b.draw().raw);
  }
}

TEST(Scheduler, PhaseInUnitInterval) {
  Scheduler s(6);
  for (int i = 0; i < 1000; ++i) {
    const auto d = s.draw();
    EXPECT_GE(d.phase, 0.0);
    EXPECT_LT(d.phase, 1.0);
  }
}

TEST(Scheduler, HazardWindowBasic) {
  Interleaving i;
  i.phase = 0.45;
  EXPECT_TRUE(Scheduler::in_hazard_window(i, 0.4, 0.1));
  EXPECT_FALSE(Scheduler::in_hazard_window(i, 0.5, 0.1));
  i.phase = 0.5;  // end-exclusive
  EXPECT_FALSE(Scheduler::in_hazard_window(i, 0.4, 0.1));
}

TEST(Scheduler, HazardWindowWraps) {
  Interleaving lo, hi;
  lo.phase = 0.02;
  hi.phase = 0.97;
  EXPECT_TRUE(Scheduler::in_hazard_window(lo, 0.95, 0.1));
  EXPECT_TRUE(Scheduler::in_hazard_window(hi, 0.95, 0.1));
  Interleaving mid;
  mid.phase = 0.5;
  EXPECT_FALSE(Scheduler::in_hazard_window(mid, 0.95, 0.1));
}

TEST(Scheduler, ReplayBiasReproducesLastDraw) {
  Scheduler s(7);
  s.set_replay_bias(1.0);
  const auto first = s.draw();
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(s.draw().raw, first.raw);
  }
  s.set_replay_bias(0.0);
  EXPECT_NE(s.draw().raw, first.raw);
}

TEST(Scheduler, PartialBiasMixes) {
  Scheduler s(8);
  s.set_replay_bias(0.5);
  const auto first = s.draw();
  int repeats = 0;
  // Count immediate repeats of the previous draw.
  auto prev = first;
  for (int i = 0; i < 2000; ++i) {
    const auto d = s.draw();
    if (d.raw == prev.raw) ++repeats;
    prev = d;
  }
  EXPECT_NEAR(repeats / 2000.0, 0.5, 0.06);
}

// ------------------------------------------------------------ environment

TEST(Environment, ConfigApplied) {
  EnvironmentConfig config;
  config.process_slots = 5;
  config.fd_slots = 17;
  config.disk_capacity = 12345;
  Environment e(config);
  EXPECT_EQ(e.processes().capacity(), 5u);
  EXPECT_EQ(e.fds().capacity(), 17u);
  EXPECT_EQ(e.disk().capacity(), 12345u);
}

TEST(Environment, ClockAdvances) {
  Environment e;
  EXPECT_EQ(e.now(), 0);
  e.advance(10);
  e.advance(-5);  // negative advance ignored
  EXPECT_EQ(e.now(), 10);
}

TEST(Environment, Hostname) {
  Environment e;
  EXPECT_EQ(e.hostname(), "production-host");
  e.set_hostname("renamed");
  EXPECT_EQ(e.hostname(), "renamed");
}

}  // namespace
}  // namespace faultstudy::env
