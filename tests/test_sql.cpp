// Tests for the mini SQL engine: lexer, parser, storage/index, executor,
// and the five study bugs implemented as engine-level fault points.
#include <gtest/gtest.h>

#include "apps/sql/engine.hpp"
#include "apps/sql/lexer.hpp"

namespace faultstudy::apps::sql {
namespace {

// ------------------------------------------------------------------ lexer

TEST(SqlLexer, KeywordsAndIdentifiers) {
  const auto tokens = lex("SELECT id FROM orders");
  ASSERT_TRUE(tokens.ok());
  const auto& t = tokens.value();
  ASSERT_EQ(t.size(), 5u);  // 4 tokens + end
  EXPECT_EQ(t[0].kind, TokenKind::kKeyword);
  EXPECT_EQ(t[0].text, "SELECT");
  EXPECT_EQ(t[1].kind, TokenKind::kIdentifier);
  EXPECT_EQ(t[1].text, "id");
  EXPECT_EQ(t[4].kind, TokenKind::kEnd);
}

TEST(SqlLexer, KeywordsCaseInsensitive) {
  const auto tokens = lex("select COUNT from T");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(tokens.value()[0].text, "SELECT");
  EXPECT_EQ(tokens.value()[1].text, "COUNT");
}

TEST(SqlLexer, NumbersAndStrings) {
  const auto tokens = lex("VALUES (42, 'open', -7)");
  ASSERT_TRUE(tokens.ok());
  const auto& t = tokens.value();
  EXPECT_EQ(t[2].kind, TokenKind::kInteger);
  EXPECT_EQ(t[2].number, 42);
  EXPECT_EQ(t[4].kind, TokenKind::kString);
  EXPECT_EQ(t[4].text, "open");
  EXPECT_EQ(t[6].number, -7);
}

TEST(SqlLexer, ComparisonOperators) {
  const auto tokens = lex("a <= 1 ; b != 2 ; c >= 3");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(tokens.value()[1].text, "<=");
  EXPECT_EQ(tokens.value()[5].text, "!=");
  EXPECT_EQ(tokens.value()[9].text, ">=");
}

TEST(SqlLexer, UnterminatedStringIsError) {
  EXPECT_FALSE(lex("SELECT 'oops").ok());
}

TEST(SqlLexer, UnexpectedCharacterIsError) {
  EXPECT_FALSE(lex("SELECT @").ok());
}

// ----------------------------------------------------------------- parser

TEST(SqlParser, SelectStar) {
  const auto stmts = parse("SELECT * FROM orders");
  ASSERT_TRUE(stmts.ok());
  ASSERT_EQ(stmts.value().size(), 1u);
  const auto& s = std::get<SelectStatement>(stmts.value()[0].node);
  EXPECT_FALSE(s.count_star);
  EXPECT_TRUE(s.columns.empty());
  EXPECT_EQ(s.table, "orders");
}

TEST(SqlParser, SelectWithEverything) {
  const auto stmts = parse(
      "SELECT id, state FROM orders WHERE id > 5 AND state = 'open' "
      "ORDER BY id DESC LIMIT 3");
  ASSERT_TRUE(stmts.ok()) << stmts.error();
  const auto& s = std::get<SelectStatement>(stmts.value()[0].node);
  EXPECT_EQ(s.columns, (std::vector<std::string>{"id", "state"}));
  ASSERT_EQ(s.where.size(), 2u);
  EXPECT_EQ(s.where[0].op, CompareOp::kGt);
  ASSERT_TRUE(s.order_by.has_value());
  EXPECT_TRUE(s.order_by->descending);
  EXPECT_EQ(s.limit, 3);
}

TEST(SqlParser, CountStar) {
  const auto stmts = parse("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(stmts.ok());
  EXPECT_TRUE(std::get<SelectStatement>(stmts.value()[0].node).count_star);
}

TEST(SqlParser, InsertUpdateDelete) {
  const auto stmts = parse(
      "INSERT INTO t VALUES (1, 'x'); "
      "UPDATE t SET c = 2 WHERE c = 1; "
      "DELETE FROM t WHERE c = 2");
  ASSERT_TRUE(stmts.ok()) << stmts.error();
  ASSERT_EQ(stmts.value().size(), 3u);
  EXPECT_TRUE(std::holds_alternative<InsertStatement>(stmts.value()[0].node));
  EXPECT_TRUE(std::holds_alternative<UpdateStatement>(stmts.value()[1].node));
  EXPECT_TRUE(std::holds_alternative<DeleteStatement>(stmts.value()[2].node));
}

TEST(SqlParser, CreateTable) {
  const auto stmts = parse("CREATE TABLE t (id INT, name TEXT)");
  ASSERT_TRUE(stmts.ok());
  const auto& s = std::get<CreateStatement>(stmts.value()[0].node);
  ASSERT_EQ(s.schema.columns.size(), 2u);
  EXPECT_EQ(s.schema.columns[1].type, ColumnType::kText);
}

TEST(SqlParser, AdminStatements) {
  const auto stmts =
      parse("LOCK TABLES t WRITE; FLUSH TABLES; UNLOCK TABLES; "
            "OPTIMIZE TABLE t");
  ASSERT_TRUE(stmts.ok()) << stmts.error();
  ASSERT_EQ(stmts.value().size(), 4u);
  EXPECT_EQ(std::get<AdminStatement>(stmts.value()[0].node).kind,
            AdminStatement::Kind::kLockTables);
  EXPECT_EQ(std::get<AdminStatement>(stmts.value()[3].node).kind,
            AdminStatement::Kind::kOptimize);
}

TEST(SqlParser, Errors) {
  EXPECT_FALSE(parse("SELECT FROM").ok());
  EXPECT_FALSE(parse("INSERT INTO t (1)").ok());
  EXPECT_FALSE(parse("UPDATE t WHERE x = 1").ok());
  EXPECT_FALSE(parse("bogus statement").ok());
}

// ---------------------------------------------------------- table / index

TEST(SqlTable, InsertScanErase) {
  Table t(Schema{{{"id", ColumnType::kInteger}}});
  const auto s0 = t.insert({Value{std::int64_t{5}}});
  t.insert({Value{std::int64_t{3}}});
  EXPECT_EQ(t.row_count(), 2u);
  EXPECT_TRUE(t.check_index());
  t.erase(s0);
  EXPECT_EQ(t.row_count(), 1u);
  EXPECT_FALSE(t.is_live(s0));
  EXPECT_TRUE(t.check_index());
}

TEST(SqlTable, IndexScanOrdered) {
  Table t(Schema{{{"id", ColumnType::kInteger}}});
  for (std::int64_t v : {5, 1, 9, 3}) t.insert({Value{v}});
  std::vector<std::int64_t> keys;
  for (auto cursor = t.index_scan(); !cursor.done(); cursor.next()) {
    keys.push_back(std::get<std::int64_t>(cursor.key()));
  }
  EXPECT_EQ(keys, (std::vector<std::int64_t>{1, 3, 5, 9}));
}

TEST(SqlTable, CorrectKeyUpdateKeepsIndexConsistent) {
  Table t(Schema{{{"id", ColumnType::kInteger}}});
  const auto s = t.insert({Value{std::int64_t{1}}});
  t.update_cell(s, 0, Value{std::int64_t{7}});
  EXPECT_TRUE(t.check_index());
  EXPECT_EQ(t.index_entries(), 1u);
}

TEST(SqlTable, BuggyKeyUpdateLeavesDuplicate) {
  Table t(Schema{{{"id", ColumnType::kInteger}}});
  const auto s = t.insert({Value{std::int64_t{1}}});
  t.update_cell(s, 0, Value{std::int64_t{7}},
                /*corrupt_index_on_key_move=*/true);
  EXPECT_FALSE(t.check_index());
  EXPECT_EQ(t.index_entries(), 2u);  // stale + new: duplicate values
}

TEST(SqlTable, CompactRebuildsIndex) {
  Table t(Schema{{{"id", ColumnType::kInteger}}});
  const auto s = t.insert({Value{std::int64_t{1}}});
  t.insert({Value{std::int64_t{2}}});
  t.update_cell(s, 0, Value{std::int64_t{9}}, true);  // corrupt
  EXPECT_FALSE(t.check_index());
  t.compact();
  EXPECT_TRUE(t.check_index());
  EXPECT_EQ(t.row_count(), 2u);
}

// --------------------------------------------------------------- executor

Engine make_engine(SqlFaultFlags flags = {}) {
  Engine e(flags);
  e.execute("CREATE TABLE t (id INT, state TEXT)");
  e.execute("INSERT INTO t VALUES (1, 'open')");
  e.execute("INSERT INTO t VALUES (2, 'open')");
  e.execute("INSERT INTO t VALUES (3, 'done')");
  e.execute("CREATE TABLE empty_t (id INT)");
  return e;
}

TEST(SqlEngine, SelectWhere) {
  auto e = make_engine();
  const auto r = e.execute("SELECT id FROM t WHERE state = 'open'");
  EXPECT_EQ(r.status, ExecStatus::kOk);
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(std::get<std::int64_t>(r.rows[0][0]), 1);
}

TEST(SqlEngine, OrderByAndLimit) {
  auto e = make_engine();
  const auto r = e.execute("SELECT id FROM t ORDER BY id DESC LIMIT 2");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(std::get<std::int64_t>(r.rows[0][0]), 3);
  EXPECT_EQ(std::get<std::int64_t>(r.rows[1][0]), 2);
}

TEST(SqlEngine, CountStar) {
  auto e = make_engine();
  EXPECT_EQ(e.execute("SELECT COUNT(*) FROM t").affected, 3);
  EXPECT_EQ(e.execute("SELECT COUNT(*) FROM empty_t").affected, 0);
}

TEST(SqlEngine, UpdateFixedPathMovesKeys) {
  auto e = make_engine();
  const auto r = e.execute("UPDATE t SET id = 100 WHERE id < 3");
  EXPECT_EQ(r.status, ExecStatus::kOk);
  EXPECT_EQ(r.affected, 2);
  EXPECT_TRUE(e.find_table("t")->check_index());
}

TEST(SqlEngine, DeleteAndArityChecks) {
  auto e = make_engine();
  EXPECT_EQ(e.execute("DELETE FROM t WHERE state = 'open'").affected, 2);
  EXPECT_EQ(e.find_table("t")->row_count(), 1u);
  EXPECT_EQ(e.execute("INSERT INTO t VALUES (9)").status, ExecStatus::kError);
  EXPECT_EQ(e.execute("SELECT * FROM nosuch").status, ExecStatus::kError);
  EXPECT_EQ(e.execute("SELECT nocol FROM t").status, ExecStatus::kError);
}

TEST(SqlEngine, LockStateMachine) {
  auto e = make_engine();
  EXPECT_FALSE(e.holds_lock());
  EXPECT_EQ(e.execute("LOCK TABLES t WRITE").status, ExecStatus::kOk);
  EXPECT_TRUE(e.holds_lock());
  EXPECT_EQ(e.execute("FLUSH TABLES").status, ExecStatus::kOk);  // no bug armed
  EXPECT_EQ(e.execute("UNLOCK TABLES").status, ExecStatus::kOk);
  EXPECT_FALSE(e.holds_lock());
}

TEST(SqlEngine, EngineIsCopyable) {
  auto e = make_engine();
  Engine copy = e;
  e.execute("DELETE FROM t WHERE id = 1");
  EXPECT_EQ(copy.find_table("t")->row_count(), 3u);
  EXPECT_EQ(e.find_table("t")->row_count(), 2u);
}

// ---------------------------------------------- the five study bugs

TEST(SqlBugs, CountOnEmptyTableCrashes) {
  SqlFaultFlags flags;
  flags.count_on_empty_crash = true;
  auto e = make_engine(flags);
  EXPECT_EQ(e.execute("SELECT COUNT(*) FROM t").status, ExecStatus::kOk);
  EXPECT_EQ(e.execute("SELECT COUNT(*) FROM empty_t").status,
            ExecStatus::kCrash);
}

TEST(SqlBugs, OrderByZeroRecordsCrashes) {
  SqlFaultFlags flags;
  flags.orderby_empty_missing_init = true;
  auto e = make_engine(flags);
  EXPECT_EQ(e.execute("SELECT * FROM t ORDER BY id").status, ExecStatus::kOk);
  EXPECT_EQ(e.execute("SELECT * FROM t WHERE id > 999 ORDER BY id").status,
            ExecStatus::kCrash);
  // Without ORDER BY, zero records are fine.
  auto e2 = make_engine(flags);
  EXPECT_EQ(e2.execute("SELECT * FROM t WHERE id > 999").status,
            ExecStatus::kOk);
}

TEST(SqlBugs, OptimizeTableCrashes) {
  SqlFaultFlags flags;
  flags.optimize_missing_init = true;
  auto e = make_engine(flags);
  EXPECT_EQ(e.execute("OPTIMIZE TABLE t").status, ExecStatus::kCrash);
  auto fixed = make_engine();
  EXPECT_EQ(fixed.execute("OPTIMIZE TABLE t").status, ExecStatus::kOk);
}

TEST(SqlBugs, FlushAfterLockCrashes) {
  SqlFaultFlags flags;
  flags.flush_after_lock_bug = true;
  auto e = make_engine(flags);
  EXPECT_EQ(e.execute("FLUSH TABLES").status, ExecStatus::kOk);  // no lock
  EXPECT_EQ(e.execute("LOCK TABLES t WRITE; FLUSH TABLES").status,
            ExecStatus::kCrash);
}

TEST(SqlBugs, UpdateWhileScanningCorruptsIndexAndCrashes) {
  SqlFaultFlags flags;
  flags.update_index_scan_bug = true;
  auto e = make_engine(flags);
  const auto r = e.execute("UPDATE t SET id = 999 WHERE id < 3");
  EXPECT_EQ(r.status, ExecStatus::kCrash);
  EXPECT_NE(r.message.find("duplicate values in the index"),
            std::string::npos);
  // The crash is mid-statement: the table is left corrupted.
  EXPECT_FALSE(e.find_table("t")->check_index());
}

TEST(SqlBugs, BuggyUpdateHarmlessWhenKeyMovesBackward) {
  // A key moved to a value the scan has ALREADY passed does not collide
  // with the cursor in the same way, but still leaves a stale entry; the
  // consistency check catches it either way.
  SqlFaultFlags flags;
  flags.update_index_scan_bug = true;
  auto e = make_engine(flags);
  EXPECT_EQ(e.execute("UPDATE t SET id = 0 WHERE id = 3").status,
            ExecStatus::kCrash);
}

TEST(SqlBugs, FixedEngineRunsAllKillersClean) {
  auto e = make_engine();
  EXPECT_EQ(e.execute("SELECT COUNT(*) FROM empty_t").status, ExecStatus::kOk);
  EXPECT_EQ(e.execute("SELECT * FROM t WHERE id > 999 ORDER BY id").status,
            ExecStatus::kOk);
  EXPECT_EQ(e.execute("OPTIMIZE TABLE t").status, ExecStatus::kOk);
  EXPECT_EQ(e.execute("LOCK TABLES t WRITE; FLUSH TABLES; UNLOCK TABLES").status,
            ExecStatus::kOk);
  EXPECT_EQ(e.execute("UPDATE t SET id = 999 WHERE id < 3").status,
            ExecStatus::kOk);
  EXPECT_TRUE(e.find_table("t")->check_index());
}

}  // namespace
}  // namespace faultstudy::apps::sql
