// Tests for the structural interleaving model and the realized races.
#include <gtest/gtest.h>

#include "apps/database.hpp"
#include "apps/desktop.hpp"
#include "corpus/seeds.hpp"
#include "env/interleave.hpp"
#include "harness/experiment.hpp"
#include "recovery/process_pairs.hpp"
#include "recovery/progressive.hpp"
#include "util/rng.hpp"

namespace faultstudy::env {
namespace {

TEST(Interleave, PositionsInRange) {
  Scheduler s(1);
  for (int i = 0; i < 1000; ++i) {
    const int p = interleave_position(s, 10);
    EXPECT_GE(p, 0);
    EXPECT_LE(p, 10);
  }
}

TEST(Interleave, PositionsRoughlyUniform) {
  Scheduler s(2);
  constexpr int kSteps = 4;  // 5 positions
  int counts[kSteps + 1] = {};
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) {
    ++counts[interleave_position(s, kSteps)];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / (kSteps + 1), kDraws / (kSteps + 1) * 0.1);
  }
}

TEST(Interleave, ZeroStepsAlwaysPositionZero) {
  Scheduler s(3);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(interleave_position(s, 0), 0);
  }
}

TEST(Interleave, SignalMaskRaceProbabilityIsStructural) {
  // The race fires iff B lands in one specific gap of a_steps+1 positions:
  // expected probability 1/(a_steps+1).
  Scheduler s(4);
  constexpr int kSteps = 12;
  constexpr int kTrials = 60000;
  int fires = 0;
  for (int i = 0; i < kTrials; ++i) {
    if (signal_mask_race(s, kSteps, 5)) ++fires;
  }
  EXPECT_NEAR(static_cast<double>(fires) / kTrials, 1.0 / (kSteps + 1), 0.01);
}

TEST(Interleave, ReplayBiasReproducesTheRace) {
  // With full replay bias, once the race fires it keeps firing — the
  // rollback-replay pathology progressive retry exists to break.
  Scheduler s(5);
  bool fired = false;
  for (int i = 0; i < 2000 && !fired; ++i) {
    fired = signal_mask_race(s, 12, 5);
  }
  ASSERT_TRUE(fired);
  s.set_replay_bias(1.0);
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(signal_mask_race(s, 12, 5));
  }
}

TEST(RealizedRace, DatabaseSignalMaskRaceFiresEventually) {
  env::Environment e;
  apps::Database db;
  apps::ActiveFault fault;
  fault.trigger = core::Trigger::kRaceCondition;
  fault.symptom = core::Symptom::kCrash;
  fault.fault_id = "mysql-edt-01";
  db.arm_fault(fault);
  ASSERT_TRUE(db.start(e));

  apps::WorkItem racy;
  racy.op = "SELECT COUNT(*) FROM customers";
  racy.racy = true;
  bool crashed = false;
  for (int i = 0; i < 500 && !crashed; ++i) {
    const auto r = db.handle(racy, e);
    if (r.status == apps::StepStatus::kCrash) {
      crashed = true;
      EXPECT_NE(r.detail.find("mask"), std::string::npos);
    }
  }
  EXPECT_TRUE(crashed);
}

TEST(RealizedRace, NonRacyItemsNeverHitIt) {
  env::Environment e;
  apps::Database db;
  apps::ActiveFault fault;
  fault.trigger = core::Trigger::kRaceCondition;
  fault.fault_id = "mysql-edt-01";
  db.arm_fault(fault);
  ASSERT_TRUE(db.start(e));
  apps::WorkItem calm;
  calm.op = "SELECT COUNT(*) FROM customers";
  for (int i = 0; i < 300; ++i) {
    EXPECT_FALSE(apps::is_failure(db.handle(calm, e)));
  }
}

TEST(RealizedRace, SurvivesGenericRecovery) {
  // The realized races are EDT: process pairs must survive them, and
  // progressive retry must need no more recoveries than rollback would.
  const auto seeds = corpus::all_seeds();
  for (const char* id : {"mysql-edt-01", "gnome-edt-03"}) {
    const corpus::SeedFault* seed = nullptr;
    for (const auto& s : seeds) {
      if (s.fault_id == id) seed = &s;
    }
    ASSERT_NE(seed, nullptr) << id;
    harness::TrialConfig tc;
    tc.seed = 23 + util::fnv1a(id);
    const auto plan = inject::plan_for(*seed, tc.seed);
    recovery::ProcessPairs pp;
    const auto outcome = harness::run_trial(plan, pp, tc);
    EXPECT_TRUE(outcome.failure_observed) << id;
    EXPECT_TRUE(outcome.survived) << id;
  }
}

}  // namespace
}  // namespace faultstudy::env
