// Tests for the workload generator.
#include <gtest/gtest.h>

#include <set>

#include "apps/workload.hpp"

namespace faultstudy::apps {
namespace {

TEST(Workload, LengthAndPoisonPlacement) {
  WorkloadSpec spec;
  spec.length = 30;
  spec.poison_at = 12;
  const auto w = make_workload(core::AppId::kApache, spec);
  ASSERT_EQ(w.size(), 30u);
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_EQ(w.items[i].poison, i == 12u) << i;
    EXPECT_EQ(w.items[i].id, static_cast<int>(i));
  }
}

TEST(Workload, NoPoisonWhenNegative) {
  WorkloadSpec spec;
  spec.poison_at = -1;
  const auto w = make_workload(core::AppId::kGnome, spec);
  for (const auto& item : w.items) {
    EXPECT_FALSE(item.poison);
  }
}

TEST(Workload, PoisonOpOverride) {
  WorkloadSpec spec;
  spec.poison_at = 5;
  spec.poison_op = "OPTIMIZE TABLE orders";
  const auto w = make_workload(core::AppId::kMysql, spec);
  EXPECT_EQ(w.items[5].op, "OPTIMIZE TABLE orders");
  EXPECT_TRUE(w.items[5].poison);
  EXPECT_NE(w.items[4].op, "OPTIMIZE TABLE orders");
}

TEST(Workload, DeterministicInSeed) {
  const auto a = make_workload(core::AppId::kMysql, {});
  const auto b = make_workload(core::AppId::kMysql, {});
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.items[i].op, b.items[i].op);
    EXPECT_EQ(a.items[i].heavy, b.items[i].heavy);
    EXPECT_EQ(a.items[i].racy, b.items[i].racy);
  }
}

TEST(Workload, DifferentSeedsDiffer) {
  WorkloadSpec other;
  other.seed = 999;
  const auto a = make_workload(core::AppId::kApache, {});
  const auto b = make_workload(core::AppId::kApache, other);
  std::size_t differing = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a.items[i].op != b.items[i].op) ++differing;
  }
  EXPECT_GT(differing, 0u);
}

TEST(Workload, PerAppOperationVocabulary) {
  WorkloadSpec spec;
  spec.length = 200;
  const auto web = make_workload(core::AppId::kApache, spec);
  const auto db = make_workload(core::AppId::kMysql, spec);
  const auto ui = make_workload(core::AppId::kGnome, spec);
  for (const auto& item : web.items) {
    EXPECT_TRUE(item.op.starts_with("GET ") || item.op.starts_with("POST "))
        << item.op;
  }
  bool saw_sql = false;
  for (const auto& item : db.items) {
    if (item.op.starts_with("SELECT") || item.op.starts_with("INSERT")) {
      saw_sql = true;
    }
  }
  EXPECT_TRUE(saw_sql);
  for (const auto& item : ui.items) {
    EXPECT_TRUE(item.op.find(':') != std::string::npos) << item.op;
  }
}

TEST(Workload, RatesRoughlyHonored) {
  WorkloadSpec spec;
  spec.length = 4000;
  spec.heavy_rate = 0.25;
  spec.racy_rate = 0.3;
  const auto w = make_workload(core::AppId::kApache, spec);
  std::size_t heavy = 0, racy = 0;
  for (const auto& item : w.items) {
    heavy += item.heavy ? 1 : 0;
    racy += item.racy ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(heavy) / spec.length, 0.25, 0.03);
  EXPECT_NEAR(static_cast<double>(racy) / spec.length, 0.3, 0.03);
}

TEST(Workload, SslItemsCarryEntropyDemand) {
  WorkloadSpec spec;
  spec.length = 400;
  const auto w = make_workload(core::AppId::kApache, spec);
  bool saw_entropy = false;
  for (const auto& item : w.items) {
    if (item.entropy_bits > 0) {
      saw_entropy = true;
      EXPECT_NE(item.op.find("https"), std::string::npos);
    }
  }
  EXPECT_TRUE(saw_entropy);
}

}  // namespace
}  // namespace faultstudy::apps
