// Tests for the recovery mechanisms: state preservation semantics, the
// environment sweep, checkpoint cadence and rewind, rejuvenation and the
// app-specific wrapper.
#include <gtest/gtest.h>

#include "apps/webserver.hpp"
#include "inject/specimen.hpp"
#include "recovery/app_specific.hpp"
#include "recovery/perturbation.hpp"
#include "recovery/process_pairs.hpp"
#include "recovery/progressive.hpp"
#include "recovery/rejuvenation.hpp"
#include "recovery/restart.hpp"
#include "recovery/rollback.hpp"

namespace faultstudy::recovery {
namespace {

using apps::WebServer;
using apps::WorkItem;

WorkItem item(int id) {
  WorkItem w;
  w.id = id;
  w.op = "GET /";
  return w;
}

TEST(MechanismProperties, GenericAndStateFlags) {
  EXPECT_TRUE(ProcessPairs().is_generic());
  EXPECT_TRUE(ProcessPairs().preserves_state());
  EXPECT_TRUE(RollbackRetry().is_generic());
  EXPECT_TRUE(ProgressiveRetry().is_generic());
  EXPECT_TRUE(ColdRestart().is_generic());
  EXPECT_FALSE(ColdRestart().preserves_state());
  EXPECT_FALSE(Rejuvenation().is_generic());
  EXPECT_FALSE(AppSpecific().is_generic());
}

TEST(Sweep, KillsAppAndChildrenAndFreesPorts) {
  env::Environment e;
  WebServer server;
  ASSERT_TRUE(server.start(e));
  // Hung children under the child owner, squatting on a port.
  const auto pid = e.processes().spawn("apache-child");
  ASSERT_TRUE(pid.has_value());
  e.network().bind_port(8080, "apache-child");

  sweep_application(server, e);
  EXPECT_EQ(e.processes().count_owned_by("apache"), 0u);
  EXPECT_EQ(e.processes().count_owned_by("apache-child"), 0u);
  EXPECT_FALSE(e.network().port_bound(8080));
  EXPECT_FALSE(e.network().port_bound(80));
}

TEST(ProcessPairsMech, RestoresLastCompletedOperation) {
  env::Environment e;
  WebServer server;
  ASSERT_TRUE(server.start(e));
  ProcessPairs pp;
  pp.attach(server, e);

  for (int i = 0; i < 4; ++i) {
    ASSERT_FALSE(apps::is_failure(server.handle(item(i), e)));
    pp.on_item_success(server, e);
  }
  // Simulate a crash: the app is down; the backup takes over.
  server.stop(e);
  const auto action = pp.recover(server, e);
  EXPECT_TRUE(action.recovered);
  EXPECT_EQ(action.rewind_items, 0u);
  EXPECT_TRUE(server.running());
  EXPECT_EQ(server.requests_served(), 4u);  // state preserved
}

TEST(ProcessPairsMech, RecoveryAdvancesTime) {
  env::Environment e;
  WebServer server;
  ASSERT_TRUE(server.start(e));
  ProcessPairs pp;
  pp.attach(server, e);
  const auto before = e.now();
  pp.recover(server, e);
  EXPECT_EQ(e.now(), before + RecoveryCosts::kProcessPairs);
}

TEST(RollbackMech, CheckpointCadenceAndRewind) {
  env::Environment e;
  WebServer server;
  ASSERT_TRUE(server.start(e));
  RollbackRetry rb(/*checkpoint_interval=*/3);
  rb.attach(server, e);

  // 4 successes: checkpoint taken after item 3 (cadence 3), one item since.
  for (int i = 0; i < 4; ++i) {
    server.handle(item(i), e);
    rb.on_item_success(server, e);
  }
  const auto action = rb.recover(server, e);
  EXPECT_TRUE(action.recovered);
  EXPECT_EQ(action.rewind_items, 1u);
  EXPECT_EQ(server.requests_served(), 3u);  // rolled back to checkpoint
}

TEST(RollbackMech, ZeroIntervalClampedToOne) {
  RollbackRetry rb(0);
  EXPECT_EQ(rb.checkpoint_interval(), 1u);
}

TEST(RollbackMech, SetsReplayBias) {
  env::Environment e;
  WebServer server;
  server.start(e);
  RollbackRetry rb;
  rb.attach(server, e);
  EXPECT_DOUBLE_EQ(e.scheduler().replay_bias(), ReplayBias::kRollbackRetry);
  ProgressiveRetry pr;
  pr.attach(server, e);
  EXPECT_DOUBLE_EQ(e.scheduler().replay_bias(), ReplayBias::kProgressiveRetry);
}

TEST(ColdRestartMech, LosesStateButRuns) {
  env::Environment e;
  WebServer server;
  ASSERT_TRUE(server.start(e));
  ColdRestart restart;
  restart.attach(server, e);
  for (int i = 0; i < 4; ++i) server.handle(item(i), e);
  EXPECT_EQ(server.requests_served(), 4u);

  const auto action = restart.recover(server, e);
  EXPECT_TRUE(action.recovered);
  EXPECT_EQ(server.requests_served(), 0u);  // state gone
  EXPECT_TRUE(server.running());
}

TEST(ColdRestartMech, RereadsEnvironmentFacts) {
  env::Environment e;
  WebServer server;
  apps::ActiveFault fault;
  fault.trigger = core::Trigger::kHostnameChanged;
  fault.symptom = core::Symptom::kErrorReturn;
  server.arm_fault(fault);
  ASSERT_TRUE(server.start(e));
  e.set_hostname("renamed");
  EXPECT_TRUE(apps::is_failure(server.handle(item(0), e)));

  ColdRestart restart;
  restart.attach(server, e);
  ASSERT_TRUE(restart.recover(server, e).recovered);
  // The restarted server cached the new hostname: the fault is gone.
  EXPECT_FALSE(apps::is_failure(server.handle(item(1), e)));
}

TEST(RejuvenationMech, ClearsLeaksKeepsState) {
  env::Environment e;
  WebServer server;
  apps::ActiveFault fault;
  fault.trigger = core::Trigger::kDeterministicLeak;
  fault.symptom = core::Symptom::kCrash;
  fault.leak_limit = 100;
  server.arm_fault(fault);
  ASSERT_TRUE(server.start(e));
  for (int i = 0; i < 5; ++i) server.handle(item(i), e);
  EXPECT_EQ(server.leaked_units(), 5u);

  Rejuvenation rejuv;
  rejuv.attach(server, e);
  ASSERT_TRUE(rejuv.recover(server, e).recovered);
  EXPECT_EQ(server.leaked_units(), 0u);
  EXPECT_EQ(server.requests_served(), 5u);  // long-lived state kept
}

TEST(AppSpecificMech, SanitizesExactlyOneRetry) {
  AppSpecific as;
  env::Environment e;
  WebServer server;
  ASSERT_TRUE(server.start(e));
  as.attach(server, e);
  as.recover(server, e);

  WorkItem poison = item(0);
  poison.poison = true;
  as.prepare_retry(poison);
  EXPECT_FALSE(poison.poison);  // wrapper rejected the killer input

  WorkItem next = item(1);
  next.poison = true;
  as.prepare_retry(next);
  EXPECT_TRUE(next.poison);  // sanitization applies to one retry only
}

TEST(AppSpecificMech, GenericMechanismsNeverSanitize) {
  ProcessPairs pp;
  WorkItem poison = item(0);
  poison.poison = true;
  pp.prepare_retry(poison);
  EXPECT_TRUE(poison.poison);
}

TEST(AppRecoverable, ExternalConditionsExcluded) {
  EXPECT_FALSE(app_recoverable(core::Trigger::kHardwareRemoval));
  EXPECT_FALSE(app_recoverable(core::Trigger::kFullFileSystem));
  EXPECT_FALSE(app_recoverable(core::Trigger::kExternalSocketLeak));
  EXPECT_FALSE(app_recoverable(core::Trigger::kReverseDnsMissing));
  EXPECT_FALSE(app_recoverable(core::Trigger::kNetworkResourceExhausted));
  EXPECT_TRUE(app_recoverable(core::Trigger::kFdExhaustion));
  EXPECT_TRUE(app_recoverable(core::Trigger::kBoundaryInput));
  EXPECT_TRUE(app_recoverable(core::Trigger::kRaceCondition));
}

TEST(Costs, FastMechanismsAreFaster) {
  EXPECT_LT(RecoveryCosts::kProcessPairs, RecoveryCosts::kColdRestart);
  EXPECT_LT(RecoveryCosts::kAppSpecific, RecoveryCosts::kRejuvenation);
}

TEST(Bias, ProgressiveBelowRollback) {
  EXPECT_LT(ReplayBias::kProgressiveRetry, ReplayBias::kRollbackRetry);
  EXPECT_LT(ReplayBias::kProcessPairs, ReplayBias::kRollbackRetry);
}

}  // namespace
}  // namespace faultstudy::recovery
