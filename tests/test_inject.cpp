// Tests for the injection plans: every seed fault must yield a plan that
// actually makes its trigger condition reachable.
#include <gtest/gtest.h>

#include "corpus/seeds.hpp"
#include "inject/specimen.hpp"

namespace faultstudy::inject {
namespace {

corpus::SeedFault seed_with(core::Trigger trigger,
                            core::AppId app = core::AppId::kApache) {
  corpus::SeedFault s;
  s.fault_id = "test-seed";
  s.app = app;
  s.trigger = trigger;
  s.symptom = core::Symptom::kCrash;
  return s;
}

TEST(MakeApp, RightTypePerApp) {
  EXPECT_EQ(make_app(core::AppId::kApache)->id(), core::AppId::kApache);
  EXPECT_EQ(make_app(core::AppId::kGnome)->id(), core::AppId::kGnome);
  EXPECT_EQ(make_app(core::AppId::kMysql)->id(), core::AppId::kMysql);
  EXPECT_EQ(make_app(core::AppId::kApache)->name(), "apache");
}

TEST(PlanFor, EverySeedProducesRunnablePlan) {
  for (const auto& seed : corpus::all_seeds()) {
    const auto plan = plan_for(seed, 7);
    EXPECT_EQ(plan.fault.trigger, seed.trigger) << seed.fault_id;
    EXPECT_EQ(plan.fault.symptom, seed.symptom) << seed.fault_id;
    ASSERT_TRUE(plan.arm_environment != nullptr) << seed.fault_id;

    env::Environment e(plan.env_config);
    auto app = make_app(seed.app);
    app->arm_fault(plan.fault);
    ASSERT_TRUE(app->start(e)) << seed.fault_id << ": app must start";
    plan.arm_environment(e, *app);  // must not crash
  }
}

TEST(PlanFor, HardwareRemovalRemovesCard) {
  const auto plan = plan_for(seed_with(core::Trigger::kHardwareRemoval), 1);
  env::Environment e(plan.env_config);
  auto app = make_app(core::AppId::kApache);
  app->start(e);
  EXPECT_TRUE(e.network().card_present());
  plan.arm_environment(e, *app);
  EXPECT_FALSE(e.network().card_present());
}

TEST(PlanFor, FullFileSystemLeavesNoSpace) {
  const auto plan = plan_for(seed_with(core::Trigger::kFullFileSystem), 1);
  env::Environment e(plan.env_config);
  auto app = make_app(core::AppId::kApache);
  app->start(e);
  plan.arm_environment(e, *app);
  EXPECT_EQ(e.disk().free_space(), 0u);
}

TEST(PlanFor, HostnameChangeHappensAfterStart) {
  const auto plan = plan_for(seed_with(core::Trigger::kHostnameChanged,
                                       core::AppId::kGnome), 1);
  env::Environment e(plan.env_config);
  auto app = make_app(core::AppId::kGnome);
  app->start(e);
  const auto before = e.hostname();
  plan.arm_environment(e, *app);
  EXPECT_NE(e.hostname(), before);
}

TEST(PlanFor, ExternalSocketLeakStarvesTable) {
  const auto plan = plan_for(seed_with(core::Trigger::kExternalSocketLeak,
                                       core::AppId::kGnome), 1);
  env::Environment e(plan.env_config);
  auto app = make_app(core::AppId::kGnome);
  app->start(e);
  plan.arm_environment(e, *app);
  EXPECT_EQ(e.fds().available(), 0u);
  EXPECT_GT(e.fds().held_by("sound-utilities"), 0u);
}

TEST(PlanFor, PortsHeldArmsHungChildren) {
  const auto plan = plan_for(seed_with(core::Trigger::kPortsHeldByChildren), 1);
  env::Environment e(plan.env_config);
  auto app = make_app(core::AppId::kApache);
  app->start(e);
  plan.arm_environment(e, *app);
  EXPECT_TRUE(e.network().port_bound(kAuxPort));
  EXPECT_EQ(e.network().port_owner(kAuxPort), "apache-child");
  EXPECT_EQ(e.processes().count_hung_owned_by("apache-child"), 2u);
}

TEST(PlanFor, DnsErrorHealsEventually) {
  const auto plan = plan_for(seed_with(core::Trigger::kDnsError), 1);
  env::Environment e(plan.env_config);
  auto app = make_app(core::AppId::kApache);
  app->start(e);
  plan.arm_environment(e, *app);
  EXPECT_FALSE(e.dns().resolve("host", e.now()).ok);
  e.advance(10000);
  EXPECT_TRUE(e.dns().resolve("host", e.now()).ok);
}

TEST(PlanFor, FdExhaustionShrinksTable) {
  const auto plan = plan_for(seed_with(core::Trigger::kFdExhaustion), 1);
  EXPECT_LT(plan.env_config.fd_slots, env::EnvironmentConfig{}.fd_slots);
}

TEST(PlanFor, ProcessTableShrunk) {
  const auto plan = plan_for(seed_with(core::Trigger::kProcessTableFull), 1);
  EXPECT_LT(plan.env_config.process_slots,
            env::EnvironmentConfig{}.process_slots);
}

TEST(PlanFor, EiTriggersKeepPoisonItem) {
  const auto plan = plan_for(seed_with(core::Trigger::kBoundaryInput), 1);
  EXPECT_GE(plan.workload.poison_at, 0);
  const auto edn = plan_for(seed_with(core::Trigger::kFullFileSystem), 1);
  EXPECT_LT(edn.workload.poison_at, 0);
}

TEST(PlanFor, CorruptMetadataPlantsBadFile) {
  const auto plan = plan_for(seed_with(core::Trigger::kCorruptFileMetadata,
                                       core::AppId::kGnome), 1);
  env::Environment e(plan.env_config);
  auto app = make_app(core::AppId::kGnome);
  app->start(e);
  plan.arm_environment(e, *app);
  const auto info = e.disk().stat("/home/user/attachment.dat");
  ASSERT_TRUE(info.has_value());
  EXPECT_LT(info->owner_uid, 0);
}

TEST(ChildOwner, DerivedFromAppName) {
  auto app = make_app(core::AppId::kMysql);
  EXPECT_EQ(child_owner(*app), "mysqld-child");
}

}  // namespace
}  // namespace faultstudy::inject
