// Tests for the observability layer: coverage probes, the study atlas,
// baseline snapshots, and the drift differ.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "corpus/seeds.hpp"
#include "harness/experiment.hpp"
#include "obs/atlas.hpp"
#include "obs/baseline.hpp"
#include "obs/export.hpp"
#include "obs/probes.hpp"
#include "telemetry/metrics.hpp"
#include "util/json.hpp"

namespace faultstudy {
namespace {

std::vector<corpus::SeedFault> small_corpus(std::size_t n) {
  auto seeds = corpus::all_seeds();
  if (seeds.size() > n) seeds.resize(n);
  return seeds;
}

std::vector<harness::NamedMechanism> small_roster(std::size_t n) {
  auto mechanisms = harness::standard_mechanisms();
  if (mechanisms.size() > n) mechanisms.resize(n);
  return mechanisms;
}

// --- CoverageMap primitives ------------------------------------------------

TEST(CoverageMap, HitAndMergeAccumulate) {
  obs::CoverageMap a;
  EXPECT_TRUE(a.empty());
  a.hit(obs::Site::kEnvFdDenied);
  a.hit(obs::Site::kEnvFdDenied);
  a.hit_inject(core::Trigger::kRaceCondition);
  EXPECT_EQ(a.count(obs::Site::kEnvFdDenied), 2u);
  EXPECT_EQ(a.count_inject(core::Trigger::kRaceCondition), 1u);
  EXPECT_EQ(a.probes_hit(), 2u);

  obs::CoverageMap b;
  b.hit(obs::Site::kEnvFdDenied);
  b.hit(obs::Site::kAppStarted);
  a.merge(b);
  EXPECT_EQ(a.count(obs::Site::kEnvFdDenied), 3u);
  EXPECT_EQ(a.count(obs::Site::kAppStarted), 1u);
  EXPECT_EQ(a.probes_hit(), 3u);
}

TEST(CoverageMap, SiteNamesAreStableAndSectioned) {
  EXPECT_EQ(obs::site_name(obs::Site::kEnvFdDenied), "env/fd_denied");
  EXPECT_EQ(obs::site_section(obs::Site::kEnvFdDenied), "env");
  EXPECT_EQ(obs::site_section(obs::Site::kAppStarted), "app");
  EXPECT_EQ(obs::site_section(obs::Site::kRecCheckpoint), "recovery");
  EXPECT_EQ(obs::site_section(obs::Site::kTrialSurvived), "trial");
  // Every site must have a unique, non-empty export name.
  std::vector<std::string> names;
  for (std::size_t i = 0; i < obs::kNumSites; ++i) {
    names.emplace_back(obs::site_name(static_cast<obs::Site>(i)));
    EXPECT_FALSE(names.back().empty());
  }
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::adjacent_find(names.begin(), names.end()), names.end());
}

// --- probe wiring through run_trial ---------------------------------------

TEST(CoverageProbes, TrialRecordsProbesWhenCompiledIn) {
  const auto seeds = small_corpus(1);
  const auto plan = inject::plan_for(seeds[0], 42);
  auto mechanism = harness::standard_mechanisms()[0].make();
  obs::CoverageMap map;
  (void)harness::run_trial(plan, *mechanism, {}, nullptr, nullptr, nullptr,
                           &map);
#if FAULTSTUDY_COVERAGE
  // The trial must at least arm its trigger, start the app, attach the
  // mechanism, and reach a verdict.
  EXPECT_GT(map.count_inject(seeds[0].trigger), 0u);
  EXPECT_GT(map.count(obs::Site::kAppStarted), 0u);
  EXPECT_GT(map.count(obs::Site::kRecAttach), 0u);
#else
  // Compile-out check: with FAULTSTUDY_COVERAGE=OFF every FS_COVER site
  // expands to nothing, so an attached sink stays empty.
  EXPECT_TRUE(map.empty());
#endif
}

// --- atlas fold determinism ------------------------------------------------

TEST(CoverageAtlas, FoldIsIdenticalForOneAndFourLanes) {
  const auto seeds = corpus::all_seeds();
  const auto mechanisms = harness::standard_mechanisms();
  const auto run = [&](std::size_t threads, obs::CoverageAtlas& atlas) {
    harness::TrialConfig config;
    config.threads = threads;
    return harness::run_matrix(seeds, mechanisms, config, 3, nullptr, nullptr,
                               &atlas);
  };
  obs::CoverageAtlas serial, wide;
  const auto serial_matrix = run(1, serial);
  const auto wide_matrix = run(4, wide);
  EXPECT_TRUE(serial == wide);
  EXPECT_EQ(obs::to_json(serial), obs::to_json(wide));
  EXPECT_EQ(obs::render_heatmap_html(serial), obs::render_heatmap_html(wide));
  const auto serial_snap =
      obs::build_snapshot(seeds, serial_matrix, serial, {}, 99, 3);
  const auto wide_snap =
      obs::build_snapshot(seeds, wide_matrix, wide, {}, 99, 3);
  EXPECT_EQ(obs::to_json(serial_snap), obs::to_json(wide_snap));
}

TEST(CoverageAtlas, FoldCellFillsSpecimensAndGrids) {
  const auto seeds = small_corpus(2);
  obs::CoverageAtlas atlas;
  atlas.begin_study(seeds, {"mech-a", "mech-b"});
  ASSERT_EQ(atlas.specimens().size(), 2u);
  ASSERT_EQ(atlas.grids().size(), 2u);

  obs::CoverageMap cell;
  cell.hit(obs::Site::kAppStarted);
  cell.hit_inject(seeds[1].trigger);
  atlas.fold_cell(1, 1, cell, /*trials=*/3, /*observed=*/3, /*survived=*/2);

  EXPECT_EQ(atlas.trials(), 3u);
  EXPECT_EQ(atlas.totals().count(obs::Site::kAppStarted), 1u);
  EXPECT_EQ(atlas.specimens()[1].trials, 3u);
  EXPECT_EQ(atlas.specimens()[1].probes.count(obs::Site::kAppStarted), 1u);
  EXPECT_EQ(atlas.specimens()[0].trials, 0u);
  const auto trigger = static_cast<std::size_t>(seeds[1].trigger);
  EXPECT_EQ(atlas.grids()[1].observed[trigger], 3u);
  EXPECT_EQ(atlas.grids()[1].survived[trigger], 2u);
  EXPECT_EQ(atlas.grids()[0].observed[trigger], 0u);
}

// --- blind spots -----------------------------------------------------------

TEST(CoverageAtlas, BlindSpotsListsEveryUnhitProbe) {
  obs::CoverageAtlas atlas;
  atlas.begin_study({}, {});
  // A synthetic registry where exactly one structural site and one trigger
  // were ever exercised.
  obs::CoverageMap map;
  map.hit(obs::Site::kEnvFdDenied);
  map.hit_inject(core::Trigger::kRaceCondition);
  atlas.fold_cell(0, 0, map, 1, 1, 1);

  const auto blind = atlas.blind_spots();
  EXPECT_EQ(blind.size(), obs::CoverageAtlas::probe_universe() - 2);
  EXPECT_EQ(std::find(blind.begin(), blind.end(), "env/fd_denied"),
            blind.end());
  EXPECT_NE(std::find(blind.begin(), blind.end(), "env/proc_hung"),
            blind.end());
  // The deliberately unreachable site stays on the list until someone hits
  // it.
  const std::string race = obs::inject_site_name(core::Trigger::kRaceCondition);
  EXPECT_EQ(std::find(blind.begin(), blind.end(), race), blind.end());
}

TEST(CoverageAtlas, FullMatrixLeavesNoStructuralEnvBlindSpotsUnexpected) {
  const auto seeds = corpus::all_seeds();
  const auto mechanisms = harness::standard_mechanisms();
  obs::CoverageAtlas atlas;
  harness::TrialConfig config;
  config.threads = 0;
  (void)harness::run_matrix(seeds, mechanisms, config, 3, nullptr, nullptr,
                            &atlas);
#if FAULTSTUDY_COVERAGE
  // Every trigger recipe in the corpus must arm at least once: the inject
  // plane covers every taxonomy cell the corpus names.
  const std::size_t inject_hits = atlas.cells_covered();
  std::vector<bool> named(core::kNumTriggers, false);
  std::size_t distinct = 0;
  for (const auto& seed : seeds) {
    const auto t = static_cast<std::size_t>(seed.trigger);
    if (!named[t]) {
      named[t] = true;
      ++distinct;
    }
  }
  EXPECT_EQ(inject_hits, distinct);
  // Core protocol probes can never be blind after a full matrix.
  EXPECT_GT(atlas.totals().count(obs::Site::kAppStarted), 0u);
  EXPECT_GT(atlas.totals().count(obs::Site::kRecAttach), 0u);
  EXPECT_GT(atlas.totals().count(obs::Site::kTrialSurvived), 0u);
#else
  EXPECT_EQ(atlas.probes_hit(), 0u);
#endif
}

// --- baseline round-trip and drift ----------------------------------------

class BaselineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    seeds_ = small_corpus(12);
    mechanisms_ = small_roster(2);
    harness::TrialConfig config;
    config.threads = 1;
    matrix_ = harness::run_matrix(seeds_, mechanisms_, config, 2, nullptr,
                                  nullptr, &atlas_);
    telemetry::MetricsRegistry registry;
    registry.add(registry.counter("study/example"), 7, 0);
    snapshot_ = obs::build_snapshot(seeds_, matrix_, atlas_,
                                    registry.snapshot(), 99, 2);
  }

  std::vector<corpus::SeedFault> seeds_;
  std::vector<harness::NamedMechanism> mechanisms_;
  harness::MatrixResult matrix_;
  obs::CoverageAtlas atlas_;
  obs::StudySnapshot snapshot_;
};

TEST_F(BaselineTest, RoundTripIsLossless) {
  const std::string text = obs::to_json(snapshot_);
  const auto parsed = obs::parse_snapshot(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  EXPECT_TRUE(parsed.value() == snapshot_);
  // Canonical writer: serializing the parse reproduces the bytes.
  EXPECT_EQ(obs::to_json(parsed.value()), text);
  const auto drift = obs::diff(snapshot_, parsed.value());
  EXPECT_TRUE(drift.empty()) << obs::render_text(drift);
}

TEST_F(BaselineTest, ParseRejectsGarbageAndWrongSchema) {
  EXPECT_FALSE(obs::parse_snapshot("not json").ok());
  EXPECT_FALSE(obs::parse_snapshot("{}").ok());
  EXPECT_FALSE(
      obs::parse_snapshot("{\"schema\": \"something-else/9\"}").ok());
}

TEST_F(BaselineTest, LostCoverageIsFatalDrift) {
  obs::StudySnapshot baseline = snapshot_;
  obs::StudySnapshot perturbed = snapshot_;
  bool diverged = false;
  for (std::size_t i = 0; i < baseline.probes.size(); ++i) {
    if (baseline.probes[i].hits > 0) {
      perturbed.probes[i].hits = 0;
      diverged = true;
      break;
    }
  }
  if (!diverged) {
    // Probes compiled out: every row is zero-hit, so grant the baseline a
    // hit instead — the same drift, coverage the candidate lost.
    ASSERT_FALSE(baseline.probes.empty());
    baseline.probes[0].hits = 7;
    diverged = true;
  }
  ASSERT_TRUE(diverged);
  // Candidate lost coverage the baseline had -> fatal.
  const auto drift = obs::diff(baseline, perturbed);
  EXPECT_TRUE(drift.regressed()) << obs::render_text(drift);
}

TEST_F(BaselineTest, NewCoverageIsANoteNotARegression) {
  obs::StudySnapshot improved = snapshot_;
  bool raised = false;
  for (auto& probe : improved.probes) {
    if (probe.hits == 0) {
      probe.hits = 5;
      raised = true;
      break;
    }
  }
  ASSERT_TRUE(raised);
  const auto drift = obs::diff(snapshot_, improved);
  EXPECT_FALSE(drift.empty());
  EXPECT_FALSE(drift.regressed()) << obs::render_text(drift);
}

TEST_F(BaselineTest, SurvivalRateShiftBeyondToleranceIsFatal) {
  obs::StudySnapshot perturbed = snapshot_;
  ASSERT_FALSE(perturbed.matrix.empty());
  // Flip one mechanism's EI survival hard enough to clear any band.
  auto& row = perturbed.matrix[0];
  row.total[0] = 10;
  row.survived[0] = 0;
  auto& base_row = snapshot_.matrix[0];
  base_row.total[0] = 10;
  base_row.survived[0] = 10;
  const auto drift = obs::diff(snapshot_, perturbed);
  EXPECT_TRUE(drift.regressed()) << obs::render_text(drift);
}

TEST_F(BaselineTest, CounterDeltaIsANote) {
  obs::StudySnapshot perturbed = snapshot_;
  ASSERT_FALSE(perturbed.counters.empty());
  perturbed.counters[0].value += 1;
  const auto drift = obs::diff(snapshot_, perturbed);
  EXPECT_FALSE(drift.empty());
  EXPECT_FALSE(drift.regressed()) << obs::render_text(drift);
}

TEST_F(BaselineTest, RenderTextPutsFatalFirst) {
  obs::DriftReport report;
  report.findings.push_back({false, "minor thing"});
  report.findings.push_back({true, "major thing"});
  const std::string text = obs::render_text(report);
  const auto fatal_at = text.find("major thing");
  const auto note_at = text.find("minor thing");
  ASSERT_NE(fatal_at, std::string::npos);
  ASSERT_NE(note_at, std::string::npos);
  EXPECT_LT(fatal_at, note_at);
}

// --- exports ---------------------------------------------------------------

TEST_F(BaselineTest, AtlasJsonAndHeatmapAreWellFormed) {
  const std::string json_text = obs::to_json(atlas_);
  const auto parsed = util::json::parse(json_text);
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  EXPECT_EQ(parsed.value().string_or("schema", ""), "faultstudy-atlas/1");

  const std::string html = obs::render_heatmap_html(atlas_);
  EXPECT_NE(html.find("<!DOCTYPE html>"), std::string::npos);
  EXPECT_NE(html.find(mechanisms_[0].name), std::string::npos);
  // Self-contained: no external asset references.
  EXPECT_EQ(html.find("http://"), std::string::npos);
  EXPECT_EQ(html.find("https://"), std::string::npos);
}

TEST_F(BaselineTest, GaugesExportThroughTelemetryRegistry) {
  telemetry::MetricsRegistry registry;
  obs::export_gauges(atlas_, registry);
  const auto snap = registry.snapshot();
  bool found_probes = false, found_universe = false;
  for (const auto& g : snap.gauges) {
    if (g.name == "coverage/probes_hit") {
      found_probes = true;
      EXPECT_EQ(static_cast<std::size_t>(g.value), atlas_.probes_hit());
    }
    if (g.name == "coverage/probe_universe") {
      found_universe = true;
      EXPECT_EQ(static_cast<std::size_t>(g.value),
                obs::CoverageAtlas::probe_universe());
    }
  }
  EXPECT_TRUE(found_probes);
  EXPECT_TRUE(found_universe);
}

// --- the JSON reader the baseline layer depends on -------------------------

TEST(UtilJson, ParsesNestedDocuments) {
  const auto parsed = util::json::parse(
      "{\"a\": [1, 2.5, -3], \"b\": {\"c\": \"x\\n\\\"y\\\"\"}, "
      "\"t\": true, \"n\": null}");
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  const auto& doc = parsed.value();
  const auto* a = doc.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->array.size(), 3u);
  EXPECT_TRUE(a->array[0].is_integer);
  EXPECT_EQ(a->array[0].integer, 1);
  EXPECT_FALSE(a->array[1].is_integer);
  EXPECT_DOUBLE_EQ(a->array[1].number, 2.5);
  EXPECT_EQ(a->array[2].integer, -3);
  const auto* b = doc.find("b");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->string_or("c", ""), "x\n\"y\"");
  EXPECT_TRUE(doc.find("t")->boolean);
  EXPECT_TRUE(doc.find("n")->is_null());
}

TEST(UtilJson, RejectsMalformedDocuments) {
  EXPECT_FALSE(util::json::parse("").ok());
  EXPECT_FALSE(util::json::parse("{").ok());
  EXPECT_FALSE(util::json::parse("{\"a\": }").ok());
  EXPECT_FALSE(util::json::parse("[1, 2,]").ok());
  EXPECT_FALSE(util::json::parse("{} trailing").ok());
  EXPECT_FALSE(util::json::parse("\"unterminated").ok());
}

TEST(UtilJson, EscapeRoundTripsThroughParse) {
  const std::string raw = "line\nbreak \"quoted\" back\\slash\ttab";
  const std::string doc = "{\"s\": \"" + util::json::escape(raw) + "\"}";
  const auto parsed = util::json::parse(doc);
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  EXPECT_EQ(parsed.value().string_or("s", ""), raw);
}

}  // namespace
}  // namespace faultstudy
