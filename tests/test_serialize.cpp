// Round-trip tests for corpus serialization (tracker records, mbox), and
// the property that a serialized synthetic corpus drives the pipeline to
// the same study set after a round trip.
#include <gtest/gtest.h>

#include "corpus/serialize.hpp"
#include "corpus/synth.hpp"
#include "mining/pipeline.hpp"

namespace faultstudy::corpus {
namespace {

BugReport sample_report() {
  BugReport r;
  r.app = core::AppId::kApache;
  r.component = "core";
  r.version = "1.3.0";
  r.track = VersionTrack::kProduction;
  r.severity = Severity::kCritical;
  r.kind = ReportKind::kRuntimeFailure;
  r.date = Date{512};
  r.release_ordinal = 2;
  r.fixed = true;
  r.fault_id = "apache-ei-01";
  r.truth_class = core::FaultClass::kEnvironmentIndependent;
  r.text.title = "dies with a segfault when the submitted URL is very long";
  r.text.how_to_repeat = "Submit a very long URL.";
  r.text.developer_comments = "Overflow in the hash calculation.";
  r.text.body = "Observed on production.\nSecond line of the body.";
  return r;
}

TEST(TrackerSerialize, RoundTripsAllFields) {
  BugTracker tracker(core::AppId::kApache);
  tracker.add(sample_report());

  const auto text = tracker_to_text(tracker);
  const auto parsed = tracker_from_text(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  const auto& t = parsed.value();
  ASSERT_EQ(t.size(), 1u);
  const auto& r = t.reports()[0];
  const auto expected = sample_report();
  EXPECT_EQ(r.app, expected.app);
  EXPECT_EQ(r.component, expected.component);
  EXPECT_EQ(r.version, expected.version);
  EXPECT_EQ(r.track, expected.track);
  EXPECT_EQ(r.severity, expected.severity);
  EXPECT_EQ(r.kind, expected.kind);
  EXPECT_EQ(r.date.days, expected.date.days);
  EXPECT_EQ(r.release_ordinal, expected.release_ordinal);
  EXPECT_EQ(r.fixed, expected.fixed);
  EXPECT_EQ(r.fault_id, expected.fault_id);
  EXPECT_EQ(r.truth_class, expected.truth_class);
  EXPECT_EQ(r.text.title, expected.text.title);
  EXPECT_EQ(r.text.how_to_repeat, expected.text.how_to_repeat);
  EXPECT_EQ(r.text.developer_comments, expected.text.developer_comments);
  EXPECT_EQ(r.text.body, expected.text.body);
}

TEST(TrackerSerialize, BodyContainingHeaderMarkerEscaped) {
  BugTracker tracker(core::AppId::kGnome);
  auto r = sample_report();
  r.app = core::AppId::kGnome;
  r.text.body = "quoting a record:\n== Bug 99 ==\nshould stay in the body";
  tracker.add(std::move(r));

  const auto parsed = tracker_from_text(tracker_to_text(tracker));
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  ASSERT_EQ(parsed.value().size(), 1u);
  EXPECT_NE(parsed.value().reports()[0].text.body.find("== Bug 99 =="),
            std::string::npos);
}

TEST(TrackerSerialize, RejectsMixedApps) {
  BugTracker a(core::AppId::kApache);
  a.add(sample_report());
  auto text = tracker_to_text(a);
  auto r2 = sample_report();
  r2.id = 77;
  r2.app = core::AppId::kGnome;
  BugTracker b(core::AppId::kGnome);
  b.add(std::move(r2));
  text += tracker_to_text(b);
  EXPECT_FALSE(tracker_from_text(text).ok());
}

TEST(TrackerSerialize, RejectsGarbage) {
  EXPECT_FALSE(tracker_from_text("not a tracker dump").ok());
  EXPECT_FALSE(tracker_from_text("").ok());
}

TEST(TrackerSerialize, FullSyntheticCorpusRoundTrip) {
  SynthConfig config;
  config.apache_total = 400;  // keep the test quick
  const auto original = make_apache_tracker(config);
  const auto parsed = tracker_from_text(tracker_to_text(original));
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  EXPECT_EQ(parsed.value().size(), original.size());
  EXPECT_EQ(parsed.value().distinct_faults(), original.distinct_faults());

  // The round-tripped corpus must drive the pipeline to the same result.
  const auto before = mining::run_tracker_pipeline(original);
  const auto after = mining::run_tracker_pipeline(parsed.value());
  EXPECT_EQ(before.bugs.size(), after.bugs.size());
}

TEST(MboxSerialize, RoundTripsMessages) {
  MailingList list;
  MailMessage m;
  m.sender = "alice@example.net";
  m.subject = "server crash";
  m.date = Date{100};
  m.body = "Description: crash\nHow-To-Repeat: run it\nVersion: 3.22.20";
  m.fault_id = "mysql-ei-03";
  m.truth_class = core::FaultClass::kEnvironmentIndependent;
  const auto root = list.add(m);
  MailMessage reply;
  reply.sender = "monty@mysql.example";
  reply.subject = "Re: server crash";
  reply.thread_id = root;
  reply.body = "missing check for empty tables";
  list.add(reply);

  const auto parsed = mailinglist_from_mbox(mailinglist_to_mbox(list));
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  const auto& l = parsed.value();
  ASSERT_EQ(l.size(), 2u);
  EXPECT_EQ(l.messages()[0].sender, "alice@example.net");
  EXPECT_EQ(l.messages()[0].body, m.body);
  EXPECT_EQ(l.messages()[0].fault_id, "mysql-ei-03");
  EXPECT_EQ(l.messages()[1].thread_id, root);
  EXPECT_EQ(l.thread(root).size(), 2u);
}

TEST(MboxSerialize, FromLineInBodyEscaped) {
  MailingList list;
  MailMessage m;
  m.sender = "bob@example";
  m.subject = "quoting";
  m.body = "He wrote:\nFrom the beginning it was broken.";
  list.add(m);
  const auto parsed = mailinglist_from_mbox(mailinglist_to_mbox(list));
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  ASSERT_EQ(parsed.value().size(), 1u);
  EXPECT_EQ(parsed.value().messages()[0].body, m.body);
}

TEST(MboxSerialize, RejectsGarbage) {
  EXPECT_FALSE(mailinglist_from_mbox("no separator here").ok());
}

TEST(MboxSerialize, PipelineEquivalenceAfterRoundTrip) {
  SynthConfig config;
  config.mysql_messages = 600;
  const auto original = make_mysql_list(config);
  const auto parsed = mailinglist_from_mbox(mailinglist_to_mbox(original));
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  ASSERT_EQ(parsed.value().size(), original.size());

  const auto before = mining::run_mailinglist_pipeline(original);
  const auto after = mining::run_mailinglist_pipeline(parsed.value());
  EXPECT_EQ(before.bugs.size(), after.bugs.size());
}

}  // namespace
}  // namespace faultstudy::corpus
