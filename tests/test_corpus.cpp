// Tests for the curated seed data and the synthetic corpus generators:
// the seed invariants that make Tables 1-3 and Figures 1-3 reproducible,
// and the statistical properties of the generated corpora.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/aggregate.hpp"
#include "corpus/seeds.hpp"
#include "corpus/synth.hpp"
#include "mining/filters.hpp"

namespace faultstudy::corpus {
namespace {

using core::FaultClass;

core::ClassCounts seed_counts(const std::vector<SeedFault>& seeds) {
  core::ClassCounts c;
  for (const auto& s : seeds) ++c[seed_class(s)];
  return c;
}

// ------------------------------------------------------------ seed data

TEST(Seeds, ApacheMatchesTable1) {
  const auto seeds = apache_seeds();
  EXPECT_EQ(seeds.size(), 50u);
  const auto c = seed_counts(seeds);
  EXPECT_EQ(c[FaultClass::kEnvironmentIndependent], 36u);
  EXPECT_EQ(c[FaultClass::kEnvDependentNonTransient], 7u);
  EXPECT_EQ(c[FaultClass::kEnvDependentTransient], 7u);
}

TEST(Seeds, GnomeMatchesTable2) {
  const auto seeds = gnome_seeds();
  EXPECT_EQ(seeds.size(), 45u);
  const auto c = seed_counts(seeds);
  EXPECT_EQ(c[FaultClass::kEnvironmentIndependent], 39u);
  EXPECT_EQ(c[FaultClass::kEnvDependentNonTransient], 3u);
  EXPECT_EQ(c[FaultClass::kEnvDependentTransient], 3u);
}

TEST(Seeds, MysqlMatchesTable3) {
  const auto seeds = mysql_seeds();
  EXPECT_EQ(seeds.size(), 44u);
  const auto c = seed_counts(seeds);
  EXPECT_EQ(c[FaultClass::kEnvironmentIndependent], 38u);
  EXPECT_EQ(c[FaultClass::kEnvDependentNonTransient], 4u);
  EXPECT_EQ(c[FaultClass::kEnvDependentTransient], 2u);
}

TEST(Seeds, AllSeedsIs139) {
  EXPECT_EQ(all_seeds().size(), 139u);
}

TEST(Seeds, FaultIdsUnique) {
  std::set<std::string> ids;
  for (const auto& s : all_seeds()) {
    EXPECT_TRUE(ids.insert(s.fault_id).second) << "duplicate " << s.fault_id;
  }
}

TEST(Seeds, EverySeedHasText) {
  for (const auto& s : all_seeds()) {
    EXPECT_FALSE(s.title.empty()) << s.fault_id;
    EXPECT_FALSE(s.how_to_repeat.empty()) << s.fault_id;
    EXPECT_FALSE(s.developer_comment.empty()) << s.fault_id;
    EXPECT_FALSE(s.component.empty()) << s.fault_id;
  }
}

TEST(Seeds, BucketsWithinRange) {
  for (const auto& s : apache_seeds()) {
    EXPECT_GE(s.bucket, 0);
    EXPECT_LT(s.bucket, static_cast<int>(apache_releases().size()));
  }
  for (const auto& s : gnome_seeds()) {
    EXPECT_GE(s.bucket, 0);
    EXPECT_LT(s.bucket, static_cast<int>(gnome_periods().size()));
  }
  for (const auto& s : mysql_seeds()) {
    EXPECT_GE(s.bucket, 0);
    EXPECT_LT(s.bucket, static_cast<int>(mysql_releases().size()));
  }
}

TEST(Seeds, ApacheBucketTotalsGrow) {
  // Figure 1 property: totals per release are non-decreasing.
  std::map<int, int> totals;
  for (const auto& s : apache_seeds()) ++totals[s.bucket];
  int prev = 0;
  for (const auto& [bucket, n] : totals) {
    (void)bucket;
    EXPECT_GE(n, prev);
    prev = n;
  }
}

TEST(Seeds, MysqlLastReleaseSmall) {
  // Figure 3 property: the newest release has fewer faults than its
  // predecessor.
  std::map<int, int> totals;
  for (const auto& s : mysql_seeds()) ++totals[s.bucket];
  const int last = totals.rbegin()->second;
  const int prev = std::next(totals.rbegin())->second;
  EXPECT_LT(last, prev);
}

TEST(Seeds, GnomeHasDip) {
  std::map<int, int> totals;
  for (const auto& s : gnome_seeds()) ++totals[s.bucket];
  bool dip = false;
  for (auto it = std::next(totals.begin());
       std::next(it) != totals.end(); ++it) {
    if (it->second < std::prev(it)->second &&
        it->second < std::next(it)->second) {
      dip = true;
    }
  }
  EXPECT_TRUE(dip);
}

TEST(Seeds, ToFaultPreservesFields) {
  const auto seeds = apache_seeds();
  const auto fault = to_fault(seeds.front());
  EXPECT_EQ(fault.id, seeds.front().fault_id);
  EXPECT_EQ(fault.app, core::AppId::kApache);
  EXPECT_EQ(fault.trigger, seeds.front().trigger);
  EXPECT_EQ(fault.fault_class, seed_class(seeds.front()));
  EXPECT_EQ(fault.bucket, seeds.front().bucket);
}

TEST(Seeds, EnvDependentSeedsMatchPaperBullets) {
  // Spot-check the transcription: the paper's env-dependent bullets.
  const auto seeds = all_seeds();
  const auto find = [&](const std::string& id) -> const SeedFault& {
    for (const auto& s : seeds) {
      if (s.fault_id == id) return s;
    }
    ADD_FAILURE() << "missing " << id;
    static SeedFault dummy;
    return dummy;
  };
  EXPECT_EQ(find("apache-edn-07").trigger, core::Trigger::kHardwareRemoval);
  EXPECT_EQ(find("apache-edt-07").trigger, core::Trigger::kEntropyShortage);
  EXPECT_EQ(find("gnome-edn-01").trigger, core::Trigger::kHostnameChanged);
  EXPECT_EQ(find("gnome-edt-02").trigger, core::Trigger::kRaceCondition);
  EXPECT_EQ(find("mysql-edn-02").trigger, core::Trigger::kReverseDnsMissing);
  EXPECT_EQ(find("mysql-edt-01").trigger, core::Trigger::kRaceCondition);
}

// --------------------------------------------------------------- dates

TEST(Dates, MonthLabelAndIndex) {
  EXPECT_EQ(Date{0}.month_label(), "1998-01");
  EXPECT_EQ(Date{40}.month_label(), "1998-02");
  EXPECT_EQ(Date{370}.month_index(), 12);
}

TEST(Dates, GnomeBucketRoundTrip) {
  for (int bucket = 0; bucket < 8; ++bucket) {
    for (int off : {0, 30, 60}) {
      EXPECT_EQ(gnome_bucket_of_date(gnome_date_in_bucket(bucket, off)),
                bucket);
    }
  }
}

// ------------------------------------------------------------ generators

TEST(Synth, ApacheTrackerVolumeAndTruth) {
  const auto tracker = make_apache_tracker();
  EXPECT_EQ(tracker.size(), 5220u);
  EXPECT_EQ(tracker.distinct_faults(), 50u);
  EXPECT_EQ(tracker.app(), core::AppId::kApache);
}

TEST(Synth, GnomeTrackerVolumeAndTruth) {
  const auto tracker = make_gnome_tracker();
  EXPECT_EQ(tracker.size(), 500u);
  EXPECT_EQ(tracker.distinct_faults(), 45u);
}

TEST(Synth, MysqlListVolumeAndTruth) {
  const auto list = make_mysql_list();
  EXPECT_EQ(list.size(), 44000u);
  EXPECT_EQ(list.distinct_faults(), 44u);
}

TEST(Synth, DeterministicInSeed) {
  const auto a = make_apache_tracker();
  const auto b = make_apache_tracker();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.reports()[i].text.title, b.reports()[i].text.title);
    EXPECT_EQ(a.reports()[i].severity, b.reports()[i].severity);
  }
}

TEST(Synth, DifferentSeedsDiffer) {
  SynthConfig other;
  other.seed = 777;
  const auto a = make_apache_tracker();
  const auto b = make_apache_tracker(other);
  ASSERT_EQ(a.size(), b.size());
  std::size_t differing = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a.reports()[i].text.title != b.reports()[i].text.title) ++differing;
  }
  EXPECT_GT(differing, 0u);
}

TEST(Synth, NoiseNeverPassesStudyCriteria) {
  // Every report that passes the study filters must belong to a planted
  // fault — otherwise the unique-bug count would drift.
  const auto tracker = make_apache_tracker();
  for (const auto& r : tracker.reports()) {
    if (mining::passes_study_criteria(r)) {
      EXPECT_FALSE(r.fault_id.empty()) << r.text.title;
    }
  }
}

TEST(Synth, EverySeedHasPrimaryPassingFilters) {
  const auto tracker = make_gnome_tracker();
  std::set<std::string> passing;
  for (const auto& r : tracker.reports()) {
    if (mining::passes_study_criteria(r)) passing.insert(r.fault_id);
  }
  EXPECT_EQ(passing.size(), 45u);
}

TEST(Synth, DuplicatesShareGroundTruth) {
  const auto tracker = make_apache_tracker();
  std::map<std::string, std::set<int>> classes_per_fault;
  for (const auto& r : tracker.reports()) {
    if (!r.fault_id.empty() && r.truth_class.has_value()) {
      classes_per_fault[r.fault_id].insert(static_cast<int>(*r.truth_class));
    }
  }
  for (const auto& [id, classes] : classes_per_fault) {
    EXPECT_EQ(classes.size(), 1u) << id;
  }
}

TEST(Synth, MysqlThreadsContainDeveloperDiagnosis) {
  const auto list = make_mysql_list();
  std::set<std::uint64_t> threads_with_dev;
  std::set<std::uint64_t> fault_threads;
  for (const auto& m : list.messages()) {
    if (!m.fault_id.empty()) {
      fault_threads.insert(m.thread_id);
      if (m.sender == "monty@mysql.example") {
        threads_with_dev.insert(m.thread_id);
      }
    }
  }
  EXPECT_EQ(threads_with_dev.size(), fault_threads.size());
}

TEST(Synth, MysqlChatterHasNoFaultId) {
  const auto list = make_mysql_list();
  std::size_t chatter = 0;
  for (const auto& m : list.messages()) {
    if (m.fault_id.empty()) ++chatter;
  }
  // The overwhelming majority of the 44k messages is ordinary discussion.
  EXPECT_GT(chatter, 40000u);
}

TEST(Synth, ConfigVolumesRespected) {
  SynthConfig config;
  config.apache_total = 300;
  config.gnome_total = 120;
  config.mysql_messages = 800;
  EXPECT_EQ(make_apache_tracker(config).size(), 300u);
  EXPECT_EQ(make_gnome_tracker(config).size(), 120u);
  EXPECT_EQ(make_mysql_list(config).size(), 800u);
}

// ------------------------------------------------------------ containers

TEST(Tracker, AddAssignsIds) {
  BugTracker tracker(core::AppId::kApache);
  BugReport r;
  const auto id1 = tracker.add(r);
  const auto id2 = tracker.add(r);
  EXPECT_NE(id1, id2);
  EXPECT_NE(tracker.find(id1), nullptr);
  EXPECT_EQ(tracker.find(99999), nullptr);
}

TEST(Tracker, SelectFilters) {
  BugTracker tracker(core::AppId::kApache);
  BugReport r;
  r.severity = Severity::kCritical;
  tracker.add(r);
  r.severity = Severity::kMinor;
  tracker.add(r);
  const auto selected = tracker.select([](const BugReport& b) {
    return b.severity == Severity::kCritical;
  });
  EXPECT_EQ(selected.size(), 1u);
}

TEST(MailingListContainer, ThreadsGroupMessages) {
  MailingList list;
  MailMessage root;
  root.subject = "bug";
  const auto root_id = list.add(root);
  MailMessage reply;
  reply.thread_id = root_id;
  list.add(reply);
  MailMessage other;
  list.add(other);

  EXPECT_EQ(list.thread(root_id).size(), 2u);
  EXPECT_EQ(list.size(), 3u);
}

}  // namespace
}  // namespace faultstudy::corpus
