// Tests for the statistics substrate: Wilson intervals, bootstrap,
// chi-square, and the figure-shape series checks.
#include <gtest/gtest.h>

#include <cmath>

#include "stats/chisq.hpp"
#include "stats/ci.hpp"
#include "stats/series.hpp"

namespace faultstudy::stats {
namespace {

// ---------------------------------------------------------------- wilson

TEST(Wilson, KnownValue) {
  // 12/139 at 95%: classic Wilson interval.
  const auto iv = wilson(12, 139);
  EXPECT_NEAR(iv.point, 12.0 / 139, 1e-12);
  EXPECT_NEAR(iv.lower, 0.050, 0.005);
  EXPECT_NEAR(iv.upper, 0.145, 0.005);
}

TEST(Wilson, ZeroTrials) {
  const auto iv = wilson(0, 0);
  EXPECT_EQ(iv.point, 0.0);
  EXPECT_EQ(iv.lower, 0.0);
  EXPECT_EQ(iv.upper, 0.0);
}

TEST(Wilson, ZeroSuccessesHasPositiveUpper) {
  const auto iv = wilson(0, 20);
  EXPECT_EQ(iv.point, 0.0);
  EXPECT_EQ(iv.lower, 0.0);
  EXPECT_GT(iv.upper, 0.0);
  EXPECT_LT(iv.upper, 0.25);
}

TEST(Wilson, AllSuccessesHasUpperOne) {
  const auto iv = wilson(20, 20);
  EXPECT_EQ(iv.upper, 1.0);
  EXPECT_LT(iv.lower, 1.0);
  EXPECT_GT(iv.lower, 0.75);
}

TEST(Wilson, IntervalShrinksWithN) {
  const auto small = wilson(5, 10);
  const auto large = wilson(500, 1000);
  EXPECT_LT(large.upper - large.lower, small.upper - small.lower);
}

TEST(Wilson, BoundsOrdered) {
  for (std::size_t k : {0u, 1u, 7u, 50u}) {
    const auto iv = wilson(k, 50);
    EXPECT_LE(iv.lower, iv.point);
    EXPECT_LE(iv.point, iv.upper);
  }
}

// -------------------------------------------------------------- bootstrap

TEST(Bootstrap, MeanPointEstimate) {
  const double values[] = {1.0, 2.0, 3.0, 4.0};
  const auto iv = bootstrap_mean(values);
  EXPECT_DOUBLE_EQ(iv.point, 2.5);
  EXPECT_LE(iv.lower, 2.5);
  EXPECT_GE(iv.upper, 2.5);
}

TEST(Bootstrap, SingleValueDegenerate) {
  const double values[] = {7.0};
  const auto iv = bootstrap_mean(values);
  EXPECT_DOUBLE_EQ(iv.lower, 7.0);
  EXPECT_DOUBLE_EQ(iv.upper, 7.0);
}

TEST(Bootstrap, EmptyInput) {
  const auto iv = bootstrap_mean({});
  EXPECT_DOUBLE_EQ(iv.point, 0.0);
}

TEST(Bootstrap, DeterministicInSeed) {
  const double values[] = {1, 5, 2, 8, 3, 9, 4};
  const auto a = bootstrap_mean(values, 500, 0.95, 11);
  const auto b = bootstrap_mean(values, 500, 0.95, 11);
  EXPECT_DOUBLE_EQ(a.lower, b.lower);
  EXPECT_DOUBLE_EQ(a.upper, b.upper);
}

TEST(Bootstrap, WiderAtHigherConfidence) {
  const double values[] = {1, 5, 2, 8, 3, 9, 4, 6, 2, 7};
  const auto c90 = bootstrap_mean(values, 2000, 0.90);
  const auto c99 = bootstrap_mean(values, 2000, 0.99);
  EXPECT_GE(c99.upper - c99.lower, c90.upper - c90.lower);
}

TEST(Bootstrap, CustomStatistic) {
  const double values[] = {1, 2, 3, 100};
  const auto iv = bootstrap_statistic(
      values,
      [](std::span<const double> v) {
        double mx = v[0];
        for (double x : v) mx = std::max(mx, x);
        return mx;
      });
  EXPECT_DOUBLE_EQ(iv.point, 100.0);
  EXPECT_LE(iv.upper, 100.0);
}

// -------------------------------------------------------------- chisquare

TEST(ChiSquare, TailKnownQuantiles) {
  // X2(1) upper tail at 3.841 is 0.05; X2(2) at 5.991 is 0.05.
  EXPECT_NEAR(chi_square_tail(3.841, 1), 0.05, 0.001);
  EXPECT_NEAR(chi_square_tail(5.991, 2), 0.05, 0.001);
  EXPECT_NEAR(chi_square_tail(0.0, 3), 1.0, 1e-9);
  EXPECT_LT(chi_square_tail(100.0, 1), 1e-6);
}

TEST(ChiSquare, HomogeneousTableHighP) {
  const auto r = chi_square({{50, 10}, {50, 10}, {50, 10}});
  EXPECT_NEAR(r.statistic, 0.0, 1e-9);
  EXPECT_NEAR(r.p_value, 1.0, 1e-9);
  EXPECT_TRUE(r.reliable);
  EXPECT_EQ(r.dof, 2u);
}

TEST(ChiSquare, HeterogeneousTableLowP) {
  const auto r = chi_square({{90, 10}, {10, 90}});
  EXPECT_GT(r.statistic, 50.0);
  EXPECT_LT(r.p_value, 1e-6);
}

TEST(ChiSquare, DropsEmptyRowsAndColumns) {
  const auto r = chi_square({{10, 0, 10}, {0, 0, 0}, {12, 0, 8}});
  EXPECT_EQ(r.dof, 1u);  // 2x2 after drops
}

TEST(ChiSquare, DegenerateTableUnreliable) {
  const auto r = chi_square({{1, 0}});
  EXPECT_FALSE(r.reliable);
}

TEST(ChiSquare, SmallExpectedCountsFlagged) {
  const auto r = chi_square({{1, 1}, {1, 2}});
  EXPECT_FALSE(r.reliable);
}

// ----------------------------------------------------------------- series

std::vector<SeriesPoint> series_from(std::vector<std::array<std::size_t, 3>> rows) {
  std::vector<SeriesPoint> out;
  int b = 0;
  for (const auto& row : rows) {
    SeriesPoint p;
    p.bucket = b++;
    p.label = "b" + std::to_string(p.bucket);
    p.counts.counts = row;
    out.push_back(p);
  }
  return out;
}

TEST(Series, BuildSeriesIncludesEmptyBuckets) {
  std::vector<core::Fault> faults(1);
  faults[0].app = core::AppId::kApache;
  faults[0].bucket = 2;
  const auto series = build_series(faults, core::AppId::kApache,
                                   {"r0", "r1", "r2", "r3"});
  ASSERT_EQ(series.size(), 4u);
  EXPECT_EQ(series[0].counts.total(), 0u);
  EXPECT_EQ(series[2].counts.total(), 1u);
  EXPECT_EQ(series[1].label, "r1");
}

TEST(Series, GrowthFraction) {
  const auto grow = series_from({{1, 0, 0}, {2, 0, 0}, {3, 0, 0}});
  EXPECT_DOUBLE_EQ(growth_fraction(grow, false), 1.0);
  const auto shrink = series_from({{3, 0, 0}, {2, 0, 0}, {1, 0, 0}});
  EXPECT_DOUBLE_EQ(growth_fraction(shrink, false), 0.0);
  const auto tail_drop = series_from({{1, 0, 0}, {2, 0, 0}, {0, 0, 0}});
  EXPECT_DOUBLE_EQ(growth_fraction(tail_drop, true), 1.0);
  EXPECT_DOUBLE_EQ(growth_fraction(tail_drop, false), 0.5);
}

TEST(Series, EiShareDeviation) {
  // Bucket shares 0.5 and 1.0, overall 0.75: max deviation 0.25.
  const auto s = series_from({{2, 2, 0}, {4, 0, 0}});
  EXPECT_NEAR(max_ei_share_deviation(s, 1), 0.25, 1e-9);
  // Tiny buckets skipped.
  const auto noisy = series_from({{2, 2, 0}, {4, 0, 0}, {0, 1, 0}});
  EXPECT_NEAR(max_ei_share_deviation(noisy, 3),
              max_ei_share_deviation(s, 3), 0.2);
}

TEST(Series, InteriorDip) {
  EXPECT_TRUE(has_interior_dip(
      series_from({{3, 0, 0}, {1, 0, 0}, {4, 0, 0}})));
  EXPECT_FALSE(has_interior_dip(
      series_from({{1, 0, 0}, {2, 0, 0}, {3, 0, 0}})));
  EXPECT_FALSE(has_interior_dip(series_from({{1, 0, 0}, {2, 0, 0}})));
}

}  // namespace
}  // namespace faultstudy::stats
