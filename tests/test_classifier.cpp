// Tests for the rule-based and naive-Bayes classifiers, including a
// parameterized sweep asserting every curated seed fault classifies to its
// ground-truth class from its report text alone.
#include <gtest/gtest.h>

#include <cmath>

#include "core/bayes.hpp"
#include "core/rule_classifier.hpp"
#include "corpus/seeds.hpp"

namespace faultstudy::core {
namespace {

ReportText text_of(std::string title, std::string htr = {},
                   std::string comments = {}) {
  ReportText t;
  t.title = std::move(title);
  t.how_to_repeat = std::move(htr);
  t.developer_comments = std::move(comments);
  return t;
}

// -------------------------------------------------------- rule classifier

TEST(RuleClassifier, PaperApacheLongUrl) {
  const RuleClassifier c;
  const auto result = c.classify(text_of(
      "dies with a segfault when the submitted URL is very long",
      "Submit a very long URL from the browser.",
      "Result of an overflow in the hash calculation."));
  EXPECT_EQ(result.trigger, Trigger::kBoundaryInput);
  EXPECT_EQ(result.fault_class, FaultClass::kEnvironmentIndependent);
  EXPECT_GT(result.confidence, 0.0);
  EXPECT_FALSE(result.evidence.empty());
}

TEST(RuleClassifier, PaperRaceCondition) {
  const RuleClassifier c;
  const auto result = c.classify(text_of(
      "panel dies occasionally",
      "Remove an applet at the exact moment it requests an action.",
      "Race condition between the request and the removal."));
  EXPECT_EQ(result.trigger, Trigger::kRaceCondition);
  EXPECT_EQ(result.fault_class, FaultClass::kEnvDependentTransient);
}

TEST(RuleClassifier, PaperFullFileSystem) {
  const RuleClassifier c;
  const auto result = c.classify(
      text_of("all operations fail",
              "Fill the file system; operations fail with no space left on "
              "device."));
  EXPECT_EQ(result.trigger, Trigger::kFullFileSystem);
  EXPECT_EQ(result.fault_class, FaultClass::kEnvDependentNonTransient);
}

TEST(RuleClassifier, NoCueDefaultsToEnvironmentIndependent) {
  const RuleClassifier c;
  const auto result =
      c.classify(text_of("application emits wrong totals in summary view"));
  EXPECT_EQ(result.fault_class, FaultClass::kEnvironmentIndependent);
  EXPECT_EQ(result.confidence, 0.0);
  EXPECT_TRUE(result.evidence.empty());
}

TEST(RuleClassifier, EmptyReport) {
  const RuleClassifier c;
  const auto result = c.classify(ReportText{});
  EXPECT_EQ(result.fault_class, FaultClass::kEnvironmentIndependent);
}

TEST(RuleClassifier, HowToRepeatOutweighsBody) {
  // The same cue in how-to-repeat gets double the weight of body.
  const RuleClassifier c;
  ReportText t;
  t.body = "maybe a race condition?";  // EDT cue, weight x1.0 in body
  t.how_to_repeat =
      "the file system is full; the failure repeats until space is freed";
  const auto result = c.classify(t);  // EDN cue, weight x2.0 in how-to-repeat
  EXPECT_EQ(result.trigger, Trigger::kFullFileSystem);
}

TEST(RuleClassifier, EvidenceRecordsFieldAndWeight) {
  const RuleClassifier c;
  const auto result = c.classify(
      text_of("out of file descriptors", "", ""));
  ASSERT_FALSE(result.evidence.empty());
  EXPECT_EQ(result.evidence.front().field, "title");
  EXPECT_GT(result.evidence.front().weight, 0.0);
}

TEST(RuleClassifier, ConfidenceIsWinnerShare) {
  const RuleClassifier c;
  const auto pure = c.classify(text_of("race condition between two threads"));
  EXPECT_NEAR(pure.confidence, 1.0, 1e-9);  // only EDT cues fire
}

TEST(RuleClassifier, CaseInsensitive) {
  const RuleClassifier c;
  const auto result = c.classify(text_of("RACE CONDITION IN SCHEDULER"));
  EXPECT_EQ(result.trigger, Trigger::kRaceCondition);
}

TEST(RuleClassifier, LexiconIsSubstantial) {
  EXPECT_GE(RuleClassifier::lexicon_size(), 100u);
}

TEST(RuleClassifier, PolicyOverrideChangesClassNotTrigger) {
  RulePolicy policy;
  policy.reclassify(Trigger::kFullFileSystem,
                    FaultClass::kEnvDependentTransient);
  const RuleClassifier c(policy);
  const auto result =
      c.classify(text_of("disk full", "file system is full"));
  EXPECT_EQ(result.trigger, Trigger::kFullFileSystem);
  EXPECT_EQ(result.fault_class, FaultClass::kEnvDependentTransient);
}

// ------------------------- parameterized sweep over all 139 seed faults

class SeedClassification
    : public ::testing::TestWithParam<corpus::SeedFault> {};

TEST_P(SeedClassification, RuleClassifierRecoversGroundTruthClass) {
  const corpus::SeedFault& seed = GetParam();
  const RuleClassifier classifier;

  ReportText text;
  text.title = seed.title;
  text.how_to_repeat = seed.how_to_repeat;
  text.developer_comments = seed.developer_comment;

  const auto result = classifier.classify(text);
  EXPECT_EQ(result.fault_class, corpus::seed_class(seed))
      << seed.fault_id << ": predicted trigger "
      << to_string(result.trigger);
}

std::string seed_name(const ::testing::TestParamInfo<corpus::SeedFault>& info) {
  std::string name = info.param.fault_id;
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(AllSeeds, SeedClassification,
                         ::testing::ValuesIn(corpus::all_seeds()), seed_name);

// ----------------------------------------------------------------- bayes

TEST(Bayes, UntrainedDefaultsToEI) {
  const BayesClassifier c;
  EXPECT_EQ(c.classify(text_of("anything")),
            FaultClass::kEnvironmentIndependent);
}

TEST(Bayes, LearnsSimpleSeparation) {
  BayesClassifier c;
  for (int i = 0; i < 5; ++i) {
    c.train(text_of("race condition between threads"),
            FaultClass::kEnvDependentTransient);
    c.train(text_of("buffer overflow on long input"),
            FaultClass::kEnvironmentIndependent);
  }
  EXPECT_EQ(c.classify(text_of("another race condition")),
            FaultClass::kEnvDependentTransient);
  EXPECT_EQ(c.classify(text_of("overflow with long input string")),
            FaultClass::kEnvironmentIndependent);
}

TEST(Bayes, FeaturesIncludeBigrams) {
  const auto f = BayesClassifier::features(text_of("race condition found"));
  bool has_bigram = false;
  for (const auto& feat : f) {
    if (feat.find('_') != std::string::npos &&
        feat.find("race") != std::string::npos) {
      has_bigram = true;
    }
  }
  EXPECT_TRUE(has_bigram);
}

TEST(Bayes, OovTokensIgnored) {
  BayesClassifier c;
  c.train(text_of("race condition"), FaultClass::kEnvDependentTransient);
  c.train(text_of("race condition"), FaultClass::kEnvDependentTransient);
  c.train(text_of("overflow bug"), FaultClass::kEnvironmentIndependent);
  // A report of entirely unseen words falls back to the prior (EDT has
  // more training docs here).
  EXPECT_EQ(c.classify(text_of("zzz qqq www")),
            FaultClass::kEnvDependentTransient);
}

TEST(Bayes, LogPosteriorFinite) {
  BayesClassifier c;
  c.train(text_of("crash on startup"), FaultClass::kEnvironmentIndependent);
  const auto lp = c.log_posterior(text_of("crash on startup"));
  for (double v : lp) {
    EXPECT_TRUE(std::isfinite(v));
  }
}

TEST(Bayes, TrainedOnSeedsRecoversMostClasses) {
  // Train on Apache + GNOME seeds, test on MySQL seeds: in-domain enough
  // that accuracy must beat the majority-class baseline.
  BayesClassifier c;
  for (const auto& s : corpus::apache_seeds()) {
    c.train(text_of(s.title, s.how_to_repeat, s.developer_comment),
            corpus::seed_class(s));
  }
  for (const auto& s : corpus::gnome_seeds()) {
    c.train(text_of(s.title, s.how_to_repeat, s.developer_comment),
            corpus::seed_class(s));
  }
  std::size_t correct = 0;
  const auto mysql = corpus::mysql_seeds();
  for (const auto& s : mysql) {
    if (c.classify(text_of(s.title, s.how_to_repeat, s.developer_comment)) ==
        corpus::seed_class(s)) {
      ++correct;
    }
  }
  EXPECT_GT(static_cast<double>(correct) / mysql.size(), 0.85);
}

}  // namespace
}  // namespace faultstudy::core
