// Robustness property tests: with no fault armed, the engines must never
// crash — arbitrary inputs may be rejected (kError / kBadRequest / ignored)
// but a kCrash from an un-armed engine would be a real bug in the
// reproduction itself. The generators are seeded, so failures replay.
#include <gtest/gtest.h>

#include <string>

#include "apps/http/request.hpp"
#include "apps/sql/engine.hpp"
#include "apps/sql/lexer.hpp"
#include "apps/ui/toolkit.hpp"
#include "util/rng.hpp"

namespace faultstudy {
namespace {

/// Random printable garbage, occasionally sprinkled with dialect tokens so
/// the fuzz reaches past the first parse error.
std::string random_text(util::Rng& rng, std::size_t max_len) {
  static const char* kFragments[] = {
      "SELECT", "FROM",  "WHERE",  "ORDER BY", "COUNT(*)", "INSERT",
      "VALUES", "UPDATE", "SET",   "DELETE",   "LOCK TABLES", "FLUSH",
      "orders", "id",    "state",  "*",        "(",        ")",
      ",",      ";",     "=",      "<",        ">",        "'txt'",
      "123",    "-5",    "GET",    "/index",   "?q=x",     "HTTP/1.0",
  };
  std::string out;
  const auto len = 1 + rng.below(max_len);
  while (out.size() < len) {
    if (rng.chance(0.6)) {
      out += kFragments[rng.below(std::size(kFragments))];
      out += ' ';
    } else {
      out += static_cast<char>(rng.between(32, 126));
    }
  }
  return out;
}

TEST(FuzzSql, LexerNeverThrowsOrHangs) {
  util::Rng rng(101);
  for (int i = 0; i < 3000; ++i) {
    const auto text = random_text(rng, 120);
    const auto tokens = apps::sql::lex(text);
    if (tokens.ok()) {
      EXPECT_FALSE(tokens.value().empty());  // always at least kEnd
    }
  }
}

TEST(FuzzSql, ParserNeverThrows) {
  util::Rng rng(102);
  for (int i = 0; i < 3000; ++i) {
    (void)apps::sql::parse(random_text(rng, 120));
  }
}

TEST(FuzzSql, UnarmedEngineNeverCrashes) {
  util::Rng rng(103);
  apps::sql::Engine engine;
  engine.execute("CREATE TABLE orders (id INT, state TEXT)");
  engine.execute("INSERT INTO orders VALUES (1, 'open')");
  for (int i = 0; i < 3000; ++i) {
    const auto text = random_text(rng, 120);
    const auto result = engine.execute(text);
    EXPECT_NE(result.status, apps::sql::ExecStatus::kCrash)
        << "un-armed engine crashed on: " << text;
  }
}

TEST(FuzzSql, ArmedEngineCrashesOnlyOnItsOwnBugPath) {
  // With only the COUNT-empty bug armed, arbitrary garbage still never
  // crashes — only a COUNT over an empty result can.
  util::Rng rng(104);
  apps::sql::SqlFaultFlags flags;
  flags.count_on_empty_crash = true;
  apps::sql::Engine engine(flags);
  engine.execute("CREATE TABLE orders (id INT, state TEXT)");
  engine.execute("INSERT INTO orders VALUES (1, 'open')");
  for (int i = 0; i < 2000; ++i) {
    const auto text = random_text(rng, 120);
    const auto result = engine.execute(text);
    if (result.status == apps::sql::ExecStatus::kCrash) {
      EXPECT_NE(result.message.find("COUNT"), std::string::npos) << text;
    }
  }
}

TEST(FuzzHttp, UnarmedParserNeverCrashes) {
  util::Rng rng(105);
  for (int i = 0; i < 3000; ++i) {
    const auto out = apps::http::parse_request(random_text(rng, 400), {});
    EXPECT_NE(out.status, apps::http::ParseStatus::kCrash);
  }
}

TEST(FuzzHttp, ArmedParserCrashesOnlyOnLongUris) {
  util::Rng rng(106);
  apps::http::HttpFaultFlags flags;
  flags.long_url_hash_overflow = true;
  for (int i = 0; i < 3000; ++i) {
    const auto text = random_text(rng, 600);
    const auto out = apps::http::parse_request(text, flags);
    if (out.status == apps::http::ParseStatus::kCrash) {
      EXPECT_GT(out.request.uri.size(), apps::http::kUriBufferSize);
    }
  }
}

TEST(FuzzUi, UnarmedToolkitNeverCrashes) {
  util::Rng rng(107);
  for (int i = 0; i < 500; ++i) {
    apps::ui::PagerSettings settings(rng.chance(0.5), {});
    const auto tab = random_text(rng, 12);
    EXPECT_NE(settings.click_tab(tab).status, apps::ui::UiStatus::kCrash);

    apps::ui::Calendar calendar(static_cast<int>(rng.between(1900, 2100)), {});
    for (int k = 0; k < 5; ++k) {
      const auto r = rng.chance(0.5) ? calendar.click_prev_year()
                                     : calendar.click_next_year();
      EXPECT_NE(r.status, apps::ui::UiStatus::kCrash);
    }
    EXPECT_NE(apps::ui::ArchiveOpener({}).open(rng.next_u64() >> 20).status,
              apps::ui::UiStatus::kCrash);
  }
}

}  // namespace
}  // namespace faultstudy
