// Tests for the fault taxonomy, the classification rules, aggregation, and
// classifier evaluation utilities.
#include <gtest/gtest.h>

#include "core/aggregate.hpp"
#include "core/eval.hpp"
#include "core/rules.hpp"
#include "core/taxonomy.hpp"

namespace faultstudy::core {
namespace {

// -------------------------------------------------------------- taxonomy

TEST(Taxonomy, FaultClassRoundTrip) {
  for (FaultClass c : kAllFaultClasses) {
    const auto code = to_code(c);
    const auto back = fault_class_from_code(code);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, c);
  }
  EXPECT_FALSE(fault_class_from_code("XX").has_value());
}

TEST(Taxonomy, ClassNamesMatchPaper) {
  EXPECT_EQ(to_string(FaultClass::kEnvironmentIndependent),
            "environment-independent");
  EXPECT_EQ(to_string(FaultClass::kEnvDependentNonTransient),
            "environment-dependent-nontransient");
  EXPECT_EQ(to_string(FaultClass::kEnvDependentTransient),
            "environment-dependent-transient");
}

TEST(Taxonomy, EveryTriggerHasNameAndDescription) {
  for (Trigger t : all_triggers()) {
    EXPECT_NE(to_string(t), "?") << static_cast<int>(t);
    EXPECT_NE(describe(t), "?") << static_cast<int>(t);
    EXPECT_FALSE(to_string(t).empty());
  }
}

TEST(Taxonomy, TriggerCountMatchesEnum) {
  EXPECT_EQ(all_triggers().size(), kNumTriggers);
  EXPECT_EQ(kNumTriggers, 28u);
}

TEST(Taxonomy, SymptomNames) {
  EXPECT_EQ(to_string(Symptom::kCrash), "crash");
  EXPECT_EQ(to_string(Symptom::kHang), "hang");
}

// ----------------------------------------------------------------- rules

TEST(Rules, ClassSplitMatchesTaxonomySections) {
  // The first 8 triggers are EI, the next 11 EDN, the final 9 EDT — the
  // same grouping as Section 5's bullet lists.
  std::size_t ei = 0, edn = 0, edt = 0;
  for (Trigger t : all_triggers()) {
    switch (fault_class_of(t)) {
      case FaultClass::kEnvironmentIndependent:
        ++ei;
        break;
      case FaultClass::kEnvDependentNonTransient:
        ++edn;
        break;
      case FaultClass::kEnvDependentTransient:
        ++edt;
        break;
    }
  }
  EXPECT_EQ(ei, 8u);
  EXPECT_EQ(edn, 11u);
  EXPECT_EQ(edt, 9u);
}

TEST(Rules, RetryChangeConsistentWithClass) {
  // Exactly the transient triggers have conditions that change on retry.
  for (Trigger t : all_triggers()) {
    const Ruling& r = default_ruling(t);
    EXPECT_EQ(r.condition_changes_on_retry,
              r.fault_class == FaultClass::kEnvDependentTransient)
        << to_string(t);
    EXPECT_FALSE(r.rationale.empty()) << to_string(t);
  }
}

TEST(Rules, PaperExamples) {
  EXPECT_EQ(fault_class_of(Trigger::kBoundaryInput),
            FaultClass::kEnvironmentIndependent);
  EXPECT_EQ(fault_class_of(Trigger::kFullFileSystem),
            FaultClass::kEnvDependentNonTransient);
  EXPECT_EQ(fault_class_of(Trigger::kRaceCondition),
            FaultClass::kEnvDependentTransient);
  EXPECT_EQ(fault_class_of(Trigger::kProcessTableFull),
            FaultClass::kEnvDependentTransient);
  EXPECT_EQ(fault_class_of(Trigger::kFdExhaustion),
            FaultClass::kEnvDependentNonTransient);
}

TEST(RulePolicy, DefaultMatchesPaper) {
  const RulePolicy policy;
  EXPECT_EQ(policy.override_count(), 0u);
  for (Trigger t : all_triggers()) {
    EXPECT_EQ(policy.classify(t), fault_class_of(t)) << to_string(t);
  }
}

TEST(RulePolicy, ReclassifyAndRevert) {
  RulePolicy policy;
  policy.reclassify(Trigger::kFullFileSystem,
                    FaultClass::kEnvDependentTransient);
  EXPECT_EQ(policy.classify(Trigger::kFullFileSystem),
            FaultClass::kEnvDependentTransient);
  EXPECT_EQ(policy.override_count(), 1u);

  policy.reclassify(Trigger::kFullFileSystem,
                    FaultClass::kEnvDependentNonTransient);
  EXPECT_EQ(policy.override_count(), 0u);
}

TEST(RulePolicy, RepeatedOverrideCountsOnce) {
  RulePolicy policy;
  policy.reclassify(Trigger::kDnsSlow, FaultClass::kEnvDependentNonTransient);
  policy.reclassify(Trigger::kDnsSlow, FaultClass::kEnvironmentIndependent);
  EXPECT_EQ(policy.override_count(), 1u);
}

// ------------------------------------------------------------- aggregate

Fault make_fault(AppId app, FaultClass c, int bucket) {
  Fault f;
  f.app = app;
  f.fault_class = c;
  f.bucket = bucket;
  return f;
}

TEST(Aggregate, TallyCounts) {
  std::vector<Fault> faults = {
      make_fault(AppId::kApache, FaultClass::kEnvironmentIndependent, 0),
      make_fault(AppId::kApache, FaultClass::kEnvDependentTransient, 0),
      make_fault(AppId::kGnome, FaultClass::kEnvironmentIndependent, 1),
  };
  const auto counts = tally(faults);
  EXPECT_EQ(counts[FaultClass::kEnvironmentIndependent], 2u);
  EXPECT_EQ(counts[FaultClass::kEnvDependentTransient], 1u);
  EXPECT_EQ(counts.total(), 3u);
  EXPECT_NEAR(counts.fraction(FaultClass::kEnvironmentIndependent), 2.0 / 3,
              1e-9);
}

TEST(Aggregate, TallyAppFilters) {
  std::vector<Fault> faults = {
      make_fault(AppId::kApache, FaultClass::kEnvironmentIndependent, 0),
      make_fault(AppId::kGnome, FaultClass::kEnvironmentIndependent, 0),
  };
  EXPECT_EQ(tally_app(faults, AppId::kApache).total(), 1u);
  EXPECT_EQ(tally_app(faults, AppId::kMysql).total(), 0u);
}

TEST(Aggregate, TallyByBucketSorted) {
  std::vector<Fault> faults = {
      make_fault(AppId::kApache, FaultClass::kEnvironmentIndependent, 2),
      make_fault(AppId::kApache, FaultClass::kEnvironmentIndependent, 0),
      make_fault(AppId::kApache, FaultClass::kEnvDependentTransient, 2),
  };
  const auto buckets = tally_by_bucket(faults, AppId::kApache);
  ASSERT_EQ(buckets.size(), 2u);
  EXPECT_EQ(buckets.begin()->first, 0);
  EXPECT_EQ(buckets.rbegin()->first, 2);
  EXPECT_EQ(buckets.at(2).total(), 2u);
}

TEST(Aggregate, EmptyCountsFractionZero) {
  ClassCounts c;
  EXPECT_EQ(c.total(), 0u);
  EXPECT_DOUBLE_EQ(c.fraction(FaultClass::kEnvironmentIndependent), 0.0);
}

TEST(Aggregate, SummaryMinMaxSpans) {
  std::vector<Fault> faults;
  // Apache: 3 EI of 4 (75%); GNOME: 1 EI of 1 (100%).
  for (int i = 0; i < 3; ++i) {
    faults.push_back(
        make_fault(AppId::kApache, FaultClass::kEnvironmentIndependent, 0));
  }
  faults.push_back(
      make_fault(AppId::kApache, FaultClass::kEnvDependentTransient, 0));
  faults.push_back(
      make_fault(AppId::kGnome, FaultClass::kEnvironmentIndependent, 0));

  const auto s = summarize(faults);
  EXPECT_EQ(s.total_faults, 5u);
  EXPECT_NEAR(s.min_ei_fraction, 0.75, 1e-9);
  EXPECT_NEAR(s.max_ei_fraction, 1.0, 1e-9);
  EXPECT_NEAR(s.max_edt_fraction, 0.25, 1e-9);
}

// ------------------------------------------------------------------ eval

TEST(ConfusionMatrix, PerfectAgreement) {
  ConfusionMatrix cm;
  for (FaultClass c : kAllFaultClasses) {
    cm.add(c, c);
    cm.add(c, c);
  }
  EXPECT_DOUBLE_EQ(cm.accuracy(), 1.0);
  EXPECT_DOUBLE_EQ(cm.kappa(), 1.0);
  for (FaultClass c : kAllFaultClasses) {
    EXPECT_DOUBLE_EQ(cm.precision(c), 1.0);
    EXPECT_DOUBLE_EQ(cm.recall(c), 1.0);
  }
}

TEST(ConfusionMatrix, ChanceLevelKappaNearZero) {
  // Predictions independent of truth: kappa ~ 0.
  ConfusionMatrix cm;
  for (int i = 0; i < 30; ++i) {
    for (FaultClass truth : kAllFaultClasses) {
      for (FaultClass pred : kAllFaultClasses) {
        cm.add(truth, pred);
      }
    }
  }
  EXPECT_NEAR(cm.kappa(), 0.0, 1e-9);
}

TEST(ConfusionMatrix, EmptyMatrix) {
  ConfusionMatrix cm;
  EXPECT_EQ(cm.total(), 0u);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 0.0);
  EXPECT_DOUBLE_EQ(cm.kappa(), 1.0);
}

TEST(ConfusionMatrix, DegenerateSingleClass) {
  // All truth and all predictions in one class: observed agreement 1,
  // expected agreement 1 -> kappa defined as 1.
  ConfusionMatrix cm;
  for (int i = 0; i < 10; ++i) {
    cm.add(FaultClass::kEnvironmentIndependent,
           FaultClass::kEnvironmentIndependent);
  }
  EXPECT_DOUBLE_EQ(cm.kappa(), 1.0);
}

TEST(ConfusionMatrix, PrecisionRecallAsymmetric) {
  ConfusionMatrix cm;
  // Truth EI predicted EDT twice; truth EDT predicted EDT once.
  cm.add(FaultClass::kEnvironmentIndependent,
         FaultClass::kEnvDependentTransient);
  cm.add(FaultClass::kEnvironmentIndependent,
         FaultClass::kEnvDependentTransient);
  cm.add(FaultClass::kEnvDependentTransient,
         FaultClass::kEnvDependentTransient);
  EXPECT_NEAR(cm.precision(FaultClass::kEnvDependentTransient), 1.0 / 3, 1e-9);
  EXPECT_DOUBLE_EQ(cm.recall(FaultClass::kEnvDependentTransient), 1.0);
  EXPECT_DOUBLE_EQ(cm.recall(FaultClass::kEnvironmentIndependent), 0.0);
  EXPECT_DOUBLE_EQ(cm.precision(FaultClass::kEnvironmentIndependent), 0.0);
}

TEST(ConfusionMatrix, ToStringContainsCounts) {
  ConfusionMatrix cm;
  cm.add(FaultClass::kEnvironmentIndependent,
         FaultClass::kEnvironmentIndependent);
  const auto s = cm.to_string();
  EXPECT_NE(s.find("accuracy"), std::string::npos);
  EXPECT_NE(s.find("kappa"), std::string::npos);
}

}  // namespace
}  // namespace faultstudy::core
