// Tests for the deterministic parallel executor: thread-pool mechanics
// (empty ranges, tiny ranges, exception propagation) and the determinism
// contract — run_matrix, run_oracle_crosscheck, and the mining pipeline
// must produce bit-identical results for every thread count.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "corpus/seeds.hpp"
#include "corpus/synth.hpp"
#include "harness/experiment.hpp"
#include "harness/parallel.hpp"
#include "mining/pipeline.hpp"
#include "util/thread_pool.hpp"

namespace faultstudy {
namespace {

// --- pool mechanics -------------------------------------------------------

TEST(ThreadPool, EmptyRangeCallsNothing) {
  util::ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.for_index(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, RangeSmallerThanWorkersRunsEachIndexOnce) {
  util::ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  pool.for_index(3, [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, LargeRangeCoversEveryIndexExactlyOnce) {
  util::ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(10000);
  pool.for_index(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) ASSERT_EQ(h.load(), 1);
}

TEST(ThreadPool, ReusableAcrossSweeps) {
  util::ThreadPool pool(3);
  for (int round = 0; round < 50; ++round) {
    std::atomic<std::size_t> sum{0};
    pool.for_index(97, [&](std::size_t i) { sum += i; });
    EXPECT_EQ(sum.load(), 97u * 96u / 2);
  }
}

TEST(ThreadPool, ExceptionPropagatesToCaller) {
  util::ThreadPool pool(4);
  EXPECT_THROW(pool.for_index(100,
                              [](std::size_t i) {
                                if (i == 37) {
                                  throw std::runtime_error("lane failure");
                                }
                              }),
               std::runtime_error);
}

TEST(ThreadPool, ExceptionOnSerialPathPropagates) {
  util::ThreadPool pool(1);
  EXPECT_THROW(pool.for_index(
                   5, [](std::size_t) { throw std::logic_error("serial"); }),
               std::logic_error);
}

TEST(ThreadPool, SizeCountsCallingThread) {
  EXPECT_EQ(util::ThreadPool(1).size(), 1u);
  EXPECT_EQ(util::ThreadPool(4).size(), 4u);
}

TEST(ParallelMap, SlotsMatchSerialForAnyThreadCount) {
  const auto square = [](std::size_t i) { return i * i; };
  const auto serial = util::parallel_map<std::size_t>(257, 1, square);
  const auto wide = util::parallel_map<std::size_t>(257, 4, square);
  EXPECT_EQ(serial, wide);
  for (std::size_t i = 0; i < serial.size(); ++i) EXPECT_EQ(serial[i], i * i);
}

TEST(ResolveThreads, ExplicitRequestWins) {
  EXPECT_EQ(util::resolve_threads(3), 3u);
  EXPECT_GE(util::resolve_threads(0), 1u);
}

TEST(ResolveThreads, EnvOverrideAppliesWhenAuto) {
  ASSERT_EQ(setenv("FAULTSTUDY_THREADS", "5", 1), 0);
  EXPECT_EQ(util::resolve_threads(0), 5u);
  EXPECT_EQ(util::resolve_threads(2), 2u);  // explicit still wins
  ASSERT_EQ(setenv("FAULTSTUDY_THREADS", "not-a-number", 1), 0);
  EXPECT_GE(util::resolve_threads(0), 1u);  // garbage falls back to hardware
  unsetenv("FAULTSTUDY_THREADS");
}

// --- determinism: harness sweeps ------------------------------------------

void expect_same_matrix(const harness::MatrixResult& a,
                        const harness::MatrixResult& b) {
  EXPECT_EQ(a.fault_count, b.fault_count);
  ASSERT_EQ(a.reports.size(), b.reports.size());
  for (std::size_t i = 0; i < a.reports.size(); ++i) {
    const auto& ra = a.reports[i];
    const auto& rb = b.reports[i];
    EXPECT_EQ(ra.mechanism, rb.mechanism);
    EXPECT_EQ(ra.generic, rb.generic);
    EXPECT_EQ(ra.survived, rb.survived) << ra.mechanism;
    EXPECT_EQ(ra.total, rb.total) << ra.mechanism;
    EXPECT_EQ(ra.vacuous, rb.vacuous) << ra.mechanism;
    EXPECT_EQ(ra.state_losses, rb.state_losses) << ra.mechanism;
  }
}

TEST(DeterministicMatrix, FourLanesMatchSerialAcrossSeeds) {
  // A corpus slice keeps the sweep fast; the full-corpus identity is
  // exercised by bench/perf_parallel and the TSan CI job.
  auto seeds = corpus::apache_seeds();
  seeds.resize(16);

  for (const std::uint64_t base_seed : {99ULL, 7ULL, 4242ULL}) {
    harness::TrialConfig serial;
    serial.seed = base_seed;
    serial.threads = 1;
    harness::TrialConfig wide = serial;
    wide.threads = 4;

    const auto a =
        harness::run_matrix(seeds, harness::standard_mechanisms(), serial);
    const auto b =
        harness::run_matrix(seeds, harness::standard_mechanisms(), wide);
    expect_same_matrix(a, b);
  }
}

TEST(DeterministicOracle, FourLanesMatchSerialRowForRow) {
  auto seeds = corpus::all_seeds();
  seeds.resize(24);

  harness::TrialConfig serial;
  serial.threads = 1;
  harness::TrialConfig wide = serial;
  wide.threads = 4;

  const auto a = harness::run_oracle_crosscheck(seeds, serial);
  const auto b = harness::run_oracle_crosscheck(seeds, wide);

  ASSERT_EQ(a.rows.size(), b.rows.size());
  for (std::size_t i = 0; i < a.rows.size(); ++i) {
    EXPECT_EQ(a.rows[i].fault_id, b.rows[i].fault_id);
    EXPECT_EQ(a.rows[i].race_labeled, b.rows[i].race_labeled);
    EXPECT_EQ(a.rows[i].detector_fired, b.rows[i].detector_fired)
        << a.rows[i].fault_id;
    EXPECT_EQ(a.rows[i].race_reports, b.rows[i].race_reports)
        << a.rows[i].fault_id;
    EXPECT_EQ(a.rows[i].invariant_violations, b.rows[i].invariant_violations)
        << a.rows[i].fault_id;
  }
  EXPECT_EQ(a.race_fired, b.race_fired);
  EXPECT_EQ(a.race_silent, b.race_silent);
  EXPECT_EQ(a.ei_fired, b.ei_fired);
  EXPECT_EQ(a.ei_silent, b.ei_silent);
  EXPECT_EQ(a.edn_fired, b.edn_fired);
  EXPECT_EQ(a.edn_silent, b.edn_silent);
  EXPECT_EQ(a.other_edt_fired, b.other_edt_fired);
  EXPECT_EQ(a.other_edt_silent, b.other_edt_silent);
  EXPECT_DOUBLE_EQ(a.agreement(), b.agreement());
}

// --- determinism: mining pipeline -----------------------------------------

void expect_same_bugs(const mining::PipelineResult& a,
                      const mining::PipelineResult& b) {
  EXPECT_EQ(a.clusters, b.clusters);
  ASSERT_EQ(a.bugs.size(), b.bugs.size());
  for (std::size_t i = 0; i < a.bugs.size(); ++i) {
    EXPECT_EQ(a.bugs[i].title, b.bugs[i].title);
    EXPECT_EQ(a.bugs[i].report_ids, b.bugs[i].report_ids);
    EXPECT_EQ(a.bugs[i].bucket, b.bugs[i].bucket);
    EXPECT_EQ(a.bugs[i].classification.trigger,
              b.bugs[i].classification.trigger);
    EXPECT_EQ(a.bugs[i].classification.fault_class,
              b.bugs[i].classification.fault_class);
    EXPECT_EQ(a.bugs[i].truth_fault_id, b.bugs[i].truth_fault_id);
  }
}

TEST(DeterministicMining, TrackerPipelineMatchesSerial) {
  const auto tracker = corpus::make_apache_tracker();
  mining::PipelineOptions serial;
  serial.threads = 1;
  mining::PipelineOptions wide;
  wide.threads = 4;
  expect_same_bugs(mining::run_tracker_pipeline(tracker, serial),
                   mining::run_tracker_pipeline(tracker, wide));
}

TEST(DeterministicMining, MailingListPipelineMatchesSerial) {
  const auto list = corpus::make_mysql_list();
  mining::PipelineOptions serial;
  serial.threads = 1;
  mining::PipelineOptions wide;
  wide.threads = 4;
  expect_same_bugs(mining::run_mailinglist_pipeline(list, serial),
                   mining::run_mailinglist_pipeline(list, wide));
}

}  // namespace
}  // namespace faultstudy
