// Telemetry overhead benchmarks and gates (google-benchmark).
//
// Before benchmarking, main() runs two gates on the full recovery matrix:
//
//   identity   an instrumented run_matrix must produce identical metric
//              snapshots and span traces for 1 and 4 lanes (the sim-domain
//              determinism contract);
//   overhead   the instrumented matrix must cost at most 5% more wall time
//              than the no-sink run (FAULTSTUDY_TELEMETRY_GATE overrides
//              the percentage; 0 skips the gate). The no-sink path is also
//              timed against itself as a noise floor for the disabled-path
//              claim: with no sink attached only a null check remains, and
//              a FAULTSTUDY_TELEMETRY=0 build removes even that.
//
// Benchmark rows:
//   BM_MatrixBare/T        recovery matrix, no telemetry sink
//   BM_MatrixTelemetry/T   recovery matrix, instrumented + folded
//   BM_RegistryCounterAdd  one sharded counter increment
//   BM_HistogramObserve    one fixed-bucket observation
//   BM_SpanOpenClose       one sim-domain RAII span
//   BM_NullSinkBranch      the disabled path: FS_TELEM on a null sink
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench_common.hpp"
#include "corpus/seeds.hpp"
#include "env/clock.hpp"
#include "harness/experiment.hpp"
#include "telemetry/counters.hpp"
#include "telemetry/export.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/span.hpp"
#include "telemetry/trial.hpp"

using namespace faultstudy;

namespace {

void BM_MatrixBare(benchmark::State& state) {
  const auto seeds = corpus::all_seeds();
  const auto mechanisms = harness::standard_mechanisms();
  harness::TrialConfig config;
  config.threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(harness::run_matrix(seeds, mechanisms, config));
  }
}
BENCHMARK(BM_MatrixBare)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_MatrixTelemetry(benchmark::State& state) {
  const auto seeds = corpus::all_seeds();
  const auto mechanisms = harness::standard_mechanisms();
  harness::TrialConfig config;
  config.threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    telemetry::StudyTelemetry telem;
    benchmark::DoNotOptimize(
        harness::run_matrix(seeds, mechanisms, config, 3, &telem));
    benchmark::DoNotOptimize(telem.metrics.snapshot());
  }
}
BENCHMARK(BM_MatrixTelemetry)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_RegistryCounterAdd(benchmark::State& state) {
  telemetry::MetricsRegistry registry(4);
  const auto id = registry.counter("bench/counter");
  for (auto _ : state) {
    registry.add(id, 1, 0);
  }
  benchmark::DoNotOptimize(registry.snapshot());
}
BENCHMARK(BM_RegistryCounterAdd);

void BM_HistogramObserve(benchmark::State& state) {
  telemetry::Histogram hist(telemetry::default_tick_bounds());
  std::int64_t value = 0;
  for (auto _ : state) {
    hist.observe(value++ & 0x3FFF);
  }
  benchmark::DoNotOptimize(hist.count());
}
BENCHMARK(BM_HistogramObserve);

void BM_SpanOpenClose(benchmark::State& state) {
  env::VirtualClock clock;
  telemetry::SpanTracer tracer;
  tracer.bind_sim(&clock);
  for (auto _ : state) {
    { telemetry::SpanScope scope(&tracer, "bench"); }
    if (tracer.spans().size() > (1u << 16)) tracer.clear();
  }
  benchmark::DoNotOptimize(tracer.spans().size());
}
BENCHMARK(BM_SpanOpenClose);

void BM_NullSinkBranch(benchmark::State& state) {
  telemetry::TrialCounters* sink = nullptr;
  benchmark::DoNotOptimize(sink);
  for (auto _ : state) {
    FS_TELEM(sink, resources.sched_draws++);
  }
}
BENCHMARK(BM_NullSinkBranch);

double median_matrix_millis(bool instrumented, int rounds) {
  const auto seeds = corpus::all_seeds();
  const auto mechanisms = harness::standard_mechanisms();
  harness::TrialConfig config;
  config.threads = 1;  // the serial path isolates per-trial overhead
  std::vector<double> times;
  times.reserve(static_cast<std::size_t>(rounds));
  for (int r = 0; r < rounds; ++r) {
    telemetry::StudyTelemetry telem;
    const auto start = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(harness::run_matrix(
        seeds, mechanisms, config, 3, instrumented ? &telem : nullptr));
    const auto stop = std::chrono::steady_clock::now();
    times.push_back(
        std::chrono::duration<double, std::milli>(stop - start).count());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

/// Full-corpus determinism gate: instrumented snapshots and Chrome traces
/// must be identical for 1 and 4 lanes.
bool telemetry_identity_ok() {
  const auto seeds = corpus::all_seeds();
  const auto mechanisms = harness::standard_mechanisms();
  const auto run = [&](std::size_t threads) {
    harness::TrialConfig config;
    config.threads = threads;
    auto telem = std::make_unique<telemetry::StudyTelemetry>();
    harness::run_matrix(seeds, mechanisms, config, 3, telem.get());
    return telem;
  };
  const auto serial = run(1);
  const auto wide = run(4);
  if (serial->metrics.snapshot() != wide->metrics.snapshot()) return false;
  if (serial->traces.size() != wide->traces.size()) return false;
  for (std::size_t i = 0; i < serial->traces.size(); ++i) {
    if (serial->traces[i].first != wide->traces[i].first) return false;
    if (serial->traces[i].second.spans() != wide->traces[i].second.spans()) {
      return false;
    }
  }
  return true;
}

double gate_percent() {
  if (const char* env = std::getenv("FAULTSTUDY_TELEMETRY_GATE")) {
    return std::strtod(env, nullptr);
  }
  return 5.0;
}

}  // namespace

int main(int argc, char** argv) {
  if (!telemetry_identity_ok()) {
    std::fprintf(stderr,
                 "FATAL: instrumented matrix differs between 1 and 4 lanes\n");
    return 1;
  }
  std::printf("telemetry identity check: OK (snapshots + traces, 1 vs 4 "
              "lanes)\n");

  const double gate = gate_percent();
  if (gate > 0.0) {
    constexpr int kRounds = 5;
    // Warm-up evens out first-touch allocation between the variants.
    (void)median_matrix_millis(false, 1);
    const double bare = median_matrix_millis(false, kRounds);
    const double bare_again = median_matrix_millis(false, kRounds);
    const double instrumented = median_matrix_millis(true, kRounds);
    const double overhead = (instrumented - bare) / bare * 100.0;
    const double noise = (bare_again - bare) / bare * 100.0;
    std::printf("telemetry overhead gate: bare %.1f ms, instrumented %.1f ms "
                "-> %+.2f%% (noise floor %+.2f%%, gate %.1f%%)\n",
                bare, instrumented, overhead, noise, gate);
    if (overhead > gate) {
      std::fprintf(stderr, "FATAL: telemetry overhead %+.2f%% exceeds %.1f%%\n",
                   overhead, gate);
      return 1;
    }
    bench::BenchJson json("telemetry");
    json.add("matrix_bare_median", bare, "ms");
    json.add("matrix_instrumented_median", instrumented, "ms");
    json.add("overhead", overhead, "percent");
    json.add("noise_floor", noise, "percent");
    json.add("gate", gate, "percent");
    if (!json.write()) return 1;
  }

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
