// Section 8's proposed future work, implemented: run every study fault
// against every recovery mechanism on the simulated applications and
// measure survival.
//
// Expected shape (the paper's thesis): truly generic, state-preserving
// mechanisms survive only the environment-dependent-transient class —
// 12/139 = 8.6% of faults, inside the paper's 5-14% per-application band —
// while surviving the rest requires application-specific knowledge.
#include <cstdio>

#include "corpus/seeds.hpp"
#include "harness/experiment.hpp"
#include "report/table.hpp"
#include "util/strings.hpp"

int main() {
  using namespace faultstudy;
  using core::FaultClass;

  const auto seeds = corpus::all_seeds();
  const auto mechanisms = harness::standard_mechanisms();
  const auto matrix = harness::run_matrix(seeds, mechanisms);

  std::printf("=== Recovery matrix: %zu faults x %zu mechanisms ===\n\n",
              matrix.fault_count, mechanisms.size());

  report::AsciiTable t({"mechanism", "generic", "EI", "EDN", "EDT",
                        "overall", "survival", "state losses"});
  for (const auto& r : matrix.reports) {
    const auto cell = [&](FaultClass c) {
      const auto i = static_cast<std::size_t>(c);
      return std::to_string(r.survived[i]) + "/" + std::to_string(r.total[i]);
    };
    t.add_row({r.mechanism, r.generic ? "yes" : "no",
               cell(FaultClass::kEnvironmentIndependent),
               cell(FaultClass::kEnvDependentNonTransient),
               cell(FaultClass::kEnvDependentTransient),
               std::to_string(r.survived_all()) + "/" +
                   std::to_string(r.total_all()),
               util::percent(static_cast<double>(r.survived_all()) /
                             static_cast<double>(r.total_all())),
               std::to_string(r.state_losses)});
  }
  std::fputs(t.to_string().c_str(), stdout);

  std::puts("\nper-application survival under process pairs "
            "(paper band: 5-14% transient per application):");
  report::AsciiTable pa({"application", "survived", "faults", "rate"});
  for (core::AppId app : core::kAllApps) {
    std::vector<corpus::SeedFault> subset;
    for (const auto& s : seeds) {
      if (s.app == app) subset.push_back(s);
    }
    const auto sub = harness::run_matrix(
        subset, {{"process-pairs", mechanisms[0].make}});
    const auto& r = sub.reports.front();
    pa.add_row({std::string(core::to_string(app)),
                std::to_string(r.survived_all()),
                std::to_string(r.total_all()),
                util::percent(static_cast<double>(r.survived_all()) /
                              static_cast<double>(r.total_all()))});
  }
  std::fputs(pa.to_string().c_str(), stdout);

  std::puts("\nreading:");
  std::puts("  - generic state-preserving mechanisms (process pairs, "
            "rollback, progressive) survive only the EDT class;");
  std::puts("  - a lossy cold restart also sheds leaks and re-reads cached "
            "environment facts, at the price of losing application state;");
  std::puts("  - application-specific recovery survives the deterministic "
            "majority, except conditions only an operator can clear.");
  return 0;
}
