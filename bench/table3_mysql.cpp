// Table 3: classification of 44 MySQL faults.
// Paper: 38 environment-independent, 4 EDN, 2 EDT.
//
// The MySQL study mined a mailing-list archive (~44,000 messages) with the
// keywords "crash", "segmentation", "race", "died"; this bench runs the
// same keyword methodology over the synthetic archive.
#include "bench_common.hpp"

int main() {
  using namespace faultstudy;

  std::puts("=== Table 3: Classification of faults for MySQL ===\n");
  const auto list = corpus::make_mysql_list();
  const auto result = mining::run_mailinglist_pipeline(list);

  bench::print_list_funnel(result, list.size());

  const auto counts = bench::counts_of(result);
  std::fputs(report::render_class_table(
                 counts,
                 "Table 3: Classification of faults for MySQL, mined from "
                 "the mailing-list archive by keyword search.")
                 .c_str(),
             stdout);

  std::puts("\npaper vs measured:");
  bench::print_comparison(counts, {38, 4, 2});
  return 0;
}
