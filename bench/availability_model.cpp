// Availability model: the paper's conclusion in operational terms.
//
// Feeds each mechanism's measured per-class survival (from the recovery
// matrix) and the study's fault-class mix into a steady-state availability
// model: how much uptime does each recovery strategy actually buy when
// 81% of faults are deterministic?
#include <cstdio>

#include "corpus/seeds.hpp"
#include "harness/experiment.hpp"
#include "report/table.hpp"
#include "stats/availability.hpp"
#include "util/strings.hpp"

using namespace faultstudy;

int main() {
  std::puts("=== Availability implied by the recovery matrix ===\n");
  std::puts("model: 100 ops/s; a masked failure pauses service 5 s; an "
            "unmasked one is a 1 h outage; one fault encounter per ten "
            "million ops, split by the study's class mix "
            "(81.3% / 10.1% / 8.6%).\n");

  const auto seeds = corpus::all_seeds();
  auto mechanisms = harness::standard_mechanisms();
  // A no-recovery baseline: nothing is masked.
  const auto matrix = harness::run_matrix(seeds, mechanisms);

  report::AsciiTable t({"mechanism", "availability", "nines",
                        "downtime/day", "outages/day", "MTBF (h)"});

  const auto add_row = [&](const std::string& name,
                           const stats::SurvivalProfile& profile) {
    const auto r = stats::estimate_availability(profile);
    t.add_row({name, util::fixed(r.availability * 100.0, 4) + "%",
               util::fixed(stats::nines(r.availability), 1),
               util::fixed(r.downtime_s_per_day, 0) + "s",
               util::fixed(r.outages_per_day, 2),
               util::fixed(r.mtbf_hours, 1)});
  };

  add_row("none (baseline)", stats::SurvivalProfile{});
  for (const auto& report : matrix.reports) {
    stats::SurvivalProfile profile;
    for (std::size_t c = 0; c < 3; ++c) {
      profile.survival[c] =
          report.total[c] == 0
              ? 0.0
              : static_cast<double>(report.survived[c]) /
                    static_cast<double>(report.total[c]);
    }
    add_row(report.mechanism, profile);
  }
  std::fputs(t.to_string().c_str(), stdout);

  // Sensitivity: how the generic-vs-specific gap responds to the operator
  // outage duration (the only parameter the recovery mechanism cannot
  // influence).
  std::puts("\nsensitivity to operator outage duration (availability %):");
  report::AsciiTable s({"outage", "none", "process-pairs", "app-specific"});
  stats::SurvivalProfile none{};
  stats::SurvivalProfile pairs;
  stats::SurvivalProfile specific;
  for (std::size_t c = 0; c < 3; ++c) {
    const auto& pr = matrix.reports[0];
    const auto& ar = matrix.reports[5];
    pairs.survival[c] = pr.total[c] ? static_cast<double>(pr.survived[c]) /
                                          static_cast<double>(pr.total[c])
                                    : 0.0;
    specific.survival[c] = ar.total[c]
                               ? static_cast<double>(ar.survived[c]) /
                                     static_cast<double>(ar.total[c])
                               : 0.0;
  }
  for (const double outage_min : {10.0, 30.0, 60.0, 240.0}) {
    stats::AvailabilityParams params;
    params.outage_s = outage_min * 60.0;
    s.add_row({util::fixed(outage_min, 0) + "min",
               util::fixed(stats::estimate_availability(none, params)
                                   .availability * 100.0, 3) + "%",
               util::fixed(stats::estimate_availability(pairs, params)
                                   .availability * 100.0, 3) + "%",
               util::fixed(stats::estimate_availability(specific, params)
                                   .availability * 100.0, 3) + "%"});
  }
  std::fputs(s.to_string().c_str(), stdout);

  std::puts("\nreading: generic recovery moves availability only marginally "
            "— masking 8.6% of failures barely dents the outage rate — "
            "while application-specific recovery changes the regime. This "
            "is the operational content of the paper's conclusion that "
            "\"classical application-generic recovery techniques will not "
            "be sufficient\".");
  return 0;
}
