// Table 1: classification of 50 Apache faults.
// Paper: 36 environment-independent, 7 EDN, 7 EDT.
//
// The counts are produced by the full methodology, not read from the seed
// list: the synthetic tracker (5220 reports) is filtered by the study
// criteria, duplicate reports are clustered, and each unique bug is
// classified from its report text by the rule classifier.
#include "bench_common.hpp"

int main() {
  using namespace faultstudy;

  std::puts("=== Table 1: Classification of faults for Apache ===\n");
  const auto tracker = corpus::make_apache_tracker();
  const auto result = mining::run_tracker_pipeline(tracker);

  bench::print_tracker_funnel(result, tracker.size());

  const auto counts = bench::counts_of(result);
  std::fputs(report::render_class_table(
                 counts,
                 "Table 1: Classification of faults for Apache. "
                 "Environment-independent faults do not depend on the "
                 "operating environment and are therefore deterministic.")
                 .c_str(),
             stdout);

  std::puts("\npaper vs measured:");
  bench::print_comparison(counts, {36, 7, 7});
  return 0;
}
