// Section 7: reconciliation with Lee & Iyer's Tandem GUARDIAN study.
//
// Lee & Iyer report that 82% of software faults were recovered by process
// pairs. The paper explains the gap from its own 5-14% by removing, step by
// step, the recovery credit that came from application-specific effects:
// backup-started-from-different-state ("memory state" / "error latency"
// categories), tasks not re-executed by the backup, and bugs introduced by
// the process-pair mechanism itself — leaving ~29% genuinely transient
// faults in the operating system, still above the application-level numbers
// because OS code interacts more closely with hardware.
//
// This bench reproduces that adjustment arithmetic and sets it against the
// survival our own simulator measures for a *purely* generic process-pair.
#include <cstdio>

#include "corpus/seeds.hpp"
#include "harness/experiment.hpp"
#include "report/table.hpp"
#include "util/strings.hpp"

int main() {
  using namespace faultstudy;

  std::puts("=== Section 7: adjusting Lee & Iyer's 82% process-pair "
            "recovery ===\n");

  // Category shares of recovered faults in [Lee93] as the paper reads them.
  // Starting population: software faults recovered by process pairs (82% of
  // all). Each adjustment removes recoveries that a purely generic,
  // full-state, same-task process pair would not have achieved.
  struct Step {
    const char* description;
    double remaining;  ///< fraction of all faults still counted recovered
  };
  const Step steps[] = {
      {"reported by Lee & Iyer: recovered by Tandem process pairs", 0.82},
      {"minus recoveries because the backup started from different state\n"
       "    (their 'memory state' and 'error latency' categories)",
       0.55},
      {"minus recoveries where the backup did not re-execute the task\n"
       "    (task directed at a specific processor, user avoided trigger)",
       0.40},
      {"minus faults only affecting the backup (introduced by the\n"
       "    process-pair mechanism itself, not application bugs)",
       0.29},
  };

  for (const auto& s : steps) {
    std::printf("  %5s  %s\n", util::percent(s.remaining, 0).c_str(),
                s.description);
  }
  std::puts("\n  => ~29% genuinely transient faults in the Tandem OS "
            "(paper's adjusted figure)\n");

  // Our measured counterpart for application-level faults.
  const auto seeds = corpus::all_seeds();
  const auto mechanisms = harness::standard_mechanisms();
  const auto matrix =
      harness::run_matrix(seeds, {{"process-pairs", mechanisms[0].make}});
  const auto& r = matrix.reports.front();
  const double measured = static_cast<double>(r.survived_all()) /
                          static_cast<double>(r.total_all());

  report::AsciiTable t({"study", "process-pair survival", "notes"});
  t.add_row({"Lee & Iyer (as reported)", "82%",
             "includes application-specific recovery effects"});
  t.add_row({"Lee & Iyer (adjusted)", "29%",
             "OS code interacts more with hardware -> more env-dependence"});
  t.add_row({"this reproduction (simulated)", util::percent(measured),
             "purely generic process pairs, application-level faults"});
  t.add_row({"paper's estimate", "5-14%", "per-application transient share"});
  std::fputs(t.to_string().c_str(), stdout);
  return 0;
}
