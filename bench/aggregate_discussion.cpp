// Section 5.4 (Discussion) roll-up across all three applications.
//
// Paper: "Of the 139 bugs we looked at, we found 14 (10%) environment-
// dependent-nontransient faults and 12 (9%) environment-dependent-transient
// faults"; per-application EI shares span 72-87% and EDT shares 5-14%.
#include "bench_common.hpp"

#include "stats/ci.hpp"
#include "util/strings.hpp"

int main() {
  using namespace faultstudy;

  // Mine all three corpora through the full methodology.
  const auto apache = mining::run_tracker_pipeline(corpus::make_apache_tracker());
  const auto gnome = mining::run_tracker_pipeline(corpus::make_gnome_tracker());
  const auto mysql = mining::run_mailinglist_pipeline(corpus::make_mysql_list());

  std::vector<core::Fault> all = mining::to_faults(apache);
  for (auto& f : mining::to_faults(gnome)) all.push_back(f);
  for (auto& f : mining::to_faults(mysql)) all.push_back(f);

  const auto summary = core::summarize(all);

  std::puts("=== Section 5.4: Discussion aggregates ===\n");
  report::AsciiTable t({"application", "EI", "EDN", "EDT", "total",
                        "EI share", "EDT share"});
  for (core::AppId app : core::kAllApps) {
    const auto& c = summary.per_app[static_cast<std::size_t>(app)];
    t.add_row({std::string(core::to_string(app)),
               std::to_string(c[core::FaultClass::kEnvironmentIndependent]),
               std::to_string(c[core::FaultClass::kEnvDependentNonTransient]),
               std::to_string(c[core::FaultClass::kEnvDependentTransient]),
               std::to_string(c.total()),
               util::percent(c.fraction(core::FaultClass::kEnvironmentIndependent)),
               util::percent(c.fraction(core::FaultClass::kEnvDependentTransient))});
  }
  const auto& o = summary.overall;
  t.add_row({"ALL",
             std::to_string(o[core::FaultClass::kEnvironmentIndependent]),
             std::to_string(o[core::FaultClass::kEnvDependentNonTransient]),
             std::to_string(o[core::FaultClass::kEnvDependentTransient]),
             std::to_string(o.total()),
             util::percent(o.fraction(core::FaultClass::kEnvironmentIndependent)),
             util::percent(o.fraction(core::FaultClass::kEnvDependentTransient))});
  std::fputs(t.to_string().c_str(), stdout);

  std::printf("\nheadline spans (paper: EI 72%%-87%%, EDT 5%%-14%%):\n");
  std::printf("  EI share across applications: %s - %s\n",
              util::percent(summary.min_ei_fraction).c_str(),
              util::percent(summary.max_ei_fraction).c_str());
  std::printf("  EDT share across applications: %s - %s\n",
              util::percent(summary.min_edt_fraction).c_str(),
              util::percent(summary.max_edt_fraction).c_str());

  const auto edn_ci = stats::wilson(
      o[core::FaultClass::kEnvDependentNonTransient], o.total());
  const auto edt_ci = stats::wilson(
      o[core::FaultClass::kEnvDependentTransient], o.total());
  std::printf("\noverall with 95%% Wilson intervals:\n");
  std::printf("  EDN %zu/%zu = %s  [%s, %s]   (paper: 14/139 = 10%%)\n",
              o[core::FaultClass::kEnvDependentNonTransient], o.total(),
              util::percent(edn_ci.point).c_str(),
              util::percent(edn_ci.lower).c_str(),
              util::percent(edn_ci.upper).c_str());
  std::printf("  EDT %zu/%zu = %s  [%s, %s]   (paper: 12/139 = 9%%)\n",
              o[core::FaultClass::kEnvDependentTransient], o.total(),
              util::percent(edt_ci.point).c_str(),
              util::percent(edt_ci.lower).c_str(),
              util::percent(edt_ci.upper).c_str());
  return 0;
}
