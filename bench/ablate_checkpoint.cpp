// Checkpoint-interval ablation for rollback-retry.
//
// Coarser checkpoints cost re-executed work on every rollback without
// changing which fault classes are survivable — time redundancy does not
// substitute for a changed environment. Measured over the EDT faults
// (where rollback actually recovers).
#include <cstdio>

#include "corpus/seeds.hpp"
#include "harness/experiment.hpp"
#include "recovery/rollback.hpp"
#include "report/table.hpp"
#include "util/strings.hpp"

using namespace faultstudy;

int main() {
  std::puts("=== Checkpoint-interval ablation (rollback-retry, EDT faults) "
            "===\n");

  std::vector<corpus::SeedFault> edt;
  for (const auto& seed : corpus::all_seeds()) {
    if (corpus::seed_class(seed) == core::FaultClass::kEnvDependentTransient) {
      edt.push_back(seed);
    }
  }

  report::AsciiTable t({"interval", "survived", "mean recoveries",
                        "mean items re-executed"});
  for (const std::size_t interval : {1u, 2u, 5u, 10u, 20u}) {
    std::size_t survived = 0;
    std::size_t recoveries = 0;
    std::size_t reexecuted = 0;
    for (const auto& seed : edt) {
      harness::TrialConfig tc;
      tc.seed = 31337 + util::fnv1a(seed.fault_id);
      const auto plan = inject::plan_for(seed, tc.seed);
      recovery::RollbackRetry mechanism(interval);
      const auto outcome = harness::run_trial(plan, mechanism, tc);
      if (outcome.survived) ++survived;
      recoveries += outcome.recoveries;
      reexecuted += outcome.items_reexecuted;
    }
    t.add_row({std::to_string(interval),
               std::to_string(survived) + "/" + std::to_string(edt.size()),
               util::fixed(static_cast<double>(recoveries) /
                               static_cast<double>(edt.size()),
                           1),
               util::fixed(static_cast<double>(reexecuted) /
                               static_cast<double>(edt.size()),
                           1)});
  }
  std::fputs(t.to_string().c_str(), stdout);

  std::puts("\nreading: what grows with the interval is the re-executed "
            "work per recovery — the classic checkpoint-frequency tradeoff "
            "[Elnozahy99]. At very coarse intervals the re-executed items "
            "re-encounter the hazard themselves (each replayed racy item "
            "draws a fresh interleaving), so recoveries multiply and the "
            "retry budget can run dry.");
  return 0;
}
