// Forensics overhead benchmarks and gates (google-benchmark).
//
// Before benchmarking, main() runs two gates on the full recovery matrix,
// mirroring perf_telemetry:
//
//   identity   a matrix run with a forensic sink must serialize to
//              byte-identical JSON and explorer HTML for 1 and 4 lanes
//              (the determinism contract of DESIGN.md §10);
//   overhead   the flight-recorded matrix must cost at most 5% more wall
//              time than the no-sink run (FAULTSTUDY_FORENSICS_GATE
//              overrides the percentage; 0 skips the gate). With no sink
//              attached each FS_FORENSIC site is one null check, and a
//              FAULTSTUDY_FORENSICS=OFF build removes even that.
//
// Gate measurements land in BENCH_forensics.json (bench::BenchJson).
//
// Benchmark rows:
//   BM_RingRecord          one flight-recorder append
//   BM_RingSnapshot        chronological() over a full ring
//   BM_MatrixBare/T        recovery matrix, no forensic sink
//   BM_MatrixForensics/T   recovery matrix, ring + post-mortems + fold
//   BM_BuildPostmortem     one causal-chain reconstruction
//   BM_TriageCluster       clustering the full study's post-mortems
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench_common.hpp"
#include "corpus/seeds.hpp"
#include "forensics/export.hpp"
#include "forensics/postmortem.hpp"
#include "forensics/triage.hpp"
#include "harness/experiment.hpp"

using namespace faultstudy;

namespace {

void BM_RingRecord(benchmark::State& state) {
  env::VirtualClock clock;
  forensics::FlightRecorder ring;
  ring.bind_clock(&clock);
  std::uint64_t i = 0;
  for (auto _ : state) {
    ring.record(forensics::FlightCode::kItemFailed, i++, 3);
  }
  benchmark::DoNotOptimize(ring.total_recorded());
}
BENCHMARK(BM_RingRecord);

void BM_RingSnapshot(benchmark::State& state) {
  forensics::FlightRecorder ring;
  for (std::uint64_t i = 0; i < 2 * forensics::kDefaultRingCapacity; ++i) {
    ring.record(forensics::FlightCode::kCheckpoint, i);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring.chronological());
  }
}
BENCHMARK(BM_RingSnapshot);

void BM_MatrixBare(benchmark::State& state) {
  const auto seeds = corpus::all_seeds();
  const auto mechanisms = harness::standard_mechanisms();
  harness::TrialConfig config;
  config.threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(harness::run_matrix(seeds, mechanisms, config));
  }
}
BENCHMARK(BM_MatrixBare)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_MatrixForensics(benchmark::State& state) {
  const auto seeds = corpus::all_seeds();
  const auto mechanisms = harness::standard_mechanisms();
  harness::TrialConfig config;
  config.threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    forensics::StudyForensics study;
    benchmark::DoNotOptimize(
        harness::run_matrix(seeds, mechanisms, config, 3, nullptr, &study));
    benchmark::DoNotOptimize(study.failures());
  }
}
BENCHMARK(BM_MatrixForensics)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_BuildPostmortem(benchmark::State& state) {
  // A synthetic but representative failed trial: armed fault, a resource
  // prelude, a dozen failure/recovery rounds, then a failed verdict.
  env::Environment environment;
  forensics::FlightRecorder ring;
  ring.bind_clock(&environment.clock());
  ring.record(forensics::FlightCode::kTrialStart, 40, 2);
  ring.record(forensics::FlightCode::kFaultArmed,
              static_cast<std::uint64_t>(core::Trigger::kDiskCacheFull),
              0);
  ring.record(forensics::FlightCode::kEnvArmed);
  ring.record(forensics::FlightCode::kDiskFull, 4096, 1024);
  for (std::uint64_t i = 0; i < 12; ++i) {
    ring.record(forensics::FlightCode::kItemFailed, i, 3);
    ring.record(forensics::FlightCode::kRecoveryBegin, i);
    ring.record(forensics::FlightCode::kColdRestart);
    ring.record(forensics::FlightCode::kRecoveryOk, i, 0);
  }
  ring.record(forensics::FlightCode::kVerdict,
              static_cast<std::uint64_t>(
                  forensics::TrialVerdict::kRetryCapExceeded));
  forensics::PostMortemInputs inputs;
  inputs.fault_id = "bench-edn-01";
  inputs.fault_class = core::FaultClass::kEnvDependentNonTransient;
  inputs.trigger = core::Trigger::kDiskCacheFull;
  inputs.mechanism = "cold-restart";
  inputs.verdict = forensics::TrialVerdict::kRetryCapExceeded;
  inputs.failures = 13;
  inputs.recoveries = 12;
  inputs.first_failure = "disk full writing access log";
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        forensics::build_postmortem(ring, environment, inputs));
  }
}
BENCHMARK(BM_BuildPostmortem);

const forensics::StudyForensics& full_study() {
  static const forensics::StudyForensics study = [] {
    forensics::StudyForensics s;
    harness::run_matrix(corpus::all_seeds(), harness::standard_mechanisms(),
                        {}, 3, nullptr, &s);
    return s;
  }();
  return study;
}

void BM_TriageCluster(benchmark::State& state) {
  const auto& study = full_study();
  for (auto _ : state) {
    benchmark::DoNotOptimize(forensics::triage(study.postmortems));
  }
  state.counters["postmortems"] =
      static_cast<double>(study.postmortems.size());
}
BENCHMARK(BM_TriageCluster)->Unit(benchmark::kMillisecond);

double matrix_millis_once(bool with_forensics) {
  const auto seeds = corpus::all_seeds();
  const auto mechanisms = harness::standard_mechanisms();
  harness::TrialConfig config;
  config.threads = 1;  // the serial path isolates per-trial overhead
  forensics::StudyForensics study;
  const auto start = std::chrono::steady_clock::now();
  benchmark::DoNotOptimize(harness::run_matrix(
      seeds, mechanisms, config, 3, nullptr,
      with_forensics ? &study : nullptr));
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(stop - start).count();
}

/// Minimum wall time over `rounds` interleaved bare/recorded pairs. The
/// pairing keeps ambient load drift symmetric between the variants and the
/// minimum is the lowest-noise estimator of the true cost, so the gate is
/// stable on loaded CI machines.
std::pair<double, double> interleaved_min_millis(int rounds) {
  double bare = 0.0, recorded = 0.0;
  for (int r = 0; r < rounds; ++r) {
    const double b = matrix_millis_once(false);
    const double f = matrix_millis_once(true);
    bare = r == 0 ? b : std::min(bare, b);
    recorded = r == 0 ? f : std::min(recorded, f);
  }
  return {bare, recorded};
}

/// Full-corpus determinism gate: the forensic JSON dump and the explorer
/// HTML must be byte-identical for 1 and 4 lanes.
bool forensics_identity_ok() {
  const auto seeds = corpus::all_seeds();
  const auto mechanisms = harness::standard_mechanisms();
  const auto render = [&](std::size_t threads) {
    harness::TrialConfig config;
    config.threads = threads;
    forensics::StudyForensics study;
    const auto matrix =
        harness::run_matrix(seeds, mechanisms, config, 3, nullptr, &study);
    const auto clusters = forensics::triage(study.postmortems);
    std::vector<forensics::MechanismSuccessRow> rows;
    for (const auto& report : matrix.reports) {
      rows.push_back({report.mechanism, report.generic, report.survived_all(),
                      report.total_all(), report.state_losses});
    }
    return std::pair<std::string, std::string>(
        forensics::to_json(study, clusters),
        forensics::render_explorer_html(study, clusters, rows, "bench"));
  };
  const auto serial = render(1);
  const auto wide = render(4);
  return serial.first == wide.first && serial.second == wide.second;
}

double gate_percent() {
  if (const char* env = std::getenv("FAULTSTUDY_FORENSICS_GATE")) {
    return std::strtod(env, nullptr);
  }
  return 5.0;
}

}  // namespace

int main(int argc, char** argv) {
  if (!forensics_identity_ok()) {
    std::fprintf(stderr, "FATAL: forensic artifacts differ between 1 and 4 "
                         "lanes\n");
    return 1;
  }
  std::printf("forensics identity check: OK (JSON + explorer HTML, 1 vs 4 "
              "lanes)\n");

  const double gate = gate_percent();
  if (gate > 0.0) {
    constexpr int kRounds = 5;
    // Warm-up evens out first-touch allocation between the variants.
    (void)matrix_millis_once(false);
    const auto [bare, recorded] = interleaved_min_millis(kRounds);
    const double overhead = (recorded - bare) / bare * 100.0;
    std::printf("forensics overhead gate: bare %.1f ms, recorded %.1f ms "
                "-> %+.2f%% (gate %.1f%%, min over %d interleaved rounds)\n",
                bare, recorded, overhead, gate, kRounds);
    if (overhead > gate) {
      std::fprintf(stderr, "FATAL: forensics overhead %+.2f%% exceeds %.1f%%\n",
                   overhead, gate);
      return 1;
    }
    bench::BenchJson json("forensics");
    json.add("matrix_bare_min", bare, "ms");
    json.add("matrix_recorded_min", recorded, "ms");
    json.add("overhead", overhead, "percent");
    json.add("gate", gate, "percent");
    if (!json.write()) return 1;
  }

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
