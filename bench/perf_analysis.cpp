// Microbenchmarks for the correctness-analysis layer: the cost of running a
// trial traced vs untraced (event emission + transcript recording), the
// happens-before detector's throughput on synchronization traces, and the
// invariant checker's throughput on transcripts.
#include <benchmark/benchmark.h>

#include <span>

#include "analysis/invariant_checker.hpp"
#include "analysis/race_detector.hpp"
#include "corpus/seeds.hpp"
#include "env/interleave.hpp"
#include "harness/experiment.hpp"
#include "recovery/rollback.hpp"

using namespace faultstudy;

namespace {

const corpus::SeedFault& race_seed() {
  static const corpus::SeedFault seed = [] {
    for (const auto& s : corpus::all_seeds()) {
      if (s.fault_id == "mysql-edt-01") return s;
    }
    return corpus::SeedFault{};
  }();
  return seed;
}

void BM_TrialUntraced(benchmark::State& state) {
  const auto plan = inject::plan_for(race_seed(), 42);
  for (auto _ : state) {
    recovery::RollbackRetry mechanism;
    const auto outcome = harness::run_trial(plan, mechanism);
    benchmark::DoNotOptimize(outcome.failures);
  }
}
BENCHMARK(BM_TrialUntraced);

void BM_TrialTraced(benchmark::State& state) {
  const auto plan = inject::plan_for(race_seed(), 42);
  std::size_t events = 0;
  for (auto _ : state) {
    recovery::RollbackRetry mechanism;
    harness::TrialObservation observation;
    const auto outcome = harness::run_trial(plan, mechanism, {}, &observation);
    benchmark::DoNotOptimize(outcome.failures);
    events = observation.trace.size();
  }
  state.counters["trace_events"] = static_cast<double>(events);
}
BENCHMARK(BM_TrialTraced);

/// A trace of repeated two-thread operations, racy or synchronized,
/// totalling roughly `target_events` events.
env::TraceLog make_trace(std::size_t target_events, bool racy) {
  env::TraceLog log;
  log.enable();
  env::TwoThreadShape shape;
  shape.a_steps = 8;
  shape.unguarded_at = racy ? 4 : -1;
  shape.async_locked = !racy;
  int position = 0;
  while (log.size() < target_events) {
    env::emit_two_thread_trace(log, /*now=*/log.size(), shape,
                               position++ % (shape.a_steps + 1));
  }
  return log;
}

void BM_RaceDetectorClean(benchmark::State& state) {
  const env::TraceLog log = make_trace(
      static_cast<std::size_t>(state.range(0)), /*racy=*/false);
  analysis::RaceDetector detector;
  for (auto _ : state) {
    auto reports = detector.analyze(log);
    benchmark::DoNotOptimize(reports.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(log.size()));
}
BENCHMARK(BM_RaceDetectorClean)->Range(1 << 10, 1 << 16);

void BM_RaceDetectorRacy(benchmark::State& state) {
  const env::TraceLog log = make_trace(
      static_cast<std::size_t>(state.range(0)), /*racy=*/true);
  analysis::RaceDetector detector;
  for (auto _ : state) {
    auto reports = detector.analyze(log);
    benchmark::DoNotOptimize(reports.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(log.size()));
}
BENCHMARK(BM_RaceDetectorRacy)->Range(1 << 10, 1 << 16);

void BM_InvariantChecker(benchmark::State& state) {
  harness::Transcript transcript;
  const auto n = static_cast<std::size_t>(state.range(0));
  for (std::size_t i = 0; i < n / 4; ++i) {
    transcript.record(harness::EventKind::kFdOpen, i, 2);
    transcript.record(harness::EventKind::kProcSpawn, i, 100 + i);
    transcript.record(harness::EventKind::kProcKill, i, 100 + i);
    transcript.record(harness::EventKind::kFdClose, i, 2);
  }
  for (auto _ : state) {
    auto violations = analysis::check_transcript(transcript);
    benchmark::DoNotOptimize(violations.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(transcript.events().size()));
}
BENCHMARK(BM_InvariantChecker)->Range(1 << 10, 1 << 16);

}  // namespace

BENCHMARK_MAIN();
