// Ablation D1 (DESIGN.md): the hand-built rule classifier vs a naive-Bayes
// text classifier trained on labeled reports.
//
// Protocol: leave-one-application-out. For each application, train the
// Bayes model on the other two applications' primary reports (labeled with
// ground truth) and classify the held-out application's mined bugs; the
// rule classifier needs no training. Reports accuracy, Cohen's kappa
// against ground truth, and the agreement between the two classifiers.
#include <cstdio>

#include "core/bayes.hpp"
#include "core/eval.hpp"
#include "corpus/synth.hpp"
#include "mining/pipeline.hpp"
#include "report/table.hpp"
#include "util/strings.hpp"

using namespace faultstudy;

namespace {

struct LabeledReport {
  core::ReportText text;
  core::FaultClass label;
};

std::vector<LabeledReport> labeled_primaries(core::AppId app) {
  std::vector<LabeledReport> out;
  const auto collect = [&](const corpus::BugTracker& tracker) {
    for (const auto& r : tracker.reports()) {
      if (r.fault_id.empty() || !r.truth_class.has_value()) continue;
      if (r.text.developer_comments == "Duplicate of an existing report.")
        continue;
      out.push_back({r.text, *r.truth_class});
    }
  };
  if (app == core::AppId::kApache) collect(corpus::make_apache_tracker());
  if (app == core::AppId::kGnome) collect(corpus::make_gnome_tracker());
  if (app == core::AppId::kMysql) {
    const auto list = corpus::make_mysql_list();
    for (const auto& m : list.messages()) {
      if (m.fault_id.empty() || !m.truth_class.has_value()) continue;
      core::ReportText text;
      text.title = m.subject;
      text.body = m.body;
      out.push_back({text, *m.truth_class});
    }
  }
  return out;
}

}  // namespace

int main() {
  std::puts("=== Ablation D1: rule classifier vs naive Bayes "
            "(leave-one-application-out) ===\n");

  report::AsciiTable t({"held-out app", "rule acc", "rule kappa", "bayes acc",
                        "bayes kappa", "agreement"});

  for (core::AppId held : core::kAllApps) {
    // Train Bayes on the other two applications.
    core::BayesClassifier bayes;
    for (core::AppId other : core::kAllApps) {
      if (other == held) continue;
      for (const auto& ex : labeled_primaries(other)) {
        bayes.train(ex.text, ex.label);
      }
    }

    const core::RuleClassifier rules;
    core::ConfusionMatrix rule_cm;
    core::ConfusionMatrix bayes_cm;
    core::ConfusionMatrix agreement;  // rule (rows) vs bayes (cols)

    for (const auto& ex : labeled_primaries(held)) {
      const auto rule_pred = rules.classify(ex.text).fault_class;
      const auto bayes_pred = bayes.classify(ex.text);
      rule_cm.add(ex.label, rule_pred);
      bayes_cm.add(ex.label, bayes_pred);
      agreement.add(rule_pred, bayes_pred);
    }

    t.add_row({std::string(core::to_string(held)),
               util::percent(rule_cm.accuracy()),
               util::fixed(rule_cm.kappa(), 3),
               util::percent(bayes_cm.accuracy()),
               util::fixed(bayes_cm.kappa(), 3),
               util::percent(agreement.accuracy())});
  }
  std::fputs(t.to_string().c_str(), stdout);

  std::puts("\nreading: the rule lexicon encodes the paper's manual "
            "procedure and transfers across applications; the learned "
            "model depends on cross-application vocabulary overlap. The "
            "class skew (72-87% EI) makes kappa the honest metric.");
  return 0;
}
