// Throughput microbenchmarks (google-benchmark) for the text and mining
// substrate: tokenization, stemming, TF-IDF, MinHash, classification, the
// full tracker pipeline, and one end-to-end recovery trial.
#include <benchmark/benchmark.h>

#include "core/rule_classifier.hpp"
#include "corpus/synth.hpp"
#include "harness/experiment.hpp"
#include "mining/dedup.hpp"
#include "mining/pipeline.hpp"
#include "recovery/process_pairs.hpp"
#include "text/minhash.hpp"
#include "text/stemmer.hpp"
#include "text/stopwords.hpp"
#include "text/tfidf.hpp"
#include "text/tokenizer.hpp"

using namespace faultstudy;

namespace {

const std::string kSampleReport =
    "Apache dies with a segfault when the submitted URL is very long. "
    "Observed on a production machine running release 1.3.0; the problem "
    "was a result of an overflow in the hash calculation performed by the "
    "request parser. Submitting any URL longer than the buffer reproduces "
    "the crash every time on every platform we tried.";

void BM_Tokenize(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(text::tokenize(kSampleReport));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kSampleReport.size()));
}
BENCHMARK(BM_Tokenize);

void BM_StemAndStop(benchmark::State& state) {
  const auto tokens = text::tokenize(kSampleReport);
  for (auto _ : state) {
    auto copy = tokens;
    benchmark::DoNotOptimize(text::stem_all(text::remove_stopwords(copy)));
  }
}
BENCHMARK(BM_StemAndStop);

void BM_MinHashSignature(benchmark::State& state) {
  const auto tokens = text::tokenize(kSampleReport);
  const text::MinHasher hasher({});
  for (auto _ : state) {
    benchmark::DoNotOptimize(hasher.signature(tokens));
  }
}
BENCHMARK(BM_MinHashSignature);

void BM_RuleClassify(benchmark::State& state) {
  const core::RuleClassifier classifier;
  core::ReportText report;
  report.title = "dies with a segfault when the submitted URL is very long";
  report.body = kSampleReport;
  report.how_to_repeat = "Submit a very long URL from the browser.";
  for (auto _ : state) {
    benchmark::DoNotOptimize(classifier.classify(report));
  }
}
BENCHMARK(BM_RuleClassify);

void BM_DedupCluster(benchmark::State& state) {
  const auto tracker = corpus::make_apache_tracker();
  const auto candidates = mining::study_candidates(tracker);
  std::vector<mining::DedupDoc> docs;
  for (const auto& r : candidates) {
    docs.push_back({r.id, r.text.title + ' ' + r.text.how_to_repeat});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(mining::cluster_documents(docs));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(docs.size()));
}
BENCHMARK(BM_DedupCluster);

void BM_FullApachePipeline(benchmark::State& state) {
  const auto tracker = corpus::make_apache_tracker();
  for (auto _ : state) {
    benchmark::DoNotOptimize(mining::run_tracker_pipeline(tracker));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(tracker.size()));
}
BENCHMARK(BM_FullApachePipeline);

void BM_CorpusGeneration(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(corpus::make_apache_tracker());
  }
}
BENCHMARK(BM_CorpusGeneration);

void BM_RecoveryTrial(benchmark::State& state) {
  const auto seeds = corpus::apache_seeds();
  const auto plan = inject::plan_for(seeds.front(), 1);
  for (auto _ : state) {
    recovery::ProcessPairs mechanism;
    benchmark::DoNotOptimize(harness::run_trial(plan, mechanism));
  }
}
BENCHMARK(BM_RecoveryTrial);

}  // namespace

BENCHMARK_MAIN();
