// Design diversity (Section 2): N-version programming [Avizienis85] and
// recovery blocks [Randell75] against the study's fault population, as a
// function of redundancy degree and of how correlated the versions' bugs
// are (the Knight-Leveson effect).
//
// Expected shape: diversity attacks the environment-independent majority —
// the class generic recovery cannot touch — but its value collapses as the
// probability of sharing a bug rises, and it never helps the environmental
// classes beyond what retry already achieves.
#include <cstdio>

#include "corpus/seeds.hpp"
#include "harness/experiment.hpp"
#include "recovery/nversion.hpp"
#include "report/table.hpp"
#include "util/strings.hpp"

using namespace faultstudy;

namespace {

harness::MatrixResult run_with(
    const std::vector<corpus::SeedFault>& seeds,
    const std::function<std::unique_ptr<recovery::Mechanism>(std::uint64_t)>&
        make_for_salt) {
  // run_matrix expects salt-free factories; bind the salt per fault by
  // running the matrix one fault at a time.
  harness::MatrixResult merged;
  merged.fault_count = seeds.size();
  harness::MechanismReport total;
  bool first = true;
  for (const auto& seed : seeds) {
    const std::uint64_t salt = util::fnv1a(seed.fault_id);
    const auto matrix = harness::run_matrix(
        {seed}, {{"diversity", [&] { return make_for_salt(salt); }}});
    const auto& r = matrix.reports.front();
    if (first) {
      total = r;
      first = false;
    } else {
      for (std::size_t c = 0; c < 3; ++c) {
        total.survived[c] += r.survived[c];
        total.total[c] += r.total[c];
      }
      total.vacuous += r.vacuous;
    }
  }
  merged.reports.push_back(total);
  return merged;
}

}  // namespace

int main() {
  std::puts("=== Design diversity vs the 139-fault population ===\n");

  const auto seeds = corpus::all_seeds();

  report::AsciiTable t({"scheme", "shared-bug prob", "EI", "EDN", "EDT",
                        "overall", "cost"});
  const auto add = [&](const std::string& scheme, double share,
                       const harness::MechanismReport& r, std::string cost) {
    const auto cell = [&](core::FaultClass c) {
      const auto i = static_cast<std::size_t>(c);
      return std::to_string(r.survived[i]) + "/" + std::to_string(r.total[i]);
    };
    t.add_row({scheme, util::fixed(share, 2),
               cell(core::FaultClass::kEnvironmentIndependent),
               cell(core::FaultClass::kEnvDependentNonTransient),
               cell(core::FaultClass::kEnvDependentTransient),
               util::percent(static_cast<double>(r.survived_all()) /
                             static_cast<double>(r.total_all())),
               std::move(cost)});
  };

  for (const int n : {3, 5}) {
    for (const double share : {0.0, 0.2, 0.5}) {
      const auto m = run_with(seeds, [&](std::uint64_t salt) {
        return std::make_unique<recovery::NVersionProgramming>(n, share, salt);
      });
      add(std::to_string(n) + "-version", share, m.reports.front(),
          std::to_string(n) + "x dev+run");
    }
  }
  for (const int alternates : {1, 2}) {
    for (const double share : {0.2, 0.5}) {
      const auto m = run_with(seeds, [&](std::uint64_t salt) {
        return std::make_unique<recovery::RecoveryBlocks>(alternates, share,
                                                          salt);
      });
      add("recovery-blocks-" + std::to_string(alternates), share,
          m.reports.front(), std::to_string(alternates + 1) + "x dev");
    }
  }
  std::fputs(t.to_string().c_str(), stdout);

  std::puts("\nreading: with independent versions (share=0) diversity masks "
            "the entire EI class; at Knight-Leveson-style correlation the "
            "majority requirement erodes it. The EDN column never moves — "
            "N copies of a program see the same full disk. The paper's "
            "verdict stands: this is application-specific recovery, and its "
            "cost is N independent implementations.");
  return 0;
}
