// Figure 2: distribution of faults for GNOME over time.
//
// GNOME's modules release independently, so the paper buckets by time; the
// stated shape: the EI proportion is high throughout, and the fault count
// dips for a short interval ("probably a period of few changes in the
// software") before rising again.
#include "bench_common.hpp"

#include "util/strings.hpp"

int main() {
  using namespace faultstudy;

  const auto tracker = corpus::make_gnome_tracker();
  const auto result = mining::run_tracker_pipeline(tracker);
  const auto faults = mining::to_faults(result);

  const auto series =
      stats::build_series(faults, core::AppId::kGnome, corpus::gnome_periods());
  std::fputs(report::render_stacked_bars(
                 series, "Figure 2: GNOME faults over time (two-month periods)")
                 .c_str(),
             stdout);

  std::printf("\nshape checks:\n");
  std::printf("  interior dip present: %s (paper: a decrease for a short "
              "interval before increasing again)\n",
              stats::has_interior_dip(series) ? "yes" : "NO");
  std::printf("  max deviation of EI share from overall: %s "
              "(paper: proportion of EI bugs very high over all periods)\n",
              util::percent(stats::max_ei_share_deviation(series)).c_str());
  return 0;
}
