// bench_trajectory — merges every BENCH_*.json a bench run produced into
// one schema-validated BENCH_trajectory.json, so CI archives a single
// artifact per run and dashboards can difference whole runs.
//
//   bench_trajectory [dir] [out.json]
//
// Scans `dir` (default: the working directory) for BENCH_*.json files
// written by the perf gates (bench_common.hpp's BenchJson), validates each
// against the faultstudy-bench/1 schema — wrong schema, missing fields, or
// malformed JSON fail the merge — and writes
//
//   {"schema":"faultstudy-bench-trajectory/1","benches":[
//     {"bench":"coverage","rows":[{"name":...,"value":...,"unit":...}]},…]}
//
// with benches sorted by name, so the output is deterministic in the input
// set regardless of directory enumeration order.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "util/json.hpp"

using namespace faultstudy;

namespace {

constexpr std::string_view kRowSchema = "faultstudy-bench/1";
constexpr std::string_view kOutSchema = "faultstudy-bench-trajectory/1";

struct BenchRow {
  std::string name;
  double value = 0.0;
  std::string unit;
};

struct BenchFile {
  std::string bench;
  std::string path;
  std::vector<BenchRow> rows;
};

/// Parses and schema-validates one BENCH_*.json; returns false (with a
/// message on stderr) on any shape violation.
bool load_bench(const std::string& path, BenchFile& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "%s: cannot read\n", path.c_str());
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const auto parsed = util::json::parse(buf.str());
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(), parsed.error().c_str());
    return false;
  }
  const util::json::Value& doc = parsed.value();
  if (!doc.is_object()) {
    std::fprintf(stderr, "%s: top level is not an object\n", path.c_str());
    return false;
  }
  if (doc.string_or("schema", "") != kRowSchema) {
    std::fprintf(stderr, "%s: schema is not %s\n", path.c_str(),
                 std::string(kRowSchema).c_str());
    return false;
  }
  out.bench = doc.string_or("bench", "");
  out.path = path;
  if (out.bench.empty()) {
    std::fprintf(stderr, "%s: missing bench name\n", path.c_str());
    return false;
  }
  const util::json::Value* rows = doc.find("rows");
  if (rows == nullptr || !rows->is_array()) {
    std::fprintf(stderr, "%s: missing rows array\n", path.c_str());
    return false;
  }
  for (const util::json::Value& row : rows->array) {
    if (!row.is_object()) {
      std::fprintf(stderr, "%s: row is not an object\n", path.c_str());
      return false;
    }
    BenchRow r;
    r.name = row.string_or("name", "");
    r.unit = row.string_or("unit", "");
    const util::json::Value* value = row.find("value");
    if (r.name.empty() || value == nullptr || !value->is_number()) {
      std::fprintf(stderr, "%s: row needs a name and a numeric value\n",
                   path.c_str());
      return false;
    }
    r.value = value->number;
    out.rows.push_back(std::move(r));
  }
  return true;
}

std::string render(const std::vector<BenchFile>& benches) {
  std::string out = "{\"schema\":\"";
  out += kOutSchema;
  out += "\",\"benches\":[";
  for (std::size_t b = 0; b < benches.size(); ++b) {
    if (b > 0) out += ',';
    out += "{\"bench\":\"" + util::json::escape(benches[b].bench) +
           "\",\"rows\":[";
    for (std::size_t i = 0; i < benches[b].rows.size(); ++i) {
      const BenchRow& row = benches[b].rows[i];
      if (i > 0) out += ',';
      char value[64];
      std::snprintf(value, sizeof(value), "%.6g", row.value);
      out += "{\"name\":\"" + util::json::escape(row.name) +
             "\",\"value\":" + value + ",\"unit\":\"" +
             util::json::escape(row.unit) + "\"}";
    }
    out += "]}";
  }
  out += "]}\n";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 3) {
    std::fprintf(stderr, "usage: bench_trajectory [dir] [out.json]\n");
    return 2;
  }
  const std::string dir = argc > 1 ? argv[1] : ".";
  const std::string out_path =
      argc > 2 ? argv[2] : (dir + "/BENCH_trajectory.json");

  std::vector<std::string> paths;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (!name.starts_with("BENCH_") || !name.ends_with(".json")) continue;
    if (name == "BENCH_trajectory.json") continue;  // never merge the output
    paths.push_back(entry.path().string());
  }
  if (ec) {
    std::fprintf(stderr, "%s: %s\n", dir.c_str(), ec.message().c_str());
    return 1;
  }
  if (paths.empty()) {
    std::fprintf(stderr, "%s: no BENCH_*.json files\n", dir.c_str());
    return 1;
  }

  std::vector<BenchFile> benches;
  benches.reserve(paths.size());
  for (const std::string& path : paths) {
    BenchFile bench;
    if (!load_bench(path, bench)) return 1;
    benches.push_back(std::move(bench));
  }
  std::sort(benches.begin(), benches.end(),
            [](const BenchFile& a, const BenchFile& b) {
              return a.bench < b.bench;
            });
  for (std::size_t i = 1; i < benches.size(); ++i) {
    if (benches[i].bench == benches[i - 1].bench) {
      std::fprintf(stderr, "duplicate bench '%s' (%s and %s)\n",
                   benches[i].bench.c_str(), benches[i - 1].path.c_str(),
                   benches[i].path.c_str());
      return 1;
    }
  }

  const std::string payload = render(benches);
  std::ofstream out(out_path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << payload;
  std::printf("trajectory: merged %zu benches into %s (%zu bytes)\n",
              benches.size(), out_path.c_str(), payload.size());
  return 0;
}
