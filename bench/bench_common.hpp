// Shared plumbing for the reproduction benches: run the mining pipeline for
// one application, print the funnel, the paper-style table, and the
// paper-vs-measured comparison.
#pragma once

#include <cstdio>
#include <string>

#include "core/aggregate.hpp"
#include "corpus/synth.hpp"
#include "mining/pipeline.hpp"
#include "report/figure.hpp"
#include "report/table.hpp"

namespace faultstudy::bench {

struct PaperCounts {
  std::size_t ei = 0, edn = 0, edt = 0;
};

inline void print_comparison(const core::ClassCounts& measured,
                             const PaperCounts& paper) {
  report::AsciiTable t({"class", "paper", "measured", "match"});
  const auto row = [&](core::FaultClass c, std::size_t paper_count) {
    const std::size_t m = measured[c];
    t.add_row({std::string(core::to_string(c)), std::to_string(paper_count),
               std::to_string(m), m == paper_count ? "yes" : "NO"});
  };
  row(core::FaultClass::kEnvironmentIndependent, paper.ei);
  row(core::FaultClass::kEnvDependentNonTransient, paper.edn);
  row(core::FaultClass::kEnvDependentTransient, paper.edt);
  std::fputs(t.to_string().c_str(), stdout);
}

inline core::ClassCounts counts_of(const mining::PipelineResult& result) {
  const auto faults = mining::to_faults(result);
  return core::tally(faults);
}

inline void print_tracker_funnel(const mining::PipelineResult& result,
                                 std::size_t corpus_size) {
  std::printf(
      "selection funnel: %zu reports -> %zu runtime -> %zu production -> "
      "%zu severe/critical -> %zu unique bugs\n\n",
      corpus_size, result.filter_funnel.runtime,
      result.filter_funnel.production, result.filter_funnel.severe,
      result.bugs.size());
}

inline void print_list_funnel(const mining::PipelineResult& result,
                              std::size_t corpus_size) {
  std::printf(
      "keyword funnel: %zu messages -> %zu keyword hits -> %zu report-shaped "
      "-> %zu threads -> %zu unique bugs\n\n",
      corpus_size, result.keyword_funnel.keyword_hits,
      result.keyword_funnel.report_shaped, result.keyword_funnel.threads,
      result.bugs.size());
}

}  // namespace faultstudy::bench
