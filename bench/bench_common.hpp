// Shared plumbing for the reproduction benches: run the mining pipeline for
// one application, print the funnel, the paper-style table, and the
// paper-vs-measured comparison, plus the machine-readable BENCH_*.json
// writer the perf gates use.
#pragma once

#include <cstdio>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "core/aggregate.hpp"
#include "corpus/synth.hpp"
#include "mining/pipeline.hpp"
#include "report/figure.hpp"
#include "report/table.hpp"

namespace faultstudy::bench {

/// Collects named measurements from a perf binary and writes them as
/// BENCH_<name>.json, one flat rows array so CI diffs and dashboards can
/// consume every bench the same way:
///
///   {"schema":"faultstudy-bench/1","bench":"telemetry","rows":[
///     {"name":"matrix_bare","value":123.40,"unit":"ms"},...]}
class BenchJson {
 public:
  explicit BenchJson(std::string bench) : bench_(std::move(bench)) {}

  void add(std::string name, double value, std::string unit) {
    rows_.push_back(Row{std::move(name), value, std::move(unit)});
  }

  std::string to_string() const {
    std::string out = "{\"schema\":\"faultstudy-bench/1\",\"bench\":\"";
    append_escaped(out, bench_);
    out += "\",\"rows\":[";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      if (i > 0) out += ',';
      out += "{\"name\":\"";
      append_escaped(out, rows_[i].name);
      char value[64];
      std::snprintf(value, sizeof(value), "%.6g", rows_[i].value);
      out += "\",\"value\":";
      out += value;
      out += ",\"unit\":\"";
      append_escaped(out, rows_[i].unit);
      out += "\"}";
    }
    out += "]}\n";
    return out;
  }

  /// Writes BENCH_<bench>.json into the working directory (or `path` when
  /// given) and reports the destination on stdout.
  bool write(const std::string& path = "") const {
    const std::string dest = path.empty() ? "BENCH_" + bench_ + ".json" : path;
    std::ofstream out(dest, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", dest.c_str());
      return false;
    }
    out << to_string();
    std::printf("bench json: wrote %s (%zu rows)\n", dest.c_str(),
                rows_.size());
    return true;
  }

 private:
  struct Row {
    std::string name;
    double value = 0.0;
    std::string unit;
  };

  static void append_escaped(std::string& out, const std::string& text) {
    for (const char c : text) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
  }

  std::string bench_;
  std::vector<Row> rows_;
};

struct PaperCounts {
  std::size_t ei = 0, edn = 0, edt = 0;
};

inline void print_comparison(const core::ClassCounts& measured,
                             const PaperCounts& paper) {
  report::AsciiTable t({"class", "paper", "measured", "match"});
  const auto row = [&](core::FaultClass c, std::size_t paper_count) {
    const std::size_t m = measured[c];
    t.add_row({std::string(core::to_string(c)), std::to_string(paper_count),
               std::to_string(m), m == paper_count ? "yes" : "NO"});
  };
  row(core::FaultClass::kEnvironmentIndependent, paper.ei);
  row(core::FaultClass::kEnvDependentNonTransient, paper.edn);
  row(core::FaultClass::kEnvDependentTransient, paper.edt);
  std::fputs(t.to_string().c_str(), stdout);
}

inline core::ClassCounts counts_of(const mining::PipelineResult& result) {
  const auto faults = mining::to_faults(result);
  return core::tally(faults);
}

inline void print_tracker_funnel(const mining::PipelineResult& result,
                                 std::size_t corpus_size) {
  std::printf(
      "selection funnel: %zu reports -> %zu runtime -> %zu production -> "
      "%zu severe/critical -> %zu unique bugs\n\n",
      corpus_size, result.filter_funnel.runtime,
      result.filter_funnel.production, result.filter_funnel.severe,
      result.bugs.size());
}

inline void print_list_funnel(const mining::PipelineResult& result,
                              std::size_t corpus_size) {
  std::printf(
      "keyword funnel: %zu messages -> %zu keyword hits -> %zu report-shaped "
      "-> %zu threads -> %zu unique bugs\n\n",
      corpus_size, result.keyword_funnel.keyword_hits,
      result.keyword_funnel.report_shaped, result.keyword_funnel.threads,
      result.bugs.size());
}

}  // namespace faultstudy::bench
