// Figure 1: distribution of faults for Apache over software releases.
//
// The paper highlights two properties: (1) the relative proportion of
// environment-independent bugs stays about the same across releases, and
// (2) the total number of reported bugs increases with newer releases.
// Both are checked numerically below the figure.
#include "bench_common.hpp"

#include "stats/chisq.hpp"
#include "util/strings.hpp"

int main() {
  using namespace faultstudy;

  const auto tracker = corpus::make_apache_tracker();
  const auto result = mining::run_tracker_pipeline(tracker);
  const auto faults = mining::to_faults(result);

  const auto series =
      stats::build_series(faults, core::AppId::kApache, corpus::apache_releases());
  std::fputs(report::render_stacked_bars(
                 series, "Figure 1: Apache faults per software release")
                 .c_str(),
             stdout);

  const double growth = stats::growth_fraction(series, /*ignore_last=*/false);
  const double max_dev = stats::max_ei_share_deviation(series);
  std::printf("\nshape checks:\n");
  std::printf("  release-over-release growth: %s of transitions non-decreasing"
              " (paper: counts grow with newer releases)\n",
              util::percent(growth).c_str());
  std::printf("  max deviation of EI share from overall: %s "
              "(paper: proportion stays about the same)\n",
              util::percent(max_dev).c_str());

  // Homogeneity of the class mix across releases.
  std::vector<std::vector<std::size_t>> table;
  for (const auto& p : series) {
    table.push_back({p.counts[core::FaultClass::kEnvironmentIndependent],
                     p.counts[core::FaultClass::kEnvDependentNonTransient] +
                         p.counts[core::FaultClass::kEnvDependentTransient]});
  }
  const auto chi = stats::chi_square(table);
  std::printf("  chi-square homogeneity (EI vs env-dep across releases): "
              "X2=%.2f dof=%zu p=%.3f%s\n",
              chi.statistic, chi.dof, chi.p_value,
              chi.reliable ? "" : " (small-sample caution)");
  return 0;
}
