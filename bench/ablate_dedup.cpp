// Ablation D2 (DESIGN.md): duplicate clustering strategy.
//
// Compares three dedup strategies on the Apache tracker's study candidates:
//   exact-title       — reports are duplicates iff titles match exactly
//   minhash+cosine    — the pipeline's default (LSH candidates, cosine
//                       confirmation)
//   cosine-allpairs   — exhaustive O(n^2) cosine (quality ceiling)
// The planted ground truth (50 unique faults) scores each strategy.
#include <chrono>
#include <cstdio>
#include <map>
#include <set>

#include "corpus/synth.hpp"
#include "mining/dedup.hpp"
#include "mining/filters.hpp"
#include "report/table.hpp"
#include "text/stemmer.hpp"
#include "text/stopwords.hpp"
#include "text/tfidf.hpp"
#include "text/tokenizer.hpp"
#include "util/strings.hpp"

using namespace faultstudy;

namespace {

using Clusters = std::vector<std::vector<std::size_t>>;

/// Pairwise precision/recall of a clustering against ground-truth labels.
struct PairScore {
  double precision = 0.0;
  double recall = 0.0;
};

PairScore score(const Clusters& clusters,
                const std::vector<std::string>& truth) {
  std::set<std::pair<std::size_t, std::size_t>> predicted;
  for (const auto& cluster : clusters) {
    for (std::size_t a = 0; a < cluster.size(); ++a) {
      for (std::size_t b = a + 1; b < cluster.size(); ++b) {
        predicted.emplace(cluster[a], cluster[b]);
      }
    }
  }
  std::set<std::pair<std::size_t, std::size_t>> actual;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    for (std::size_t j = i + 1; j < truth.size(); ++j) {
      if (!truth[i].empty() && truth[i] == truth[j]) actual.emplace(i, j);
    }
  }
  std::size_t hit = 0;
  for (const auto& p : predicted) {
    if (actual.contains(p)) ++hit;
  }
  PairScore s;
  s.precision = predicted.empty()
                    ? 1.0
                    : static_cast<double>(hit) / static_cast<double>(predicted.size());
  s.recall = actual.empty()
                 ? 1.0
                 : static_cast<double>(hit) / static_cast<double>(actual.size());
  return s;
}

Clusters exact_title(const std::vector<corpus::BugReport>& reports) {
  std::map<std::string, std::vector<std::size_t>> by_title;
  for (std::size_t i = 0; i < reports.size(); ++i) {
    by_title[reports[i].text.title].push_back(i);
  }
  Clusters out;
  for (auto& [title, members] : by_title) {
    (void)title;
    out.push_back(std::move(members));
  }
  return out;
}

Clusters cosine_allpairs(const std::vector<corpus::BugReport>& reports,
                         double threshold) {
  std::vector<std::vector<std::string>> tokens(reports.size());
  for (std::size_t i = 0; i < reports.size(); ++i) {
    tokens[i] = text::stem_all(text::remove_stopwords(text::tokenize(
        reports[i].text.title + ' ' + reports[i].text.how_to_repeat + ' ' +
        reports[i].text.body)));
  }
  text::TfIdfModel model;
  model.fit(tokens);
  std::vector<text::DocVector> vectors(reports.size());
  for (std::size_t i = 0; i < reports.size(); ++i) {
    vectors[i] = model.transform(tokens[i]);
  }
  mining::UnionFind uf(reports.size());
  for (std::size_t i = 0; i < reports.size(); ++i) {
    for (std::size_t j = i + 1; j < reports.size(); ++j) {
      if (text::cosine(vectors[i], vectors[j]) >= threshold) uf.unite(i, j);
    }
  }
  return uf.groups();
}

Clusters pipeline_dedup(const std::vector<corpus::BugReport>& reports) {
  std::vector<mining::DedupDoc> docs;
  docs.reserve(reports.size());
  for (std::size_t i = 0; i < reports.size(); ++i) {
    mining::DedupDoc d;
    d.id = reports[i].id;
    d.text = reports[i].text.title + ' ' + reports[i].text.how_to_repeat +
             ' ' + reports[i].text.body;
    docs.push_back(std::move(d));
  }
  return mining::cluster_documents(docs);
}

}  // namespace

int main() {
  std::puts("=== Ablation D2: duplicate-clustering strategies (Apache "
            "study candidates, 50 planted faults) ===\n");

  const auto tracker = corpus::make_apache_tracker();
  const auto candidates = mining::study_candidates(tracker);
  std::vector<std::string> truth;
  truth.reserve(candidates.size());
  for (const auto& r : candidates) truth.push_back(r.fault_id);

  report::AsciiTable t({"strategy", "clusters", "pair precision",
                        "pair recall", "ms"});
  const auto run = [&](const char* name, auto&& fn) {
    const auto t0 = std::chrono::steady_clock::now();
    const Clusters clusters = fn();
    const auto ms = std::chrono::duration_cast<std::chrono::microseconds>(
                        std::chrono::steady_clock::now() - t0)
                        .count() /
                    1000.0;
    const auto s = score(clusters, truth);
    t.add_row({name, std::to_string(clusters.size()),
               util::percent(s.precision), util::percent(s.recall),
               util::fixed(ms, 2)});
  };

  run("exact-title", [&] { return exact_title(candidates); });
  run("minhash+cosine (default)", [&] { return pipeline_dedup(candidates); });
  run("cosine-allpairs", [&] { return cosine_allpairs(candidates, 0.55); });

  std::fputs(t.to_string().c_str(), stdout);
  std::printf("\nground truth: %zu unique faults among %zu candidate "
              "reports\n",
              tracker.distinct_faults(), candidates.size());
  std::puts("reading: exact-title misses paraphrased duplicates (splits "
            "clusters, inflating the unique-bug count); LSH+cosine matches "
            "the exhaustive scorer at a fraction of the pair comparisons.");
  return 0;
}
