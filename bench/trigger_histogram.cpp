// Distribution of trigger mechanisms and symptoms over the mined study set,
// plus the comparison with the timing/synchronization shares reported by
// the related studies the paper discusses in Section 7.
//
// Also writes Figures 1-3 as SVG files into the working directory.
#include <cstdio>
#include <fstream>
#include <map>

#include "corpus/synth.hpp"
#include "mining/pipeline.hpp"
#include "report/svg.hpp"
#include "report/table.hpp"
#include "util/strings.hpp"

using namespace faultstudy;

int main() {
  const auto apache = mining::run_tracker_pipeline(corpus::make_apache_tracker());
  const auto gnome = mining::run_tracker_pipeline(corpus::make_gnome_tracker());
  const auto mysql = mining::run_mailinglist_pipeline(corpus::make_mysql_list());

  std::vector<core::Fault> all = mining::to_faults(apache);
  for (auto& f : mining::to_faults(gnome)) all.push_back(f);
  for (auto& f : mining::to_faults(mysql)) all.push_back(f);

  std::puts("=== Trigger-mechanism histogram over the 139 mined faults ===\n");
  std::map<core::Trigger, std::size_t> histogram;
  for (const auto& f : all) ++histogram[f.trigger];

  report::AsciiTable t({"trigger", "class", "count", "share"});
  for (const auto& [trigger, count] : histogram) {
    t.add_row({std::string(core::to_string(trigger)),
               std::string(core::to_code(core::fault_class_of(trigger))),
               std::to_string(count),
               util::percent(static_cast<double>(count) / all.size())});
  }
  std::fputs(t.to_string().c_str(), stdout);

  // Section 7 comparison: timing/synchronization-related shares.
  std::puts("\ntiming/synchronization share vs the related studies "
            "(Section 7):");
  std::size_t timing = 0;
  for (const auto& f : all) {
    if (f.trigger == core::Trigger::kRaceCondition ||
        f.trigger == core::Trigger::kWorkloadTiming) {
      ++timing;
    }
  }
  report::AsciiTable rel({"study", "software", "timing/sync share"});
  rel.add_row({"Sullivan & Chillarege 91/92", "MVS, DB2, IMS", "5-13%"});
  rel.add_row({"Lee & Iyer 93", "Tandem GUARDIAN", "14%"});
  rel.add_row({"this reproduction", "Apache, GNOME, MySQL",
               util::percent(static_cast<double>(timing) / all.size())});
  std::fputs(rel.to_string().c_str(), stdout);

  // SVG figures.
  const struct {
    const char* path;
    const char* title;
    core::AppId app;
    const std::vector<std::string>* labels;
  } figures[] = {
      {"figure1_apache.svg", "Figure 1: Apache faults per release",
       core::AppId::kApache, &corpus::apache_releases()},
      {"figure2_gnome.svg", "Figure 2: GNOME faults over time",
       core::AppId::kGnome, &corpus::gnome_periods()},
      {"figure3_mysql.svg", "Figure 3: MySQL faults per release",
       core::AppId::kMysql, &corpus::mysql_releases()},
  };
  std::puts("");
  for (const auto& fig : figures) {
    const auto series = stats::build_series(all, fig.app, *fig.labels);
    std::ofstream out(fig.path, std::ios::binary);
    if (out) {
      out << report::render_svg(series, fig.title);
      std::printf("wrote %s\n", fig.path);
    }
  }
  return 0;
}
