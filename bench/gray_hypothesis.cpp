// Gray's hypothesis, tested on the mined data.
//
// [Gray86] hypothesized that as software matures, Bohrbugs get caught and
// fixed, so the RESIDUAL bug population shifts toward Heisenbugs — the
// premise that made application-generic recovery look sufficient. The
// paper's counter-claim (Section 5.4): "new features and code are added
// very quickly, and this rapid rate of change may prevent the application
// from reaching stability" — i.e. the transient share should show NO upward
// trend across releases.
//
// This bench computes the transient share per release/time bucket for each
// application and tests for a monotone trend (Mann-Kendall style S
// statistic over bucket shares, plus the chi-square homogeneity test).
#include <cmath>
#include <cstdio>
#include <vector>

#include "corpus/synth.hpp"
#include "mining/pipeline.hpp"
#include "report/table.hpp"
#include "stats/chisq.hpp"
#include "stats/series.hpp"
#include "util/strings.hpp"

using namespace faultstudy;

namespace {

/// Mann-Kendall S over per-bucket transient shares: positive = upward
/// trend. `z_out` receives the normal-approximation Z with continuity
/// correction; |Z| >= 1.96 would reject "no trend" at the 5% level.
int mann_kendall(const std::vector<double>& shares, double* z_out) {
  int s = 0;
  for (std::size_t i = 0; i < shares.size(); ++i) {
    for (std::size_t j = i + 1; j < shares.size(); ++j) {
      if (shares[j] > shares[i]) ++s;
      if (shares[j] < shares[i]) --s;
    }
  }
  const double n = static_cast<double>(shares.size());
  const double var = n * (n - 1.0) * (2.0 * n + 5.0) / 18.0;
  double z = 0.0;
  if (var > 0.0 && s != 0) {
    z = (s > 0 ? s - 1.0 : s + 1.0) / std::sqrt(var);
  }
  if (z_out != nullptr) *z_out = z;
  return s;
}

void analyze(const char* name, const std::vector<core::Fault>& faults,
             core::AppId app, const std::vector<std::string>& labels,
             report::AsciiTable& out) {
  const auto series = stats::build_series(faults, app, labels);
  std::vector<double> shares;
  std::vector<std::vector<std::size_t>> table;
  for (const auto& p : series) {
    if (p.counts.total() < 3) continue;  // too small to carry a share
    shares.push_back(
        p.counts.fraction(core::FaultClass::kEnvDependentTransient));
    table.push_back(
        {p.counts[core::FaultClass::kEnvironmentIndependent] +
             p.counts[core::FaultClass::kEnvDependentNonTransient],
         p.counts[core::FaultClass::kEnvDependentTransient]});
  }
  double z = 0.0;
  const int s = mann_kendall(shares, &z);
  const auto chi = stats::chi_square(table);
  std::string shares_text;
  for (double v : shares) {
    if (!shares_text.empty()) shares_text += ' ';
    shares_text += util::percent(v, 0);
  }
  out.add_row({name, shares_text,
               std::to_string(s) + " (Z=" + util::fixed(z, 2) + ")",
               util::fixed(chi.p_value, 3) + (chi.reliable ? "" : "*"),
               z >= 1.96 ? "significant upward trend" : "no significant trend"});
}

}  // namespace

int main() {
  std::puts("=== Gray's stability hypothesis: does the transient share "
            "rise across releases? ===\n");

  const auto apache = mining::run_tracker_pipeline(corpus::make_apache_tracker());
  const auto gnome = mining::run_tracker_pipeline(corpus::make_gnome_tracker());
  const auto mysql = mining::run_mailinglist_pipeline(corpus::make_mysql_list());

  std::vector<core::Fault> all = mining::to_faults(apache);
  for (auto& f : mining::to_faults(gnome)) all.push_back(f);
  for (auto& f : mining::to_faults(mysql)) all.push_back(f);

  report::AsciiTable t({"application", "transient share per bucket",
                        "Mann-Kendall S", "chi-sq p", "verdict"});
  analyze("Apache", all, core::AppId::kApache, corpus::apache_releases(), t);
  analyze("GNOME", all, core::AppId::kGnome, corpus::gnome_periods(), t);
  analyze("MySQL", all, core::AppId::kMysql, corpus::mysql_releases(), t);
  std::fputs(t.to_string().c_str(), stdout);
  std::puts("  (* = chi-square small-sample caution)");

  std::puts("\nreading: no application shows a statistically significant "
            "upward trend in the transient share — the residual bug "
            "population is NOT drifting toward Heisenbugs. Gray's stability "
            "premise fails for this software exactly as the paper argues: "
            "rapid feature churn keeps replenishing the deterministic "
            "majority, so generic recovery never inherits a Heisenbug-"
            "dominated fault mix.");
  return 0;
}
