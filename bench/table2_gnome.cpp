// Table 2: classification of 45 GNOME faults.
// Paper: 39 environment-independent, 3 EDN, 3 EDT.
#include "bench_common.hpp"

int main() {
  using namespace faultstudy;

  std::puts("=== Table 2: Classification of faults for GNOME ===\n");
  const auto tracker = corpus::make_gnome_tracker();
  const auto result = mining::run_tracker_pipeline(tracker);

  bench::print_tracker_funnel(result, tracker.size());

  const auto counts = bench::counts_of(result);
  std::fputs(report::render_class_table(
                 counts,
                 "Table 2: Classification of faults for GNOME (core "
                 "libraries plus panel, gnome-pim, gnumeric and gmc).")
                 .c_str(),
             stdout);

  std::puts("\npaper vs measured:");
  bench::print_comparison(counts, {39, 3, 3});
  return 0;
}
