// Robustness-wrapper coverage sweep (Section 6.1, Ballista [Kropp98]).
//
// Wrappers neutralize boundary-condition faults the testing campaign
// found. Sweeping coverage shows the best case for the "prevent rather
// than recover" strategy — and why "testing all of the boundary conditions
// the software may encounter in the field" is the hard part: survival of
// the EI class scales linearly with coverage, nothing more.
#include <cstdio>

#include "corpus/seeds.hpp"
#include "harness/experiment.hpp"
#include "recovery/process_pairs.hpp"
#include "recovery/wrappers.hpp"
#include "report/table.hpp"
#include "util/strings.hpp"

using namespace faultstudy;

int main() {
  std::puts("=== Robustness-wrapper coverage sweep (process pairs under "
            "wrappers) ===\n");

  const auto seeds = corpus::all_seeds();

  report::AsciiTable t({"coverage", "EI survived", "EDN", "EDT", "overall"});
  for (const double coverage : {0.0, 0.25, 0.5, 0.75, 0.9, 1.0}) {
    harness::MechanismReport total;
    for (const auto& seed : seeds) {
      const std::uint64_t salt = util::fnv1a(seed.fault_id);
      const auto matrix = harness::run_matrix(
          {seed}, {{"wrapped", [&] {
                      return std::make_unique<recovery::WrappedMechanism>(
                          std::make_unique<recovery::ProcessPairs>(), coverage,
                          salt);
                    }}});
      const auto& r = matrix.reports.front();
      for (std::size_t c = 0; c < 3; ++c) {
        total.survived[c] += r.survived[c];
        total.total[c] += r.total[c];
      }
    }
    const auto cell = [&](core::FaultClass c) {
      const auto i = static_cast<std::size_t>(c);
      return std::to_string(total.survived[i]) + "/" +
             std::to_string(total.total[i]);
    };
    t.add_row({util::percent(coverage, 0),
               cell(core::FaultClass::kEnvironmentIndependent),
               cell(core::FaultClass::kEnvDependentNonTransient),
               cell(core::FaultClass::kEnvDependentTransient),
               util::percent(static_cast<double>(total.survived_all()) /
                             static_cast<double>(total.total_all()))});
  }
  std::fputs(t.to_string().c_str(), stdout);

  std::puts("\nreading: EI survival tracks wrapper coverage; the leak-type "
            "EI faults (no killer input to reject) and the EDN class are "
            "untouched at any coverage. Even perfect wrappers leave the "
            "environmental conditions to other countermeasures.");
  return 0;
}
