// Section 6.2's resource-exhaustion countermeasures, made executable: what
// happens to the EDN class when generic recovery is layered over an
// environment that grows resources on demand and garbage-collects idle
// descriptors?
//
// The paper predicts the reclassification: "some systems may provide a way
// to automatically increase the disk capacity and hence avoid the bug
// during retry. If this becomes common, we would re-classify this as an
// environment-dependent-transient fault."
#include <cstdio>

#include "corpus/seeds.hpp"
#include "harness/experiment.hpp"
#include "recovery/process_pairs.hpp"
#include "recovery/resource_guard.hpp"
#include "report/table.hpp"
#include "util/strings.hpp"

using namespace faultstudy;

int main() {
  std::puts("=== Section 6.2 countermeasures: process pairs with and "
            "without resource guards ===\n");

  const auto seeds = corpus::all_seeds();
  const std::vector<harness::NamedMechanism> roster = {
      {"process-pairs",
       [] { return std::make_unique<recovery::ProcessPairs>(); }},
      {"process-pairs+guards",
       [] {
         return recovery::with_standard_guards(
             std::make_unique<recovery::ProcessPairs>());
       }},
  };
  const auto matrix = harness::run_matrix(seeds, roster);

  report::AsciiTable t({"mechanism", "EI", "EDN", "EDT", "overall"});
  for (const auto& r : matrix.reports) {
    const auto cell = [&](core::FaultClass c) {
      const auto i = static_cast<std::size_t>(c);
      return std::to_string(r.survived[i]) + "/" + std::to_string(r.total[i]);
    };
    t.add_row({r.mechanism, cell(core::FaultClass::kEnvironmentIndependent),
               cell(core::FaultClass::kEnvDependentNonTransient),
               cell(core::FaultClass::kEnvDependentTransient),
               util::percent(static_cast<double>(r.survived_all()) /
                             static_cast<double>(r.total_all()))});
  }
  std::fputs(t.to_string().c_str(), stdout);

  // Which EDN faults did the guards convert?
  std::puts("\nper-fault effect on the EDN class (guards vs none):");
  report::AsciiTable detail({"fault", "trigger", "bare", "guarded"});
  for (const auto& seed : seeds) {
    if (corpus::seed_class(seed) != core::FaultClass::kEnvDependentNonTransient)
      continue;
    harness::TrialConfig tc;
    tc.seed = 4242 + util::fnv1a(seed.fault_id);
    const auto plan = inject::plan_for(seed, tc.seed);
    recovery::ProcessPairs bare;
    const auto bare_out = harness::run_trial(plan, bare, tc);
    auto guarded = recovery::with_standard_guards(
        std::make_unique<recovery::ProcessPairs>());
    const auto guarded_out = harness::run_trial(plan, *guarded, tc);
    detail.add_row({seed.fault_id,
                    std::string(core::to_string(seed.trigger)),
                    bare_out.survived ? "survives" : "fails",
                    guarded_out.survived ? "survives" : "fails"});
  }
  std::fputs(detail.to_string().c_str(), stdout);

  std::puts("\nreading: growth + garbage collection convert the resource-"
            "exhaustion EDN faults into transient ones, exactly the "
            "reclassification the paper anticipates. Conditions that are "
            "not resources (hostname change, corrupt metadata, missing "
            "reverse DNS, removed hardware) and leaks of unknown resources "
            "remain non-transient.");
  return 0;
}
