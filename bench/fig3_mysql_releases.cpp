// Figure 3: distribution of faults for MySQL over software releases.
//
// Same two properties as Apache — growing counts, constant EI share — with
// one extra: "the last release has a substantially lower number of faults
// because the release is very new".
#include "bench_common.hpp"

#include "util/strings.hpp"

int main() {
  using namespace faultstudy;

  const auto list = corpus::make_mysql_list();
  const auto result = mining::run_mailinglist_pipeline(list);
  const auto faults = mining::to_faults(result);

  const auto series =
      stats::build_series(faults, core::AppId::kMysql, corpus::mysql_releases());
  std::fputs(report::render_stacked_bars(
                 series, "Figure 3: MySQL faults per software release")
                 .c_str(),
             stdout);

  const double growth = stats::growth_fraction(series, /*ignore_last=*/true);
  std::printf("\nshape checks:\n");
  std::printf("  growth excluding the newest release: %s of transitions "
              "non-decreasing\n",
              util::percent(growth).c_str());
  if (series.size() >= 2) {
    const auto last = series.back().counts.total();
    const auto prev = series[series.size() - 2].counts.total();
    std::printf("  newest release undercounted: %zu vs %zu in the previous "
                "release -> %s\n",
                last, prev, last < prev ? "yes" : "NO");
  }
  std::printf("  max deviation of EI share from overall: %s\n",
              util::percent(stats::max_ei_share_deviation(series)).c_str());
  return 0;
}
