// Coverage-probe overhead benchmarks and gates (google-benchmark).
//
// Before benchmarking, main() runs two gates on the full recovery matrix:
//
//   identity   an atlas-attached run_matrix must produce identical atlases
//              — and byte-identical atlas JSON and study snapshots — for
//              1 and 4 lanes (the index-order fold contract);
//   overhead   the atlas-attached matrix must cost at most 5% more wall
//              time than the bare run (FAULTSTUDY_COVERAGE_GATE overrides
//              the percentage; 0 skips the gate). The bare path is timed
//              against itself as a noise floor for the detached-probe
//              claim: with no sink bound only a null check remains, and a
//              FAULTSTUDY_COVERAGE=0 build removes even that.
//
// Benchmark rows:
//   BM_MatrixBare/T       recovery matrix, no coverage sink
//   BM_MatrixCoverage/T   recovery matrix, atlas attached + folded
//   BM_ProbeHit           one CoverageMap probe increment
//   BM_MapMerge           one full CoverageMap merge
//   BM_NullSinkBranch     the detached path: FS_COVER on a null sink
//   BM_SnapshotRender     canonical JSON of a full study snapshot
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench_common.hpp"
#include "corpus/seeds.hpp"
#include "harness/experiment.hpp"
#include "obs/baseline.hpp"
#include "obs/export.hpp"
#include "obs/probes.hpp"
#include "telemetry/trial.hpp"

using namespace faultstudy;

namespace {

void BM_MatrixBare(benchmark::State& state) {
  const auto seeds = corpus::all_seeds();
  const auto mechanisms = harness::standard_mechanisms();
  harness::TrialConfig config;
  config.threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(harness::run_matrix(seeds, mechanisms, config));
  }
}
BENCHMARK(BM_MatrixBare)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_MatrixCoverage(benchmark::State& state) {
  const auto seeds = corpus::all_seeds();
  const auto mechanisms = harness::standard_mechanisms();
  harness::TrialConfig config;
  config.threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    obs::CoverageAtlas atlas;
    benchmark::DoNotOptimize(harness::run_matrix(seeds, mechanisms, config, 3,
                                                 nullptr, nullptr, &atlas));
    benchmark::DoNotOptimize(atlas.probes_hit());
  }
}
BENCHMARK(BM_MatrixCoverage)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_ProbeHit(benchmark::State& state) {
  obs::CoverageMap map;
  for (auto _ : state) {
    map.hit(obs::Site::kEnvFdDenied);
  }
  benchmark::DoNotOptimize(map.count(obs::Site::kEnvFdDenied));
}
BENCHMARK(BM_ProbeHit);

void BM_MapMerge(benchmark::State& state) {
  obs::CoverageMap a;
  obs::CoverageMap b;
  for (std::size_t i = 0; i < obs::kNumSites; ++i) {
    b.sites[i] = i + 1;
  }
  for (auto _ : state) {
    a.merge(b);
  }
  benchmark::DoNotOptimize(a.probes_hit());
}
BENCHMARK(BM_MapMerge);

void BM_NullSinkBranch(benchmark::State& state) {
  obs::CoverageMap* sink = nullptr;
  benchmark::DoNotOptimize(sink);
  for (auto _ : state) {
    FS_COVER(sink, hit(obs::Site::kEnvFdDenied));
  }
}
BENCHMARK(BM_NullSinkBranch);

void BM_SnapshotRender(benchmark::State& state) {
  const auto seeds = corpus::all_seeds();
  const auto mechanisms = harness::standard_mechanisms();
  harness::TrialConfig config;
  config.threads = 4;
  obs::CoverageAtlas atlas;
  const auto matrix = harness::run_matrix(seeds, mechanisms, config, 3,
                                          nullptr, nullptr, &atlas);
  const auto snapshot =
      obs::build_snapshot(seeds, matrix, atlas, {}, config.seed, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(obs::to_json(snapshot));
  }
}
BENCHMARK(BM_SnapshotRender)->Unit(benchmark::kMicrosecond);

struct MatrixTimes {
  double bare = 0.0;
  double covered = 0.0;
  double bare_again = 0.0;
};

/// Best-of-rounds wall time for the bare and atlas-attached matrix,
/// interleaved bare/covered/bare-again within every round (the repeated
/// bare run is the noise floor). Interleaving matters more
/// than the statistic: machine load drifts over the seconds a gate run
/// takes, so back-to-back pairs see the same conditions where sequential
/// blocks would attribute the drift to the variant that ran later. The
/// minimum is then the noise-robust pick — interference only adds time.
MatrixTimes best_matrix_millis(int rounds) {
  const auto seeds = corpus::all_seeds();
  const auto mechanisms = harness::standard_mechanisms();
  harness::TrialConfig config;
  config.threads = 1;  // the serial path isolates per-trial overhead
  const auto one = [&](bool covered) {
    obs::CoverageAtlas atlas;
    const auto start = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(
        harness::run_matrix(seeds, mechanisms, config, 3, nullptr, nullptr,
                            covered ? &atlas : nullptr));
    const auto stop = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(stop - start).count();
  };
  MatrixTimes best;
  for (int r = 0; r < rounds; ++r) {
    const double bare = one(false);
    const double covered = one(true);
    const double bare_again = one(false);
    if (r == 0 || bare < best.bare) best.bare = bare;
    if (r == 0 || covered < best.covered) best.covered = covered;
    if (r == 0 || bare_again < best.bare_again) best.bare_again = bare_again;
  }
  return best;
}

/// Full-corpus determinism gate: the atlas, its canonical JSON, and the
/// study snapshot built from it must be identical for 1 and 4 lanes.
bool coverage_identity_ok() {
  const auto seeds = corpus::all_seeds();
  const auto mechanisms = harness::standard_mechanisms();
  const auto run = [&](std::size_t threads, obs::CoverageAtlas& atlas) {
    harness::TrialConfig config;
    config.threads = threads;
    return harness::run_matrix(seeds, mechanisms, config, 3, nullptr, nullptr,
                               &atlas);
  };
  obs::CoverageAtlas serial_atlas, wide_atlas;
  const auto serial = run(1, serial_atlas);
  const auto wide = run(4, wide_atlas);
  if (!(serial_atlas == wide_atlas)) return false;
  if (obs::to_json(serial_atlas) != obs::to_json(wide_atlas)) return false;
  const auto serial_snap =
      obs::build_snapshot(seeds, serial, serial_atlas, {}, 99, 3);
  const auto wide_snap =
      obs::build_snapshot(seeds, wide, wide_atlas, {}, 99, 3);
  return obs::to_json(serial_snap) == obs::to_json(wide_snap);
}

double gate_percent() {
  if (const char* env = std::getenv("FAULTSTUDY_COVERAGE_GATE")) {
    return std::strtod(env, nullptr);
  }
  return 5.0;
}

}  // namespace

int main(int argc, char** argv) {
  if (!coverage_identity_ok()) {
    std::fprintf(stderr,
                 "FATAL: coverage atlas differs between 1 and 4 lanes\n");
    return 1;
  }
  std::printf("coverage identity check: OK (atlas + JSON + snapshot, 1 vs 4 "
              "lanes)\n");

  const double gate = gate_percent();
  if (gate > 0.0) {
    constexpr int kRounds = 5;
    // Warm-up evens out first-touch allocation between the variants.
    (void)best_matrix_millis(1);
    const MatrixTimes best = best_matrix_millis(kRounds);
    const double bare = best.bare;
    const double covered = best.covered;
    const double overhead = (covered - bare) / bare * 100.0;
    const double noise = (best.bare_again - bare) / bare * 100.0;
    std::printf("coverage overhead gate: bare %.1f ms, atlas-attached %.1f ms "
                "-> %+.2f%% (noise floor %+.2f%%, gate %.1f%%)\n",
                bare, covered, overhead, noise, gate);
    if (overhead > gate) {
      std::fprintf(stderr, "FATAL: coverage overhead %+.2f%% exceeds %.1f%%\n",
                   overhead, gate);
      return 1;
    }
    bench::BenchJson json("coverage");
    json.add("matrix_bare_best", bare, "ms");
    json.add("matrix_coverage_best", covered, "ms");
    json.add("overhead", overhead, "percent");
    json.add("noise_floor", noise, "percent");
    json.add("gate", gate, "percent");
    if (!json.write()) return 1;
  }

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
