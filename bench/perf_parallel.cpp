// Throughput benchmarks for the deterministic parallel executor
// (google-benchmark), parameterized by thread count:
//
//   BM_RecoveryMatrix/T       full 139-seed x 6-mechanism matrix, repeats=3
//   BM_OracleCrosscheck/T     one traced trial + race detection per seed
//   BM_TrackerPipeline/T      Apache tracker mining (filter/dedup/classify)
//   BM_MailingListPipeline/T  MySQL mbox mining
//   BM_PoolForIndex/T         raw pool scheduling overhead (trivial items)
//
// Before benchmarking, main() cross-checks the determinism contract on the
// full corpus: run_matrix with 4 lanes must be bit-identical to the serial
// run. The serial-vs-parallel speedup on a given host is the ratio of the
// /1 and /N rows; EXPERIMENTS.md records measured numbers.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>

#include "corpus/seeds.hpp"
#include "corpus/synth.hpp"
#include "harness/experiment.hpp"
#include "harness/parallel.hpp"
#include "mining/pipeline.hpp"
#include "util/thread_pool.hpp"

using namespace faultstudy;

namespace {

void BM_RecoveryMatrix(benchmark::State& state) {
  const auto seeds = corpus::all_seeds();
  const auto mechanisms = harness::standard_mechanisms();
  harness::TrialConfig config;
  config.threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(harness::run_matrix(seeds, mechanisms, config));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(seeds.size() *
                                               mechanisms.size()));
}
BENCHMARK(BM_RecoveryMatrix)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_OracleCrosscheck(benchmark::State& state) {
  const auto seeds = corpus::all_seeds();
  harness::TrialConfig config;
  config.threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(harness::run_oracle_crosscheck(seeds, config));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(seeds.size()));
}
BENCHMARK(BM_OracleCrosscheck)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_TrackerPipeline(benchmark::State& state) {
  const auto tracker = corpus::make_apache_tracker();
  mining::PipelineOptions options;
  options.threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(mining::run_tracker_pipeline(tracker, options));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(tracker.size()));
}
BENCHMARK(BM_TrackerPipeline)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_MailingListPipeline(benchmark::State& state) {
  const auto list = corpus::make_mysql_list();
  mining::PipelineOptions options;
  options.threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        mining::run_mailinglist_pipeline(list, options));
  }
}
BENCHMARK(BM_MailingListPipeline)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_PoolForIndex(benchmark::State& state) {
  util::ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  std::vector<std::uint64_t> out(1 << 14);
  for (auto _ : state) {
    pool.for_index(out.size(), [&](std::size_t i) {
      out[i] = i * 0x9e3779b97f4a7c15ULL;
    });
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(out.size()));
}
BENCHMARK(BM_PoolForIndex)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

/// Full-corpus determinism cross-check (the acceptance gate for the
/// parallel matrix): serial and 4-lane runs must agree field for field.
bool matrix_identity_ok() {
  const auto seeds = corpus::all_seeds();
  const auto mechanisms = harness::standard_mechanisms();
  harness::TrialConfig serial;
  serial.threads = 1;
  harness::TrialConfig wide = serial;
  wide.threads = 4;
  const auto a = harness::run_matrix(seeds, mechanisms, serial);
  const auto b = harness::run_matrix(seeds, mechanisms, wide);
  if (a.fault_count != b.fault_count) return false;
  if (a.reports.size() != b.reports.size()) return false;
  for (std::size_t i = 0; i < a.reports.size(); ++i) {
    const auto& ra = a.reports[i];
    const auto& rb = b.reports[i];
    if (ra.mechanism != rb.mechanism || ra.generic != rb.generic ||
        ra.survived != rb.survived || ra.total != rb.total ||
        ra.vacuous != rb.vacuous || ra.state_losses != rb.state_losses) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const auto n = corpus::all_seeds().size();
  if (!matrix_identity_ok()) {
    std::fprintf(stderr,
                 "FATAL: %zu-seed matrix differs between 1 and 4 lanes\n", n);
    return 1;
  }
  std::printf("matrix identity check: OK (%zu seeds, serial vs 4 lanes)\n", n);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
