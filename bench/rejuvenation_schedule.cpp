// Proactive rejuvenation schedule sweep ([Huang95], Section 6.2).
//
// Against the study's leak faults (Apache's growing shared-memory segment,
// the load-induced resource leak, descriptor leaks), rejuvenating every R
// operations prevents the failure entirely when R is below the leak
// horizon, and degrades gracefully above it — the classic rejuvenation
// interval / failure-cost tradeoff.
#include <cstdio>

#include "corpus/seeds.hpp"
#include "harness/experiment.hpp"
#include "recovery/rejuvenation.hpp"
#include "report/table.hpp"
#include "util/strings.hpp"

using namespace faultstudy;

int main() {
  std::puts("=== Proactive rejuvenation interval sweep (leak faults) ===\n");

  // The leak faults of the study.
  std::vector<corpus::SeedFault> leaks;
  for (const auto& seed : corpus::all_seeds()) {
    if (seed.trigger == core::Trigger::kDeterministicLeak ||
        seed.trigger == core::Trigger::kResourceLeakUnderLoad ||
        seed.trigger == core::Trigger::kFdExhaustion) {
      leaks.push_back(seed);
    }
  }
  std::printf("leak faults under test: %zu\n\n", leaks.size());

  report::AsciiTable t({"interval", "fault", "failures", "reactive recov",
                        "proactive passes", "survived"});
  for (const std::size_t interval : {4u, 8u, 16u, 64u}) {
    for (const auto& seed : leaks) {
      harness::TrialConfig tc;
      tc.seed = 777 + util::fnv1a(seed.fault_id);
      const auto plan = inject::plan_for(seed, tc.seed);
      recovery::ScheduledRejuvenation mechanism(interval);
      const auto outcome = harness::run_trial(plan, mechanism, tc);
      t.add_row({std::to_string(interval), seed.fault_id,
                 std::to_string(outcome.failures),
                 std::to_string(outcome.recoveries),
                 std::to_string(mechanism.proactive_passes()),
                 outcome.survived && !outcome.failure_observed
                     ? "no failure at all"
                     : (outcome.survived ? "yes" : "NO")});
    }
  }
  std::fputs(t.to_string().c_str(), stdout);

  std::puts("\nreading: short intervals PREVENT the failures (zero observed "
            "crashes) at the price of frequent proactive passes; long "
            "intervals let leaks reach their limit and rejuvenation becomes "
            "reactive. This is the mechanism Apache administrators used in "
            "the field (SIGHUP rejuvenation), per Section 6.2.");
  return 0;
}
