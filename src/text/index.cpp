#include "text/index.hpp"

#include <algorithm>
#include <unordered_set>

#include "text/stemmer.hpp"
#include "text/tokenizer.hpp"

namespace faultstudy::text {

void InvertedIndex::add_document(std::uint64_t doc_id, std::string_view body) {
  ++num_documents_;
  std::unordered_set<std::string> seen;
  for (auto& tok : stem_all(tokenize(body))) {
    if (seen.insert(tok).second) postings_[tok].push_back(doc_id);
  }
}

std::vector<std::uint64_t> InvertedIndex::match_any(
    const std::vector<std::string>& keywords) const {
  std::vector<std::uint64_t> out;
  for (const auto& kw : keywords) {
    auto it = postings_.find(stem(kw));
    if (it != postings_.end()) {
      out.insert(out.end(), it->second.begin(), it->second.end());
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<std::uint64_t> InvertedIndex::match_all(
    const std::vector<std::string>& keywords) const {
  if (keywords.empty()) return {};
  std::vector<std::uint64_t> acc;
  bool first = true;
  for (const auto& kw : keywords) {
    auto it = postings_.find(stem(kw));
    if (it == postings_.end()) return {};
    std::vector<std::uint64_t> sorted = it->second;
    std::sort(sorted.begin(), sorted.end());
    if (first) {
      acc = std::move(sorted);
      first = false;
    } else {
      std::vector<std::uint64_t> merged;
      std::set_intersection(acc.begin(), acc.end(), sorted.begin(),
                            sorted.end(), std::back_inserter(merged));
      acc = std::move(merged);
    }
  }
  return acc;
}

std::size_t InvertedIndex::document_frequency(std::string_view keyword) const {
  auto it = postings_.find(stem(keyword));
  return it == postings_.end() ? 0 : it->second.size();
}

}  // namespace faultstudy::text
