#include "text/minhash.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "util/rng.hpp"

namespace faultstudy::text {

namespace {
std::uint64_t mix(std::uint64_t x, std::uint64_t seed) {
  // xor-fold of SplitMix64's finalizer; cheap and well distributed.
  x ^= seed;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}
}  // namespace

MinHasher::MinHasher(MinHashParams params) : params_(params) {
  assert(params_.num_hashes > 0);
  assert(params_.band_size > 0 && params_.num_hashes % params_.band_size == 0);
  util::SplitMix64 sm(params_.seed);
  hash_seeds_.resize(params_.num_hashes);
  for (auto& s : hash_seeds_) s = sm.next();
}

Signature MinHasher::signature(const std::vector<std::string>& tokens) const {
  Signature sig(params_.num_hashes, std::numeric_limits<std::uint64_t>::max());
  if (tokens.empty()) return sig;
  const std::size_t width =
      std::min<std::size_t>(params_.shingle_size, tokens.size());

  for (std::size_t i = 0; i + width <= tokens.size(); ++i) {
    std::uint64_t shingle_hash = 0xcbf29ce484222325ULL;
    for (std::size_t j = 0; j < width; ++j) {
      shingle_hash ^= util::fnv1a(tokens[i + j]);
      shingle_hash *= 0x100000001b3ULL;
    }
    for (std::uint32_t h = 0; h < params_.num_hashes; ++h) {
      const std::uint64_t v = mix(shingle_hash, hash_seeds_[h]);
      if (v < sig[h]) sig[h] = v;
    }
  }
  return sig;
}

double MinHasher::estimate_jaccard(const Signature& a, const Signature& b) {
  assert(a.size() == b.size());
  if (a.empty()) return 0.0;
  std::size_t match = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] == b[i]) ++match;
  }
  return static_cast<double>(match) / static_cast<double>(a.size());
}

std::vector<std::pair<std::size_t, std::size_t>> lsh_candidates(
    const std::vector<Signature>& signatures, const MinHashParams& params) {
  const std::uint32_t bands = params.num_hashes / params.band_size;
  std::set<std::pair<std::size_t, std::size_t>> pairs;

  for (std::uint32_t b = 0; b < bands; ++b) {
    std::unordered_map<std::uint64_t, std::vector<std::size_t>> buckets;
    for (std::size_t doc = 0; doc < signatures.size(); ++doc) {
      std::uint64_t key = 0xcbf29ce484222325ULL ^ b;
      for (std::uint32_t r = 0; r < params.band_size; ++r) {
        key ^= signatures[doc][b * params.band_size + r];
        key *= 0x100000001b3ULL;
      }
      buckets[key].push_back(doc);
    }
    for (const auto& [key, docs] : buckets) {
      (void)key;
      for (std::size_t i = 0; i < docs.size(); ++i) {
        for (std::size_t j = i + 1; j < docs.size(); ++j) {
          pairs.emplace(docs[i], docs[j]);
        }
      }
    }
  }
  return {pairs.begin(), pairs.end()};
}

double exact_jaccard(const std::vector<std::string>& a,
                     const std::vector<std::string>& b) {
  const std::unordered_set<std::string> sa(a.begin(), a.end());
  const std::unordered_set<std::string> sb(b.begin(), b.end());
  if (sa.empty() && sb.empty()) return 0.0;
  std::size_t inter = 0;
  for (const auto& t : sa) {
    if (sb.contains(t)) ++inter;
  }
  return static_cast<double>(inter) /
         static_cast<double>(sa.size() + sb.size() - inter);
}

}  // namespace faultstudy::text
