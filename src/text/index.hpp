// Inverted keyword index over a document collection.
//
// Models the paper's MySQL methodology: "we use all the messages from the
// archives that matched one of the following keywords: crash, segmentation,
// race, died". Queries match on stems so morphological variants count.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace faultstudy::text {

class InvertedIndex {
 public:
  /// Adds a document; `doc_id` is caller-defined and must be unique.
  /// Text is tokenized and stemmed internally.
  void add_document(std::uint64_t doc_id, std::string_view body);

  /// Documents containing at least one of the keywords (OR semantics, as in
  /// the paper). Keywords are stemmed before lookup. Result is sorted and
  /// deduplicated.
  std::vector<std::uint64_t> match_any(
      const std::vector<std::string>& keywords) const;

  /// Documents containing every keyword (AND semantics).
  std::vector<std::uint64_t> match_all(
      const std::vector<std::string>& keywords) const;

  /// Number of documents a stemmed term appears in.
  std::size_t document_frequency(std::string_view keyword) const;

  std::size_t size() const noexcept { return num_documents_; }

 private:
  std::unordered_map<std::string, std::vector<std::uint64_t>> postings_;
  std::size_t num_documents_ = 0;
};

}  // namespace faultstudy::text
