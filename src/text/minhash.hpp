// MinHash signatures with LSH banding for near-duplicate candidate pairs.
//
// The tracker corpora contain thousands of reports; all-pairs TF-IDF cosine
// would be O(n^2) with a large constant. MinHash over word shingles gives
// cheap Jaccard estimates, and banding turns "estimate > threshold" into a
// hash-bucket join so only colliding pairs are confirmed with cosine.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace faultstudy::text {

struct MinHashParams {
  std::uint32_t num_hashes = 64;   ///< signature length
  std::uint32_t band_size = 4;     ///< rows per LSH band (must divide num_hashes)
  std::uint32_t shingle_size = 3;  ///< word-shingle width
  std::uint64_t seed = 0x5eed;     ///< hash-family seed
};

using Signature = std::vector<std::uint64_t>;

class MinHasher {
 public:
  explicit MinHasher(MinHashParams params);

  /// Signature of a token sequence. Documents shorter than the shingle size
  /// are shingled at width tokens.size() (min 1) so they still participate.
  Signature signature(const std::vector<std::string>& tokens) const;

  /// Fraction of matching signature positions = Jaccard estimate.
  static double estimate_jaccard(const Signature& a, const Signature& b);

  const MinHashParams& params() const noexcept { return params_; }

 private:
  MinHashParams params_;
  std::vector<std::uint64_t> hash_seeds_;
};

/// Candidate-pair generation: documents whose signatures agree on all rows
/// of at least one band. Pairs are returned with i < j, deduplicated.
std::vector<std::pair<std::size_t, std::size_t>> lsh_candidates(
    const std::vector<Signature>& signatures, const MinHashParams& params);

/// Exact Jaccard over token sets, for testing the estimator.
double exact_jaccard(const std::vector<std::string>& a,
                     const std::vector<std::string>& b);

}  // namespace faultstudy::text
