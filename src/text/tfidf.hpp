// TF-IDF vectorization and cosine similarity.
//
// Used by the duplicate-report clustering stage: MinHash proposes candidate
// pairs cheaply, TF-IDF cosine confirms them. Vectors are sparse and stored
// sorted by term id so that dot products are linear merges.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace faultstudy::text {

/// Maps terms to dense integer ids. Grows on demand during fitting; lookup
/// of unknown terms returns kUnknown.
class Vocabulary {
 public:
  static constexpr std::uint32_t kUnknown = 0xffffffffu;

  std::uint32_t add(std::string_view term);
  std::uint32_t lookup(std::string_view term) const noexcept;
  std::size_t size() const noexcept { return terms_.size(); }
  const std::string& term(std::uint32_t id) const { return terms_.at(id); }

 private:
  std::unordered_map<std::string, std::uint32_t> ids_;
  std::vector<std::string> terms_;
};

/// Sparse vector entry.
struct TermWeight {
  std::uint32_t term = 0;
  float weight = 0.0f;
};

/// A document as a unit-normalized sparse TF-IDF vector (sorted by term id).
struct DocVector {
  std::vector<TermWeight> entries;
};

/// Fits document frequencies over a corpus, then transforms documents.
class TfIdfModel {
 public:
  /// `documents` are pre-tokenized (tokenize -> remove_stopwords -> stem).
  void fit(const std::vector<std::vector<std::string>>& documents);

  /// TF (1 + log tf) * IDF (log((1+N)/(1+df)) + 1), L2-normalized.
  /// Unknown terms are dropped.
  DocVector transform(const std::vector<std::string>& tokens) const;

  std::size_t corpus_size() const noexcept { return num_documents_; }
  const Vocabulary& vocabulary() const noexcept { return vocab_; }

 private:
  Vocabulary vocab_;
  std::vector<std::uint32_t> doc_freq_;
  std::size_t num_documents_ = 0;
};

/// Cosine similarity of two unit vectors (plain dot product). Inputs must be
/// sorted by term id, which TfIdfModel::transform guarantees.
double cosine(const DocVector& a, const DocVector& b) noexcept;

}  // namespace faultstudy::text
