#include "text/tfidf.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace faultstudy::text {

std::uint32_t Vocabulary::add(std::string_view term) {
  auto it = ids_.find(std::string(term));
  if (it != ids_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(terms_.size());
  terms_.emplace_back(term);
  ids_.emplace(terms_.back(), id);
  return id;
}

std::uint32_t Vocabulary::lookup(std::string_view term) const noexcept {
  auto it = ids_.find(std::string(term));
  return it == ids_.end() ? kUnknown : it->second;
}

void TfIdfModel::fit(const std::vector<std::vector<std::string>>& documents) {
  num_documents_ = documents.size();
  for (const auto& doc : documents) {
    std::unordered_set<std::uint32_t> seen;
    for (const auto& term : doc) {
      const std::uint32_t id = vocab_.add(term);
      if (id >= doc_freq_.size()) doc_freq_.resize(id + 1, 0);
      if (seen.insert(id).second) ++doc_freq_[id];
    }
  }
}

DocVector TfIdfModel::transform(const std::vector<std::string>& tokens) const {
  std::unordered_map<std::uint32_t, std::uint32_t> tf;
  for (const auto& term : tokens) {
    const std::uint32_t id = vocab_.lookup(term);
    if (id != Vocabulary::kUnknown) ++tf[id];
  }
  DocVector vec;
  vec.entries.reserve(tf.size());
  const double n = static_cast<double>(num_documents_);
  for (const auto& [id, count] : tf) {
    const double idf =
        std::log((1.0 + n) / (1.0 + static_cast<double>(doc_freq_[id]))) + 1.0;
    const double w = (1.0 + std::log(static_cast<double>(count))) * idf;
    vec.entries.push_back({id, static_cast<float>(w)});
  }
  std::sort(vec.entries.begin(), vec.entries.end(),
            [](const TermWeight& a, const TermWeight& b) {
              return a.term < b.term;
            });
  double norm2 = 0.0;
  for (const auto& e : vec.entries) norm2 += double(e.weight) * e.weight;
  if (norm2 > 0.0) {
    const auto inv = static_cast<float>(1.0 / std::sqrt(norm2));
    for (auto& e : vec.entries) e.weight *= inv;
  }
  return vec;
}

double cosine(const DocVector& a, const DocVector& b) noexcept {
  double dot = 0.0;
  std::size_t i = 0, j = 0;
  while (i < a.entries.size() && j < b.entries.size()) {
    const auto ta = a.entries[i].term;
    const auto tb = b.entries[j].term;
    if (ta == tb) {
      dot += double(a.entries[i].weight) * b.entries[j].weight;
      ++i;
      ++j;
    } else if (ta < tb) {
      ++i;
    } else {
      ++j;
    }
  }
  return dot;
}

}  // namespace faultstudy::text
