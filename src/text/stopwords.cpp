#include "text/stopwords.hpp"

#include <algorithm>
#include <string>
#include <unordered_set>

namespace faultstudy::text {

namespace {
const std::unordered_set<std::string_view>& stopword_set() {
  // "out", "up", "down", "full", "long" are deliberately absent: in this
  // domain they appear in phrases like "out of file descriptors" and
  // "long URL" that the classifier keys on.
  static const std::unordered_set<std::string_view> kSet = {
      "a",     "an",    "and",   "are",   "as",    "at",    "be",    "been",
      "but",   "by",    "can",   "could", "did",   "do",    "does",  "for",
      "from",  "had",   "has",   "have",  "he",    "her",   "his",   "how",
      "i",     "if",    "in",    "into",  "is",    "it",    "its",   "me",
      "my",    "no",    "not",   "of",    "on",    "or",    "our",   "she",
      "so",    "some",  "such",  "than",  "that",  "the",   "their", "them",
      "then",  "there", "these", "they",  "this",  "to",    "was",   "we",
      "were",  "what",  "when",  "which", "while", "who",   "why",   "will",
      "with",  "would", "you",   "your",  "also",  "any",   "just",  "get",
      "gets",  "got",   "very",  "here",  "after", "before","again", "same",
  };
  return kSet;
}
}  // namespace

bool is_stopword(std::string_view token) {
  return stopword_set().contains(token);
}

std::vector<std::string> remove_stopwords(std::vector<std::string> tokens) {
  tokens.erase(std::remove_if(tokens.begin(), tokens.end(),
                              [](const std::string& t) { return is_stopword(t); }),
               tokens.end());
  return tokens;
}

}  // namespace faultstudy::text
