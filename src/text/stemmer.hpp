// A light-weight English suffix stemmer (Porter-style steps 1a/1b/2 subset).
//
// The mining pipeline needs "crashes"/"crashed"/"crashing" to collapse to one
// stem; it does not need linguistic perfection, so this stemmer trades recall
// of exotic suffixes for predictability. It never touches tokens containing
// digits, '_' , '.' or '-' (identifiers, versions, filenames).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace faultstudy::text {

/// Returns the stem of a single lowercase token.
std::string stem(std::string_view token);

/// Stems every token in place.
std::vector<std::string> stem_all(std::vector<std::string> tokens);

}  // namespace faultstudy::text
