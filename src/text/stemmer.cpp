#include "text/stemmer.hpp"

#include <cctype>

namespace faultstudy::text {

namespace {

bool plain_alpha(std::string_view t) {
  for (char c : t) {
    if (!std::isalpha(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

bool is_vowel(char c) {
  return c == 'a' || c == 'e' || c == 'i' || c == 'o' || c == 'u';
}

bool has_vowel(std::string_view t) {
  for (char c : t) {
    if (is_vowel(c)) return true;
  }
  return false;
}

bool ends(std::string_view t, std::string_view suffix) {
  return t.size() >= suffix.size() &&
         t.substr(t.size() - suffix.size()) == suffix;
}

}  // namespace

std::string stem(std::string_view token) {
  if (token.size() < 4 || !plain_alpha(token)) return std::string(token);
  std::string t(token);

  // Step 1a: plurals. sses->ss, ies->i, s-> (but not ss).
  if (ends(t, "sses")) {
    t.resize(t.size() - 2);
  } else if (ends(t, "ies")) {
    t.resize(t.size() - 2);  // "dies" -> "di", matching "died" -> "di"
  } else if (ends(t, "s") && !ends(t, "ss") && !ends(t, "us")) {
    t.resize(t.size() - 1);
  }

  // Step 1b: -ed / -ing when a vowel precedes the suffix.
  auto strip_if_vowel_stem = [&](std::string_view suffix) {
    if (!ends(t, suffix)) return false;
    const std::string_view stem_part(t.data(), t.size() - suffix.size());
    if (stem_part.size() < 2 || !has_vowel(stem_part)) return false;
    t.resize(stem_part.size());
    return true;
  };
  if (strip_if_vowel_stem("ing") || strip_if_vowel_stem("ed")) {
    // Undouble final consonant ("stopped"->"stop", "hanging"->"hang" is
    // already fine) except for l/s/z where doubling is meaningful.
    if (t.size() >= 3 && t[t.size() - 1] == t[t.size() - 2] &&
        !is_vowel(t.back()) && t.back() != 'l' && t.back() != 's' &&
        t.back() != 'z') {
      t.resize(t.size() - 1);
    }
    // Restore a trailing 'e' for C-V-C+e stems ("crashe" stays stripped, but
    // "creat(ed)" -> "create" via the common -at -> -ate rule).
    if (ends(t, "at") || ends(t, "bl") || ends(t, "iz")) t += 'e';
  }

  // Step 2 subset: common derivational suffixes seen in bug prose.
  struct Rule {
    std::string_view from, to;
  };
  static constexpr Rule kRules[] = {
      {"ization", "ize"}, {"ational", "ate"}, {"fulness", "ful"},
      {"ousness", "ous"}, {"iveness", "ive"}, {"tional", "tion"},
      {"biliti", "ble"},  {"ation", "ate"},   {"alism", "al"},
      {"aliti", "al"},    {"iviti", "ive"},   {"ment", "ment"},
  };
  for (const auto& r : kRules) {
    if (ends(t, r.from) && t.size() - r.from.size() >= 2) {
      t.resize(t.size() - r.from.size());
      t += r.to;
      break;
    }
  }

  // Final -e removal for length >= 5 ("crashe" would not arise, but
  // "segfaulte" style artifacts collapse).
  if (t.size() >= 5 && t.back() == 'e' && !is_vowel(t[t.size() - 2])) {
    t.resize(t.size() - 1);
  }
  return t;
}

std::vector<std::string> stem_all(std::vector<std::string> tokens) {
  for (auto& t : tokens) t = stem(t);
  return tokens;
}

}  // namespace faultstudy::text
