#include "text/tokenizer.hpp"

#include <cctype>

namespace faultstudy::text {

namespace {
bool is_word_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}
bool is_joiner(char c) { return c == '.' || c == '-'; }
}  // namespace

std::vector<std::string> tokenize(std::string_view input,
                                  const TokenizerOptions& options) {
  std::vector<std::string> tokens;
  std::size_t i = 0;
  while (i < input.size()) {
    if (!is_word_char(input[i])) {
      ++i;
      continue;
    }
    const std::size_t start = i;
    while (i < input.size()) {
      if (is_word_char(input[i])) {
        ++i;
      } else if (is_joiner(input[i]) && i + 1 < input.size() &&
                 is_word_char(input[i + 1])) {
        i += 2;  // joiner plus the character that legitimized it
      } else {
        break;
      }
    }
    std::string tok(input.substr(start, i - start));
    if (options.lowercase) {
      for (char& c : tok) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
    if (!options.keep_numbers) {
      bool all_digit_or_punct = true;
      for (char c : tok) {
        if (std::isalpha(static_cast<unsigned char>(c))) {
          all_digit_or_punct = false;
          break;
        }
      }
      if (all_digit_or_punct) continue;
    }
    if (tok.size() >= options.min_length) tokens.push_back(std::move(tok));
  }
  return tokens;
}

std::vector<std::string> ngrams(const std::vector<std::string>& tokens,
                                std::size_t n) {
  std::vector<std::string> out;
  if (n == 0 || tokens.size() < n) return out;
  out.reserve(tokens.size() - n + 1);
  for (std::size_t i = 0; i + n <= tokens.size(); ++i) {
    std::string gram = tokens[i];
    for (std::size_t j = 1; j < n; ++j) {
      gram += '_';
      gram += tokens[i + j];
    }
    out.push_back(std::move(gram));
  }
  return out;
}

}  // namespace faultstudy::text
