// English stopword list tuned for bug-report prose.
#pragma once

#include <string_view>
#include <vector>

namespace faultstudy::text {

/// True for common English function words. Domain words that look like
/// stopwords but carry signal in bug reports ("out" as in "out of memory")
/// are intentionally NOT stopped.
bool is_stopword(std::string_view token);

/// Removes stopwords, preserving order of the survivors.
std::vector<std::string> remove_stopwords(std::vector<std::string> tokens);

}  // namespace faultstudy::text
