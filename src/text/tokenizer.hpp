// Tokenization for bug-report text.
//
// Bug reports mix prose with code fragments, version numbers, signal names,
// and URLs; the tokenizer keeps tokens like "sigsegv", "va_list" and "2.0.36"
// intact because they carry most of the classification signal.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace faultstudy::text {

struct TokenizerOptions {
  bool lowercase = true;
  bool keep_numbers = true;
  /// Drop tokens shorter than this many characters after normalization.
  std::size_t min_length = 2;
};

/// Splits text into word tokens. A token is a maximal run of [A-Za-z0-9_]
/// optionally containing internal '.' or '-' when flanked by alphanumerics
/// (so "2.0.36", "va_list" and "tar.gz" each survive as one token).
std::vector<std::string> tokenize(std::string_view input,
                                  const TokenizerOptions& options = {});

/// Contiguous word n-grams over a token sequence, joined with '_'.
/// n must be >= 1; returns empty when tokens.size() < n.
std::vector<std::string> ngrams(const std::vector<std::string>& tokens,
                                std::size_t n);

}  // namespace faultstudy::text
