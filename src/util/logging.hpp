// Minimal leveled logger.
//
// The experiment harness produces machine-readable transcripts through
// harness::Transcript; this logger exists only for human-facing diagnostics
// in examples and debugging, so it is deliberately tiny: a global level and
// free functions writing to stderr. Each line is formatted into one buffer
// and flushed with a single write, so messages from concurrent executor
// lanes never interleave mid-line, and each carries the lane id that wrote
// it (util::current_lane()).
#pragma once

#include <optional>
#include <string_view>

namespace faultstudy::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global threshold; messages below it are dropped.
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// The level's lowercase flag spelling ("debug", "info", ...).
std::string_view to_string(LogLevel level) noexcept;

/// Parses a --log-level= flag value ("debug", "info", "warn", "error",
/// "off", case-sensitive); nullopt on anything else.
std::optional<LogLevel> parse_log_level(std::string_view text) noexcept;

void log(LogLevel level, std::string_view component, std::string_view message);

inline void log_debug(std::string_view c, std::string_view m) {
  log(LogLevel::kDebug, c, m);
}
inline void log_info(std::string_view c, std::string_view m) {
  log(LogLevel::kInfo, c, m);
}
inline void log_warn(std::string_view c, std::string_view m) {
  log(LogLevel::kWarn, c, m);
}
inline void log_error(std::string_view c, std::string_view m) {
  log(LogLevel::kError, c, m);
}

}  // namespace faultstudy::util
