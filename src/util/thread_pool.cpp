#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <limits>
#include <mutex>
#include <string>

namespace faultstudy::util {

std::size_t resolve_threads(std::size_t requested) noexcept {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("FAULTSTUDY_THREADS")) {
    char* end = nullptr;
    const unsigned long parsed = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && parsed > 0) {
      return static_cast<std::size_t>(parsed);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

/// One for_index sweep in flight. Indices are claimed in contiguous chunks
/// from `cursor`; `completed` counts indices accounted for (run or skipped
/// after abort) so the caller knows when the range has drained.
struct ThreadPool::Sweep {
  std::size_t n = 0;
  std::size_t chunk = 1;
  const std::function<void(std::size_t)>* fn = nullptr;
  std::atomic<std::size_t> cursor{0};
  std::atomic<std::size_t> completed{0};
  std::atomic<bool> abort{false};
  std::mutex error_mutex;
  std::exception_ptr error;
  std::size_t error_chunk = std::numeric_limits<std::size_t>::max();
};

struct ThreadPool::State {
  std::mutex mutex;
  std::condition_variable work_cv;  ///< workers sleep here between sweeps
  std::condition_variable done_cv;  ///< the caller waits for drain here
  Sweep* sweep = nullptr;           ///< current sweep, nullptr when idle
  std::uint64_t generation = 0;     ///< bumped once per sweep
  std::size_t active = 0;           ///< workers currently inside the sweep
  bool stop = false;
};

ThreadPool::ThreadPool(std::size_t threads)
    : state_(std::make_unique<State>()) {
  const std::size_t workers = threads > 1 ? threads - 1 : 0;
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(state_->mutex);
    state_->stop = true;
  }
  state_->work_cv.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::run_chunks(Sweep& sweep) {
  for (;;) {
    const std::size_t begin = sweep.cursor.fetch_add(sweep.chunk);
    if (begin >= sweep.n) return;
    const std::size_t end = std::min(begin + sweep.chunk, sweep.n);
    if (!sweep.abort.load(std::memory_order_relaxed)) {
      try {
        for (std::size_t i = begin; i < end; ++i) (*sweep.fn)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(sweep.error_mutex);
        if (begin < sweep.error_chunk) {
          sweep.error_chunk = begin;
          sweep.error = std::current_exception();
        }
        sweep.abort.store(true, std::memory_order_relaxed);
      }
    }
    sweep.completed.fetch_add(end - begin);
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(state_->mutex);
  for (;;) {
    state_->work_cv.wait(lock, [&] {
      return state_->stop ||
             (state_->generation != seen && state_->sweep != nullptr);
    });
    if (state_->stop) return;
    seen = state_->generation;
    Sweep& sweep = *state_->sweep;
    ++state_->active;
    lock.unlock();
    run_chunks(sweep);
    lock.lock();
    --state_->active;
    state_->done_cv.notify_all();
  }
}

void ThreadPool::for_index(std::size_t n,
                           const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    // The exact serial code path: no pool state is touched at all.
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  Sweep sweep;
  sweep.n = n;
  sweep.fn = &fn;
  // Chunks small enough to balance uneven items across lanes, large enough
  // to amortize the claim; clamped so tiny sweeps still fan out.
  sweep.chunk =
      std::min<std::size_t>(64, std::max<std::size_t>(1, n / (size() * 8)));

  {
    std::lock_guard<std::mutex> lock(state_->mutex);
    state_->sweep = &sweep;
    ++state_->generation;
  }
  state_->work_cv.notify_all();

  run_chunks(sweep);  // the calling thread is a lane too

  {
    std::unique_lock<std::mutex> lock(state_->mutex);
    state_->done_cv.wait(lock, [&] {
      return sweep.completed.load() == n && state_->active == 0;
    });
    state_->sweep = nullptr;
  }
  if (sweep.error) std::rethrow_exception(sweep.error);
}

void parallel_for_index(std::size_t n, std::size_t threads,
                        const std::function<void(std::size_t)>& fn) {
  const std::size_t lanes = resolve_threads(threads);
  if (lanes <= 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  ThreadPool pool(lanes);
  pool.for_index(n, fn);
}

}  // namespace faultstudy::util
