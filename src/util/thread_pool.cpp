#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <limits>
#include <mutex>
#include <string>

namespace faultstudy::util {

namespace {
/// 0 outside any pool; workers overwrite this once at thread start.
thread_local std::size_t t_lane = 0;

/// Sink for transient parallel_for_index pools; flipped serially only.
PoolStats* g_ambient_stats = nullptr;

std::size_t latency_bucket(std::uint64_t micros) noexcept {
  std::size_t b = 0;
  while (micros > 1 && b + 1 < PoolStats::kLatencyBuckets) {
    micros >>= 1;
    ++b;
  }
  return b;
}
}  // namespace

std::size_t current_lane() noexcept { return t_lane; }

void set_ambient_pool_stats(PoolStats* stats) noexcept {
  g_ambient_stats = stats;
}

PoolStats* ambient_pool_stats() noexcept { return g_ambient_stats; }

std::size_t resolve_threads(std::size_t requested) noexcept {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("FAULTSTUDY_THREADS")) {
    char* end = nullptr;
    const unsigned long parsed = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && parsed > 0) {
      return static_cast<std::size_t>(parsed);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

/// One for_index sweep in flight. Indices are claimed in contiguous chunks
/// from `cursor`; `completed` counts indices accounted for (run or skipped
/// after abort) so the caller knows when the range has drained.
struct ThreadPool::Sweep {
  std::size_t n = 0;
  std::size_t chunk = 1;
  const std::function<void(std::size_t)>* fn = nullptr;
  PoolStats* stats = nullptr;  ///< lanes pre-sized; one writer per slot
  std::atomic<std::size_t> cursor{0};
  std::atomic<std::size_t> completed{0};
  std::atomic<bool> abort{false};
  std::mutex error_mutex;
  std::exception_ptr error;
  std::size_t error_chunk = std::numeric_limits<std::size_t>::max();
};

struct ThreadPool::State {
  std::mutex mutex;
  std::condition_variable work_cv;  ///< workers sleep here between sweeps
  std::condition_variable done_cv;  ///< the caller waits for drain here
  Sweep* sweep = nullptr;           ///< current sweep, nullptr when idle
  std::uint64_t generation = 0;     ///< bumped once per sweep
  std::size_t active = 0;           ///< workers currently inside the sweep
  bool stop = false;
};

ThreadPool::ThreadPool(std::size_t threads)
    : state_(std::make_unique<State>()) {
  const std::size_t workers = threads > 1 ? threads - 1 : 0;
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this, lane = i + 1] {
      t_lane = lane;
      worker_loop();
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(state_->mutex);
    state_->stop = true;
  }
  state_->work_cv.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::run_chunks(Sweep& sweep) {
  PoolStats::Lane* lane =
      sweep.stats != nullptr ? &sweep.stats->lanes[current_lane()] : nullptr;
  for (;;) {
    const std::size_t begin = sweep.cursor.fetch_add(sweep.chunk);
    if (begin >= sweep.n) return;
    const std::size_t end = std::min(begin + sweep.chunk, sweep.n);
    if (!sweep.abort.load(std::memory_order_relaxed)) {
      const auto chunk_start = lane != nullptr
                                   ? std::chrono::steady_clock::now()
                                   : std::chrono::steady_clock::time_point{};
      try {
        for (std::size_t i = begin; i < end; ++i) (*sweep.fn)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(sweep.error_mutex);
        if (begin < sweep.error_chunk) {
          sweep.error_chunk = begin;
          sweep.error = std::current_exception();
        }
        sweep.abort.store(true, std::memory_order_relaxed);
      }
      if (lane != nullptr) {
        const auto micros = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - chunk_start)
                .count());
        ++lane->chunks;
        lane->indices += end - begin;
        lane->micros += micros;
        ++lane->latency_log2_us[latency_bucket(micros)];
        lane->max_pending =
            std::max<std::uint64_t>(lane->max_pending, sweep.n - begin);
      }
    }
    sweep.completed.fetch_add(end - begin);
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(state_->mutex);
  for (;;) {
    state_->work_cv.wait(lock, [&] {
      return state_->stop ||
             (state_->generation != seen && state_->sweep != nullptr);
    });
    if (state_->stop) return;
    seen = state_->generation;
    Sweep& sweep = *state_->sweep;
    ++state_->active;
    lock.unlock();
    run_chunks(sweep);
    lock.lock();
    --state_->active;
    state_->done_cv.notify_all();
  }
}

void ThreadPool::for_index(std::size_t n,
                           const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    // The exact serial code path: no pool state is touched at all.
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  Sweep sweep;
  sweep.n = n;
  sweep.fn = &fn;
  sweep.stats = stats_;
  if (stats_ != nullptr) ++stats_->sweeps;
  // Chunks small enough to balance uneven items across lanes, large enough
  // to amortize the claim; clamped so tiny sweeps still fan out.
  sweep.chunk =
      std::min<std::size_t>(64, std::max<std::size_t>(1, n / (size() * 8)));

  {
    std::lock_guard<std::mutex> lock(state_->mutex);
    state_->sweep = &sweep;
    ++state_->generation;
  }
  state_->work_cv.notify_all();

  run_chunks(sweep);  // the calling thread is a lane too

  {
    std::unique_lock<std::mutex> lock(state_->mutex);
    state_->done_cv.wait(lock, [&] {
      return sweep.completed.load() == n && state_->active == 0;
    });
    state_->sweep = nullptr;
  }
  if (sweep.error) std::rethrow_exception(sweep.error);
}

void parallel_for_index(std::size_t n, std::size_t threads,
                        const std::function<void(std::size_t)>& fn) {
  const std::size_t lanes = resolve_threads(threads);
  if (lanes <= 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  ThreadPool pool(lanes);
  pool.set_stats(g_ambient_stats);
  pool.for_index(n, fn);
}

}  // namespace faultstudy::util
