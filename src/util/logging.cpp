#include "util/logging.hpp"

#include <atomic>
#include <cstdio>
#include <string>

#include "util/thread_pool.hpp"

namespace faultstudy::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }
LogLevel log_level() noexcept { return g_level.load(); }

std::string_view to_string(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "?";
}

std::optional<LogLevel> parse_log_level(std::string_view text) noexcept {
  if (text == "debug") return LogLevel::kDebug;
  if (text == "info") return LogLevel::kInfo;
  if (text == "warn") return LogLevel::kWarn;
  if (text == "error") return LogLevel::kError;
  if (text == "off") return LogLevel::kOff;
  return std::nullopt;
}

void log(LogLevel level, std::string_view component, std::string_view message) {
  if (level < g_level.load()) return;
  // Pre-format the whole line and flush it with one write: lines from
  // concurrent executor lanes never interleave mid-line, and the lane id
  // says which lane spoke (0 = the calling/serial thread).
  std::string line;
  line.reserve(component.size() + message.size() + 24);
  line += '[';
  line += level_name(level);
  line += "][lane ";
  line += std::to_string(current_lane());
  line += "] ";
  line.append(component);
  line += ": ";
  line.append(message);
  line += '\n';
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace faultstudy::util
