#include "util/logging.hpp"

#include <atomic>
#include <cstdio>

namespace faultstudy::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }
LogLevel log_level() noexcept { return g_level.load(); }

void log(LogLevel level, std::string_view component, std::string_view message) {
  if (level < g_level.load()) return;
  std::fprintf(stderr, "[%s] %.*s: %.*s\n", level_name(level),
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(message.size()), message.data());
}

}  // namespace faultstudy::util
