#include "util/strings.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>

namespace faultstudy::util {

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string_view> split_ws(std::string_view s) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    const std::size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.push_back(s.substr(start, i - start));
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool icontains(std::string_view haystack, std::string_view needle) {
  if (needle.empty()) return true;
  if (needle.size() > haystack.size()) return false;
  const auto lower = [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  };
  for (std::size_t i = 0; i + needle.size() <= haystack.size(); ++i) {
    bool match = true;
    for (std::size_t j = 0; j < needle.size(); ++j) {
      if (lower(static_cast<unsigned char>(haystack[i + j])) !=
          lower(static_cast<unsigned char>(needle[j]))) {
        match = false;
        break;
      }
    }
    if (match) return true;
  }
  return false;
}

std::string replace_all(std::string_view s, std::string_view from,
                        std::string_view to) {
  if (from.empty()) return std::string(s);
  std::string out;
  out.reserve(s.size());
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(from, start);
    if (pos == std::string_view::npos) {
      out.append(s.substr(start));
      return out;
    }
    out.append(s.substr(start, pos - start));
    out.append(to);
    start = pos + from.size();
  }
}

std::string pad_left(std::string_view s, std::size_t width) {
  std::string out;
  if (s.size() < width) out.assign(width - s.size(), ' ');
  out += s;
  return out;
}

std::string pad_right(std::string_view s, std::size_t width) {
  std::string out(s);
  if (out.size() < width) out.append(width - out.size(), ' ');
  return out;
}

std::string fixed(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::string percent(double fraction, int digits) {
  return fixed(fraction * 100.0, digits) + "%";
}

}  // namespace faultstudy::util
