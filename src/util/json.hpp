// A minimal JSON reader for the library's own machine-readable artifacts
// (BENCH_*.json, baselines/study_baseline.json, telemetry snapshots).
//
// This is a reader for documents the library itself writes: strict JSON,
// no comments, UTF-8 passed through verbatim. Numbers keep both an integer
// and a double view because every deterministic artifact is integer-valued
// while bench timings are not.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/result.hpp"

namespace faultstudy::util::json {

class Value {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  /// Integer view of a number token without a fraction/exponent part;
  /// valid iff `is_integer`.
  std::int64_t integer = 0;
  bool is_integer = false;
  std::string str;
  std::vector<Value> array;
  /// Insertion-ordered members (canonical writers emit a fixed order).
  std::vector<std::pair<std::string, Value>> object;

  bool is_null() const noexcept { return kind == Kind::kNull; }
  bool is_object() const noexcept { return kind == Kind::kObject; }
  bool is_array() const noexcept { return kind == Kind::kArray; }
  bool is_string() const noexcept { return kind == Kind::kString; }
  bool is_number() const noexcept { return kind == Kind::kNumber; }

  /// Member lookup; nullptr when absent or not an object.
  const Value* find(std::string_view key) const noexcept;

  /// Convenience accessors with defaults for optional members.
  std::int64_t int_or(std::string_view key, std::int64_t fallback) const;
  double number_or(std::string_view key, double fallback) const;
  std::string string_or(std::string_view key, std::string fallback) const;
};

/// Parses one JSON document; trailing non-whitespace is an error.
Result<Value> parse(std::string_view text);

/// Escapes a string for embedding in a JSON document (quotes not included).
std::string escape(std::string_view text);

}  // namespace faultstudy::util::json
