// Deterministic parallel execution substrate.
//
// The experiment harness and the mining pipeline both sweep large index
// spaces of *independent* work (one trial per (mechanism, seed) cell, one
// tokenization per report). The executor here parallelizes such sweeps
// while keeping results bit-identical to a serial run: work is scheduled by
// index in fixed-size chunks, every result is written into a pre-sized slot
// owned by its index, and all reduction happens on the calling thread in
// index order after the pool drains. Nothing observable depends on thread
// timing — only on the indices, which are the same in every run.
//
// Thread-count resolution (`resolve_threads`): an explicit request wins;
// otherwise the FAULTSTUDY_THREADS environment variable; otherwise
// std::thread::hardware_concurrency(). A resolved count of 1 runs the exact
// serial code path on the calling thread — no pool, no synchronization.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

namespace faultstudy::util {

/// Effective worker count for a parallel sweep.
///   requested > 0  -> requested (an explicit config/flag value wins);
///   requested == 0 -> FAULTSTUDY_THREADS if set to a positive integer,
///                     else hardware_concurrency(), never less than 1.
std::size_t resolve_threads(std::size_t requested = 0) noexcept;

/// The executing thread's lane index: 0 for a thread that is not a pool
/// worker (including every sweep's calling thread), 1..N-1 for workers of
/// the pool they belong to. Stable for the life of the thread, so it can
/// shard lock-free telemetry (one writer per lane slot).
std::size_t current_lane() noexcept;

/// Wall-clock self-profiling for a pool, sharded one cache line per lane so
/// concurrent lanes never contend. Wall time is a real measurement — these
/// stats live in the telemetry wall domain and never participate in
/// determinism comparisons. Self-contained (plain integers, no telemetry
/// dependency) so fs_util stays the bottom of the library stack.
struct PoolStats {
  static constexpr std::size_t kLatencyBuckets = 20;

  struct alignas(64) Lane {
    std::uint64_t chunks = 0;   ///< chunks this lane claimed
    std::uint64_t indices = 0;  ///< indices this lane executed
    std::uint64_t micros = 0;   ///< total wall time inside chunk bodies
    /// Chunk wall-latency histogram, bucket b = [2^b, 2^(b+1)) microseconds.
    std::array<std::uint64_t, kLatencyBuckets> latency_log2_us{};
    /// High-watermark of indices still unclaimed when this lane claimed.
    std::uint64_t max_pending = 0;
  };

  std::uint64_t sweeps = 0;  ///< written by the sweep's calling thread only
  std::vector<Lane> lanes;   ///< one slot per lane, index = current_lane()

  void reset(std::size_t lane_count) {
    sweeps = 0;
    lanes.assign(lane_count, Lane{});
  }
};

/// Fixed-size worker pool with chunked index scheduling.
///
/// `for_index(n, fn)` runs fn(i) exactly once for every i in [0, n) and
/// returns when all calls have completed. Indices are claimed in contiguous
/// chunks from an atomic cursor, so which *thread* runs an index is timing-
/// dependent, but callers that write only to per-index state observe no
/// difference from a serial loop. If any fn throws, the first exception (by
/// lowest claimed chunk among throwers) is rethrown on the calling thread
/// after the sweep drains; remaining unclaimed chunks are skipped.
///
/// A pool constructed with `threads <= 1` spawns no workers at all:
/// for_index degenerates to the plain serial loop on the calling thread,
/// which is the exact pre-parallel code path.
class ThreadPool {
 public:
  /// `threads` counts the calling thread too: a pool of size 4 spawns 3
  /// workers and the caller participates in every sweep.
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total execution lanes (workers + the calling thread); >= 1.
  std::size_t size() const noexcept { return workers_.size() + 1; }

  /// Attaches a self-profiling sink (resized to size() lanes); nullptr
  /// detaches. Serial-only — call between sweeps, not during one.
  void set_stats(PoolStats* stats) {
    stats_ = stats;
    if (stats_ != nullptr && stats_->lanes.size() < size()) {
      stats_->lanes.resize(size());
    }
  }

  void for_index(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  struct Sweep;
  void worker_loop();
  static void run_chunks(Sweep& sweep);

  std::vector<std::thread> workers_;
  // Guarded by mutex_ in thread_pool.cpp via the Impl-free layout below.
  struct State;
  std::unique_ptr<State> state_;
  PoolStats* stats_ = nullptr;
};

/// Ambient self-profiling sink for the transient pools parallel_for_index
/// creates (callers never see those pools, so they cannot call set_stats on
/// them). Set serially before a sweep and clear afterwards; nullptr (the
/// default) disables. Not thread-safe: only the thread driving the sweeps
/// may flip it.
void set_ambient_pool_stats(PoolStats* stats) noexcept;
PoolStats* ambient_pool_stats() noexcept;

/// fn(i) for every i in [0, n), using `threads` lanes (resolved via
/// resolve_threads). Results are deterministic per the contract above.
/// Convenience for one-shot sweeps; hot callers that sweep repeatedly
/// should hold a ThreadPool. Picks up the ambient PoolStats sink, if any.
void parallel_for_index(std::size_t n, std::size_t threads,
                        const std::function<void(std::size_t)>& fn);

/// Maps [0, n) through fn into a pre-sized vector, one slot per index;
/// out[i] is fn(i) regardless of scheduling, so the result equals the
/// serial map for any thread count.
template <typename T, typename Fn>
std::vector<T> parallel_map(std::size_t n, std::size_t threads, Fn&& fn) {
  std::vector<T> out(n);
  parallel_for_index(n, threads,
                     [&](std::size_t i) { out[i] = fn(i); });
  return out;
}

}  // namespace faultstudy::util
