// A minimal expected-like Result<T, E>.
//
// gcc 12 does not ship std::expected (C++23), so the library carries its own
// small, value-semantic result type. Error paths inside the simulator are
// ordinary values (a simulated fault is data, not a C++ exception), so the
// library reserves exceptions for programmer errors at API boundaries.
#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace faultstudy::util {

/// Tag wrapper so Result<T, E> construction is unambiguous even when T and E
/// are the same type.
template <typename E>
struct Err {
  E value;
};

template <typename E>
Err(E) -> Err<E>;

template <typename T, typename E = std::string>
class [[nodiscard]] Result {
 public:
  // Implicit construction from a success value or an Err<E> keeps call
  // sites readable: `return parsed;` / `return Err{"bad field"};`.
  Result(T value) : payload_(std::in_place_index<0>, std::move(value)) {}
  Result(Err<E> err) : payload_(std::in_place_index<1>, std::move(err.value)) {}

  bool ok() const noexcept { return payload_.index() == 0; }
  explicit operator bool() const noexcept { return ok(); }

  const T& value() const& {
    assert(ok());
    return std::get<0>(payload_);
  }
  T& value() & {
    assert(ok());
    return std::get<0>(payload_);
  }
  T&& value() && {
    assert(ok());
    return std::get<0>(std::move(payload_));
  }

  const E& error() const& {
    assert(!ok());
    return std::get<1>(payload_);
  }

  T value_or(T fallback) const& {
    return ok() ? std::get<0>(payload_) : std::move(fallback);
  }

  /// Applies `fn` to the success value, propagating errors unchanged.
  template <typename Fn>
  auto map(Fn&& fn) const& -> Result<decltype(fn(std::declval<const T&>())), E> {
    if (ok()) return fn(value());
    return Err<E>{error()};
  }

 private:
  std::variant<T, E> payload_;
};

}  // namespace faultstudy::util
