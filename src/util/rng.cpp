#include "util/rng.hpp"

#include <cmath>

namespace faultstudy::util {

std::uint64_t Rng::below(std::uint64_t bound) noexcept {
  if (bound <= 1) return 0;
  // Lemire's nearly-divisionless method.
  std::uint64_t x = next_u64();
  unsigned __int128 m = static_cast<unsigned __int128>(x) * bound;
  auto l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    const std::uint64_t t = (0 - bound) % bound;
    while (l < t) {
      x = next_u64();
      m = static_cast<unsigned __int128>(x) * bound;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::between(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  return lo + static_cast<std::int64_t>(below(span));
}

double Rng::uniform() noexcept {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

int Rng::poisson(double mean) noexcept {
  if (mean <= 0.0) return 0;
  if (mean > 64.0) {
    // Normal approximation with continuity correction; adequate for the
    // corpus-size draws this library makes.
    const double u1 = uniform();
    const double u2 = uniform();
    const double z =
        std::sqrt(-2.0 * std::log(u1 + 1e-300)) * std::cos(6.283185307179586 * u2);
    const double v = mean + std::sqrt(mean) * z + 0.5;
    return v < 0.0 ? 0 : static_cast<int>(v);
  }
  const double limit = std::exp(-mean);
  double prod = uniform();
  int n = 0;
  while (prod > limit) {
    prod *= uniform();
    ++n;
  }
  return n;
}

int Rng::geometric(double p) noexcept {
  if (p >= 1.0) return 0;
  if (p <= 0.0) return 0;
  int n = 0;
  while (!chance(p) && n < 1 << 20) ++n;
  return n;
}

std::size_t Rng::weighted_pick(std::span<const double> weights) noexcept {
  double total = 0.0;
  for (double w : weights) total += w > 0.0 ? w : 0.0;
  if (total <= 0.0) return weights.size();
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (target < w) return i;
    target -= w;
  }
  return weights.size() - 1;  // floating-point slack lands on the last bin
}

}  // namespace faultstudy::util
