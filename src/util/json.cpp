#include "util/json.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace faultstudy::util::json {

namespace {

/// Recursive-descent parser over a string_view with a depth cap (the
/// library's own documents nest a handful of levels; 64 is generous).
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Value> run() {
    skip_ws();
    Value root;
    if (!parse_value(root, 0)) return Err{error_};
    skip_ws();
    if (pos_ != text_.size()) {
      return Err{err("trailing characters after document")};
    }
    return root;
  }

 private:
  static constexpr int kMaxDepth = 64;

  bool parse_value(Value& out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{': return parse_object(out, depth);
      case '[': return parse_array(out, depth);
      case '"': return parse_string_value(out);
      case 't':
      case 'f': return parse_bool(out);
      case 'n': return parse_null(out);
      default: return parse_number(out);
    }
  }

  bool parse_object(Value& out, int depth) {
    out.kind = Value::Kind::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (peek('}')) return true;
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (!expect(':')) return false;
      skip_ws();
      Value member;
      if (!parse_value(member, depth + 1)) return false;
      out.object.emplace_back(std::move(key), std::move(member));
      skip_ws();
      if (peek(',')) continue;
      if (peek('}')) return true;
      return fail("expected ',' or '}' in object");
    }
  }

  bool parse_array(Value& out, int depth) {
    out.kind = Value::Kind::kArray;
    ++pos_;  // '['
    skip_ws();
    if (peek(']')) return true;
    while (true) {
      skip_ws();
      Value element;
      if (!parse_value(element, depth + 1)) return false;
      out.array.push_back(std::move(element));
      skip_ws();
      if (peek(',')) continue;
      if (peek(']')) return true;
      return fail("expected ',' or ']' in array");
    }
  }

  bool parse_string_value(Value& out) {
    out.kind = Value::Kind::kString;
    return parse_string(out.str);
  }

  bool parse_string(std::string& out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return fail("expected string");
    }
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          // The library's writers never emit \u escapes for ASCII; decode
          // the basic-plane scalar into UTF-8 so foreign documents parse.
          if (pos_ + 4 > text_.size()) return fail("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              return fail("bad \\u escape");
          }
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }

  bool parse_bool(Value& out) {
    if (text_.substr(pos_, 4) == "true") {
      out.kind = Value::Kind::kBool;
      out.boolean = true;
      pos_ += 4;
      return true;
    }
    if (text_.substr(pos_, 5) == "false") {
      out.kind = Value::Kind::kBool;
      out.boolean = false;
      pos_ += 5;
      return true;
    }
    return fail("expected true/false");
  }

  bool parse_null(Value& out) {
    if (text_.substr(pos_, 4) == "null") {
      out.kind = Value::Kind::kNull;
      pos_ += 4;
      return true;
    }
    return fail("expected null");
  }

  bool parse_number(Value& out) {
    const std::size_t start = pos_;
    bool fractional = false;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        fractional = true;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    out.kind = Value::Kind::kNumber;
    out.number = std::strtod(token.c_str(), &end);
    if (end == token.c_str() || *end != '\0') return fail("malformed number");
    if (!fractional) {
      out.integer = std::strtoll(token.c_str(), nullptr, 10);
      out.is_integer = true;
    }
    return true;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool peek(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool expect(char c) {
    if (peek(c)) return true;
    return fail(std::string("expected '") + c + "'");
  }

  bool fail(std::string message) {
    if (error_.empty()) error_ = err(std::move(message));
    return false;
  }

  std::string err(std::string message) const {
    return message + " at offset " + std::to_string(pos_);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

const Value* Value::find(std::string_view key) const noexcept {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [name, value] : object) {
    if (name == key) return &value;
  }
  return nullptr;
}

std::int64_t Value::int_or(std::string_view key, std::int64_t fallback) const {
  const Value* v = find(key);
  return v != nullptr && v->is_number() && v->is_integer ? v->integer
                                                         : fallback;
}

double Value::number_or(std::string_view key, double fallback) const {
  const Value* v = find(key);
  return v != nullptr && v->is_number() ? v->number : fallback;
}

std::string Value::string_or(std::string_view key, std::string fallback) const {
  const Value* v = find(key);
  return v != nullptr && v->is_string() ? v->str : std::move(fallback);
}

Result<Value> parse(std::string_view text) {
  return Parser(text).run();
}

std::string escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace faultstudy::util::json
