// Deterministic pseudo-random number generation.
//
// Every stochastic component in the library (synthetic corpus generation,
// thread-interleaving draws, workload jitter) consumes randomness through
// this header so that every table and figure in the reproduction is
// bit-reproducible from a seed. We deliberately avoid std::mt19937 +
// std::uniform_int_distribution because the distribution implementations
// are not specified bit-exactly across standard libraries; the generators
// and the distribution mappings here are fully specified by this file.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <string_view>
#include <vector>

namespace faultstudy::util {

/// SplitMix64: used to expand a single 64-bit seed into generator state.
/// Passes BigCrush when used directly; here it is the seeding PRNG.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna). The library's workhorse generator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words via SplitMix64, as the authors recommend.
  explicit constexpr Xoshiro256(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& w : s_) w = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept { return next(); }

  constexpr std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Equivalent to 2^128 calls to next(); used to derive independent
  /// sub-streams from one seed (e.g. one stream per simulated application).
  constexpr void jump() noexcept {
    constexpr std::uint64_t kJump[] = {0x180ec6d33cfd0abaULL,
                                       0xd5a61266f0c9392cULL,
                                       0xa9582618e03fc9aaULL,
                                       0x39abdc4529b1661cULL};
    std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
    for (std::uint64_t jump : kJump) {
      for (int b = 0; b < 64; ++b) {
        if (jump & (1ULL << b)) {
          s0 ^= s_[0];
          s1 ^= s_[1];
          s2 ^= s_[2];
          s3 ^= s_[3];
        }
        next();
      }
    }
    s_[0] = s0;
    s_[1] = s1;
    s_[2] = s2;
    s_[3] = s3;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4]{};
};

/// Convenience wrapper bundling a generator with bias-free distribution
/// mappings. All library code takes `Rng&` rather than a raw generator.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept : gen_(seed) {}

  std::uint64_t next_u64() noexcept { return gen_.next(); }

  /// Uniform in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t between(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1) with 53 bits of precision.
  double uniform() noexcept;

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool chance(double p) noexcept;

  /// Poisson-distributed count with the given mean (Knuth's algorithm for
  /// small means; normal approximation above 64 to bound the loop).
  int poisson(double mean) noexcept;

  /// Geometric: number of failures before first success, success prob p.
  int geometric(double p) noexcept;

  /// Picks an index from a discrete distribution given by non-negative
  /// weights; returns weights.size() if all weights are zero.
  std::size_t weighted_pick(std::span<const double> weights) noexcept;

  /// Uniformly picks one element of a non-empty span.
  template <typename T>
  const T& pick(std::span<const T> items) noexcept {
    return items[static_cast<std::size_t>(below(items.size()))];
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) noexcept {
    if (items.size() < 2) return;
    for (std::size_t i = items.size() - 1; i > 0; --i) {
      using std::swap;
      swap(items[i], items[static_cast<std::size_t>(below(i + 1))]);
    }
  }

  /// Derives an independent child stream (used to give each subsystem its
  /// own stream so adding draws in one place does not perturb another).
  Rng fork() noexcept {
    Rng child(*this);
    child.gen_.jump();
    gen_.next();  // decorrelate the parent as well
    return child;
  }

 private:
  Xoshiro256 gen_;
};

/// Stable 64-bit FNV-1a hash of a string; used to derive per-entity seeds
/// ("seed for bug #1234 of corpus apache") that do not depend on iteration
/// order.
constexpr std::uint64_t fnv1a(std::string_view s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace faultstudy::util
