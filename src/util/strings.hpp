// Small string utilities shared across the text-mining pipeline and the
// report renderers. All functions are pure and allocate only when the result
// requires it.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace faultstudy::util {

/// Splits on a single separator character; empty fields are preserved.
std::vector<std::string_view> split(std::string_view s, char sep);

/// Splits on any run of ASCII whitespace; no empty fields.
std::vector<std::string_view> split_ws(std::string_view s);

std::string join(const std::vector<std::string>& parts, std::string_view sep);

std::string_view trim(std::string_view s);

std::string to_lower(std::string_view s);

bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

/// Case-insensitive substring test (ASCII).
bool icontains(std::string_view haystack, std::string_view needle);

/// Replaces every occurrence of `from` with `to`.
std::string replace_all(std::string_view s, std::string_view from,
                        std::string_view to);

/// Left-pads / right-pads with spaces to at least `width` columns.
std::string pad_left(std::string_view s, std::size_t width);
std::string pad_right(std::string_view s, std::size_t width);

/// Formats a double with `digits` places after the point (no locale).
std::string fixed(double v, int digits);

/// Formats a proportion as a percentage string, e.g. 0.1234 -> "12.3%".
std::string percent(double fraction, int digits = 1);

}  // namespace faultstudy::util
