#include "telemetry/trial.hpp"

#include <algorithm>
#include <array>

namespace faultstudy::telemetry {
namespace {

std::string joined(std::string_view head, std::string_view tail) {
  std::string out;
  out.reserve(head.size() + tail.size() + 1);
  out.append(head);
  out.push_back('/');
  out.append(tail);
  return out;
}

}  // namespace

TrialTelemetry::TrialTelemetry()
    : recovery_latency_ticks(default_tick_bounds()),
      item_latency_ticks(default_tick_bounds()) {}

void fold_into(const TrialTelemetry& trial, std::string_view mechanism,
               MetricsRegistry& registry, std::size_t shard) {
  const auto add = [&](std::string_view name, std::uint64_t n) {
    if (n > 0) registry.add(registry.counter(name), n, shard);
  };
  const auto peak = [&](std::string_view name, std::uint64_t high) {
    registry.peak(registry.gauge(name), static_cast<std::int64_t>(high),
                  shard);
  };

  const ResourceCounters& r = trial.counters.resources;
  add("env/proc/spawns", r.proc_spawns);
  add("env/proc/spawn_failures", r.proc_spawn_failures);
  add("env/proc/kills", r.proc_kills);
  add("env/proc/marked_hung", r.procs_marked_hung);
  peak("env/proc/peak", r.peak_procs);
  add("env/fd/acquired", r.fds_acquired);
  add("env/fd/acquire_failures", r.fd_acquire_failures);
  add("env/fd/released", r.fds_released);
  peak("env/fd/peak", r.peak_fds);
  add("env/disk/writes", r.disk_writes);
  add("env/disk/bytes_written", r.disk_bytes_written);
  add("env/disk/write_failures", r.disk_write_failures);
  add("env/disk/truncates", r.disk_truncates);
  peak("env/disk/peak_used", r.peak_disk_used);
  add("env/dns/lookups", r.dns_lookups);
  add("env/dns/errors", r.dns_errors);
  add("env/dns/slow_replies", r.dns_slow_replies);
  add("env/dns/reverse_misses", r.dns_reverse_misses);
  add("env/net/port_binds", r.port_binds);
  add("env/net/port_bind_failures", r.port_bind_failures);
  add("env/net/ports_released", r.ports_released);
  add("env/net/kernel_resource_denied", r.kernel_resource_denied);
  add("env/sched/draws", r.sched_draws);
  add("env/sched/replays", r.sched_replays);
  add("env/entropy/reads", r.entropy_reads);
  add("env/entropy/blocked", r.entropy_blocked);
  add("env/entropy/bits_taken", r.entropy_bits_taken);

  const AppCounters& a = trial.counters.app;
  add("app/requests_served", a.requests_served);
  add("app/cache_fills", a.cache_fills);
  add("app/cgi_children", a.cgi_children);
  add("app/queries_ok", a.queries_ok);
  add("app/ui_events", a.ui_events);

  const std::string mech(mechanism.empty() ? "trial" : mechanism);
  const RecoveryCounters& c = trial.counters.recovery;
  const auto rec = [&](std::string_view name, std::uint64_t n) {
    add(joined("recovery/" + mech, name), n);
  };
  rec("attempts", c.attempts);
  rec("successes", c.successes);
  rec("failures", c.failures);
  rec("items_rewound", c.items_rewound);
  rec("checkpoints", c.checkpoints);
  rec("failovers", c.failovers);
  rec("cold_restarts", c.cold_restarts);
  rec("rejuvenation_cycles", c.rejuvenation_cycles);
  rec("proactive_rejuvenations", c.proactive_rejuvenations);
  rec("retries_sanitized", c.retries_sanitized);

  if (!trial.recovery_latency_ticks.empty()) {
    const HistogramId id =
        registry.histogram(joined("recovery/" + mech, "latency_ticks"),
                           trial.recovery_latency_ticks.bounds());
    registry.merge_histogram(id, trial.recovery_latency_ticks, shard);
  }
  if (!trial.item_latency_ticks.empty()) {
    const HistogramId id =
        registry.histogram(joined("trial/" + mech, "item_latency_ticks"),
                           trial.item_latency_ticks.bounds());
    registry.merge_histogram(id, trial.item_latency_ticks, shard);
  }
}

void fold_pool_stats(const util::PoolStats& stats, std::string_view prefix,
                     MetricsRegistry& registry) {
  const std::string base(prefix);
  std::uint64_t chunks = 0;
  std::uint64_t indices = 0;
  std::uint64_t micros = 0;
  std::uint64_t max_pending = 0;
  std::array<std::uint64_t, util::PoolStats::kLatencyBuckets> latency{};
  std::size_t active_lanes = 0;
  for (const auto& lane : stats.lanes) {
    if (lane.chunks > 0) ++active_lanes;
    chunks += lane.chunks;
    indices += lane.indices;
    micros += lane.micros;
    max_pending = std::max(max_pending, lane.max_pending);
    for (std::size_t b = 0; b < latency.size(); ++b) {
      latency[b] += lane.latency_log2_us[b];
    }
  }
  if (stats.sweeps == 0 && chunks == 0) return;

  registry.add(registry.counter(base + "/sweeps"), stats.sweeps);
  registry.add(registry.counter(base + "/chunks"), chunks);
  registry.add(registry.counter(base + "/indices"), indices);
  registry.add(registry.counter(base + "/busy_micros"), micros);
  registry.peak(registry.gauge(base + "/max_pending"),
                static_cast<std::int64_t>(max_pending));
  registry.peak(registry.gauge(base + "/active_lanes"),
                static_cast<std::int64_t>(active_lanes));

  // Bucket b of the lane profile covers [2^b, 2^(b+1)) microseconds, so its
  // inclusive upper edge is 2^(b+1)-1; the last lane bucket becomes the
  // histogram's overflow bucket.
  std::vector<std::int64_t> bounds;
  bounds.reserve(latency.size() - 1);
  for (std::size_t b = 0; b + 1 < latency.size(); ++b) {
    bounds.push_back((std::int64_t{1} << (b + 1)) - 1);
  }
  const HistogramId id =
      registry.histogram(base + "/chunk_latency_us", bounds);
  registry.merge_histogram(
      id, Histogram::from_buckets(
              std::move(bounds),
              std::vector<std::uint64_t>(latency.begin(), latency.end()),
              static_cast<std::int64_t>(micros)));
}

void StudyTelemetry::fold_trial(std::string_view mechanism,
                                std::string_view trace_label,
                                TrialTelemetry&& trial, bool keep_trace) {
  fold_into(trial, mechanism, metrics);
  if (keep_trace && !trial.spans.empty()) {
    traces.emplace_back(std::string(trace_label), std::move(trial.spans));
  }
}

}  // namespace faultstudy::telemetry
