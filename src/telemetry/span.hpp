// Span tracing with two explicit time domains.
//
//   * Sim domain: timestamps come from the trial's env::VirtualClock. Virtual
//     time is part of the deterministic simulation state, so sim spans are
//     bit-identical across thread counts and replayable from a seed — they
//     are what --trace exports.
//   * Wall domain: timestamps come from std::chrono::steady_clock, for
//     self-profiling harness/pipeline hot paths. Wall spans are real
//     measurements and therefore never participate in determinism checks.
//
// A tracer is single-writer: one trial (or one pipeline stage driver) owns
// it. Parallel sweeps give every trial its own tracer in a per-index slot
// and the fold appends them in index order, per the PR 2 contract.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "env/clock.hpp"
#include "telemetry/counters.hpp"

namespace faultstudy::telemetry {

struct Span {
  std::string name;
  std::int64_t start = 0;     ///< ticks (sim) or microseconds (wall)
  std::int64_t duration = 0;  ///< same unit as start
  std::uint32_t depth = 0;    ///< nesting level at open, 0 = root

  bool operator==(const Span&) const = default;
};

class SpanTracer {
 public:
  SpanTracer() = default;

  /// Timestamps subsequent spans with the simulated clock. The clock must
  /// outlive the tracer's recording phase.
  void bind_sim(const env::VirtualClock* clock) noexcept {
    sim_ = clock;
    wall_ = false;
  }

  /// Timestamps subsequent spans with steady_clock microseconds since this
  /// call.
  void bind_wall() noexcept {
    sim_ = nullptr;
    wall_ = true;
    wall_epoch_ = std::chrono::steady_clock::now();
  }

  /// An unbound tracer records nothing; SpanScope checks this once.
  bool bound() const noexcept { return sim_ != nullptr || wall_; }
  bool wall_domain() const noexcept { return wall_; }

  std::int64_t now() const noexcept;

  /// Opens a span and returns its index; close() stamps the duration.
  std::size_t open(std::string_view name);
  void close(std::size_t index) noexcept;

  const std::vector<Span>& spans() const noexcept { return spans_; }
  bool empty() const noexcept { return spans_.empty(); }
  void clear() noexcept {
    spans_.clear();
    depth_ = 0;
  }

 private:
  const env::VirtualClock* sim_ = nullptr;
  bool wall_ = false;
  std::uint32_t depth_ = 0;
  std::vector<Span> spans_;
  std::chrono::steady_clock::time_point wall_epoch_{};
};

/// RAII span: opens on construction when the tracer is non-null and bound,
/// closes on destruction. Cheap enough for per-recovery granularity; not
/// meant for per-item inner loops (keep spans coarse — see DESIGN.md).
class SpanScope {
 public:
  SpanScope(SpanTracer* tracer, std::string_view name)
      : tracer_(tracer != nullptr && tracer->bound() ? tracer : nullptr) {
    if (tracer_ != nullptr) index_ = tracer_->open(name);
  }
  ~SpanScope() {
    if (tracer_ != nullptr) tracer_->close(index_);
  }

  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

 private:
  SpanTracer* tracer_ = nullptr;
  std::size_t index_ = 0;
};

#define FS_TELEM_CAT2(a, b) a##b
#define FS_TELEM_CAT(a, b) FS_TELEM_CAT2(a, b)

// TELEM_SPAN(tracer_ptr, "recovery/rollback"): scoped span tied to the
// enclosing block. Compiles to a void cast when telemetry is off.
#if FAULTSTUDY_TELEMETRY
#define TELEM_SPAN(tracer, name)                               \
  ::faultstudy::telemetry::SpanScope FS_TELEM_CAT(             \
      fs_telem_span_, __LINE__)((tracer), (name))
#else
#define TELEM_SPAN(tracer, name) static_cast<void>(tracer)
#endif

}  // namespace faultstudy::telemetry
