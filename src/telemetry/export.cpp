#include "telemetry/export.hpp"

#include <cstdio>

namespace faultstudy::telemetry {
namespace {

void append_json_string(std::string& out, std::string_view text) {
  out.push_back('"');
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

/// Maps an internal metric name ("env/proc/spawns") onto a valid Prometheus
/// metric name: illegal characters become '_' and a leading digit gets a
/// '_' prefix (names must match [a-zA-Z_:][a-zA-Z0-9_:]*).
std::string sanitized(std::string_view name) {
  std::string out(name);
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  if (out.empty() || (out.front() >= '0' && out.front() <= '9')) {
    out.insert(out.begin(), '_');
  }
  return out;
}

/// Counter names carry the conventional `_total` suffix promtool lints for.
std::string counter_name(std::string_view name) {
  std::string out = sanitized(name);
  if (!out.ends_with("_total")) out += "_total";
  return out;
}

/// Escapes a value for a `label="..."` position or a HELP line: the
/// exposition format reserves backslash, double-quote, and newline.
std::string prom_escaped(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

/// `# HELP` then `# TYPE`, in that order; the HELP text names the internal
/// metric the exposition name was derived from.
void append_prom_header(std::string& out, const std::string& name,
                        std::string_view source, std::string_view kind) {
  out += "# HELP " + name + " faultstudy " + std::string(kind) + " '" +
         prom_escaped(source) + "' (simulated-clock domain)\n";
  out += "# TYPE " + name + " " + std::string(kind) + "\n";
}

}  // namespace

std::string to_chrome_trace(const std::vector<TraceThread>& threads) {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  const auto comma = [&] {
    if (!first) out.push_back(',');
    first = false;
  };
  for (std::size_t t = 0; t < threads.size(); ++t) {
    const std::size_t tid = t + 1;
    comma();
    out += "{\"ph\":\"M\",\"pid\":1,\"tid\":" + std::to_string(tid) +
           ",\"name\":\"thread_name\",\"args\":{\"name\":";
    append_json_string(out, threads[t].label);
    out += "}}";
    if (threads[t].tracer == nullptr) continue;
    for (const Span& span : threads[t].tracer->spans()) {
      comma();
      out += "{\"ph\":\"X\",\"pid\":1,\"tid\":" + std::to_string(tid) +
             ",\"ts\":" + std::to_string(span.start) +
             ",\"dur\":" + std::to_string(span.duration) + ",\"name\":";
      append_json_string(out, span.name);
      out += ",\"args\":{\"depth\":" + std::to_string(span.depth) + "}}";
    }
  }
  out += "],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

std::string to_prometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& c : snapshot.counters) {
    const std::string name = counter_name(c.name);
    append_prom_header(out, name, c.name, "counter");
    out += name + " " + std::to_string(c.value) + "\n";
  }
  for (const auto& g : snapshot.gauges) {
    const std::string name = sanitized(g.name);
    append_prom_header(out, name, g.name, "gauge");
    out += name + " " + std::to_string(g.value) + "\n";
  }
  for (const auto& h : snapshot.histograms) {
    const std::string name = sanitized(h.name);
    append_prom_header(out, name, h.name, "histogram");
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      cumulative += h.buckets[i];
      out += name + "_bucket{le=\"" +
             prom_escaped(std::to_string(h.bounds[i])) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += name + "_bucket{le=\"+Inf\"} " + std::to_string(h.count) + "\n";
    out += name + "_sum " + std::to_string(h.sum) + "\n";
    out += name + "_count " + std::to_string(h.count) + "\n";
  }
  return out;
}

std::string to_json(const MetricsSnapshot& snapshot) {
  std::string out = "{\"counters\":{";
  for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
    if (i > 0) out.push_back(',');
    append_json_string(out, snapshot.counters[i].name);
    out += ":" + std::to_string(snapshot.counters[i].value);
  }
  out += "},\"gauges\":{";
  for (std::size_t i = 0; i < snapshot.gauges.size(); ++i) {
    if (i > 0) out.push_back(',');
    append_json_string(out, snapshot.gauges[i].name);
    out += ":" + std::to_string(snapshot.gauges[i].value);
  }
  out += "},\"histograms\":{";
  for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const auto& h = snapshot.histograms[i];
    if (i > 0) out.push_back(',');
    append_json_string(out, h.name);
    out += ":{\"bounds\":[";
    for (std::size_t b = 0; b < h.bounds.size(); ++b) {
      if (b > 0) out.push_back(',');
      out += std::to_string(h.bounds[b]);
    }
    out += "],\"buckets\":[";
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      if (b > 0) out.push_back(',');
      out += std::to_string(h.buckets[b]);
    }
    out += "],\"count\":" + std::to_string(h.count) +
           ",\"sum\":" + std::to_string(h.sum) + "}";
  }
  out += "}}\n";
  return out;
}

}  // namespace faultstudy::telemetry
