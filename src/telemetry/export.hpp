// Serializers for telemetry state. All output is deterministic given the
// input: metrics are name-sorted by snapshot(), trace threads keep their
// caller-supplied order, and every number is an integer — so sim-domain
// exports compare byte for byte across thread counts.
#pragma once

#include <string>
#include <vector>

#include "telemetry/metrics.hpp"
#include "telemetry/span.hpp"

namespace faultstudy::telemetry {

/// One named timeline row in the Chrome trace (tid = position + 1).
struct TraceThread {
  std::string label;
  const SpanTracer* tracer = nullptr;
};

/// Chrome trace_event JSON ("Complete" X events plus thread_name metadata),
/// loadable in chrome://tracing and Perfetto. Sim-domain tick timestamps
/// are emitted as microseconds verbatim (1 tick renders as 1 us).
std::string to_chrome_trace(const std::vector<TraceThread>& threads);

/// Prometheus text exposition, promtool-lint clean: metric names sanitized
/// ('/', '-', '.' become '_', leading digits get a '_' prefix), counters
/// carry the conventional `_total` suffix, every metric gets `# HELP` and
/// `# TYPE` lines, label values are escaped, and histograms expand to
/// cumulative `_bucket{le=...}` series ending in `le="+Inf"` plus `_sum`
/// and `_count`.
std::string to_prometheus(const MetricsSnapshot& snapshot);

/// Machine-readable JSON: {"counters": {...}, "gauges": {...},
/// "histograms": {name: {bounds, buckets, count, sum}}}.
std::string to_json(const MetricsSnapshot& snapshot);

}  // namespace faultstudy::telemetry
