// MetricsRegistry: named counters, high-watermark gauges, and fixed-bucket
// histograms with lock-free per-thread shards.
//
// Concurrency model (the PR 2 determinism contract, applied to metrics):
//
//   * Registration (counter/gauge/histogram) interns a name into an id and
//     must happen before a parallel sweep touches the metric; it is the only
//     operation that allocates.
//   * Writers (add/peak/observe) touch exactly one shard — by convention the
//     shard is the writer's executor lane (util::current_lane()), so no two
//     threads ever write the same slot and no atomics or locks are needed.
//   * snapshot() and merge_from() run on one thread after the sweep drains
//     and fold shards in index order. Counter and histogram merges are sums
//     and gauge merges are maxima — all commutative — so the folded values
//     are identical for every thread count.
//
// Every value is an integer (ticks, bytes, counts); there is no floating
// point anywhere in the registry, which is what makes snapshots comparable
// byte for byte across runs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace faultstudy::telemetry {

struct CounterId {
  std::uint32_t index = 0;
};
struct GaugeId {
  std::uint32_t index = 0;
};
struct HistogramId {
  std::uint32_t index = 0;
};

/// Standalone fixed-bucket histogram (also usable outside a registry, e.g.
/// per-trial latency tracking folded into a registry afterwards). Bounds
/// are inclusive upper edges; one overflow bucket catches the rest.
class Histogram {
 public:
  Histogram() = default;
  explicit Histogram(std::vector<std::int64_t> bounds);

  void observe(std::int64_t value) noexcept;
  void merge(const Histogram& other);

  /// Reconstructs a histogram from pre-counted buckets (e.g. converting a
  /// util::PoolStats lane profile); `buckets` must have bounds.size() + 1
  /// entries and `sum` is the caller's total of observed values.
  static Histogram from_buckets(std::vector<std::int64_t> bounds,
                                std::vector<std::uint64_t> buckets,
                                std::int64_t sum);

  const std::vector<std::int64_t>& bounds() const noexcept { return bounds_; }
  /// bounds().size() + 1 entries; the last is the overflow bucket.
  const std::vector<std::uint64_t>& buckets() const noexcept {
    return counts_;
  }
  std::uint64_t count() const noexcept { return count_; }
  std::int64_t sum() const noexcept { return sum_; }
  bool empty() const noexcept { return count_ == 0; }

  bool operator==(const Histogram&) const = default;

 private:
  std::vector<std::int64_t> bounds_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  std::int64_t sum_ = 0;
};

/// Recovery/item latencies in simulated ticks.
std::vector<std::int64_t> default_tick_bounds();
/// Wall-clock self-profiling latencies in microseconds.
std::vector<std::int64_t> default_micros_bounds();

/// An immutable, name-sorted view of a registry — the unit of export and
/// of determinism comparisons (threads=1 and threads=N must produce equal
/// snapshots for sim-domain registries).
struct MetricsSnapshot {
  struct Counter {
    std::string name;
    std::uint64_t value = 0;
    bool operator==(const Counter&) const = default;
  };
  struct Gauge {
    std::string name;
    std::int64_t value = 0;  ///< high-watermark
    bool operator==(const Gauge&) const = default;
  };
  struct Hist {
    std::string name;
    std::vector<std::int64_t> bounds;
    std::vector<std::uint64_t> buckets;
    std::uint64_t count = 0;
    std::int64_t sum = 0;
    bool operator==(const Hist&) const = default;
  };

  std::vector<Counter> counters;
  std::vector<Gauge> gauges;
  std::vector<Hist> histograms;

  bool empty() const noexcept {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
  bool operator==(const MetricsSnapshot&) const = default;
};

class MetricsRegistry {
 public:
  /// `shards` = number of independent writer lanes (>= 1). Single-threaded
  /// users (per-trial registries, serial folds) keep the default.
  explicit MetricsRegistry(std::size_t shards = 1);

  std::size_t shards() const noexcept { return shards_; }

  /// Grows the shard count (serial-only; call before a wider sweep starts).
  void ensure_shards(std::size_t shards);

  // --- registration (serial-only; returns the existing id on re-use) ---
  CounterId counter(std::string_view name);
  GaugeId gauge(std::string_view name);
  HistogramId histogram(std::string_view name,
                        std::vector<std::int64_t> bounds);

  // --- writers (lock-free: one writer per shard) ---
  void add(CounterId id, std::uint64_t n = 1, std::size_t shard = 0) noexcept;
  /// Raises the gauge's high-watermark.
  void peak(GaugeId id, std::int64_t value, std::size_t shard = 0) noexcept;
  void observe(HistogramId id, std::int64_t value,
               std::size_t shard = 0) noexcept;
  void merge_histogram(HistogramId id, const Histogram& h,
                       std::size_t shard = 0);

  // --- serial fold / export ---
  /// Union-by-name merge of another registry's folded values (index-order
  /// reduction of per-trial registries). Histogram bounds must match.
  void merge_from(const MetricsRegistry& other);

  /// Folds shards in index order and sorts metrics by name.
  MetricsSnapshot snapshot() const;

 private:
  // One cache line per shard slot so concurrent lanes never false-share.
  struct alignas(64) CounterCell {
    std::uint64_t value = 0;
  };
  struct alignas(64) GaugeCell {
    std::int64_t high = 0;
    bool set = false;
  };

  struct CounterMetric {
    std::string name;
    std::vector<CounterCell> cells;  ///< one per shard
  };
  struct GaugeMetric {
    std::string name;
    std::vector<GaugeCell> cells;
  };
  struct HistMetric {
    std::string name;
    std::vector<std::int64_t> bounds;
    std::vector<Histogram> cells;
  };

  std::size_t shards_;
  std::vector<CounterMetric> counters_;
  std::vector<GaugeMetric> gauges_;
  std::vector<HistMetric> histograms_;
  std::unordered_map<std::string, std::uint32_t> counter_ids_;
  std::unordered_map<std::string, std::uint32_t> gauge_ids_;
  std::unordered_map<std::string, std::uint32_t> histogram_ids_;
};

}  // namespace faultstudy::telemetry
