#include "telemetry/metrics.hpp"

#include <algorithm>

#include "telemetry/counters.hpp"

namespace faultstudy::telemetry {

Histogram::Histogram(std::vector<std::int64_t> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1, 0) {}

void Histogram::observe(std::int64_t value) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
  ++count_;
  sum_ += value;
}

void Histogram::merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (counts_.empty()) {
    *this = other;
    return;
  }
  // Mismatched bucket layouts cannot be merged losslessly; fold the other
  // histogram's overflow-safe summary into ours instead of corrupting
  // buckets (callers register shared bounds, so this is a fallback).
  if (bounds_ == other.bounds_) {
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      counts_[i] += other.counts_[i];
    }
  } else {
    counts_.back() += other.count_;
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

Histogram Histogram::from_buckets(std::vector<std::int64_t> bounds,
                                  std::vector<std::uint64_t> buckets,
                                  std::int64_t sum) {
  Histogram h(std::move(bounds));
  if (buckets.size() == h.counts_.size()) {
    h.counts_ = std::move(buckets);
    for (const std::uint64_t c : h.counts_) h.count_ += c;
    h.sum_ = sum;
  }
  return h;
}

std::vector<std::int64_t> default_tick_bounds() {
  return {0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096, 16384};
}

std::vector<std::int64_t> default_micros_bounds() {
  return {1,    2,    5,     10,    20,    50,     100,    200,
          500,  1000, 2000,  5000,  10000, 20000,  50000,  100000};
}

MetricsRegistry::MetricsRegistry(std::size_t shards)
    : shards_(shards == 0 ? 1 : shards) {}

void MetricsRegistry::ensure_shards(std::size_t shards) {
  if (shards <= shards_) return;
  shards_ = shards;
  for (auto& m : counters_) m.cells.resize(shards_);
  for (auto& m : gauges_) m.cells.resize(shards_);
  for (auto& m : histograms_) {
    m.cells.resize(shards_, Histogram(m.bounds));
  }
}

CounterId MetricsRegistry::counter(std::string_view name) {
  const auto it = counter_ids_.find(std::string(name));
  if (it != counter_ids_.end()) return {it->second};
  const auto index = static_cast<std::uint32_t>(counters_.size());
  counters_.push_back({std::string(name), std::vector<CounterCell>(shards_)});
  counter_ids_.emplace(std::string(name), index);
  return {index};
}

GaugeId MetricsRegistry::gauge(std::string_view name) {
  const auto it = gauge_ids_.find(std::string(name));
  if (it != gauge_ids_.end()) return {it->second};
  const auto index = static_cast<std::uint32_t>(gauges_.size());
  gauges_.push_back({std::string(name), std::vector<GaugeCell>(shards_)});
  gauge_ids_.emplace(std::string(name), index);
  return {index};
}

HistogramId MetricsRegistry::histogram(std::string_view name,
                                       std::vector<std::int64_t> bounds) {
  const auto it = histogram_ids_.find(std::string(name));
  if (it != histogram_ids_.end()) return {it->second};
  const auto index = static_cast<std::uint32_t>(histograms_.size());
  HistMetric metric;
  metric.name = std::string(name);
  metric.bounds = std::move(bounds);
  metric.cells.assign(shards_, Histogram(metric.bounds));
  histograms_.push_back(std::move(metric));
  histogram_ids_.emplace(std::string(name), index);
  return {index};
}

void MetricsRegistry::add(CounterId id, std::uint64_t n,
                          std::size_t shard) noexcept {
  counters_[id.index].cells[shard < shards_ ? shard : 0].value += n;
}

void MetricsRegistry::peak(GaugeId id, std::int64_t value,
                           std::size_t shard) noexcept {
  auto& cell = gauges_[id.index].cells[shard < shards_ ? shard : 0];
  if (!cell.set || value > cell.high) {
    cell.high = value;
    cell.set = true;
  }
}

void MetricsRegistry::observe(HistogramId id, std::int64_t value,
                              std::size_t shard) noexcept {
  histograms_[id.index].cells[shard < shards_ ? shard : 0].observe(value);
}

void MetricsRegistry::merge_histogram(HistogramId id, const Histogram& h,
                                      std::size_t shard) {
  histograms_[id.index].cells[shard < shards_ ? shard : 0].merge(h);
}

void MetricsRegistry::merge_from(const MetricsRegistry& other) {
  for (const auto& m : other.counters_) {
    std::uint64_t total = 0;
    for (const auto& cell : m.cells) total += cell.value;
    if (total > 0) add(counter(m.name), total);
  }
  for (const auto& m : other.gauges_) {
    for (const auto& cell : m.cells) {
      if (cell.set) peak(gauge(m.name), cell.high);
    }
  }
  for (const auto& m : other.histograms_) {
    const HistogramId id = histogram(m.name, m.bounds);
    for (const auto& cell : m.cells) merge_histogram(id, cell);
  }
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& m : counters_) {
    std::uint64_t total = 0;
    for (const auto& cell : m.cells) total += cell.value;
    snap.counters.push_back({m.name, total});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& m : gauges_) {
    std::int64_t high = 0;
    bool set = false;
    for (const auto& cell : m.cells) {
      if (cell.set && (!set || cell.high > high)) {
        high = cell.high;
        set = true;
      }
    }
    snap.gauges.push_back({m.name, high});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& m : histograms_) {
    Histogram folded(m.bounds);
    for (const auto& cell : m.cells) folded.merge(cell);
    snap.histograms.push_back({m.name, m.bounds, folded.buckets(),
                               folded.count(), folded.sum()});
  }
  const auto by_name = [](const auto& a, const auto& b) {
    return a.name < b.name;
  };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
  std::sort(snap.histograms.begin(), snap.histograms.end(), by_name);
  return snap;
}

void merge(ResourceCounters& into, const ResourceCounters& from) noexcept {
  into.proc_spawns += from.proc_spawns;
  into.proc_spawn_failures += from.proc_spawn_failures;
  into.proc_kills += from.proc_kills;
  into.procs_marked_hung += from.procs_marked_hung;
  into.peak_procs = std::max(into.peak_procs, from.peak_procs);
  into.fds_acquired += from.fds_acquired;
  into.fd_acquire_failures += from.fd_acquire_failures;
  into.fds_released += from.fds_released;
  into.peak_fds = std::max(into.peak_fds, from.peak_fds);
  into.disk_writes += from.disk_writes;
  into.disk_bytes_written += from.disk_bytes_written;
  into.disk_write_failures += from.disk_write_failures;
  into.disk_truncates += from.disk_truncates;
  into.peak_disk_used = std::max(into.peak_disk_used, from.peak_disk_used);
  into.dns_lookups += from.dns_lookups;
  into.dns_errors += from.dns_errors;
  into.dns_slow_replies += from.dns_slow_replies;
  into.dns_reverse_misses += from.dns_reverse_misses;
  into.port_binds += from.port_binds;
  into.port_bind_failures += from.port_bind_failures;
  into.ports_released += from.ports_released;
  into.kernel_resource_denied += from.kernel_resource_denied;
  into.sched_draws += from.sched_draws;
  into.sched_replays += from.sched_replays;
  into.entropy_reads += from.entropy_reads;
  into.entropy_blocked += from.entropy_blocked;
  into.entropy_bits_taken += from.entropy_bits_taken;
}

void merge(RecoveryCounters& into, const RecoveryCounters& from) noexcept {
  into.attempts += from.attempts;
  into.successes += from.successes;
  into.failures += from.failures;
  into.items_rewound += from.items_rewound;
  into.checkpoints += from.checkpoints;
  into.failovers += from.failovers;
  into.cold_restarts += from.cold_restarts;
  into.rejuvenation_cycles += from.rejuvenation_cycles;
  into.proactive_rejuvenations += from.proactive_rejuvenations;
  into.retries_sanitized += from.retries_sanitized;
}

void merge(AppCounters& into, const AppCounters& from) noexcept {
  into.requests_served += from.requests_served;
  into.cache_fills += from.cache_fills;
  into.cgi_children += from.cgi_children;
  into.queries_ok += from.queries_ok;
  into.ui_events += from.ui_events;
}

void merge(TrialCounters& into, const TrialCounters& from) noexcept {
  merge(into.resources, from.resources);
  merge(into.recovery, from.recovery);
  merge(into.app, from.app);
}

}  // namespace faultstudy::telemetry
