// Telemetry hot-path primitives: the compile-time gate and the plain
// per-trial counter structs that instrumented components write into.
//
// Two cost tiers, by design:
//
//   * disabled at compile time (-DFAULTSTUDY_TELEMETRY=OFF): every FS_TELEM
//     site expands to nothing — true zero overhead;
//   * compiled in but no sink attached (the default at runtime): one
//     predictable `ptr != nullptr` branch per site, nothing else.
//
// Everything in this header is a plain struct of integers. A trial is
// single-threaded, so increments need no atomics; parallel sweeps give every
// trial its own struct in a per-index slot and merge serially in index order
// (the PR 2 determinism contract), which is what keeps aggregated telemetry
// bit-identical across thread counts.
#pragma once

#include <cstddef>
#include <cstdint>

// CMake defines FAULTSTUDY_TELEMETRY to 0 or 1; default to enabled for
// builds that bypass the option (e.g. direct compiler invocations).
#ifndef FAULTSTUDY_TELEMETRY
#define FAULTSTUDY_TELEMETRY 1
#endif

// Runs `expr` on the sink when telemetry is compiled in and `sink` is
// non-null: FS_TELEM(e.counters(), resources.dns_lookups++). The sink
// expression is evaluated exactly once.
#if FAULTSTUDY_TELEMETRY
#define FS_TELEM(sink, expr)                 \
  do {                                       \
    if (auto* fs_telem_sink = (sink)) {      \
      fs_telem_sink->expr;                   \
    }                                        \
  } while (0)
#else
// Disabled: the site still type-checks (so both build modes stay honest)
// but `if constexpr (false)` guarantees zero generated code, including the
// evaluation of `sink`.
#define FS_TELEM(sink, expr)              \
  do {                                    \
    if constexpr (false) {                \
      if (auto* fs_telem_sink = (sink)) { \
        fs_telem_sink->expr;              \
      }                                   \
    }                                     \
  } while (0)
#endif

// Raises a high-watermark field: FS_TELEM_PEAK(counters, peak_fds, used()).
#if FAULTSTUDY_TELEMETRY
#define FS_TELEM_PEAK(sink, field, value)                            \
  do {                                                               \
    if (auto* fs_telem_sink = (sink)) {                              \
      const auto fs_telem_value = static_cast<std::uint64_t>(value); \
      if (fs_telem_value > fs_telem_sink->field) {                   \
        fs_telem_sink->field = fs_telem_value;                       \
      }                                                              \
    }                                                                \
  } while (0)
#else
#define FS_TELEM_PEAK(sink, field, value)                            \
  do {                                                               \
    if constexpr (false) {                                           \
      if (auto* fs_telem_sink = (sink)) {                            \
        const auto fs_telem_value = static_cast<std::uint64_t>(value); \
        if (fs_telem_value > fs_telem_sink->field) {                 \
          fs_telem_sink->field = fs_telem_value;                     \
        }                                                            \
      }                                                              \
    }                                                                \
  } while (0)
#endif

namespace faultstudy::telemetry {

/// What the simulated environment's resources did during one trial. Each
/// subsystem holds a pointer to this struct (bound by
/// env::Environment::set_counters) and bumps its own fields.
struct ResourceCounters {
  // Process table.
  std::uint64_t proc_spawns = 0;
  std::uint64_t proc_spawn_failures = 0;  ///< table full
  std::uint64_t proc_kills = 0;
  std::uint64_t procs_marked_hung = 0;
  std::uint64_t peak_procs = 0;
  // Descriptor table.
  std::uint64_t fds_acquired = 0;
  std::uint64_t fd_acquire_failures = 0;  ///< pool exhausted
  std::uint64_t fds_released = 0;
  std::uint64_t peak_fds = 0;
  // Disk.
  std::uint64_t disk_writes = 0;
  std::uint64_t disk_bytes_written = 0;
  std::uint64_t disk_write_failures = 0;  ///< no space / file-size limit
  std::uint64_t disk_truncates = 0;
  std::uint64_t peak_disk_used = 0;
  // DNS.
  std::uint64_t dns_lookups = 0;
  std::uint64_t dns_errors = 0;
  std::uint64_t dns_slow_replies = 0;
  std::uint64_t dns_reverse_misses = 0;
  // Network.
  std::uint64_t port_binds = 0;
  std::uint64_t port_bind_failures = 0;
  std::uint64_t ports_released = 0;
  std::uint64_t kernel_resource_denied = 0;
  // Scheduler.
  std::uint64_t sched_draws = 0;
  std::uint64_t sched_replays = 0;  ///< replay bias reproduced the last draw
  // Entropy pool.
  std::uint64_t entropy_reads = 0;
  std::uint64_t entropy_blocked = 0;  ///< read wanted more bits than held
  std::uint64_t entropy_bits_taken = 0;
};

/// What the recovery machinery did during one trial. The trial runner
/// counts attempts/outcomes; mechanisms bump their own specifics through
/// env::Environment::counters().
struct RecoveryCounters {
  std::uint64_t attempts = 0;
  std::uint64_t successes = 0;
  std::uint64_t failures = 0;
  std::uint64_t items_rewound = 0;  ///< rollback depth, summed over recoveries
  std::uint64_t checkpoints = 0;
  std::uint64_t failovers = 0;            ///< process-pairs backup promotions
  std::uint64_t cold_restarts = 0;        ///< lossy stop+start cycles
  std::uint64_t rejuvenation_cycles = 0;  ///< reactive rejuvenation passes
  std::uint64_t proactive_rejuvenations = 0;  ///< scheduled (quiescent) passes
  std::uint64_t retries_sanitized = 0;  ///< wrapper rejected a killer input
};

/// What the simulated application did during one trial, beyond the
/// harness-level outcome fields.
struct AppCounters {
  std::uint64_t requests_served = 0;  ///< web server
  std::uint64_t cache_fills = 0;
  std::uint64_t cgi_children = 0;
  std::uint64_t queries_ok = 0;  ///< database
  std::uint64_t ui_events = 0;   ///< desktop
};

/// The per-trial counter sink the environment hands out to everything it
/// hosts. env::Environment::set_counters(&trial_telemetry.counters) binds
/// the resource block into every subsystem and exposes the whole struct to
/// apps and mechanisms.
struct TrialCounters {
  ResourceCounters resources;
  RecoveryCounters recovery;
  AppCounters app;
};

/// Field-wise sum (for folding repeat trials of one matrix cell together).
void merge(ResourceCounters& into, const ResourceCounters& from) noexcept;
void merge(RecoveryCounters& into, const RecoveryCounters& from) noexcept;
void merge(AppCounters& into, const AppCounters& from) noexcept;
void merge(TrialCounters& into, const TrialCounters& from) noexcept;

}  // namespace faultstudy::telemetry
