#include "telemetry/span.hpp"

namespace faultstudy::telemetry {

std::int64_t SpanTracer::now() const noexcept {
  if (sim_ != nullptr) return sim_->now();
  if (wall_) {
    const auto elapsed = std::chrono::steady_clock::now() - wall_epoch_;
    return std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
        .count();
  }
  return 0;
}

std::size_t SpanTracer::open(std::string_view name) {
  const std::size_t index = spans_.size();
  Span span;
  span.name = std::string(name);
  span.start = now();
  span.depth = depth_++;
  spans_.push_back(std::move(span));
  return index;
}

void SpanTracer::close(std::size_t index) noexcept {
  if (index >= spans_.size()) return;
  spans_[index].duration = now() - spans_[index].start;
  if (depth_ > 0) --depth_;
}

}  // namespace faultstudy::telemetry
