// Per-trial and per-study telemetry aggregates.
//
// TrialTelemetry is the single-threaded sink one trial writes into: plain
// counters, tick histograms, and a sim-domain span tracer. A parallel matrix
// sweep allocates one TrialTelemetry per cell in a per-index slot and folds
// them into a StudyTelemetry serially in index order, so the aggregate is
// bit-identical for every thread count.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "telemetry/counters.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/span.hpp"
#include "util/thread_pool.hpp"

namespace faultstudy::telemetry {

/// Everything one trial records. Bind `spans` to the trial's clock and
/// `counters` into the environment before running.
struct TrialTelemetry {
  TrialTelemetry();

  TrialCounters counters;
  Histogram recovery_latency_ticks;  ///< env ticks per recovery attempt
  Histogram item_latency_ticks;      ///< env ticks per workload item
  SpanTracer spans;                  ///< sim domain
};

/// Registers and bumps registry metrics from one trial's aggregates, writing
/// into `shard`. Resource and app counters fold into global `env/...` and
/// `app/...` metrics; recovery counters and latency histograms fold under
/// `recovery/<mechanism>/...` so per-mechanism behavior stays visible.
/// Serial-only unless every metric was pre-registered.
void fold_into(const TrialTelemetry& trial, std::string_view mechanism,
               MetricsRegistry& registry, std::size_t shard = 0);

/// The study-wide aggregate the CLI exports: a metrics registry plus the
/// sim-domain traces worth keeping (one representative trial per matrix
/// cell — full traces for every repeat would dwarf the results).
struct StudyTelemetry {
  MetricsRegistry metrics;
  std::vector<std::pair<std::string, SpanTracer>> traces;

  /// Folds one trial. `trace_label` names the trace thread in the Chrome
  /// export (e.g. "rollback_retry/web-fd-leak"); pass keep_trace = false to
  /// fold metrics only.
  void fold_trial(std::string_view mechanism, std::string_view trace_label,
                  TrialTelemetry&& trial, bool keep_trace);
};

/// Wall-domain self-profile of a mining pipeline run: steady-clock stage
/// spans plus funnel/throughput metrics. Real measurements — excluded from
/// determinism comparisons by construction.
struct PipelineTelemetry {
  PipelineTelemetry() { spans.bind_wall(); }

  SpanTracer spans;
  MetricsRegistry metrics;
  util::PoolStats pool;  ///< executor profile of the pipeline's sweeps
};

/// Folds wall-domain executor stats into a registry under `prefix`:
/// per-pool counters (sweeps, chunks, indices, busy-micros), a max-pending
/// queue-depth gauge, and the chunk wall-latency histogram (log2-µs
/// buckets) summed over lanes.
void fold_pool_stats(const util::PoolStats& stats, std::string_view prefix,
                     MetricsRegistry& registry);

}  // namespace faultstudy::telemetry
