// One-call study report: runs the full methodology (three corpora through
// the mining pipeline, the recovery matrix on the mined faults' seeds) and
// renders everything the paper reports as a single markdown document —
// tables 1-3, the discussion aggregates, figure series, and the recovery
// experiment.
//
// This is the library's "reproduce the paper" button; the CLI and the
// make_report example call it, and the pieces are exposed so callers can
// render subsets.
#pragma once

#include <string>

#include "core/aggregate.hpp"
#include "forensics/triage.hpp"
#include "harness/experiment.hpp"
#include "mining/pipeline.hpp"
#include "obs/atlas.hpp"
#include "telemetry/metrics.hpp"

namespace faultstudy::report {

struct StudyReportOptions {
  bool include_figures = true;
  bool include_recovery_matrix = true;
  bool include_funnels = true;
  /// Run the matrix instrumented and render its folded telemetry snapshot
  /// (simulated-clock domain, so the section is deterministic).
  bool include_telemetry = true;
  /// Run the matrix with flight recorders attached and render the failure-
  /// forensics section (post-mortem counts and triage clusters).
  bool include_forensics = true;
  /// Run the matrix with coverage probes folded into an atlas and render
  /// the coverage section (probe totals, taxonomy cells, blind spots).
  /// Under -DFAULTSTUDY_COVERAGE=OFF the probes compile out and the
  /// section reports zero coverage.
  bool include_coverage = true;
  /// Matrix repeats per (fault, mechanism) cell.
  int matrix_repeats = 3;
};

struct StudyResults {
  mining::PipelineResult apache;
  mining::PipelineResult gnome;
  mining::PipelineResult mysql;
  std::vector<core::Fault> all_faults;
  core::StudySummary summary;
  harness::MatrixResult matrix;  ///< empty when the option is off
  /// Matrix telemetry folded across every trial (empty when either the
  /// matrix or the telemetry option is off).
  telemetry::MetricsSnapshot telemetry;
  /// Post-mortems from every failed matrix trial and their triage clusters
  /// (empty when either the matrix or the forensics option is off).
  forensics::StudyForensics forensics;
  std::vector<forensics::TriageCluster> triage;
  /// Coverage atlas folded from every matrix trial (empty when either the
  /// matrix or the coverage option is off).
  obs::CoverageAtlas coverage;
};

/// Runs everything. Deterministic in the corpus/matrix seeds.
StudyResults run_full_study(const StudyReportOptions& options = {});

/// Renders the results as markdown.
std::string render_markdown(const StudyResults& results,
                            const StudyReportOptions& options = {});

/// Convenience: run + render.
std::string generate_study_report(const StudyReportOptions& options = {});

}  // namespace faultstudy::report
