#include "report/svg.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace faultstudy::report {

std::string xml_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string render_svg(std::span<const stats::SeriesPoint> series,
                       std::string_view title, const SvgOptions& opt) {
  const int margin_left = 40;
  const int margin_top = 40;
  const int margin_bottom = 48;
  const int plot_w = opt.width - margin_left - 10;
  const int plot_h = opt.height - margin_top - margin_bottom;

  std::size_t max_total = 1;
  for (const auto& p : series) {
    max_total = std::max(max_total, p.counts.total());
  }

  std::string svg;
  svg += "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" +
         std::to_string(opt.width) + "\" height=\"" +
         std::to_string(opt.height) + "\">\n";
  svg += "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";
  svg += "<text x=\"" + std::to_string(opt.width / 2) +
         "\" y=\"20\" text-anchor=\"middle\" font-family=\"sans-serif\" "
         "font-size=\"14\">" +
         xml_escape(title) + "</text>\n";

  const int n = static_cast<int>(series.size());
  if (n > 0) {
    const int bar_w =
        std::max(4, (plot_w - opt.bar_gap * (n + 1)) / std::max(1, n));
    int x = margin_left + opt.bar_gap;
    for (const auto& p : series) {
      int y = margin_top + plot_h;
      const core::FaultClass order[] = {
          core::FaultClass::kEnvironmentIndependent,
          core::FaultClass::kEnvDependentNonTransient,
          core::FaultClass::kEnvDependentTransient,
      };
      for (int c = 0; c < 3; ++c) {
        const auto count = p.counts[order[c]];
        if (count == 0) continue;
        const int h = static_cast<int>(
            static_cast<double>(count) / static_cast<double>(max_total) * plot_h);
        y -= h;
        svg += "<rect x=\"" + std::to_string(x) + "\" y=\"" +
               std::to_string(y) + "\" width=\"" + std::to_string(bar_w) +
               "\" height=\"" + std::to_string(h) + "\" fill=\"" +
               opt.colors[c] + "\"/>\n";
      }
      svg += "<text x=\"" + std::to_string(x + bar_w / 2) + "\" y=\"" +
             std::to_string(margin_top + plot_h + 16) +
             "\" text-anchor=\"middle\" font-family=\"sans-serif\" "
             "font-size=\"10\">" +
             xml_escape(p.label) + "</text>\n";
      svg += "<text x=\"" + std::to_string(x + bar_w / 2) + "\" y=\"" +
             std::to_string(y - 4) +
             "\" text-anchor=\"middle\" font-family=\"sans-serif\" "
             "font-size=\"10\">" +
             std::to_string(p.counts.total()) + "</text>\n";
      x += bar_w + opt.bar_gap;
    }
  }

  if (opt.show_legend) {
    const char* names[3] = {"environment-independent",
                            "env-dependent-nontransient",
                            "env-dependent-transient"};
    int lx = margin_left;
    const int ly = opt.height - 12;
    for (int c = 0; c < 3; ++c) {
      svg += "<rect x=\"" + std::to_string(lx) + "\" y=\"" +
             std::to_string(ly - 9) + "\" width=\"10\" height=\"10\" fill=\"" +
             opt.colors[c] + "\"/>\n";
      svg += "<text x=\"" + std::to_string(lx + 14) + "\" y=\"" +
             std::to_string(ly) +
             "\" font-family=\"sans-serif\" font-size=\"10\">" +
             std::string(names[c]) + "</text>\n";
      lx += 14 + static_cast<int>(std::string(names[c]).size()) * 6 + 16;
    }
  }

  svg += "</svg>\n";
  return svg;
}

}  // namespace faultstudy::report
