// SVG rendering of the study's figures: stacked per-bucket bars, one file
// per figure, no external dependencies. The output opens in any browser,
// which is how downstream users will actually look at Figures 1-3.
#pragma once

#include <span>
#include <string>

#include "stats/series.hpp"

namespace faultstudy::report {

struct SvgOptions {
  int width = 640;
  int height = 360;
  int bar_gap = 8;
  /// Class colors: EI, EDN, EDT.
  std::string colors[3] = {"#4878a8", "#e8b04a", "#c85a54"};
  bool show_legend = true;
};

/// Renders a vertical stacked-bar chart of the series.
std::string render_svg(std::span<const stats::SeriesPoint> series,
                       std::string_view title, const SvgOptions& options = {});

/// Escapes XML-special characters in text content.
std::string xml_escape(std::string_view text);

}  // namespace faultstudy::report
