#include "report/figure.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace faultstudy::report {

std::string render_stacked_bars(std::span<const stats::SeriesPoint> series,
                                std::string_view title,
                                const FigureOptions& options) {
  std::string out;
  out += title;
  out += '\n';
  out += std::string(title.size(), '=');
  out += '\n';

  std::size_t label_width = 0;
  for (const auto& p : series) {
    label_width = std::max(label_width, p.label.size());
  }

  for (const auto& p : series) {
    out += util::pad_right(p.label, label_width);
    out += " |";
    const auto glyph_run = [&](core::FaultClass c, char glyph) {
      const std::size_t n = p.counts[c] * options.glyphs_per_fault;
      out.append(n, glyph);
    };
    glyph_run(core::FaultClass::kEnvironmentIndependent, '#');
    glyph_run(core::FaultClass::kEnvDependentNonTransient, 'o');
    glyph_run(core::FaultClass::kEnvDependentTransient, '*');
    out += "  (" + std::to_string(p.counts.total()) + ")";
    out += '\n';
  }

  if (options.show_legend) {
    out += "\n  # environment-independent   o env-dependent-nontransient   "
           "* env-dependent-transient\n";
  }
  return out;
}

}  // namespace faultstudy::report
