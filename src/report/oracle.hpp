// Rendering of the detector-vs-taxonomy oracle cross-check
// (harness::run_oracle_crosscheck): the confusion table between race-labeled
// specimens and happens-before detector firings, plus per-specimen CSV for
// downstream analysis.
#pragma once

#include <string>

#include "harness/experiment.hpp"

namespace faultstudy::report {

/// Fixed-width confusion table:
///
///   | specimen label        | detector fired | detector silent |
///   |-----------------------|----------------|-----------------|
///   | race (EDT)            |              4 |               0 |
///   | other transient (EDT) |              0 |               8 |
///   ...
std::string render_oracle_confusion(const harness::OracleReport& report);

/// One row per specimen:
/// fault_id,app,class,trigger,race_labeled,detector_fired,races,violations.
std::string oracle_rows_to_csv(const harness::OracleReport& report);

/// Markdown section: confusion table, agreement line, and the rows where
/// label and detector disagree (empty when agreement is perfect).
std::string render_oracle_markdown(const harness::OracleReport& report);

}  // namespace faultstudy::report
