// Paper-style table rendering.
//
// render_class_table reproduces the exact layout of Tables 1-3; the generic
// AsciiTable handles the funnel, matrix, and ablation tables the benches
// print.
#pragma once

#include <string>
#include <vector>

#include "core/aggregate.hpp"

namespace faultstudy::report {

/// Renders the paper's per-application classification table:
///
///   | Class                              | # Faults |
///   |------------------------------------|----------|
///   | environment-independent            |       36 |
///   ...
std::string render_class_table(const core::ClassCounts& counts,
                               std::string_view caption);

/// General fixed-width table with a header row.
class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Right-aligns numeric-looking cells, left-aligns the rest.
  std::string to_string() const;

  std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace faultstudy::report
