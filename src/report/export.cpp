#include "report/export.hpp"

#include "util/strings.hpp"

namespace faultstudy::report {

std::string csv_escape(std::string_view field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) return std::string(field);
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string faults_to_csv(std::span<const core::Fault> faults) {
  std::string out = "id,app,class,trigger,bucket,title\n";
  for (const auto& f : faults) {
    out += csv_escape(f.id);
    out += ',';
    out += core::to_string(f.app);
    out += ',';
    out += core::to_code(f.fault_class);
    out += ',';
    out += core::to_string(f.trigger);
    out += ',';
    out += std::to_string(f.bucket);
    out += ',';
    out += csv_escape(f.title);
    out += '\n';
  }
  return out;
}

std::string series_to_csv(std::span<const stats::SeriesPoint> series) {
  std::string out = "bucket,ei,edn,edt,total\n";
  for (const auto& p : series) {
    out += csv_escape(p.label);
    out += ',';
    out += std::to_string(p.counts[core::FaultClass::kEnvironmentIndependent]);
    out += ',';
    out += std::to_string(p.counts[core::FaultClass::kEnvDependentNonTransient]);
    out += ',';
    out += std::to_string(p.counts[core::FaultClass::kEnvDependentTransient]);
    out += ',';
    out += std::to_string(p.counts.total());
    out += '\n';
  }
  return out;
}

std::string counts_to_markdown(const core::ClassCounts& counts,
                               std::string_view caption) {
  std::string out;
  if (!caption.empty()) {
    out += "**";
    out += caption;
    out += "**\n\n";
  }
  out += "| Class | # Faults | Share |\n|---|---|---|\n";
  for (core::FaultClass c : core::kAllFaultClasses) {
    out += "| ";
    out += core::to_string(c);
    out += " | ";
    out += std::to_string(counts[c]);
    out += " | ";
    out += util::percent(counts.fraction(c));
    out += " |\n";
  }
  return out;
}

}  // namespace faultstudy::report
