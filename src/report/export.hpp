// CSV and markdown export of study results, for downstream analysis.
#pragma once

#include <span>
#include <string>

#include "core/aggregate.hpp"
#include "stats/series.hpp"

namespace faultstudy::report {

/// CSV field escaping per RFC 4180 (quotes doubled, fields with separators
/// quoted).
std::string csv_escape(std::string_view field);

/// One row per fault: id,app,class,trigger,bucket,title.
std::string faults_to_csv(std::span<const core::Fault> faults);

/// One row per bucket: label,ei,edn,edt,total.
std::string series_to_csv(std::span<const stats::SeriesPoint> series);

/// Markdown rendering of a class-count table (for READMEs and reports).
std::string counts_to_markdown(const core::ClassCounts& counts,
                               std::string_view caption);

}  // namespace faultstudy::report
