#include "report/table.hpp"

#include <algorithm>
#include <cctype>

#include "util/strings.hpp"

namespace faultstudy::report {

std::string render_class_table(const core::ClassCounts& counts,
                               std::string_view caption) {
  std::string out;
  out += "| Class                              | # Faults |\n";
  out += "|------------------------------------|----------|\n";
  for (core::FaultClass c : core::kAllFaultClasses) {
    out += "| " + util::pad_right(core::to_string(c), 34) + " | " +
           util::pad_left(std::to_string(counts[c]), 8) + " |\n";
  }
  if (!caption.empty()) {
    out += "\n";
    out += caption;
    out += "\n";
  }
  return out;
}

AsciiTable::AsciiTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void AsciiTable::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

namespace {
bool numeric_like(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c)) && c != '.' && c != '%' &&
        c != '-' && c != '/' && c != '+') {
      return false;
    }
  }
  return true;
}
}  // namespace

std::string AsciiTable::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t j = 0; j < header_.size(); ++j) {
    widths[j] = header_[j].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t j = 0; j < row.size(); ++j) {
      widths[j] = std::max(widths[j], row[j].size());
    }
  }

  std::string out;
  const auto emit_row = [&](const std::vector<std::string>& row) {
    out += "|";
    for (std::size_t j = 0; j < header_.size(); ++j) {
      const std::string& cell = j < row.size() ? row[j] : header_[j];
      out += ' ';
      out += numeric_like(cell) ? util::pad_left(cell, widths[j])
                                : util::pad_right(cell, widths[j]);
      out += " |";
    }
    out += '\n';
  };

  emit_row(header_);
  out += "|";
  for (std::size_t j = 0; j < header_.size(); ++j) {
    out += std::string(widths[j] + 2, '-');
    out += "|";
  }
  out += '\n';
  for (const auto& row : rows_) emit_row(row);
  return out;
}

}  // namespace faultstudy::report
