// ASCII figures: stacked per-bucket bars reproducing Figures 1-3.
//
// Each bucket renders as one row; the bar stacks the three classes using
// distinct glyphs ('#': environment-independent, 'o': EDN, '*': EDT), so the
// two shape properties the paper highlights — growth across releases and a
// roughly constant EI share — are visible directly in terminal output.
#pragma once

#include <span>
#include <string>

#include "stats/series.hpp"

namespace faultstudy::report {

struct FigureOptions {
  std::size_t glyphs_per_fault = 2;  ///< horizontal scale
  bool show_legend = true;
};

std::string render_stacked_bars(std::span<const stats::SeriesPoint> series,
                                std::string_view title,
                                const FigureOptions& options = {});

}  // namespace faultstudy::report
