#include "report/study_report.hpp"

#include "corpus/seeds.hpp"
#include "corpus/synth.hpp"
#include "obs/export.hpp"
#include "report/export.hpp"
#include "report/figure.hpp"
#include "report/table.hpp"
#include "stats/ci.hpp"
#include "stats/series.hpp"
#include "util/strings.hpp"

namespace faultstudy::report {

StudyResults run_full_study(const StudyReportOptions& options) {
  StudyResults r;
  r.apache = mining::run_tracker_pipeline(corpus::make_apache_tracker());
  r.gnome = mining::run_tracker_pipeline(corpus::make_gnome_tracker());
  r.mysql = mining::run_mailinglist_pipeline(corpus::make_mysql_list());

  r.all_faults = mining::to_faults(r.apache);
  for (auto& f : mining::to_faults(r.gnome)) r.all_faults.push_back(f);
  for (auto& f : mining::to_faults(r.mysql)) r.all_faults.push_back(f);
  r.summary = core::summarize(r.all_faults);

  if (options.include_recovery_matrix) {
    telemetry::StudyTelemetry study;
    telemetry::StudyTelemetry* telem =
        options.include_telemetry ? &study : nullptr;
    forensics::StudyForensics* forens =
        options.include_forensics ? &r.forensics : nullptr;
    obs::CoverageAtlas* atlas = options.include_coverage ? &r.coverage : nullptr;
    r.matrix = harness::run_matrix(corpus::all_seeds(),
                                   harness::standard_mechanisms(), {},
                                   options.matrix_repeats, telem, forens,
                                   atlas);
    // Atlas gauges ride the telemetry snapshot, so the Prometheus/JSON
    // exporters publish coverage alongside the study counters.
    if (telem != nullptr && atlas != nullptr) {
      obs::export_gauges(r.coverage, study.metrics);
    }
    if (telem != nullptr) r.telemetry = study.metrics.snapshot();
    if (forens != nullptr) r.triage = forensics::triage(forens->postmortems);
  }
  return r;
}

namespace {

void render_app_section(std::string& md, std::string_view heading,
                        const mining::PipelineResult& result,
                        const StudyReportOptions& options) {
  md += "\n## " + std::string(heading) + "\n\n";
  if (options.include_funnels) {
    if (result.keyword_funnel.total_messages > 0) {
      md += "Funnel: " + std::to_string(result.keyword_funnel.total_messages) +
            " messages → " + std::to_string(result.keyword_funnel.keyword_hits) +
            " keyword hits → " +
            std::to_string(result.keyword_funnel.report_shaped) +
            " usable reports → " + std::to_string(result.bugs.size()) +
            " unique bugs.\n\n";
    } else {
      md += "Funnel: " + std::to_string(result.filter_funnel.total) +
            " reports → " + std::to_string(result.filter_funnel.runtime) +
            " runtime → " + std::to_string(result.filter_funnel.production) +
            " production → " + std::to_string(result.filter_funnel.severe) +
            " severe/critical → " + std::to_string(result.bugs.size()) +
            " unique bugs.\n\n";
    }
  }
  const auto faults = mining::to_faults(result);
  md += counts_to_markdown(core::tally(faults), "");
}

void render_telemetry(std::string& md,
                      const telemetry::MetricsSnapshot& snap) {
  if (snap.empty()) return;
  md += "\n## Matrix telemetry (simulated-clock domain)\n\n";
  md += "Folded from every matrix trial in index order; every value is an "
        "integer in simulated units, so this section is identical for any "
        "thread count.\n\n";
  md += "| metric | value |\n|---|---|\n";
  for (const auto& c : snap.counters) {
    md += "| " + c.name + " | " + std::to_string(c.value) + " |\n";
  }
  for (const auto& g : snap.gauges) {
    md += "| " + g.name + " (peak) | " + std::to_string(g.value) + " |\n";
  }
  if (!snap.histograms.empty()) {
    md += "\n| histogram | samples | total ticks |\n|---|---|---|\n";
    for (const auto& h : snap.histograms) {
      md += "| " + h.name + " | " + std::to_string(h.count) + " | " +
            std::to_string(h.sum) + " |\n";
    }
  }
}

void render_forensics(std::string& md, const forensics::StudyForensics& study,
                      const std::vector<forensics::TriageCluster>& clusters) {
  if (study.trials == 0) return;
  md += "\n## Failure forensics\n\n";
  md += "Every failed matrix trial carries a flight-recorder post-mortem: "
        "the causal chain from injected fault through environment "
        "propagation to the recovery outcome. " +
        std::to_string(study.failures()) + " of " +
        std::to_string(study.trials) +
        " trials produced post-mortems, clustering into " +
        std::to_string(clusters.size()) + " failure signatures.\n\n";
  if (clusters.empty()) return;
  md += "| signature | post-mortems | failures | recoveries | specimens |\n";
  md += "|---|---|---|---|---|\n";
  constexpr std::size_t kRows = 20;
  const std::size_t shown = std::min(clusters.size(), kRows);
  for (std::size_t i = 0; i < shown; ++i) {
    const auto& c = clusters[i];
    md += "| `" + c.signature + "` | " + std::to_string(c.count) + " | " +
          std::to_string(c.total_failures) + " | " +
          std::to_string(c.total_recoveries) + " | " +
          std::to_string(c.fault_ids.size()) + " |\n";
  }
  if (clusters.size() > shown) {
    md += "\n… " + std::to_string(clusters.size() - shown) +
          " smaller clusters omitted; the postmortem explorer "
          "(examples/postmortem_cli) renders all of them.\n";
  }
}

void render_coverage(std::string& md, const obs::CoverageAtlas& atlas) {
  if (atlas.trials() == 0) return;
  md += "\n## Coverage atlas\n\n";
  md += "Probe coverage folded from every matrix trial in index order; all "
        "values are integer hit counts, so this section is identical for "
        "any thread count.\n\n";
  md += "| coverage plane | covered | universe |\n|---|---|---|\n";
  md += "| instrumented probes | " + std::to_string(atlas.probes_hit()) +
        " | " + std::to_string(obs::CoverageAtlas::probe_universe()) + " |\n";
  md += "| taxonomy cells (trigger recipes) | " +
        std::to_string(atlas.cells_covered()) + " | " +
        std::to_string(obs::CoverageAtlas::cell_universe()) + " |\n";
  md += "| trials folded | " + std::to_string(atlas.trials()) + " | — |\n";
  const auto blind = atlas.blind_spots();
  if (blind.empty()) {
    md += "\nNo blind spots: every probe fired at least once.\n";
  } else {
    md += "\nBlind spots (probes no trial ever hit):\n\n";
    for (const auto& name : blind) md += "- `" + name + "`\n";
  }
}

void render_figure(std::string& md, std::string_view title,
                   const std::vector<core::Fault>& faults, core::AppId app,
                   const std::vector<std::string>& labels) {
  const auto series = stats::build_series(faults, app, labels);
  md += "\n```\n";
  md += render_stacked_bars(series, title);
  md += "```\n";
}

}  // namespace

std::string render_markdown(const StudyResults& r,
                            const StudyReportOptions& options) {
  std::string md;
  md += "# Fault study report\n\n";
  md += "Reproduction of Chandra & Chen, \"Whither Generic Recovery from "
        "Application Faults?\" (DSN 2000), generated by the faultstudy "
        "library from its synthetic corpora.\n";

  render_app_section(md, "Table 1 — Apache", r.apache, options);
  render_app_section(md, "Table 2 — GNOME", r.gnome, options);
  render_app_section(md, "Table 3 — MySQL", r.mysql, options);

  md += "\n## Discussion aggregates (Section 5.4)\n\n";
  const auto& o = r.summary.overall;
  md += "Total unique faults: " + std::to_string(r.summary.total_faults) +
        ".\n\n";
  md += counts_to_markdown(o, "");
  md += "\nPer-application spans: environment-independent " +
        util::percent(r.summary.min_ei_fraction) + "–" +
        util::percent(r.summary.max_ei_fraction) + " (paper: 72–87%), " +
        "transient " + util::percent(r.summary.min_edt_fraction) + "–" +
        util::percent(r.summary.max_edt_fraction) + " (paper: 5–14%).\n";
  const auto edt_ci = stats::wilson(
      o[core::FaultClass::kEnvDependentTransient], o.total());
  md += "Transient share " + util::percent(edt_ci.point) + " with 95% Wilson "
        "interval [" + util::percent(edt_ci.lower) + ", " +
        util::percent(edt_ci.upper) + "].\n";

  if (options.include_figures) {
    md += "\n## Figures\n";
    render_figure(md, "Figure 1: Apache faults per release", r.all_faults,
                  core::AppId::kApache, corpus::apache_releases());
    render_figure(md, "Figure 2: GNOME faults over time", r.all_faults,
                  core::AppId::kGnome, corpus::gnome_periods());
    render_figure(md, "Figure 3: MySQL faults per release", r.all_faults,
                  core::AppId::kMysql, corpus::mysql_releases());
  }

  if (options.include_recovery_matrix && !r.matrix.reports.empty()) {
    md += "\n## Recovery experiment (Section 8 future work)\n\n";
    md += "| mechanism | generic | EI | EDN | EDT | overall |\n";
    md += "|---|---|---|---|---|---|\n";
    for (const auto& report : r.matrix.reports) {
      const auto cell = [&](core::FaultClass c) {
        const auto i = static_cast<std::size_t>(c);
        return std::to_string(report.survived[i]) + "/" +
               std::to_string(report.total[i]);
      };
      md += "| " + report.mechanism + " | " +
            (report.generic ? "yes" : "no") + " | " +
            cell(core::FaultClass::kEnvironmentIndependent) + " | " +
            cell(core::FaultClass::kEnvDependentNonTransient) + " | " +
            cell(core::FaultClass::kEnvDependentTransient) + " | " +
            util::percent(static_cast<double>(report.survived_all()) /
                          static_cast<double>(report.total_all())) +
            " |\n";
    }
    md += "\nGeneric state-preserving recovery survives exactly the "
          "transient class; surviving the rest requires application-"
          "specific knowledge — the paper's conclusion.\n";
  }
  if (options.include_forensics) render_forensics(md, r.forensics, r.triage);
  if (options.include_coverage) render_coverage(md, r.coverage);
  if (options.include_telemetry) render_telemetry(md, r.telemetry);
  return md;
}

std::string generate_study_report(const StudyReportOptions& options) {
  return render_markdown(run_full_study(options), options);
}

}  // namespace faultstudy::report
