#include "report/oracle.hpp"

#include <cstdio>

#include "report/export.hpp"
#include "report/table.hpp"

namespace faultstudy::report {

std::string render_oracle_confusion(const harness::OracleReport& report) {
  AsciiTable table({"specimen label", "detector fired", "detector silent"});
  table.add_row({"race (EDT)", std::to_string(report.race_fired),
                 std::to_string(report.race_silent)});
  table.add_row({"other transient (EDT)",
                 std::to_string(report.other_edt_fired),
                 std::to_string(report.other_edt_silent)});
  table.add_row({"non-transient (EDN)", std::to_string(report.edn_fired),
                 std::to_string(report.edn_silent)});
  table.add_row({"env-independent (EI)", std::to_string(report.ei_fired),
                 std::to_string(report.ei_silent)});
  return table.to_string();
}

std::string oracle_rows_to_csv(const harness::OracleReport& report) {
  std::string out =
      "fault_id,app,class,trigger,race_labeled,detector_fired,races,"
      "violations\n";
  for (const auto& row : report.rows) {
    out += csv_escape(row.fault_id);
    out += ',';
    out += core::to_string(row.app);
    out += ',';
    out += core::to_code(row.label);
    out += ',';
    out += core::to_string(row.trigger);
    out += ',';
    out += row.race_labeled ? "1" : "0";
    out += ',';
    out += row.detector_fired ? "1" : "0";
    out += ',';
    out += std::to_string(row.race_reports);
    out += ',';
    out += std::to_string(row.invariant_violations);
    out += '\n';
  }
  return out;
}

std::string render_oracle_markdown(const harness::OracleReport& report) {
  std::string out = "## Race-detector oracle cross-check\n\n";
  out +=
      "Each armed specimen ran one traced trial; the vector-clock "
      "happens-before detector analyzed the synchronization trace. A "
      "race-labeled specimen must fire the detector; every other specimen "
      "must leave it silent.\n\n";
  out += "```\n" + render_oracle_confusion(report) + "```\n\n";

  char line[96];
  std::snprintf(line, sizeof(line), "Agreement: %.1f%% over %zu specimens.\n",
                report.agreement() * 100.0, report.total());
  out += line;

  std::string disagreements;
  for (const auto& row : report.rows) {
    if (row.race_labeled == row.detector_fired) continue;
    disagreements += "- `" + row.fault_id + "` (" +
                     std::string(core::to_string(row.trigger)) + "): " +
                     (row.detector_fired ? "detector fired on a non-race label"
                                         : "race label but detector silent") +
                     "\n";
  }
  if (!disagreements.empty()) {
    out += "\nDisagreements:\n\n" + disagreements;
  }
  return out;
}

}  // namespace faultstudy::report
