// Fault specimens: executable injections built from study faults.
//
// A specimen binds together everything needed to re-create a fault in the
// simulator: which application to run, the ActiveFault to arm into it, the
// environment configuration that makes the trigger reachable (a small
// descriptor table, a nearly-full disk), the arming action that establishes
// the environmental precondition, and the workload that drives the app.
#pragma once

#include <functional>
#include <memory>

#include "apps/app.hpp"
#include "apps/database.hpp"
#include "apps/desktop.hpp"
#include "apps/webserver.hpp"
#include "apps/workload.hpp"
#include "corpus/seeds.hpp"
#include "env/environment.hpp"

namespace faultstudy::inject {

struct InjectionPlan {
  corpus::SeedFault seed;
  apps::ActiveFault fault;
  env::EnvironmentConfig env_config;
  apps::WorkloadSpec workload;
  /// Establishes the environmental precondition. Runs after the app has
  /// started (some conditions, like a hostname change, must happen under a
  /// running app).
  std::function<void(env::Environment&, apps::SimApp&)> arm_environment;
};

/// Builds the injection plan for a seed fault. `trial_seed` parameterizes
/// the environment's scheduling/workload randomness, not the fault itself.
InjectionPlan plan_for(const corpus::SeedFault& seed, std::uint64_t trial_seed);

/// Instantiates the right simulated application for a study target.
std::unique_ptr<apps::SimApp> make_app(core::AppId app);

/// Port hung children squat on; exposed so arming code and the application
/// fault logic agree (apps/app.cpp uses the same constant internally).
inline constexpr int kAuxPort = 8080;

/// Owner label for an app's runaway children; recovery must sweep this
/// owner as part of "kill all processes associated with the application".
std::string child_owner(const apps::SimApp& app);

}  // namespace faultstudy::inject
