// plan_for: the per-trigger arming recipes.
//
// Each recipe answers two questions: what must be true of the environment
// for this fault's condition to be reachable (configuration), and what
// concrete action establishes the condition (arming). The recipes are the
// executable counterpart of the paper's Section 5 bullet list.
#include "inject/specimen.hpp"

namespace faultstudy::inject {

namespace {

using core::Trigger;

std::size_t base_fds_for(core::AppId app) {
  switch (app) {
    case core::AppId::kApache:
      return apps::WebServerConfig{}.base_fds;
    case core::AppId::kMysql:
      return apps::DatabaseConfig{}.base_fds;
    case core::AppId::kGnome:
      return apps::DesktopConfig{}.base_fds;
  }
  return 16;
}

std::size_t worker_pool_for(core::AppId app) {
  switch (app) {
    case core::AppId::kApache:
      return apps::WebServerConfig{}.worker_pool;
    case core::AppId::kMysql:
      return apps::DatabaseConfig{}.worker_pool;
    case core::AppId::kGnome:
      return apps::DesktopConfig{}.worker_pool;
  }
  return 4;
}

/// How long the environment keeps a transient condition broken, in ticks.
/// Long enough that several fast recovery attempts are needed; short enough
/// that a retry budget outlives it.
constexpr env::Tick kHealAfter = 240;

}  // namespace

InjectionPlan plan_for(const corpus::SeedFault& seed,
                       std::uint64_t trial_seed) {
  InjectionPlan plan;
  plan.seed = seed;
  plan.fault.trigger = seed.trigger;
  plan.fault.symptom = seed.symptom;
  plan.fault.fault_id = seed.fault_id;

  plan.env_config.seed = trial_seed;
  plan.workload.seed = trial_seed ^ 0xA0;
  plan.arm_environment = [](env::Environment&, apps::SimApp&) {};

  // Faults with real engine-level implementations get their actual killer
  // input as the poison operation; the application recognizes the fault id
  // and the corresponding code path produces the failure.
  if (seed.fault_id == "apache-ei-01") {
    plan.workload.poison_op = "GET /search?q=" + std::string(2048, 'a');
  } else if (seed.fault_id == "gnome-ei-01") {
    plan.workload.poison_op = "click:pager-settings-tasklist";
  } else if (seed.fault_id == "gnome-ei-02") {
    plan.workload.poison_op = "click:calendar-prev-year";
  } else if (seed.fault_id == "gnome-ei-04") {
    plan.workload.poison_op = "open:archive /home/user/backup.tar.gz";
  } else if (seed.fault_id == "apache-ei-04") {
    plan.workload.poison_op = "GET /docs/empty/";
  } else if (seed.fault_id == "mysql-ei-01") {
    plan.workload.poison_op = "UPDATE orders SET id = 999999 WHERE id < 100";
  } else if (seed.fault_id == "mysql-ei-02") {
    plan.workload.poison_op =
        "SELECT * FROM orders WHERE id > 999999 ORDER BY id";
  } else if (seed.fault_id == "mysql-ei-03") {
    plan.workload.poison_op = "SELECT COUNT(*) FROM audit_log";
  } else if (seed.fault_id == "mysql-ei-04") {
    plan.workload.poison_op = "OPTIMIZE TABLE orders";
  } else if (seed.fault_id == "mysql-ei-05") {
    plan.workload.poison_op = "LOCK TABLES orders WRITE; FLUSH TABLES";
  }

  switch (seed.trigger) {
    // --- environment-independent: the workload alone triggers ---
    case Trigger::kBoundaryInput:
    case Trigger::kMissingInitialization:
    case Trigger::kWrongVariableUsage:
    case Trigger::kApiMisuse:
    case Trigger::kSignalHandlingBug:
    case Trigger::kLogicError:
    case Trigger::kUiEventSequence:
      break;  // poison item is already in the default workload

    case Trigger::kDeterministicLeak:
      plan.fault.leak_limit = 12;
      plan.workload.poison_at = -1;
      break;

    // --- environment-dependent-nontransient ---
    case Trigger::kResourceLeakUnderLoad:
      plan.fault.leak_limit = 8;
      plan.workload.poison_at = -1;
      break;

    case Trigger::kFdExhaustion:
      plan.fault.fds_per_leak = 4;
      plan.env_config.fd_slots = base_fds_for(seed.app) + 40;
      plan.workload.poison_at = -1;
      break;

    case Trigger::kDiskCacheFull:
      plan.workload.poison_at = -1;
      plan.arm_environment = [](env::Environment& e, apps::SimApp&) {
        // A long-running cache has consumed almost the whole budget.
        e.disk().append("/var/cache/apache/longlived",
                        apps::WebServerConfig{}.cache_quota - 1024);
      };
      break;

    case Trigger::kFileSizeLimit:
      plan.env_config.max_file_size = 64 * 1024;
      plan.workload.poison_at = -1;
      plan.arm_environment = [](env::Environment& e, apps::SimApp& app) {
        (void)app;
        // Months of traffic have grown the log to just under the limit.
        e.disk().append("/var/log/apache/access_log", 64 * 1024 - 512);
        e.disk().append("/var/lib/mysql/data/orders.MYD", 64 * 1024 - 512);
      };
      break;

    case Trigger::kFullFileSystem:
      plan.workload.poison_at = -1;
      plan.arm_environment = [](env::Environment& e, apps::SimApp&) {
        // Another tenant of the file system has filled it completely; the
        // application cannot free space it does not own.
        e.disk().consume_external(e.disk().capacity());
      };
      break;

    case Trigger::kNetworkResourceExhausted:
      plan.workload.poison_at = -1;
      plan.arm_environment = [](env::Environment& e, apps::SimApp&) {
        e.network().set_kernel_resource(6);
      };
      break;

    case Trigger::kHardwareRemoval:
      plan.workload.poison_at = -1;
      plan.arm_environment = [](env::Environment& e, apps::SimApp&) {
        e.network().remove_card();
      };
      break;

    case Trigger::kHostnameChanged:
      plan.workload.poison_at = -1;
      plan.arm_environment = [](env::Environment& e, apps::SimApp&) {
        e.set_hostname("renamed-host");  // after the app cached the old one
      };
      break;

    case Trigger::kExternalSocketLeak:
      plan.workload.poison_at = -1;
      plan.arm_environment = [](env::Environment& e, apps::SimApp&) {
        // Sound utilities exited without closing their sockets; every
        // remaining descriptor is gone.
        e.fds().acquire("sound-utilities", e.fds().available());
      };
      break;

    case Trigger::kCorruptFileMetadata:
      plan.arm_environment = [](env::Environment& e, apps::SimApp&) {
        e.disk().append("/home/user/attachment.dat", 64);
        e.disk().set_owner("/home/user/attachment.dat", -1);
      };
      break;

    case Trigger::kReverseDnsMissing:
      plan.workload.poison_at = -1;
      // No arming needed: the client's PTR record is simply absent (no
      // reverse records are configured unless a test adds them).
      break;

    // --- environment-dependent-transient ---
    case Trigger::kDnsError:
      plan.workload.poison_at = -1;
      plan.arm_environment = [](env::Environment& e, apps::SimApp&) {
        e.dns().break_until(env::DnsHealth::kErroring, e.now() + kHealAfter);
      };
      break;

    case Trigger::kDnsSlow:
      plan.workload.poison_at = -1;
      plan.arm_environment = [](env::Environment& e, apps::SimApp&) {
        e.dns().break_until(env::DnsHealth::kSlow, e.now() + kHealAfter);
      };
      break;

    case Trigger::kNetworkSlow:
      plan.workload.poison_at = -1;
      plan.arm_environment = [](env::Environment& e, apps::SimApp&) {
        e.network().degrade_until(env::LinkState::kSlow, e.now() + kHealAfter);
      };
      break;

    case Trigger::kProcessTableFull:
      plan.env_config.process_slots = worker_pool_for(seed.app) + 14;
      plan.workload.poison_at = -1;
      plan.workload.heavy_rate = 0.4;
      break;

    case Trigger::kPortsHeldByChildren:
      plan.workload.poison_at = -1;
      plan.workload.heavy_rate = 0.4;
      plan.arm_environment = [](env::Environment& e, apps::SimApp& app) {
        // Two children hung earlier and still hold the auxiliary port.
        const std::string owner = child_owner(app);
        for (int i = 0; i < 2; ++i) {
          if (auto pid = e.processes().spawn(owner); pid.has_value()) {
            e.processes().mark_hung(*pid);
            if (i == 0) e.network().bind_port(kAuxPort, owner);
          }
        }
      };
      break;

    case Trigger::kEntropyShortage:
      plan.env_config.entropy_refill_per_tick = 4;
      plan.workload.poison_at = -1;
      plan.arm_environment = [](env::Environment& e, apps::SimApp&) {
        e.entropy().drain_to(0, e.now());
      };
      break;

    case Trigger::kRaceCondition:
      plan.fault.hazard_start = 0.4;
      plan.fault.hazard_width = 0.12;
      plan.workload.poison_at = -1;
      plan.workload.racy_rate = 0.35;
      break;

    case Trigger::kWorkloadTiming:
      plan.fault.hazard_start = 0.3;
      plan.fault.hazard_width = 0.5;  // the user's stop-press often lands badly
      break;

    case Trigger::kUnknownTransient:
      plan.workload.poison_at = -1;
      break;  // the hidden condition is pending by construction

    case Trigger::kCount:
      break;
  }
  return plan;
}

}  // namespace faultstudy::inject
