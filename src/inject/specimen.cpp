#include "inject/specimen.hpp"

namespace faultstudy::inject {

std::unique_ptr<apps::SimApp> make_app(core::AppId app) {
  switch (app) {
    case core::AppId::kApache:
      return std::make_unique<apps::WebServer>();
    case core::AppId::kMysql:
      return std::make_unique<apps::Database>();
    case core::AppId::kGnome:
      return std::make_unique<apps::Desktop>();
  }
  return nullptr;
}

std::string child_owner(const apps::SimApp& app) {
  return std::string(app.name()) + "-child";
}

}  // namespace faultstudy::inject
