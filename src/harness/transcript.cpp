#include "harness/transcript.hpp"

#include "util/strings.hpp"

namespace faultstudy::harness {

namespace {
std::string_view kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kStart:
      return "start";
    case EventKind::kItemOk:
      return "ok";
    case EventKind::kFailure:
      return "FAILURE";
    case EventKind::kRecoveryBegin:
      return "recovery...";
    case EventKind::kRecoveryOk:
      return "recovered";
    case EventKind::kRecoveryFailed:
      return "RECOVERY FAILED";
    case EventKind::kVerdict:
      return "verdict";
    case EventKind::kFdOpen:
      return "fd-open";
    case EventKind::kFdClose:
      return "fd-close";
    case EventKind::kProcSpawn:
      return "proc-spawn";
    case EventKind::kProcKill:
      return "proc-kill";
    case EventKind::kDiskWrite:
      return "disk-write";
    case EventKind::kCheckpoint:
      return "checkpoint";
    case EventKind::kRollback:
      return "rollback";
    case EventKind::kSignalRaise:
      return "signal-raise";
  }
  return "?";
}
}  // namespace

void Transcript::record(EventKind kind, env::Tick at, std::size_t item,
                        std::string detail) {
  events_.push_back({kind, at, item, std::move(detail)});
}

std::size_t Transcript::count(EventKind kind) const noexcept {
  std::size_t n = 0;
  for (const auto& e : events_) {
    if (e.kind == kind) ++n;
  }
  return n;
}

std::string Transcript::to_string() const {
  std::string out;
  for (const auto& e : events_) {
    out += "[t=";
    out += std::to_string(e.at);
    out += "] item ";
    out += std::to_string(e.item);
    out += ' ';
    out += kind_name(e.kind);
    if (!e.detail.empty()) {
      out += ": ";
      out += e.detail;
    }
    out += '\n';
  }
  return out;
}

}  // namespace faultstudy::harness
