// Deterministic parallel trial execution for the experiment harness.
//
// The recovery matrix and the oracle cross-check are embarrassingly
// parallel: every (mechanism, seed) cell and every traced trial derives its
// RNG seed from util::fnv1a(fault_id), not from any shared stream, so cells
// can run on any thread in any order without perturbing each other. The
// determinism contract layered on util::ThreadPool is:
//
//   1. each unit of work writes only into the result slot owned by its
//      index (parallel_map pre-sizes the output);
//   2. all reduction into aggregate reports happens on the calling thread,
//      in index order, after the sweep drains;
//   3. thread count therefore changes wall-clock time and nothing else —
//      threads=1 runs the exact serial code path, and threads=N produces a
//      bit-identical MatrixResult / OracleReport.
//
// Thread counts resolve through util::resolve_threads: an explicit
// TrialConfig/flag value wins, else FAULTSTUDY_THREADS, else
// hardware_concurrency().
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "util/thread_pool.hpp"

namespace faultstudy::harness {

/// Lanes a harness sweep will actually use (0 = auto).
inline std::size_t effective_threads(std::size_t requested) noexcept {
  return util::resolve_threads(requested);
}

/// fn(i) for every i in [0, n) across `threads` lanes (0 = auto).
void parallel_for_index(std::size_t n, std::size_t threads,
                        const std::function<void(std::size_t)>& fn);

/// Index-ordered map: out[i] = fn(i) for any thread count.
template <typename T, typename Fn>
std::vector<T> parallel_map(std::size_t n, std::size_t threads, Fn&& fn) {
  std::vector<T> out(n);
  parallel_for_index(n, threads,
                     [&](std::size_t i) { out[i] = fn(i); });
  return out;
}

}  // namespace faultstudy::harness
