// Trial transcripts: a structured, append-only record of what happened
// during a trial, for the examples and for post-mortem inspection of
// surprising matrix cells.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "env/clock.hpp"

namespace faultstudy::harness {

enum class EventKind : std::uint8_t {
  kStart,
  kItemOk,
  kFailure,
  kRecoveryBegin,
  kRecoveryOk,
  kRecoveryFailed,
  kVerdict,
  // -- resource-level events, the invariant checker's input
  //    (analysis/invariant_checker.hpp). `item` carries the count/pid/bytes
  //    noted per kind. --
  kFdOpen,       ///< item = descriptors acquired beyond the running balance
  kFdClose,      ///< item = descriptors released
  kProcSpawn,    ///< item = pid of the spawned process
  kProcKill,     ///< item = pid of the killed process
  kDiskWrite,    ///< item = bytes written
  kCheckpoint,   ///< a recovery checkpoint was taken
  kRollback,     ///< item = workload items rewound past
  kSignalRaise,  ///< item = pid the signal targets
};

struct Event {
  EventKind kind = EventKind::kStart;
  env::Tick at = 0;
  std::size_t item = 0;
  std::string detail;
};

class Transcript {
 public:
  void record(EventKind kind, env::Tick at, std::size_t item,
              std::string detail = {});

  const std::vector<Event>& events() const noexcept { return events_; }

  std::size_t count(EventKind kind) const noexcept;

  /// Multi-line human-readable rendering.
  std::string to_string() const;

 private:
  std::vector<Event> events_;
};

}  // namespace faultstudy::harness
