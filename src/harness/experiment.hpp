// The end-to-end recovery experiment (Section 8's proposed future work):
// run every study fault against every recovery mechanism and measure
// whether the application survives.
//
// Trial protocol. The application runs `cycles` passes of its fixed
// workload. Items must be executed in order; when one fails, the mechanism
// recovers the application and the item is re-executed ("we do not assume a
// user will generously avoid the fault trigger"). A fault survives when the
// full workload completes within the retry/recovery budgets; it defeats the
// mechanism when one item keeps failing past the per-item cap, recovery
// itself fails, or the budget is exhausted.
#pragma once

#include <array>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/aggregate.hpp"
#include "inject/specimen.hpp"
#include "recovery/mechanism.hpp"

namespace faultstudy::harness {

struct TrialConfig {
  std::size_t cycles = 3;            ///< workload passes per trial
  std::size_t per_item_retries = 8;  ///< consecutive failures of one item
  std::size_t recovery_budget = 40;  ///< total recoveries per trial
  std::uint64_t seed = 99;
};

struct TrialOutcome {
  bool survived = false;
  bool failure_observed = false;
  std::size_t failures = 0;
  std::size_t recoveries = 0;
  /// Work re-executed because recoveries rolled back past completed items
  /// (the time-redundancy cost of coarse checkpoint intervals).
  std::size_t items_reexecuted = 0;
  /// True when application state survived every recovery the trial used
  /// (always true for state-preserving mechanisms; false once a lossy
  /// restart actually ran).
  bool state_preserved = true;
  std::string first_failure;
};

/// Runs one fault under one mechanism.
TrialOutcome run_trial(const inject::InjectionPlan& plan,
                       recovery::Mechanism& mechanism,
                       const TrialConfig& config = {});

/// Mechanism factory, so the matrix can instantiate a fresh mechanism per
/// trial (mechanisms hold per-trial checkpoints).
using MechanismFactory = std::function<std::unique_ptr<recovery::Mechanism>()>;

struct NamedMechanism {
  std::string name;
  MechanismFactory make;
};

/// The study's mechanism roster: process pairs, rollback-retry, progressive
/// retry, cold restart, rejuvenation, app-specific.
std::vector<NamedMechanism> standard_mechanisms();

/// Survival results for one mechanism over a fault set.
struct MechanismReport {
  std::string mechanism;
  bool generic = true;
  /// Per fault class: [survived, total] over faults whose trial observed a
  /// failure.
  std::array<std::size_t, 3> survived{};
  std::array<std::size_t, 3> total{};
  std::size_t vacuous = 0;  ///< trials where the fault never triggered
  std::size_t state_losses = 0;

  double survival_rate(core::FaultClass c) const noexcept {
    const auto i = static_cast<std::size_t>(c);
    return total[i] == 0 ? 0.0
                         : static_cast<double>(survived[i]) /
                               static_cast<double>(total[i]);
  }
  std::size_t survived_all() const noexcept {
    return survived[0] + survived[1] + survived[2];
  }
  std::size_t total_all() const noexcept {
    return total[0] + total[1] + total[2];
  }
};

struct MatrixResult {
  std::vector<MechanismReport> reports;
  std::size_t fault_count = 0;
};

/// Runs the full fault x mechanism matrix over the given seeds. `repeats`
/// runs each (fault, mechanism) cell several times with different seeds and
/// counts the cell as survived when a majority of repeats survive (races
/// are probabilistic).
MatrixResult run_matrix(const std::vector<corpus::SeedFault>& seeds,
                        const std::vector<NamedMechanism>& mechanisms,
                        const TrialConfig& config = {}, int repeats = 3);

}  // namespace faultstudy::harness
