// The end-to-end recovery experiment (Section 8's proposed future work):
// run every study fault against every recovery mechanism and measure
// whether the application survives.
//
// Trial protocol. The application runs `cycles` passes of its fixed
// workload. Items must be executed in order; when one fails, the mechanism
// recovers the application and the item is re-executed ("we do not assume a
// user will generously avoid the fault trigger"). A fault survives when the
// full workload completes within the retry/recovery budgets; it defeats the
// mechanism when one item keeps failing past the per-item cap, recovery
// itself fails, or the budget is exhausted.
#pragma once

#include <array>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/aggregate.hpp"
#include "env/trace.hpp"
#include "forensics/postmortem.hpp"
#include "harness/transcript.hpp"
#include "inject/specimen.hpp"
#include "obs/atlas.hpp"
#include "recovery/mechanism.hpp"
#include "telemetry/trial.hpp"

namespace faultstudy::harness {

struct TrialConfig {
  std::size_t cycles = 3;            ///< workload passes per trial
  std::size_t per_item_retries = 8;  ///< consecutive failures of one item
  std::size_t recovery_budget = 40;  ///< total recoveries per trial
  std::uint64_t seed = 99;
  /// Execution lanes for run_matrix / run_oracle_crosscheck sweeps.
  /// 0 = auto (FAULTSTUDY_THREADS env var, else hardware_concurrency);
  /// 1 = the exact serial code path. Any value produces bit-identical
  /// results — trials derive their RNG streams from fault ids, results
  /// land in per-index slots, and reduction is serial in index order.
  std::size_t threads = 0;
};

struct TrialOutcome {
  bool survived = false;
  bool failure_observed = false;
  std::size_t failures = 0;
  std::size_t recoveries = 0;
  /// Work re-executed because recoveries rolled back past completed items
  /// (the time-redundancy cost of coarse checkpoint intervals).
  std::size_t items_reexecuted = 0;
  /// True when application state survived every recovery the trial used
  /// (always true for state-preserving mechanisms; false once a lossy
  /// restart actually ran).
  bool state_preserved = true;
  std::string first_failure;
};

/// What a traced trial leaves behind for the analysis layer: the resource
/// transcript (invariant checking) and the synchronization-event trace
/// (happens-before race detection).
struct TrialObservation {
  Transcript transcript;
  std::vector<env::TraceEvent> trace;
};

/// Runs one fault under one mechanism. With `observation` set, the trial
/// runs traced: the environment's synchronization log is enabled and the
/// harness records the resource-level transcript (descriptor and
/// process-table deltas, disk writes, recovery windows) alongside the
/// protocol events.
///
/// With `telemetry` set, the trial binds it as the environment's counter
/// sink, times items and recoveries in simulated ticks, and records
/// sim-domain spans (a "trial" root plus one "recovery/<mechanism>" span
/// per recovery). Virtual time is simulation state, so the recorded
/// telemetry is identical for every thread count.
///
/// With `forensics` set, the trial binds its flight-recorder ring as the
/// environment's forensic sink: the harness protocol, environment resource
/// transitions, application state changes, and recovery actions land in the
/// ring as they happen. When the trial does NOT survive, the runner
/// snapshots the ring plus the environment's resource state into
/// `forensics->postmortem` and reconstructs the causal chain from injected
/// fault to recovery outcome (forensics/postmortem.hpp); trials that ran
/// traced also get detector verdicts folded into the chain's detection
/// stage. Compiled out under -DFAULTSTUDY_FORENSICS=OFF.
///
/// With `coverage` set, the trial binds it as the environment's coverage
/// sink: every probe the trial crosses — env denial branches, app state
/// transitions, recovery-mechanism actions, the injected trigger, and the
/// verdict — bumps its counter in the map. Probe counts are simulation
/// state, so the map is identical for every thread count. Compiled out
/// under -DFAULTSTUDY_COVERAGE=OFF.
TrialOutcome run_trial(const inject::InjectionPlan& plan,
                       recovery::Mechanism& mechanism,
                       const TrialConfig& config = {},
                       TrialObservation* observation = nullptr,
                       telemetry::TrialTelemetry* telemetry = nullptr,
                       forensics::TrialForensics* forensics = nullptr,
                       obs::CoverageMap* coverage = nullptr);

/// Mechanism factory, so the matrix can instantiate a fresh mechanism per
/// trial (mechanisms hold per-trial checkpoints).
using MechanismFactory = std::function<std::unique_ptr<recovery::Mechanism>()>;

struct NamedMechanism {
  std::string name;
  MechanismFactory make;
};

/// The study's mechanism roster: process pairs, rollback-retry, progressive
/// retry, cold restart, rejuvenation, app-specific.
std::vector<NamedMechanism> standard_mechanisms();

/// Survival results for one mechanism over a fault set.
struct MechanismReport {
  std::string mechanism;
  bool generic = true;
  /// Per fault class: [survived, total] over faults whose trial observed a
  /// failure.
  std::array<std::size_t, 3> survived{};
  std::array<std::size_t, 3> total{};
  std::size_t vacuous = 0;  ///< trials where the fault never triggered
  std::size_t state_losses = 0;

  double survival_rate(core::FaultClass c) const noexcept {
    const auto i = static_cast<std::size_t>(c);
    return total[i] == 0 ? 0.0
                         : static_cast<double>(survived[i]) /
                               static_cast<double>(total[i]);
  }
  std::size_t survived_all() const noexcept {
    return survived[0] + survived[1] + survived[2];
  }
  std::size_t total_all() const noexcept {
    return total[0] + total[1] + total[2];
  }
};

struct MatrixResult {
  std::vector<MechanismReport> reports;
  std::size_t fault_count = 0;
};

/// Runs the full fault x mechanism matrix over the given seeds. `repeats`
/// runs each (fault, mechanism) cell several times with different seeds and
/// counts the cell as survived when a majority of repeats survive (races
/// are probabilistic). Cells run on `config.threads` lanes; the result is
/// identical for every thread count. Mechanism factories must be safe to
/// invoke concurrently (the standard roster's stateless lambdas are).
/// With `telemetry` set, every trial runs instrumented: counters and tick
/// histograms from all repeats of a cell merge into one per-cell aggregate
/// (held in the cell's index slot), and the serial reduction folds cells
/// into `telemetry` in index order — so study-level metrics and the kept
/// traces (the first repeat of each cell, labeled "mechanism/fault-id")
/// are bit-identical for every thread count.
/// With `forensics` set, every trial runs with a flight recorder attached
/// and every failed trial's post-mortem (stamped with its repeat ordinal)
/// lands in its cell's index slot; the serial reduction folds them into
/// `forensics` in (mechanism, seed, repeat) order, so the post-mortem
/// collection — and everything triage/export derives from it — is
/// bit-identical for every thread count.
/// With `coverage` set, every trial records its probe map; repeats of a
/// cell merge into one per-cell map (held in the cell's index slot), and
/// the serial reduction folds cells into the atlas in (mechanism, seed)
/// index order — so the atlas, its blind-spot list, and every export
/// derived from it are bit-identical for every thread count.
MatrixResult run_matrix(const std::vector<corpus::SeedFault>& seeds,
                        const std::vector<NamedMechanism>& mechanisms,
                        const TrialConfig& config = {}, int repeats = 3,
                        telemetry::StudyTelemetry* telemetry = nullptr,
                        forensics::StudyForensics* forensics = nullptr,
                        obs::CoverageAtlas* coverage = nullptr);

// --- detector-vs-taxonomy oracle cross-check ------------------------------
//
// The race detector is an *independent oracle* for the taxonomy's
// environment-dependent-transient race class: a specimen whose armed fault
// is labeled kRaceCondition must light the detector up (the racy
// synchronization structure exists in every traced execution, whether or
// not this interleaving triggered the failure), and a specimen whose fault
// is environment-independent must never do so. Disagreement in either
// direction means the classifier's label and the simulator's mechanics have
// drifted apart.

/// One specimen's verdicts.
struct OracleRow {
  std::string fault_id;
  core::AppId app = core::AppId::kApache;
  core::FaultClass label = core::FaultClass::kEnvironmentIndependent;
  core::Trigger trigger = core::Trigger::kBoundaryInput;
  bool race_labeled = false;   ///< trigger == kRaceCondition
  bool detector_fired = false; ///< happens-before detector found >=1 race
  std::size_t race_reports = 0;
  std::size_t invariant_violations = 0;
};

struct OracleReport {
  std::vector<OracleRow> rows;

  // Confusion counts: race-labeled vs detector verdict, and the same for
  // everything else broken out by fault class.
  std::size_t race_fired = 0;
  std::size_t race_silent = 0;
  std::size_t ei_fired = 0;
  std::size_t ei_silent = 0;
  std::size_t edn_fired = 0;
  std::size_t edn_silent = 0;
  std::size_t other_edt_fired = 0;  ///< EDT but not race-labeled
  std::size_t other_edt_silent = 0;

  std::size_t total() const noexcept { return rows.size(); }
  /// Fraction of specimens where the detector verdict matches the label
  /// (race-labeled -> fired, everything else -> silent).
  double agreement() const noexcept {
    const std::size_t agree =
        race_fired + ei_silent + edn_silent + other_edt_silent;
    return rows.empty()
               ? 1.0
               : static_cast<double>(agree) / static_cast<double>(rows.size());
  }
};

/// Runs one traced trial per seed (rollback-retry keeps the trial alive
/// through transient failures) and compares the detector verdict against
/// the taxonomy label. Deterministic in `base.seed`; trials run on
/// `base.threads` lanes, each with its own detector, and rows come out in
/// seed order for every thread count.
OracleReport run_oracle_crosscheck(const std::vector<corpus::SeedFault>& seeds,
                                   const TrialConfig& base = {});

}  // namespace faultstudy::harness
