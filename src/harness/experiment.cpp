#include "harness/experiment.hpp"

#include "core/rules.hpp"
#include "util/rng.hpp"
#include "recovery/app_specific.hpp"
#include "recovery/process_pairs.hpp"
#include "recovery/progressive.hpp"
#include "recovery/rejuvenation.hpp"
#include "recovery/restart.hpp"
#include "recovery/rollback.hpp"

namespace faultstudy::harness {

TrialOutcome run_trial(const inject::InjectionPlan& plan,
                       recovery::Mechanism& mechanism,
                       const TrialConfig& config) {
  TrialOutcome outcome;

  inject::InjectionPlan p = plan;
  p.env_config.seed = config.seed;
  p.workload.seed = config.seed ^ 0xA0;

  env::Environment environment(p.env_config);
  auto app = inject::make_app(p.seed.app);
  app->arm_fault(p.fault);
  if (!app->start(environment)) {
    outcome.first_failure = "application failed to start";
    return outcome;
  }
  p.arm_environment(environment, *app);
  mechanism.attach(*app, environment);

  const apps::Workload workload = apps::make_workload(p.seed.app, p.workload);
  const std::size_t total_items = workload.size() * config.cycles;

  std::size_t i = 0;
  std::size_t consecutive = 0;  // consecutive failures of the current item
  while (i < total_items) {
    apps::WorkItem item = workload.items[i % workload.size()];
    if (consecutive > 0) mechanism.prepare_retry(item);

    const apps::StepResult result = app->handle(item, environment);
    if (!apps::is_failure(result)) {
      mechanism.on_item_success(*app, environment);
      consecutive = 0;
      ++i;
      continue;
    }

    ++outcome.failures;
    outcome.failure_observed = true;
    if (outcome.first_failure.empty()) outcome.first_failure = result.detail;

    if (++consecutive > config.per_item_retries) return outcome;
    if (outcome.recoveries >= config.recovery_budget) return outcome;

    const recovery::RecoveryAction action =
        mechanism.recover(*app, environment);
    ++outcome.recoveries;
    if (!mechanism.preserves_state()) outcome.state_preserved = false;
    if (!action.recovered) {
      outcome.first_failure += " (recovery failed)";
      return outcome;
    }
    // Roll the cursor back to the restored checkpoint; those items are
    // re-executed against the rolled-back state.
    const std::size_t rewind = std::min(action.rewind_items, i);
    outcome.items_reexecuted += rewind;
    i -= rewind;
  }

  app->stop(environment);
  outcome.survived = true;
  return outcome;
}

std::vector<NamedMechanism> standard_mechanisms() {
  return {
      {"process-pairs",
       [] { return std::make_unique<recovery::ProcessPairs>(); }},
      {"rollback-retry",
       [] { return std::make_unique<recovery::RollbackRetry>(); }},
      {"progressive-retry",
       [] { return std::make_unique<recovery::ProgressiveRetry>(); }},
      {"cold-restart",
       [] { return std::make_unique<recovery::ColdRestart>(); }},
      {"rejuvenation",
       [] { return std::make_unique<recovery::Rejuvenation>(); }},
      {"app-specific",
       [] { return std::make_unique<recovery::AppSpecific>(); }},
  };
}

MatrixResult run_matrix(const std::vector<corpus::SeedFault>& seeds,
                        const std::vector<NamedMechanism>& mechanisms,
                        const TrialConfig& config, int repeats) {
  MatrixResult result;
  result.fault_count = seeds.size();
  if (repeats < 1) repeats = 1;

  for (const auto& nm : mechanisms) {
    MechanismReport report;
    report.mechanism = nm.name;
    {
      auto probe = nm.make();
      report.generic = probe->is_generic();
    }

    for (const auto& seed : seeds) {
      const auto cls = static_cast<std::size_t>(corpus::seed_class(seed));
      int survived_votes = 0;
      int observed_votes = 0;
      bool lost_state = false;

      for (int r = 0; r < repeats; ++r) {
        TrialConfig tc = config;
        tc.seed = config.seed + static_cast<std::uint64_t>(r) * 7919 +
                  util::fnv1a(seed.fault_id);
        const auto plan = inject::plan_for(seed, tc.seed);
        auto mechanism = nm.make();
        const TrialOutcome outcome = run_trial(plan, *mechanism, tc);
        if (outcome.failure_observed) {
          ++observed_votes;
          if (outcome.survived) ++survived_votes;
          if (!outcome.state_preserved) lost_state = true;
        }
      }

      if (observed_votes == 0) {
        ++report.vacuous;
        continue;
      }
      ++report.total[cls];
      if (survived_votes * 2 > observed_votes) {
        ++report.survived[cls];
        if (lost_state) ++report.state_losses;
      }
    }
    result.reports.push_back(std::move(report));
  }
  return result;
}

}  // namespace faultstudy::harness
