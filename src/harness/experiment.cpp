#include "harness/experiment.hpp"

#include <algorithm>
#include <optional>

#include "analysis/invariant_checker.hpp"
#include "analysis/race_detector.hpp"
#include "core/rules.hpp"
#include "harness/parallel.hpp"
#include "util/rng.hpp"
#include "recovery/app_specific.hpp"
#include "recovery/process_pairs.hpp"
#include "recovery/progressive.hpp"
#include "recovery/rejuvenation.hpp"
#include "recovery/restart.hpp"
#include "recovery/rollback.hpp"

namespace faultstudy::harness {

namespace {

/// Watches the environment's resource tables between harness actions and
/// records the deltas as transcript events; the invariant checker consumes
/// exactly this stream.
class ResourceRecorder {
 public:
  ResourceRecorder(Transcript& transcript, env::Environment& environment,
                   std::string owner)
      : transcript_(transcript), environment_(environment),
        owner_(std::move(owner)) {
    fds_ = environment_.fds().held_by(owner_);
    environment_.processes().owned_by(owner_, pids_);
    std::sort(pids_.begin(), pids_.end());
    disk_used_ = environment_.disk().used();
  }

  /// Diffs the tables against the last call and appends fd-open/fd-close,
  /// proc-spawn/proc-kill, and disk-write events for whatever changed.
  void observe(std::size_t item) {
    const std::size_t fds = environment_.fds().held_by(owner_);
    if (fds > fds_) {
      transcript_.record(EventKind::kFdOpen, environment_.now(), fds - fds_,
                         owner_);
    } else if (fds < fds_) {
      transcript_.record(EventKind::kFdClose, environment_.now(), fds_ - fds,
                         owner_);
    }
    fds_ = fds;

    // scratch_ is a member so the per-observation snapshot reuses one
    // allocation for the whole trial.
    environment_.processes().owned_by(owner_, scratch_);
    std::sort(scratch_.begin(), scratch_.end());
    for (const env::Pid pid : scratch_) {
      if (!std::binary_search(pids_.begin(), pids_.end(), pid)) {
        transcript_.record(EventKind::kProcSpawn, environment_.now(), pid,
                           owner_);
      }
    }
    for (const env::Pid pid : pids_) {
      if (!std::binary_search(scratch_.begin(), scratch_.end(), pid)) {
        transcript_.record(EventKind::kProcKill, environment_.now(), pid,
                           owner_);
      }
    }
    std::swap(pids_, scratch_);

    const std::uint64_t used = environment_.disk().used();
    if (used > disk_used_) {
      transcript_.record(EventKind::kDiskWrite, environment_.now(),
                         static_cast<std::size_t>(used - disk_used_),
                         "item " + std::to_string(item));
    }
    disk_used_ = used;
  }

 private:
  Transcript& transcript_;
  env::Environment& environment_;
  std::string owner_;
  std::size_t fds_ = 0;
  std::vector<env::Pid> pids_;
  std::vector<env::Pid> scratch_;
  std::uint64_t disk_used_ = 0;
};

/// Maps the trial verdict onto its coverage probe; the atlas's "trial"
/// section mirrors the TrialVerdict enum one-to-one.
obs::Site verdict_site(forensics::TrialVerdict verdict) noexcept {
  switch (verdict) {
    case forensics::TrialVerdict::kSurvived: return obs::Site::kTrialSurvived;
    case forensics::TrialVerdict::kStartFailure:
      return obs::Site::kTrialStartFailure;
    case forensics::TrialVerdict::kRetryCapExceeded:
      return obs::Site::kTrialRetryCapExceeded;
    case forensics::TrialVerdict::kBudgetExhausted:
      return obs::Site::kTrialBudgetExhausted;
    case forensics::TrialVerdict::kRecoveryFailed:
      return obs::Site::kTrialRecoveryFailed;
    case forensics::TrialVerdict::kCount: break;
  }
  return obs::Site::kTrialSurvived;
}

/// Transcript verdict labels predate the TrialVerdict enum; keep the exact
/// strings so existing transcript consumers see no change.
std::string_view verdict_label(forensics::TrialVerdict verdict) noexcept {
  switch (verdict) {
    case forensics::TrialVerdict::kSurvived: return "survived";
    case forensics::TrialVerdict::kStartFailure: return "failed to start";
    case forensics::TrialVerdict::kRetryCapExceeded:
      return "item failed past the retry cap";
    case forensics::TrialVerdict::kBudgetExhausted:
      return "recovery budget exhausted";
    case forensics::TrialVerdict::kRecoveryFailed: return "recovery failed";
    case forensics::TrialVerdict::kCount: break;
  }
  return "?";
}

}  // namespace

TrialOutcome run_trial(const inject::InjectionPlan& plan,
                       recovery::Mechanism& mechanism,
                       const TrialConfig& config,
                       TrialObservation* observation,
                       telemetry::TrialTelemetry* telemetry,
                       forensics::TrialForensics* forensics,
                       obs::CoverageMap* coverage) {
  TrialOutcome outcome;

  // Patch the trial seed into cheap copies of the two config structs rather
  // than copying the whole plan (seed strings, arming closure and all).
  env::EnvironmentConfig env_config = plan.env_config;
  env_config.seed = config.seed;
  apps::WorkloadSpec workload_spec = plan.workload;
  workload_spec.seed = config.seed ^ 0xA0;

  env::Environment environment(env_config);
  if (observation != nullptr) environment.trace().enable();

  // Bind the flight recorder before anything else happens so the ring sees
  // the whole trial: arming, resource transitions, recoveries, verdict.
  forensics::FlightRecorder* flight = nullptr;
  if (forensics != nullptr) {
    flight = &forensics->ring;
    flight->bind_clock(&environment.clock());
    environment.set_flight(flight);
  }

  const apps::Workload workload =
      apps::make_workload(plan.seed.app, workload_spec);
  FS_FORENSIC(flight, record(forensics::FlightCode::kTrialStart,
                             workload.size(), config.cycles));

  // Bind the coverage sink before any probe can fire; mechanisms cache it
  // in attach(), the same way they cache the telemetry counters.
  if (coverage != nullptr) environment.set_coverage(coverage);

  // Bind telemetry before attach(): mechanisms cache the sink there.
  telemetry::SpanTracer* tracer = nullptr;
  std::string recovery_span_name;
  if (telemetry != nullptr) {
    environment.set_counters(&telemetry->counters);
    telemetry->spans.bind_sim(&environment.clock());
    tracer = &telemetry->spans;
    recovery_span_name = "recovery/";
    recovery_span_name += mechanism.name();
  }
  TELEM_SPAN(tracer, "trial");

  auto app = inject::make_app(plan.seed.app);
  app->arm_fault(plan.fault);
  FS_FORENSIC(flight,
              record(forensics::FlightCode::kFaultArmed,
                     static_cast<std::uint64_t>(plan.seed.trigger),
                     static_cast<std::uint64_t>(plan.seed.symptom)));
  FS_COVER(coverage, hit_inject(plan.seed.trigger));

  const auto finish = [&](forensics::TrialVerdict verdict) {
    FS_FORENSIC(flight, record(forensics::FlightCode::kVerdict,
                               static_cast<std::uint64_t>(verdict)));
    FS_COVER(coverage, hit(verdict_site(verdict)));
    if (observation != nullptr) {
      observation->transcript.record(EventKind::kVerdict, environment.now(), 0,
                                     std::string(verdict_label(verdict)));
      observation->trace = environment.trace().events();
    }
#if FAULTSTUDY_FORENSICS
    if (forensics != nullptr &&
        verdict != forensics::TrialVerdict::kSurvived) {
      forensics::PostMortemInputs inputs;
      inputs.fault_id = plan.seed.fault_id;
      inputs.app = plan.seed.app;
      inputs.fault_class = corpus::seed_class(plan.seed);
      inputs.trigger = plan.seed.trigger;
      inputs.mechanism = mechanism.name();
      inputs.verdict = verdict;
      inputs.failures = outcome.failures;
      inputs.recoveries = outcome.recoveries;
      inputs.first_failure = outcome.first_failure;
      if (observation != nullptr) {
        inputs.transcript = &observation->transcript;
        inputs.trace = observation->trace;
      }
      forensics->postmortem =
          forensics::build_postmortem(forensics->ring, environment, inputs);
    }
#endif
  };

  if (!app->start(environment)) {
    outcome.first_failure = "application failed to start";
    finish(forensics::TrialVerdict::kStartFailure);
    return outcome;
  }
  plan.arm_environment(environment, *app);
  FS_FORENSIC(flight, record(forensics::FlightCode::kEnvArmed));
  mechanism.attach(*app, environment);
  FS_COVER(coverage, hit(obs::Site::kRecAttach));

  // The resource baseline is taken after start + arming: the recorder sees
  // only what the workload and the mechanism do from here on.
  std::optional<ResourceRecorder> recorder;
  if (observation != nullptr) {
    recorder.emplace(observation->transcript, environment,
                     std::string(app->name()));
    observation->transcript.record(EventKind::kStart, environment.now(), 0,
                                   std::string(app->name()));
  }

  const std::size_t total_items = workload.size() * config.cycles;

  std::size_t i = 0;
  std::size_t consecutive = 0;  // consecutive failures of the current item
  apps::WorkItem retry_item;    // scratch for mechanism-adjusted retries
  while (i < total_items) {
    // The common path hands the workload's own item to the app; only a
    // retry that a mechanism may rewrite pays for a copy.
    const apps::WorkItem* item = &workload.items[i % workload.size()];
    if (consecutive > 0) {
      retry_item = *item;
      mechanism.prepare_retry(retry_item);
      item = &retry_item;
    }

    const env::Tick item_start = environment.now();
    const apps::StepResult result = app->handle(*item, environment);
    FS_TELEM(telemetry,
             item_latency_ticks.observe(environment.now() - item_start));
    if (recorder.has_value()) {
      recorder->observe(i);
      observation->transcript.record(
          apps::is_failure(result) ? EventKind::kFailure : EventKind::kItemOk,
          environment.now(), i, result.detail);
    }
    if (!apps::is_failure(result)) {
      mechanism.on_item_success(*app, environment);
      consecutive = 0;
      ++i;
      continue;
    }

    ++outcome.failures;
    outcome.failure_observed = true;
    if (outcome.first_failure.empty()) outcome.first_failure = result.detail;
    FS_FORENSIC(flight,
                record(forensics::FlightCode::kItemFailed, i,
                       static_cast<std::uint64_t>(result.status)));

    if (++consecutive > config.per_item_retries) {
      finish(forensics::TrialVerdict::kRetryCapExceeded);
      return outcome;
    }
    if (outcome.recoveries >= config.recovery_budget) {
      finish(forensics::TrialVerdict::kBudgetExhausted);
      return outcome;
    }

    if (recorder.has_value()) {
      observation->transcript.record(EventKind::kRecoveryBegin,
                                     environment.now(), i);
    }
    FS_FORENSIC(flight, record(forensics::FlightCode::kRecoveryBegin, i));
    const env::Tick recovery_start = environment.now();
    recovery::RecoveryAction action;
    {
      TELEM_SPAN(tracer, recovery_span_name);
      action = mechanism.recover(*app, environment);
    }
    FS_TELEM(telemetry, counters.recovery.attempts++);
    FS_TELEM(telemetry, recovery_latency_ticks.observe(environment.now() -
                                                       recovery_start));
    ++outcome.recoveries;
    if (!mechanism.preserves_state()) outcome.state_preserved = false;
    // Roll the cursor back to the restored checkpoint; those items are
    // re-executed against the rolled-back state.
    const std::size_t rewind =
        action.recovered ? std::min(action.rewind_items, i) : 0;
    if (recorder.has_value()) {
      recorder->observe(i);
      if (rewind > 0) {
        observation->transcript.record(EventKind::kRollback, environment.now(),
                                       rewind);
      }
      observation->transcript.record(action.recovered
                                         ? EventKind::kRecoveryOk
                                         : EventKind::kRecoveryFailed,
                                     environment.now(), i);
    }
    if (rewind > 0) {
      FS_FORENSIC(flight, record(forensics::FlightCode::kRollback, rewind));
      FS_COVER(coverage, hit(obs::Site::kRecRollbackRewind));
    }
    if (!action.recovered) {
      FS_TELEM(telemetry, counters.recovery.failures++);
      FS_FORENSIC(flight,
                  record(forensics::FlightCode::kRecoveryFailed, i));
      FS_COVER(coverage, hit(obs::Site::kRecRecoveryFailed));
      outcome.first_failure += " (recovery failed)";
      finish(forensics::TrialVerdict::kRecoveryFailed);
      return outcome;
    }
    FS_TELEM(telemetry, counters.recovery.successes++);
    FS_TELEM(telemetry, counters.recovery.items_rewound += rewind);
    FS_FORENSIC(flight,
                record(forensics::FlightCode::kRecoveryOk, i, rewind));
    FS_COVER(coverage, hit(obs::Site::kRecRecoveryOk));
    outcome.items_reexecuted += rewind;
    i -= rewind;
  }

  // Judge the resource balance before orderly shutdown: stop() releasing
  // everything would mask descriptors the workload leaked.
  if (recorder.has_value()) recorder->observe(i);
  app->stop(environment);
  outcome.survived = true;
  finish(forensics::TrialVerdict::kSurvived);
  return outcome;
}

std::vector<NamedMechanism> standard_mechanisms() {
  return {
      {"process-pairs",
       [] { return std::make_unique<recovery::ProcessPairs>(); }},
      {"rollback-retry",
       [] { return std::make_unique<recovery::RollbackRetry>(); }},
      {"progressive-retry",
       [] { return std::make_unique<recovery::ProgressiveRetry>(); }},
      {"cold-restart",
       [] { return std::make_unique<recovery::ColdRestart>(); }},
      {"rejuvenation",
       [] { return std::make_unique<recovery::Rejuvenation>(); }},
      {"app-specific",
       [] { return std::make_unique<recovery::AppSpecific>(); }},
  };
}

MatrixResult run_matrix(const std::vector<corpus::SeedFault>& seeds,
                        const std::vector<NamedMechanism>& mechanisms,
                        const TrialConfig& config, int repeats,
                        telemetry::StudyTelemetry* telemetry,
                        forensics::StudyForensics* forensics,
                        obs::CoverageAtlas* coverage) {
  MatrixResult result;
  result.fault_count = seeds.size();
  if (repeats < 1) repeats = 1;
  // The atlas registers its axes up front (serial), so even seeds whose
  // cells never run — or an empty sweep — leave a well-formed atlas.
  if (coverage != nullptr) {
    std::vector<std::string> names;
    names.reserve(mechanisms.size());
    for (const auto& nm : mechanisms) names.push_back(nm.name);
    coverage->begin_study(seeds, names);
  }
  if (seeds.empty() || mechanisms.empty()) {
    for (const auto& nm : mechanisms) {
      MechanismReport report;
      report.mechanism = nm.name;
      auto probe = nm.make();
      report.generic = probe->is_generic();
      result.reports.push_back(std::move(report));
    }
    return result;
  }

  // Majority vote over the repeats of one (mechanism, seed) cell. Every
  // trial seed is derived from the fault id, so cells are independent and
  // farm out to the pool; the reduction below runs on this thread in index
  // order, making the MatrixResult identical for every thread count.
  struct CellVotes {
    int survived = 0;
    int observed = 0;
    bool lost_state = false;
    /// Per-cell telemetry aggregate (counters and histograms summed over
    /// repeats; the spans kept are the first repeat's). Heap-allocated so
    /// the untelemetered path pays one pointer per cell, nothing more.
    std::unique_ptr<telemetry::TrialTelemetry> telem;
    /// Per-repeat forensic fold data, in repeat order: whether the trial
    /// survived and (iff it did not) its post-mortem.
    struct TrialFate {
      bool survived = false;
      std::optional<forensics::PostMortemRecord> postmortem;
    };
    std::vector<TrialFate> fates;
    /// Union coverage over the cell's repeats. Heap-allocated for the same
    /// reason as `telem`: the unobserved path pays one pointer per cell.
    std::unique_ptr<obs::CoverageMap> probes;
  };
  const std::size_t cell_count = mechanisms.size() * seeds.size();
  auto cells = parallel_map<CellVotes>(
      cell_count, config.threads, [&](std::size_t cell) {
        const NamedMechanism& nm = mechanisms[cell / seeds.size()];
        const corpus::SeedFault& seed = seeds[cell % seeds.size()];
        CellVotes votes;
        for (int r = 0; r < repeats; ++r) {
          TrialConfig tc = config;
          tc.seed = config.seed + static_cast<std::uint64_t>(r) * 7919 +
                    util::fnv1a(seed.fault_id);
          const auto plan = inject::plan_for(seed, tc.seed);
          auto mechanism = nm.make();
          telemetry::TrialTelemetry trial_telem;
          telemetry::TrialTelemetry* tt =
              telemetry != nullptr ? &trial_telem : nullptr;
          forensics::TrialForensics trial_forensics;
          forensics::TrialForensics* tf =
              forensics != nullptr ? &trial_forensics : nullptr;
          obs::CoverageMap trial_cover;
          obs::CoverageMap* cc = coverage != nullptr ? &trial_cover : nullptr;
          const TrialOutcome outcome =
              run_trial(plan, *mechanism, tc, nullptr, tt, tf, cc);
          if (cc != nullptr) {
            if (votes.probes == nullptr) {
              votes.probes = std::make_unique<obs::CoverageMap>(trial_cover);
            } else {
              votes.probes->merge(trial_cover);
            }
          }
          if (tf != nullptr) {
            if (tf->postmortem.has_value()) tf->postmortem->repeat = r;
            votes.fates.push_back(
                {outcome.survived, std::move(tf->postmortem)});
          }
          if (tt != nullptr) {
            if (votes.telem == nullptr) {
              votes.telem = std::make_unique<telemetry::TrialTelemetry>(
                  std::move(trial_telem));
            } else {
              telemetry::merge(votes.telem->counters, trial_telem.counters);
              votes.telem->recovery_latency_ticks.merge(
                  trial_telem.recovery_latency_ticks);
              votes.telem->item_latency_ticks.merge(
                  trial_telem.item_latency_ticks);
            }
          }
          if (outcome.failure_observed) {
            ++votes.observed;
            if (outcome.survived) ++votes.survived;
            if (!outcome.state_preserved) votes.lost_state = true;
          }
        }
        return votes;
      });

  // Serial index-order fold of per-cell forensics: the post-mortem
  // collection comes out in (mechanism, seed, repeat) order for every
  // thread count.
  if (forensics != nullptr) {
    for (std::size_t m = 0; m < mechanisms.size(); ++m) {
      for (std::size_t s = 0; s < seeds.size(); ++s) {
        CellVotes& votes = cells[m * seeds.size() + s];
        for (auto& fate : votes.fates) {
          forensics->fold_trial(fate.survived, std::move(fate.postmortem));
        }
      }
    }
  }

  // Serial index-order fold of per-cell coverage: the atlas's totals,
  // per-specimen vectors, and mechanism grids come out identical for every
  // thread count.
  if (coverage != nullptr) {
    for (std::size_t m = 0; m < mechanisms.size(); ++m) {
      for (std::size_t s = 0; s < seeds.size(); ++s) {
        const CellVotes& votes = cells[m * seeds.size() + s];
        if (votes.probes == nullptr) continue;
        coverage->fold_cell(m, s, *votes.probes,
                            static_cast<std::uint64_t>(repeats),
                            static_cast<std::uint64_t>(votes.observed),
                            static_cast<std::uint64_t>(votes.survived));
      }
    }
  }

  // Serial index-order fold of per-cell telemetry: study metrics and the
  // kept traces come out identical for every thread count.
  if (telemetry != nullptr) {
    for (std::size_t m = 0; m < mechanisms.size(); ++m) {
      for (std::size_t s = 0; s < seeds.size(); ++s) {
        CellVotes& votes = cells[m * seeds.size() + s];
        if (votes.telem == nullptr) continue;
        telemetry->fold_trial(mechanisms[m].name,
                              mechanisms[m].name + "/" + seeds[s].fault_id,
                              std::move(*votes.telem),
                              /*keep_trace=*/true);
      }
    }
  }

  for (std::size_t m = 0; m < mechanisms.size(); ++m) {
    MechanismReport report;
    report.mechanism = mechanisms[m].name;
    {
      auto probe = mechanisms[m].make();
      report.generic = probe->is_generic();
    }
    for (std::size_t s = 0; s < seeds.size(); ++s) {
      const CellVotes& votes = cells[m * seeds.size() + s];
      if (votes.observed == 0) {
        ++report.vacuous;
        continue;
      }
      const auto cls = static_cast<std::size_t>(corpus::seed_class(seeds[s]));
      ++report.total[cls];
      if (votes.survived * 2 > votes.observed) {
        ++report.survived[cls];
        if (votes.lost_state) ++report.state_losses;
      }
    }
    result.reports.push_back(std::move(report));
  }
  return result;
}

OracleReport run_oracle_crosscheck(const std::vector<corpus::SeedFault>& seeds,
                                   const TrialConfig& base) {
  OracleReport report;
  // One traced trial per seed, each with its own detector (analyze() is
  // stateless, but per-trial instances keep the lanes share-nothing). Rows
  // land in their seed's slot, so the report order never depends on timing.
  report.rows = parallel_map<OracleRow>(
      seeds.size(), base.threads, [&](std::size_t idx) {
        const corpus::SeedFault& seed = seeds[idx];
        TrialConfig tc = base;
        tc.seed = base.seed + util::fnv1a(seed.fault_id);

        const auto plan = inject::plan_for(seed, tc.seed);
        // Rollback-retry preserves state and keeps retrying, so the traced
        // trial keeps executing racy items instead of dying on first
        // failure.
        recovery::RollbackRetry mechanism;
        TrialObservation observation;
        (void)run_trial(plan, mechanism, tc, &observation);

        OracleRow row;
        row.fault_id = seed.fault_id;
        row.app = seed.app;
        row.label = corpus::seed_class(seed);
        row.trigger = seed.trigger;
        row.race_labeled = seed.trigger == core::Trigger::kRaceCondition;

        analysis::RaceDetector detector;
        const auto races = detector.analyze(
            std::span<const env::TraceEvent>(observation.trace));
        row.race_reports = races.size();
        row.detector_fired = !races.empty();
        row.invariant_violations =
            analysis::check_transcript(observation.transcript).size();
        return row;
      });

  for (const OracleRow& row : report.rows) {
    if (row.race_labeled) {
      ++(row.detector_fired ? report.race_fired : report.race_silent);
    } else {
      switch (row.label) {
        case core::FaultClass::kEnvironmentIndependent:
          ++(row.detector_fired ? report.ei_fired : report.ei_silent);
          break;
        case core::FaultClass::kEnvDependentNonTransient:
          ++(row.detector_fired ? report.edn_fired : report.edn_silent);
          break;
        case core::FaultClass::kEnvDependentTransient:
          ++(row.detector_fired ? report.other_edt_fired
                                : report.other_edt_silent);
          break;
      }
    }
  }
  return report;
}

}  // namespace faultstudy::harness
