#include "harness/parallel.hpp"

namespace faultstudy::harness {

void parallel_for_index(std::size_t n, std::size_t threads,
                        const std::function<void(std::size_t)>& fn) {
  util::parallel_for_index(n, threads, fn);
}

}  // namespace faultstudy::harness
