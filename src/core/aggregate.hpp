// Aggregation of classified faults into the paper's headline numbers.
#pragma once

#include <array>
#include <cstddef>
#include <map>
#include <span>
#include <vector>

#include "core/taxonomy.hpp"

namespace faultstudy::core {

/// Counts per fault class (the row values of Tables 1-3).
struct ClassCounts {
  std::array<std::size_t, 3> counts{};

  std::size_t& operator[](FaultClass c) {
    return counts[static_cast<std::size_t>(c)];
  }
  std::size_t operator[](FaultClass c) const {
    return counts[static_cast<std::size_t>(c)];
  }

  std::size_t total() const noexcept {
    return counts[0] + counts[1] + counts[2];
  }

  double fraction(FaultClass c) const noexcept {
    const auto n = total();
    return n == 0 ? 0.0
                  : static_cast<double>((*this)[c]) / static_cast<double>(n);
  }

  ClassCounts& operator+=(const ClassCounts& other) noexcept {
    for (std::size_t i = 0; i < 3; ++i) counts[i] += other.counts[i];
    return *this;
  }
};

/// Tallies class counts over a set of faults.
ClassCounts tally(std::span<const Fault> faults);

/// Class counts restricted to one application.
ClassCounts tally_app(std::span<const Fault> faults, AppId app);

/// Class counts per bucket (release ordinal / time period), the data series
/// behind Figures 1-3. Buckets are returned sorted by key.
std::map<int, ClassCounts> tally_by_bucket(std::span<const Fault> faults,
                                           AppId app);

/// The paper's Section 5.4 roll-up across all applications.
struct StudySummary {
  std::size_t total_faults = 0;
  ClassCounts overall;
  std::array<ClassCounts, 3> per_app;  // indexed by AppId

  /// min/max per-app fraction of environment-independent faults — the
  /// "72-87%" spread quoted in the abstract.
  double min_ei_fraction = 0.0;
  double max_ei_fraction = 0.0;
  /// min/max per-app fraction of transient faults — the "5-14%" spread.
  double min_edt_fraction = 0.0;
  double max_edt_fraction = 0.0;
};

StudySummary summarize(std::span<const Fault> faults);

}  // namespace faultstudy::core
