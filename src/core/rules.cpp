#include "core/rules.hpp"

#include <cassert>

namespace faultstudy::core {

namespace {
constexpr FaultClass kEI = FaultClass::kEnvironmentIndependent;
constexpr FaultClass kEDN = FaultClass::kEnvDependentNonTransient;
constexpr FaultClass kEDT = FaultClass::kEnvDependentTransient;

// Indexed by static_cast<size_t>(Trigger). Rationales paraphrase Section 5.
constexpr Ruling kRulings[kNumTriggers] = {
    // environment-independent
    {kEI, false, "same workload always reaches the same boundary condition"},
    {kEI, false, "uninitialized use is deterministic for a given workload"},
    {kEI, false, "wrong-variable bugs replay identically"},
    {kEI, false, "API contract violation replays identically"},
    {kEI, false, "the leak accumulates again on every re-execution"},
    {kEI, false, "the handler misbehaves every time the signal arrives"},
    {kEI, false, "state-machine errors replay identically"},
    {kEI, false, "the UI event sequence is part of the workload, not the environment"},
    // environment-dependent-nontransient
    {kEDN, false, "generic recovery restores all app state, so the leak survives recovery"},
    {kEDN, false, "a truly generic mechanism restores the fd table as part of app state"},
    {kEDN, false, "the on-disk cache is application state and is preserved"},
    {kEDN, false, "the oversized file persists across recovery"},
    {kEDN, false, "nothing in generic recovery frees disk space"},
    {kEDN, false, "the exhausted network resource is not replenished by recovery"},
    {kEDN, false, "recovery does not reinsert the removed card"},
    {kEDN, false, "the hostname stays changed after recovery"},
    {kEDN, false, "the other program's leaked sockets remain open"},
    {kEDN, false, "the illegal metadata value is still on disk after recovery"},
    {kEDN, false, "reverse DNS remains unconfigured on retry"},
    // environment-dependent-transient
    {kEDT, true, "the DNS server is likely restarted/fixed before or during retry"},
    {kEDT, true, "recovery kills all processes of the app, freeing the slots"},
    {kEDT, true, "the exact user-action timing is unlikely to repeat"},
    {kEDT, true, "recovery kills hung children, releasing the ports"},
    {kEDT, true, "slow DNS is usually fixed without app-specific help"},
    {kEDT, true, "the network is likely recovered by the time the app retries"},
    {kEDT, true, "more entropy-generating events accrue during recovery"},
    {kEDT, true, "a retry draws a different thread/signal interleaving"},
    {kEDT, true, "the unknown condition did not recur on retry"},
};
}  // namespace

const Ruling& default_ruling(Trigger t) noexcept {
  const auto i = static_cast<std::size_t>(t);
  assert(i < kNumTriggers);
  return kRulings[i];
}

FaultClass fault_class_of(Trigger t) noexcept {
  return default_ruling(t).fault_class;
}

RulePolicy::RulePolicy() {
  for (std::size_t i = 0; i < kNumTriggers; ++i) {
    classes_[i] = kRulings[i].fault_class;
  }
}

void RulePolicy::reclassify(Trigger t, FaultClass as) {
  auto& slot = classes_[static_cast<std::size_t>(t)];
  const FaultClass paper = kRulings[static_cast<std::size_t>(t)].fault_class;
  if (slot != paper && as == paper) {
    --overrides_;  // reverting an earlier override
  } else if (slot == paper && as != paper) {
    ++overrides_;
  }
  slot = as;
}

FaultClass RulePolicy::classify(Trigger t) const noexcept {
  return classes_[static_cast<std::size_t>(t)];
}

std::size_t RulePolicy::override_count() const noexcept { return overrides_; }

}  // namespace faultstudy::core
