// Classification rules: Trigger -> FaultClass, with rationale.
//
// Section 5.4 of the paper concedes that the EDN/EDT split "is subjective
// and depends upon the recovery system in place". This module makes the
// subjectivity explicit and configurable: each trigger carries the default
// (paper) ruling plus the environmental assumption behind it, and a
// RulePolicy can flip individual rulings (e.g. a system that auto-grows
// disk quota reclassifies kFullFileSystem as transient).
#pragma once

#include <array>
#include <string_view>

#include "core/taxonomy.hpp"

namespace faultstudy::core {

/// Why a trigger lands in its class — the recovery-time reasoning.
struct Ruling {
  FaultClass fault_class;
  /// Whether a *truly generic* recovery pass (which restores all application
  /// state) changes the triggering condition. EI triggers have no such
  /// condition; EDN conditions persist; EDT conditions change.
  bool condition_changes_on_retry;
  std::string_view rationale;
};

/// The paper's default ruling for a trigger.
const Ruling& default_ruling(Trigger t) noexcept;

/// Shorthand for default_ruling(t).fault_class.
FaultClass fault_class_of(Trigger t) noexcept;

/// A policy is the paper's rulings plus any number of overrides.
class RulePolicy {
 public:
  /// Default-constructed policy == the paper's rulings.
  RulePolicy();

  /// Overrides the class of one trigger (e.g. modelling an environment that
  /// automatically grows full file systems).
  void reclassify(Trigger t, FaultClass as);

  FaultClass classify(Trigger t) const noexcept;

  /// Number of triggers whose ruling differs from the paper's.
  std::size_t override_count() const noexcept;

 private:
  std::array<FaultClass, kNumTriggers> classes_;
  std::size_t overrides_ = 0;
};

}  // namespace faultstudy::core
