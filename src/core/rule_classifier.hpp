// Rule-based fault classifier.
//
// Mechanizes the paper's manual procedure (Section 4): read the report —
// above all its "How To Repeat" field and the developers' comments — look
// for the environmental condition that triggers the failure, and map that
// condition to a fault class. Cue phrases vote for triggers; the winning
// trigger is ruled on by a RulePolicy. A report with no environmental cue
// is environment-independent: if the workload alone reproduces it, it is
// deterministic.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "core/rules.hpp"
#include "core/taxonomy.hpp"

namespace faultstudy::core {

/// The textual fields of a bug report the classifier reads. Field weights
/// differ: the how-to-repeat field names the triggering condition most
/// directly, developer comments confirm the diagnosis.
struct ReportText {
  std::string title;
  std::string body;
  std::string how_to_repeat;
  std::string developer_comments;
};

/// One matched cue, kept as evidence for auditability.
struct CueMatch {
  Trigger trigger;
  std::string phrase;   ///< the cue that fired
  std::string field;    ///< which field it fired in
  double weight = 0.0;  ///< contribution to the trigger's score
};

struct Classification {
  Trigger trigger = Trigger::kLogicError;
  FaultClass fault_class = FaultClass::kEnvironmentIndependent;
  double confidence = 0.0;  ///< winner share of total cue mass, 0 if no cue
  std::vector<CueMatch> evidence;
};

class RuleClassifier {
 public:
  /// Uses the paper's rule policy by default.
  explicit RuleClassifier(RulePolicy policy = RulePolicy());

  Classification classify(const ReportText& report) const;

  /// The cue lexicon size (for tests / docs).
  static std::size_t lexicon_size();

 private:
  RulePolicy policy_;
};

}  // namespace faultstudy::core
