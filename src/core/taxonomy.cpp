#include "core/taxonomy.hpp"

namespace faultstudy::core {

std::string_view to_string(FaultClass c) noexcept {
  switch (c) {
    case FaultClass::kEnvironmentIndependent:
      return "environment-independent";
    case FaultClass::kEnvDependentNonTransient:
      return "environment-dependent-nontransient";
    case FaultClass::kEnvDependentTransient:
      return "environment-dependent-transient";
  }
  return "?";
}

std::string_view to_code(FaultClass c) noexcept {
  switch (c) {
    case FaultClass::kEnvironmentIndependent:
      return "EI";
    case FaultClass::kEnvDependentNonTransient:
      return "EDN";
    case FaultClass::kEnvDependentTransient:
      return "EDT";
  }
  return "?";
}

std::optional<FaultClass> fault_class_from_code(std::string_view code) noexcept {
  if (code == "EI") return FaultClass::kEnvironmentIndependent;
  if (code == "EDN") return FaultClass::kEnvDependentNonTransient;
  if (code == "EDT") return FaultClass::kEnvDependentTransient;
  return std::nullopt;
}

std::string_view to_string(Symptom s) noexcept {
  switch (s) {
    case Symptom::kCrash:
      return "crash";
    case Symptom::kErrorReturn:
      return "error-return";
    case Symptom::kHang:
      return "hang";
    case Symptom::kSecurity:
      return "security";
    case Symptom::kResourceBloat:
      return "resource-bloat";
  }
  return "?";
}

std::string_view to_string(Trigger t) noexcept {
  switch (t) {
    case Trigger::kBoundaryInput:
      return "boundary-input";
    case Trigger::kMissingInitialization:
      return "missing-initialization";
    case Trigger::kWrongVariableUsage:
      return "wrong-variable-usage";
    case Trigger::kApiMisuse:
      return "api-misuse";
    case Trigger::kDeterministicLeak:
      return "deterministic-leak";
    case Trigger::kSignalHandlingBug:
      return "signal-handling-bug";
    case Trigger::kLogicError:
      return "logic-error";
    case Trigger::kUiEventSequence:
      return "ui-event-sequence";
    case Trigger::kResourceLeakUnderLoad:
      return "resource-leak-under-load";
    case Trigger::kFdExhaustion:
      return "fd-exhaustion";
    case Trigger::kDiskCacheFull:
      return "disk-cache-full";
    case Trigger::kFileSizeLimit:
      return "file-size-limit";
    case Trigger::kFullFileSystem:
      return "full-file-system";
    case Trigger::kNetworkResourceExhausted:
      return "network-resource-exhausted";
    case Trigger::kHardwareRemoval:
      return "hardware-removal";
    case Trigger::kHostnameChanged:
      return "hostname-changed";
    case Trigger::kExternalSocketLeak:
      return "external-socket-leak";
    case Trigger::kCorruptFileMetadata:
      return "corrupt-file-metadata";
    case Trigger::kReverseDnsMissing:
      return "reverse-dns-missing";
    case Trigger::kDnsError:
      return "dns-error";
    case Trigger::kProcessTableFull:
      return "process-table-full";
    case Trigger::kWorkloadTiming:
      return "workload-timing";
    case Trigger::kPortsHeldByChildren:
      return "ports-held-by-children";
    case Trigger::kDnsSlow:
      return "dns-slow";
    case Trigger::kNetworkSlow:
      return "network-slow";
    case Trigger::kEntropyShortage:
      return "entropy-shortage";
    case Trigger::kRaceCondition:
      return "race-condition";
    case Trigger::kUnknownTransient:
      return "unknown-transient";
    case Trigger::kCount:
      break;
  }
  return "?";
}

std::string_view describe(Trigger t) noexcept {
  switch (t) {
    case Trigger::kBoundaryInput:
      return "input at an untested boundary condition (size, emptiness, length)";
    case Trigger::kMissingInitialization:
      return "a variable or structure used before being initialized";
    case Trigger::kWrongVariableUsage:
      return "the wrong variable, copy, or declared type is used";
    case Trigger::kApiMisuse:
      return "a library API used contrary to its contract";
    case Trigger::kDeterministicLeak:
      return "memory leaked on every execution of a code path";
    case Trigger::kSignalHandlingBug:
      return "a signal handler does the wrong thing deterministically";
    case Trigger::kLogicError:
      return "an algorithmic or state-machine error";
    case Trigger::kUiEventSequence:
      return "a specific sequence of UI events";
    case Trigger::kResourceLeakUnderLoad:
      return "high load exposes a resource leak held by the application";
    case Trigger::kFdExhaustion:
      return "the process has no file descriptors left";
    case Trigger::kDiskCacheFull:
      return "the application's disk cache is full";
    case Trigger::kFileSizeLimit:
      return "a file has reached the maximum allowed file size";
    case Trigger::kFullFileSystem:
      return "the file system is full";
    case Trigger::kNetworkResourceExhausted:
      return "an (unknown) network resource is exhausted";
    case Trigger::kHardwareRemoval:
      return "a hardware device was removed while in use";
    case Trigger::kHostnameChanged:
      return "the host's name changed while the application was running";
    case Trigger::kExternalSocketLeak:
      return "another program leaked sockets, starving this one";
    case Trigger::kCorruptFileMetadata:
      return "a file carries an illegal metadata value";
    case Trigger::kReverseDnsMissing:
      return "reverse DNS is not configured for a connecting host";
    case Trigger::kDnsError:
      return "a DNS lookup returned an error";
    case Trigger::kProcessTableFull:
      return "hung children filled the OS process table";
    case Trigger::kWorkloadTiming:
      return "the exact timing of a user action (e.g. stop mid-download)";
    case Trigger::kPortsHeldByChildren:
      return "hung children hold the network ports the app needs";
    case Trigger::kDnsSlow:
      return "a DNS server responds too slowly";
    case Trigger::kNetworkSlow:
      return "the network is temporarily slow";
    case Trigger::kEntropyShortage:
      return "/dev/random has too little entropy";
    case Trigger::kRaceCondition:
      return "a specific interleaving of threads or signal delivery";
    case Trigger::kUnknownTransient:
      return "an unknown condition that did not recur on retry";
    case Trigger::kCount:
      break;
  }
  return "?";
}

std::vector<Trigger> all_triggers() {
  std::vector<Trigger> out;
  out.reserve(kNumTriggers);
  for (std::size_t i = 0; i < kNumTriggers; ++i) {
    out.push_back(static_cast<Trigger>(i));
  }
  return out;
}

std::string_view to_string(AppId a) noexcept {
  switch (a) {
    case AppId::kApache:
      return "Apache";
    case AppId::kGnome:
      return "GNOME";
    case AppId::kMysql:
      return "MySQL";
  }
  return "?";
}

}  // namespace faultstudy::core
