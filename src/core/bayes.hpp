// Multinomial naive-Bayes text classifier over fault classes.
//
// The automated comparator for ablation D1 (DESIGN.md): instead of the
// hand-built cue lexicon, learn token likelihoods from labeled reports.
// Tokens are stemmed, stopword-filtered unigrams plus bigrams (bigrams
// capture "race condition", "file descriptors", "process table").
#pragma once

#include <array>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/rule_classifier.hpp"  // ReportText
#include "core/taxonomy.hpp"

namespace faultstudy::core {

class BayesClassifier {
 public:
  /// Laplace smoothing constant.
  explicit BayesClassifier(double alpha = 1.0) : alpha_(alpha) {}

  /// Adds one labeled training report.
  void train(const ReportText& report, FaultClass label);

  /// Most probable class under the trained model. With no training data,
  /// returns kEnvironmentIndependent (the study's overwhelming prior).
  FaultClass classify(const ReportText& report) const;

  /// Log-posterior (up to a constant) per class, for calibration tests.
  std::array<double, 3> log_posterior(const ReportText& report) const;

  std::size_t vocabulary_size() const noexcept { return vocab_.size(); }
  std::size_t training_count() const noexcept;

  /// Feature extraction used for both training and inference; exposed for
  /// tests.
  static std::vector<std::string> features(const ReportText& report);

 private:
  double alpha_;
  std::array<std::size_t, 3> class_docs_{};
  std::array<std::size_t, 3> class_tokens_{};
  std::unordered_map<std::string, std::array<std::uint32_t, 3>> vocab_;
};

}  // namespace faultstudy::core
