// The paper's fault taxonomy (Section 3).
//
// Faults are classified by their dependence on the *operating environment*:
// everything outside the application under study (other programs, the
// kernel, hardware events, and the timing — though not the content — of the
// workload). Given a fixed environment, a set of concurrent sequential
// processes is deterministic [Dijkstra72], so environment dependence is
// exactly what separates deterministic Bohrbugs from transient Heisenbugs.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace faultstudy::core {

/// The paper's three-way classification.
enum class FaultClass : std::uint8_t {
  /// Occurs independent of the operating environment. Deterministic given
  /// the workload; generic recovery cannot survive it.
  kEnvironmentIndependent = 0,
  /// Triggered by an environmental condition that is likely to PERSIST when
  /// the operation is retried (e.g. a full disk).
  kEnvDependentNonTransient = 1,
  /// Triggered by an environmental condition that is likely to be FIXED on
  /// retry (e.g. a thread interleaving). The classic Heisenbug.
  kEnvDependentTransient = 2,
};

inline constexpr FaultClass kAllFaultClasses[] = {
    FaultClass::kEnvironmentIndependent,
    FaultClass::kEnvDependentNonTransient,
    FaultClass::kEnvDependentTransient,
};

std::string_view to_string(FaultClass c) noexcept;
/// Short codes used in CSV output: "EI", "EDN", "EDT".
std::string_view to_code(FaultClass c) noexcept;
std::optional<FaultClass> fault_class_from_code(std::string_view code) noexcept;

/// High-impact failure symptoms the study selects on (Section 4): crash,
/// error return, security problem, or hang.
enum class Symptom : std::uint8_t {
  kCrash = 0,        ///< segfault / core dump / abort
  kErrorReturn = 1,  ///< operation fails with an error condition
  kHang = 2,         ///< stops responding
  kSecurity = 3,     ///< security problem
  kResourceBloat = 4,///< unbounded growth eventually causing failure
};

std::string_view to_string(Symptom s) noexcept;

/// Ontology of trigger conditions, one per distinct mechanism the paper
/// describes in Sections 5.1-5.3. Each trigger implies a fault class via
/// rules::fault_class_of (subjective calls are documented there).
enum class Trigger : std::uint8_t {
  // -- environment-independent mechanisms (deterministic code bugs) --
  kBoundaryInput = 0,        ///< long URL hash overflow; zero-entry dir; empty table
  kMissingInitialization,    ///< "order by" on zero rows; OPTIMIZE TABLE crash
  kWrongVariableUsage,       ///< local vs global copy; long vs unsigned long
  kApiMisuse,                ///< va_list reused without va_end/va_start
  kDeterministicLeak,        ///< shared-memory segment grows without bound
  kSignalHandlingBug,        ///< SIGHUP kills instead of restarting
  kLogicError,               ///< update-while-scanning index; FLUSH after LOCK
  kUiEventSequence,          ///< clicking a tab/button crashes the app

  // -- environment-dependent, condition persists on retry --
  kResourceLeakUnderLoad,    ///< high load leading to unknown resource leak
  kFdExhaustion,             ///< out of file descriptors (incl. competition)
  kDiskCacheFull,            ///< app's disk cache full, no more temp files
  kFileSizeLimit,            ///< log/db file exceeds max allowed file size
  kFullFileSystem,           ///< file system full
  kNetworkResourceExhausted, ///< unknown network resource exhausted
  kHardwareRemoval,          ///< PCMCIA network card removed
  kHostnameChanged,          ///< hostname changed while app running
  kExternalSocketLeak,       ///< sockets left open by other utilities
  kCorruptFileMetadata,      ///< illegal value in file owner field
  kReverseDnsMissing,        ///< reverse DNS not configured for remote host

  // -- environment-dependent, condition likely fixed on retry --
  kDnsError,                 ///< DNS call returns an error
  kProcessTableFull,         ///< hung children consume all process slots
  kWorkloadTiming,           ///< user presses stop mid-download
  kPortsHeldByChildren,      ///< hung children hold required network ports
  kDnsSlow,                  ///< slow DNS response
  kNetworkSlow,              ///< slow network connection
  kEntropyShortage,          ///< /dev/random starved of events
  kRaceCondition,            ///< thread/signal interleaving
  kUnknownTransient,         ///< unknown failure that works on retry

  kCount,  // sentinel
};

inline constexpr std::size_t kNumTriggers =
    static_cast<std::size_t>(Trigger::kCount);

std::string_view to_string(Trigger t) noexcept;

/// One-line description of the mechanism, suitable for reports.
std::string_view describe(Trigger t) noexcept;

/// All triggers in declaration order.
std::vector<Trigger> all_triggers();

/// The applications studied.
enum class AppId : std::uint8_t { kApache = 0, kGnome = 1, kMysql = 2 };

inline constexpr AppId kAllApps[] = {AppId::kApache, AppId::kGnome,
                                     AppId::kMysql};

std::string_view to_string(AppId a) noexcept;

/// A classified fault: the unit of the study. Identity is `id`; the class
/// and trigger may come from curated ground truth (seed data transcribed
/// from the paper) or from a classifier.
struct Fault {
  std::string id;       ///< stable identifier, e.g. "apache-edt-03"
  AppId app = AppId::kApache;
  std::string title;
  Symptom symptom = Symptom::kCrash;
  Trigger trigger = Trigger::kBoundaryInput;
  FaultClass fault_class = FaultClass::kEnvironmentIndependent;
  /// Release ordinal (Apache/MySQL figures) or time bucket (GNOME figure).
  int bucket = 0;
};

}  // namespace faultstudy::core
