#include "core/bayes.hpp"

#include <algorithm>
#include <cmath>

#include "text/stemmer.hpp"
#include "text/stopwords.hpp"
#include "text/tokenizer.hpp"

namespace faultstudy::core {

std::vector<std::string> BayesClassifier::features(const ReportText& report) {
  std::string joined = report.title;
  joined += ' ';
  joined += report.body;
  joined += ' ';
  joined += report.how_to_repeat;
  joined += ' ';
  joined += report.developer_comments;

  auto tokens =
      text::stem_all(text::remove_stopwords(text::tokenize(joined)));
  auto bigrams = text::ngrams(tokens, 2);
  tokens.insert(tokens.end(), std::make_move_iterator(bigrams.begin()),
                std::make_move_iterator(bigrams.end()));
  return tokens;
}

void BayesClassifier::train(const ReportText& report, FaultClass label) {
  const auto c = static_cast<std::size_t>(label);
  ++class_docs_[c];
  for (auto& f : features(report)) {
    ++vocab_[std::move(f)][c];
    ++class_tokens_[c];
  }
}

std::size_t BayesClassifier::training_count() const noexcept {
  return class_docs_[0] + class_docs_[1] + class_docs_[2];
}

std::array<double, 3> BayesClassifier::log_posterior(
    const ReportText& report) const {
  std::array<double, 3> lp{};
  const double total_docs = static_cast<double>(training_count());
  const double v = static_cast<double>(vocab_.size());

  for (std::size_t c = 0; c < 3; ++c) {
    // Smoothed class prior; with no data this degenerates to uniform.
    lp[c] = std::log((class_docs_[c] + alpha_) / (total_docs + 3.0 * alpha_));
  }
  for (const auto& f : features(report)) {
    auto it = vocab_.find(f);
    // The feature space is fixed at fit time: tokens outside the training
    // vocabulary carry no information about the class and are dropped.
    // (Scoring them via smoothing alone systematically favors the class
    // with the fewest training tokens.)
    if (it == vocab_.end()) continue;
    for (std::size_t c = 0; c < 3; ++c) {
      const double count = it->second[c];
      lp[c] += std::log((count + alpha_) /
                        (static_cast<double>(class_tokens_[c]) + alpha_ * (v + 1.0)));
    }
  }
  return lp;
}

FaultClass BayesClassifier::classify(const ReportText& report) const {
  if (training_count() == 0) return FaultClass::kEnvironmentIndependent;
  const auto lp = log_posterior(report);
  std::size_t best = 0;
  for (std::size_t c = 1; c < 3; ++c) {
    if (lp[c] > lp[best]) best = c;
  }
  return static_cast<FaultClass>(best);
}

}  // namespace faultstudy::core
