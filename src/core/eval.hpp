// Classifier evaluation: confusion matrices, accuracy, Cohen's kappa.
//
// Used in the ablation comparing the rule classifier against the naive-Bayes
// comparator, and in tests asserting the pipeline recovers the curated
// ground truth.
#pragma once

#include <array>
#include <cstddef>
#include <string>

#include "core/taxonomy.hpp"

namespace faultstudy::core {

/// 3x3 confusion matrix over fault classes; rows = truth, cols = predicted.
class ConfusionMatrix {
 public:
  void add(FaultClass truth, FaultClass predicted) noexcept;

  std::size_t count(FaultClass truth, FaultClass predicted) const noexcept;
  std::size_t total() const noexcept;
  std::size_t correct() const noexcept;

  double accuracy() const noexcept;

  /// Cohen's kappa: agreement corrected for chance. 1 = perfect,
  /// 0 = chance-level, negative = worse than chance. Returns 1 when the
  /// matrix is empty or expected agreement is 1 (degenerate marginals with
  /// perfect observed agreement).
  double kappa() const noexcept;

  /// Per-class precision / recall (0 when undefined).
  double precision(FaultClass c) const noexcept;
  double recall(FaultClass c) const noexcept;

  /// Multi-line human-readable rendering.
  std::string to_string() const;

 private:
  std::array<std::array<std::size_t, 3>, 3> cells_{};
};

}  // namespace faultstudy::core
