#include "core/eval.hpp"

#include "util/strings.hpp"

namespace faultstudy::core {

void ConfusionMatrix::add(FaultClass truth, FaultClass predicted) noexcept {
  ++cells_[static_cast<std::size_t>(truth)][static_cast<std::size_t>(predicted)];
}

std::size_t ConfusionMatrix::count(FaultClass truth,
                                   FaultClass predicted) const noexcept {
  return cells_[static_cast<std::size_t>(truth)]
               [static_cast<std::size_t>(predicted)];
}

std::size_t ConfusionMatrix::total() const noexcept {
  std::size_t n = 0;
  for (const auto& row : cells_) {
    for (auto v : row) n += v;
  }
  return n;
}

std::size_t ConfusionMatrix::correct() const noexcept {
  return cells_[0][0] + cells_[1][1] + cells_[2][2];
}

double ConfusionMatrix::accuracy() const noexcept {
  const auto n = total();
  return n == 0 ? 0.0 : static_cast<double>(correct()) / static_cast<double>(n);
}

double ConfusionMatrix::kappa() const noexcept {
  const auto n = static_cast<double>(total());
  if (n == 0.0) return 1.0;
  const double po = accuracy();
  double pe = 0.0;
  for (std::size_t c = 0; c < 3; ++c) {
    double row = 0.0, col = 0.0;
    for (std::size_t k = 0; k < 3; ++k) {
      row += static_cast<double>(cells_[c][k]);
      col += static_cast<double>(cells_[k][c]);
    }
    pe += (row / n) * (col / n);
  }
  if (pe >= 1.0) return po >= 1.0 ? 1.0 : 0.0;
  return (po - pe) / (1.0 - pe);
}

double ConfusionMatrix::precision(FaultClass c) const noexcept {
  const auto ci = static_cast<std::size_t>(c);
  std::size_t col = 0;
  for (std::size_t k = 0; k < 3; ++k) col += cells_[k][ci];
  return col == 0 ? 0.0
                  : static_cast<double>(cells_[ci][ci]) /
                        static_cast<double>(col);
}

double ConfusionMatrix::recall(FaultClass c) const noexcept {
  const auto ci = static_cast<std::size_t>(c);
  std::size_t row = 0;
  for (std::size_t k = 0; k < 3; ++k) row += cells_[ci][k];
  return row == 0 ? 0.0
                  : static_cast<double>(cells_[ci][ci]) /
                        static_cast<double>(row);
}

std::string ConfusionMatrix::to_string() const {
  std::string out = "truth \\ predicted      EI    EDN    EDT\n";
  for (FaultClass truth : kAllFaultClasses) {
    out += util::pad_right(core::to_string(truth), 20);
    for (FaultClass pred : kAllFaultClasses) {
      out += util::pad_left(std::to_string(count(truth, pred)), 7);
    }
    out += '\n';
  }
  out += "accuracy=" + util::fixed(accuracy(), 3) +
         " kappa=" + util::fixed(kappa(), 3) + "\n";
  return out;
}

}  // namespace faultstudy::core
