#include "core/aggregate.hpp"

#include <algorithm>

namespace faultstudy::core {

ClassCounts tally(std::span<const Fault> faults) {
  ClassCounts c;
  for (const Fault& f : faults) ++c[f.fault_class];
  return c;
}

ClassCounts tally_app(std::span<const Fault> faults, AppId app) {
  ClassCounts c;
  for (const Fault& f : faults) {
    if (f.app == app) ++c[f.fault_class];
  }
  return c;
}

std::map<int, ClassCounts> tally_by_bucket(std::span<const Fault> faults,
                                           AppId app) {
  std::map<int, ClassCounts> buckets;
  for (const Fault& f : faults) {
    if (f.app == app) ++buckets[f.bucket][f.fault_class];
  }
  return buckets;
}

StudySummary summarize(std::span<const Fault> faults) {
  StudySummary s;
  s.total_faults = faults.size();
  s.overall = tally(faults);
  for (AppId app : kAllApps) {
    s.per_app[static_cast<std::size_t>(app)] = tally_app(faults, app);
  }

  bool first = true;
  for (AppId app : kAllApps) {
    const ClassCounts& c = s.per_app[static_cast<std::size_t>(app)];
    if (c.total() == 0) continue;
    const double ei = c.fraction(FaultClass::kEnvironmentIndependent);
    const double edt = c.fraction(FaultClass::kEnvDependentTransient);
    if (first) {
      s.min_ei_fraction = s.max_ei_fraction = ei;
      s.min_edt_fraction = s.max_edt_fraction = edt;
      first = false;
    } else {
      s.min_ei_fraction = std::min(s.min_ei_fraction, ei);
      s.max_ei_fraction = std::max(s.max_ei_fraction, ei);
      s.min_edt_fraction = std::min(s.min_edt_fraction, edt);
      s.max_edt_fraction = std::max(s.max_edt_fraction, edt);
    }
  }
  return s;
}

}  // namespace faultstudy::core
