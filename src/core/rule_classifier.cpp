#include "core/rule_classifier.hpp"

#include <array>
#include <cstring>

#include "util/strings.hpp"

namespace faultstudy::core {

namespace {

struct Cue {
  const char* phrase;  // matched case-insensitively as a substring
  Trigger trigger;
  double weight;       // specificity: multiword diagnostic phrases score higher
};

// The cue lexicon. Phrases are drawn from the vocabulary of the paper's own
// bug descriptions (Sections 5.1-5.3) plus common report phrasing for the
// same mechanisms. Order does not matter; all matches vote.
constexpr Cue kCues[] = {
    // --- environment-independent ---
    {"long url", Trigger::kBoundaryInput, 3.0},
    {"very long", Trigger::kBoundaryInput, 1.5},
    {"buffer overflow", Trigger::kBoundaryInput, 2.5},
    {"overflow in the hash", Trigger::kBoundaryInput, 3.0},
    {"zero entries", Trigger::kBoundaryInput, 3.0},
    {"size zero", Trigger::kBoundaryInput, 2.5},
    {"empty table", Trigger::kBoundaryInput, 2.5},
    {"empty directory", Trigger::kBoundaryInput, 2.5},
    {"selects zero records", Trigger::kBoundaryInput, 3.0},
    {"nonexistent url", Trigger::kBoundaryInput, 2.5},
    {"boundary condition", Trigger::kBoundaryInput, 2.0},
    {"off-by-one", Trigger::kBoundaryInput, 2.5},
    {"missing initialization", Trigger::kMissingInitialization, 3.0},
    {"missing check", Trigger::kMissingInitialization, 2.0},
    {"uninitialized", Trigger::kMissingInitialization, 2.5},
    {"initializing a variable to an incorrect value", Trigger::kMissingInitialization, 3.0},
    {"local copy of the variable", Trigger::kWrongVariableUsage, 3.0},
    {"instead of the global", Trigger::kWrongVariableUsage, 2.5},
    {"declared as \"long\"", Trigger::kWrongVariableUsage, 3.0},
    {"wrong type", Trigger::kWrongVariableUsage, 1.5},
    {"sign extension", Trigger::kWrongVariableUsage, 2.0},
    {"va_list", Trigger::kApiMisuse, 3.0},
    {"without an intervening", Trigger::kApiMisuse, 2.0},
    {"api contract", Trigger::kApiMisuse, 2.0},
    {"double free", Trigger::kApiMisuse, 2.5},
    {"memory leak", Trigger::kDeterministicLeak, 2.5},
    {"shared memory segment keeps growing", Trigger::kDeterministicLeak, 3.0},
    {"leaks memory", Trigger::kDeterministicLeak, 2.5},
    {"sighup kills", Trigger::kSignalHandlingBug, 3.0},
    {"signal handler", Trigger::kSignalHandlingBug, 2.0},
    {"should gracefully restart", Trigger::kSignalHandlingBug, 2.0},
    {"duplicate values in the index", Trigger::kLogicError, 3.0},
    {"while scanning the index", Trigger::kLogicError, 3.0},
    {"flush tables", Trigger::kLogicError, 2.0},
    {"lock tables", Trigger::kLogicError, 2.0},
    {"optimize table", Trigger::kMissingInitialization, 2.0},
    {"order by", Trigger::kMissingInitialization, 1.0},
    {"clicking on", Trigger::kUiEventSequence, 2.0},
    {"double-clicking", Trigger::kUiEventSequence, 2.5},
    {"pressing tab", Trigger::kUiEventSequence, 2.5},
    {"tab is pressed", Trigger::kUiEventSequence, 2.5},
    {"pop up the main menu", Trigger::kUiEventSequence, 2.5},
    {"dialog", Trigger::kUiEventSequence, 1.0},

    // --- environment-dependent-nontransient ---
    {"unknown resource leak", Trigger::kResourceLeakUnderLoad, 3.0},
    {"resource leak", Trigger::kResourceLeakUnderLoad, 2.0},
    {"under high load", Trigger::kResourceLeakUnderLoad, 1.5},
    {"out of file descriptors", Trigger::kFdExhaustion, 3.0},
    {"lack of file descriptors", Trigger::kFdExhaustion, 3.0},
    {"runs out of file descriptors", Trigger::kFdExhaustion, 3.0},
    {"no file descriptors", Trigger::kFdExhaustion, 2.5},
    {"too many open files", Trigger::kFdExhaustion, 3.0},
    {"disk cache", Trigger::kDiskCacheFull, 2.5},
    {"cannot store any more temporary files", Trigger::kDiskCacheFull, 3.0},
    {"maximum allowed file size", Trigger::kFileSizeLimit, 3.0},
    {"log file is greater", Trigger::kFileSizeLimit, 2.5},
    {"file too large", Trigger::kFileSizeLimit, 2.5},
    {"2gb limit", Trigger::kFileSizeLimit, 2.5},
    {"full file system", Trigger::kFullFileSystem, 3.0},
    {"file system is full", Trigger::kFullFileSystem, 3.0},
    {"filesystem full", Trigger::kFullFileSystem, 3.0},
    {"disk full", Trigger::kFullFileSystem, 2.5},
    {"no space left on device", Trigger::kFullFileSystem, 3.0},
    {"network resource", Trigger::kNetworkResourceExhausted, 2.0},
    {"pcmcia", Trigger::kHardwareRemoval, 3.0},
    {"card is removed", Trigger::kHardwareRemoval, 2.5},
    {"removal of", Trigger::kHardwareRemoval, 1.0},
    {"hostname of the machine was changed", Trigger::kHostnameChanged, 3.0},
    {"hostname of the machine is changed", Trigger::kHostnameChanged, 3.0},
    {"change the hostname", Trigger::kHostnameChanged, 3.0},
    {"hostname changed", Trigger::kHostnameChanged, 3.0},
    {"hostname stays changed", Trigger::kHostnameChanged, 3.0},
    {"open sockets left around", Trigger::kExternalSocketLeak, 3.0},
    {"sockets left", Trigger::kExternalSocketLeak, 2.5},
    {"illegal value in the owner field", Trigger::kCorruptFileMetadata, 3.0},
    {"illegal value", Trigger::kCorruptFileMetadata, 1.5},
    {"owner field", Trigger::kCorruptFileMetadata, 2.0},
    {"reverse dns is not configured", Trigger::kReverseDnsMissing, 3.0},
    {"no reverse dns", Trigger::kReverseDnsMissing, 3.0},
    {"reverse lookup fails", Trigger::kReverseDnsMissing, 2.5},

    // --- environment-dependent-transient ---
    {"dns returns an error", Trigger::kDnsError, 3.0},
    {"call to domain name service returns an error", Trigger::kDnsError, 3.0},
    {"dns error", Trigger::kDnsError, 2.5},
    {"name server error", Trigger::kDnsError, 2.5},
    {"slots in the process table", Trigger::kProcessTableFull, 3.0},
    {"process table", Trigger::kProcessTableFull, 2.0},
    {"cannot fork", Trigger::kProcessTableFull, 2.0},
    {"fork failed", Trigger::kProcessTableFull, 2.0},
    {"presses stop on the browser", Trigger::kWorkloadTiming, 3.0},
    {"stop button", Trigger::kWorkloadTiming, 2.0},
    {"midst of a page download", Trigger::kWorkloadTiming, 3.0},
    {"aborts the transfer", Trigger::kWorkloadTiming, 2.0},
    {"hang onto required network ports", Trigger::kPortsHeldByChildren, 3.0},
    {"address already in use", Trigger::kPortsHeldByChildren, 2.5},
    {"port is held", Trigger::kPortsHeldByChildren, 2.5},
    {"slow domain name service", Trigger::kDnsSlow, 3.0},
    {"slow dns", Trigger::kDnsSlow, 3.0},
    {"dns times out", Trigger::kDnsSlow, 2.5},
    {"slow network connection", Trigger::kNetworkSlow, 3.0},
    {"network is slow", Trigger::kNetworkSlow, 2.5},
    {"high latency", Trigger::kNetworkSlow, 1.5},
    {"/dev/random", Trigger::kEntropyShortage, 3.0},
    {"random numbers", Trigger::kEntropyShortage, 2.0},
    {"lack of events to generate", Trigger::kEntropyShortage, 3.0},
    {"entropy", Trigger::kEntropyShortage, 2.5},
    {"race condition", Trigger::kRaceCondition, 3.0},
    {"race between", Trigger::kRaceCondition, 3.0},
    {"timing of thread scheduling", Trigger::kRaceCondition, 3.0},
    {"masking of a signal and its arrival", Trigger::kRaceCondition, 3.0},
    {"cannot reproduce reliably", Trigger::kRaceCondition, 1.0},
    {"happens sometimes", Trigger::kUnknownTransient, 1.5},
    {"works on a retry", Trigger::kUnknownTransient, 3.0},
    {"works on retry", Trigger::kUnknownTransient, 3.0},
    {"could not repeat", Trigger::kUnknownTransient, 2.0},
    {"not reproducible", Trigger::kUnknownTransient, 2.0},
};

struct Field {
  const char* name;
  double weight;
};

// How-to-repeat is "a key field in all the bug reports we study"; it gets
// the highest weight, developer comments next (they carry the diagnosis).
constexpr Field kFields[] = {
    {"title", 1.5},
    {"body", 1.0},
    {"how_to_repeat", 2.0},
    {"developer_comments", 1.75},
};

const std::string& field_text(const ReportText& r, std::size_t i) {
  switch (i) {
    case 0:
      return r.title;
    case 1:
      return r.body;
    case 2:
      return r.how_to_repeat;
    default:
      return r.developer_comments;
  }
}

}  // namespace

RuleClassifier::RuleClassifier(RulePolicy policy) : policy_(policy) {}

std::size_t RuleClassifier::lexicon_size() {
  return std::size(kCues);
}

Classification RuleClassifier::classify(const ReportText& report) const {
  std::array<double, kNumTriggers> scores{};
  Classification result;

  for (std::size_t f = 0; f < std::size(kFields); ++f) {
    const std::string& text = field_text(report, f);
    if (text.empty()) continue;
    for (const Cue& cue : kCues) {
      if (util::icontains(text, cue.phrase)) {
        const double w = cue.weight * kFields[f].weight;
        scores[static_cast<std::size_t>(cue.trigger)] += w;
        result.evidence.push_back(
            {cue.trigger, cue.phrase, kFields[f].name, w});
      }
    }
  }

  double total = 0.0;
  double best = 0.0;
  std::size_t best_idx = static_cast<std::size_t>(Trigger::kLogicError);
  for (std::size_t i = 0; i < kNumTriggers; ++i) {
    total += scores[i];
    if (scores[i] > best) {
      best = scores[i];
      best_idx = i;
    }
  }

  // No environmental or mechanism cue at all: the report describes a
  // workload that deterministically fails, i.e. environment-independent.
  if (total == 0.0) {
    result.trigger = Trigger::kLogicError;
    result.fault_class = policy_.classify(result.trigger);
    result.confidence = 0.0;
    return result;
  }

  result.trigger = static_cast<Trigger>(best_idx);
  result.fault_class = policy_.classify(result.trigger);
  result.confidence = best / total;
  return result;
}

}  // namespace faultstudy::core
