// Post-mortem records: what the trial runner snapshots when a trial fails.
//
// A post-mortem binds the flight-recorder ring, the environment's resource
// state at the moment of failure, and a reconstructed *causal chain* —
// injected fault → first observable error → propagation through environment
// resources → detection → recovery outcome. The chain is rebuilt by walking
// the ring (and, when the trial ran traced, the transcript and the
// vector-clock happens-before data from src/analysis/), so every failed
// matrix cell carries its own audit trail without a debugger re-run.
//
// Everything here is deterministic in the trial seed: records are built from
// simulation state only, fold per-index like telemetry, and serialize
// byte-identically for every `--threads` value (forensics/export.hpp).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/taxonomy.hpp"
#include "env/environment.hpp"
#include "env/trace.hpp"
#include "forensics/recorder.hpp"
#include "harness/transcript.hpp"

namespace faultstudy::forensics {

/// Stages of the reconstructed fault-propagation chain, in causal order.
enum class ChainStage : std::uint8_t {
  kInjection = 0,  ///< the fault and its environmental precondition armed
  kPropagation,    ///< environment resource transitions feeding the failure
  kFirstError,     ///< first observable failure of a workload item
  kDetection,      ///< how the failure was noticed (harness / detectors)
  kRecovery,       ///< what the mechanism did about it
  kOutcome,        ///< how the trial ended
  kCount,
};

std::string_view to_string(ChainStage stage) noexcept;

/// One link of the causal chain: a stage, when it happened in simulated
/// time, and a human-readable reconstruction of what happened.
struct CausalLink {
  ChainStage stage = ChainStage::kInjection;
  env::Tick at = 0;
  std::string description;

  bool operator==(const CausalLink&) const = default;
};

/// Environment resource occupancy at the moment the trial died.
struct EnvResourceState {
  std::size_t procs_used = 0;
  std::size_t procs_capacity = 0;
  std::size_t fds_used = 0;
  std::size_t fds_capacity = 0;
  std::uint64_t disk_used = 0;
  std::uint64_t disk_capacity = 0;
  std::uint64_t entropy_bits = 0;
  std::size_t kernel_resource = 0;
  std::uint8_t dns_health = 0;  ///< env::DnsHealth at failure time
  std::uint8_t link_state = 0;  ///< env::LinkState at failure time
  bool network_card_present = true;

  bool operator==(const EnvResourceState&) const = default;
};

/// Reads the resource tables of a live environment (non-const because the
/// subsystem accessors are, not because anything is mutated).
EnvResourceState capture_env_state(env::Environment& environment);

/// Everything the study keeps about one failed trial.
struct PostMortemRecord {
  std::string fault_id;
  core::AppId app = core::AppId::kApache;
  core::FaultClass fault_class = core::FaultClass::kEnvironmentIndependent;
  core::Trigger trigger = core::Trigger::kBoundaryInput;
  std::string mechanism;
  TrialVerdict verdict = TrialVerdict::kSurvived;
  /// Matrix repeat ordinal (0 for standalone trials).
  int repeat = 0;

  env::Tick ended_at = 0;
  std::size_t failures = 0;
  std::size_t recoveries = 0;
  std::string first_failure;

  /// First environment-resource transition observed before the first error
  /// (FlightCode::kCount when the failure had no resource prelude — the
  /// propagation was direct from input to code path).
  FlightCode propagation = FlightCode::kCount;

  std::vector<CausalLink> chain;
  EnvResourceState env_state;
  /// Ring snapshot, oldest first, plus how many events overwrote out.
  std::vector<FlightEvent> events;
  std::uint64_t events_dropped = 0;

  /// Detector verdicts; only populated when the trial ran traced.
  std::size_t race_reports = 0;
  std::size_t invariant_violations = 0;
  bool analyzed = false;  ///< true when transcript/trace analysis ran
};

/// Inputs for reconstruction that the trial runner owns. Transcript and
/// trace are optional: matrix trials run untraced (the ring alone feeds the
/// chain) while deep-dive trials pass both and get detector verdicts and
/// invariant analysis folded into the detection stage.
struct PostMortemInputs {
  std::string_view fault_id;
  core::AppId app = core::AppId::kApache;
  core::FaultClass fault_class = core::FaultClass::kEnvironmentIndependent;
  core::Trigger trigger = core::Trigger::kBoundaryInput;
  std::string_view mechanism;
  TrialVerdict verdict = TrialVerdict::kSurvived;
  std::size_t failures = 0;
  std::size_t recoveries = 0;
  std::string_view first_failure;
  const harness::Transcript* transcript = nullptr;
  std::span<const env::TraceEvent> trace;
};

/// Snapshots the ring and the environment and reconstructs the causal
/// chain. The chain is never empty: it always links the injected fault id
/// (kInjection) to the recovery outcome (kOutcome).
PostMortemRecord build_postmortem(const FlightRecorder& ring,
                                  env::Environment& environment,
                                  const PostMortemInputs& inputs);

/// Per-trial forensic state the caller hands to run_trial: the ring the
/// trial records into, and — filled in by the runner iff the trial did not
/// survive — the reconstructed post-mortem.
struct TrialForensics {
  FlightRecorder ring;
  std::optional<PostMortemRecord> postmortem;
};

/// Study-wide forensic aggregate: post-mortems from every failed trial,
/// folded serially in matrix index order so the collection (and everything
/// exported from it) is identical for every thread count.
struct StudyForensics {
  std::vector<PostMortemRecord> postmortems;
  std::size_t trials = 0;    ///< trials run under the forensic sink
  std::size_t survived = 0;  ///< trials that completed their workload

  std::size_t failures() const noexcept { return postmortems.size(); }

  void fold_trial(bool trial_survived,
                  std::optional<PostMortemRecord>&& postmortem);
};

}  // namespace faultstudy::forensics
