// Failure triage: clusters post-mortems across the matrix by failure
// signature so the study explorer (and the report's forensics section) can
// say "these 54 failed trials are all the same story" instead of listing
// every cell.
//
// A signature is fault class × propagation path × mechanism × verdict —
// the axes Chandra & Chen's §6 discussion turns on: *what kind* of fault,
// *through which environmental channel* it reached the application, *which
// mechanism* tried to save it, and *how* the attempt ended. Clustering is
// pure counting over deterministic records, so the cluster list is
// identical for every thread count.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/taxonomy.hpp"
#include "forensics/postmortem.hpp"

namespace faultstudy::forensics {

/// One cluster of like failures.
struct TriageCluster {
  std::string signature;  ///< "class/trigger/via:<path>/mechanism/verdict"
  core::FaultClass fault_class = core::FaultClass::kEnvironmentIndependent;
  core::Trigger trigger = core::Trigger::kBoundaryInput;
  FlightCode propagation = FlightCode::kCount;
  std::string mechanism;
  TrialVerdict verdict = TrialVerdict::kSurvived;

  std::size_t count = 0;            ///< post-mortems in the cluster
  std::size_t total_failures = 0;   ///< summed item failures
  std::size_t total_recoveries = 0; ///< summed recovery attempts
  /// Distinct specimen ids, sorted; the explorer drills into these.
  std::vector<std::string> fault_ids;
};

/// The signature string a post-mortem clusters under.
std::string failure_signature(const PostMortemRecord& pm);

/// Clusters post-mortems by signature. Output is sorted by descending
/// count, then signature, so it is deterministic and biggest-story-first.
std::vector<TriageCluster> triage(
    const std::vector<PostMortemRecord>& postmortems);

}  // namespace faultstudy::forensics
