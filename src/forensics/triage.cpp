#include "forensics/triage.hpp"

#include <algorithm>
#include <map>

namespace faultstudy::forensics {

std::string failure_signature(const PostMortemRecord& pm) {
  std::string sig;
  sig += core::to_code(pm.fault_class);
  sig += '/';
  sig += core::to_string(pm.trigger);
  sig += "/via:";
  sig += pm.propagation == FlightCode::kCount ? "direct"
                                              : to_string(pm.propagation);
  sig += '/';
  sig += pm.mechanism;
  sig += '/';
  sig += to_string(pm.verdict);
  return sig;
}

std::vector<TriageCluster> triage(
    const std::vector<PostMortemRecord>& postmortems) {
  // std::map keys the accumulation deterministically; the final sort
  // re-orders by size for presentation.
  std::map<std::string, TriageCluster> clusters;
  for (const PostMortemRecord& pm : postmortems) {
    std::string sig = failure_signature(pm);
    TriageCluster& c = clusters[sig];
    if (c.count == 0) {
      c.signature = std::move(sig);
      c.fault_class = pm.fault_class;
      c.trigger = pm.trigger;
      c.propagation = pm.propagation;
      c.mechanism = pm.mechanism;
      c.verdict = pm.verdict;
    }
    ++c.count;
    c.total_failures += pm.failures;
    c.total_recoveries += pm.recoveries;
    c.fault_ids.push_back(pm.fault_id);
  }

  std::vector<TriageCluster> out;
  out.reserve(clusters.size());
  for (auto& [sig, cluster] : clusters) {
    std::sort(cluster.fault_ids.begin(), cluster.fault_ids.end());
    cluster.fault_ids.erase(
        std::unique(cluster.fault_ids.begin(), cluster.fault_ids.end()),
        cluster.fault_ids.end());
    out.push_back(std::move(cluster));
  }
  std::sort(out.begin(), out.end(),
            [](const TriageCluster& x, const TriageCluster& y) {
              if (x.count != y.count) return x.count > y.count;
              return x.signature < y.signature;
            });
  return out;
}

}  // namespace faultstudy::forensics
