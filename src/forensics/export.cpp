#include "forensics/export.hpp"

#include <cstdio>

namespace faultstudy::forensics {
namespace {

void append_json_string(std::string& out, std::string_view text) {
  out.push_back('"');
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void append_kv(std::string& out, std::string_view key, std::string_view value,
               bool comma = true) {
  append_json_string(out, key);
  out.push_back(':');
  append_json_string(out, value);
  if (comma) out.push_back(',');
}

void append_kv_num(std::string& out, std::string_view key, std::uint64_t value,
                   bool comma = true) {
  append_json_string(out, key);
  out += ":" + std::to_string(value);
  if (comma) out.push_back(',');
}

void append_env_state(std::string& out, const EnvResourceState& s) {
  out += "{";
  append_kv_num(out, "procs_used", s.procs_used);
  append_kv_num(out, "procs_capacity", s.procs_capacity);
  append_kv_num(out, "fds_used", s.fds_used);
  append_kv_num(out, "fds_capacity", s.fds_capacity);
  append_kv_num(out, "disk_used", s.disk_used);
  append_kv_num(out, "disk_capacity", s.disk_capacity);
  append_kv_num(out, "entropy_bits", s.entropy_bits);
  append_kv_num(out, "kernel_resource", s.kernel_resource);
  append_kv_num(out, "dns_health", s.dns_health);
  append_kv_num(out, "link_state", s.link_state);
  append_kv_num(out, "network_card_present", s.network_card_present ? 1 : 0,
                /*comma=*/false);
  out += "}";
}

void append_postmortem(std::string& out, const PostMortemRecord& pm) {
  out += "{";
  append_kv(out, "fault_id", pm.fault_id);
  append_kv(out, "app", core::to_string(pm.app));
  append_kv(out, "class", core::to_code(pm.fault_class));
  append_kv(out, "trigger", core::to_string(pm.trigger));
  append_kv(out, "mechanism", pm.mechanism);
  append_kv(out, "verdict", to_string(pm.verdict));
  append_kv_num(out, "repeat", static_cast<std::uint64_t>(pm.repeat));
  append_kv_num(out, "ended_at", static_cast<std::uint64_t>(pm.ended_at));
  append_kv_num(out, "failures", pm.failures);
  append_kv_num(out, "recoveries", pm.recoveries);
  append_kv(out, "first_failure", pm.first_failure);
  append_kv(out, "propagation",
            pm.propagation == FlightCode::kCount ? "direct"
                                                 : to_string(pm.propagation));
  out += "\"chain\":[";
  for (std::size_t i = 0; i < pm.chain.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += "{";
    append_kv(out, "stage", to_string(pm.chain[i].stage));
    append_kv_num(out, "at", static_cast<std::uint64_t>(pm.chain[i].at));
    append_kv(out, "description", pm.chain[i].description, /*comma=*/false);
    out += "}";
  }
  out += "],\"env_state\":";
  append_env_state(out, pm.env_state);
  // Lane ids are deliberately absent: they are the one field that varies
  // with the thread count (see forensics/recorder.hpp).
  out += ",\"events\":[";
  for (std::size_t i = 0; i < pm.events.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += "{";
    append_kv(out, "code", to_string(pm.events[i].code));
    append_kv_num(out, "at", static_cast<std::uint64_t>(pm.events[i].at));
    append_kv_num(out, "a", pm.events[i].a);
    append_kv_num(out, "b", pm.events[i].b, /*comma=*/false);
    out += "}";
  }
  out += "],";
  append_kv_num(out, "events_dropped", pm.events_dropped);
  append_kv_num(out, "race_reports", pm.race_reports);
  append_kv_num(out, "invariant_violations", pm.invariant_violations);
  append_kv_num(out, "analyzed", pm.analyzed ? 1 : 0, /*comma=*/false);
  out += "}";
}

}  // namespace

std::string to_json(const StudyForensics& study,
                    const std::vector<TriageCluster>& clusters) {
  std::string out = "{";
  append_kv(out, "schema", "faultstudy-forensics/1");
  append_kv_num(out, "trials", study.trials);
  append_kv_num(out, "survived", study.survived);
  append_kv_num(out, "failures", study.failures());
  out += "\"postmortems\":[";
  for (std::size_t i = 0; i < study.postmortems.size(); ++i) {
    if (i > 0) out.push_back(',');
    append_postmortem(out, study.postmortems[i]);
  }
  out += "],\"triage\":[";
  for (std::size_t i = 0; i < clusters.size(); ++i) {
    const TriageCluster& c = clusters[i];
    if (i > 0) out.push_back(',');
    out += "{";
    append_kv(out, "signature", c.signature);
    append_kv(out, "class", core::to_code(c.fault_class));
    append_kv(out, "trigger", core::to_string(c.trigger));
    append_kv(out, "propagation",
              c.propagation == FlightCode::kCount ? "direct"
                                                  : to_string(c.propagation));
    append_kv(out, "mechanism", c.mechanism);
    append_kv(out, "verdict", to_string(c.verdict));
    append_kv_num(out, "count", c.count);
    append_kv_num(out, "total_failures", c.total_failures);
    append_kv_num(out, "total_recoveries", c.total_recoveries);
    out += "\"fault_ids\":[";
    for (std::size_t f = 0; f < c.fault_ids.size(); ++f) {
      if (f > 0) out.push_back(',');
      append_json_string(out, c.fault_ids[f]);
    }
    out += "]}";
  }
  out += "]}\n";
  return out;
}

namespace {

void append_html_escaped(std::string& out, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out.push_back(c);
    }
  }
}

std::string esc(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  append_html_escaped(out, text);
  return out;
}

void append_tile(std::string& out, std::string_view label,
                 std::uint64_t value) {
  out += "<div class=tile><div class=tile-value>" + std::to_string(value) +
         "</div><div class=tile-label>" + esc(label) + "</div></div>\n";
}

/// Full causal timelines rendered per cluster; the rest are listed by id
/// only (the JSON artifact always carries every record in full).
constexpr std::size_t kTimelinesPerCluster = 3;
/// Ring events rendered per timeline.
constexpr std::size_t kEventsPerTimeline = 48;

void append_timeline(std::string& out, const PostMortemRecord& pm) {
  out += "<details class=pm><summary><code>" + esc(pm.fault_id) +
         "</code> · " + esc(pm.mechanism) + " · repeat " +
         std::to_string(pm.repeat) + " · <span class=verdict>" +
         esc(to_string(pm.verdict)) + "</span></summary>\n";
  out += "<table class=chain><tr><th>stage</th><th>tick</th>"
         "<th>reconstruction</th></tr>\n";
  for (const CausalLink& link : pm.chain) {
    out += "<tr><td class=stage-" + std::string(to_string(link.stage)) +
           ">" + esc(to_string(link.stage)) + "</td><td>" +
           std::to_string(link.at) + "</td><td>" + esc(link.description) +
           "</td></tr>\n";
  }
  out += "</table>\n";
  const EnvResourceState& s = pm.env_state;
  out += "<p class=env>env at failure: procs " +
         std::to_string(s.procs_used) + "/" +
         std::to_string(s.procs_capacity) + ", fds " +
         std::to_string(s.fds_used) + "/" + std::to_string(s.fds_capacity) +
         ", disk " + std::to_string(s.disk_used) + "/" +
         std::to_string(s.disk_capacity) + " bytes, entropy " +
         std::to_string(s.entropy_bits) + " bits, dns-health " +
         std::to_string(s.dns_health) + ", link " +
         std::to_string(s.link_state) +
         (s.network_card_present ? "" : ", network card REMOVED") + "</p>\n";
  out += "<details class=ring><summary>flight recorder (" +
         std::to_string(pm.events.size()) + " events";
  if (pm.events_dropped > 0) {
    out += ", " + std::to_string(pm.events_dropped) + " overwritten";
  }
  out += ")</summary><table><tr><th>tick</th><th>event</th><th>a</th>"
         "<th>b</th></tr>\n";
  const std::size_t shown = std::min(pm.events.size(), kEventsPerTimeline);
  for (std::size_t i = 0; i < shown; ++i) {
    const FlightEvent& e = pm.events[i];
    out += "<tr><td>" + std::to_string(e.at) + "</td><td>" +
           esc(to_string(e.code)) + "</td><td>" + std::to_string(e.a) +
           "</td><td>" + std::to_string(e.b) + "</td></tr>\n";
  }
  if (shown < pm.events.size()) {
    out += "<tr><td colspan=4>… " +
           std::to_string(pm.events.size() - shown) +
           " more in the JSON artifact</td></tr>\n";
  }
  out += "</table></details>\n";
  if (pm.analyzed) {
    out += "<p class=env>detectors: " + std::to_string(pm.race_reports) +
           " race report(s), " + std::to_string(pm.invariant_violations) +
           " invariant violation(s)</p>\n";
  }
  out += "</details>\n";
}

}  // namespace

std::string render_explorer_html(
    const StudyForensics& study, const std::vector<TriageCluster>& clusters,
    const std::vector<MechanismSuccessRow>& mechanisms,
    std::string_view title) {
  std::string out;
  out += "<!DOCTYPE html>\n<html lang=en>\n<head>\n<meta charset=utf-8>\n";
  out += "<title>" + esc(title) + "</title>\n<style>\n";
  out +=
      "body{font:14px/1.5 system-ui,sans-serif;margin:2rem auto;"
      "max-width:72rem;padding:0 1rem;color:#1a1a1a}\n"
      "h1{font-size:1.4rem}h2{font-size:1.1rem;margin-top:2rem}\n"
      "code{background:#f2f2f2;padding:0 .25em;border-radius:3px}\n"
      ".tiles{display:flex;gap:1rem;flex-wrap:wrap}\n"
      ".tile{border:1px solid #ddd;border-radius:6px;padding:.75rem 1.25rem;"
      "min-width:7rem;text-align:center}\n"
      ".tile-value{font-size:1.5rem;font-weight:600}\n"
      ".tile-label{color:#666;font-size:.8rem}\n"
      "table{border-collapse:collapse;width:100%;margin:.5rem 0}\n"
      "th,td{border:1px solid #e2e2e2;padding:.3rem .5rem;text-align:left;"
      "vertical-align:top}\n"
      "th{background:#fafafa}\n"
      "details.pm{border:1px solid #e2e2e2;border-radius:6px;margin:.5rem 0;"
      "padding:.25rem .75rem}\n"
      "details.ring{margin:.25rem 0}\n"
      ".verdict{color:#b00020;font-weight:600}\n"
      ".env{color:#555;font-size:.85rem}\n"
      ".td-num{text-align:right}\n"
      "#filter{padding:.35rem .5rem;width:20rem;margin:.25rem 0}\n";
  out += "</style>\n</head>\n<body>\n";
  out += "<h1>" + esc(title) + "</h1>\n";
  out += "<p>Post-mortem study explorer: every failed trial's causal chain "
         "from injected fault to recovery outcome, clustered by failure "
         "signature. Generated deterministically from the simulation — "
         "identical for every thread count.</p>\n";

  out += "<div class=tiles>\n";
  append_tile(out, "trials", study.trials);
  append_tile(out, "survived", study.survived);
  append_tile(out, "post-mortems", study.failures());
  append_tile(out, "triage clusters", clusters.size());
  out += "</div>\n";

  if (!mechanisms.empty()) {
    out += "<h2>Recovery success drill-down</h2>\n";
    out += "<table><tr><th>mechanism</th><th>generic</th>"
           "<th>cells survived</th><th>state losses</th>"
           "<th>post-mortems</th></tr>\n";
    for (const MechanismSuccessRow& row : mechanisms) {
      std::size_t pms = 0;
      for (const PostMortemRecord& pm : study.postmortems) {
        if (pm.mechanism == row.mechanism) ++pms;
      }
      out += "<tr><td>" + esc(row.mechanism) + "</td><td>" +
             (row.generic ? "yes" : "no") + "</td><td class=td-num>" +
             std::to_string(row.survived) + "/" + std::to_string(row.total) +
             "</td><td class=td-num>" + std::to_string(row.state_losses) +
             "</td><td class=td-num>" + std::to_string(pms) +
             "</td></tr>\n";
    }
    out += "</table>\n";
  }

  out += "<h2>Failure triage</h2>\n";
  out += "<input id=filter type=search placeholder=\"filter signatures…\" "
         "oninput=\"filterRows(this.value)\">\n";
  out += "<table id=triage><tr><th>signature</th><th>count</th>"
         "<th>failures</th><th>recoveries</th><th>specimens</th></tr>\n";
  for (const TriageCluster& c : clusters) {
    out += "<tr><td><code>" + esc(c.signature) + "</code></td>"
           "<td class=td-num>" + std::to_string(c.count) +
           "</td><td class=td-num>" + std::to_string(c.total_failures) +
           "</td><td class=td-num>" + std::to_string(c.total_recoveries) +
           "</td><td>";
    for (std::size_t i = 0; i < c.fault_ids.size(); ++i) {
      if (i > 0) out += " ";
      out += "<code>" + esc(c.fault_ids[i]) + "</code>";
    }
    out += "</td></tr>\n";
  }
  out += "</table>\n";

  out += "<h2>Causal timelines by cluster</h2>\n";
  for (const TriageCluster& c : clusters) {
    out += "<h3><code>" + esc(c.signature) + "</code> — " +
           std::to_string(c.count) + " post-mortem(s)</h3>\n";
    std::size_t shown = 0;
    for (const PostMortemRecord& pm : study.postmortems) {
      if (failure_signature(pm) != c.signature) continue;
      if (shown >= kTimelinesPerCluster) break;
      append_timeline(out, pm);
      ++shown;
    }
    if (c.count > shown) {
      out += "<p class=env>… " + std::to_string(c.count - shown) +
             " more post-mortem(s) in this cluster; see the JSON "
             "artifact for all of them.</p>\n";
    }
  }

  out += "<script>\n"
         "function filterRows(q){q=q.toLowerCase();"
         "for(const tr of document.querySelectorAll('#triage tr')){"
         "if(!tr.querySelector('td'))continue;"
         "tr.style.display=tr.textContent.toLowerCase().includes(q)?'':"
         "'none';}}\n"
         "</script>\n";
  out += "</body>\n</html>\n";
  return out;
}

}  // namespace faultstudy::forensics
