// Fault-forensics flight recorder: a fixed-capacity ring buffer of
// structured events that stays attached to every trial.
//
// The recorder is the always-on half of the forensics layer (DESIGN.md §10):
// injection arming, environment resource transitions, application state
// changes, recovery actions, and detector verdicts are appended as small
// fixed-size records stamped with the simulated clock and the executor lane
// that wrote them. When the ring is full the oldest events are overwritten —
// a post-mortem cares about the window leading up to the failure, not the
// full history — and the drop count is kept so exports can say what was
// lost.
//
// Cost model, mirroring telemetry/counters.hpp:
//
//   * disabled at compile time (-DFAULTSTUDY_FORENSICS=OFF): every
//     FS_FORENSIC site expands to nothing;
//   * compiled in but no recorder attached (the default): one predictable
//     `ptr != nullptr` branch per site;
//   * attached: one bounds-checked store into a preallocated ring slot.
//
// Determinism contract: a trial is single-threaded and the ring is owned by
// exactly one trial, so event order and sim-clock stamps are bit-identical
// for every `--threads` value. The lane id is the one live-diagnostic field
// that is NOT deterministic across thread counts; every serialized forensic
// artifact (post-mortem JSON, the HTML explorer) therefore omits it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "env/clock.hpp"
#include "util/thread_pool.hpp"

// CMake defines FAULTSTUDY_FORENSICS to 0 or 1; default to enabled for
// builds that bypass the option (e.g. direct compiler invocations).
#ifndef FAULTSTUDY_FORENSICS
#define FAULTSTUDY_FORENSICS 1
#endif

// Runs `expr` on the recorder when forensics is compiled in and `sink` is
// non-null: FS_FORENSIC(flight_, record(FlightCode::kDiskFull, bytes)).
#if FAULTSTUDY_FORENSICS
#define FS_FORENSIC(sink, expr)              \
  do {                                       \
    if (auto* fs_forensic_sink = (sink)) {   \
      fs_forensic_sink->expr;                \
    }                                        \
  } while (0)
#else
// Disabled: the site still type-checks but generates no code, including the
// evaluation of `sink`.
#define FS_FORENSIC(sink, expr)                \
  do {                                         \
    if constexpr (false) {                     \
      if (auto* fs_forensic_sink = (sink)) {   \
        fs_forensic_sink->expr;                \
      }                                        \
    }                                          \
  } while (0)
#endif

namespace faultstudy::forensics {

/// One code per distinct thing worth remembering about a trial. Codes carry
/// up to two integer operands (`a`, `b`); the meaning of each is documented
/// per code. Detail strings are reconstructed at export time from the code —
/// the ring itself never allocates.
enum class FlightCode : std::uint8_t {
  // -- harness protocol --
  kTrialStart = 0,    ///< a = workload items per cycle, b = cycles
  kFaultArmed,        ///< a = core::Trigger, b = core::Symptom
  kEnvArmed,          ///< environmental precondition established
  kItemFailed,        ///< a = item index, b = apps::StepStatus
  kRecoveryBegin,     ///< a = item index
  kRecoveryOk,        ///< a = item index, b = items rewound
  kRecoveryFailed,    ///< a = item index
  kRollback,          ///< a = items rewound past
  kVerdict,           ///< a = TrialVerdict

  // -- environment resource transitions --
  kFdExhausted,          ///< a = descriptors wanted, b = in use
  kProcTableFull,        ///< a = table capacity
  kProcHung,             ///< a = pid
  kDiskFull,             ///< a = bytes wanted, b = bytes used
  kFileSizeLimit,        ///< a = bytes wanted, b = per-file limit
  kDnsBroken,            ///< a = env::DnsHealth forced, b = heals-at tick
  kLinkDegraded,         ///< a = env::LinkState forced, b = heals-at tick
  kCardRemoved,          ///< network interface pulled
  kPortDenied,           ///< a = port, already bound by another owner
  kKernelResourceDenied, ///< a = units wanted, b = units available
  kEntropyBlocked,       ///< a = bits wanted, b = bits held
  kSignalRaised,         ///< a = env::Signal, b = deliver-at tick

  // -- application state changes --
  kAppStarted,        ///< a = worker processes spawned
  kAppStopped,
  kAppChildSpawned,   ///< a = pid (e.g. a CGI child)

  // -- recovery mechanism actions --
  kCheckpoint,        ///< state snapshot taken
  kFailover,          ///< process-pairs backup promotion
  kColdRestart,       ///< lossy stop+start cycle
  kRejuvenation,      ///< a = 1 for a proactive (scheduled) pass
  kRetrySanitized,    ///< wrapper rejected a killer input on retry

  // -- analysis detector verdicts --
  kDetectorRace,         ///< a = race reports over the trial's trace
  kInvariantViolation,   ///< a = violations over the trial's transcript

  kCount,  // sentinel
};

/// Why a trial ended; operand `a` of kVerdict and the post-mortem verdict.
enum class TrialVerdict : std::uint8_t {
  kSurvived = 0,
  kStartFailure,       ///< the application never came up
  kRetryCapExceeded,   ///< one item kept failing past the per-item cap
  kBudgetExhausted,    ///< total recoveries hit the trial budget
  kRecoveryFailed,     ///< the mechanism itself failed to revive the app
  kCount,
};

std::string_view to_string(FlightCode code) noexcept;
std::string_view to_string(TrialVerdict verdict) noexcept;

struct FlightEvent {
  FlightCode code = FlightCode::kTrialStart;
  /// Executor lane that recorded the event (live diagnostics only; omitted
  /// from every serialized artifact — see the determinism contract above).
  std::uint32_t lane = 0;
  env::Tick at = 0;
  std::uint64_t a = 0;
  std::uint64_t b = 0;

  bool operator==(const FlightEvent&) const = default;
};

/// Ring capacity every trial gets by default: large enough to hold the full
/// event history of nearly every specimen (a trial emits tens of events, not
/// thousands), small enough to sit in a few cache lines' worth of pages.
inline constexpr std::size_t kDefaultRingCapacity = 256;

class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t capacity = kDefaultRingCapacity)
      : ring_(capacity > 0 ? capacity : 1) {}

  /// Stamps subsequent events with this simulated clock. The clock must
  /// outlive the recording phase; unbound recorders stamp tick 0.
  void bind_clock(const env::VirtualClock* clock) noexcept { clock_ = clock; }

  /// Appends an event, overwriting the oldest when the ring is full.
  void record(FlightCode code, std::uint64_t a = 0,
              std::uint64_t b = 0) noexcept {
    FlightEvent& slot = ring_[total_ % ring_.size()];
    slot.code = code;
    slot.lane = static_cast<std::uint32_t>(util::current_lane());
    slot.at = clock_ != nullptr ? clock_->now() : 0;
    slot.a = a;
    slot.b = b;
    ++total_;
  }

  std::size_t capacity() const noexcept { return ring_.size(); }
  /// Events currently held (<= capacity).
  std::size_t size() const noexcept {
    return total_ < ring_.size() ? static_cast<std::size_t>(total_)
                                 : ring_.size();
  }
  /// Every event ever recorded, including overwritten ones.
  std::uint64_t total_recorded() const noexcept { return total_; }
  /// Events lost to overwriting.
  std::uint64_t dropped() const noexcept {
    return total_ < ring_.size() ? 0 : total_ - ring_.size();
  }
  bool empty() const noexcept { return total_ == 0; }

  /// Snapshot in chronological order, oldest surviving event first.
  std::vector<FlightEvent> chronological() const {
    std::vector<FlightEvent> out;
    const std::size_t n = size();
    out.reserve(n);
    const std::uint64_t first = total_ - n;
    for (std::uint64_t i = first; i < total_; ++i) {
      out.push_back(ring_[i % ring_.size()]);
    }
    return out;
  }

  void clear() noexcept { total_ = 0; }

 private:
  std::vector<FlightEvent> ring_;
  std::uint64_t total_ = 0;
  const env::VirtualClock* clock_ = nullptr;
};

}  // namespace faultstudy::forensics
