// Serialization of forensic artifacts: machine-readable JSON for tooling
// and a self-contained HTML study explorer for humans.
//
// Both renderers walk deterministic collections in deterministic order and
// never emit wall-clock time, lane ids, or floating-point formatting traps,
// so their output is byte-identical for every `--threads` value — the same
// contract the telemetry exporters honor.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "forensics/postmortem.hpp"
#include "forensics/triage.hpp"

namespace faultstudy::forensics {

/// Recovery-success context for the explorer's drill-down, built by the
/// caller from the matrix result (forensics itself only sees failures).
struct MechanismSuccessRow {
  std::string mechanism;
  bool generic = true;
  std::size_t survived = 0;  ///< cells survived across all fault classes
  std::size_t total = 0;     ///< cells where the fault was observed
  std::size_t state_losses = 0;
};

/// Full forensic dump: study totals, every post-mortem (chain, env state,
/// ring events — lane ids omitted), and the triage clusters.
std::string to_json(const StudyForensics& study,
                    const std::vector<TriageCluster>& clusters);

/// Self-contained HTML study explorer: summary tiles, the triage table,
/// recovery success drill-down, and per-specimen causal timelines grouped
/// by cluster. No external assets; inline CSS and a few lines of JS.
std::string render_explorer_html(
    const StudyForensics& study, const std::vector<TriageCluster>& clusters,
    const std::vector<MechanismSuccessRow>& mechanisms,
    std::string_view title);

}  // namespace faultstudy::forensics
