#include "forensics/postmortem.hpp"

#include <algorithm>

#include "analysis/invariant_checker.hpp"
#include "analysis/race_detector.hpp"
#include "apps/app.hpp"

namespace faultstudy::forensics {

std::string_view to_string(FlightCode code) noexcept {
  switch (code) {
    case FlightCode::kTrialStart: return "trial-start";
    case FlightCode::kFaultArmed: return "fault-armed";
    case FlightCode::kEnvArmed: return "env-armed";
    case FlightCode::kItemFailed: return "item-failed";
    case FlightCode::kRecoveryBegin: return "recovery-begin";
    case FlightCode::kRecoveryOk: return "recovery-ok";
    case FlightCode::kRecoveryFailed: return "recovery-failed";
    case FlightCode::kRollback: return "rollback";
    case FlightCode::kVerdict: return "verdict";
    case FlightCode::kFdExhausted: return "fd-exhausted";
    case FlightCode::kProcTableFull: return "proc-table-full";
    case FlightCode::kProcHung: return "proc-hung";
    case FlightCode::kDiskFull: return "disk-full";
    case FlightCode::kFileSizeLimit: return "file-size-limit";
    case FlightCode::kDnsBroken: return "dns-broken";
    case FlightCode::kLinkDegraded: return "link-degraded";
    case FlightCode::kCardRemoved: return "card-removed";
    case FlightCode::kPortDenied: return "port-denied";
    case FlightCode::kKernelResourceDenied: return "kernel-resource-denied";
    case FlightCode::kEntropyBlocked: return "entropy-blocked";
    case FlightCode::kSignalRaised: return "signal-raised";
    case FlightCode::kAppStarted: return "app-started";
    case FlightCode::kAppStopped: return "app-stopped";
    case FlightCode::kAppChildSpawned: return "app-child-spawned";
    case FlightCode::kCheckpoint: return "checkpoint";
    case FlightCode::kFailover: return "failover";
    case FlightCode::kColdRestart: return "cold-restart";
    case FlightCode::kRejuvenation: return "rejuvenation";
    case FlightCode::kRetrySanitized: return "retry-sanitized";
    case FlightCode::kDetectorRace: return "detector-race";
    case FlightCode::kInvariantViolation: return "invariant-violation";
    case FlightCode::kCount: break;
  }
  return "none";
}

std::string_view to_string(TrialVerdict verdict) noexcept {
  switch (verdict) {
    case TrialVerdict::kSurvived: return "survived";
    case TrialVerdict::kStartFailure: return "start-failure";
    case TrialVerdict::kRetryCapExceeded: return "retry-cap-exceeded";
    case TrialVerdict::kBudgetExhausted: return "recovery-budget-exhausted";
    case TrialVerdict::kRecoveryFailed: return "recovery-failed";
    case TrialVerdict::kCount: break;
  }
  return "?";
}

std::string_view to_string(ChainStage stage) noexcept {
  switch (stage) {
    case ChainStage::kInjection: return "injection";
    case ChainStage::kPropagation: return "propagation";
    case ChainStage::kFirstError: return "first-error";
    case ChainStage::kDetection: return "detection";
    case ChainStage::kRecovery: return "recovery";
    case ChainStage::kOutcome: return "outcome";
    case ChainStage::kCount: break;
  }
  return "?";
}

EnvResourceState capture_env_state(env::Environment& environment) {
  EnvResourceState s;
  const env::Tick now = environment.now();
  s.procs_used = environment.processes().used();
  s.procs_capacity = environment.processes().capacity();
  s.fds_used = environment.fds().used();
  s.fds_capacity = environment.fds().capacity();
  s.disk_used = environment.disk().used();
  s.disk_capacity = environment.disk().capacity();
  s.entropy_bits = environment.entropy().bits(now);
  s.kernel_resource = environment.network().kernel_resource_available();
  s.dns_health = static_cast<std::uint8_t>(environment.dns().health(now));
  s.link_state = static_cast<std::uint8_t>(environment.network().link(now));
  s.network_card_present = environment.network().card_present();
  return s;
}

namespace {

bool is_resource_transition(FlightCode code) noexcept {
  switch (code) {
    case FlightCode::kFdExhausted:
    case FlightCode::kProcTableFull:
    case FlightCode::kProcHung:
    case FlightCode::kDiskFull:
    case FlightCode::kFileSizeLimit:
    case FlightCode::kDnsBroken:
    case FlightCode::kLinkDegraded:
    case FlightCode::kCardRemoved:
    case FlightCode::kPortDenied:
    case FlightCode::kKernelResourceDenied:
    case FlightCode::kEntropyBlocked:
    case FlightCode::kSignalRaised:
      return true;
    default:
      return false;
  }
}

std::string_view step_status_name(std::uint64_t status) noexcept {
  switch (static_cast<apps::StepStatus>(status)) {
    case apps::StepStatus::kOk: return "ok";
    case apps::StepStatus::kCrash: return "crash";
    case apps::StepStatus::kError: return "error";
    case apps::StepStatus::kHang: return "hang";
  }
  return "?";
}

}  // namespace

PostMortemRecord build_postmortem(const FlightRecorder& ring,
                                  env::Environment& environment,
                                  const PostMortemInputs& inputs) {
  PostMortemRecord pm;
  pm.fault_id = std::string(inputs.fault_id);
  pm.app = inputs.app;
  pm.fault_class = inputs.fault_class;
  pm.trigger = inputs.trigger;
  pm.mechanism = std::string(inputs.mechanism);
  pm.verdict = inputs.verdict;
  pm.ended_at = environment.now();
  pm.failures = inputs.failures;
  pm.recoveries = inputs.recoveries;
  pm.first_failure = std::string(inputs.first_failure);
  pm.env_state = capture_env_state(environment);
  pm.events = ring.chronological();
  pm.events_dropped = ring.dropped();

  // -- injection --------------------------------------------------------
  env::Tick armed_at = 0;
  for (const FlightEvent& e : pm.events) {
    if (e.code == FlightCode::kFaultArmed || e.code == FlightCode::kEnvArmed) {
      armed_at = e.at;
    }
  }
  pm.chain.push_back(
      {ChainStage::kInjection, armed_at,
       "fault " + pm.fault_id + " (" +
           std::string(core::to_string(pm.trigger)) + ", " +
           std::string(core::to_string(pm.fault_class)) + ") armed into " +
           std::string(core::to_string(pm.app))});

  // -- propagation: resource transitions before the first item failure --
  const FlightEvent* first_error = nullptr;
  for (const FlightEvent& e : pm.events) {
    if (e.code == FlightCode::kItemFailed) {
      first_error = &e;
      break;
    }
  }
  std::size_t transitions = 0;
  for (const FlightEvent& e : pm.events) {
    if (first_error != nullptr && &e >= first_error) break;
    if (!is_resource_transition(e.code)) continue;
    ++transitions;
    if (pm.propagation == FlightCode::kCount) pm.propagation = e.code;
    // One link per *distinct* code keeps chains readable when a transition
    // repeats (e.g. a descriptor pool denying every item of a cycle).
    bool seen = false;
    for (const CausalLink& link : pm.chain) {
      if (link.stage == ChainStage::kPropagation &&
          link.description.starts_with(std::string(to_string(e.code)))) {
        seen = true;
        break;
      }
    }
    if (seen) continue;
    pm.chain.push_back({ChainStage::kPropagation, e.at,
                        std::string(to_string(e.code)) + " (a=" +
                            std::to_string(e.a) + ", b=" +
                            std::to_string(e.b) + ")"});
  }
  if (transitions == 0) {
    pm.chain.push_back({ChainStage::kPropagation,
                        first_error != nullptr ? first_error->at : armed_at,
                        "no environment prelude: the failure propagated "
                        "directly from the workload input"});
  }

  // -- first observable error -------------------------------------------
  if (first_error != nullptr) {
    std::string desc = "item " + std::to_string(first_error->a) + " failed (" +
                       std::string(step_status_name(first_error->b)) + ")";
    if (!pm.first_failure.empty()) desc += ": " + pm.first_failure;
    pm.chain.push_back({ChainStage::kFirstError, first_error->at,
                        std::move(desc)});
  } else if (!pm.first_failure.empty()) {
    // The ring may have lost the first failure to overwriting (or the app
    // never started); the harness-preserved detail still anchors the stage.
    pm.chain.push_back({ChainStage::kFirstError, armed_at, pm.first_failure});
  }

  // -- detection ---------------------------------------------------------
  pm.chain.push_back({ChainStage::kDetection,
                      first_error != nullptr ? first_error->at : pm.ended_at,
                      "harness observed " + std::to_string(pm.failures) +
                          " failure(s) over the trial"});
  if (inputs.transcript != nullptr) {
    pm.invariant_violations =
        analysis::check_transcript(*inputs.transcript).size();
    pm.analyzed = true;
  }
  if (!inputs.trace.empty()) {
    analysis::RaceDetector detector;
    pm.race_reports = detector.analyze(inputs.trace).size();
    pm.analyzed = true;
  }
  if (pm.analyzed) {
    pm.chain.push_back(
        {ChainStage::kDetection, pm.ended_at,
         "detectors: " + std::to_string(pm.race_reports) +
             " happens-before race report(s), " +
             std::to_string(pm.invariant_violations) +
             " transcript invariant violation(s)"});
  }

  // -- recovery ----------------------------------------------------------
  std::size_t recoveries_ok = 0;
  std::uint64_t items_rewound = 0;
  env::Tick last_recovery_at = pm.ended_at;
  for (const FlightEvent& e : pm.events) {
    if (e.code == FlightCode::kRecoveryOk) {
      ++recoveries_ok;
      items_rewound += e.b;
      last_recovery_at = e.at;
    } else if (e.code == FlightCode::kRecoveryFailed) {
      last_recovery_at = e.at;
    }
  }
  pm.chain.push_back(
      {ChainStage::kRecovery, last_recovery_at,
       pm.mechanism + " recovered " + std::to_string(recoveries_ok) + "/" +
           std::to_string(pm.recoveries) + " time(s), rewinding " +
           std::to_string(items_rewound) + " item(s)"});

  // -- outcome -----------------------------------------------------------
  pm.chain.push_back({ChainStage::kOutcome, pm.ended_at,
                      "trial ended: " + std::string(to_string(pm.verdict))});

  // Stages were appended in causal order already; a stable sort by stage
  // keeps ties (multiple propagation/detection links) in recording order.
  std::stable_sort(pm.chain.begin(), pm.chain.end(),
                   [](const CausalLink& x, const CausalLink& y) {
                     return static_cast<int>(x.stage) <
                            static_cast<int>(y.stage);
                   });
  return pm;
}

void StudyForensics::fold_trial(bool trial_survived,
                                std::optional<PostMortemRecord>&& postmortem) {
  ++trials;
  if (trial_survived) ++survived;
  if (postmortem.has_value()) postmortems.push_back(*std::move(postmortem));
}

}  // namespace faultstudy::forensics
