// Apache seed faults (Table 1: 36 EI + 7 EDN + 7 EDT = 50).
//
// Buckets 0..6 correspond to releases 1.2.4 .. 1.3.4; per-bucket totals
// (2,4,6,7,9,10,12) grow with newer releases while the EI share stays
// roughly constant, matching the two properties Figure 1 exhibits.
#include "corpus/seeds.hpp"

#include "core/rules.hpp"

namespace faultstudy::corpus {

namespace {
using core::AppId;
using core::Symptom;
using core::Trigger;

SeedFault mk(std::string id, std::string component, std::string title,
             Symptom symptom, Trigger trigger, int bucket, std::string htr,
             std::string comment) {
  SeedFault s;
  s.fault_id = std::move(id);
  s.app = AppId::kApache;
  s.component = std::move(component);
  s.title = std::move(title);
  s.symptom = symptom;
  s.trigger = trigger;
  s.bucket = bucket;
  s.how_to_repeat = std::move(htr);
  s.developer_comment = std::move(comment);
  return s;
}
}  // namespace

const std::vector<std::string>& apache_releases() {
  static const std::vector<std::string> kReleases = {
      "1.2.4", "1.2.6", "1.3.0", "1.3.1", "1.3.2", "1.3.3", "1.3.4"};
  return kReleases;
}

std::vector<SeedFault> apache_seeds() {
  std::vector<SeedFault> s;
  s.reserve(50);

  // ---- environment-dependent-nontransient (7, from Section 5.1) ----
  s.push_back(mk(
      "apache-edn-01", "core",
      "server slowly degrades and dies under sustained high load",
      Symptom::kCrash, Trigger::kResourceLeakUnderLoad, 0,
      "Run the server under high load for several days; it eventually "
      "degrades and dies. We could not identify which resource is consumed.",
      "High load leading to an unknown resource leak in the application; the "
      "leak will persist during recovery since all application state is "
      "saved and restored."));
  s.push_back(mk(
      "apache-edn-02", "core",
      "httpd fails to serve requests: lack of file descriptors",
      Symptom::kErrorReturn, Trigger::kFdExhaustion, 2,
      "With many virtual hosts and log files configured, the server runs out "
      "of file descriptors and new connections fail.",
      "Lack of file descriptors. A truly generic recovery mechanism will "
      "recover all application resources such as file descriptors, so this "
      "condition will persist during recovery."));
  s.push_back(mk(
      "apache-edn-03", "mod_proxy",
      "proxy stops caching when its disk cache fills up",
      Symptom::kErrorReturn, Trigger::kDiskCacheFull, 3,
      "Let the proxy run until the disk cache used by the application gets "
      "full; it cannot store any more temporary files and requests fail.",
      "Disk cache used by the application gets full. Garbage collection of "
      "the cache directory is not performed."));
  s.push_back(mk(
      "apache-edn-04", "mod_log",
      "server dies once access_log grows past the 2GB limit",
      Symptom::kCrash, Trigger::kFileSizeLimit, 4,
      "Leave log rotation off on a busy site; when the size of the log file "
      "is greater than maximum allowed file size the server exits.",
      "Size of log file exceeds the file size limit of the platform; write() "
      "fails and the error path aborts the child."));
  s.push_back(mk(
      "apache-edn-05", "core",
      "full file system makes httpd unable to serve any request",
      Symptom::kErrorReturn, Trigger::kFullFileSystem, 5,
      "Fill the file system holding the document root and logs; all "
      "operations fail with no space left on device.",
      "Full file system. Nothing in the server or a generic recovery system "
      "frees disk space, so the condition persists on retry."));
  s.push_back(mk(
      "apache-edn-06", "core",
      "connections fail after long uptime: network resource exhausted",
      Symptom::kErrorReturn, Trigger::kNetworkResourceExhausted, 6,
      "After weeks of uptime new connections are refused. Some unknown "
      "network resource is exhausted; restarting the whole machine helps.",
      "Unknown network resource exhausted. Could not determine which kernel "
      "structure is consumed."));
  s.push_back(mk(
      "apache-edn-07", "core",
      "httpd crashes when the PCMCIA network card is removed",
      Symptom::kCrash, Trigger::kHardwareRemoval, 6,
      "Start httpd on a laptop, then eject the PCMCIA network card while the "
      "server is running. httpd dies immediately.",
      "Removal of PCMCIA network card from the computer invalidates the "
      "socket; recovery cannot reinsert the card."));

  // ---- environment-dependent-transient (7, from Section 5.1) ----
  s.push_back(mk(
      "apache-edt-01", "core",
      "request fails when call to Domain Name Service returns an error",
      Symptom::kErrorReturn, Trigger::kDnsError, 1,
      "With HostnameLookups on, a request fails when the call to Domain Name "
      "Service returns an error.",
      "DNS returned an error. This is likely to change when the DNS server "
      "is restarted, so a retry would succeed."));
  s.push_back(mk(
      "apache-edt-02", "core",
      "child processes hang during peak load and fill the process table",
      Symptom::kHang, Trigger::kProcessTableFull, 2,
      "During peak load child processes hang and consume all available slots "
      "in the process table; no new process can be created.",
      "As part of automatic recovery, the recovery system is likely to kill "
      "all processes associated with the application, freeing the slots."));
  s.push_back(mk(
      "apache-edt-03", "core",
      "segfault when user presses stop on the browser mid-download",
      Symptom::kCrash, Trigger::kWorkloadTiming, 3,
      "Request a large page and press stop on the browser in the midst of a "
      "page download; occasionally the serving child segfaults.",
      "Depends on the exact timing of the requested workload, which is not "
      "likely to be repeated during recovery."));
  s.push_back(mk(
      "apache-edt-04", "core",
      "restart fails: hung children hang onto required network ports",
      Symptom::kErrorReturn, Trigger::kPortsHeldByChildren, 4,
      "After some children hang, restarting the server fails with address "
      "already in use; the hung children hold the listening ports.",
      "Hung child processes will likely be killed during recovery and the "
      "ports will be freed."));
  s.push_back(mk(
      "apache-edt-05", "core",
      "requests time out when DNS responds slowly",
      Symptom::kErrorReturn, Trigger::kDnsSlow, 5,
      "With a misbehaving name server, slow Domain Name Service response "
      "makes requests time out.",
      "The cause of the slow DNS response will likely be fixed eventually "
      "without application-specific recovery, either by restarting DNS or by "
      "fixing the network."));
  s.push_back(mk(
      "apache-edt-06", "mod_proxy",
      "proxy request aborts over a slow network connection",
      Symptom::kErrorReturn, Trigger::kNetworkSlow, 5,
      "Fetch through the proxy over a very slow network connection; the "
      "transfer aborts with a timeout error.",
      "The network may be fixed by the time Apache recovers; a retry is "
      "likely to succeed."));
  s.push_back(mk(
      "apache-edt-07", "mod_ssl",
      "SSL handshake blocks: lack of events to generate random numbers",
      Symptom::kHang, Trigger::kEntropyShortage, 6,
      "On an idle machine the SSL handshake blocks due to lack of events to "
      "generate sufficient random numbers in /dev/random.",
      "During recovery it is likely that more events will be generated for "
      "/dev/random, so the retry succeeds."));

  // ---- environment-independent (36) ----
  // The five bugs the paper describes:
  s.push_back(mk(
      "apache-ei-01", "core",
      "dies with a segfault when the submitted URL is very long",
      Symptom::kCrash, Trigger::kBoundaryInput, 2,
      "Submit a very long URL from the browser; the server dies with a "
      "segfault every time.",
      "This problem was a result of an overflow in the hash calculation."));
  s.push_back(mk(
      "apache-ei-02", "core",
      "SIGHUP kills apache on Solaris and Unixware",
      Symptom::kCrash, Trigger::kSignalHandlingBug, 3,
      "Send SIGHUP to the parent process on Solaris or Unixware. SIGHUP "
      "kills apache instead of gracefully restarting it.",
      "Normally this should gracefully restart/rejuvenate Apache; the "
      "handler is wrong on these platforms."));
  s.push_back(mk(
      "apache-ei-03", "core",
      "dumps core on Linux/PPC if handed a nonexistent URL",
      Symptom::kCrash, Trigger::kApiMisuse, 4,
      "Request a nonexistent URL on Linux/PPC; the server dumps core "
      "reliably.",
      "ap_log_rerror() uses a va_list variable twice without an intervening "
      "va_end/va_start combination."));
  s.push_back(mk(
      "apache-ei-04", "mod_autoindex",
      "crash when directory listing is on and the directory has zero entries",
      Symptom::kCrash, Trigger::kBoundaryInput, 5,
      "Turn directory listing on and request a directory that has zero "
      "entries; the server crashes.",
      "The palloc() call used in index_directory() doesn't handle size zero "
      "properly."));
  s.push_back(mk(
      "apache-ei-05", "core",
      "shared memory segment keeps growing; HUP freezes or kills the server",
      Symptom::kResourceBloat, Trigger::kDeterministicLeak, 6,
      "The shared memory segment keeps growing and reaches sizes exceeding "
      "100 Mbytes in less than 5 hours of operation. When a HUP signal is "
      "sent to rotate logs, Apache freezes or dies.",
      "Caused by memory leaks in the application's scoreboard handling."));

  // Reconstructed EI bugs (31), same mechanisms, distributed over releases
  // to keep the per-bucket EI counts at (1,3,4,5,7,7,9) = 36 with the five
  // described bugs occupying buckets 2,3,4,5,6.
  struct Ei {
    const char* component;
    const char* title;
    Symptom symptom;
    Trigger trigger;
    int bucket;
    const char* htr;
    const char* comment;
  };
  static const Ei kEi[] = {
      // bucket 0 (1 EI)
      {"mod_cgi", "segfault when a CGI script returns an empty header block",
       Symptom::kCrash, Trigger::kBoundaryInput, 0,
       "Install a CGI that prints only a blank line; every request to it "
       "crashes the serving child.",
       "Header parser indexes the first header line without checking for "
       "zero headers; classic boundary condition."},
      // bucket 1 (3 EI)
      {"mod_include", "SSI include directive with no file attribute dumps core",
       Symptom::kCrash, Trigger::kBoundaryInput, 1,
       "Create a .shtml page containing <!--#include --> with no attribute; "
       "requesting it dumps core every time.",
       "Missing check for an empty attribute list before dereferencing the "
       "first entry."},
      {"mod_rewrite", "RewriteMap lookup crashes on rules with empty pattern",
       Symptom::kCrash, Trigger::kMissingInitialization, 1,
       "Define a RewriteRule with an empty pattern; the first matching "
       "request crashes httpd.",
       "The compiled pattern structure is used uninitialized when the "
       "pattern text is empty; missing initialization."},
      {"core", "Host: header with trailing dot returns wrong virtual host",
       Symptom::kErrorReturn, Trigger::kLogicError, 1,
       "Send a request with Host: www.example.com. (trailing dot); the "
       "server picks the wrong virtual host deterministically.",
       "Hostname comparison fails to canonicalize the trailing dot; logic "
       "error in vhost matching."},
      // bucket 2 (3 more EI besides apache-ei-01)
      {"mod_auth", "htpasswd file with a line longer than 256 chars crashes auth",
       Symptom::kCrash, Trigger::kBoundaryInput, 2,
       "Put a very long line into the htpasswd file; the next authenticated "
       "request crashes.",
       "Fixed-size stack buffer; a buffer overflow occurs when the line "
       "exceeds 256 characters."},
      {"mod_cgi", "POST with Content-Length 0 hangs the CGI child",
       Symptom::kHang, Trigger::kBoundaryInput, 2,
       "Send a POST request with Content-Length: 0 to any CGI; the child "
       "waits forever for a body that never comes.",
       "Loop condition never checked the zero-length boundary condition."},
      {"core", "ScriptAlias to a directory without trailing slash loops forever",
       Symptom::kHang, Trigger::kLogicError, 2,
       "Configure ScriptAlias /cgi /usr/lib/cgi (no trailing slash) and "
       "request /cgi; the server spins at 100% CPU.",
       "Path-merge loop re-appends the same segment; state-machine logic "
       "error."},
      // bucket 3 (4 more EI besides apache-ei-02)
      {"mod_mime", "file with hundreds of dots in its name crashes content-type scan",
       Symptom::kCrash, Trigger::kBoundaryInput, 3,
       "Create a file named a.b.c....z with several hundred dots and request "
       "it; the extension scanner crashes.",
       "Recursion depth equals the number of dots; stack overflow at an "
       "untested boundary condition."},
      {"core", "ErrorDocument pointing at itself recurses until crash",
       Symptom::kCrash, Trigger::kLogicError, 3,
       "Set ErrorDocument 404 /missing where /missing does not exist; any "
       "404 recurses until the child crashes.",
       "No recursion guard in the internal-redirect path; logic error."},
      {"mod_status", "status page shows negative request counts after 2^31 requests",
       Symptom::kErrorReturn, Trigger::kWrongVariableUsage, 3,
       "After two billion requests the counters on the status page go "
       "negative.",
       "Counter declared as \"long\" instead of \"unsigned long\"; wrong "
       "type for the variable."},
      {"mod_proxy", "proxy garbles responses when upstream sends folded headers",
       Symptom::kErrorReturn, Trigger::kLogicError, 3,
       "Proxy to an origin that sends RFC822 folded headers; the proxied "
       "response is corrupted every time.",
       "Header continuation lines are spliced at the wrong offset; "
       "deterministic logic error in the parser."},
      // bucket 4 (6 more EI besides apache-ei-03)
      {"core", "Range: bytes=0- on a zero-byte file returns corrupt response",
       Symptom::kErrorReturn, Trigger::kBoundaryInput, 4,
       "Request a zero-byte file with header Range: bytes=0-; the response "
       "is malformed every time.",
       "byterange code divides by the file size; empty file is the untested "
       "boundary condition."},
      {"mod_usertrack", "cookie parser crashes on cookie without '=' sign",
       Symptom::kCrash, Trigger::kBoundaryInput, 4,
       "Send header Cookie: abc (no equals sign); the child segfaults.",
       "strchr result used without a NULL check; missing check for the "
       "malformed boundary case."},
      {"mod_alias", "redirect target longer than 8k truncated and corrupted",
       Symptom::kErrorReturn, Trigger::kBoundaryInput, 4,
       "Configure a Redirect whose target URL is longer than 8192 bytes; "
       "clients receive a truncated, corrupt Location header.",
       "Fixed-size buffer without length check; overflow at the 8k "
       "boundary."},
      {"core", "SIGUSR1 graceful restart loses the error log descriptor",
       Symptom::kErrorReturn, Trigger::kSignalHandlingBug, 4,
       "Send SIGUSR1 for a graceful restart; afterwards nothing is written "
       "to the error log.",
       "The restart handler closes the log descriptor before the reopen "
       "path runs; deterministic signal-handling bug."},
      {"mod_expires", "ExpiresByType with empty type string crashes at config read",
       Symptom::kCrash, Trigger::kMissingInitialization, 4,
       "Add ExpiresByType \"\" A3600 to the config; the server crashes while "
       "reading the configuration.",
       "The type table entry is used before being initialized when the type "
       "string is empty."},
      {"mod_negotiation", "type-map file ending without newline reads past buffer",
       Symptom::kCrash, Trigger::kBoundaryInput, 4,
       "Create a .var type-map whose last line has no trailing newline; "
       "requesting it crashes the child.",
       "Line scanner assumes a newline terminator; reads past the buffer at "
       "the boundary."},
      // bucket 5 (5 more EI besides apache-ei-04)
      {"core", "keepalive request after a HEAD of a CGI returns garbage",
       Symptom::kErrorReturn, Trigger::kLogicError, 5,
       "On one keepalive connection send HEAD to a CGI then GET a static "
       "file; the second response is garbage, every time.",
       "The CGI HEAD path forgets to drain the script output; protocol "
       "state-machine logic error."},
      {"mod_imap", "imagemap file with coordinates but no URL dumps core",
       Symptom::kCrash, Trigger::kBoundaryInput, 5,
       "Create a .map file line with coordinates but no target URL and "
       "click in that region; httpd dumps core.",
       "Token parser dereferences the missing URL token; untested boundary "
       "condition."},
      {"mod_setenvif", "SetEnvIf with backreference to unmatched group crashes",
       Symptom::kCrash, Trigger::kMissingInitialization, 5,
       "Use SetEnvIf Referer ^(a)|b ref=$1 and send a request matching the "
       "b branch; the child crashes.",
       "Backreference array entry for the unmatched group is used "
       "uninitialized."},
      {"core", "LimitRequestBody rejects exactly-at-limit bodies with wrong code",
       Symptom::kErrorReturn, Trigger::kBoundaryInput, 5,
       "Set LimitRequestBody 1000 and POST exactly 1000 bytes; the request "
       "is rejected although it equals the limit.",
       "Off-by-one in the comparison; boundary condition at the exact "
       "limit."},
      {"mod_userdir", "requests for ~user with empty home directory loop",
       Symptom::kHang, Trigger::kLogicError, 5,
       "Create a user whose home directory field is empty and request "
       "/~user/; the child loops forever.",
       "Path composition with the empty home string re-enters the same "
       "translate hook; logic error."},
      {"mod_headers", "Header unset of a header set twice removes only one copy",
       Symptom::kErrorReturn, Trigger::kWrongVariableUsage, 5,
       "Set the same response header twice and Header unset it; one copy "
       "always remains in the response.",
       "The unset loop saves the iteration index into a local copy of the "
       "variable and skips the second entry."},
      // bucket 6 (8 more EI besides apache-ei-05)
      {"core", "If-Modified-Since with malformed date crashes the child",
       Symptom::kCrash, Trigger::kBoundaryInput, 6,
       "Send If-Modified-Since: garbage-date; the serving child segfaults "
       "on every such request.",
       "Date parser returns NULL for unparseable dates and the caller "
       "misses the check."},
      {"mod_speling", "directory with 10000 entries overflows the candidate list",
       Symptom::kCrash, Trigger::kBoundaryInput, 6,
       "Enable mod_speling on a directory with ten thousand files and "
       "request a misspelled name; the child crashes.",
       "Candidate array is a fixed-size buffer; overflow at the boundary."},
      {"mod_log", "custom log format %{}t with empty format string crashes",
       Symptom::kCrash, Trigger::kBoundaryInput, 6,
       "Use LogFormat \"%{}t\" and issue any request; the logging child "
       "crashes.",
       "Empty strftime format is the untested boundary; missing check "
       "before the first character is read."},
      {"core", "proxy of HTTP/0.9 response duplicates the first 4 bytes",
       Symptom::kErrorReturn, Trigger::kLogicError, 6,
       "Proxy an HTTP/0.9 origin; every proxied body starts with four "
       "duplicated bytes.",
       "Sniff buffer is replayed twice into the output; deterministic "
       "logic error."},
      {"mod_env", "PassEnv of an unset variable poisons the environment table",
       Symptom::kErrorReturn, Trigger::kMissingInitialization, 6,
       "Use PassEnv NOT_SET and run any CGI; unrelated variables disappear "
       "from its environment.",
       "Table entry for the unset variable is inserted uninitialized and "
       "corrupts the walk."},
      {"mod_dir", "DirectoryIndex with absolute path escapes the docroot check",
       Symptom::kSecurity, Trigger::kLogicError, 6,
       "Set DirectoryIndex /etc/passwd; requests for directories serve the "
       "absolute path, a security problem.",
       "Index candidates are not re-checked against the document root; "
       "logic error with security impact."},
      {"core", "Connection: close combined with chunked reply sends bad chunk",
       Symptom::kErrorReturn, Trigger::kLogicError, 6,
       "Force Connection: close on a chunked reply; the final chunk is "
       "malformed every time.",
       "The close path skips the chunk-trailer state; protocol logic "
       "error."},
      {"mod_access", "deny rule with host name ending in dot never matches",
       Symptom::kSecurity, Trigger::kWrongVariableUsage, 6,
       "Use deny from example.com. (trailing dot); the rule silently never "
       "matches and access is allowed: a security problem.",
       "Comparison uses the unnormalized copy of the variable instead of "
       "the canonical one."},
  };
  int ei_counter = 6;  // apache-ei-01..05 are the paper-described bugs
  for (const auto& e : kEi) {
    const std::string id = "apache-ei-" + std::string(ei_counter < 10 ? "0" : "") +
                           std::to_string(ei_counter);
    ++ei_counter;
    s.push_back(mk(id, e.component, e.title, e.symptom, e.trigger, e.bucket,
                   e.htr, e.comment));
  }
  return s;
}

}  // namespace faultstudy::corpus
