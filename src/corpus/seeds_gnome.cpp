// GNOME seed faults (Table 2: 39 EI + 3 EDN + 3 EDT = 45).
//
// GNOME's figure buckets by time rather than release (the modules release
// independently); buckets 0..7 are two-month periods. Per-bucket totals
// (4,6,7,5,3,5,7,8) show the mid-period dip Figure 2 exhibits, with the EI
// proportion high throughout.
#include "corpus/seeds.hpp"

namespace faultstudy::corpus {

namespace {
using core::AppId;
using core::Symptom;
using core::Trigger;

SeedFault mk(std::string id, std::string component, std::string title,
             Symptom symptom, Trigger trigger, int bucket, std::string htr,
             std::string comment) {
  SeedFault s;
  s.fault_id = std::move(id);
  s.app = AppId::kGnome;
  s.component = std::move(component);
  s.title = std::move(title);
  s.symptom = symptom;
  s.trigger = trigger;
  s.bucket = bucket;
  s.how_to_repeat = std::move(htr);
  s.developer_comment = std::move(comment);
  return s;
}
}  // namespace

const std::vector<std::string>& gnome_periods() {
  static const std::vector<std::string> kPeriods = {
      "1998-09", "1998-11", "1999-01", "1999-03",
      "1999-05", "1999-07", "1999-09", "1999-11"};
  return kPeriods;
}

std::vector<SeedFault> gnome_seeds() {
  std::vector<SeedFault> s;
  s.reserve(45);

  // ---- environment-dependent-nontransient (3, from Section 5.2) ----
  s.push_back(mk(
      "gnome-edn-01", "gnome-libs",
      "applications fail after the hostname of the machine is changed",
      Symptom::kErrorReturn, Trigger::kHostnameChanged, 1,
      "Start any GNOME application, then change the hostname of the machine "
      "while the application is running; subsequent operations fail.",
      "The session manager address embeds the old hostname; the hostname "
      "stays changed after recovery, so the condition persists."));
  s.push_back(mk(
      "gnome-edn-02", "esd",
      "panel runs out of file descriptors: open sockets left around by "
      "sound utilities",
      Symptom::kCrash, Trigger::kExternalSocketLeak, 3,
      "Use sound-enabled applets for a while; open sockets left around by "
      "sound utilities while exiting each consume a file descriptor and the "
      "application runs out of file descriptors.",
      "The leaked sockets belong to the sound daemon's clients; they remain "
      "open across recovery of the panel itself."));
  s.push_back(mk(
      "gnome-edn-03", "gmc",
      "crash when editing a file that has an illegal value in the owner field",
      Symptom::kCrash, Trigger::kCorruptFileMetadata, 6,
      "Create a file whose owner field holds an illegal value (e.g. an id "
      "with no passwd entry written by another OS); the application crashes "
      "when trying to edit the file or its properties.",
      "The illegal metadata value is still on disk after recovery, so the "
      "crash recurs until the file is fixed by hand."));

  // ---- environment-dependent-transient (3, from Section 5.2) ----
  s.push_back(mk(
      "gnome-edt-01", "panel",
      "unknown failure of application which works on a retry",
      Symptom::kCrash, Trigger::kUnknownTransient, 2,
      "The panel died once during normal use; we could not repeat it. "
      "Restarting the panel worked and it has not happened since.",
      "Could not reproduce on the development machines; works on a retry."));
  s.push_back(mk(
      "gnome-edt-02", "gmc",
      "race condition between an image viewer and a property editor",
      Symptom::kCrash, Trigger::kRaceCondition, 5,
      "Open the property editor on an image while the image viewer is "
      "redrawing the same file; occasionally one of them crashes.",
      "Race condition between the image viewer and the property editor. "
      "Race conditions depend on the exact timing of thread scheduling "
      "events, and these are likely to change during retry."));
  s.push_back(mk(
      "gnome-edt-03", "panel",
      "race condition between a request for action from an applet and its "
      "removal",
      Symptom::kCrash, Trigger::kRaceCondition, 7,
      "Remove an applet at the exact moment it requests an action from the "
      "panel; the panel sometimes crashes.",
      "Race condition between the applet's CORBA request and the removal "
      "path; the interleaving is unlikely to recur on retry."));

  // ---- environment-independent: the five described bugs ----
  s.push_back(mk(
      "gnome-ei-01", "panel",
      "clicking on the \"tasklist\" tab in gnome-pager settings kills the pager",
      Symptom::kCrash, Trigger::kUiEventSequence, 1,
      "Open the gnome-pager settings dialog and click on the \"tasklist\" "
      "tab; the pager dies every time.",
      "The tab switch handler dereferences a widget that is only created "
      "when the pager is embedded; deterministic UI event sequence."));
  s.push_back(mk(
      "gnome-ei-02", "gnome-pim",
      "clicking \"prev\" in the \"year\" view of the calendar crashes it",
      Symptom::kCrash, Trigger::kWrongVariableUsage, 2,
      "Open the gnome calendar application, switch to the \"year\" view and "
      "click on the \"prev\" button; it crashes every time.",
      "This was due to assigning a value to a local copy of the variable "
      "instead of the global copy."));
  s.push_back(mk(
      "gnome-ei-03", "gnumeric",
      "gnumeric crashes if a tab is pressed in the \"define name\" dialog",
      Symptom::kCrash, Trigger::kMissingInitialization, 3,
      "Open the \"define name\" dialog or the \"File/Summary\" dialog and "
      "press tab; the spreadsheet crashes.",
      "This was caused by initializing a variable to an incorrect value."));
  s.push_back(mk(
      "gnome-ei-04", "gmc",
      "double-clicking on a \"tar.gz\" desktop icon crashes gmc",
      Symptom::kCrash, Trigger::kWrongVariableUsage, 5,
      "Place a tar.gz file as an icon on the desktop and double-click it; "
      "gmc, the gnome file manager, crashes every time.",
      "This was caused due to the declaration of a variable as \"long\" "
      "instead of \"unsigned long\"."));
  s.push_back(mk(
      "gnome-ei-05", "panel",
      "clicking the desktop to dismiss the main menu freezes the desktop",
      Symptom::kHang, Trigger::kUiEventSequence, 6,
      "After clicking the main button once to pop up the main menu, a click "
      "again on the desktop in order to remove the menu freezes the desktop.",
      "The menu grab is never released on the dismiss path; deterministic "
      "UI event sequence."));

  // ---- reconstructed EI bugs (34) ----
  struct Ei {
    const char* component;
    const char* title;
    Symptom symptom;
    Trigger trigger;
    int bucket;
    const char* htr;
    const char* comment;
  };
  static const Ei kEi[] = {
      // bucket 0 (4)
      {"panel", "panel crashes when drawer applet is added to another drawer",
       Symptom::kCrash, Trigger::kLogicError, 0,
       "Add a drawer applet inside an existing drawer; the panel crashes "
       "immediately, every time.",
       "The drawer re-parenting path assumes the parent is the toplevel "
       "panel; deterministic logic error."},
      {"gnome-pim", "deleting the only appointment of a day crashes gnomecal",
       Symptom::kCrash, Trigger::kBoundaryInput, 0,
       "Create exactly one appointment on a day, then delete it; gnomecal "
       "crashes every time.",
       "The day list becomes empty and the redraw path indexes entry zero; "
       "missing check for the empty boundary condition."},
      {"gnumeric", "pasting into a fully-selected column makes gnumeric abort",
       Symptom::kCrash, Trigger::kBoundaryInput, 0,
       "Select a whole column with the header and paste any cell; gnumeric "
       "aborts with an assertion.",
       "The paste range height of 65536 overflows the region allocator; "
       "boundary condition on the maximum range."},
      {"gmc", "renaming a file to the empty string crashes gmc",
       Symptom::kCrash, Trigger::kBoundaryInput, 0,
       "Select any file, choose rename, clear the name and press enter; gmc "
       "crashes.",
       "The empty name is the untested boundary; missing check before "
       "building the target path."},
      // bucket 1 (4)
      {"panel", "swallowed application with no title crashes the panel",
       Symptom::kCrash, Trigger::kBoundaryInput, 1,
       "Swallow an application whose window has no title; the panel crashes "
       "when building the swallow list.",
       "NULL title pointer used in strcmp; missing check for the boundary "
       "case."},
      {"gnome-libs", "gnome_config_get_string on a key with no '=' dumps core",
       Symptom::kCrash, Trigger::kBoundaryInput, 1,
       "Hand-edit a config file so a line has a key but no equals sign, "
       "then start any GNOME app; it dumps core parsing the file.",
       "Parser splits on '=' and dereferences the missing value half."},
      {"gnumeric", "entering =1/0 in a cell then saving corrupts the sheet",
       Symptom::kErrorReturn, Trigger::kLogicError, 1,
       "Type =1/0 into a cell, save, and reload the sheet; the file no "
       "longer loads.",
       "The div-by-zero error value is serialized with the wrong tag; "
       "deterministic logic error in the writer."},
      {"panel", "sorting the tasklist by title twice crashes the applet",
       Symptom::kCrash, Trigger::kWrongVariableUsage, 1,
       "Click the title column header of the tasklist twice to toggle the "
       "sort; the applet crashes on the second click.",
       "The sort comparator stores the direction into a local copy of the "
       "variable; the reversed compare reads the stale global."},
      // bucket 2 (5)
      {"panel", "logout dialog reappears forever after pressing cancel",
       Symptom::kHang, Trigger::kLogicError, 2,
       "Press logout and then cancel in the confirmation dialog; the dialog "
       "reappears immediately, forever.",
       "The cancel handler re-enters the logout path; state-machine logic "
       "error."},
      {"gnome-pim", "address card with empty name field crashes gnomecard",
       Symptom::kCrash, Trigger::kBoundaryInput, 2,
       "Create an address card and delete the name field, then save; "
       "gnomecard crashes on the next load.",
       "The empty name is written as a NULL entry the loader misses the "
       "check for."},
      {"gnumeric", "autofill of a single cell selection loops forever",
       Symptom::kHang, Trigger::kBoundaryInput, 2,
       "Select exactly one cell and drag the autofill handle onto itself; "
       "gnumeric spins at 100% CPU.",
       "Fill step of zero is the boundary condition the loop never "
       "checked."},
      {"gmc", "FTP view of a directory containing a symlink loop hangs gmc",
       Symptom::kHang, Trigger::kLogicError, 2,
       "Browse an FTP directory that contains a symlink pointing at its own "
       "parent; gmc hangs resolving it, every time.",
       "The VFS path resolver has no cycle guard; deterministic logic "
       "error."},
      {"gnome-libs", "locale with comma decimal separator breaks spin buttons",
       Symptom::kErrorReturn, Trigger::kWrongVariableUsage, 2,
       "Run with LC_NUMERIC=de_DE and open any dialog with a spin button; "
       "typed values are parsed wrong deterministically.",
       "Parsing uses atof on the unlocalized copy of the string; wrong "
       "variable is converted."},
      // bucket 3 (3)
      {"panel", "applet menu with more than 64 entries crashes the panel",
       Symptom::kCrash, Trigger::kBoundaryInput, 3,
       "Add launchers until the applet menu holds more than 64 entries; "
       "opening it crashes the panel.",
       "Fixed-size entry array; buffer overflow at the 64-entry boundary."},
      {"gnumeric", "recalculating a sheet with a cycle of length one aborts",
       Symptom::kCrash, Trigger::kMissingInitialization, 3,
       "Enter =A1 into cell A1; recalculation aborts the application.",
       "The dependency walker's visited flag is used uninitialized for "
       "self-references."},
      {"gmc", "dropping a file onto its own icon deletes the file",
       Symptom::kErrorReturn, Trigger::kLogicError, 3,
       "Drag a file and drop it onto its own icon; the copy-onto-self path "
       "truncates the file to zero bytes.",
       "Source and destination are the same inode; the copy loop truncates "
       "before reading. Deterministic logic error."},
      // bucket 4 (3) -- the dip period
      {"gnome-libs", "session file with CRLF line endings crashes gnome-session",
       Symptom::kCrash, Trigger::kBoundaryInput, 4,
       "Save a session file with DOS line endings (e.g. edited on another "
       "machine) and log in; gnome-session crashes parsing it.",
       "The carriage return survives into the exec vector; missing check "
       "for the CRLF boundary case."},
      {"panel", "removing the last launcher from a drawer crashes the panel",
       Symptom::kCrash, Trigger::kBoundaryInput, 4,
       "Create a drawer with one launcher and remove the launcher; the "
       "panel crashes updating the empty drawer.",
       "Redraw indexes entry zero of the now-empty list; empty-container "
       "boundary condition."},
      {"gnumeric", "printing a sheet wider than the page prints garbage cells",
       Symptom::kErrorReturn, Trigger::kWrongVariableUsage, 4,
       "Print a sheet wider than one page; the second page shows garbage "
       "columns, every time.",
       "Column offset is computed from the screen variable instead of the "
       "print layout variable."},
      // bucket 5 (3)
      {"panel", "clock applet with empty format string crashes the panel",
       Symptom::kCrash, Trigger::kBoundaryInput, 5,
       "Set the clock applet's custom format to the empty string; the next "
       "tick crashes the panel.",
       "strftime with an empty format is the boundary the handler missed "
       "the check for."},
      {"gnome-pim", "recurring appointment ending on Feb 29 crashes gnomecal",
       Symptom::kCrash, Trigger::kLogicError, 5,
       "Create a yearly recurring appointment whose end date is Feb 29; "
       "opening the next year view crashes.",
       "Leap-day normalization produces day zero; deterministic date logic "
       "error."},
      {"gmc", "directory with 50000 entries makes icon view unusable",
       Symptom::kHang, Trigger::kBoundaryInput, 5,
       "Open a directory with fifty thousand files in icon view; gmc "
       "freezes for minutes and then crashes.",
       "Layout is O(n^2) and the position array is a fixed-size buffer; "
       "overflow at the untested boundary."},
      // bucket 6 (5)
      {"panel", "dragging a launcher onto the trash applet crashes both",
       Symptom::kCrash, Trigger::kLogicError, 6,
       "Drag any launcher icon and drop it on the trash applet; both "
       "applets crash, every time.",
       "The drop handler frees the launcher record and then notifies it; "
       "use-after-free from a deterministic logic error."},
      {"gnome-libs", "gnome_help_display with relative path shows empty window",
       Symptom::kErrorReturn, Trigger::kLogicError, 6,
       "Call help on any applet whose help path is relative; an empty "
       "browser window appears deterministically.",
       "URL composition drops the first path segment; deterministic logic "
       "error."},
      {"gnumeric", "undo after deleting a whole sheet crashes gnumeric",
       Symptom::kCrash, Trigger::kMissingInitialization, 6,
       "Delete a sheet from the workbook and press undo; gnumeric crashes "
       "restoring it.",
       "The undo record's sheet pointer field is used before being "
       "initialized for whole-sheet deletions."},
      {"gmc", "properties dialog on a dangling symlink crashes gmc",
       Symptom::kCrash, Trigger::kBoundaryInput, 6,
       "Create a symlink to a nonexistent target and open its properties "
       "dialog; gmc crashes.",
       "stat() failure leaves the info struct empty; missing check before "
       "formatting the size field."},
      {"gnome-pim", "importing a vCalendar with no VERSION line crashes",
       Symptom::kCrash, Trigger::kBoundaryInput, 6,
       "Import a .vcs file whose VERSION property is absent; the importer "
       "crashes every time.",
       "Version string pointer is NULL at the comparison; missing check "
       "for the absent-property boundary case."},
      // bucket 7 (7)
      {"panel", "panel crashes at exactly midnight when the date rolls over",
       Symptom::kCrash, Trigger::kLogicError, 7,
       "Leave the panel running across midnight with the clock applet "
       "showing the date; it crashes at the rollover, reproducibly.",
       "Day-of-month cache is updated after it is used; deterministic "
       "ordering logic error at the date boundary."},
      {"gnumeric", "formula with 255 nested parentheses crashes the parser",
       Symptom::kCrash, Trigger::kBoundaryInput, 7,
       "Enter a formula with 255 nested opening parentheses; the expression "
       "parser crashes.",
       "Recursive descent with no depth guard; stack overflow at the "
       "boundary."},
      {"gmc", "copying a zero-byte file shows a division-by-zero progress bar",
       Symptom::kCrash, Trigger::kBoundaryInput, 7,
       "Copy a zero-byte file between directories; the progress dialog "
       "crashes gmc.",
       "Percentage computed as copied/size zero; empty-file boundary "
       "condition."},
      {"gnome-libs", "double-free when a .desktop file has two Exec lines",
       Symptom::kCrash, Trigger::kApiMisuse, 7,
       "Create a launcher whose .desktop file contains two Exec entries; "
       "launching it crashes with a double free.",
       "The second parse overwrites and frees the first value, then the "
       "destructor frees it again; API misuse of the config layer."},
      {"panel", "keyboard navigation into an empty menu freezes the panel",
       Symptom::kHang, Trigger::kBoundaryInput, 7,
       "Open a menu that contains no entries (empty applications folder) "
       "using the keyboard; the panel freezes.",
       "Wrap-around search for the next item never terminates when the "
       "item list is empty."},
      {"gnome-pim", "todo item with priority 0 crashes the todo list",
       Symptom::kCrash, Trigger::kBoundaryInput, 7,
       "Hand-edit a todo entry to priority 0 (UI offers 1-9) and open the "
       "todo list; it crashes.",
       "Priority indexes a color array with entry zero unused; boundary "
       "condition unchecked."},
      {"gnumeric", "saving to a path with no write permission loses the sheet",
       Symptom::kErrorReturn, Trigger::kMissingInitialization, 7,
       "Save a workbook to a read-only directory; the save fails but the "
       "in-memory workbook is marked clean and closing discards changes.",
       "The dirty flag is reset before the writer reports failure; the "
       "failure path leaves it initialized to the wrong value."},
  };
  int ei_counter = 6;
  for (const auto& e : kEi) {
    const std::string id = "gnome-ei-" + std::string(ei_counter < 10 ? "0" : "") +
                           std::to_string(ei_counter);
    ++ei_counter;
    s.push_back(mk(id, e.component, e.title, e.symptom, e.trigger, e.bucket,
                   e.htr, e.comment));
  }
  return s;
}

}  // namespace faultstudy::corpus
