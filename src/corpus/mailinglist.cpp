#include "corpus/mailinglist.hpp"

#include <unordered_set>

namespace faultstudy::corpus {

std::uint64_t MailingList::add(MailMessage message) {
  if (message.id == 0) message.id = next_id_++;
  else if (message.id >= next_id_) next_id_ = message.id + 1;
  if (message.thread_id == 0) message.thread_id = message.id;
  const std::uint64_t id = message.id;
  messages_.push_back(std::move(message));
  return id;
}

const MailMessage* MailingList::find(std::uint64_t id) const noexcept {
  for (const auto& m : messages_) {
    if (m.id == id) return &m;
  }
  return nullptr;
}

std::vector<const MailMessage*> MailingList::thread(
    std::uint64_t thread_id) const {
  std::vector<const MailMessage*> out;
  for (const auto& m : messages_) {
    if (m.thread_id == thread_id) out.push_back(&m);
  }
  return out;
}

std::vector<MailMessage> MailingList::select(
    const std::function<bool(const MailMessage&)>& pred) const {
  std::vector<MailMessage> out;
  for (const auto& m : messages_) {
    if (pred(m)) out.push_back(m);
  }
  return out;
}

std::size_t MailingList::distinct_faults() const {
  std::unordered_set<std::string> ids;
  for (const auto& m : messages_) {
    if (!m.fault_id.empty()) ids.insert(m.fault_id);
  }
  return ids.size();
}

}  // namespace faultstudy::corpus
