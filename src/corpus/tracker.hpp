// An in-memory bug tracker: the container the mining pipeline reads.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "corpus/report.hpp"

namespace faultstudy::corpus {

class BugTracker {
 public:
  explicit BugTracker(core::AppId app) : app_(app) {}

  core::AppId app() const noexcept { return app_; }

  /// Adds a report; assigns the next id if report.id is zero.
  std::uint64_t add(BugReport report);

  std::span<const BugReport> reports() const noexcept { return reports_; }
  std::size_t size() const noexcept { return reports_.size(); }

  const BugReport* find(std::uint64_t id) const noexcept;

  /// Reports satisfying a predicate (copies, for pipeline-stage handoff).
  std::vector<BugReport> select(
      const std::function<bool(const BugReport&)>& pred) const;

  /// Number of distinct ground-truth fault ids present (test helper).
  std::size_t distinct_faults() const;

 private:
  core::AppId app_;
  std::vector<BugReport> reports_;
  std::uint64_t next_id_ = 1;
};

}  // namespace faultstudy::corpus
