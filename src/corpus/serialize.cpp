#include "corpus/serialize.hpp"

#include <charconv>

#include "util/strings.hpp"

namespace faultstudy::corpus {

namespace {

using util::Err;
using util::Result;

std::string_view track_name(VersionTrack t) {
  switch (t) {
    case VersionTrack::kProduction:
      return "production";
    case VersionTrack::kBeta:
      return "beta";
    case VersionTrack::kDevelopment:
      return "development";
  }
  return "?";
}

Result<VersionTrack> track_from(std::string_view s) {
  if (s == "production") return VersionTrack::kProduction;
  if (s == "beta") return VersionTrack::kBeta;
  if (s == "development") return VersionTrack::kDevelopment;
  return Err{"unknown track: " + std::string(s)};
}

std::string_view kind_name(ReportKind k) {
  switch (k) {
    case ReportKind::kRuntimeFailure:
      return "runtime";
    case ReportKind::kBuildProblem:
      return "build";
    case ReportKind::kInstallProblem:
      return "install";
    case ReportKind::kFeatureRequest:
      return "feature";
    case ReportKind::kDocumentation:
      return "docs";
    case ReportKind::kUsageQuestion:
      return "question";
  }
  return "?";
}

Result<ReportKind> kind_from(std::string_view s) {
  if (s == "runtime") return ReportKind::kRuntimeFailure;
  if (s == "build") return ReportKind::kBuildProblem;
  if (s == "install") return ReportKind::kInstallProblem;
  if (s == "feature") return ReportKind::kFeatureRequest;
  if (s == "docs") return ReportKind::kDocumentation;
  if (s == "question") return ReportKind::kUsageQuestion;
  return Err{"unknown kind: " + std::string(s)};
}

Result<Severity> severity_from(std::string_view s) {
  for (int i = 0; i <= 4; ++i) {
    const auto sev = static_cast<Severity>(i);
    if (s == to_string(sev)) return sev;
  }
  return Err{"unknown severity: " + std::string(s)};
}

Result<core::AppId> app_from(std::string_view s) {
  for (core::AppId app : core::kAllApps) {
    if (s == core::to_string(app)) return app;
  }
  return Err{"unknown app: " + std::string(s)};
}

Result<int> int_from(std::string_view s) {
  int value = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc() || ptr != s.data() + s.size()) {
    return Err{"bad integer: " + std::string(s)};
  }
  return value;
}

/// Body text must not contain a line that parses as a record header.
std::string escape_body(std::string_view body) {
  return util::replace_all(body, "== Bug", "=\\= Bug");
}
std::string unescape_body(std::string_view body) {
  return util::replace_all(body, "=\\= Bug", "== Bug");
}

}  // namespace

std::string tracker_to_text(const BugTracker& tracker) {
  std::string out;
  for (const BugReport& r : tracker.reports()) {
    out += "== Bug " + std::to_string(r.id) + " ==\n";
    out += "App: " + std::string(core::to_string(r.app)) + '\n';
    out += "Component: " + r.component + '\n';
    out += "Version: " + r.version + '\n';
    out += "Track: " + std::string(track_name(r.track)) + '\n';
    out += "Severity: " + std::string(to_string(r.severity)) + '\n';
    out += "Kind: " + std::string(kind_name(r.kind)) + '\n';
    out += "Date: " + std::to_string(r.date.days) + '\n';
    out += "Release-Ordinal: " + std::to_string(r.release_ordinal) + '\n';
    out += "Fixed: " + std::string(r.fixed ? "yes" : "no") + '\n';
    if (!r.fault_id.empty()) out += "X-Truth-Fault: " + r.fault_id + '\n';
    if (r.truth_class.has_value()) {
      out += "X-Truth-Class: " + std::string(core::to_code(*r.truth_class)) + '\n';
    }
    out += "Title: " + r.text.title + '\n';
    out += "How-To-Repeat: " + r.text.how_to_repeat + '\n';
    out += "Comments: " + r.text.developer_comments + '\n';
    out += "Body:\n" + escape_body(r.text.body) + '\n';
  }
  return out;
}

util::Result<BugTracker> tracker_from_text(std::string_view text) {
  std::optional<core::AppId> app;
  std::vector<BugReport> reports;
  BugReport* current = nullptr;
  bool in_body = false;

  for (const auto raw_line : util::split(text, '\n')) {
    std::string_view line = raw_line;
    if (line.starts_with("== Bug ")) {
      in_body = false;
      BugReport r;
      auto header = line.substr(7);
      const auto end = header.find(' ');
      const auto id = int_from(header.substr(0, end));
      if (!id.ok()) return Err{id.error()};
      r.id = static_cast<std::uint64_t>(id.value());
      reports.push_back(std::move(r));
      current = &reports.back();
      continue;
    }
    if (current == nullptr) {
      if (util::trim(line).empty()) continue;
      return Err{std::string("content before first record header")};
    }
    if (in_body) {
      if (!current->text.body.empty()) current->text.body += '\n';
      current->text.body += unescape_body(line);
      continue;
    }
    if (line == "Body:") {
      in_body = true;
      continue;
    }
    const auto colon = line.find(": ");
    if (colon == std::string_view::npos) {
      if (util::trim(line).empty()) continue;
      return Err{"malformed field line: " + std::string(line)};
    }
    const auto key = line.substr(0, colon);
    const auto value = line.substr(colon + 2);

    if (key == "App") {
      auto parsed = app_from(value);
      if (!parsed.ok()) return Err{parsed.error()};
      current->app = parsed.value();
      if (!app.has_value()) app = current->app;
      if (*app != current->app) {
        return Err{std::string("mixed applications in one tracker dump")};
      }
    } else if (key == "Component") {
      current->component = std::string(value);
    } else if (key == "Version") {
      current->version = std::string(value);
    } else if (key == "Track") {
      auto parsed = track_from(value);
      if (!parsed.ok()) return Err{parsed.error()};
      current->track = parsed.value();
    } else if (key == "Severity") {
      auto parsed = severity_from(value);
      if (!parsed.ok()) return Err{parsed.error()};
      current->severity = parsed.value();
    } else if (key == "Kind") {
      auto parsed = kind_from(value);
      if (!parsed.ok()) return Err{parsed.error()};
      current->kind = parsed.value();
    } else if (key == "Date") {
      auto parsed = int_from(value);
      if (!parsed.ok()) return Err{parsed.error()};
      current->date.days = parsed.value();
    } else if (key == "Release-Ordinal") {
      auto parsed = int_from(value);
      if (!parsed.ok()) return Err{parsed.error()};
      current->release_ordinal = parsed.value();
    } else if (key == "Fixed") {
      current->fixed = value == "yes";
    } else if (key == "X-Truth-Fault") {
      current->fault_id = std::string(value);
    } else if (key == "X-Truth-Class") {
      current->truth_class = core::fault_class_from_code(value);
    } else if (key == "Title") {
      current->text.title = std::string(value);
    } else if (key == "How-To-Repeat") {
      current->text.how_to_repeat = std::string(value);
    } else if (key == "Comments") {
      current->text.developer_comments = std::string(value);
    }
    // Unknown keys are skipped (forward compatibility).
  }

  if (!app.has_value()) return Err{std::string("no records found")};
  BugTracker tracker(*app);
  for (auto& r : reports) {
    // Trailing newline artifacts from the final Body block.
    while (!r.text.body.empty() && r.text.body.back() == '\n') {
      r.text.body.pop_back();
    }
    tracker.add(std::move(r));
  }
  return tracker;
}

std::string mailinglist_to_mbox(const MailingList& list) {
  std::string out;
  for (const MailMessage& m : list.messages()) {
    out += "From " + (m.sender.empty() ? std::string("unknown") : m.sender) +
           "\n";
    out += "Message-ID: <" + std::to_string(m.id) + "@list>\n";
    out += "In-Reply-To: <" + std::to_string(m.thread_id) + "@list>\n";
    out += "Date: " + std::to_string(m.date.days) + "\n";
    out += "Subject: " + m.subject + "\n";
    if (!m.fault_id.empty()) out += "X-Truth-Fault: " + m.fault_id + "\n";
    if (m.truth_class.has_value()) {
      out += "X-Truth-Class: " + std::string(core::to_code(*m.truth_class)) + "\n";
    }
    out += "\n";
    // mbox body escaping: "From " at line start becomes ">From ".
    out += util::replace_all("\n" + m.body, "\nFrom ", "\n>From ").substr(1);
    if (!m.body.empty() && m.body.back() != '\n') out += '\n';
    out += '\n';
  }
  return out;
}

util::Result<MailingList> mailinglist_from_mbox(std::string_view text) {
  MailingList list;
  MailMessage current;
  bool have_message = false;
  bool in_body = false;
  std::string body;

  const auto flush = [&]() {
    if (!have_message) return;
    while (!body.empty() && body.back() == '\n') body.pop_back();
    current.body = util::replace_all("\n" + body, "\n>From ", "\nFrom ")
                       .substr(1);
    list.add(current);
    current = MailMessage{};
    body.clear();
    in_body = false;
  };

  for (const auto raw_line : util::split(text, '\n')) {
    std::string_view line = raw_line;
    if (line.starts_with("From ")) {
      // Message separator. Inside bodies "From " is escaped as ">From ",
      // so an unescaped occurrence always starts a new message.
      if (have_message) flush();
      current.sender = std::string(line.substr(5));
      have_message = true;
      continue;
    }
    if (!have_message) {
      if (util::trim(line).empty()) continue;
      return Err{std::string("content before first 'From ' separator")};
    }
    if (in_body) {
      body += std::string(line) + "\n";
      continue;
    }
    if (line.empty()) {
      in_body = true;
      continue;
    }
    const auto colon = line.find(": ");
    if (colon == std::string_view::npos) continue;
    const auto key = line.substr(0, colon);
    auto value = line.substr(colon + 2);
    if (key == "Message-ID" || key == "In-Reply-To") {
      if (value.size() > 2 && value.front() == '<') {
        value = value.substr(1);
        const auto at = value.find('@');
        if (at != std::string_view::npos) value = value.substr(0, at);
      }
      auto parsed = int_from(value);
      if (!parsed.ok()) return Err{parsed.error()};
      if (key == "Message-ID") {
        current.id = static_cast<std::uint64_t>(parsed.value());
      } else {
        current.thread_id = static_cast<std::uint64_t>(parsed.value());
      }
    } else if (key == "Date") {
      auto parsed = int_from(value);
      if (!parsed.ok()) return Err{parsed.error()};
      current.date.days = parsed.value();
    } else if (key == "Subject") {
      current.subject = std::string(value);
    } else if (key == "X-Truth-Fault") {
      current.fault_id = std::string(value);
    } else if (key == "X-Truth-Class") {
      current.truth_class = core::fault_class_from_code(value);
    }
  }
  flush();
  if (list.size() == 0) return Err{std::string("no messages found")};
  return list;
}

}  // namespace faultstudy::corpus
