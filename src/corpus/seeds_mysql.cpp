// MySQL seed faults (Table 3: 38 EI + 4 EDN + 2 EDT = 44).
//
// Buckets 0..5 correspond to releases 3.21.33 .. 3.23.0. Per-bucket totals
// (3,6,8,10,12,5) grow with newer releases, with the last release
// substantially lower "because the release is very new" — the two
// properties Figure 3 exhibits.
//
// This file also defines seed_class/to_fault/all_seeds, shared by all three
// seed sets.
#include "corpus/seeds.hpp"

#include "core/rules.hpp"

namespace faultstudy::corpus {

namespace {
using core::AppId;
using core::Symptom;
using core::Trigger;

SeedFault mk(std::string id, std::string component, std::string title,
             Symptom symptom, Trigger trigger, int bucket, std::string htr,
             std::string comment) {
  SeedFault s;
  s.fault_id = std::move(id);
  s.app = AppId::kMysql;
  s.component = std::move(component);
  s.title = std::move(title);
  s.symptom = symptom;
  s.trigger = trigger;
  s.bucket = bucket;
  s.how_to_repeat = std::move(htr);
  s.developer_comment = std::move(comment);
  return s;
}
}  // namespace

const std::vector<std::string>& mysql_releases() {
  static const std::vector<std::string> kReleases = {
      "3.21.33", "3.22.20", "3.22.25", "3.22.29", "3.22.32", "3.23.0"};
  return kReleases;
}

std::vector<SeedFault> mysql_seeds() {
  std::vector<SeedFault> s;
  s.reserve(44);

  // ---- environment-dependent-nontransient (4, from Section 5.3) ----
  s.push_back(mk(
      "mysql-edn-01", "server",
      "server fails: shortage of file descriptors due to competition with "
      "a web server",
      Symptom::kErrorReturn, Trigger::kFdExhaustion, 1,
      "Run mysqld on the same machine as a busy web server; under load the "
      "server reports it is out of file descriptors and refuses new tables.",
      "Shortage of file descriptors due to competition between MySQL and a "
      "web server; the competing process still holds them after recovery."));
  s.push_back(mk(
      "mysql-edn-02", "server",
      "server crashes on connection from a host with no reverse DNS",
      Symptom::kCrash, Trigger::kReverseDnsMissing, 2,
      "Connect from a remote machine for which reverse DNS is not "
      "configured; the server crashes when it receives the connection "
      "request.",
      "Reverse DNS remains unconfigured on retry, so the crash recurs on "
      "the next connection from that host."));
  s.push_back(mk(
      "mysql-edn-03", "isam",
      "table dies once the database file exceeds the maximum file size",
      Symptom::kErrorReturn, Trigger::kFileSizeLimit, 3,
      "Insert rows until the size of the database file is greater than the "
      "maximum allowed file size; every further insert fails.",
      "The oversized data file persists across recovery; the OS file size "
      "limit is an environmental condition that does not change on retry."));
  s.push_back(mk(
      "mysql-edn-04", "server",
      "full file system prevents all operations on the database",
      Symptom::kErrorReturn, Trigger::kFullFileSystem, 4,
      "Fill the file system holding the data directory; all operations on "
      "the database fail until space is freed by hand.",
      "Full file system; nothing in generic recovery frees disk space."));

  // ---- environment-dependent-transient (2, from Section 5.3) ----
  s.push_back(mk(
      "mysql-edt-01", "server",
      "race condition between the masking of a signal and its arrival",
      Symptom::kCrash, Trigger::kRaceCondition, 4,
      "Under load the server occasionally dies when a signal arrives in the "
      "window before it is masked; cannot reproduce reliably.",
      "Race condition between the masking of a signal and its arrival. Race "
      "conditions depend on the exact timing of thread scheduling events, "
      "and these are likely to change during retry."));
  s.push_back(mk(
      "mysql-edt-02", "server",
      "race condition between a new user login and commands issued by the "
      "administrator",
      Symptom::kCrash, Trigger::kRaceCondition, 5,
      "Issue administrative commands (FLUSH PRIVILEGES) at the moment a new "
      "user logs in; the server sometimes crashes.",
      "Race condition between a new user login and commands issued by the "
      "administrator; the interleaving is unlikely to recur on retry."));

  // ---- environment-independent: the five described bugs ----
  s.push_back(mk(
      "mysql-ei-01", "isam",
      "UPDATE of an index to a value found later in the scan crashes the "
      "server",
      Symptom::kCrash, Trigger::kLogicError, 1,
      "Run an UPDATE that sets an indexed column to a value that will be "
      "found later while scanning the index tree, creating duplicate values "
      "in the index; the server crashes.",
      "Solved by first scanning for all matching rows and then updating the "
      "found rows."));
  s.push_back(mk(
      "mysql-ei-02", "optimizer",
      "query selecting zero records with an ORDER BY clause crashes",
      Symptom::kCrash, Trigger::kMissingInitialization, 2,
      "Run a query which selects zero records and has an \"order by\" "
      "clause; the server crashes every time.",
      "This was due to some missing initialization statements in the sort "
      "path."));
  s.push_back(mk(
      "mysql-ei-03", "parser",
      "COUNT on an empty table crashes MySQL",
      Symptom::kCrash, Trigger::kBoundaryInput, 3,
      "Use a \"count\" clause on an empty table; MySQL crashes.",
      "Caused due to missing check for empty tables."));
  s.push_back(mk(
      "mysql-ei-04", "server",
      "an OPTIMIZE TABLE query crashes the server",
      Symptom::kCrash, Trigger::kMissingInitialization, 4,
      "Run \"OPTIMIZE TABLE t\" on any table; the server crashes.",
      "This was caused by a missing initialization statement."));
  s.push_back(mk(
      "mysql-ei-05", "server",
      "FLUSH TABLES after LOCK TABLES crashes the server",
      Symptom::kCrash, Trigger::kLogicError, 3,
      "Issue a \"FLUSH TABLES\" command after a \"LOCK TABLES\" command; "
      "the server crashes.",
      "The flush path re-acquires table locks the session already holds; "
      "deterministic lock state-machine error."));

  // ---- reconstructed EI bugs (33) ----
  struct Ei {
    const char* component;
    const char* title;
    Symptom symptom;
    Trigger trigger;
    int bucket;
    const char* htr;
    const char* comment;
  };
  static const Ei kEi[] = {
      // bucket 0 (3)
      {"parser", "SELECT with 256 columns in the column list crashes",
       Symptom::kCrash, Trigger::kBoundaryInput, 0,
       "Run a SELECT naming 256 columns; the server crashes parsing the "
       "list.",
       "Fixed-size item array in the parser; buffer overflow at the 256 "
       "boundary."},
      {"isam", "DELETE of the last row of a table corrupts the index",
       Symptom::kErrorReturn, Trigger::kBoundaryInput, 0,
       "Create a one-row table and DELETE the row; the next SELECT reports "
       "index corruption, every time.",
       "Root-page collapse misses the check for the now-empty tree; "
       "empty-table boundary condition."},
      {"client", "mysql client segfaults on a prompt longer than 80 chars",
       Symptom::kCrash, Trigger::kBoundaryInput, 0,
       "Set a very long prompt string; the client segfaults on startup.",
       "Fixed 80-byte buffer; overflow on the long prompt string."},
      // bucket 1 (4)
      {"parser", "nested SELECT in INSERT is parsed but corrupts the table",
       Symptom::kErrorReturn, Trigger::kLogicError, 1,
       "Run INSERT ... SELECT where the SELECT reads the same table being "
       "inserted into; the table ends up corrupted deterministically.",
       "Reader and writer share the scan cursor; deterministic logic error "
       "(later releases forbid the statement)."},
      {"server", "GRANT with a host pattern of '%' and empty user crashes",
       Symptom::kCrash, Trigger::kBoundaryInput, 1,
       "Run GRANT ... TO ''@'%'; the server crashes rebuilding the "
       "privilege cache.",
       "Empty user name is the untested boundary in the ACL sort."},
      {"isam", "CREATE TABLE with a key longer than 120 bytes crashes",
       Symptom::kCrash, Trigger::kBoundaryInput, 1,
       "Create a table with an index whose key length exceeds 120 bytes; "
       "the server crashes instead of reporting an error.",
       "Key buffer is fixed-size; overflow past the 120-byte boundary."},
      {"server", "SHOW PROCESSLIST while a thread exits shows freed memory",
       Symptom::kErrorReturn, Trigger::kLogicError, 1,
       "Run SHOW PROCESSLIST repeatedly while clients disconnect; entries "
       "show garbage text deterministically when a slot is reused.",
       "The list walk copies the command string after the slot is freed; "
       "ordering logic error (not timing dependent: the walk always reads "
       "the freed slot)."},
      // bucket 2 (6)
      {"optimizer", "LEFT JOIN with an always-false ON clause returns wrong rows",
       Symptom::kErrorReturn, Trigger::kLogicError, 2,
       "Run a LEFT JOIN whose ON clause is a constant false; rows from the "
       "right table appear anyway, every time.",
       "Constant-folding marks the join as cross; deterministic optimizer "
       "logic error."},
      {"parser", "string literal ending in backslash crashes the lexer",
       Symptom::kCrash, Trigger::kBoundaryInput, 2,
       "Send a query whose last character is a backslash inside a string "
       "literal; the lexer reads past the buffer and crashes.",
       "Escape scan misses the end-of-buffer check; boundary condition."},
      {"server", "TIMESTAMP column with value '0000-00-00' crashes UPDATE",
       Symptom::kCrash, Trigger::kMissingInitialization, 2,
       "UPDATE a row whose TIMESTAMP column holds the zero date; the "
       "conversion crashes the thread.",
       "The broken-down time structure is used uninitialized for the zero "
       "date."},
      {"isam", "table name of exactly 64 characters fails to open",
       Symptom::kErrorReturn, Trigger::kBoundaryInput, 2,
       "CREATE a table whose name is exactly 64 characters; the table can "
       "be created but never opened.",
       "Off-by-one between the create path (65-byte buffer) and the open "
       "path (64); boundary condition."},
      {"client", "mysqldump of a table with a blob containing NUL truncates",
       Symptom::kErrorReturn, Trigger::kWrongVariableUsage, 2,
       "Dump a table whose blob column contains a NUL byte; the dump file "
       "is truncated at the NUL, every time.",
       "Length is taken from strlen on the blob instead of the length "
       "variable; wrong variable used."},
      {"server", "HAVING that references a column alias twice crashes",
       Symptom::kCrash, Trigger::kMissingInitialization, 2,
       "SELECT a+1 AS x ... HAVING x > 0 AND x < 10; the second reference "
       "crashes the server.",
       "The alias resolution cache entry is used before being initialized "
       "on the second lookup."},
      // bucket 3 (7)
      {"optimizer", "DISTINCT with more than 32 columns returns duplicates",
       Symptom::kErrorReturn, Trigger::kBoundaryInput, 3,
       "SELECT DISTINCT over 33 columns; duplicate rows are returned "
       "deterministically.",
       "Distinct bitmap is a 32-bit word; columns past the boundary are "
       "ignored."},
      {"server", "LOAD DATA INFILE with an empty lines-terminated-by crashes",
       Symptom::kCrash, Trigger::kBoundaryInput, 3,
       "Run LOAD DATA INFILE ... LINES TERMINATED BY ''; the server "
       "crashes reading the first line.",
       "Zero-length terminator makes the scan loop read past the buffer; "
       "boundary condition."},
      {"isam", "UPDATE of a key column inside ORDER BY LIMIT skips rows",
       Symptom::kErrorReturn, Trigger::kLogicError, 3,
       "UPDATE ... ORDER BY key LIMIT n where the update modifies the key; "
       "some qualifying rows are skipped, every time.",
       "The scan resumes from the moved key position; deterministic logic "
       "error."},
      {"server", "SET SQL_LOG_OFF=1 by a user without privilege crashes",
       Symptom::kCrash, Trigger::kMissingInitialization, 3,
       "As an unprivileged user run SET SQL_LOG_OFF=1; the privilege-check "
       "error path crashes the thread.",
       "The error message formats a user structure that is only initialized "
       "for privileged sessions."},
      {"client", "mysqladmin shutdown while a query runs corrupts the pid file",
       Symptom::kErrorReturn, Trigger::kLogicError, 3,
       "Run mysqladmin shutdown while a long query is executing; the pid "
       "file is rewritten with a partial number, deterministically.",
       "Shutdown path writes the pid file twice from two code paths; "
       "second write truncates mid-number. Logic error in shutdown "
       "sequencing."},
      {"parser", "comment /* inside a string literal swallows the query",
       Symptom::kErrorReturn, Trigger::kLogicError, 3,
       "Send SELECT '/*' , 1; the rest of the query is treated as a "
       "comment and the statement misparses, every time.",
       "The comment scanner does not honor string-literal state; "
       "deterministic lexer logic error."},
      {"server", "ALTER TABLE on a table with no columns left crashes",
       Symptom::kCrash, Trigger::kBoundaryInput, 3,
       "ALTER TABLE DROP the last remaining column; the server crashes "
       "rebuilding the empty table definition.",
       "Zero-column definition is the untested boundary in the .frm "
       "writer."},
      // bucket 4 (9)
      {"server", "SELECT INTO OUTFILE to an existing file crashes instead of erroring",
       Symptom::kCrash, Trigger::kMissingInitialization, 4,
       "Run SELECT ... INTO OUTFILE naming an existing file; the server "
       "crashes in the error path.",
       "The error branch uses the file handle that was never initialized "
       "because open() failed."},
      {"optimizer", "range query on a DESC index returns rows in wrong order",
       Symptom::kErrorReturn, Trigger::kLogicError, 4,
       "Run a BETWEEN range query on a descending-sorted key; rows come "
       "back unordered although ORDER BY was given. Deterministic.",
       "The optimizer marks the range scan as already sorted for the wrong "
       "direction; logic error."},
      {"isam", "REPAIR TABLE on a table with a fulltext key loses rows",
       Symptom::kErrorReturn, Trigger::kLogicError, 4,
       "Run REPAIR TABLE on a table that has a fulltext index; rows with "
       "long words disappear, every time.",
       "Rebuild truncates words at the buffer width and drops their rows; "
       "deterministic logic error."},
      {"server", "wildcard GRANT on a database named with '_' matches too much",
       Symptom::kSecurity, Trigger::kLogicError, 4,
       "GRANT on database a_b; users gain access to database axb as well — "
       "a security problem, deterministic.",
       "The underscore is treated as the LIKE wildcard in the ACL match; "
       "logic error with security impact."},
      {"parser", "IN list with 10000 constants crashes the server",
       Symptom::kCrash, Trigger::kBoundaryInput, 4,
       "Run a SELECT with an IN (...) list of ten thousand constants; the "
       "server crashes parsing it.",
       "Recursive tree build; stack overflow at the untested boundary."},
      {"server", "temporary table name colliding after 32 chars breaks joins",
       Symptom::kErrorReturn, Trigger::kBoundaryInput, 4,
       "Create two temporary tables whose names share the first 32 "
       "characters; joins read the wrong table deterministically.",
       "Internal name buffer truncates at 32; boundary condition."},
      {"client", "mysqlimport with --fields-terminated-by=\\t\\t loses columns",
       Symptom::kErrorReturn, Trigger::kLogicError, 4,
       "Import with a two-character field terminator; every second column "
       "lands in the wrong field, deterministically.",
       "The splitter advances by one byte per terminator regardless of its "
       "length; logic error."},
      {"server", "KILL of a thread waiting on a table lock corrupts the wait queue",
       Symptom::kCrash, Trigger::kLogicError, 4,
       "KILL a connection that is waiting for a table lock; the next lock "
       "release crashes the server, every time.",
       "The killed waiter is freed but not unlinked from the queue; "
       "deterministic use-after-free (the queue is always walked in "
       "order)."},
      {"isam", "AUTO_INCREMENT wraps to zero after reaching the type maximum",
       Symptom::kErrorReturn, Trigger::kWrongVariableUsage, 4,
       "Insert until the AUTO_INCREMENT column reaches its type maximum; "
       "the next insert gets id zero and violates the key, every time.",
       "Counter kept in a variable declared as \"long\" instead of "
       "\"unsigned long\"; wraps negative and is clamped to zero."},
      // bucket 5 (4)
      {"server", "CHECK TABLE on a merged table crashes the new release",
       Symptom::kCrash, Trigger::kMissingInitialization, 5,
       "Run CHECK TABLE on a MERGE table in 3.23.0; the server crashes.",
       "The checker uses the child-table array before the merge open path "
       "initializes it."},
      {"parser", "new BINARY keyword breaks columns actually named binary",
       Symptom::kErrorReturn, Trigger::kLogicError, 5,
       "Upgrade a schema that has a column named \"binary\" to 3.23.0; "
       "every query on it misparses.",
       "The new keyword is not allowed as an identifier; deterministic "
       "parser regression."},
      {"server", "replication slave crashes on a zero-length binlog event",
       Symptom::kCrash, Trigger::kBoundaryInput, 5,
       "Point a 3.23 slave at a master whose binlog contains a zero-length "
       "event (rotate at exact buffer boundary); the slave crashes.",
       "Event reader subtracts the header size from a zero length; "
       "boundary condition in the new replication code."},
      {"optimizer", "query cache returns stale rows after DELETE in 3.23",
       Symptom::kErrorReturn, Trigger::kLogicError, 5,
       "SELECT, DELETE the rows, SELECT again; the second SELECT returns "
       "the deleted rows, every time.",
       "Invalidation key is computed from the unqualified table name; "
       "deterministic logic error."},
  };
  int ei_counter = 6;
  for (const auto& e : kEi) {
    const std::string id = "mysql-ei-" + std::string(ei_counter < 10 ? "0" : "") +
                           std::to_string(ei_counter);
    ++ei_counter;
    s.push_back(mk(id, e.component, e.title, e.symptom, e.trigger, e.bucket,
                   e.htr, e.comment));
  }
  return s;
}

core::FaultClass seed_class(const SeedFault& seed) {
  return core::fault_class_of(seed.trigger);
}

core::Fault to_fault(const SeedFault& seed) {
  core::Fault f;
  f.id = seed.fault_id;
  f.app = seed.app;
  f.title = seed.title;
  f.symptom = seed.symptom;
  f.trigger = seed.trigger;
  f.fault_class = seed_class(seed);
  f.bucket = seed.bucket;
  return f;
}

std::vector<core::Fault> to_faults(const std::vector<SeedFault>& seeds) {
  std::vector<core::Fault> out;
  out.reserve(seeds.size());
  for (const auto& s : seeds) out.push_back(to_fault(s));
  return out;
}

std::vector<SeedFault> all_seeds() {
  std::vector<SeedFault> out = apache_seeds();
  auto g = gnome_seeds();
  auto m = mysql_seeds();
  out.insert(out.end(), std::make_move_iterator(g.begin()),
             std::make_move_iterator(g.end()));
  out.insert(out.end(), std::make_move_iterator(m.begin()),
             std::make_move_iterator(m.end()));
  return out;
}

}  // namespace faultstudy::corpus
