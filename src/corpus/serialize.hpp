// Corpus serialization: a bugzilla-style record format for trackers and an
// mbox-style format for mailing lists.
//
// The 1999 sources were on-disk archives; this module gives the library the
// same ingestion path. Both formats are plain text, diffable, and
// round-trip every field the pipeline consumes. Ground-truth fields are
// serialized too (prefixed X-Truth-) so planted corpora can be shipped as
// files and still drive end-to-end evaluation.
//
// Tracker record format (one report):
//
//   == Bug 1234 ==
//   App: Apache
//   Component: core
//   Version: 1.3.0
//   Track: production
//   Severity: critical
//   Kind: runtime
//   Date: 512
//   Release-Ordinal: 2
//   Fixed: yes
//   X-Truth-Fault: apache-ei-01
//   X-Truth-Class: EI
//   Title: dies with a segfault ...
//   How-To-Repeat: Submit a very long URL ...
//   Comments: This problem was a result of ...
//   Body:
//   free text until the next '== Bug' header
//
// Multiline Body is terminated by the next record header or EOF. The mbox
// format follows the classic "From " separator convention with normal
// headers (Subject, Date, Message-ID, In-Reply-To carrying the thread id).
#pragma once

#include <string>
#include <string_view>

#include "corpus/mailinglist.hpp"
#include "corpus/tracker.hpp"
#include "util/result.hpp"

namespace faultstudy::corpus {

/// Serializes a whole tracker.
std::string tracker_to_text(const BugTracker& tracker);

/// Parses a tracker dump. The application is taken from the records (all
/// records must agree).
util::Result<BugTracker> tracker_from_text(std::string_view text);

/// Serializes a mailing list as mbox.
std::string mailinglist_to_mbox(const MailingList& list);

/// Parses an mbox dump.
util::Result<MailingList> mailinglist_from_mbox(std::string_view text);

}  // namespace faultstudy::corpus
