// Curated seed faults: the study's ground-truth dataset.
//
// Every environment-dependent fault in Sections 5.1-5.3 of the paper is
// transcribed here verbatim (26 faults), together with the representative
// environment-independent bugs the paper describes. The remaining
// environment-independent seeds — the paper reports their *counts* (36/39/38)
// but does not describe each — are reconstructed as realistic bugs of the
// same applications using the paper's EI mechanism vocabulary (boundary
// conditions, missing initialization, wrong variable usage, API misuse,
// deterministic leaks, signal-handling and logic errors). DESIGN.md records
// this substitution.
//
// Invariants (enforced by tests):
//   apache_seeds(): 50 faults = 36 EI + 7 EDN + 7 EDT   (Table 1)
//   gnome_seeds():  45 faults = 39 EI + 3 EDN + 3 EDT   (Table 2)
//   mysql_seeds():  44 faults = 38 EI + 4 EDN + 2 EDT   (Table 3)
// and per-bucket totals follow the shape properties of Figures 1-3.
#pragma once

#include <string>
#include <vector>

#include "core/taxonomy.hpp"

namespace faultstudy::corpus {

/// One unique fault, as the study would record it after reading all of its
/// reports. `bucket` is the release ordinal (Apache, MySQL) or time bucket
/// (GNOME) used by the figures.
struct SeedFault {
  std::string fault_id;
  core::AppId app = core::AppId::kApache;
  std::string component;
  std::string title;
  core::Symptom symptom = core::Symptom::kCrash;
  core::Trigger trigger = core::Trigger::kBoundaryInput;
  int bucket = 0;
  /// The "How To Repeat" field of the primary report.
  std::string how_to_repeat;
  /// The developers' diagnosis, as recorded in the report or CVS log.
  std::string developer_comment;
};

/// Fault class implied by the seed's trigger under the paper's rules.
core::FaultClass seed_class(const SeedFault& seed);

std::vector<SeedFault> apache_seeds();
std::vector<SeedFault> gnome_seeds();
std::vector<SeedFault> mysql_seeds();

/// All 139 seeds in app order (Apache, GNOME, MySQL).
std::vector<SeedFault> all_seeds();

/// Release version string per bucket ordinal.
const std::vector<std::string>& apache_releases();
const std::vector<std::string>& mysql_releases();
/// GNOME figures bucket by time; labels are month strings.
const std::vector<std::string>& gnome_periods();

/// Converts a seed to the core Fault record used by aggregation.
core::Fault to_fault(const SeedFault& seed);
std::vector<core::Fault> to_faults(const std::vector<SeedFault>& seeds);

}  // namespace faultstudy::corpus
