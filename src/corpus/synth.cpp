#include "corpus/synth.hpp"

#include <algorithm>
#include <array>
#include <string>

#include "util/rng.hpp"

namespace faultstudy::corpus {

namespace {

using util::Rng;

// ---------------------------------------------------------------------------
// Shared text banks
// ---------------------------------------------------------------------------

constexpr std::string_view kDupOpeners[] = {
    "I am seeing the same problem. ",
    "Me too. ",
    "Confirming this on my machine as well. ",
    "We hit this in production yesterday. ",
    "Same here after upgrading. ",
    "This also happens for me. ",
};

constexpr std::string_view kDupClosers[] = {
    " Any workaround would be appreciated.",
    " Please let me know if you need more information.",
    " Happy to test a patch.",
    " This is blocking our deployment.",
    " Attached is the backtrace.",
    "",
};

constexpr std::string_view kDupTitlePrefixes[] = {
    "", "", "Re: ", "Same as: ", "Another report: ", "[dup?] ",
};

// Noise-report subject material that does NOT collide with the cue lexicon
// or the study keywords.
constexpr std::string_view kNoiseTopics[] = {
    "configure script fails on AIX",
    "make fails with undefined reference",
    "installation directory layout question",
    "documentation for module options is unclear",
    "feature request: please add an option to colorize output",
    "typo in the manual page",
    "how do I set up virtual hosts",
    "performance tuning advice wanted",
    "license question about bundled libraries",
    "wishlist: nicer default theme",
    "build warning with gcc on alpha",
    "request: debian packaging improvements",
    "cannot find header file during compilation",
    "question about upgrade procedure",
    "translation update for the locale files",
};

constexpr std::string_view kNoiseBodies[] = {
    "The configure step stops half way through. I am probably missing a "
    "development package, suggestions welcome.",
    "This is not a failure of the running program, just something I noticed "
    "while reading the documentation.",
    "It would be nice if a future version offered this. Not urgent.",
    "I am new to this software and could not find the answer in the FAQ.",
    "The build completes with warnings on my platform; everything seems to "
    "work afterwards.",
    "Asking here before filing anything serious: is this intended behavior?",
    "The manual page and the online docs disagree about the default value.",
};

// Keyword-bearing chatter for the mailing list: contains a study keyword in
// a context that is NOT a usable bug report (no How-To-Repeat section).
constexpr std::string_view kKeywordChatter[] = {
    "Don't worry, changing this setting will not crash your server. It only "
    "affects the buffer sizes.",
    "My old disk died last week, so I am restoring from backups. Nothing "
    "wrong with the database software itself.",
    "The benchmark race between the two storage engines was fun to read "
    "about in the newsletter.",
    "After the power failure the machine rebooted fine; no crash in the "
    "logs, just asking how to verify table integrity.",
    "The segmentation of the market into hosting providers and in-house "
    "shops is discussed in this month's trade article.",
    "If your client crashed because of the firewall timeout, that is not a "
    "server problem; increase the keepalive.",
};

constexpr std::string_view kSenders[] = {
    "alice@example.net",  "bob@hosting.example", "carol@isp.example",
    "dave@lab.example",   "erin@corp.example",   "frank@edu.example",
    "grace@web.example",  "heidi@dev.example",
};

std::string pick_sv(Rng& rng, std::span<const std::string_view> bank) {
  return std::string(bank[static_cast<std::size_t>(rng.below(bank.size()))]);
}

/// Paraphrases a seed's text for a duplicate report: opener + the seed's
/// how-to-repeat (the durable part users copy into reports) + closer.
std::string duplicate_body(Rng& rng, const SeedFault& seed) {
  std::string body = pick_sv(rng, kDupOpeners);
  body += seed.how_to_repeat;
  body += pick_sv(rng, kDupClosers);
  return body;
}

std::string duplicate_title(Rng& rng, const SeedFault& seed) {
  return pick_sv(rng, kDupTitlePrefixes) + seed.title;
}

Severity severe_or_critical(Rng& rng) {
  return rng.chance(0.4) ? Severity::kCritical : Severity::kSevere;
}

Severity below_severe(Rng& rng) {
  static constexpr Severity kLow[] = {Severity::kWishlist, Severity::kMinor,
                                      Severity::kNormal};
  return kLow[static_cast<std::size_t>(rng.below(3))];
}

// ---------------------------------------------------------------------------
// Tracker generation (Apache, GNOME)
// ---------------------------------------------------------------------------

struct TrackerShape {
  core::AppId app;
  const std::vector<std::string>* releases;  ///< null => GNOME time buckets
  std::size_t total_reports;
};

Date date_for_bucket(Rng& rng, const TrackerShape& shape, int bucket) {
  if (shape.releases != nullptr) {
    // Release r ships at day r*90; reports against it arrive over the next
    // ~90 days.
    return Date{bucket * 90 + static_cast<int>(rng.below(90))};
  }
  return gnome_date_in_bucket(bucket, static_cast<int>(rng.below(61)));
}

std::string version_for_bucket(const TrackerShape& shape, int bucket) {
  if (shape.releases != nullptr) return (*shape.releases)[static_cast<std::size_t>(bucket)];
  // GNOME modules release independently; version strings are per-component
  // and do not drive bucketing (dates do).
  return "1." + std::to_string(bucket) + ".0";
}

BugReport seed_primary(Rng& rng, const TrackerShape& shape,
                       const SeedFault& seed) {
  BugReport r;
  r.app = shape.app;
  r.component = seed.component;
  r.release_ordinal = seed.bucket;
  r.version = version_for_bucket(shape, seed.bucket);
  r.track = VersionTrack::kProduction;
  r.severity = severe_or_critical(rng);
  r.kind = ReportKind::kRuntimeFailure;
  r.date = date_for_bucket(rng, shape, seed.bucket);
  r.text.title = seed.title;
  r.text.body = "Observed on a production machine. " + seed.how_to_repeat;
  r.text.how_to_repeat = seed.how_to_repeat;
  r.text.developer_comments = seed.developer_comment;
  r.fixed = true;
  r.fix_note = seed.developer_comment;
  r.fault_id = seed.fault_id;
  r.truth_trigger = seed.trigger;
  r.truth_class = seed_class(seed);
  return r;
}

BugReport seed_duplicate(Rng& rng, const TrackerShape& shape,
                         const SeedFault& seed) {
  BugReport r;
  r.app = shape.app;
  r.component = seed.component;
  r.release_ordinal = seed.bucket;
  r.version = version_for_bucket(shape, seed.bucket);
  r.track = VersionTrack::kProduction;
  r.severity = severe_or_critical(rng);
  r.kind = ReportKind::kRuntimeFailure;
  r.date = date_for_bucket(rng, shape, seed.bucket);
  r.text.title = duplicate_title(rng, seed);
  r.text.body = duplicate_body(rng, seed);
  // Duplicate reporters usually restate how to repeat; some leave it empty.
  if (rng.chance(0.7)) r.text.how_to_repeat = seed.how_to_repeat;
  // Developers close duplicates with a pointer, not a fresh diagnosis.
  r.text.developer_comments = "Duplicate of an existing report.";
  r.fixed = true;
  r.fault_id = seed.fault_id;
  r.truth_trigger = seed.trigger;
  r.truth_class = seed_class(seed);
  return r;
}

BugReport noise_report(Rng& rng, const TrackerShape& shape, int num_buckets) {
  BugReport r;
  r.app = shape.app;
  r.component = "misc";
  const int bucket = static_cast<int>(rng.below(static_cast<std::uint64_t>(num_buckets)));
  r.release_ordinal = bucket;
  r.date = date_for_bucket(rng, shape, bucket);
  r.text.title = pick_sv(rng, kNoiseTopics);
  r.text.body = pick_sv(rng, kNoiseBodies);

  // Constrain the metadata so the paper's selection criteria reject the
  // report: wrong kind, low severity, or non-production version.
  switch (rng.below(3)) {
    case 0:
      r.kind = static_cast<ReportKind>(1 + rng.below(5));  // non-runtime
      r.severity = severe_or_critical(rng);
      r.track = VersionTrack::kProduction;
      break;
    case 1:
      r.kind = ReportKind::kRuntimeFailure;
      r.severity = below_severe(rng);
      r.track = VersionTrack::kProduction;
      break;
    default:
      r.kind = ReportKind::kRuntimeFailure;
      r.severity = severe_or_critical(rng);
      r.track = rng.chance(0.5) ? VersionTrack::kBeta
                                : VersionTrack::kDevelopment;
      r.version = version_for_bucket(shape, bucket) + "-dev";
      break;
  }
  if (r.version.empty()) r.version = version_for_bucket(shape, bucket);
  return r;
}

BugTracker make_tracker(const TrackerShape& shape,
                        const std::vector<SeedFault>& seeds,
                        const SynthConfig& config, std::uint64_t stream) {
  Rng rng(config.seed ^ stream);
  BugTracker tracker(shape.app);

  int num_buckets = 0;
  for (const auto& s : seeds) num_buckets = std::max(num_buckets, s.bucket + 1);

  std::size_t produced = 0;
  for (const auto& seed : seeds) {
    tracker.add(seed_primary(rng, shape, seed));
    ++produced;
    const int dups = rng.poisson(config.mean_duplicates);
    for (int d = 0; d < dups && produced < shape.total_reports; ++d) {
      tracker.add(seed_duplicate(rng, shape, seed));
      ++produced;
    }
  }
  while (produced < shape.total_reports) {
    tracker.add(noise_report(rng, shape, num_buckets));
    ++produced;
  }
  return tracker;
}

// ---------------------------------------------------------------------------
// Mailing-list generation (MySQL)
// ---------------------------------------------------------------------------

/// Keyword the reporter naturally uses for a symptom ("crash",
/// "segmentation", "race", "died" — the paper's search set).
std::string_view keyword_for(const SeedFault& seed) {
  if (seed.trigger == core::Trigger::kRaceCondition) return "race";
  switch (seed.symptom) {
    case core::Symptom::kCrash:
      return "crash";
    case core::Symptom::kHang:
      return "died";
    default:
      return "crash";
  }
}

MailMessage seed_root_message(Rng& rng, const SeedFault& seed,
                              const std::vector<std::string>& releases) {
  MailMessage m;
  m.date = Date{seed.bucket * 90 + static_cast<int>(rng.below(90))};
  m.subject = seed.title;
  m.sender = pick_sv(rng, kSenders);
  m.body = "Description: " + seed.title + " (" +
           std::string(keyword_for(seed)) + " observed).\n" +
           "How-To-Repeat: " + seed.how_to_repeat + "\n" +
           "Version: " + releases[static_cast<std::size_t>(seed.bucket)] + "\n";
  m.fault_id = seed.fault_id;
  m.truth_trigger = seed.trigger;
  m.truth_class = seed_class(seed);
  return m;
}

MailMessage seed_reply(Rng& rng, const SeedFault& seed, std::uint64_t thread,
                       bool developer) {
  MailMessage m;
  m.thread_id = thread;
  m.date = Date{seed.bucket * 90 + static_cast<int>(rng.below(90))};
  m.subject = "Re: " + seed.title;
  m.sender = developer ? "monty@mysql.example" : pick_sv(rng, kSenders);
  m.body = developer ? seed.developer_comment : duplicate_body(rng, seed);
  m.fault_id = seed.fault_id;
  m.truth_trigger = seed.trigger;
  m.truth_class = seed_class(seed);
  return m;
}

MailMessage chatter_message(Rng& rng, bool with_keyword) {
  MailMessage m;
  m.date = Date{static_cast<int>(rng.below(540))};
  m.sender = pick_sv(rng, kSenders);
  if (with_keyword) {
    m.subject = "question from the list";
    m.body = pick_sv(rng, kKeywordChatter);
  } else {
    m.subject = pick_sv(rng, kNoiseTopics);
    m.body = pick_sv(rng, kNoiseBodies);
  }
  return m;
}

}  // namespace

int gnome_bucket_of_date(Date date) noexcept {
  // GNOME's study window starts 1998-09 (day 243); two-month buckets.
  return (date.days - 243) / 61;
}

Date gnome_date_in_bucket(int bucket, int offset_days) noexcept {
  return Date{243 + bucket * 61 + offset_days};
}

BugTracker make_apache_tracker(const SynthConfig& config) {
  return make_tracker({core::AppId::kApache, &apache_releases(),
                       config.apache_total},
                      apache_seeds(), config, 0xA9AC4Eull);
}

BugTracker make_gnome_tracker(const SynthConfig& config) {
  return make_tracker({core::AppId::kGnome, nullptr, config.gnome_total},
                      gnome_seeds(), config, 0x6E03Eull);
}

MailingList make_mysql_list(const SynthConfig& config) {
  Rng rng(config.seed ^ 0x3A15Full);
  MailingList list;
  const auto seeds = mysql_seeds();
  std::size_t produced = 0;

  for (const auto& seed : seeds) {
    const std::uint64_t root = list.add(seed_root_message(rng, seed,
                                                          mysql_releases()));
    ++produced;
    // Every thread gets the developer's diagnosis plus some follow-ups.
    list.add(seed_reply(rng, seed, root, /*developer=*/true));
    ++produced;
    const int followups = rng.poisson(config.mean_duplicates);
    for (int i = 0; i < followups; ++i) {
      list.add(seed_reply(rng, seed, root, /*developer=*/false));
      ++produced;
    }
  }
  while (produced < config.mysql_messages) {
    list.add(chatter_message(rng, rng.chance(config.keyword_chatter_rate)));
    ++produced;
  }
  return list;
}

}  // namespace faultstudy::corpus
