// An in-memory mailing-list archive (the MySQL fault source).
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "corpus/report.hpp"

namespace faultstudy::corpus {

class MailingList {
 public:
  /// Adds a message; assigns the next id if message.id is zero. A message
  /// with thread_id 0 starts a new thread rooted at itself.
  std::uint64_t add(MailMessage message);

  std::span<const MailMessage> messages() const noexcept { return messages_; }
  std::size_t size() const noexcept { return messages_.size(); }

  const MailMessage* find(std::uint64_t id) const noexcept;

  /// All messages in a thread, in arrival order.
  std::vector<const MailMessage*> thread(std::uint64_t thread_id) const;

  std::vector<MailMessage> select(
      const std::function<bool(const MailMessage&)>& pred) const;

  std::size_t distinct_faults() const;

 private:
  std::vector<MailMessage> messages_;
  std::uint64_t next_id_ = 1;
};

}  // namespace faultstudy::corpus
