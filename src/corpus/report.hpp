// Data model for bug-tracker reports and mailing-list messages.
//
// Mirrors the three sources the paper mined: bugs.apache.org (a tracker with
// severity and version fields), bugs.gnome.org + cvs.gnome.org (tracker plus
// fix records), and the geocrawler MySQL mailing-list archive (free-form
// messages, mined by keyword).
//
// Reports carry optional ground-truth fields (`fault_id`, `truth_*`) that
// the synthetic generators fill in. The mining pipeline never reads them;
// they exist so tests and benches can verify that what the pipeline found
// matches what was planted.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/rule_classifier.hpp"  // core::ReportText
#include "core/taxonomy.hpp"

namespace faultstudy::corpus {

/// Days since 1998-01-01; the study window spans roughly 1998-1999.
struct Date {
  int days = 0;

  constexpr auto operator<=>(const Date&) const = default;

  /// "YYYY-MM" bucket label (months are 30.44-day approximations, which is
  /// adequate for bucketing a two-year window).
  std::string month_label() const;
  /// Month index since 1998-01 (0-based).
  int month_index() const noexcept;
};

enum class Severity : std::uint8_t {
  kWishlist = 0,
  kMinor = 1,
  kNormal = 2,
  kSevere = 3,
  kCritical = 4,
};

std::string_view to_string(Severity s) noexcept;

/// Whether the reported version is a production release. The study only
/// counts "bugs on production versions of the software".
enum class VersionTrack : std::uint8_t {
  kProduction = 0,
  kBeta = 1,
  kDevelopment = 2,
};

/// What kind of report this is; the study keeps only functional failures of
/// running software (not build/install problems or feature requests).
enum class ReportKind : std::uint8_t {
  kRuntimeFailure = 0,
  kBuildProblem = 1,
  kInstallProblem = 2,
  kFeatureRequest = 3,
  kDocumentation = 4,
  kUsageQuestion = 5,
};

struct BugReport {
  std::uint64_t id = 0;
  core::AppId app = core::AppId::kApache;
  std::string component;    ///< e.g. "core", "panel", "gnumeric"
  std::string version;      ///< e.g. "1.3.1"
  int release_ordinal = 0;  ///< index into the app's release sequence
  VersionTrack track = VersionTrack::kProduction;
  Severity severity = Severity::kNormal;
  ReportKind kind = ReportKind::kRuntimeFailure;
  Date date;
  core::ReportText text;
  bool fixed = false;
  std::string fix_note;  ///< CVS-style note describing the fix

  // --- ground truth (filled by generators, never read by the pipeline) ---
  /// Stable fault identity shared by all reports of the same underlying bug.
  /// Empty for reports that are not about a study-relevant fault.
  std::string fault_id;
  std::optional<core::Trigger> truth_trigger;
  std::optional<core::FaultClass> truth_class;
};

/// A mailing-list message (the MySQL source).
struct MailMessage {
  std::uint64_t id = 0;
  Date date;
  std::string subject;
  std::string sender;
  std::string body;
  /// Thread identity: replies share the root message's thread_id.
  std::uint64_t thread_id = 0;

  // --- ground truth ---
  std::string fault_id;  ///< empty for chatter
  std::optional<core::Trigger> truth_trigger;
  std::optional<core::FaultClass> truth_class;
};

}  // namespace faultstudy::corpus
