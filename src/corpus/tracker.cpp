#include "corpus/tracker.hpp"

#include <unordered_set>

namespace faultstudy::corpus {

std::uint64_t BugTracker::add(BugReport report) {
  if (report.id == 0) report.id = next_id_++;
  else if (report.id >= next_id_) next_id_ = report.id + 1;
  const std::uint64_t id = report.id;
  reports_.push_back(std::move(report));
  return id;
}

const BugReport* BugTracker::find(std::uint64_t id) const noexcept {
  for (const auto& r : reports_) {
    if (r.id == id) return &r;
  }
  return nullptr;
}

std::vector<BugReport> BugTracker::select(
    const std::function<bool(const BugReport&)>& pred) const {
  std::vector<BugReport> out;
  for (const auto& r : reports_) {
    if (pred(r)) out.push_back(r);
  }
  return out;
}

std::size_t BugTracker::distinct_faults() const {
  std::unordered_set<std::string> ids;
  for (const auto& r : reports_) {
    if (!r.fault_id.empty()) ids.insert(r.fault_id);
  }
  return ids.size();
}

}  // namespace faultstudy::corpus
