// Synthetic corpus generators.
//
// The paper mined live data sources that no longer exist in their 1999 form:
// bugs.apache.org (5220 reports), bugs.gnome.org (~500 reports), and the
// geocrawler MySQL mailing-list archive (~44,000 messages). These generators
// rebuild statistically faithful stand-ins:
//
//   * every curated seed fault (seeds.hpp) appears as a primary report plus
//     a random number of duplicate reports with paraphrased text;
//   * the remaining volume is noise that the paper's selection criteria
//     exclude — reports below severe severity, reports against beta or
//     development versions, build/install problems, feature requests, and
//     (for the mailing list) ordinary discussion, some of it containing the
//     search keywords in non-bug contexts;
//   * report dates and versions place each fault in its figure bucket.
//
// Generation is deterministic in SynthConfig::seed. The ground-truth fields
// of each report record which fault (if any) it describes so tests can
// verify the pipeline end to end.
#pragma once

#include <cstdint>

#include "corpus/mailinglist.hpp"
#include "corpus/seeds.hpp"
#include "corpus/tracker.hpp"

namespace faultstudy::corpus {

struct SynthConfig {
  std::uint64_t seed = 20000625;  ///< default: DSN 2000 conference date
  /// Total report volumes, matching Section 4 of the paper.
  std::size_t apache_total = 5220;
  std::size_t gnome_total = 500;
  std::size_t mysql_messages = 44000;
  /// Mean number of duplicate reports per seed fault (Poisson).
  double mean_duplicates = 2.0;
  /// Fraction of noise mail messages that contain one of the study keywords
  /// in a non-bug context (exercises the keyword filter's precision).
  double keyword_chatter_rate = 0.08;
};

BugTracker make_apache_tracker(const SynthConfig& config = {});
BugTracker make_gnome_tracker(const SynthConfig& config = {});
MailingList make_mysql_list(const SynthConfig& config = {});

/// Date window helpers shared with the mining pipeline: GNOME buckets are
/// two-month periods starting 1998-09 (day 243 of 1998).
int gnome_bucket_of_date(Date date) noexcept;
Date gnome_date_in_bucket(int bucket, int offset_days) noexcept;

}  // namespace faultstudy::corpus
