#include "corpus/report.hpp"

#include <cstdio>

namespace faultstudy::corpus {

int Date::month_index() const noexcept {
  return static_cast<int>(days / 30.44);
}

std::string Date::month_label() const {
  const int m = month_index();
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02d", 1998 + m / 12, m % 12 + 1);
  return buf;
}

std::string_view to_string(Severity s) noexcept {
  switch (s) {
    case Severity::kWishlist:
      return "wishlist";
    case Severity::kMinor:
      return "minor";
    case Severity::kNormal:
      return "normal";
    case Severity::kSevere:
      return "severe";
    case Severity::kCritical:
      return "critical";
  }
  return "?";
}

}  // namespace faultstudy::corpus
