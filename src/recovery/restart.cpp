#include "recovery/restart.hpp"

#include "recovery/perturbation.hpp"

namespace faultstudy::recovery {

void ColdRestart::attach(apps::SimApp& app, env::Environment& e) {
  (void)app;
  e.scheduler().set_replay_bias(ReplayBias::kColdRestart);
}

RecoveryAction ColdRestart::recover(apps::SimApp& app, env::Environment& e) {
  e.advance(RecoveryCosts::kColdRestart);
  sweep_application(app, e);
  app.stop(e);
  RecoveryAction action;
  action.recovered = app.start(e);
  action.rewind_items = 0;  // in-flight work is simply lost, not replayed
  FS_TELEM(e.counters(), recovery.cold_restarts++);
  FS_FORENSIC(e.flight(), record(forensics::FlightCode::kColdRestart));
  FS_COVER(e.coverage(), hit(obs::Site::kRecColdRestart));
  return action;
}

}  // namespace faultstudy::recovery
