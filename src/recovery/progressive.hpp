// Progressive retry [Wang93]: rollback-retry that deliberately reorders
// events (message receives, thread wakeups) on each retry so the re-executed
// operation sees a *different* environment. In the model this removes the
// rollback replay bias entirely — every retry draws a fresh interleaving.
// Like its base, it is generic and state-preserving: reordering does not
// transform environment-independent faults into recoverable ones, it only
// increases the chance an environment-dependent fault sees a changed
// environment (Section 7).
#pragma once

#include "recovery/rollback.hpp"

namespace faultstudy::recovery {

class ProgressiveRetry final : public RollbackRetry {
 public:
  explicit ProgressiveRetry(std::size_t checkpoint_interval = 5)
      : RollbackRetry(checkpoint_interval) {}

  std::string_view name() const noexcept override {
    return "progressive-retry";
  }

 protected:
  double replay_bias() const noexcept override;
  env::Tick recovery_cost() const noexcept override;
};

}  // namespace faultstudy::recovery
