// Design-diversity mechanisms (Section 2): N-version programming
// [Avizienis85] and recovery blocks [Randell75].
//
// Both survive a design bug only when some independently developed variant
// does NOT share it. The Knight-Leveson lesson — independently written
// versions make correlated mistakes — enters as `shared_bug_probability`:
// the chance an alternate implementation contains the same bug. Whether a
// particular variant shares THIS fault's bug is decided deterministically
// from the per-fault salt and the variant index.
//
// Diversity helps with design bugs the variants can disagree on (the
// environment-independent class). It does not conjure environmental
// resources: if the file system is full, it is full for all N versions.
// The model captures this by masking only input-triggered failures.
#pragma once

#include <memory>

#include "recovery/mechanism.hpp"

namespace faultstudy::recovery {

/// Active replication with majority voting. Version 0 is the version under
/// study and always contains the bug; versions 1..n-1 share it with
/// probability `shared_bug_probability` each.
class NVersionProgramming final : public Mechanism {
 public:
  NVersionProgramming(int n_versions, double shared_bug_probability,
                      std::uint64_t salt);

  std::string_view name() const noexcept override { return name_; }
  bool is_generic() const noexcept override { return false; }
  bool preserves_state() const noexcept override { return true; }

  void attach(apps::SimApp& app, env::Environment& e) override;
  void on_item_success(apps::SimApp& app, env::Environment& e) override;
  RecoveryAction recover(apps::SimApp& app, env::Environment& e) override;
  void prepare_retry(apps::WorkItem& item) override;

  int versions() const noexcept { return n_; }
  int buggy_versions() const noexcept { return buggy_; }
  /// True when a majority of versions is free of this fault's bug — the
  /// voter then masks input-triggered failures.
  bool majority_healthy() const noexcept { return buggy_ * 2 < n_; }

  /// Per-operation execution cost multiplier (all N versions run).
  double cost_multiplier() const noexcept { return static_cast<double>(n_); }

 private:
  int n_;
  int buggy_;
  std::string name_;
  apps::SnapshotPtr synced_;
};

/// Passive diversity: one primary plus `alternates` spare implementations
/// behind an acceptance test; alternates are tried in order after a
/// rollback [Randell75].
class RecoveryBlocks final : public Mechanism {
 public:
  RecoveryBlocks(int alternates, double shared_bug_probability,
                 std::uint64_t salt);

  std::string_view name() const noexcept override { return name_; }
  bool is_generic() const noexcept override { return false; }
  bool preserves_state() const noexcept override { return true; }

  void attach(apps::SimApp& app, env::Environment& e) override;
  void on_item_success(apps::SimApp& app, env::Environment& e) override;
  RecoveryAction recover(apps::SimApp& app, env::Environment& e) override;
  void prepare_retry(apps::WorkItem& item) override;

  int alternates() const noexcept { return alternates_; }
  /// Index (1-based) of the first healthy alternate; 0 when none is.
  int first_healthy_alternate() const noexcept { return healthy_; }

 private:
  int alternates_;
  int healthy_;
  std::string name_;
  apps::SnapshotPtr checkpoint_;
  bool switch_pending_ = false;
};

}  // namespace faultstudy::recovery
