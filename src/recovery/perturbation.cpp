#include "recovery/mechanism.hpp"
#include "recovery/perturbation.hpp"

#include "inject/specimen.hpp"

namespace faultstudy::recovery {

void sweep_application(apps::SimApp& app, env::Environment& e) {
  const std::string owner(app.name());
  const std::string children = inject::child_owner(app);
  e.processes().kill_owned_by(owner);
  e.processes().kill_owned_by(children);
  e.network().release_ports_of(owner);
  e.network().release_ports_of(children);
  FS_COVER(e.coverage(), hit(obs::Site::kRecSweep));
}

}  // namespace faultstudy::recovery
