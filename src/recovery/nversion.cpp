#include "recovery/nversion.hpp"

#include "recovery/perturbation.hpp"
#include "util/rng.hpp"

namespace faultstudy::recovery {

namespace {
/// Deterministic "does variant v share the bug identified by salt?".
bool variant_shares_bug(std::uint64_t salt, int variant, double probability) {
  util::SplitMix64 sm(salt ^ (0x9E3779B9ull * static_cast<std::uint64_t>(variant)));
  return static_cast<double>(sm.next() >> 11) * 0x1.0p-53 < probability;
}

/// Failover/vote latency per recovery.
constexpr env::Tick kVoteCost = 70;
}  // namespace

NVersionProgramming::NVersionProgramming(int n_versions,
                                         double shared_bug_probability,
                                         std::uint64_t salt)
    : n_(n_versions < 1 ? 1 : n_versions) {
  buggy_ = 1;  // version 0 is the implementation under study
  for (int v = 1; v < n_; ++v) {
    if (variant_shares_bug(salt, v, shared_bug_probability)) ++buggy_;
  }
  name_ = std::to_string(n_) + "-version";
}

void NVersionProgramming::attach(apps::SimApp& app, env::Environment& e) {
  e.scheduler().set_replay_bias(0.0);  // versions schedule independently
  synced_ = app.snapshot();
}

void NVersionProgramming::on_item_success(apps::SimApp& app,
                                          env::Environment& e) {
  (void)e;
  synced_ = app.snapshot();
}

RecoveryAction NVersionProgramming::recover(apps::SimApp& app,
                                            env::Environment& e) {
  e.advance(kVoteCost);
  sweep_application(app, e);
  RecoveryAction action;
  action.recovered = app.restore(synced_, e);
  return action;
}

void NVersionProgramming::prepare_retry(apps::WorkItem& item) {
  // With a healthy majority, the voter adopts the majority's answer for the
  // killer input: the service output is correct even though version 0
  // failed. Environmental conditions are shared by all versions, so only
  // input-triggered failures are masked.
  if (majority_healthy() && item.poison) {
    item.poison = false;
    item.op = std::string(apps::kRejectedOp);
  }
}

RecoveryBlocks::RecoveryBlocks(int alternates, double shared_bug_probability,
                               std::uint64_t salt)
    : alternates_(alternates < 0 ? 0 : alternates) {
  healthy_ = 0;
  for (int a = 1; a <= alternates_; ++a) {
    if (!variant_shares_bug(salt, a, shared_bug_probability)) {
      healthy_ = a;
      break;
    }
  }
  name_ = "recovery-blocks-" + std::to_string(alternates_);
}

void RecoveryBlocks::attach(apps::SimApp& app, env::Environment& e) {
  // Rollback-style: the acceptance test guards each block; entering a block
  // establishes a recovery point.
  e.scheduler().set_replay_bias(ReplayBias::kRollbackRetry);
  checkpoint_ = app.snapshot();
}

void RecoveryBlocks::on_item_success(apps::SimApp& app, env::Environment& e) {
  (void)e;
  checkpoint_ = app.snapshot();
  switch_pending_ = false;  // back on the primary for the next block
}

RecoveryAction RecoveryBlocks::recover(apps::SimApp& app,
                                       env::Environment& e) {
  // Trying alternates costs one rollback per attempted block.
  const env::Tick attempts =
      healthy_ > 0 ? healthy_ : (alternates_ > 0 ? alternates_ : 1);
  e.advance(RecoveryCosts::kRollbackRetry * attempts);
  sweep_application(app, e);
  RecoveryAction action;
  action.recovered = app.restore(checkpoint_, e);
  switch_pending_ = action.recovered;
  return action;
}

void RecoveryBlocks::prepare_retry(apps::WorkItem& item) {
  // After a rollback, the next block executes on the first healthy
  // alternate (if any): its implementation does not contain this bug.
  if (switch_pending_ && healthy_ > 0 && item.poison) {
    item.poison = false;
    item.op = std::string(apps::kRejectedOp);
  }
}

}  // namespace faultstudy::recovery
