#include "recovery/progressive.hpp"

#include "recovery/perturbation.hpp"

namespace faultstudy::recovery {

double ProgressiveRetry::replay_bias() const noexcept {
  return ReplayBias::kProgressiveRetry;
}

env::Tick ProgressiveRetry::recovery_cost() const noexcept {
  return RecoveryCosts::kProgressiveRetry;
}

}  // namespace faultstudy::recovery
