// Checkpoint/rollback-retry [Elnozahy99, Huang93]: the application state is
// checkpointed every `interval` operations; on failure, roll back to the
// last checkpoint and re-execute from there. Purely generic and
// state-preserving. Deterministic replay after rollback tends to reproduce
// the pre-failure schedule (the replay bias), which is the weakness
// progressive retry addresses.
#pragma once

#include "recovery/mechanism.hpp"

namespace faultstudy::recovery {

class RollbackRetry : public Mechanism {
 public:
  explicit RollbackRetry(std::size_t checkpoint_interval = 5)
      : interval_(checkpoint_interval == 0 ? 1 : checkpoint_interval) {}

  std::string_view name() const noexcept override { return "rollback-retry"; }
  bool is_generic() const noexcept override { return true; }
  bool preserves_state() const noexcept override { return true; }

  void attach(apps::SimApp& app, env::Environment& e) override;
  void on_item_success(apps::SimApp& app, env::Environment& e) override;
  RecoveryAction recover(apps::SimApp& app, env::Environment& e) override;

  std::size_t checkpoint_interval() const noexcept { return interval_; }

 protected:
  /// Scheduler bias this mechanism induces; progressive retry overrides.
  virtual double replay_bias() const noexcept;
  virtual env::Tick recovery_cost() const noexcept;

 private:
  std::size_t interval_;
  std::size_t since_checkpoint_ = 0;
  apps::SnapshotPtr checkpoint_;
};

}  // namespace faultstudy::recovery
