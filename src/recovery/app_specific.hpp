// Application-specific recovery: the full toolkit the paper says most
// faults require. Combines rejuvenation-style cleanup with error-checking
// wrappers around killer inputs (Ballista-style [Kropp98]) and
// reconstruction of the parts of state that must not be restored verbatim.
//
// Deliberately NOT omnipotent: conditions that live entirely outside the
// application's reach — missing hardware, a file system filled by another
// tenant, descriptors leaked by another program, an exhausted kernel pool,
// an unconfigured remote PTR record — still defeat it; they need an
// operator. The recovery-matrix bench reports these separately.
#pragma once

#include "forensics/recorder.hpp"
#include "obs/probes.hpp"
#include "recovery/mechanism.hpp"
#include "telemetry/counters.hpp"

namespace faultstudy::recovery {

class AppSpecific final : public Mechanism {
 public:
  std::string_view name() const noexcept override { return "app-specific"; }
  bool is_generic() const noexcept override { return false; }
  bool preserves_state() const noexcept override { return true; }

  void attach(apps::SimApp& app, env::Environment& e) override;
  void on_item_success(apps::SimApp& app, env::Environment& e) override {
    (void)app;
    (void)e;
  }
  RecoveryAction recover(apps::SimApp& app, env::Environment& e) override;

  /// The error-checking wrapper: after a failure on a killer input, the
  /// retry is performed with the input rejected up front (the service
  /// returns an error page/message instead of crashing).
  void prepare_retry(apps::WorkItem& item) override;

 private:
  bool sanitize_next_ = false;
  // prepare_retry has no Environment parameter; attach caches the trial's
  // sinks so sanitized retries are still counted and flight-recorded.
  telemetry::TrialCounters* counters_ = nullptr;
  forensics::FlightRecorder* flight_ = nullptr;
  obs::CoverageMap* coverage_ = nullptr;
};

/// True when the trigger's condition is reachable by application-level
/// recovery code; false when only an operator (or hardware) can clear it.
bool app_recoverable(core::Trigger trigger) noexcept;

}  // namespace faultstudy::recovery
