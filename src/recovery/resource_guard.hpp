// Resource-exhaustion countermeasures (Section 6.2).
//
// The paper sketches two generic approaches to the resource-exhaustion
// faults that dominate the EDN class: (1) detect the shortage and
// automatically increase the resource, and (2) automatically decrease what
// the application uses (garbage-collect unused descriptors, multiplex
// "virtual sockets"). Both are environment/OS-level — no application
// knowledge — so layering them under a generic mechanism keeps the stack
// generic while converting specific EDN triggers into transient ones,
// exactly the reclassification the paper anticipates.
//
// A ResourceGuard watches recovery attempts; a GuardedMechanism decorates
// any Mechanism with a set of guards that run before each recovery.
#pragma once

#include <memory>
#include <vector>

#include "recovery/mechanism.hpp"

namespace faultstudy::recovery {

class ResourceGuard {
 public:
  virtual ~ResourceGuard() = default;
  virtual std::string_view name() const noexcept = 0;
  /// Invoked when the application failed, before the underlying mechanism
  /// recovers. Growth guards act here so that a state-preserving restore
  /// (which re-materializes the checkpointed footprint) has room to
  /// succeed.
  virtual void on_failure(apps::SimApp& app, env::Environment& e) = 0;
  /// Invoked after the underlying mechanism recovered the application.
  /// Reclamation guards act here: collecting idle descriptors before the
  /// restore would be futile, because a truly generic restore faithfully
  /// re-opens everything the checkpoint recorded.
  virtual void on_recovered(apps::SimApp& app, env::Environment& e) {
    (void)app;
    (void)e;
  }
};

/// Countermeasure 1a: grow the descriptor table when it is nearly full,
/// up to `max_total` (growth cannot be unbounded — the kernel has limits).
class DynamicFdGrowth final : public ResourceGuard {
 public:
  DynamicFdGrowth(std::size_t step, std::size_t max_total)
      : step_(step), max_total_(max_total) {}
  std::string_view name() const noexcept override { return "fd-growth"; }
  void on_failure(apps::SimApp& app, env::Environment& e) override;

 private:
  std::size_t step_;
  std::size_t max_total_;
};

/// Countermeasure 1b: grow the file system / raise file size limits.
class DynamicDiskGrowth final : public ResourceGuard {
 public:
  DynamicDiskGrowth(std::uint64_t step, std::uint64_t max_total)
      : step_(step), max_total_(max_total) {}
  std::string_view name() const noexcept override { return "disk-growth"; }
  void on_failure(apps::SimApp& app, env::Environment& e) override;

 private:
  std::uint64_t step_;
  std::uint64_t max_total_;
};

/// Countermeasure 2: descriptor garbage collection — "the system may
/// monitor which file descriptors are used and automatically close the
/// unused ones". In the model, descriptors an application holds beyond its
/// configured baseline and has not used recently are exactly the leaked
/// ones; the collector reclaims a fraction of them.
class FdGarbageCollector final : public ResourceGuard {
 public:
  /// `baseline` descriptors are presumed live; everything above is a
  /// candidate. `reclaim_fraction` in (0,1] of candidates is collected per
  /// pass (monitoring is imperfect).
  /// `reclaim_fraction` in (0,1] of the idle candidates is collected per
  /// pass (monitoring is imperfect).
  explicit FdGarbageCollector(double reclaim_fraction)
      : reclaim_fraction_(reclaim_fraction) {}
  std::string_view name() const noexcept override { return "fd-gc"; }
  void on_failure(apps::SimApp& app, env::Environment& e) override;
  void on_recovered(apps::SimApp& app, env::Environment& e) override;

 private:
  double reclaim_fraction_;
};

/// Decorates a mechanism with guards. Generic iff the inner mechanism is —
/// the guards themselves use no application knowledge.
class GuardedMechanism final : public Mechanism {
 public:
  GuardedMechanism(std::unique_ptr<Mechanism> inner,
                   std::vector<std::unique_ptr<ResourceGuard>> guards);

  std::string_view name() const noexcept override { return name_; }
  bool is_generic() const noexcept override { return inner_->is_generic(); }
  bool preserves_state() const noexcept override {
    return inner_->preserves_state();
  }

  void attach(apps::SimApp& app, env::Environment& e) override;
  void on_item_success(apps::SimApp& app, env::Environment& e) override;
  RecoveryAction recover(apps::SimApp& app, env::Environment& e) override;
  void prepare_retry(apps::WorkItem& item) override;

 private:
  std::unique_ptr<Mechanism> inner_;
  std::vector<std::unique_ptr<ResourceGuard>> guards_;
  std::string name_;
};

/// Convenience: wraps `inner` with the full Section 6.2 guard set sized for
/// the study's applications.
std::unique_ptr<Mechanism> with_standard_guards(
    std::unique_ptr<Mechanism> inner);

}  // namespace faultstudy::recovery
