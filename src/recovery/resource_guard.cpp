#include "recovery/resource_guard.hpp"

#include <algorithm>

namespace faultstudy::recovery {

void DynamicFdGrowth::on_failure(apps::SimApp& app, env::Environment& e) {
  (void)app;
  // Grow only when the table is actually tight — a failure with plenty of
  // descriptors free is not a descriptor problem.
  if (e.fds().available() < step_ && e.fds().capacity() < max_total_) {
    const std::size_t room = max_total_ - e.fds().capacity();
    e.fds().grow(std::min(step_, room));
  }
}

void DynamicDiskGrowth::on_failure(apps::SimApp& app, env::Environment& e) {
  (void)app;
  if (e.disk().free_space() < step_ && e.disk().capacity() < max_total_) {
    const std::uint64_t room = max_total_ - e.disk().capacity();
    e.disk().grow(std::min(step_, room));
  }
  // Large-file support: double the per-file limit while it is the binding
  // constraint (bounded by the volume size).
  e.disk().raise_file_size_limit(
      std::min<std::uint64_t>(e.disk().max_file_size() * 2, max_total_));
}

void FdGarbageCollector::on_failure(apps::SimApp& app, env::Environment& e) {
  (void)app;
  (void)e;
  // Collecting before a state-preserving restore is futile: the restore
  // re-opens every descriptor the checkpoint recorded. See on_recovered.
}

void FdGarbageCollector::on_recovered(apps::SimApp& app,
                                      env::Environment& e) {
  app.reclaim_idle_descriptors(e, reclaim_fraction_);
}

GuardedMechanism::GuardedMechanism(
    std::unique_ptr<Mechanism> inner,
    std::vector<std::unique_ptr<ResourceGuard>> guards)
    : inner_(std::move(inner)), guards_(std::move(guards)) {
  name_ = std::string(inner_->name()) + "+guards";
}

void GuardedMechanism::attach(apps::SimApp& app, env::Environment& e) {
  inner_->attach(app, e);
}

void GuardedMechanism::on_item_success(apps::SimApp& app,
                                       env::Environment& e) {
  inner_->on_item_success(app, e);
}

RecoveryAction GuardedMechanism::recover(apps::SimApp& app,
                                         env::Environment& e) {
  for (auto& guard : guards_) guard->on_failure(app, e);
  const RecoveryAction action = inner_->recover(app, e);
  if (action.recovered) {
    for (auto& guard : guards_) guard->on_recovered(app, e);
  }
  return action;
}

void GuardedMechanism::prepare_retry(apps::WorkItem& item) {
  inner_->prepare_retry(item);
}

std::unique_ptr<Mechanism> with_standard_guards(
    std::unique_ptr<Mechanism> inner) {
  std::vector<std::unique_ptr<ResourceGuard>> guards;
  guards.push_back(std::make_unique<DynamicFdGrowth>(
      /*step=*/32, /*max_total=*/4096));
  guards.push_back(std::make_unique<DynamicDiskGrowth>(
      /*step=*/1ull << 20, /*max_total=*/16ull << 30));
  guards.push_back(std::make_unique<FdGarbageCollector>(
      /*reclaim_fraction=*/0.8));
  return std::make_unique<GuardedMechanism>(std::move(inner),
                                            std::move(guards));
}

}  // namespace faultstudy::recovery
