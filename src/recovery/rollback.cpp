#include "recovery/rollback.hpp"

#include "recovery/perturbation.hpp"

namespace faultstudy::recovery {

double RollbackRetry::replay_bias() const noexcept {
  return ReplayBias::kRollbackRetry;
}

env::Tick RollbackRetry::recovery_cost() const noexcept {
  return RecoveryCosts::kRollbackRetry;
}

void RollbackRetry::attach(apps::SimApp& app, env::Environment& e) {
  e.scheduler().set_replay_bias(replay_bias());
  checkpoint_ = app.snapshot();
  since_checkpoint_ = 0;
  FS_TELEM(e.counters(), recovery.checkpoints++);
  FS_FORENSIC(e.flight(), record(forensics::FlightCode::kCheckpoint));
  FS_COVER(e.coverage(), hit(obs::Site::kRecCheckpoint));
}

void RollbackRetry::on_item_success(apps::SimApp& app, env::Environment& e) {
  if (++since_checkpoint_ >= interval_) {
    checkpoint_ = app.snapshot();
    since_checkpoint_ = 0;
    FS_TELEM(e.counters(), recovery.checkpoints++);
    FS_FORENSIC(e.flight(), record(forensics::FlightCode::kCheckpoint));
    FS_COVER(e.coverage(), hit(obs::Site::kRecCheckpoint));
  }
}

RecoveryAction RollbackRetry::recover(apps::SimApp& app, env::Environment& e) {
  e.advance(recovery_cost());
  sweep_application(app, e);
  RecoveryAction action;
  action.recovered = app.restore(checkpoint_, e);
  action.rewind_items = since_checkpoint_;
  since_checkpoint_ = 0;
  return action;
}

}  // namespace faultstudy::recovery
