#include "recovery/process_pairs.hpp"

#include "recovery/perturbation.hpp"

namespace faultstudy::recovery {

void ProcessPairs::attach(apps::SimApp& app, env::Environment& e) {
  e.scheduler().set_replay_bias(ReplayBias::kProcessPairs);
  backup_ = app.snapshot();
}

void ProcessPairs::on_item_success(apps::SimApp& app, env::Environment& e) {
  (void)e;
  backup_ = app.snapshot();  // primary->backup state sync after every op
}

RecoveryAction ProcessPairs::recover(apps::SimApp& app, env::Environment& e) {
  e.advance(RecoveryCosts::kProcessPairs);
  sweep_application(app, e);
  RecoveryAction action;
  action.recovered = app.restore(backup_, e);
  action.rewind_items = 0;  // the backup is synced to the last completed op
  FS_TELEM(e.counters(), recovery.failovers++);
  FS_FORENSIC(e.flight(), record(forensics::FlightCode::kFailover));
  FS_COVER(e.coverage(), hit(obs::Site::kRecFailover));
  return action;
}

}  // namespace faultstudy::recovery
