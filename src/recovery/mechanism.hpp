// Recovery-mechanism interface.
//
// A mechanism is attached to a running (app, environment) pair; on each
// failure the harness asks it to recover. The two axes the paper's taxonomy
// turns on are explicit in the interface:
//
//   * is_generic(): the mechanism uses no application-specific knowledge —
//     it must preserve ALL application state ("there is no
//     application-specific code to reconstruct missing state");
//   * preserves_state(): whether the application's accumulated state
//     survives recovery. Generic state-preserving mechanisms restore leaks
//     along with everything else; a lossy restart sheds them but also sheds
//     legitimate state (counted separately by the harness).
#pragma once

#include <string_view>

#include "apps/app.hpp"
#include "env/environment.hpp"

namespace faultstudy::recovery {

struct RecoveryAction {
  bool recovered = false;  ///< the app is running again
  /// How many workload items the harness must re-execute because the
  /// restored checkpoint predates them (rollback to an older checkpoint).
  std::size_t rewind_items = 0;
};

class Mechanism {
 public:
  virtual ~Mechanism() = default;

  virtual std::string_view name() const noexcept = 0;

  /// No application-specific knowledge used anywhere in the mechanism.
  virtual bool is_generic() const noexcept = 0;

  /// Application state (request counts, tables, sessions) survives recovery.
  virtual bool preserves_state() const noexcept = 0;

  /// Called once when the app starts: take the initial checkpoint, set the
  /// scheduler replay bias this mechanism induces.
  virtual void attach(apps::SimApp& app, env::Environment& e) = 0;

  /// Called after every successfully handled item (checkpoint cadence).
  virtual void on_item_success(apps::SimApp& app, env::Environment& e) = 0;

  /// Called when the app failed. Must leave the app running (and report
  /// true) or report false (recovery itself failed).
  virtual RecoveryAction recover(apps::SimApp& app, env::Environment& e) = 0;

  /// May adjust the item about to be retried. Only application-specific
  /// mechanisms do anything here (e.g. an error-checking wrapper rejects
  /// the killer input instead of crashing on it).
  virtual void prepare_retry(apps::WorkItem& item) { (void)item; }
};

/// Kills every process associated with the application — workers and
/// runaway children alike — and releases their ports. All mechanisms
/// perform this sweep before reviving the app; it is *the* environmental
/// change that makes process-table and port-holding faults transient.
void sweep_application(apps::SimApp& app, env::Environment& e);

}  // namespace faultstudy::recovery
