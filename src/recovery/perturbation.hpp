// The environment-perturbation model: what changes when recovery runs.
//
// Section 3's EDN/EDT split is a prediction about exactly this. The model
// documents, per mechanism, which environmental facts recovery changes
// (processes killed, ports freed, time passing while DNS heals and entropy
// refills) and which it cannot (disk contents, other programs' descriptors,
// the hostname, missing hardware). Unit tests pin every Section 5 bullet to
// this model.
#pragma once

#include "env/clock.hpp"

namespace faultstudy::recovery {

/// Virtual-time cost of one recovery pass, per mechanism. The values encode
/// the mechanisms' relative latencies (a process-pair failover is fast; a
/// cold restart replays initialization); transient conditions heal while
/// this time passes.
struct RecoveryCosts {
  static constexpr env::Tick kProcessPairs = 60;
  static constexpr env::Tick kRollbackRetry = 80;
  static constexpr env::Tick kProgressiveRetry = 80;
  static constexpr env::Tick kColdRestart = 250;
  static constexpr env::Tick kRejuvenation = 150;
  static constexpr env::Tick kAppSpecific = 50;
};

/// Scheduler replay bias per mechanism: the probability that a retry
/// re-encounters the interleaving that triggered a race. Deterministic
/// rollback-replay tends to reproduce the schedule; a process-pair backup
/// on different hardware rarely does; progressive retry reorders events
/// specifically to avoid it [Wang93].
struct ReplayBias {
  static constexpr double kProcessPairs = 0.05;
  static constexpr double kRollbackRetry = 0.30;
  static constexpr double kProgressiveRetry = 0.0;
  static constexpr double kColdRestart = 0.0;
  static constexpr double kRejuvenation = 0.0;
  static constexpr double kAppSpecific = 0.0;
};

}  // namespace faultstudy::recovery
