// Software rejuvenation [Huang95]: invoke the application's own
// re-initialization code — Apache's SIGHUP handling is the study's example.
// Application-specific by definition: the cleanup (kill children, close
// leaked descriptors, rotate logs, prune caches) is knowledge only the
// application has. Rejuvenation is normally *proactive*; used reactively
// here so it is comparable to the other mechanisms.
#pragma once

#include "recovery/mechanism.hpp"

namespace faultstudy::recovery {

class Rejuvenation final : public Mechanism {
 public:
  std::string_view name() const noexcept override { return "rejuvenation"; }
  bool is_generic() const noexcept override { return false; }
  /// Rejuvenation keeps long-lived state (the session continues) while
  /// shedding accumulated bloat.
  bool preserves_state() const noexcept override { return true; }

  void attach(apps::SimApp& app, env::Environment& e) override;
  void on_item_success(apps::SimApp& app, env::Environment& e) override {
    (void)app;
    (void)e;
  }
  RecoveryAction recover(apps::SimApp& app, env::Environment& e) override;
};

/// Proactive rejuvenation on a schedule — [Huang95]'s actual proposal:
/// "software rejuvenation seeks to PREVENT failures by invoking this
/// application-specific recovery code before the program crashes". Every
/// `interval` successful operations the application is rejuvenated, paying
/// the rejuvenation cost up front; leaks never reach their limit when the
/// interval is shorter than the leak horizon.
class ScheduledRejuvenation final : public Mechanism {
 public:
  explicit ScheduledRejuvenation(std::size_t interval)
      : interval_(interval == 0 ? 1 : interval) {}

  std::string_view name() const noexcept override { return name_; }
  bool is_generic() const noexcept override { return false; }
  bool preserves_state() const noexcept override { return true; }

  void attach(apps::SimApp& app, env::Environment& e) override;
  void on_item_success(apps::SimApp& app, env::Environment& e) override;
  RecoveryAction recover(apps::SimApp& app, env::Environment& e) override;

  std::size_t interval() const noexcept { return interval_; }
  std::size_t proactive_passes() const noexcept { return proactive_; }

 private:
  std::size_t interval_;
  std::size_t since_ = 0;
  std::size_t proactive_ = 0;
  std::string name_ = "scheduled-rejuvenation";
};

}  // namespace faultstudy::recovery
