#include "recovery/wrappers.hpp"

#include "util/rng.hpp"

namespace faultstudy::recovery {

WrappedMechanism::WrappedMechanism(std::unique_ptr<Mechanism> inner,
                                   double coverage, std::uint64_t salt)
    : inner_(std::move(inner)) {
  if (coverage < 0.0) coverage = 0.0;
  if (coverage > 1.0) coverage = 1.0;
  // Scramble the salt so consecutive fault ids decorrelate, then compare
  // against the coverage fraction.
  util::SplitMix64 sm(salt);
  covered_ = static_cast<double>(sm.next() >> 11) * 0x1.0p-53 < coverage;
  name_ = std::string(inner_->name()) + "+wrapper";
}

void WrappedMechanism::attach(apps::SimApp& app, env::Environment& e) {
  inner_->attach(app, e);
}

void WrappedMechanism::on_item_success(apps::SimApp& app,
                                       env::Environment& e) {
  inner_->on_item_success(app, e);
}

RecoveryAction WrappedMechanism::recover(apps::SimApp& app,
                                         env::Environment& e) {
  return inner_->recover(app, e);
}

void WrappedMechanism::prepare_retry(apps::WorkItem& item) {
  inner_->prepare_retry(item);
  // The wrapper's error check rejects the killer input up front — but only
  // if the boundary-testing campaign generated a check for it.
  if (covered_ && item.poison) {
    item.poison = false;
    item.op = std::string(apps::kRejectedOp);
  }
}

}  // namespace faultstudy::recovery
