// Robustness wrappers (Section 6.1, after Ballista [Kropp98]).
//
// "Tools like Ballista test functions for boundary conditions and place
// wrapper code around them to prevent failure." A wrapper is only as good
// as the boundary testing that generated it: `coverage` is the fraction of
// killer inputs the testing campaign found and wrapped. Whether THIS
// fault's killer input is covered is decided deterministically from the
// per-fault salt, so a sweep over the fault population sees a `coverage`
// fraction of EI faults neutralized.
//
// The wrapper handles only input-triggered (environment-independent)
// faults; it composes with an inner mechanism that does the actual
// recovery for everything else.
#pragma once

#include <memory>

#include "recovery/mechanism.hpp"

namespace faultstudy::recovery {

class WrappedMechanism final : public Mechanism {
 public:
  /// `salt` identifies the fault under test (e.g. fnv1a of its fault id);
  /// the wrapper covers this fault's killer input iff salt lands in the
  /// covered fraction.
  WrappedMechanism(std::unique_ptr<Mechanism> inner, double coverage,
                   std::uint64_t salt);

  std::string_view name() const noexcept override { return name_; }
  /// Wrapper generation is mechanical (automated boundary testing), but
  /// the wrappers themselves are application-specific error checks.
  bool is_generic() const noexcept override { return false; }
  bool preserves_state() const noexcept override {
    return inner_->preserves_state();
  }

  void attach(apps::SimApp& app, env::Environment& e) override;
  void on_item_success(apps::SimApp& app, env::Environment& e) override;
  RecoveryAction recover(apps::SimApp& app, env::Environment& e) override;
  void prepare_retry(apps::WorkItem& item) override;

  bool covers_this_fault() const noexcept { return covered_; }

 private:
  std::unique_ptr<Mechanism> inner_;
  bool covered_;
  std::string name_;
};

}  // namespace faultstudy::recovery
