// Cold restart: stop the failed application and start it afresh.
//
// NOT truly generic in the paper's sense — it does not preserve application
// state, so accumulated work (sessions, counters, in-memory tables) is
// lost. Its interest is as an ablation point: shedding state also sheds
// leaked resources, so a lossy restart "survives" leak faults that a
// state-preserving generic mechanism cannot, and re-reading the environment
// at startup fixes cached-environment faults like a hostname change. The
// harness reports its state loss alongside its survival.
#pragma once

#include "recovery/mechanism.hpp"

namespace faultstudy::recovery {

class ColdRestart final : public Mechanism {
 public:
  std::string_view name() const noexcept override { return "cold-restart"; }
  bool is_generic() const noexcept override { return true; }
  bool preserves_state() const noexcept override { return false; }

  void attach(apps::SimApp& app, env::Environment& e) override;
  void on_item_success(apps::SimApp& app, env::Environment& e) override {
    (void)app;
    (void)e;
  }
  RecoveryAction recover(apps::SimApp& app, env::Environment& e) override;
};

}  // namespace faultstudy::recovery
