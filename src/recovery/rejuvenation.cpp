#include "recovery/rejuvenation.hpp"

#include "recovery/perturbation.hpp"

namespace faultstudy::recovery {

void Rejuvenation::attach(apps::SimApp& app, env::Environment& e) {
  (void)app;
  e.scheduler().set_replay_bias(ReplayBias::kRejuvenation);
}

RecoveryAction Rejuvenation::recover(apps::SimApp& app, env::Environment& e) {
  e.advance(RecoveryCosts::kRejuvenation);
  sweep_application(app, e);
  app.rejuvenate(e);
  RecoveryAction action;
  action.recovered = app.running();
  action.rewind_items = 0;
  FS_TELEM(e.counters(), recovery.rejuvenation_cycles++);
  FS_FORENSIC(e.flight(), record(forensics::FlightCode::kRejuvenation));
  FS_COVER(e.coverage(), hit(obs::Site::kRecRejuvenation));
  return action;
}

void ScheduledRejuvenation::attach(apps::SimApp& app, env::Environment& e) {
  (void)app;
  e.scheduler().set_replay_bias(0.0);
  since_ = 0;
  proactive_ = 0;
}

void ScheduledRejuvenation::on_item_success(apps::SimApp& app,
                                            env::Environment& e) {
  if (++since_ < interval_) return;
  since_ = 0;
  ++proactive_;
  // Proactive pass: cheaper than crash recovery because it runs at a
  // quiescent point (no failed operation to clean up after).
  e.advance(RecoveryCosts::kRejuvenation / 2);
  sweep_application(app, e);
  app.rejuvenate(e);
  FS_TELEM(e.counters(), recovery.proactive_rejuvenations++);
  FS_FORENSIC(e.flight(), record(forensics::FlightCode::kRejuvenation, 1));
  FS_COVER(e.coverage(), hit(obs::Site::kRecProactiveRejuvenation));
}

RecoveryAction ScheduledRejuvenation::recover(apps::SimApp& app,
                                              env::Environment& e) {
  // The schedule missed (a failure still happened): fall back to reactive
  // rejuvenation.
  e.advance(RecoveryCosts::kRejuvenation);
  sweep_application(app, e);
  app.rejuvenate(e);
  since_ = 0;
  RecoveryAction action;
  action.recovered = app.running();
  FS_TELEM(e.counters(), recovery.rejuvenation_cycles++);
  FS_FORENSIC(e.flight(), record(forensics::FlightCode::kRejuvenation));
  FS_COVER(e.coverage(), hit(obs::Site::kRecRejuvenation));
  return action;
}

}  // namespace faultstudy::recovery
