#include "recovery/app_specific.hpp"

#include "recovery/perturbation.hpp"

namespace faultstudy::recovery {

bool app_recoverable(core::Trigger trigger) noexcept {
  using core::Trigger;
  switch (trigger) {
    // Conditions no application code can clear.
    case Trigger::kHardwareRemoval:         // the card is physically gone
    case Trigger::kFullFileSystem:          // other tenants' data fills it
    case Trigger::kExternalSocketLeak:      // another program holds them
    case Trigger::kNetworkResourceExhausted:// opaque kernel pool
    case Trigger::kReverseDnsMissing:       // remote nameserver config
      return false;
    default:
      return true;
  }
}

void AppSpecific::attach(apps::SimApp& app, env::Environment& e) {
  (void)app;
  e.scheduler().set_replay_bias(ReplayBias::kAppSpecific);
  counters_ = e.counters();
  flight_ = e.flight();
  coverage_ = e.coverage();
}

RecoveryAction AppSpecific::recover(apps::SimApp& app, env::Environment& e) {
  e.advance(RecoveryCosts::kAppSpecific);
  sweep_application(app, e);
  // The application's own recovery code: reclaim everything it holds,
  // re-read cached environmental facts, rebuild poisoned state.
  app.rejuvenate(e);
  // And wrap the operation that failed with error checking so a
  // deterministic killer input is rejected instead of re-crashing.
  sanitize_next_ = true;
  RecoveryAction action;
  action.recovered = app.running();
  action.rewind_items = 0;
  return action;
}

void AppSpecific::prepare_retry(apps::WorkItem& item) {
  if (sanitize_next_) {
    if (item.poison) {
      // The error-checking wrapper answers the killer request with an error
      // page instead of handing it to the buggy code path.
      item.poison = false;
      item.op = std::string(apps::kRejectedOp);
      FS_TELEM(counters_, recovery.retries_sanitized++);
      FS_FORENSIC(flight_,
                  record(forensics::FlightCode::kRetrySanitized, item.id));
      FS_COVER(coverage_, hit(obs::Site::kRecRetrySanitized));
    }
    sanitize_next_ = false;
  }
}

}  // namespace faultstudy::recovery
