// Process pairs [Gray86]: a backup process shadows the primary, its state
// synchronized after every operation. On failure the backup — holding the
// complete application state — takes over. Purely generic: no application
// knowledge, full state preservation. Survives exactly the faults whose
// triggering condition changed by the time the backup retries.
#pragma once

#include "recovery/mechanism.hpp"

namespace faultstudy::recovery {

class ProcessPairs final : public Mechanism {
 public:
  std::string_view name() const noexcept override { return "process-pairs"; }
  bool is_generic() const noexcept override { return true; }
  bool preserves_state() const noexcept override { return true; }

  void attach(apps::SimApp& app, env::Environment& e) override;
  void on_item_success(apps::SimApp& app, env::Environment& e) override;
  RecoveryAction recover(apps::SimApp& app, env::Environment& e) override;

 private:
  apps::SnapshotPtr backup_;
};

}  // namespace faultstudy::recovery
