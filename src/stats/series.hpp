// Per-bucket class-count series: the data behind Figures 1-3, plus the
// shape checks the paper states in prose.
#pragma once

#include <map>
#include <span>
#include <string>
#include <vector>

#include "core/aggregate.hpp"

namespace faultstudy::stats {

struct SeriesPoint {
  int bucket = 0;
  std::string label;  ///< release version or time period
  core::ClassCounts counts;
};

/// Builds the series for one application, with human-readable bucket labels.
std::vector<SeriesPoint> build_series(std::span<const core::Fault> faults,
                                      core::AppId app,
                                      const std::vector<std::string>& labels);

/// Shape property 1 (Apache/MySQL figures): total faults grow with newer
/// releases. Checked as: Spearman-style monotone trend — returns the
/// fraction of consecutive pairs that are non-decreasing, over the series
/// excluding the final bucket if `ignore_last` (MySQL's newest release is
/// "very new" and undercounted).
double growth_fraction(std::span<const SeriesPoint> series, bool ignore_last);

/// Shape property 2: the EI proportion stays roughly constant. Returns the
/// max absolute deviation of per-bucket EI share from the overall share
/// (buckets with fewer than `min_bucket` faults are skipped as noise).
double max_ei_share_deviation(std::span<const SeriesPoint> series,
                              std::size_t min_bucket = 3);

/// GNOME shape property: a dip — some interior bucket is strictly below
/// both some earlier and some later bucket total.
bool has_interior_dip(std::span<const SeriesPoint> series);

}  // namespace faultstudy::stats
