// Chi-square tests over class-count tables.
//
// Used to back the paper's prose claims statistically: "the relative
// proportion of environment-independent bugs stays about the same even for
// new releases" is a homogeneity test across release buckets, and the
// three applications' class distributions can be compared the same way.
#pragma once

#include <cstddef>
#include <vector>

namespace faultstudy::stats {

struct ChiSquareResult {
  double statistic = 0.0;
  std::size_t dof = 0;
  double p_value = 1.0;
  /// False when expected counts are too small for the test to mean much
  /// (any expected cell < 1, or >20% of cells below 5).
  bool reliable = true;
};

/// Test of homogeneity over an r x c contingency table (rows: groups,
/// columns: categories). Rows or columns that are entirely zero are dropped.
ChiSquareResult chi_square(const std::vector<std::vector<std::size_t>>& table);

/// Upper-tail probability of the chi-square distribution with `dof` degrees
/// of freedom (regularized incomplete gamma Q(dof/2, x/2)).
double chi_square_tail(double x, std::size_t dof);

}  // namespace faultstudy::stats
