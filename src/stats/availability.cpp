#include "stats/availability.hpp"

#include <cmath>
#include <limits>

namespace faultstudy::stats {

AvailabilityResult estimate_availability(const SurvivalProfile& profile,
                                         const AvailabilityParams& params) {
  AvailabilityResult r;
  const double ops_per_day = params.ops_per_second * 86400.0;

  double masked_per_day = 0.0;
  double unmasked_per_day = 0.0;
  for (std::size_t c = 0; c < 3; ++c) {
    const double encounters_per_day =
        params.faults_per_million_ops[c] * ops_per_day / 1e6;
    const double s = profile.survival[c];
    masked_per_day += encounters_per_day * s;
    unmasked_per_day += encounters_per_day * (1.0 - s);
  }

  r.masked_failures_per_day = masked_per_day;
  r.outages_per_day = unmasked_per_day;
  r.downtime_s_per_day = masked_per_day * params.recovery_pause_s +
                         unmasked_per_day * params.outage_s;
  // Clamp: a pathological parameterization cannot exceed the day.
  if (r.downtime_s_per_day > 86400.0) r.downtime_s_per_day = 86400.0;
  r.availability = 1.0 - r.downtime_s_per_day / 86400.0;
  r.mtbf_hours = unmasked_per_day > 0.0 ? 24.0 / unmasked_per_day
                                        : std::numeric_limits<double>::infinity();
  return r;
}

double nines(double availability) {
  if (availability >= 1.0) return std::numeric_limits<double>::infinity();
  if (availability <= 0.0) return 0.0;
  return -std::log10(1.0 - availability);
}

}  // namespace faultstudy::stats
