#include "stats/chisq.hpp"

#include <cmath>

namespace faultstudy::stats {

namespace {

/// Regularized lower incomplete gamma P(a, x) via series (x < a+1) or
/// continued fraction (x >= a+1); standard Numerical-Recipes-style forms.
double gamma_p(double a, double x) {
  if (x <= 0.0) return 0.0;
  const double gln = std::lgamma(a);
  if (x < a + 1.0) {
    // Series representation.
    double ap = a;
    double sum = 1.0 / a;
    double del = sum;
    for (int i = 0; i < 500; ++i) {
      ap += 1.0;
      del *= x / ap;
      sum += del;
      if (std::fabs(del) < std::fabs(sum) * 1e-14) break;
    }
    return sum * std::exp(-x + a * std::log(x) - gln);
  }
  // Continued fraction for Q, then P = 1 - Q.
  double b = x + 1.0 - a;
  double c = 1e308;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i < 500; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < 1e-300) d = 1e-300;
    c = b + an / c;
    if (std::fabs(c) < 1e-300) c = 1e-300;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < 1e-14) break;
  }
  const double q = std::exp(-x + a * std::log(x) - gln) * h;
  return 1.0 - q;
}

}  // namespace

double chi_square_tail(double x, std::size_t dof) {
  if (dof == 0) return 1.0;
  return 1.0 - gamma_p(static_cast<double>(dof) / 2.0, x / 2.0);
}

ChiSquareResult chi_square(
    const std::vector<std::vector<std::size_t>>& table) {
  ChiSquareResult result;

  // Drop all-zero rows/columns.
  std::vector<std::vector<double>> t;
  std::size_t cols = 0;
  for (const auto& row : table) cols = std::max(cols, row.size());
  std::vector<double> col_sums(cols, 0.0);
  for (const auto& row : table) {
    double row_sum = 0.0;
    for (auto v : row) row_sum += static_cast<double>(v);
    if (row_sum == 0.0) continue;
    std::vector<double> r(cols, 0.0);
    for (std::size_t j = 0; j < row.size(); ++j) {
      r[j] = static_cast<double>(row[j]);
      col_sums[j] += r[j];
    }
    t.push_back(std::move(r));
  }
  std::vector<std::size_t> keep;
  for (std::size_t j = 0; j < cols; ++j) {
    if (col_sums[j] > 0.0) keep.push_back(j);
  }
  if (t.size() < 2 || keep.size() < 2) {
    result.reliable = false;
    return result;
  }

  double total = 0.0;
  std::vector<double> row_sums(t.size(), 0.0);
  for (std::size_t i = 0; i < t.size(); ++i) {
    for (std::size_t j : keep) row_sums[i] += t[i][j];
    total += row_sums[i];
  }

  double stat = 0.0;
  std::size_t small_cells = 0;
  std::size_t cells = 0;
  for (std::size_t i = 0; i < t.size(); ++i) {
    for (std::size_t j : keep) {
      double col_sum = 0.0;
      for (std::size_t k = 0; k < t.size(); ++k) col_sum += t[k][j];
      const double expected = row_sums[i] * col_sum / total;
      ++cells;
      if (expected < 5.0) ++small_cells;
      if (expected < 1.0) result.reliable = false;
      const double diff = t[i][j] - expected;
      stat += diff * diff / expected;
    }
  }
  if (small_cells * 5 > cells) result.reliable = false;

  result.statistic = stat;
  result.dof = (t.size() - 1) * (keep.size() - 1);
  result.p_value = chi_square_tail(stat, result.dof);
  return result;
}

}  // namespace faultstudy::stats
