#include "stats/ci.hpp"

#include <algorithm>
#include <cmath>

#include "util/rng.hpp"

namespace faultstudy::stats {

Interval wilson(std::size_t successes, std::size_t trials, double z) {
  Interval iv;
  if (trials == 0) return iv;
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  iv.point = p;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double half =
      (z / denom) * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n));
  iv.lower = std::max(0.0, center - half);
  iv.upper = std::min(1.0, center + half);
  return iv;
}

Interval bootstrap_statistic(
    std::span<const double> values,
    const std::function<double(std::span<const double>)>& statistic,
    std::size_t resamples, double confidence, std::uint64_t seed) {
  Interval iv;
  if (values.empty()) return iv;
  iv.point = statistic(values);
  if (values.size() == 1) {
    iv.lower = iv.upper = iv.point;
    return iv;
  }

  util::Rng rng(seed);
  std::vector<double> sample(values.size());
  std::vector<double> stats;
  stats.reserve(resamples);
  for (std::size_t r = 0; r < resamples; ++r) {
    for (auto& v : sample) {
      v = values[static_cast<std::size_t>(rng.below(values.size()))];
    }
    stats.push_back(statistic(sample));
  }
  std::sort(stats.begin(), stats.end());
  const double alpha = (1.0 - confidence) / 2.0;
  const auto at = [&](double q) {
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(stats.size() - 1) + 0.5);
    return stats[std::min(idx, stats.size() - 1)];
  };
  iv.lower = at(alpha);
  iv.upper = at(1.0 - alpha);
  return iv;
}

Interval bootstrap_mean(std::span<const double> values, std::size_t resamples,
                        double confidence, std::uint64_t seed) {
  return bootstrap_statistic(
      values,
      [](std::span<const double> v) {
        double s = 0.0;
        for (double x : v) s += x;
        return s / static_cast<double>(v.size());
      },
      resamples, confidence, seed);
}

}  // namespace faultstudy::stats
