// Availability model: what the fault-class mix and a mechanism's per-class
// survival imply for service availability.
//
// The paper's "so what": if only 5-14% of faults are transient, a generic
// recovery layer converts only that slice of failures into brief hiccups;
// the rest remain full outages until a human intervenes. This model makes
// the argument quantitative. It is a steady-state renewal argument, not a
// simulation: failures arrive at a rate proportional to the class mix;
// survived failures cost a recovery pause, unsurvived ones an operator
// outage.
#pragma once

#include <array>

#include "core/aggregate.hpp"

namespace faultstudy::stats {

/// Per-class probability that the mechanism survives a fault of the class.
struct SurvivalProfile {
  std::array<double, 3> survival{};  ///< indexed by core::FaultClass
};

struct AvailabilityParams {
  /// Fault encounters per million operations, per class. Defaults scale the
  /// study's 139-fault class mix (81.3% / 10.1% / 8.6%) onto a nominal one
  /// encounter per ten million operations: EI bugs dominate encounters just
  /// as they dominate the bug population.
  std::array<double, 3> faults_per_million_ops{0.0813, 0.0101, 0.0086};
  /// Seconds of service pause when recovery masks the failure.
  double recovery_pause_s = 5.0;
  /// Seconds of outage when it does not (page an operator, diagnose, fix).
  double outage_s = 3600.0;
  /// Operation throughput, ops/second.
  double ops_per_second = 100.0;
};

struct AvailabilityResult {
  double availability = 1.0;          ///< uptime fraction in steady state
  double downtime_s_per_day = 0.0;
  double masked_failures_per_day = 0.0;
  double outages_per_day = 0.0;
  /// Mean time between *unmasked* failures, in hours.
  double mtbf_hours = 0.0;
};

AvailabilityResult estimate_availability(const SurvivalProfile& profile,
                                         const AvailabilityParams& params = {});

/// Nines formatting helper: 0.99953 -> "3.3 nines".
double nines(double availability);

}  // namespace faultstudy::stats
