// Confidence intervals for proportions.
//
// The study's headline numbers are proportions over modest samples (e.g.
// 7/50 transient faults); Wilson intervals give honest uncertainty bands
// without the normal-approximation pathologies at small n, and the
// bootstrap handles derived statistics.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

namespace faultstudy::stats {

struct Interval {
  double lower = 0.0;
  double point = 0.0;
  double upper = 0.0;
};

/// Wilson score interval for a binomial proportion. `z` defaults to the
/// 95% normal quantile.
Interval wilson(std::size_t successes, std::size_t trials, double z = 1.96);

/// Percentile-bootstrap interval for the mean of `values`.
/// Deterministic in `seed`.
Interval bootstrap_mean(std::span<const double> values,
                        std::size_t resamples = 2000,
                        double confidence = 0.95, std::uint64_t seed = 17);

/// Percentile-bootstrap interval for an arbitrary statistic computed on a
/// resampled copy of `values`.
Interval bootstrap_statistic(
    std::span<const double> values,
    const std::function<double(std::span<const double>)>& statistic,
    std::size_t resamples = 2000, double confidence = 0.95,
    std::uint64_t seed = 17);

}  // namespace faultstudy::stats
