#include "stats/series.hpp"

#include <algorithm>
#include <cmath>

namespace faultstudy::stats {

std::vector<SeriesPoint> build_series(std::span<const core::Fault> faults,
                                      core::AppId app,
                                      const std::vector<std::string>& labels) {
  const auto buckets = core::tally_by_bucket(faults, app);
  std::vector<SeriesPoint> out;
  // Emit every labeled bucket, including empty ones, so figures keep their
  // full x-axis.
  const int max_bucket =
      buckets.empty() ? static_cast<int>(labels.size()) - 1
                      : std::max(static_cast<int>(labels.size()) - 1,
                                 buckets.rbegin()->first);
  for (int b = 0; b <= max_bucket; ++b) {
    SeriesPoint p;
    p.bucket = b;
    p.label = b < static_cast<int>(labels.size()) ? labels[static_cast<std::size_t>(b)]
                                                  : "bucket-" + std::to_string(b);
    auto it = buckets.find(b);
    if (it != buckets.end()) p.counts = it->second;
    out.push_back(std::move(p));
  }
  return out;
}

double growth_fraction(std::span<const SeriesPoint> series, bool ignore_last) {
  const std::size_t n = series.size() - (ignore_last && !series.empty() ? 1 : 0);
  if (n < 2) return 1.0;
  std::size_t nondecreasing = 0;
  for (std::size_t i = 1; i < n; ++i) {
    if (series[i].counts.total() >= series[i - 1].counts.total()) {
      ++nondecreasing;
    }
  }
  return static_cast<double>(nondecreasing) / static_cast<double>(n - 1);
}

double max_ei_share_deviation(std::span<const SeriesPoint> series,
                              std::size_t min_bucket) {
  core::ClassCounts overall;
  for (const auto& p : series) overall += p.counts;
  if (overall.total() == 0) return 0.0;
  const double base =
      overall.fraction(core::FaultClass::kEnvironmentIndependent);
  double max_dev = 0.0;
  for (const auto& p : series) {
    if (p.counts.total() < min_bucket) continue;
    const double share =
        p.counts.fraction(core::FaultClass::kEnvironmentIndependent);
    max_dev = std::max(max_dev, std::fabs(share - base));
  }
  return max_dev;
}

bool has_interior_dip(std::span<const SeriesPoint> series) {
  for (std::size_t i = 1; i + 1 < series.size(); ++i) {
    const std::size_t here = series[i].counts.total();
    bool lower_before = false;
    bool lower_after = false;
    for (std::size_t j = 0; j < i; ++j) {
      if (series[j].counts.total() > here) lower_before = true;
    }
    for (std::size_t j = i + 1; j < series.size(); ++j) {
      if (series[j].counts.total() > here) lower_after = true;
    }
    if (lower_before && lower_after) return true;
  }
  return false;
}

}  // namespace faultstudy::stats
