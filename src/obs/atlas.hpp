// The study coverage atlas: what the fault matrix actually exercised.
//
// A run of the recovery matrix claims to cover a space — every taxonomy
// cell (fault class × trigger), every injectable fault site, every
// environment failure branch, every recovery-state-machine edge. The atlas
// is the machine-checked record of that claim: per-probe hit counts, the
// never-hit "blind spot" list, per-specimen coverage vectors, and the
// mechanism × trigger recovery grid.
//
// Determinism: run_matrix gives every (mechanism, seed) cell its own
// CoverageMap in a per-index slot and folds them here serially in index
// order, so an atlas — and every artifact rendered from it — is
// bit-identical for any `--threads` value.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/taxonomy.hpp"
#include "corpus/seeds.hpp"
#include "obs/probes.hpp"

namespace faultstudy::obs {

/// Stable export name of a structural probe, e.g. "env/fd_denied".
std::string_view site_name(Site site) noexcept;

/// Stable export name of an injection-site probe, e.g. "inject/race_condition".
std::string inject_site_name(core::Trigger trigger);

/// Section prefix of a structural probe ("env", "app", "recovery", "trial").
std::string_view site_section(Site site) noexcept;

/// Union coverage of one specimen across every mechanism and repeat that
/// exercised it, in seed order.
struct SpecimenCoverage {
  std::string fault_id;
  core::AppId app = core::AppId::kApache;
  core::Trigger trigger = core::Trigger::kBoundaryInput;
  core::FaultClass fault_class = core::FaultClass::kEnvironmentIndependent;
  std::uint64_t trials = 0;
  CoverageMap probes;

  bool operator==(const SpecimenCoverage&) const = default;
};

/// One mechanism's recovery grid over the trigger axis: how many trials of
/// each trigger observed the fault, and how many of those survived.
struct MechanismGrid {
  std::string mechanism;
  std::array<std::uint64_t, core::kNumTriggers> observed{};
  std::array<std::uint64_t, core::kNumTriggers> survived{};

  bool operator==(const MechanismGrid&) const = default;
};

class CoverageAtlas {
 public:
  /// Registers the specimen axis up front (seed order), so per-specimen
  /// vectors exist — and report zero coverage — even for seeds whose cells
  /// never ran. Serial-only; call before a parallel sweep folds into it.
  void begin_study(const std::vector<corpus::SeedFault>& seeds,
                   const std::vector<std::string>& mechanisms);

  /// Folds one matrix cell: the merged coverage of every repeat of
  /// (mechanism, seed), plus the cell's observed/survived trial counts.
  /// Serial-only, called in index order by run_matrix's reduction.
  void fold_cell(std::size_t mechanism_index, std::size_t seed_index,
                 const CoverageMap& probes, std::uint64_t trials,
                 std::uint64_t observed, std::uint64_t survived);

  /// Folds a single stand-alone trial (simulate / recovery_lab paths).
  void fold_trial(const corpus::SeedFault& seed, const CoverageMap& probes);

  // --- the folded planes ---
  const CoverageMap& totals() const noexcept { return totals_; }
  const std::vector<SpecimenCoverage>& specimens() const noexcept {
    return specimens_;
  }
  const std::vector<MechanismGrid>& grids() const noexcept { return grids_; }
  std::uint64_t trials() const noexcept { return trials_; }

  // --- derived coverage summaries ---
  /// Structural + injection probes with at least one hit.
  std::size_t probes_hit() const noexcept { return totals_.probes_hit(); }
  /// Full universe the study claims: kProbeUniverse.
  static constexpr std::size_t probe_universe() noexcept {
    return kProbeUniverse;
  }
  /// Taxonomy cells (fault class × trigger; each trigger names exactly one
  /// reachable cell) whose injection site was armed at least once.
  std::size_t cells_covered() const noexcept;
  static constexpr std::size_t cell_universe() noexcept {
    return core::kNumTriggers;
  }
  /// Names of probes that no trial ever hit, in export order (structural
  /// sites first, then injection sites).
  std::vector<std::string> blind_spots() const;

  bool operator==(const CoverageAtlas&) const = default;

 private:
  CoverageMap totals_;
  std::vector<SpecimenCoverage> specimens_;
  std::vector<MechanismGrid> grids_;
  std::uint64_t trials_ = 0;
};

}  // namespace faultstudy::obs
