#include "obs/baseline.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/json.hpp"

namespace faultstudy::obs {

namespace {

/// Exact fraction of two integer counts; 0 when the denominator is zero
/// (matches MechanismReport::survival_rate).
double fraction(std::uint64_t num, std::uint64_t den) noexcept {
  return den == 0 ? 0.0
                  : static_cast<double>(num) / static_cast<double>(den);
}

constexpr std::string_view kClassCodes[3] = {"ei", "edn", "edt"};

}  // namespace

std::uint64_t StudySnapshot::probes_hit() const noexcept {
  std::uint64_t n = 0;
  for (const ProbeRow& p : probes) n += p.hits > 0 ? 1 : 0;
  return n;
}

std::uint64_t StudySnapshot::blind_spot_count() const noexcept {
  std::uint64_t n = 0;
  for (const ProbeRow& p : probes) n += p.hits == 0 ? 1 : 0;
  return n;
}

std::uint64_t StudySnapshot::cells_covered() const noexcept {
  std::uint64_t n = 0;
  for (const ProbeRow& p : probes) {
    if (p.name.starts_with("inject/") && p.hits > 0) ++n;
  }
  return n;
}

StudySnapshot build_snapshot(const std::vector<corpus::SeedFault>& seeds,
                             const harness::MatrixResult& matrix,
                             const CoverageAtlas& atlas,
                             const telemetry::MetricsSnapshot& metrics,
                             std::uint64_t seed, int repeats) {
  StudySnapshot snap;
  snap.seed = seed;
  snap.repeats = repeats;
  snap.trials = atlas.trials();

  for (const core::AppId app : core::kAllApps) {
    StudySnapshot::ClassRow row;
    row.app = std::string(core::to_string(app));
    for (const corpus::SeedFault& s : seeds) {
      if (s.app != app) continue;
      ++row.counts[static_cast<std::size_t>(corpus::seed_class(s))];
    }
    snap.classes.push_back(std::move(row));
  }

  for (const harness::MechanismReport& report : matrix.reports) {
    StudySnapshot::MatrixRow row;
    row.mechanism = report.mechanism;
    row.generic = report.generic;
    for (std::size_t c = 0; c < 3; ++c) {
      row.survived[c] = report.survived[c];
      row.total[c] = report.total[c];
    }
    row.vacuous = report.vacuous;
    row.state_losses = report.state_losses;
    snap.matrix.push_back(std::move(row));
  }

  const CoverageMap& totals = atlas.totals();
  for (std::size_t i = 0; i < kNumSites; ++i) {
    snap.probes.push_back(
        {std::string(site_name(static_cast<Site>(i))), totals.sites[i]});
  }
  for (std::size_t i = 0; i < core::kNumTriggers; ++i) {
    snap.probes.push_back(
        {inject_site_name(static_cast<core::Trigger>(i)), totals.inject[i]});
  }

  for (const SpecimenCoverage& sc : atlas.specimens()) {
    snap.specimens.push_back(
        {sc.fault_id, static_cast<std::uint64_t>(sc.probes.probes_hit()),
         sc.trials});
  }

  for (const telemetry::MetricsSnapshot::Counter& c : metrics.counters) {
    snap.counters.push_back({c.name, c.value});
  }

  return snap;
}

std::string to_json(const StudySnapshot& snap) {
  std::ostringstream out;
  out << "{\n";
  out << "  \"schema\": \"" << util::json::escape(snap.schema) << "\",\n";
  out << "  \"seed\": " << snap.seed << ",\n";
  out << "  \"repeats\": " << snap.repeats << ",\n";
  out << "  \"trials\": " << snap.trials << ",\n";
  out << "  \"classes\": [\n";
  for (std::size_t i = 0; i < snap.classes.size(); ++i) {
    const auto& row = snap.classes[i];
    out << "    {\"app\": \"" << util::json::escape(row.app) << "\"";
    for (std::size_t c = 0; c < 3; ++c) {
      out << ", \"" << kClassCodes[c] << "\": " << row.counts[c];
    }
    out << "}" << (i + 1 < snap.classes.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"matrix\": [\n";
  for (std::size_t i = 0; i < snap.matrix.size(); ++i) {
    const auto& row = snap.matrix[i];
    out << "    {\"mechanism\": \"" << util::json::escape(row.mechanism)
        << "\", \"generic\": " << (row.generic ? "true" : "false")
        << ", \"survived\": [" << row.survived[0] << ", " << row.survived[1]
        << ", " << row.survived[2] << "], \"total\": [" << row.total[0]
        << ", " << row.total[1] << ", " << row.total[2]
        << "], \"vacuous\": " << row.vacuous
        << ", \"state_losses\": " << row.state_losses << "}"
        << (i + 1 < snap.matrix.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"probes\": [\n";
  for (std::size_t i = 0; i < snap.probes.size(); ++i) {
    out << "    {\"name\": \"" << util::json::escape(snap.probes[i].name)
        << "\", \"hits\": " << snap.probes[i].hits << "}"
        << (i + 1 < snap.probes.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"specimens\": [\n";
  for (std::size_t i = 0; i < snap.specimens.size(); ++i) {
    const auto& row = snap.specimens[i];
    out << "    {\"fault_id\": \"" << util::json::escape(row.fault_id)
        << "\", \"probes_hit\": " << row.probes_hit
        << ", \"trials\": " << row.trials << "}"
        << (i + 1 < snap.specimens.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"counters\": [\n";
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    out << "    {\"name\": \"" << util::json::escape(snap.counters[i].name)
        << "\", \"value\": " << snap.counters[i].value << "}"
        << (i + 1 < snap.counters.size() ? "," : "") << "\n";
  }
  out << "  ]\n";
  out << "}\n";
  return out.str();
}

util::Result<StudySnapshot> parse_snapshot(std::string_view text) {
  auto parsed = util::json::parse(text);
  if (!parsed.ok()) return util::Err{parsed.error()};
  const util::json::Value& root = parsed.value();
  if (!root.is_object()) return util::Err{std::string("snapshot not an object")};

  StudySnapshot snap;
  snap.schema = root.string_or("schema", "");
  if (snap.schema != kBaselineSchema) {
    return util::Err{"unsupported snapshot schema '" + snap.schema + "'"};
  }
  snap.seed = static_cast<std::uint64_t>(root.int_or("seed", 0));
  snap.repeats = root.int_or("repeats", 0);
  snap.trials = static_cast<std::uint64_t>(root.int_or("trials", 0));

  if (const util::json::Value* classes = root.find("classes");
      classes != nullptr && classes->is_array()) {
    for (const util::json::Value& v : classes->array) {
      StudySnapshot::ClassRow row;
      row.app = v.string_or("app", "");
      for (std::size_t c = 0; c < 3; ++c) {
        row.counts[c] = static_cast<std::uint64_t>(v.int_or(kClassCodes[c], 0));
      }
      snap.classes.push_back(std::move(row));
    }
  }
  if (const util::json::Value* matrix = root.find("matrix");
      matrix != nullptr && matrix->is_array()) {
    for (const util::json::Value& v : matrix->array) {
      StudySnapshot::MatrixRow row;
      row.mechanism = v.string_or("mechanism", "");
      if (const util::json::Value* g = v.find("generic"); g != nullptr) {
        row.generic = g->boolean;
      }
      const util::json::Value* survived = v.find("survived");
      const util::json::Value* total = v.find("total");
      for (std::size_t c = 0; c < 3; ++c) {
        if (survived != nullptr && c < survived->array.size()) {
          row.survived[c] =
              static_cast<std::uint64_t>(survived->array[c].integer);
        }
        if (total != nullptr && c < total->array.size()) {
          row.total[c] = static_cast<std::uint64_t>(total->array[c].integer);
        }
      }
      row.vacuous = static_cast<std::uint64_t>(v.int_or("vacuous", 0));
      row.state_losses =
          static_cast<std::uint64_t>(v.int_or("state_losses", 0));
      snap.matrix.push_back(std::move(row));
    }
  }
  if (const util::json::Value* probes = root.find("probes");
      probes != nullptr && probes->is_array()) {
    for (const util::json::Value& v : probes->array) {
      snap.probes.push_back({v.string_or("name", ""),
                             static_cast<std::uint64_t>(v.int_or("hits", 0))});
    }
  }
  if (const util::json::Value* specimens = root.find("specimens");
      specimens != nullptr && specimens->is_array()) {
    for (const util::json::Value& v : specimens->array) {
      snap.specimens.push_back(
          {v.string_or("fault_id", ""),
           static_cast<std::uint64_t>(v.int_or("probes_hit", 0)),
           static_cast<std::uint64_t>(v.int_or("trials", 0))});
    }
  }
  if (const util::json::Value* counters = root.find("counters");
      counters != nullptr && counters->is_array()) {
    for (const util::json::Value& v : counters->array) {
      snap.counters.push_back(
          {v.string_or("name", ""),
           static_cast<std::uint64_t>(v.int_or("value", 0))});
    }
  }
  return snap;
}

DriftReport diff(const StudySnapshot& baseline, const StudySnapshot& candidate,
                 const Tolerance& tolerance) {
  DriftReport report;
  auto fatal = [&report](std::string what) {
    report.findings.push_back({true, std::move(what)});
  };
  auto note = [&report](std::string what) {
    report.findings.push_back({false, std::move(what)});
  };

  if (baseline.schema != candidate.schema) {
    fatal("schema changed: '" + baseline.schema + "' -> '" + candidate.schema +
          "'");
    return report;
  }
  if (baseline.seed != candidate.seed) {
    note("study seed changed: " + std::to_string(baseline.seed) + " -> " +
         std::to_string(candidate.seed));
  }
  if (baseline.repeats != candidate.repeats) {
    note("matrix repeats changed: " + std::to_string(baseline.repeats) +
         " -> " + std::to_string(candidate.repeats));
  }
  if (baseline.trials != candidate.trials) {
    note("trial count changed: " + std::to_string(baseline.trials) + " -> " +
         std::to_string(candidate.trials));
  }

  // --- coverage: lost coverage and new blind spots are regressions ---
  for (const auto& b : baseline.probes) {
    const auto it = std::find_if(
        candidate.probes.begin(), candidate.probes.end(),
        [&b](const auto& c) { return c.name == b.name; });
    if (it == candidate.probes.end()) {
      if (b.hits > 0) fatal("probe disappeared: " + b.name);
      continue;
    }
    if (b.hits > 0 && it->hits == 0) {
      fatal("coverage lost (new blind spot): " + b.name);
    } else if (b.hits == 0 && it->hits > 0) {
      note("new coverage: " + b.name + " (" + std::to_string(it->hits) +
           " hits)");
    } else if (b.hits != it->hits) {
      note("probe " + b.name + " hits " + std::to_string(b.hits) + " -> " +
           std::to_string(it->hits));
    }
  }
  for (const auto& c : candidate.probes) {
    const bool known = std::any_of(
        baseline.probes.begin(), baseline.probes.end(),
        [&c](const auto& b) { return b.name == c.name; });
    if (!known) note("new probe: " + c.name);
  }
  if (candidate.cells_covered() < baseline.cells_covered()) {
    fatal("taxonomy cells covered fell: " +
          std::to_string(baseline.cells_covered()) + " -> " +
          std::to_string(candidate.cells_covered()));
  }

  // --- classification distribution ---
  for (const auto& b : baseline.classes) {
    const auto it = std::find_if(
        candidate.classes.begin(), candidate.classes.end(),
        [&b](const auto& c) { return c.app == b.app; });
    if (it == candidate.classes.end()) {
      fatal("app disappeared from classification: " + b.app);
      continue;
    }
    const std::uint64_t btotal = b.counts[0] + b.counts[1] + b.counts[2];
    const std::uint64_t ctotal =
        it->counts[0] + it->counts[1] + it->counts[2];
    for (std::size_t c = 0; c < 3; ++c) {
      const double delta = std::abs(fraction(it->counts[c], ctotal) -
                                    fraction(b.counts[c], btotal));
      if (delta > tolerance.class_fraction) {
        std::ostringstream what;
        what << b.app << " " << kClassCodes[c] << " fraction drifted by "
             << delta << " (tolerance " << tolerance.class_fraction << ")";
        fatal(what.str());
      } else if (b.counts[c] != it->counts[c]) {
        note(b.app + " " + std::string(kClassCodes[c]) + " count " +
             std::to_string(b.counts[c]) + " -> " +
             std::to_string(it->counts[c]));
      }
    }
  }

  // --- recovery success matrix ---
  for (const auto& b : baseline.matrix) {
    const auto it = std::find_if(
        candidate.matrix.begin(), candidate.matrix.end(),
        [&b](const auto& c) { return c.mechanism == b.mechanism; });
    if (it == candidate.matrix.end()) {
      fatal("mechanism disappeared from matrix: " + b.mechanism);
      continue;
    }
    for (std::size_t c = 0; c < 3; ++c) {
      const double delta = std::abs(fraction(it->survived[c], it->total[c]) -
                                    fraction(b.survived[c], b.total[c]));
      if (delta > tolerance.survival_rate) {
        std::ostringstream what;
        what << b.mechanism << " " << kClassCodes[c]
             << " survival rate drifted by " << delta << " (tolerance "
             << tolerance.survival_rate << ")";
        fatal(what.str());
      } else if (b.survived[c] != it->survived[c] ||
                 b.total[c] != it->total[c]) {
        note(b.mechanism + " " + std::string(kClassCodes[c]) + " cell " +
             std::to_string(b.survived[c]) + "/" + std::to_string(b.total[c]) +
             " -> " + std::to_string(it->survived[c]) + "/" +
             std::to_string(it->total[c]));
      }
    }
    if (b.vacuous != it->vacuous) {
      note(b.mechanism + " vacuous trials " + std::to_string(b.vacuous) +
           " -> " + std::to_string(it->vacuous));
    }
    if (b.state_losses != it->state_losses) {
      note(b.mechanism + " state losses " + std::to_string(b.state_losses) +
           " -> " + std::to_string(it->state_losses));
    }
  }
  for (const auto& c : candidate.matrix) {
    const bool known = std::any_of(
        baseline.matrix.begin(), baseline.matrix.end(),
        [&c](const auto& b) { return b.mechanism == c.mechanism; });
    if (!known) note("new mechanism in matrix: " + c.mechanism);
  }

  // --- specimen coverage vectors ---
  for (const auto& b : baseline.specimens) {
    const auto it = std::find_if(
        candidate.specimens.begin(), candidate.specimens.end(),
        [&b](const auto& c) { return c.fault_id == b.fault_id; });
    if (it == candidate.specimens.end()) {
      fatal("specimen disappeared: " + b.fault_id);
      continue;
    }
    if (it->probes_hit < b.probes_hit) {
      note("specimen " + b.fault_id + " coverage narrowed: " +
           std::to_string(b.probes_hit) + " -> " +
           std::to_string(it->probes_hit) + " probes");
    }
  }
  for (const auto& c : candidate.specimens) {
    const bool known = std::any_of(
        baseline.specimens.begin(), baseline.specimens.end(),
        [&c](const auto& b) { return b.fault_id == c.fault_id; });
    if (!known) note("new specimen: " + c.fault_id);
  }

  // --- telemetry counters (informational only) ---
  for (const auto& b : baseline.counters) {
    const auto it = std::find_if(
        candidate.counters.begin(), candidate.counters.end(),
        [&b](const auto& c) { return c.name == b.name; });
    if (it == candidate.counters.end()) {
      note("counter disappeared: " + b.name);
    } else if (it->value != b.value) {
      note("counter " + b.name + " " + std::to_string(b.value) + " -> " +
           std::to_string(it->value));
    }
  }

  return report;
}

std::string render_text(const DriftReport& report) {
  std::ostringstream out;
  if (report.empty()) {
    out << "no drift: candidate matches baseline\n";
    return out.str();
  }
  for (const Drift& d : report.findings) {
    if (d.fatal) out << "FATAL " << d.what << "\n";
  }
  for (const Drift& d : report.findings) {
    if (!d.fatal) out << "note  " << d.what << "\n";
  }
  out << report.fatal_count() << " fatal, "
      << report.findings.size() - report.fatal_count() << " notes\n";
  return out.str();
}

}  // namespace faultstudy::obs
