// Serializers for the coverage atlas. All output is deterministic given
// the atlas: probe rows come out in enum/export order, specimens in seed
// order, grids in roster order, and every number is an integer — so atlas
// exports compare byte for byte across thread counts.
#pragma once

#include <string>

#include "obs/atlas.hpp"
#include "telemetry/metrics.hpp"

namespace faultstudy::obs {

/// Machine-readable atlas JSON ("faultstudy-atlas/1"): summary, the full
/// probe universe with hit counts (zero-hit rows included), blind spots,
/// per-specimen coverage vectors, and the mechanism x trigger grids.
std::string to_json(const CoverageAtlas& atlas);

/// Human-readable atlas summary: coverage fractions, per-section probe
/// tables, and the blind-spot list.
std::string render_text(const CoverageAtlas& atlas);

/// Self-contained HTML heatmap of the mechanism x trigger recovery grid
/// plus the probe coverage tables. No external assets, no timestamps —
/// byte-identical for identical atlases.
std::string render_heatmap_html(const CoverageAtlas& atlas);

/// Publishes the atlas summary as registry gauges (coverage/probes_hit,
/// coverage/probe_universe, coverage/cells_covered, coverage/blind_spots,
/// coverage/trials) so the existing Prometheus/JSON telemetry exporters
/// surface coverage alongside the study metrics.
void export_gauges(const CoverageAtlas& atlas,
                   telemetry::MetricsRegistry& registry);

}  // namespace faultstudy::obs
