// Coverage-probe primitives: the compile-time gate, the probe site
// enumeration, and the plain per-trial CoverageMap instrumented components
// write into.
//
// A probe is the cheapest possible observation: "this branch ran". The atlas
// layer (obs/atlas.hpp) folds per-trial maps into a study-wide coverage
// atlas; this header is the hot-path half and follows the cost model of
// telemetry/counters.hpp and forensics/recorder.hpp exactly:
//
//   * disabled at compile time (-DFAULTSTUDY_COVERAGE=OFF): every FS_COVER
//     site expands to nothing — true zero overhead;
//   * compiled in but no sink attached (the default at runtime): one
//     predictable `ptr != nullptr` branch per site;
//   * attached: one array-indexed increment into a preallocated slot.
//
// Determinism contract: a trial is single-threaded and owns its CoverageMap;
// parallel sweeps give every matrix cell its own map in a per-index slot and
// merge serially in index order (the PR 2 contract), so the folded atlas is
// bit-identical for every thread count. Every value is an integer.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "core/taxonomy.hpp"

// CMake defines FAULTSTUDY_COVERAGE to 0 or 1; default to enabled for
// builds that bypass the option (e.g. direct compiler invocations).
#ifndef FAULTSTUDY_COVERAGE
#define FAULTSTUDY_COVERAGE 1
#endif

// Runs `expr` on the sink when coverage is compiled in and `sink` is
// non-null: FS_COVER(coverage_, hit(obs::Site::kEnvFdDenied)). The sink
// expression is evaluated exactly once.
#if FAULTSTUDY_COVERAGE
#define FS_COVER(sink, expr)              \
  do {                                    \
    if (auto* fs_cover_sink = (sink)) {   \
      fs_cover_sink->expr;                \
    }                                     \
  } while (0)
#else
// Disabled: the site still type-checks (so both build modes stay honest)
// but `if constexpr (false)` guarantees zero generated code, including the
// evaluation of `sink`.
#define FS_COVER(sink, expr)                \
  do {                                      \
    if constexpr (false) {                  \
      if (auto* fs_cover_sink = (sink)) {   \
        fs_cover_sink->expr;                \
      }                                     \
    }                                       \
  } while (0)
#endif

namespace faultstudy::obs {

/// Every structural coverage point the study claims to exercise, one
/// enumerator per distinct branch or state transition. Injectable fault
/// sites are NOT listed here — they are indexed by core::Trigger in the
/// CoverageMap's separate `inject` plane, one probe per arming recipe in
/// src/inject/registry.cpp.
enum class Site : std::uint16_t {
  // -- environment resource denial / failure branches --
  kEnvProcSpawnDenied = 0,  ///< process table full
  kEnvProcHung,             ///< a process stopped making progress
  kEnvFdDenied,             ///< descriptor pool exhausted
  kEnvDiskNoSpace,          ///< append refused: file system full
  kEnvDiskFileTooBig,       ///< append refused: per-file size limit
  kEnvDnsBroken,            ///< DNS forced into a non-healthy state
  kEnvDnsError,             ///< lookup returned an error
  kEnvDnsSlow,              ///< lookup answered past the latency budget
  kEnvDnsReverseMiss,       ///< reverse record not configured
  kEnvPortDenied,           ///< bind refused: port held by another owner
  kEnvKernelResourceDenied, ///< kernel network resource exhausted
  kEnvLinkDegraded,         ///< link forced slow or down
  kEnvSchedReplay,          ///< replay bias reproduced the last draw
  kEnvEntropyBlocked,       ///< read wanted more bits than the pool held
  kEnvSignalRaised,         ///< a signal was queued for delivery

  // -- application state transitions --
  kAppStarted,
  kAppStopped,
  kAppRestored,     ///< checkpoint state re-materialized
  kAppChildSpawned, ///< runaway/CGI child forked
  kAppWebRequest,   ///< web server served a request
  kAppWebCacheFill,
  kAppDbQuery,      ///< database answered a query
  kAppUiEvent,      ///< desktop handled a UI event

  // -- recovery-mechanism state-machine edges --
  kRecAttach,                 ///< mechanism attached to a running app
  kRecCheckpoint,             ///< state snapshot taken
  kRecRecoveryOk,             ///< recover() revived the app
  kRecRecoveryFailed,         ///< recover() itself failed
  kRecRollbackRewind,         ///< recovery rolled past completed items
  kRecFailover,               ///< process-pairs backup promotion
  kRecColdRestart,            ///< lossy stop+start cycle
  kRecRejuvenation,           ///< reactive rejuvenation pass
  kRecProactiveRejuvenation,  ///< scheduled (quiescent) pass
  kRecRetrySanitized,         ///< wrapper rejected a killer input
  kRecSweep,                  ///< kill-everything-owned sweep ran

  // -- trial verdict edges (the recovery protocol's terminal states) --
  kTrialSurvived,
  kTrialStartFailure,
  kTrialRetryCapExceeded,
  kTrialBudgetExhausted,
  kTrialRecoveryFailed,

  kCount,  // sentinel
};

inline constexpr std::size_t kNumSites = static_cast<std::size_t>(Site::kCount);

/// The per-trial probe sink. Two planes: structural sites (the Site enum)
/// and injectable fault sites (one per trigger recipe). Plain integer
/// arrays; a trial is single-threaded, so no atomics.
struct CoverageMap {
  std::array<std::uint64_t, kNumSites> sites{};
  std::array<std::uint64_t, core::kNumTriggers> inject{};

  void hit(Site site) noexcept {
    ++sites[static_cast<std::size_t>(site)];
  }
  void hit_inject(core::Trigger trigger) noexcept {
    ++inject[static_cast<std::size_t>(trigger)];
  }

  std::uint64_t count(Site site) const noexcept {
    return sites[static_cast<std::size_t>(site)];
  }
  std::uint64_t count_inject(core::Trigger trigger) const noexcept {
    return inject[static_cast<std::size_t>(trigger)];
  }

  /// Field-wise sum, for folding repeat trials of one matrix cell together
  /// and per-cell maps into the study atlas (serial, index order).
  void merge(const CoverageMap& other) noexcept {
    for (std::size_t i = 0; i < kNumSites; ++i) sites[i] += other.sites[i];
    for (std::size_t i = 0; i < core::kNumTriggers; ++i) {
      inject[i] += other.inject[i];
    }
  }

  /// Number of distinct probes (both planes) with at least one hit.
  std::size_t probes_hit() const noexcept {
    std::size_t n = 0;
    for (const std::uint64_t v : sites) n += v > 0 ? 1 : 0;
    for (const std::uint64_t v : inject) n += v > 0 ? 1 : 0;
    return n;
  }

  bool empty() const noexcept { return probes_hit() == 0; }

  bool operator==(const CoverageMap&) const = default;
};

/// Full probe universe: structural sites plus one injection site per
/// trigger. The atlas reports coverage as a fraction of this constant.
inline constexpr std::size_t kProbeUniverse =
    kNumSites + core::kNumTriggers;

}  // namespace faultstudy::obs
