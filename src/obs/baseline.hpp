// Differential regression observability: canonical study snapshots and
// structured drift reports.
//
// A StudySnapshot is the committed contract of what a full study run looks
// like: the classification distribution, the recovery success matrix, the
// coverage atlas (full probe universe, including zero-hit rows), and the
// study's deterministic telemetry counters. Every field is integer-valued
// and serializes to canonical JSON (fixed key order, stable row order), so
// `baselines/study_baseline.json` is byte-stable across runs and thread
// counts, and a textual diff of two snapshots is already meaningful.
//
// `diff` compares a candidate against a baseline and separates *fatal*
// drift (lost coverage, lost taxonomy cells, disappeared specimens or
// mechanisms, class-distribution or survival-rate shifts beyond the
// tolerance band) from *notes* (new coverage, hit-count and counter
// deltas). CI fails on `regressed()`.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "corpus/seeds.hpp"
#include "harness/experiment.hpp"
#include "obs/atlas.hpp"
#include "telemetry/metrics.hpp"
#include "util/result.hpp"

namespace faultstudy::obs {

inline constexpr std::string_view kBaselineSchema = "faultstudy-baseline/1";

struct StudySnapshot {
  std::string schema{kBaselineSchema};
  std::uint64_t seed = 0;
  std::int64_t repeats = 0;
  std::uint64_t trials = 0;

  /// Per-app fault-class counts (EI, EDN, EDT), app enum order.
  struct ClassRow {
    std::string app;
    std::array<std::uint64_t, 3> counts{};
    bool operator==(const ClassRow&) const = default;
  };
  std::vector<ClassRow> classes;

  /// Recovery success matrix, mechanism roster order.
  struct MatrixRow {
    std::string mechanism;
    bool generic = true;
    std::array<std::uint64_t, 3> survived{};
    std::array<std::uint64_t, 3> total{};
    std::uint64_t vacuous = 0;
    std::uint64_t state_losses = 0;
    bool operator==(const MatrixRow&) const = default;
  };
  std::vector<MatrixRow> matrix;

  /// Full probe universe in export order (structural sites, then injection
  /// sites) — zero-hit rows included so blind spots are part of the contract.
  struct ProbeRow {
    std::string name;
    std::uint64_t hits = 0;
    bool operator==(const ProbeRow&) const = default;
  };
  std::vector<ProbeRow> probes;

  /// Per-specimen coverage vector summary, seed order.
  struct SpecimenRow {
    std::string fault_id;
    std::uint64_t probes_hit = 0;
    std::uint64_t trials = 0;
    bool operator==(const SpecimenRow&) const = default;
  };
  std::vector<SpecimenRow> specimens;

  /// Deterministic (sim-domain) telemetry counters, name order.
  struct CounterRow {
    std::string name;
    std::uint64_t value = 0;
    bool operator==(const CounterRow&) const = default;
  };
  std::vector<CounterRow> counters;

  // --- derived summaries (recomputed, not stored) ---
  std::uint64_t probes_hit() const noexcept;
  std::uint64_t blind_spot_count() const noexcept;
  std::uint64_t cells_covered() const noexcept;

  bool operator==(const StudySnapshot&) const = default;
};

/// Builds the snapshot from one full study run. `metrics` may be an empty
/// snapshot (counters section comes out empty, e.g. telemetry-off builds).
StudySnapshot build_snapshot(const std::vector<corpus::SeedFault>& seeds,
                             const harness::MatrixResult& matrix,
                             const CoverageAtlas& atlas,
                             const telemetry::MetricsSnapshot& metrics,
                             std::uint64_t seed, int repeats);

/// Canonical JSON writer: fixed key order, two-space indent, integers only.
std::string to_json(const StudySnapshot& snapshot);

/// Parses a snapshot written by to_json (schema-checked).
util::Result<StudySnapshot> parse_snapshot(std::string_view text);

/// Tolerance bands for distribution drift. Rates are compared as exact
/// fractions of integer counts; a delta within the band is a note, beyond
/// it fatal.
struct Tolerance {
  /// Absolute drift allowed in a per-app fault-class fraction.
  double class_fraction = 0.02;
  /// Absolute drift allowed in a per-class survival rate of one mechanism.
  double survival_rate = 0.05;
};

/// One drift finding; `fatal` findings make the diff a regression.
struct Drift {
  bool fatal = false;
  std::string what;
  bool operator==(const Drift&) const = default;
};

struct DriftReport {
  std::vector<Drift> findings;

  bool empty() const noexcept { return findings.empty(); }
  bool regressed() const noexcept {
    for (const Drift& d : findings) {
      if (d.fatal) return true;
    }
    return false;
  }
  std::size_t fatal_count() const noexcept {
    std::size_t n = 0;
    for (const Drift& d : findings) n += d.fatal ? 1 : 0;
    return n;
  }
};

/// Structural comparison of candidate vs baseline.
DriftReport diff(const StudySnapshot& baseline, const StudySnapshot& candidate,
                 const Tolerance& tolerance = {});

/// Human-readable drift report (stable ordering; FATAL lines first).
std::string render_text(const DriftReport& report);

}  // namespace faultstudy::obs
