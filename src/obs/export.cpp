#include "obs/export.hpp"

#include <array>
#include <sstream>

#include "util/json.hpp"

namespace faultstudy::obs {

namespace {

constexpr std::string_view kSections[] = {"env", "app", "recovery", "trial"};

/// Sequential blue ramp (light -> dark), one hue; index picked by survival
/// fraction. Cell ink flips to white once the step is dark enough.
struct RampStep {
  std::string_view background;
  std::string_view ink;
};
constexpr RampStep kRamp[] = {
    {"#cde2fb", "#0b0b0b"}, {"#9ec5f4", "#0b0b0b"}, {"#6da7ec", "#0b0b0b"},
    {"#3987e5", "#ffffff"}, {"#256abf", "#ffffff"}, {"#184f95", "#ffffff"},
    {"#0d366b", "#ffffff"},
};
constexpr std::size_t kRampSteps = sizeof(kRamp) / sizeof(kRamp[0]);

/// Ramp index for `survived` out of `observed` (integer arithmetic only, so
/// the choice is deterministic): 0 survivors -> lightest, all -> darkest.
std::size_t ramp_index(std::uint64_t survived, std::uint64_t observed) {
  if (observed == 0 || survived == 0) return 0;
  if (survived >= observed) return kRampSteps - 1;
  return 1 + (survived * (kRampSteps - 2)) / observed;
}

}  // namespace

std::string to_json(const CoverageAtlas& atlas) {
  const CoverageMap& totals = atlas.totals();
  std::ostringstream out;
  out << "{\n";
  out << "  \"schema\": \"faultstudy-atlas/1\",\n";
  out << "  \"trials\": " << atlas.trials() << ",\n";
  out << "  \"probes_hit\": " << atlas.probes_hit() << ",\n";
  out << "  \"probe_universe\": " << CoverageAtlas::probe_universe() << ",\n";
  out << "  \"cells_covered\": " << atlas.cells_covered() << ",\n";
  out << "  \"cell_universe\": " << CoverageAtlas::cell_universe() << ",\n";
  const std::vector<std::string> blind = atlas.blind_spots();
  out << "  \"blind_spots\": [";
  for (std::size_t i = 0; i < blind.size(); ++i) {
    out << (i == 0 ? "" : ", ") << "\"" << util::json::escape(blind[i])
        << "\"";
  }
  out << "],\n";
  out << "  \"probes\": [\n";
  for (std::size_t i = 0; i < kNumSites; ++i) {
    out << "    {\"name\": \"" << site_name(static_cast<Site>(i))
        << "\", \"hits\": " << totals.sites[i] << "},\n";
  }
  for (std::size_t i = 0; i < core::kNumTriggers; ++i) {
    out << "    {\"name\": \""
        << inject_site_name(static_cast<core::Trigger>(i))
        << "\", \"hits\": " << totals.inject[i] << "}"
        << (i + 1 < core::kNumTriggers ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"specimens\": [\n";
  const auto& specimens = atlas.specimens();
  for (std::size_t i = 0; i < specimens.size(); ++i) {
    const SpecimenCoverage& sc = specimens[i];
    out << "    {\"fault_id\": \"" << util::json::escape(sc.fault_id)
        << "\", \"app\": \"" << core::to_string(sc.app)
        << "\", \"trigger\": \"" << core::to_string(sc.trigger)
        << "\", \"class\": \"" << core::to_code(sc.fault_class)
        << "\", \"trials\": " << sc.trials
        << ", \"probes_hit\": " << sc.probes.probes_hit() << "}"
        << (i + 1 < specimens.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"grids\": [\n";
  const auto& grids = atlas.grids();
  for (std::size_t g = 0; g < grids.size(); ++g) {
    const MechanismGrid& grid = grids[g];
    out << "    {\"mechanism\": \"" << util::json::escape(grid.mechanism)
        << "\", \"observed\": [";
    for (std::size_t t = 0; t < core::kNumTriggers; ++t) {
      out << (t == 0 ? "" : ", ") << grid.observed[t];
    }
    out << "], \"survived\": [";
    for (std::size_t t = 0; t < core::kNumTriggers; ++t) {
      out << (t == 0 ? "" : ", ") << grid.survived[t];
    }
    out << "]}" << (g + 1 < grids.size() ? "," : "") << "\n";
  }
  out << "  ]\n";
  out << "}\n";
  return out.str();
}

std::string render_text(const CoverageAtlas& atlas) {
  const CoverageMap& totals = atlas.totals();
  std::ostringstream out;
  out << "coverage atlas: " << atlas.probes_hit() << "/"
      << CoverageAtlas::probe_universe() << " probes hit, "
      << atlas.cells_covered() << "/" << CoverageAtlas::cell_universe()
      << " taxonomy cells covered, " << atlas.trials() << " trials\n";
  for (const std::string_view section : kSections) {
    out << "\n[" << section << "]\n";
    for (std::size_t i = 0; i < kNumSites; ++i) {
      const auto site = static_cast<Site>(i);
      if (site_section(site) != section) continue;
      out << "  " << site_name(site) << ": " << totals.sites[i] << "\n";
    }
  }
  out << "\n[inject]\n";
  for (std::size_t i = 0; i < core::kNumTriggers; ++i) {
    out << "  " << inject_site_name(static_cast<core::Trigger>(i)) << ": "
        << totals.inject[i] << "\n";
  }
  const std::vector<std::string> blind = atlas.blind_spots();
  out << "\nblind spots (" << blind.size() << "):\n";
  for (const std::string& name : blind) {
    out << "  " << name << "\n";
  }
  return out.str();
}

std::string render_heatmap_html(const CoverageAtlas& atlas) {
  const CoverageMap& totals = atlas.totals();
  const std::vector<std::string> blind = atlas.blind_spots();
  std::ostringstream out;
  out << "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n"
      << "<meta charset=\"utf-8\">\n"
      << "<title>faultstudy coverage atlas</title>\n"
      << "<style>\n"
      << ".viz-root {\n"
      << "  color-scheme: light;\n"
      << "  --surface-1: #fcfcfb;\n"
      << "  --text-primary: #0b0b0b;\n"
      << "  --text-secondary: #52514e;\n"
      << "  --muted: #898781;\n"
      << "  --grid: #e1e0d9;\n"
      << "}\n"
      << "@media (prefers-color-scheme: dark) {\n"
      << "  :root:where(:not([data-theme=\"light\"])) .viz-root {\n"
      << "    color-scheme: dark;\n"
      << "    --surface-1: #1a1a19;\n"
      << "    --text-primary: #ffffff;\n"
      << "    --text-secondary: #c3c2b7;\n"
      << "    --grid: #2c2c2a;\n"
      << "  }\n"
      << "}\n"
      << ":root[data-theme=\"dark\"] .viz-root {\n"
      << "  color-scheme: dark;\n"
      << "  --surface-1: #1a1a19;\n"
      << "  --text-primary: #ffffff;\n"
      << "  --text-secondary: #c3c2b7;\n"
      << "  --grid: #2c2c2a;\n"
      << "}\n"
      << "body { margin: 0; }\n"
      << ".viz-root { background: var(--surface-1);"
      << " color: var(--text-primary);"
      << " font-family: system-ui, -apple-system, \"Segoe UI\", sans-serif;"
      << " padding: 24px; }\n"
      << "h1 { font-size: 20px; } h2 { font-size: 16px; margin-top: 28px; }\n"
      << ".summary { color: var(--text-secondary); }\n"
      << "table { border-collapse: separate; border-spacing: 2px; }\n"
      << "th { font-weight: 600; color: var(--text-secondary);"
      << " font-size: 12px; text-align: left; }\n"
      << "th.rot { height: 150px; vertical-align: bottom; }\n"
      << "th.rot span { writing-mode: vertical-rl;"
      << " transform: rotate(180deg); }\n"
      << "td.c { min-width: 34px; text-align: center; font-size: 12px;"
      << " font-variant-numeric: tabular-nums; padding: 4px;"
      << " border-radius: 4px; }\n"
      << "td.none { color: var(--muted); }\n"
      << "td.n { font-variant-numeric: tabular-nums; font-size: 13px;"
      << " padding: 2px 10px 2px 0; }\n"
      << "td.name { font-size: 13px; padding: 2px 10px 2px 0; }\n";
  for (std::size_t s = 0; s < kRampSteps; ++s) {
    out << "td.s" << s << " { background: " << kRamp[s].background
        << "; color: " << kRamp[s].ink << "; }\n";
  }
  out << ".legend td { font-size: 12px; }\n"
      << ".blind { color: var(--text-secondary); }\n"
      << "</style>\n</head>\n<body>\n<div class=\"viz-root\">\n";

  out << "<h1>Study coverage atlas</h1>\n"
      << "<p class=\"summary\">" << atlas.probes_hit() << " of "
      << CoverageAtlas::probe_universe() << " probes hit &middot; "
      << atlas.cells_covered() << " of " << CoverageAtlas::cell_universe()
      << " taxonomy cells covered &middot; " << blind.size()
      << " blind spots &middot; " << atlas.trials() << " trials</p>\n";

  // Mechanism x trigger survival grid: cell text is survived/observed, the
  // fill encodes the survival fraction on a single-hue sequential ramp.
  out << "<h2>Recovery grid: mechanism &times; trigger (survived/observed)"
      << "</h2>\n<table>\n<tr><th></th>";
  for (std::size_t t = 0; t < core::kNumTriggers; ++t) {
    out << "<th class=\"rot\"><span>"
        << core::to_string(static_cast<core::Trigger>(t)) << "</span></th>";
  }
  out << "</tr>\n";
  for (const MechanismGrid& grid : atlas.grids()) {
    out << "<tr><th>" << grid.mechanism << "</th>";
    for (std::size_t t = 0; t < core::kNumTriggers; ++t) {
      const std::uint64_t observed = grid.observed[t];
      const std::uint64_t survived = grid.survived[t];
      if (observed == 0) {
        out << "<td class=\"c none\">&ndash;</td>";
      } else {
        out << "<td class=\"c s" << ramp_index(survived, observed) << "\">"
            << survived << "/" << observed << "</td>";
      }
    }
    out << "</tr>\n";
  }
  out << "</table>\n";
  out << "<table class=\"legend\"><tr><td>survival</td>";
  for (std::size_t s = 0; s < kRampSteps; ++s) {
    out << "<td class=\"c s" << s << "\">"
        << (s * 100) / (kRampSteps - 1) << "%</td>";
  }
  out << "<td class=\"none c\">&ndash; not observed</td></tr></table>\n";

  // Probe tables, one per section; blind spots called out in text.
  for (const std::string_view section : kSections) {
    out << "<h2>Probes: " << section << "</h2>\n<table>\n";
    for (std::size_t i = 0; i < kNumSites; ++i) {
      const auto site = static_cast<Site>(i);
      if (site_section(site) != section) continue;
      out << "<tr><td class=\"name\">" << site_name(site)
          << "</td><td class=\"n\">" << totals.sites[i] << "</td><td>"
          << (totals.sites[i] == 0 ? "blind spot" : "") << "</td></tr>\n";
    }
    out << "</table>\n";
  }
  out << "<h2>Probes: inject (taxonomy cells)</h2>\n<table>\n";
  for (std::size_t i = 0; i < core::kNumTriggers; ++i) {
    out << "<tr><td class=\"name\">"
        << inject_site_name(static_cast<core::Trigger>(i))
        << "</td><td class=\"n\">" << totals.inject[i] << "</td><td>"
        << (totals.inject[i] == 0 ? "blind spot" : "") << "</td></tr>\n";
  }
  out << "</table>\n";

  out << "<h2>Blind spots (" << blind.size() << ")</h2>\n";
  if (blind.empty()) {
    out << "<p class=\"blind\">none &mdash; every probe was hit</p>\n";
  } else {
    out << "<ul class=\"blind\">\n";
    for (const std::string& name : blind) {
      out << "<li>" << name << "</li>\n";
    }
    out << "</ul>\n";
  }
  out << "</div>\n</body>\n</html>\n";
  return out.str();
}

void export_gauges(const CoverageAtlas& atlas,
                   telemetry::MetricsRegistry& registry) {
  const auto publish = [&registry](std::string_view name, std::uint64_t v) {
    registry.peak(registry.gauge(name), static_cast<std::int64_t>(v));
  };
  publish("coverage/probes_hit", atlas.probes_hit());
  publish("coverage/probe_universe", CoverageAtlas::probe_universe());
  publish("coverage/cells_covered", atlas.cells_covered());
  publish("coverage/cell_universe", CoverageAtlas::cell_universe());
  publish("coverage/blind_spots", atlas.blind_spots().size());
  publish("coverage/trials", atlas.trials());
}

}  // namespace faultstudy::obs
