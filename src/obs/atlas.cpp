#include "obs/atlas.hpp"

namespace faultstudy::obs {

std::string_view site_name(Site site) noexcept {
  switch (site) {
    case Site::kEnvProcSpawnDenied: return "env/proc_spawn_denied";
    case Site::kEnvProcHung: return "env/proc_hung";
    case Site::kEnvFdDenied: return "env/fd_denied";
    case Site::kEnvDiskNoSpace: return "env/disk_no_space";
    case Site::kEnvDiskFileTooBig: return "env/disk_file_too_big";
    case Site::kEnvDnsBroken: return "env/dns_broken";
    case Site::kEnvDnsError: return "env/dns_error";
    case Site::kEnvDnsSlow: return "env/dns_slow";
    case Site::kEnvDnsReverseMiss: return "env/dns_reverse_miss";
    case Site::kEnvPortDenied: return "env/port_denied";
    case Site::kEnvKernelResourceDenied: return "env/kernel_resource_denied";
    case Site::kEnvLinkDegraded: return "env/link_degraded";
    case Site::kEnvSchedReplay: return "env/sched_replay";
    case Site::kEnvEntropyBlocked: return "env/entropy_blocked";
    case Site::kEnvSignalRaised: return "env/signal_raised";
    case Site::kAppStarted: return "app/started";
    case Site::kAppStopped: return "app/stopped";
    case Site::kAppRestored: return "app/restored";
    case Site::kAppChildSpawned: return "app/child_spawned";
    case Site::kAppWebRequest: return "app/web_request";
    case Site::kAppWebCacheFill: return "app/web_cache_fill";
    case Site::kAppDbQuery: return "app/db_query";
    case Site::kAppUiEvent: return "app/ui_event";
    case Site::kRecAttach: return "recovery/attach";
    case Site::kRecCheckpoint: return "recovery/checkpoint";
    case Site::kRecRecoveryOk: return "recovery/recovery_ok";
    case Site::kRecRecoveryFailed: return "recovery/recovery_failed";
    case Site::kRecRollbackRewind: return "recovery/rollback_rewind";
    case Site::kRecFailover: return "recovery/failover";
    case Site::kRecColdRestart: return "recovery/cold_restart";
    case Site::kRecRejuvenation: return "recovery/rejuvenation";
    case Site::kRecProactiveRejuvenation:
      return "recovery/proactive_rejuvenation";
    case Site::kRecRetrySanitized: return "recovery/retry_sanitized";
    case Site::kRecSweep: return "recovery/sweep";
    case Site::kTrialSurvived: return "trial/survived";
    case Site::kTrialStartFailure: return "trial/start_failure";
    case Site::kTrialRetryCapExceeded: return "trial/retry_cap_exceeded";
    case Site::kTrialBudgetExhausted: return "trial/budget_exhausted";
    case Site::kTrialRecoveryFailed: return "trial/recovery_failed";
    case Site::kCount: break;
  }
  return "?";
}

std::string inject_site_name(core::Trigger trigger) {
  return std::string("inject/") + std::string(core::to_string(trigger));
}

std::string_view site_section(Site site) noexcept {
  const std::string_view name = site_name(site);
  return name.substr(0, name.find('/'));
}

void CoverageAtlas::begin_study(const std::vector<corpus::SeedFault>& seeds,
                                const std::vector<std::string>& mechanisms) {
  specimens_.clear();
  specimens_.reserve(seeds.size());
  for (const corpus::SeedFault& seed : seeds) {
    SpecimenCoverage sc;
    sc.fault_id = seed.fault_id;
    sc.app = seed.app;
    sc.trigger = seed.trigger;
    sc.fault_class = corpus::seed_class(seed);
    specimens_.push_back(std::move(sc));
  }
  grids_.clear();
  grids_.reserve(mechanisms.size());
  for (const std::string& name : mechanisms) {
    MechanismGrid grid;
    grid.mechanism = name;
    grids_.push_back(std::move(grid));
  }
  totals_ = CoverageMap{};
  trials_ = 0;
}

void CoverageAtlas::fold_cell(std::size_t mechanism_index,
                              std::size_t seed_index, const CoverageMap& probes,
                              std::uint64_t trials, std::uint64_t observed,
                              std::uint64_t survived) {
  totals_.merge(probes);
  trials_ += trials;
  if (seed_index < specimens_.size()) {
    specimens_[seed_index].probes.merge(probes);
    specimens_[seed_index].trials += trials;
    if (mechanism_index < grids_.size()) {
      MechanismGrid& grid = grids_[mechanism_index];
      const auto t =
          static_cast<std::size_t>(specimens_[seed_index].trigger);
      grid.observed[t] += observed;
      grid.survived[t] += survived;
    }
  }
}

void CoverageAtlas::fold_trial(const corpus::SeedFault& seed,
                               const CoverageMap& probes) {
  totals_.merge(probes);
  trials_ += 1;
  for (SpecimenCoverage& sc : specimens_) {
    if (sc.fault_id == seed.fault_id) {
      sc.probes.merge(probes);
      sc.trials += 1;
      break;
    }
  }
}

std::size_t CoverageAtlas::cells_covered() const noexcept {
  std::size_t n = 0;
  for (const std::uint64_t v : totals_.inject) n += v > 0 ? 1 : 0;
  return n;
}

std::vector<std::string> CoverageAtlas::blind_spots() const {
  std::vector<std::string> out;
  for (std::size_t i = 0; i < kNumSites; ++i) {
    if (totals_.sites[i] == 0) {
      out.emplace_back(site_name(static_cast<Site>(i)));
    }
  }
  for (std::size_t i = 0; i < core::kNumTriggers; ++i) {
    if (totals_.inject[i] == 0) {
      out.push_back(inject_site_name(static_cast<core::Trigger>(i)));
    }
  }
  return out;
}

}  // namespace faultstudy::obs
