// Vector clocks over the trace's small logical-thread id space.
//
// A vector clock maps each thread to the count of its events "known" at a
// point in the execution; C_a happens-before C_b iff C_a <= C_b pointwise.
// Thread ids in traces are tiny (the harness thread plus a worker and an
// async thread per operation), so a flat vector indexed by thread id beats
// any map representation.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

namespace faultstudy::analysis {

class VectorClock {
 public:
  std::uint32_t get(std::uint32_t thread) const noexcept {
    return thread < clocks_.size() ? clocks_[thread] : 0;
  }

  void set(std::uint32_t thread, std::uint32_t value) {
    grow_to(thread + 1);
    clocks_[thread] = value;
  }

  /// Advances `thread`'s own component; returns the new value.
  std::uint32_t bump(std::uint32_t thread) {
    grow_to(thread + 1);
    return ++clocks_[thread];
  }

  /// Pointwise maximum (release/acquire and fork/join edges).
  void join(const VectorClock& other) {
    grow_to(other.clocks_.size());
    for (std::size_t i = 0; i < other.clocks_.size(); ++i) {
      clocks_[i] = std::max(clocks_[i], other.clocks_[i]);
    }
  }

  /// True when an event stamped (`thread`, `clock`) happens-before a point
  /// whose vector clock is *this.
  bool ordered_before_me(std::uint32_t thread,
                         std::uint32_t clock) const noexcept {
    return clock <= get(thread);
  }

  std::size_t size() const noexcept { return clocks_.size(); }

  std::string to_string() const {
    std::string out = "[";
    for (std::size_t i = 0; i < clocks_.size(); ++i) {
      if (i != 0) out += ',';
      out += std::to_string(clocks_[i]);
    }
    out += ']';
    return out;
  }

 private:
  void grow_to(std::size_t n) {
    if (clocks_.size() < n) clocks_.resize(n, 0);
  }

  std::vector<std::uint32_t> clocks_;
};

}  // namespace faultstudy::analysis
