#include "analysis/invariant_checker.hpp"

#include <unordered_map>
#include <unordered_set>

namespace faultstudy::analysis {

std::string_view to_string(InvariantRule rule) noexcept {
  switch (rule) {
    case InvariantRule::kFdLeak:
      return "fd-leak";
    case InvariantRule::kProcessSlotLeak:
      return "process-slot-leak";
    case InvariantRule::kWriteDuringRecovery:
      return "write-during-recovery";
    case InvariantRule::kSignalToDeadPid:
      return "signal-to-dead-pid";
  }
  return "?";
}

std::vector<InvariantViolation> check_transcript(
    std::span<const harness::Event> events) {
  std::vector<InvariantViolation> violations;

  // fd balance: opened minus closed since the trial started.
  std::size_t fds_opened = 0;
  std::size_t fds_closed = 0;

  // pid -> transcript index of its spawn; erased on kill.
  std::unordered_map<std::size_t, std::size_t> live_pids;
  std::unordered_set<std::size_t> dead_pids;

  bool in_recovery = false;
  std::size_t recovery_began_at = 0;

  for (std::size_t i = 0; i < events.size(); ++i) {
    const harness::Event& event = events[i];
    switch (event.kind) {
      case harness::EventKind::kFdOpen:
        fds_opened += event.item;
        break;
      case harness::EventKind::kFdClose:
        fds_closed += event.item;
        break;

      case harness::EventKind::kProcSpawn:
        live_pids[event.item] = i;
        dead_pids.erase(event.item);
        break;
      case harness::EventKind::kProcKill:
        live_pids.erase(event.item);
        dead_pids.insert(event.item);
        break;

      case harness::EventKind::kSignalRaise:
        if (dead_pids.count(event.item) != 0) {
          violations.push_back(
              {InvariantRule::kSignalToDeadPid, i,
               "signal raised at pid " + std::to_string(event.item) +
                   " after it was killed"});
        }
        break;

      case harness::EventKind::kRecoveryBegin:
        in_recovery = true;
        recovery_began_at = i;
        break;

      case harness::EventKind::kDiskWrite:
        if (in_recovery) {
          violations.push_back(
              {InvariantRule::kWriteDuringRecovery, i,
               std::to_string(event.item) +
                   " bytes written to disk while recovery was in progress"});
        }
        break;

      case harness::EventKind::kRecoveryOk: {
        in_recovery = false;
        // Every process that predates this recovery must have been swept:
        // a survivor keeps its process-table slot across the restart.
        for (const auto& [pid, spawned_at] : live_pids) {
          if (spawned_at < recovery_began_at) {
            violations.push_back(
                {InvariantRule::kProcessSlotLeak, i,
                 "pid " + std::to_string(pid) +
                     " survived recovery; its process-table slot is leaked "
                     "across the restart"});
          }
        }
        break;
      }

      case harness::EventKind::kRecoveryFailed:
        in_recovery = false;
        break;

      case harness::EventKind::kStart:
      case harness::EventKind::kItemOk:
      case harness::EventKind::kFailure:
      case harness::EventKind::kVerdict:
      case harness::EventKind::kCheckpoint:
      case harness::EventKind::kRollback:
        break;
    }
  }

  if (fds_opened > fds_closed) {
    violations.push_back(
        {InvariantRule::kFdLeak, events.empty() ? 0 : events.size() - 1,
         std::to_string(fds_opened - fds_closed) +
             " descriptors opened but never closed"});
  }
  return violations;
}

std::string to_string(std::span<const InvariantViolation> violations) {
  std::string out;
  for (const auto& v : violations) {
    out += "[" + std::string(to_string(v.rule)) + "] at event #" +
           std::to_string(v.event_index) + ": " + v.detail + '\n';
  }
  return out;
}

}  // namespace faultstudy::analysis
