// Static invariant checking over trial transcripts.
//
// A trial transcript (harness/transcript.hpp) records the resource-level
// events the harness observed: descriptor acquisitions, process spawns and
// kills, disk writes, checkpoints and rollbacks, signal raises. The checker
// scans a finished transcript for violations of the resource protocol —
// without re-running anything, which is what lets it audit transcripts from
// any mechanism or fault combination after the fact:
//
//   kFdLeak             descriptors opened and never closed by trial end —
//                       the resource-leak signature that defeats
//                       state-restoring recovery (checkpoints faithfully
//                       resurrect the leak).
//   kProcessSlotLeak    a process alive before recovery began survived a
//                       successful recovery: "kill all processes associated
//                       with the application" was not honored and the slot
//                       is leaked across the restart.
//   kWriteDuringRecovery a disk write between recovery-begin and its
//                       verdict: rollback must restore state, never
//                       generate new writes.
//   kSignalToDeadPid    a signal raised at a pid that was already killed
//                       and never respawned.
//
// The checker only touches inline accessors of the transcript types, so it
// layers below the harness (fs_harness links fs_analysis, not vice versa).
#pragma once

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "harness/transcript.hpp"

namespace faultstudy::analysis {

enum class InvariantRule : std::uint8_t {
  kFdLeak = 0,
  kProcessSlotLeak,
  kWriteDuringRecovery,
  kSignalToDeadPid,
};

inline constexpr InvariantRule kAllInvariantRules[] = {
    InvariantRule::kFdLeak,
    InvariantRule::kProcessSlotLeak,
    InvariantRule::kWriteDuringRecovery,
    InvariantRule::kSignalToDeadPid,
};

std::string_view to_string(InvariantRule rule) noexcept;

struct InvariantViolation {
  InvariantRule rule = InvariantRule::kFdLeak;
  /// Index into the transcript's event stream where the violation became
  /// definite (the final event for end-of-trial rules).
  std::size_t event_index = 0;
  std::string detail;
};

/// Scans one transcript's events; returns every violation found, in
/// transcript order.
std::vector<InvariantViolation> check_transcript(
    std::span<const harness::Event> events);

inline std::vector<InvariantViolation> check_transcript(
    const harness::Transcript& transcript) {
  return check_transcript(
      std::span<const harness::Event>(transcript.events()));
}

/// Multi-line rendering, one violation per line.
std::string to_string(std::span<const InvariantViolation> violations);

}  // namespace faultstudy::analysis
