#include "analysis/race_detector.hpp"

#include <optional>
#include <unordered_map>
#include <unordered_set>

namespace faultstudy::analysis {

namespace {

struct ThreadState {
  VectorClock vc;
  std::vector<env::ObjectId> locks_held;
  std::vector<std::size_t> history;  ///< recent event indices, oldest first
};

struct LockState {
  VectorClock release_vc;
};

/// The last write and the last read per thread of one shared variable,
/// stored as fully-built report sides so a later conflict can cite them.
struct Access {
  AccessRecord record;
  std::uint32_t clock = 0;  ///< owner thread's clock at the access
};

struct VarState {
  std::optional<Access> last_write;
  std::unordered_map<env::ThreadId, Access> reads;
};

std::uint64_t pair_key(env::ObjectId object, env::ThreadId a,
                       env::ThreadId b) {
  if (a > b) std::swap(a, b);
  return (static_cast<std::uint64_t>(object) << 40) |
         (static_cast<std::uint64_t>(a) << 20) | b;
}

}  // namespace

std::vector<RaceReport> RaceDetector::analyze(
    std::span<const env::TraceEvent> trace) {
  std::vector<RaceReport> reports;
  std::unordered_map<env::ThreadId, ThreadState> threads;
  std::unordered_map<env::ObjectId, LockState> locks;
  std::unordered_map<env::ObjectId, VarState> vars;
  std::unordered_set<std::uint64_t> reported;

  auto make_record = [&](std::size_t index, const env::TraceEvent& event,
                         const ThreadState& state) {
    AccessRecord record;
    record.event_index = index;
    record.thread = event.thread;
    record.op = event.op;
    record.note = event.note;
    record.locks_held = state.locks_held;
    record.history = state.history;
    if (record.history.size() > options_.history_depth) {
      record.history.erase(record.history.begin(),
                           record.history.end() -
                               static_cast<std::ptrdiff_t>(
                                   options_.history_depth));
    }
    return record;
  };

  auto report_pair = [&](env::ObjectId object, const Access& earlier,
                         const AccessRecord& later) {
    if (reports.size() >= options_.max_reports) return;
    if (options_.dedupe_pairs) {
      const auto key = pair_key(object, earlier.record.thread, later.thread);
      if (!reported.insert(key).second) return;
    }
    RaceReport r;
    r.object = object;
    r.first = earlier.record;
    r.second = later;
    reports.push_back(std::move(r));
  };

  for (std::size_t i = 0; i < trace.size(); ++i) {
    const env::TraceEvent& event = trace[i];
    // Materialize both map entries a fork/join touches before taking any
    // reference — operator[] may rehash and invalidate `self`.
    if (event.op == env::TraceOp::kFork || event.op == env::TraceOp::kJoin) {
      threads.try_emplace(event.object);
    }
    ThreadState& self = threads[event.thread];

    switch (event.op) {
      case env::TraceOp::kLock:
        self.vc.join(locks[event.object].release_vc);
        self.locks_held.push_back(event.object);
        break;

      case env::TraceOp::kUnlock: {
        locks[event.object].release_vc = self.vc;
        self.vc.bump(event.thread);
        auto& held = self.locks_held;
        for (auto it = held.rbegin(); it != held.rend(); ++it) {
          if (*it == event.object) {
            held.erase(std::next(it).base());
            break;
          }
        }
        break;
      }

      case env::TraceOp::kFork: {
        ThreadState& child = threads.find(event.object)->second;
        child.vc.join(self.vc);
        self.vc.bump(event.thread);
        break;
      }

      case env::TraceOp::kJoin: {
        const ThreadState& child = threads.find(event.object)->second;
        self.vc.join(child.vc);
        break;
      }

      case env::TraceOp::kRead:
      case env::TraceOp::kWrite: {
        self.vc.bump(event.thread);
        VarState& var = vars[event.object];
        const AccessRecord record = make_record(i, event, self);

        // A write conflicts with the previous write and with every read
        // since it; a read conflicts with the previous write only.
        if (var.last_write.has_value() &&
            var.last_write->record.thread != event.thread &&
            !self.vc.ordered_before_me(var.last_write->record.thread,
                                       var.last_write->clock)) {
          report_pair(event.object, *var.last_write, record);
        }
        if (event.op == env::TraceOp::kWrite) {
          for (const auto& [thread, read] : var.reads) {
            if (thread == event.thread) continue;
            if (!self.vc.ordered_before_me(thread, read.clock)) {
              report_pair(event.object, read, record);
            }
          }
          var.reads.clear();
          var.last_write = Access{record, self.vc.get(event.thread)};
        } else {
          var.reads[event.thread] = Access{record, self.vc.get(event.thread)};
        }
        break;
      }
    }

    self.history.push_back(i);
    if (self.history.size() > options_.history_depth * 2) {
      self.history.erase(self.history.begin());
    }
  }
  return reports;
}

namespace {

void render_side(std::string& out, const char* label,
                 const AccessRecord& side,
                 std::span<const env::TraceEvent> trace) {
  out += "  ";
  out += label;
  out += ": ";
  out += env::to_string(side.op);
  out += " by thread " + std::to_string(side.thread) + " at event #" +
         std::to_string(side.event_index);
  if (!side.note.empty()) {
    out += " (" + side.note + ")";
  }
  out += "\n    locks held: ";
  if (side.locks_held.empty()) {
    out += "none";
  } else {
    for (std::size_t i = 0; i < side.locks_held.size(); ++i) {
      if (i != 0) out += ", ";
      out += env::object_name(side.locks_held[i]);
    }
  }
  out += "\n    events leading here:\n";
  for (const std::size_t index : side.history) {
    if (index >= trace.size()) continue;
    const auto& event = trace[index];
    out += "      #" + std::to_string(index) + " " +
           std::string(env::to_string(event.op)) + " " +
           std::string(env::object_name(event.object));
    if (!event.note.empty()) out += " — " + event.note;
    out += '\n';
  }
}

}  // namespace

std::string to_string(const RaceReport& report,
                      std::span<const env::TraceEvent> trace) {
  std::string out = "RACE on ";
  out += env::object_name(report.object);
  out += " (object " + std::to_string(report.object) + ")\n";
  render_side(out, "first ", report.first, trace);
  render_side(out, "second", report.second, trace);
  return out;
}

}  // namespace faultstudy::analysis
