// Happens-before + lockset race detection over synchronization traces.
//
// The detector replays an env::TraceLog stream through per-thread vector
// clocks (lock release/acquire and fork/join install the happens-before
// edges) and flags every pair of conflicting accesses — two accesses to the
// same variable, at least one a write — that are unordered by
// happens-before. Locksets are tracked alongside: a reported pair carries
// the locks each side held, which is how the report distinguishes "no lock
// at all" from "two different locks" when describing the bug.
//
// Because detection keys on the synchronization *structure* rather than on
// whether this execution's interleaving landed in the hazard gap, a racy
// program is flagged on every traced racy operation — exactly the oracle
// property the taxonomy cross-check needs: an armed race fault must light
// the detector up deterministically, and a well-synchronized (fixed)
// program must never do so.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "analysis/vector_clock.hpp"
#include "env/trace.hpp"

namespace faultstudy::analysis {

/// One side of a racy pair: the access event plus the thread's recent
/// event history ("stack of events") leading up to it.
struct AccessRecord {
  std::size_t event_index = 0;  ///< index into the analyzed trace
  env::ThreadId thread = 0;
  env::TraceOp op = env::TraceOp::kRead;
  std::string note;
  /// Locks held by the thread at the access, innermost last.
  std::vector<env::ObjectId> locks_held;
  /// Indices of the thread's preceding trace events, oldest first.
  std::vector<std::size_t> history;
};

struct RaceReport {
  env::ObjectId object = 0;
  AccessRecord first;   ///< the earlier access in trace order
  AccessRecord second;  ///< the later, conflicting access
};

struct RaceDetectorOptions {
  /// Cap on reports per analyze() call (a racy loop would otherwise flood).
  std::size_t max_reports = 64;
  /// Events of per-thread history attached to each side of a report.
  std::size_t history_depth = 8;
  /// Report each (object, thread-pair) at most once.
  bool dedupe_pairs = true;
};

class RaceDetector {
 public:
  explicit RaceDetector(RaceDetectorOptions options = {})
      : options_(options) {}

  /// Analyzes a complete trace; stateless across calls.
  std::vector<RaceReport> analyze(std::span<const env::TraceEvent> trace);

  /// Convenience for the common caller.
  std::vector<RaceReport> analyze(const env::TraceLog& log) {
    return analyze(std::span<const env::TraceEvent>(log.events()));
  }

  const RaceDetectorOptions& options() const noexcept { return options_; }

 private:
  RaceDetectorOptions options_;
};

/// Multi-line human-readable rendering of one report, both event stacks
/// included.
std::string to_string(const RaceReport& report,
                      std::span<const env::TraceEvent> trace);

}  // namespace faultstudy::analysis
