#include "apps/webserver.hpp"

namespace faultstudy::apps {

struct WebServer::WebSnapshot : Snapshot {
  BaseState base;
  std::uint64_t served = 0;
  std::uint64_t cache_fills = 0;
};

WebServer::WebServer(const WebServerConfig& config)
    : BaseApp(core::AppId::kApache, "apache", config.base_fds,
              config.worker_pool),
      config_(config) {
  log_path_ = "/var/log/apache/access_log";
  cache_prefix_ = "/var/cache/apache";
  cache_quota_ = config.cache_quota;
}

void WebServer::arm_fault(const ActiveFault& fault) {
  BaseApp::arm_fault(fault);
  http_flags_ = {};
  if (fault.fault_id == "apache-ei-01") {
    http_flags_.long_url_hash_overflow = true;
    fault_->realized = true;
  } else if (fault.fault_id == "apache-ei-04") {
    http_flags_.empty_dir_palloc_bug = true;
    fault_->realized = true;
  }
}

bool WebServer::start(env::Environment& e) {
  if (!base_start(e)) return false;
  if (!e.network().bind_port(config_.listen_port, "apache")) {
    base_stop(e);
    return false;
  }
  served_ = 0;
  cache_fills_ = 0;
  return true;
}

StepResult WebServer::handle(const WorkItem& item, env::Environment& e) {
  if (!running_) return {StepStatus::kError, "server not running"};
  if (item.op == kRejectedOp) return {};  // wrapper answered the client

  if (auto failure = check_fault(item, e); failure.has_value()) {
    if (failure->status == StepStatus::kCrash ||
        failure->status == StepStatus::kHang) {
      running_ = false;
    }
    return *failure;
  }

  // Real request parsing (the apache-ei-01 hash overflow lives here).
  const bool is_http = item.op.starts_with("GET ") ||
                       item.op.starts_with("POST ") ||
                       item.op.starts_with("HEAD ");
  if (is_http) {
    const auto parsed = http::parse_request(item.op, http_flags_);
    if (parsed.status == http::ParseStatus::kCrash) {
      running_ = false;
      return {StepStatus::kCrash, parsed.detail};
    }
    if (parsed.status == http::ParseStatus::kOk &&
        !parsed.request.path.empty() && parsed.request.path.back() == '/') {
      // Directory listing (the apache-ei-04 palloc(0) bug lives here).
      const auto entries =
          e.disk().list_prefix("/htdocs" + parsed.request.path);
      std::vector<std::string> names(entries.begin(), entries.end());
      const auto listing = http::index_directory(names, http_flags_);
      if (listing.crashed) {
        running_ = false;
        return {StepStatus::kCrash,
                "segfault in index_directory(): palloc(0) on a directory "
                "with zero entries"};
      }
    }
  }

  // Access log (graceful when the write fails and no fault is armed: the
  // fixed server tolerates a full disk, the buggy one dies in check_fault).
  e.disk().append(log_path_, item.write_bytes > 0 ? item.write_bytes : 64);

  // Scoreboard update for racy requests: the fixed server's children take
  // the scoreboard lock, so the traced shape is race-free; a generic race
  // fault replaces this with the buggy shape inside check_fault.
  if (item.racy && !generic_race_armed()) {
    emit_synchronized_trace(e, env::trace_objects::kScoreboard,
                            "child updates scoreboard slot under lock");
  }

  // Heavy requests run a CGI child for the duration of the item.
  if (item.heavy) {
    if (auto pid = e.processes().spawn("apache"); pid.has_value()) {
      FS_FORENSIC(e.flight(),
                  record(forensics::FlightCode::kAppChildSpawned, *pid));
      e.processes().kill(*pid);
      FS_TELEM(e.counters(), app.cgi_children++);
      FS_COVER(e.coverage(), hit(obs::Site::kAppChildSpawned));
    }
  }

  // Cache fill for cacheable content.
  if (item.write_bytes > 0 &&
      e.disk().used_under(cache_prefix_) + item.write_bytes <= cache_quota_) {
    e.disk().append(cache_prefix_ + "/fill" + std::to_string(item.id),
                    item.write_bytes);
    ++cache_fills_;
    FS_TELEM(e.counters(), app.cache_fills++);
    FS_COVER(e.coverage(), hit(obs::Site::kAppWebCacheFill));
  }

  // HostnameLookups-style DNS (result ignored by the fixed server).
  if (!item.lookup_host.empty()) {
    (void)e.dns().resolve(item.lookup_host, e.now());
  }

  e.advance(1);
  ++served_;
  ++state_.items_handled;
  FS_TELEM(e.counters(), app.requests_served++);
  FS_COVER(e.coverage(), hit(obs::Site::kAppWebRequest));
  return {};
}

void WebServer::stop(env::Environment& e) { base_stop(e); }

SnapshotPtr WebServer::snapshot() const {
  auto snap = std::make_shared<WebSnapshot>();
  snap->base = state_;
  snap->served = served_;
  snap->cache_fills = cache_fills_;
  return snap;
}

bool WebServer::restore(const SnapshotPtr& snapshot, env::Environment& e) {
  const auto* snap = dynamic_cast<const WebSnapshot*>(snapshot.get());
  if (snap == nullptr) return false;
  if (!base_restore(snap->base, e)) return false;
  served_ = snap->served;
  cache_fills_ = snap->cache_fills;
  e.network().release_ports_of("apache");
  if (!e.network().bind_port(config_.listen_port, "apache")) {
    running_ = false;
    return false;
  }
  return true;
}

void WebServer::rejuvenate(env::Environment& e) {
  base_rejuvenate(e);
  // Apache's SIGHUP-style rejuvenation also rotates logs and prunes the
  // object cache — application-specific knowledge a generic mechanism
  // does not have.
  e.disk().truncate(log_path_);
  for (const auto& path : e.disk().list_prefix(cache_prefix_)) {
    e.disk().remove(path);
  }
  if (!e.network().port_bound(config_.listen_port)) {
    e.network().bind_port(config_.listen_port, "apache");
  }
}

}  // namespace faultstudy::apps
