// Workloads for the simulated applications.
//
// Per Section 3 of the paper, the *sequence* of requested operations is part
// of the program, not of the operating environment: "we assume the user is
// not willing to aid recovery by avoiding certain input sequences". A
// workload is therefore a fixed list of items; what varies between execution
// attempts is only the environment (interleavings, timing phases, resource
// states). The `poison` flag marks the item that exercises a deterministic
// bug's killer input — on retry the same item must be re-executed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/taxonomy.hpp"

namespace faultstudy::apps {

struct WorkItem {
  int id = 0;
  /// Operation label, e.g. "GET /index.html", "SELECT 1", "click:panel".
  std::string op;
  /// Killer input for environment-independent faults.
  bool poison = false;
  /// Part of a load burst (drives load-dependent leaks and child spawning).
  bool heavy = false;
  /// Involves concurrency (a race-prone code path draws an interleaving).
  bool racy = false;
  /// Requires a DNS lookup of this host (empty = no lookup).
  std::string lookup_host;
  /// Remote client address for connection-type items (empty = local).
  std::string client_address;
  /// Bytes this item appends to the app's on-disk artifacts.
  std::uint64_t write_bytes = 0;
  /// Entropy bits the item consumes (e.g. an SSL handshake).
  std::uint64_t entropy_bits = 0;
};

struct Workload {
  std::vector<WorkItem> items;
  std::size_t size() const noexcept { return items.size(); }
};

struct WorkloadSpec {
  std::size_t length = 40;
  std::uint64_t seed = 7;
  /// Index of the poison item (negative = none).
  int poison_at = 24;
  /// Concrete operation text for the poison item (empty = keep the drawn
  /// template). Faults with real engine-level implementations supply the
  /// actual killer input here — the long URL, the COUNT on the empty
  /// table.
  std::string poison_op;
  /// Fraction of items marked heavy / racy.
  double heavy_rate = 0.25;
  double racy_rate = 0.3;
};

/// Operation text a recovery wrapper substitutes when it rejects a killer
/// input up front: applications treat it as an already-answered request.
inline constexpr std::string_view kRejectedOp = "[rejected-by-wrapper]";

/// A realistic operation mix for the given application.
Workload make_workload(core::AppId app, const WorkloadSpec& spec = {});

}  // namespace faultstudy::apps
