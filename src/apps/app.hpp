// The simulated-application interface and the shared fault mechanics.
//
// Each application (web server, database, desktop) runs a fixed workload on
// a simulated operating environment. A *fault* from the study can be armed
// into an application: the app then contains the bug, and whether the bug
// triggers depends on the workload item and the environment — exactly the
// dependency structure the paper's taxonomy classifies.
//
// Two design points carry the paper's semantics:
//
//   1. Snapshots capture ALL application state, including leak counters and
//      the descriptor footprint. A truly generic recovery mechanism restores
//      this state verbatim ("there is no application-specific code to
//      reconstruct missing state"), which is precisely why leaked resources
//      survive recovery and EDN faults persist.
//   2. Child processes and their port bindings live in the environment's
//      process table, not in the snapshot. Generic recovery kills all
//      processes associated with the application; the recovered primary
//      respawns only its configured worker pool. This is why process-table
//      and port-holding faults are transient.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "apps/workload.hpp"
#include "core/taxonomy.hpp"
#include "env/environment.hpp"

namespace faultstudy::apps {

enum class StepStatus : std::uint8_t {
  kOk = 0,
  kCrash,  ///< segfault/abort — the process is gone
  kError,  ///< the operation failed with an error condition
  kHang,   ///< the process stopped responding
};

struct StepResult {
  StepStatus status = StepStatus::kOk;
  std::string detail;
};

inline bool is_failure(const StepResult& r) noexcept {
  return r.status != StepStatus::kOk;
}

/// A fault armed into an application, derived from a study fault. The
/// trigger decides the activation mechanics; the symptom decides how the
/// failure manifests.
struct ActiveFault {
  core::Trigger trigger = core::Trigger::kBoundaryInput;
  core::Symptom symptom = core::Symptom::kCrash;
  /// Study fault identity. Applications that carry a REAL implementation of
  /// this specific bug (a code-level fault point in the SQL engine or HTTP
  /// parser) recognize the id, set `realized`, and let the engine produce
  /// the failure; the generic poison-item mechanics then stand down.
  std::string fault_id;
  bool realized = false;
  /// Race / workload-timing hazard window in interleaving phase space.
  double hazard_start = 0.4;
  double hazard_width = 0.12;
  /// Leak faults fail once this many units have leaked.
  std::uint64_t leak_limit = 10;
  /// Descriptors leaked per item for descriptor-leak faults.
  std::size_t fds_per_leak = 4;
};

/// Opaque application checkpoint. Each app derives its own concrete type.
struct Snapshot {
  virtual ~Snapshot() = default;
};
using SnapshotPtr = std::shared_ptr<const Snapshot>;

class SimApp {
 public:
  virtual ~SimApp() = default;

  virtual core::AppId id() const noexcept = 0;
  virtual std::string_view name() const noexcept = 0;

  /// Acquires the app's startup footprint (workers, ports, descriptors).
  /// False when the environment refuses a resource the app cannot start
  /// without.
  virtual bool start(env::Environment& environment) = 0;

  /// Processes one workload item.
  virtual StepResult handle(const WorkItem& item,
                            env::Environment& environment) = 0;

  /// Releases every environment resource the app holds.
  virtual void stop(env::Environment& environment) = 0;

  /// Captures all application state (truly generic recovery checkpoints
  /// everything).
  virtual SnapshotPtr snapshot() const = 0;

  /// Restores state from a snapshot and re-materializes its environment
  /// footprint (descriptors re-acquired, worker pool respawned). Returns
  /// false when the environment cannot supply the footprint.
  virtual bool restore(const SnapshotPtr& snapshot,
                       env::Environment& environment) = 0;

  /// Application-specific rejuvenation (Section 6.2): kill children, close
  /// leaked descriptors, prune caches, rotate logs, re-read the hostname.
  /// Generic mechanisms never call this.
  virtual void rejuvenate(env::Environment& environment) = 0;

  /// OS-driven descriptor garbage collection (Section 6.2's second
  /// countermeasure): the environment monitors which descriptors are used
  /// and closes a fraction of the idle ones. Unlike rejuvenate(), this
  /// models the *kernel* acting on the process, not the application's own
  /// recovery code. Returns how many descriptors were collected.
  virtual std::size_t reclaim_idle_descriptors(env::Environment& environment,
                                               double fraction) {
    (void)environment;
    (void)fraction;
    return 0;
  }

  /// Virtual so applications can recognize fault ids they implement for
  /// real and enable the corresponding engine-level fault point.
  virtual void arm_fault(const ActiveFault& fault) { fault_ = fault; }
  void disarm_fault() { fault_.reset(); }
  const std::optional<ActiveFault>& fault() const noexcept { return fault_; }

  bool running() const noexcept { return running_; }

 protected:
  std::optional<ActiveFault> fault_;
  bool running_ = false;
};

/// Shared mechanics for the three concrete applications: resource
/// bookkeeping, checkpointable base state, and the per-trigger fault
/// activation logic.
class BaseApp : public SimApp {
 public:
  /// Environment-facing footprints (tests read these).
  std::size_t fd_footprint() const noexcept { return state_.fd_footprint; }
  std::uint64_t leaked_units() const noexcept { return state_.leaked_units; }
  std::uint64_t items_handled() const noexcept { return state_.items_handled; }

  /// Descriptors held beyond the configured baseline — what OS monitoring
  /// would flag as idle.
  std::size_t idle_descriptors() const noexcept {
    return state_.fd_footprint > base_fds_ ? state_.fd_footprint - base_fds_
                                           : 0;
  }

  std::size_t reclaim_idle_descriptors(env::Environment& environment,
                                       double fraction) override;

 protected:
  struct BaseState {
    std::uint64_t items_handled = 0;
    /// Units leaked by leak-type faults. Part of the snapshot: generic
    /// recovery faithfully restores the bloat.
    std::uint64_t leaked_units = 0;
    /// Descriptors the app currently holds (base + leaked).
    std::size_t fd_footprint = 0;
    /// Hostname captured at start (apps cache it; kHostnameChanged bites
    /// when the environment's name moves away from the cached one).
    std::string captured_hostname;
  };

  BaseApp(core::AppId id, std::string name, std::size_t base_fds,
          std::size_t worker_pool);

  core::AppId id() const noexcept override { return id_; }
  std::string_view name() const noexcept override { return name_; }

  // --- shared start/stop/restore plumbing (called by concrete apps) ---
  bool base_start(env::Environment& e);
  void base_stop(env::Environment& e);
  bool base_restore(const BaseState& state, env::Environment& e);
  void base_rejuvenate(env::Environment& e);

  /// Runs the armed fault's activation logic for one item. Returns the
  /// failure when the fault triggers; nullopt when it does not (or no fault
  /// is armed). Also performs the fault's resource side effects (leaks).
  std::optional<StepResult> check_fault(const WorkItem& item,
                                        env::Environment& e);

  /// Builds the failure result dictated by the armed fault's symptom.
  StepResult fail(std::string detail) const;

  /// Emits the fixed program's synchronized two-thread trace for a racy
  /// item: every access to `shared` is lock-protected, so the analysis
  /// layer's happens-before detector must stay silent. No-op unless tracing
  /// is enabled; consumes no scheduler draws (the async step's position is
  /// fixed), so enabling tracing never perturbs the interleaving stream.
  void emit_synchronized_trace(env::Environment& e, env::ObjectId shared,
                               const char* b_note) const;

  /// True when the armed fault is the race `check_fault` realizes
  /// generically (used to pick buggy vs fixed trace shape).
  bool generic_race_armed() const noexcept;

  BaseState state_;
  std::size_t base_fds_;
  std::size_t worker_pool_;
  std::vector<env::Pid> workers_;

  /// On-disk artifacts; concrete apps fill these in so the disk-condition
  /// triggers have something to bite.
  std::string log_path_;
  std::string cache_prefix_;
  std::uint64_t cache_quota_ = 0;

 private:
  /// kUnknownTransient's hidden condition: environmental, so deliberately
  /// NOT part of BaseState / the snapshot. Cleared once it has fired.
  bool unknown_condition_pending_ = true;

  core::AppId id_;
  std::string name_;
};

}  // namespace faultstudy::apps
