#include "apps/workload.hpp"

#include <array>

#include "util/rng.hpp"

namespace faultstudy::apps {

namespace {

struct OpTemplate {
  const char* op;
  bool dns = false;
  bool remote = false;
  std::uint64_t write_bytes = 0;
  std::uint64_t entropy_bits = 0;
};

constexpr OpTemplate kWebOps[] = {
    {"GET /index.html", false, true, 128, 0},
    {"GET /docs/manual.html", false, true, 128, 0},
    {"GET /cgi-bin/search", true, true, 256, 0},
    {"POST /cgi-bin/form", true, true, 512, 0},
    {"GET /images/logo.gif", false, true, 64, 0},
    {"GET https://secure/checkout", true, true, 256, 256},
    {"GET /status", false, false, 32, 0},
};

// Real SQL for the mini engine (apps/sql): the database application parses
// and executes these against its catalog.
constexpr OpTemplate kDbOps[] = {
    {"SELECT * FROM orders WHERE id < 50 ORDER BY id LIMIT 5", false, true, 0, 0},
    {"INSERT INTO orders VALUES (9001, 'new')", false, true, 512, 0},
    {"UPDATE orders SET state = 'done' WHERE id < 10", false, true, 256, 0},
    {"SELECT COUNT(*) FROM customers", false, true, 0, 0},
    {"DELETE FROM sessions WHERE id > 900", false, true, 128, 0},
    {"FLUSH TABLES", false, false, 64, 0},
    {"CONNECT new-client", true, true, 0, 0},
};

constexpr OpTemplate kDesktopOps[] = {
    {"click:panel-menu", false, false, 0, 0},
    {"open:file-manager /home/user", false, false, 32, 0},
    {"edit:spreadsheet-cell", false, false, 64, 0},
    {"drag:launcher-icon", false, false, 0, 0},
    {"open:calendar-view", false, false, 32, 0},
    {"play:notification-sound", false, false, 0, 0},
    {"save:document", false, false, 256, 0},
};

std::span<const OpTemplate> ops_for(core::AppId app) {
  switch (app) {
    case core::AppId::kApache:
      return kWebOps;
    case core::AppId::kMysql:
      return kDbOps;
    case core::AppId::kGnome:
      return kDesktopOps;
  }
  return kWebOps;
}

}  // namespace

Workload make_workload(core::AppId app, const WorkloadSpec& spec) {
  util::Rng rng(spec.seed ^ (static_cast<std::uint64_t>(app) << 32));
  const auto ops = ops_for(app);

  Workload w;
  w.items.reserve(spec.length);
  for (std::size_t i = 0; i < spec.length; ++i) {
    const OpTemplate& t = ops[static_cast<std::size_t>(rng.below(ops.size()))];
    WorkItem item;
    item.id = static_cast<int>(i);
    item.op = t.op;
    item.poison = spec.poison_at >= 0 && i == static_cast<std::size_t>(spec.poison_at);
    if (item.poison && !spec.poison_op.empty()) item.op = spec.poison_op;
    item.heavy = rng.chance(spec.heavy_rate);
    item.racy = rng.chance(spec.racy_rate);
    if (t.dns) item.lookup_host = "peer.example.net";
    if (t.remote) item.client_address = "10.0.0." + std::to_string(rng.between(2, 250));
    item.write_bytes = t.write_bytes;
    item.entropy_bits = t.entropy_bits;
    w.items.push_back(std::move(item));
  }
  return w;
}

}  // namespace faultstudy::apps
