#include "apps/ui/toolkit.hpp"

#include "util/strings.hpp"

namespace faultstudy::apps::ui {

Widget& Widget::add_child(std::string name) {
  children_.push_back(std::make_unique<Widget>(std::move(name)));
  return *children_.back();
}

Widget* Widget::child(std::string_view name) noexcept {
  for (const auto& c : children_) {
    if (c->name() == name) return c.get();
  }
  return nullptr;
}

Widget* Widget::find(std::string_view path) noexcept {
  Widget* node = this;
  for (const auto segment : util::split(path, '/')) {
    if (segment.empty()) continue;
    node = node->child(segment);
    if (node == nullptr) return nullptr;
  }
  return node;
}

PagerSettings::PagerSettings(bool embedded, UiFaultFlags flags)
    : flags_(flags) {
  auto& tabs = root_.add_child("tabs");
  tabs.add_child("layout");
  tabs.add_child("appearance");
  tabs.add_child("tasklist");
  auto& pages = root_.add_child("pages");
  pages.add_child("layout-page");
  pages.add_child("appearance-page");
  // The tasklist page only exists when the pager is embedded in the panel —
  // exactly the situation the buggy handler never considered.
  if (embedded) pages.add_child("tasklist-page");
}

UiResult PagerSettings::click_tab(std::string_view tab) {
  Widget* tab_widget = root_.find("tabs/" + std::string(tab));
  if (tab_widget == nullptr) return {UiStatus::kIgnored, "no such tab"};

  const std::string page_path = "pages/" + std::string(tab) + "-page";
  Widget* page = root_.find(page_path);

  if (flags_.pager_tab_null_deref) {
    // The buggy handler dereferences the page unconditionally.
    if (page == nullptr) {
      return {UiStatus::kCrash,
              "segfault: tab handler dereferenced the missing '" +
                  std::string(tab) + "' page widget"};
    }
  } else if (page == nullptr) {
    // The fixed handler checks and falls back to the first page.
    return {UiStatus::kIgnored, "page not available in this mode"};
  }
  return {};
}

Calendar::Calendar(int year, UiFaultFlags flags)
    : flags_(flags), year_(year), cache_base_year_(year) {
  cache_.push_back("rendered-" + std::to_string(year));
}

UiResult Calendar::rebuild_cache(int handler_year) {
  // The render cache holds one page, for cache_base_year_. A correct
  // handler keeps year_ and the base in lockstep; the cache index below is
  // then always 0.
  const int index = handler_year - cache_base_year_;
  if (index < 0 || static_cast<std::size_t>(index) >= cache_.size()) {
    return {UiStatus::kCrash,
            "out-of-range year-cache index " + std::to_string(index) +
                " (year and cache base diverged)"};
  }
  cache_[static_cast<std::size_t>(index)] =
      "rendered-" + std::to_string(handler_year);
  return {};
}

UiResult Calendar::click_prev_year() {
  if (flags_.calendar_prev_local_copy) {
    // The bug: the handler decrements a LOCAL copy of the year; the global
    // year_ stays put while the cache base moves — on the next rebuild the
    // index computed from the stale global is out of range.
    int year = year_;  // local copy — the assignment below never escapes
    --year;
    --cache_base_year_;
    return rebuild_cache(year_);  // global year_, one ahead of the base
  }
  --year_;
  --cache_base_year_;
  return rebuild_cache(year_);
}

UiResult Calendar::click_next_year() {
  ++year_;
  ++cache_base_year_;
  return rebuild_cache(year_);
}

UiResult ArchiveOpener::open(std::uint64_t payload_bytes) {
  if (flags_.archive_long_overflow) {
    // The bug: the size is read through a signed 32-bit variable
    // ("declared as 'long' instead of 'unsigned long'" on a 32-bit
    // platform). Archives past 2 GiB go negative.
    const auto size = static_cast<std::int32_t>(payload_bytes);
    if (size < 0) {
      return {UiStatus::kCrash,
              "extraction buffer allocation with negative size (signed "
              "overflow of the archive length)"};
    }
  }
  // The fixed path keeps the full unsigned width.
  return {};
}

}  // namespace faultstudy::apps::ui
