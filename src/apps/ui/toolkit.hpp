// A miniature widget toolkit for the simulated desktop, carrying three of
// the study's GNOME bugs as real code-level fault points:
//
//   pager_tab_null_deref (gnome-ei-01): "clicking on the 'tasklist' tab in
//       gnome-pager settings causes the pager to die" — the tab-switch
//       handler looks up a widget that only exists when the pager is
//       embedded and dereferences the null result.
//   calendar_prev_local_copy (gnome-ei-02): "clicking 'prev' in the 'year'
//       view crashes ... due to assigning a value to a local copy of the
//       variable instead of the global copy" — the handler decrements a
//       local copy of the year while the render cache's base year moves,
//       leaving an out-of-range cache index.
//   archive_long_overflow (gnome-ei-04): "double-clicking on a 'tar.gz'
//       icon crashes gmc ... declaration of a variable as 'long' instead of
//       'unsigned long'" — the archive size is read through a signed
//       32-bit variable; sizes past 2 GiB go negative and the extraction
//       buffer allocation blows up.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace faultstudy::apps::ui {

struct UiFaultFlags {
  bool pager_tab_null_deref = false;
  bool calendar_prev_local_copy = false;
  bool archive_long_overflow = false;
};

enum class UiStatus : std::uint8_t {
  kOk = 0,
  kIgnored,  ///< event had no handler / target
  kCrash,    ///< an injected bug fired
};

struct UiResult {
  UiStatus status = UiStatus::kOk;
  std::string detail;
};

/// A widget: a named node with children. The toolkit routes events by
/// slash-separated paths ("panel/settings/tasklist-tab").
class Widget {
 public:
  explicit Widget(std::string name) : name_(std::move(name)) {}

  const std::string& name() const noexcept { return name_; }
  Widget& add_child(std::string name);
  /// Depth-one lookup; nullptr when absent.
  Widget* child(std::string_view name) noexcept;
  /// Path lookup ("a/b/c"); nullptr when any segment is absent — the
  /// situation the buggy pager handler fails to check.
  Widget* find(std::string_view path) noexcept;

  std::size_t child_count() const noexcept { return children_.size(); }

 private:
  std::string name_;
  std::vector<std::unique_ptr<Widget>> children_;
};

/// The gnome-pager settings dialog. The "tasklist" tab's page widget exists
/// only when the pager runs embedded in the panel; standalone it is absent.
class PagerSettings {
 public:
  explicit PagerSettings(bool embedded, UiFaultFlags flags);

  /// Switches to a tab by name ("layout", "tasklist", ...).
  UiResult click_tab(std::string_view tab);

  Widget& root() noexcept { return root_; }

 private:
  UiFaultFlags flags_;
  Widget root_{"pager-settings"};
};

/// The calendar's year view with its per-year render cache.
class Calendar {
 public:
  explicit Calendar(int year, UiFaultFlags flags);

  int year() const noexcept { return year_; }
  /// The "prev" button in the year view.
  UiResult click_prev_year();
  /// The "next" button (the handler is correct — only prev had the bug).
  UiResult click_next_year();

 private:
  UiResult rebuild_cache(int handler_year);

  UiFaultFlags flags_;
  int year_;
  int cache_base_year_;
  std::vector<std::string> cache_;  ///< one rendered page per cached year
};

/// gmc's archive opener (double-click on a tar.gz icon).
class ArchiveOpener {
 public:
  explicit ArchiveOpener(UiFaultFlags flags) : flags_(flags) {}

  /// Opens an archive whose header declares `payload_bytes` of content.
  UiResult open(std::uint64_t payload_bytes);

 private:
  UiFaultFlags flags_;
};

}  // namespace faultstudy::apps::ui
