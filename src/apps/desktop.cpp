#include "apps/desktop.hpp"

#include "env/interleave.hpp"
#include "util/strings.hpp"

namespace faultstudy::apps {

struct Desktop::DesktopSnapshot : Snapshot {
  BaseState base;
  std::uint64_t events = 0;
  std::uint64_t open_windows = 1;
  int calendar_year = 1999;
};

Desktop::Desktop(const DesktopConfig& config)
    : BaseApp(core::AppId::kGnome, "gnome-session", config.base_fds,
              config.worker_pool),
      config_(config) {
  log_path_ = "/home/user/.gnome/session.log";
}

void Desktop::arm_fault(const ActiveFault& fault) {
  BaseApp::arm_fault(fault);
  ui_flags_ = {};
  if (fault.fault_id == "gnome-edt-03") {
    // The applet request-vs-removal race is realized structurally
    // (env/interleave): handled in handle().
    fault_->realized = true;
  }
  if (fault.fault_id == "gnome-ei-01") {
    ui_flags_.pager_tab_null_deref = true;
    fault_->realized = true;
  } else if (fault.fault_id == "gnome-ei-02") {
    ui_flags_.calendar_prev_local_copy = true;
    fault_->realized = true;
  } else if (fault.fault_id == "gnome-ei-04") {
    ui_flags_.archive_long_overflow = true;
    fault_->realized = true;
  }
}

bool Desktop::start(env::Environment& e) {
  if (!base_start(e)) return false;
  events_ = 0;
  open_windows_ = 1;
  return true;
}

StepResult Desktop::handle(const WorkItem& item, env::Environment& e) {
  if (!running_) return {StepStatus::kError, "session not running"};
  if (item.op == kRejectedOp) return {};  // wrapper intercepted the event

  if (auto failure = check_fault(item, e); failure.has_value()) {
    if (failure->status == StepStatus::kCrash ||
        failure->status == StepStatus::kHang) {
      running_ = false;
    }
    return *failure;
  }

  // Realized applet race (gnome-edt-03): the panel processes an applet's
  // action request over ~10 atomic steps, registering it at step 4 and
  // validating the applet at step 5; a removal notification landing in the
  // gap leaves a dangling reference. Racy items model applet interactions
  // that coincide with removals.
  if (fault_.has_value() && fault_->fault_id == "gnome-edt-03" &&
      item.racy) {
    if (env::request_removal_race(e.scheduler(), e.trace(), e.now(),
                                  /*a_steps=*/10,
                                  /*request_registered_at=*/4)) {
      running_ = false;
      return {StepStatus::kCrash,
              "applet removed between action request and validation"};
    }
  } else if (item.racy && !generic_race_armed()) {
    // Fixed panel: removal notifications take the applet-list lock before
    // invalidating, so the traced shape carries no race.
    emit_synchronized_trace(e, env::trace_objects::kAppletList,
                            "removal notification under applet-list lock");
  }

  // Real toolkit paths (the gnome-ei-01/02/04 bugs live in apps/ui).
  if (item.op == "click:pager-settings-tasklist") {
    ui::PagerSettings settings(/*embedded=*/false, ui_flags_);
    const auto r = settings.click_tab("tasklist");
    if (r.status == ui::UiStatus::kCrash) {
      running_ = false;
      return {StepStatus::kCrash, r.detail};
    }
  } else if (item.op == "click:calendar-prev-year") {
    ui::Calendar calendar(calendar_year_, ui_flags_);
    const auto r = calendar.click_prev_year();
    if (r.status == ui::UiStatus::kCrash) {
      running_ = false;
      return {StepStatus::kCrash, r.detail};
    }
    calendar_year_ = calendar.year();
  } else if (util::starts_with(item.op, "open:archive")) {
    ui::ArchiveOpener opener(ui_flags_);
    const auto r = opener.open(3ull << 30);  // a 3 GiB tar.gz
    if (r.status == ui::UiStatus::kCrash) {
      running_ = false;
      return {StepStatus::kCrash, r.detail};
    }
    ++open_windows_;
  } else if (util::starts_with(item.op, "open:")) {
    ++open_windows_;
  } else if (util::starts_with(item.op, "save:") ||
             util::starts_with(item.op, "edit:")) {
    e.disk().append("/home/user/.gnome/config", item.write_bytes);
  } else if (util::starts_with(item.op, "play:")) {
    // Sound events borrow a descriptor for the esd socket.
    if (e.fds().acquire("gnome-session", 1)) {
      e.fds().release("gnome-session", 1);
    }
  }

  e.advance(1);
  ++events_;
  ++state_.items_handled;
  FS_TELEM(e.counters(), app.ui_events++);
  FS_COVER(e.coverage(), hit(obs::Site::kAppUiEvent));
  return {};
}

void Desktop::stop(env::Environment& e) { base_stop(e); }

SnapshotPtr Desktop::snapshot() const {
  auto snap = std::make_shared<DesktopSnapshot>();
  snap->base = state_;
  snap->events = events_;
  snap->open_windows = open_windows_;
  snap->calendar_year = calendar_year_;
  return snap;
}

bool Desktop::restore(const SnapshotPtr& snapshot, env::Environment& e) {
  const auto* snap = dynamic_cast<const DesktopSnapshot*>(snapshot.get());
  if (snap == nullptr) return false;
  if (!base_restore(snap->base, e)) return false;
  events_ = snap->events;
  open_windows_ = snap->open_windows;
  calendar_year_ = snap->calendar_year;
  return true;
}

void Desktop::rejuvenate(env::Environment& e) {
  base_rejuvenate(e);
  // The desktop's own recovery code re-reads the session file and closes
  // windows whose applications died.
  open_windows_ = 1;
}

}  // namespace faultstudy::apps
