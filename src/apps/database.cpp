#include "apps/database.hpp"

#include "env/interleave.hpp"
#include "util/strings.hpp"

namespace faultstudy::apps {

struct Database::DbSnapshot : Snapshot {
  BaseState base;
  sql::Engine engine;  // full catalog + data + lock state
  std::uint64_t queries = 0;
};

Database::Database(const DatabaseConfig& config)
    : BaseApp(core::AppId::kMysql, "mysqld", config.base_fds,
              config.worker_pool),
      config_(config) {
  log_path_ = "/var/lib/mysql/data/orders.MYD";
}

void Database::arm_fault(const ActiveFault& fault) {
  BaseApp::arm_fault(fault);
  if (fault.fault_id == "mysql-edt-01") {
    // The signal-mask race is realized structurally (env/interleave):
    // handled in handle(), not by the generic hazard window.
    fault_->realized = true;
  }
  sql::SqlFaultFlags flags;
  if (fault.fault_id == "mysql-ei-01") {
    flags.update_index_scan_bug = true;
  } else if (fault.fault_id == "mysql-ei-02") {
    flags.orderby_empty_missing_init = true;
  } else if (fault.fault_id == "mysql-ei-03") {
    flags.count_on_empty_crash = true;
  } else if (fault.fault_id == "mysql-ei-04") {
    flags.optimize_missing_init = true;
  } else if (fault.fault_id == "mysql-ei-05") {
    flags.flush_after_lock_bug = true;
  } else {
    engine_.set_fault_flags(flags);
    return;
  }
  engine_.set_fault_flags(flags);
  fault_->realized = true;
}

void Database::create_catalog() {
  const auto flags = engine_.fault_flags();
  engine_ = sql::Engine(flags);
  engine_.execute("CREATE TABLE orders (id INT, state TEXT)");
  engine_.execute("CREATE TABLE customers (id INT, name TEXT)");
  engine_.execute("CREATE TABLE sessions (id INT, expires INT)");
  engine_.execute("CREATE TABLE audit_log (id INT, entry TEXT)");  // empty
  for (std::size_t i = 0; i < config_.orders_rows; ++i) {
    engine_.execute("INSERT INTO orders VALUES (" + std::to_string(i) +
                    ", 'open')");
  }
  for (int i = 0; i < 40; ++i) {
    engine_.execute("INSERT INTO customers VALUES (" + std::to_string(i) +
                    ", 'customer" + std::to_string(i) + "')");
  }
  for (int i = 0; i < 20; ++i) {
    engine_.execute("INSERT INTO sessions VALUES (" + std::to_string(i) +
                    ", " + std::to_string(100 + i) + ")");
  }
}

bool Database::start(env::Environment& e) {
  if (!base_start(e)) return false;
  if (!e.network().bind_port(config_.listen_port, "mysqld")) {
    base_stop(e);
    return false;
  }
  create_catalog();
  queries_ = 0;
  return true;
}

StepResult Database::handle(const WorkItem& item, env::Environment& e) {
  if (!running_) return {StepStatus::kError, "server not running"};
  if (item.op == kRejectedOp) return {};  // wrapper answered the client

  if (auto failure = check_fault(item, e); failure.has_value()) {
    if (failure->status == StepStatus::kCrash ||
        failure->status == StepStatus::kHang) {
      running_ = false;
    }
    return *failure;
  }

  // Realized signal-mask race (mysql-edt-01): the per-query signal window.
  // Thread A (the worker) runs ~12 atomic steps and re-computes its signal
  // mask at step 5, applying it at step 6; a signal landing in the gap
  // hits the torn-down handler state. Racy items model queries that
  // coincide with signal traffic.
  if (fault_.has_value() && fault_->fault_id == "mysql-edt-01" &&
      item.racy) {
    if (env::signal_mask_race(e.scheduler(), e.trace(), e.now(),
                              /*a_steps=*/12, /*mask_computed_at=*/5)) {
      running_ = false;
      return {StepStatus::kCrash,
              "signal delivered between mask computation and application"};
    }
  } else if (item.racy && !generic_race_armed()) {
    // Fixed server: the per-query signal window exists but the delivery
    // path takes the handler lock, so the traced shape is race-free.
    emit_synchronized_trace(e, env::trace_objects::kSignalMask,
                            "signal delivery under handler lock");
  }

  if (util::starts_with(item.op, "CONNECT")) {
    // New connections do a name lookup; the fixed server tolerates
    // failures (the buggy reverse-DNS path lives in check_fault).
    if (!item.client_address.empty()) {
      (void)e.dns().reverse(item.client_address, e.now());
    }
  } else {
    const sql::ExecResult result = engine_.execute(item.op);
    if (result.status == sql::ExecStatus::kCrash) {
      running_ = false;
      return {StepStatus::kCrash, result.message};
    }
    // Statement errors are returned to the client, not server failures.
    if (item.write_bytes > 0) e.disk().append(log_path_, item.write_bytes);
  }

  e.advance(1);
  ++queries_;
  ++state_.items_handled;
  FS_TELEM(e.counters(), app.queries_ok++);
  FS_COVER(e.coverage(), hit(obs::Site::kAppDbQuery));
  return {};
}

void Database::stop(env::Environment& e) { base_stop(e); }

SnapshotPtr Database::snapshot() const {
  auto snap = std::make_shared<DbSnapshot>();
  snap->base = state_;
  snap->engine = engine_;
  snap->queries = queries_;
  return snap;
}

bool Database::restore(const SnapshotPtr& snapshot, env::Environment& e) {
  const auto* snap = dynamic_cast<const DbSnapshot*>(snapshot.get());
  if (snap == nullptr) return false;
  if (!base_restore(snap->base, e)) return false;
  engine_ = snap->engine;
  queries_ = snap->queries;
  e.network().release_ports_of("mysqld");
  if (!e.network().bind_port(config_.listen_port, "mysqld")) {
    running_ = false;
    return false;
  }
  return true;
}

void Database::rejuvenate(env::Environment& e) {
  base_rejuvenate(e);
  // Admin-driven cleanup: rotate the log, compact every table (OPTIMIZE
  // TABLE reclaims the data file back below the size limit), release any
  // session locks.
  e.disk().truncate("/var/lib/mysql/mysql.log");
  e.disk().truncate(log_path_);
  engine_.execute("UNLOCK TABLES");
  for (const char* table : {"orders", "customers", "sessions", "audit_log"}) {
    if (auto* t = engine_.find_table(table)) t->compact();
  }
  if (!e.network().port_bound(config_.listen_port)) {
    e.network().bind_port(config_.listen_port, "mysqld");
  }
}

std::uint64_t Database::rows(const std::string& table) const {
  const auto* t = engine_.find_table(table);
  return t == nullptr ? 0 : t->row_count();
}

}  // namespace faultstudy::apps
