#include "apps/app.hpp"

#include "core/rules.hpp"
#include "env/interleave.hpp"

namespace faultstudy::apps {

namespace {
/// Client-side timeout: DNS or network latency beyond this fails the item.
constexpr env::Tick kClientTimeout = 1000;
/// Auxiliary port the server family needs for heavy work (the port hung
/// children squat on in kPortsHeldByChildren).
constexpr int kAuxPort = 8080;
/// The file whose metadata is corrupted in kCorruptFileMetadata.
constexpr const char* kSuspectFile = "/home/user/attachment.dat";
}  // namespace

BaseApp::BaseApp(core::AppId id, std::string name, std::size_t base_fds,
                 std::size_t worker_pool)
    : base_fds_(base_fds), worker_pool_(worker_pool), id_(id),
      name_(std::move(name)) {}

bool BaseApp::base_start(env::Environment& e) {
  state_ = BaseState{};
  state_.captured_hostname = e.hostname();
  if (!e.fds().acquire(std::string(name_), base_fds_)) return false;
  state_.fd_footprint = base_fds_;
  workers_.clear();
  for (std::size_t i = 0; i < worker_pool_; ++i) {
    auto pid = e.processes().spawn(std::string(name_));
    if (!pid.has_value()) {
      base_stop(e);
      return false;
    }
    workers_.push_back(*pid);
  }
  running_ = true;
  FS_FORENSIC(e.flight(),
              record(forensics::FlightCode::kAppStarted, workers_.size()));
  FS_COVER(e.coverage(), hit(obs::Site::kAppStarted));
  return true;
}

void BaseApp::base_stop(env::Environment& e) {
  e.fds().release_all(std::string(name_));
  e.processes().kill_owned_by(std::string(name_));
  e.network().release_ports_of(std::string(name_));
  workers_.clear();
  state_.fd_footprint = 0;
  if (running_) {
    FS_FORENSIC(e.flight(), record(forensics::FlightCode::kAppStopped));
    FS_COVER(e.coverage(), hit(obs::Site::kAppStopped));
  }
  running_ = false;
}

bool BaseApp::base_restore(const BaseState& state, env::Environment& e) {
  // A truly generic mechanism restores the checkpointed state verbatim and
  // re-materializes its environment footprint: the descriptor count comes
  // back exactly as checkpointed (leaks included); child processes do not —
  // they were killed as part of recovery and only the configured worker
  // pool is respawned.
  e.fds().release_all(std::string(name_));
  e.processes().kill_owned_by(std::string(name_));
  state_ = state;
  if (!e.fds().acquire(std::string(name_), state_.fd_footprint)) {
    running_ = false;
    return false;  // environment cannot supply the checkpointed footprint
  }
  workers_.clear();
  for (std::size_t i = 0; i < worker_pool_; ++i) {
    auto pid = e.processes().spawn(std::string(name_));
    if (!pid.has_value()) {
      running_ = false;
      return false;
    }
    workers_.push_back(*pid);
  }
  running_ = true;
  FS_COVER(e.coverage(), hit(obs::Site::kAppRestored));
  return true;
}

void BaseApp::base_rejuvenate(env::Environment& e) {
  // Application-specific cleanup, modelled on Apache's SIGHUP rejuvenation:
  // kill children (reclaiming slots and ports), drop leaked descriptors
  // back to the configured baseline, forget accumulated bloat, and re-read
  // environmental facts the app caches (the hostname).
  e.processes().kill_owned_by(std::string(name_));
  e.network().release_ports_of(std::string(name_));
  workers_.clear();
  for (std::size_t i = 0; i < worker_pool_; ++i) {
    auto pid = e.processes().spawn(std::string(name_));
    if (pid.has_value()) workers_.push_back(*pid);
  }
  e.fds().release_all(std::string(name_));
  if (e.fds().acquire(std::string(name_), base_fds_)) {
    state_.fd_footprint = base_fds_;
  } else {
    state_.fd_footprint = 0;
  }
  state_.leaked_units = 0;
  state_.captured_hostname = e.hostname();
  running_ = true;
}

std::size_t BaseApp::reclaim_idle_descriptors(env::Environment& e,
                                              double fraction) {
  if (fraction <= 0.0) return 0;
  if (fraction > 1.0) fraction = 1.0;
  const std::size_t idle = idle_descriptors();
  const auto freed = static_cast<std::size_t>(
      static_cast<double>(idle) * fraction + 0.5);
  if (freed == 0) return 0;
  e.fds().release(std::string(name()), freed);
  state_.fd_footprint -= freed;
  return freed;
}

void BaseApp::emit_synchronized_trace(env::Environment& e,
                                      env::ObjectId shared,
                                      const char* b_note) const {
  if (!e.trace().enabled()) return;
  env::TwoThreadShape shape;
  shape.shared = shared;
  shape.a_steps = 6;
  shape.async_locked = true;  // the fixed program synchronizes the event
  shape.b_note = b_note;
  env::emit_two_thread_trace(e.trace(), e.now(), shape,
                             /*b_position=*/shape.a_steps / 2);
}

bool BaseApp::generic_race_armed() const noexcept {
  return fault_.has_value() &&
         fault_->trigger == core::Trigger::kRaceCondition && !fault_->realized;
}

StepResult BaseApp::fail(std::string detail) const {
  StepResult r;
  r.detail = std::move(detail);
  if (!fault_.has_value()) {
    r.status = StepStatus::kError;
    return r;
  }
  switch (fault_->symptom) {
    case core::Symptom::kCrash:
    case core::Symptom::kSecurity:
    case core::Symptom::kResourceBloat:
      r.status = StepStatus::kCrash;
      break;
    case core::Symptom::kErrorReturn:
      r.status = StepStatus::kError;
      break;
    case core::Symptom::kHang:
      r.status = StepStatus::kHang;
      break;
  }
  return r;
}

std::optional<StepResult> BaseApp::check_fault(const WorkItem& item,
                                               env::Environment& e) {
  if (!fault_.has_value()) return std::nullopt;
  const auto& f = *fault_;
  const std::string owner(name_);

  using core::Trigger;
  switch (f.trigger) {
    // --- environment-independent: the killer input always fails. For
    // faults the application implements for real (f.realized), the engine
    // produces the failure from the input itself; the generic mechanics
    // stand down. ---
    case Trigger::kBoundaryInput:
    case Trigger::kMissingInitialization:
    case Trigger::kWrongVariableUsage:
    case Trigger::kApiMisuse:
    case Trigger::kSignalHandlingBug:
    case Trigger::kLogicError:
    case Trigger::kUiEventSequence:
      if (item.poison && !f.realized) {
        return fail("deterministic bug on killer input");
      }
      return std::nullopt;

    case Trigger::kDeterministicLeak:
      ++state_.leaked_units;
      if (state_.leaked_units >= f.leak_limit) {
        return fail("leaked memory exceeded limit");
      }
      return std::nullopt;

    // --- environment-dependent, condition persists on retry ---
    case Trigger::kResourceLeakUnderLoad:
      if (item.heavy) ++state_.leaked_units;
      if (state_.leaked_units >= f.leak_limit) {
        return fail("resource leak under load exhausted");
      }
      return std::nullopt;

    case Trigger::kFdExhaustion:
      // The bug: descriptors are opened per item and never closed.
      if (!e.fds().acquire(owner, f.fds_per_leak)) {
        return fail("out of file descriptors");
      }
      state_.fd_footprint += f.fds_per_leak;
      return std::nullopt;

    case Trigger::kExternalSocketLeak:
      // The app only needs one transient descriptor, but another program's
      // leaked sockets have starved the table.
      if (!e.fds().acquire(owner, 1)) {
        return fail("no descriptors left (external leak)");
      }
      e.fds().release(owner, 1);
      return std::nullopt;

    case Trigger::kDiskCacheFull:
      if (item.write_bytes > 0 && !cache_prefix_.empty()) {
        if (e.disk().used_under(cache_prefix_) + item.write_bytes >
            cache_quota_) {
          return fail("disk cache full, cannot store temporary files");
        }
        e.disk().append(cache_prefix_ + "/obj" + std::to_string(item.id),
                        item.write_bytes);
      }
      return std::nullopt;

    case Trigger::kFileSizeLimit:
      if (item.write_bytes > 0 && !log_path_.empty()) {
        if (e.disk().append(log_path_, item.write_bytes) ==
            env::Disk::WriteResult::kFileTooBig) {
          return fail("log file exceeds maximum allowed file size");
        }
      }
      return std::nullopt;

    case Trigger::kFullFileSystem:
      if (item.write_bytes > 0 && !log_path_.empty()) {
        if (e.disk().append(log_path_, item.write_bytes) ==
            env::Disk::WriteResult::kNoSpace) {
          return fail("file system full");
        }
      }
      return std::nullopt;

    case Trigger::kNetworkResourceExhausted:
      if (!item.client_address.empty() &&
          !e.network().consume_kernel_resource(1)) {
        return fail("unknown network resource exhausted");
      }
      return std::nullopt;

    case Trigger::kHardwareRemoval:
      if (!item.client_address.empty() && !e.network().card_present()) {
        return fail("network card removed");
      }
      return std::nullopt;

    case Trigger::kHostnameChanged:
      if (e.hostname() != state_.captured_hostname) {
        return fail("hostname changed under the application");
      }
      return std::nullopt;

    case Trigger::kCorruptFileMetadata:
      if (item.poison) {
        const auto info = e.disk().stat(kSuspectFile);
        if (info.has_value() && info->owner_uid < 0) {
          return fail("illegal value in file owner field");
        }
      }
      return std::nullopt;

    case Trigger::kReverseDnsMissing:
      if (!item.client_address.empty() &&
          !e.dns().reverse(item.client_address, e.now()).ok) {
        return fail("reverse DNS not configured for client");
      }
      return std::nullopt;

    // --- environment-dependent, condition likely fixed on retry ---
    case Trigger::kDnsError:
      if (!item.lookup_host.empty() &&
          !e.dns().resolve(item.lookup_host, e.now()).ok) {
        return fail("DNS returned an error");
      }
      return std::nullopt;

    case Trigger::kDnsSlow:
      if (!item.lookup_host.empty() &&
          e.dns().resolve(item.lookup_host, e.now()).latency > kClientTimeout) {
        return fail("DNS response too slow");
      }
      return std::nullopt;

    case Trigger::kNetworkSlow:
      if (!item.client_address.empty() &&
          e.network().link(e.now()) == env::LinkState::kSlow) {
        return fail("network too slow");
      }
      return std::nullopt;

    case Trigger::kProcessTableFull: {
      if (!item.heavy) return std::nullopt;
      // The bug: load spawns children that hang and are never reaped.
      auto pid = e.processes().spawn(owner);
      if (!pid.has_value()) return fail("process table full");
      FS_FORENSIC(e.flight(),
                  record(forensics::FlightCode::kAppChildSpawned, *pid));
      FS_COVER(e.coverage(), hit(obs::Site::kAppChildSpawned));
      e.processes().mark_hung(*pid);
      return std::nullopt;
    }

    case Trigger::kPortsHeldByChildren: {
      if (!item.heavy) return std::nullopt;
      if (e.network().port_bound(kAuxPort) &&
          e.network().port_owner(kAuxPort) != owner) {
        return fail("required port held by hung children");
      }
      if (e.network().bind_port(kAuxPort, owner)) {
        e.network().release_port(kAuxPort, owner);
      }
      return std::nullopt;
    }

    case Trigger::kEntropyShortage:
      if (item.entropy_bits > 0 &&
          !e.entropy().take(item.entropy_bits, e.now())) {
        return fail("insufficient entropy in /dev/random");
      }
      return std::nullopt;

    case Trigger::kRaceCondition:
      // Realized races (the structural interleavings in env/interleave)
      // are produced by the application itself; the generic hazard window
      // stands down for them.
      if (item.racy && !f.realized) {
        const auto i = e.scheduler().draw();
        if (e.trace().enabled()) {
          // The buggy two-thread shape behind the hazard window: the worker
          // touches the shared state unguarded mid-operation while the
          // asynchronous thread mutates it with no lock at the position the
          // scheduler drew. Reuses the hazard draw — tracing adds no draws.
          env::TwoThreadShape shape;
          shape.a_steps = 8;
          shape.unguarded_at = 4;
          shape.async_locked = false;
          shape.a_note = "worker reads shared state";
          shape.gap_note = "unguarded update in the hazard window";
          shape.b_note = "concurrent unsynchronized update";
          env::emit_two_thread_trace(e.trace(), e.now(), shape,
                                     env::position_of(i, shape.a_steps));
        }
        if (env::Scheduler::in_hazard_window(i, f.hazard_start,
                                             f.hazard_width)) {
          return fail("race condition hit its hazard window");
        }
      }
      return std::nullopt;

    case Trigger::kWorkloadTiming:
      if (item.poison) {
        // The user's action timing is redrawn on every attempt: "the exact
        // timing of the requested workload is not likely to be repeated".
        const auto i = e.scheduler().draw();
        if (env::Scheduler::in_hazard_window(i, f.hazard_start,
                                             f.hazard_width)) {
          return fail("user action timing hit the vulnerable window");
        }
      }
      return std::nullopt;

    case Trigger::kUnknownTransient:
      if (unknown_condition_pending_) {
        unknown_condition_pending_ = false;  // environmental; does not recur
        return fail("unknown transient condition");
      }
      return std::nullopt;

    case Trigger::kCount:
      break;
  }
  return std::nullopt;
}

}  // namespace faultstudy::apps
